#!/bin/sh
# serve-smoke: end-to-end smoke test of mlcg-serve over a real socket.
# Starts the daemon (JSON structured logs), ingests a small METIS graph,
# builds a hierarchy, runs a partition query, scrapes /metrics into
# $METRICS_OUT and lints the exposition, checks the /debug/requests
# flight recorder, asserts one structured log line per smoke request, and
# checks graceful SIGTERM drain. Then the warm-restart leg: a second
# instance on the same -cache-dir must answer the same build and query
# from the spilled .mlcg container — no re-ingest, no recoarsening —
# which the /metrics counters prove (mlcg_hier_disk_hits_total 1,
# mlcg_builds_completed_total 0). Exits non-zero on any failure. Used by
# `make serve-smoke` and CI (which re-lints the scrape via
# `make metrics-lint`).
set -eu

ADDR="${MLCG_SERVE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
METRICS_OUT="${METRICS_OUT:-/tmp/mlcg-metrics.prom}"
TMP="$(mktemp -d)"
PID=""

cleanup() {
    if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
        kill -9 "$PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $1" >&2
    for LOG in "$TMP"/serve*.log; do
        [ -f "$LOG" ] || continue
        echo "--- $LOG ---" >&2
        cat "$LOG" >&2 || true
    done
    exit 1
}

echo "serve-smoke: building mlcg-serve"
go build -o "$TMP/mlcg-serve" ./cmd/mlcg-serve

CACHE="$TMP/cache"

echo "serve-smoke: starting on $ADDR (cache-dir $CACHE)"
"$TMP/mlcg-serve" -addr "$ADDR" -build-workers 2 -log-format json -cache-dir "$CACHE" 2>"$TMP/serve.log" &
PID=$!

# Wait for the listener.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "server did not come up"
    kill -0 "$PID" 2>/dev/null || fail "server exited early"
    sleep 0.1
done

# A 7-vertex METIS graph (the METIS manual's example).
cat >"$TMP/graph.metis" <<'EOF'
7 11
5 3 2
1 3 4
5 4 2 1
2 3 6 7
1 3 6
5 4 7
6 4
EOF

echo "serve-smoke: ingesting graph"
GID=$(curl -sf --data-binary @"$TMP/graph.metis" "$BASE/v1/graphs" \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$GID" ] || fail "ingest returned no graph id"

echo "serve-smoke: building hierarchy for $GID"
HID=$(curl -sf -d "{\"graph\":\"$GID\",\"cutoff\":2}" "$BASE/v1/hierarchies?wait=1" \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$HID" ] || fail "build returned no hierarchy id"

STATUS=$(curl -sf "$BASE/v1/hierarchies/$HID" | sed -n 's/.*"status":"\([^"]*\)".*/\1/p')
[ "$STATUS" = "done" ] || fail "hierarchy status is '$STATUS', want done"

echo "serve-smoke: partition query"
CUT=$(curl -sf -d "{\"hierarchy\":\"$HID\",\"k\":2}" "$BASE/v1/partition" \
    | sed -n 's/.*"cut":\([0-9-]*\).*/\1/p')
[ -n "$CUT" ] || fail "partition returned no cut"

# The spill runs on the build worker after waiters are released, so it
# can trail the ?wait=1 response by a moment; wait for the file.
echo "serve-smoke: waiting for hierarchy spill $CACHE/$HID.mlcg"
i=0
until [ -f "$CACHE/$HID.mlcg" ]; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "hierarchy was not spilled to $CACHE within 5s"
    sleep 0.1
done

echo "serve-smoke: metrics scrape -> $METRICS_OUT"
curl -sf "$BASE/metrics" >"$METRICS_OUT" || fail "metrics scrape failed"
grep -q "mlcg_builds_completed_total 1" "$METRICS_OUT" || fail "metrics missing completed build"
grep -q "mlcg_hier_spills_total 1" "$METRICS_OUT" || fail "metrics missing hierarchy spill"
grep -q "mlcg_queries_partition_total 1" "$METRICS_OUT" || fail "metrics missing partition query"
grep -q '^# TYPE mlcg_build_run_seconds histogram$' "$METRICS_OUT" || fail "metrics missing build latency histogram"
grep -q 'mlcg_query_seconds_bucket{kind="partition",le="+Inf"} 1' "$METRICS_OUT" || fail "metrics missing query histogram bucket"

echo "serve-smoke: metrics exposition lint"
go run ./cmd/mlcg-tracecheck -prom "$METRICS_OUT" || fail "metrics exposition lint failed"

echo "serve-smoke: flight recorder"
FLIGHT=$(curl -sf "$BASE/debug/requests")
echo "$FLIGHT" | grep -q '"slowest"' || fail "/debug/requests missing slowest set"
echo "$FLIGHT" | grep -q '"kind":"build"' || fail "/debug/requests missing the build record"
echo "$FLIGHT" | grep -q '"outcome":"ok"' || fail "/debug/requests records not ok"

echo "serve-smoke: structured request logs"
for KIND in ingest build partition; do
    N=$(grep -c "\"msg\":\"$KIND\"" "$TMP/serve.log" || true)
    [ "$N" = "1" ] || fail "expected exactly 1 '$KIND' log line, got $N"
done

echo "serve-smoke: graceful drain (SIGTERM)"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "server did not drain within 10s of SIGTERM"
    sleep 0.1
done
wait "$PID" 2>/dev/null || fail "server exited non-zero on SIGTERM drain"
grep -q "drained cleanly" "$TMP/serve.log" || fail "no clean-drain log line"
PID=""

# Warm-restart leg: a fresh instance on the same cache directory must
# answer the same build and query from the spilled container — without
# the graph ever being re-ingested and without running a single build.
echo "serve-smoke: warm restart on $CACHE"
"$TMP/mlcg-serve" -addr "$ADDR" -build-workers 2 -log-format json -cache-dir "$CACHE" 2>"$TMP/serve2.log" &
PID=$!

i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "restarted server did not come up"
    kill -0 "$PID" 2>/dev/null || fail "restarted server exited early"
    sleep 0.1
done

echo "serve-smoke: re-issuing build (no re-ingest)"
HID2=$(curl -sf -d "{\"graph\":\"$GID\",\"cutoff\":2}" "$BASE/v1/hierarchies?wait=1" \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ "$HID2" = "$HID" ] || fail "warm restart returned hierarchy '$HID2', want $HID"

STATUS=$(curl -sf "$BASE/v1/hierarchies/$HID" | sed -n 's/.*"status":"\([^"]*\)".*/\1/p')
[ "$STATUS" = "done" ] || fail "warm-restarted hierarchy status is '$STATUS', want done"

echo "serve-smoke: partition query against the disk-loaded hierarchy"
CUT2=$(curl -sf -d "{\"hierarchy\":\"$HID\",\"k\":2}" "$BASE/v1/partition" \
    | sed -n 's/.*"cut":\([0-9-]*\).*/\1/p')
[ "$CUT2" = "$CUT" ] || fail "warm-restart partition cut '$CUT2' differs from first run's '$CUT'"

echo "serve-smoke: warm-restart metrics"
curl -sf "$BASE/metrics" >"$TMP/metrics2.prom" || fail "warm-restart metrics scrape failed"
grep -q "mlcg_hier_disk_hits_total 1" "$TMP/metrics2.prom" || fail "warm restart did not load from disk"
grep -q "mlcg_builds_completed_total 0" "$TMP/metrics2.prom" || fail "warm restart recoarsened instead of loading"
grep -q "mlcg_hier_load_errors_total 0" "$TMP/metrics2.prom" || fail "warm restart hit load errors"

echo "serve-smoke: graceful drain of the restarted server (SIGTERM)"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "restarted server did not drain within 10s of SIGTERM"
    sleep 0.1
done
wait "$PID" 2>/dev/null || fail "restarted server exited non-zero on SIGTERM drain"
grep -q "drained cleanly" "$TMP/serve2.log" || fail "no clean-drain log line after warm restart"
PID=""

echo "serve-smoke: OK (graph=$GID hierarchy=$HID cut=$CUT warm-restart=hit)"
