# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race test-determinism lint fuzz fuzz-smoke bench bench-construct bench-mis2 bench-json bench-check bench-baseline serve-smoke embed-smoke metrics-lint fmt-spec-check tables figures trace verify clean

# Prometheus exposition file checked by `make metrics-lint` — the default
# is where scripts/serve-smoke.sh leaves its /metrics scrape.
METRICS_FILE ?= /tmp/mlcg-metrics.prom

all: build test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Cross-worker determinism gate: the canonical-ID guarantee (byte-identical
# mappings, coarse graphs, hierarchies, and embeddings at p = 1, 2, 4, 8)
# checked with enough OS threads that the p = 8 runs actually interleave,
# plus the coarse-graph invariant harness (every mapper × builder × worker
# count) and the SGD trainer's schedule-independence sweep. The embed sweep
# additionally runs under -race (it is cheap enough); the full coarsen
# suite keeps its race coverage in `make race` where the per-package
# timeout budget is not shared with a p=8 interleaving sweep.
test-determinism:
	GOMAXPROCS=8 $(GO) test -run 'Determinism|Deterministic|Canonicalize|CoarseInvariants|WorkspaceReuse' ./internal/par/... ./internal/coarsen/...
	GOMAXPROCS=8 $(GO) test -race -run 'Determinism|SeedSensitivity|WorkspaceReuse' ./internal/embed/...

# Static analysis: vet always; staticcheck when it is installed (the
# pinned dev container has no network to fetch it, CI installs it).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Short fuzz pass over every parser target.
fuzz:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=30s -run=Fuzz ./internal/graph/
	$(GO) test -fuzz=FuzzReadMetis -fuzztime=30s -run=Fuzz ./internal/graph/
	$(GO) test -fuzz=FuzzReadBinary -fuzztime=30s -run=Fuzz ./internal/graph/
	$(GO) test -fuzz=FuzzCSRFromEdges -fuzztime=30s -run=Fuzz ./internal/graph/
	$(GO) test -fuzz=FuzzHierIO -fuzztime=30s -run=Fuzz ./internal/coarsen/
	$(GO) test -fuzz=FuzzMIS2Fast -fuzztime=30s -run=Fuzz ./internal/coarsen/
	$(GO) test -fuzz=FuzzProjectToFine -fuzztime=30s -run=Fuzz ./internal/coarsen/
	$(GO) test -fuzz=FuzzHierFmtLoad -fuzztime=30s -run=Fuzz ./internal/hierfmt/

# The CI slice of `fuzz`: 20s per target on the structured-input targets
# (CSR construction, the legacy and versioned hierarchy containers, the
# mis2fast worklist kernel's D2-independence/maximality invariants, and
# hierarchy projection over hostile level maps).
fuzz-smoke:
	$(GO) test -fuzz=FuzzCSRFromEdges -fuzztime=20s -run=Fuzz ./internal/graph/
	$(GO) test -fuzz=FuzzHierIO -fuzztime=20s -run=Fuzz ./internal/coarsen/
	$(GO) test -fuzz=FuzzMIS2Fast -fuzztime=20s -run=Fuzz ./internal/coarsen/
	$(GO) test -fuzz=FuzzProjectToFine -fuzztime=20s -run=Fuzz ./internal/coarsen/
	$(GO) test -fuzz=FuzzHierFmtLoad -fuzztime=20s -run=Fuzz ./internal/hierfmt/

# End-to-end smoke of the mlcg-serve daemon over a real socket: start,
# ingest, build, query, scrape /metrics (left at $(METRICS_FILE)), lint
# the exposition, check /debug/requests and the structured logs, SIGTERM
# graceful drain — then warm-restart a second instance on the same
# -cache-dir and prove it serves the build and query from disk.
serve-smoke:
	./scripts/serve-smoke.sh

# End-to-end smoke of the embedding pipeline: train through the coarsening
# hierarchy on a generated instance, hold out edges and report the
# link-prediction AUC, write the .mlcgemb sidecar — then reload it into a
# fresh process and prove the saved bytes evaluate identically.
embed-smoke:
	$(GO) run ./cmd/mlcg-embed -gen rgg -dim 16 -epochs 8 -negatives 3 \
		-eval -out /tmp/mlcg-embed.mlcgemb
	$(GO) run ./cmd/mlcg-embed -gen rgg -load /tmp/mlcg-embed.mlcgemb -eval

# Strict Prometheus text-exposition lint of a /metrics scrape (HELP/TYPE
# pairing, name charset, histogram bucket monotonicity, duplicates).
metrics-lint:
	$(GO) run ./cmd/mlcg-tracecheck -prom $(METRICS_FILE)

# Validate docs/FORMAT.md against the writer: the spec's worked-example
# hexdump must match the bytes hierfmt actually produces, byte for byte.
fmt-spec-check:
	$(GO) test -run 'TestFormatSpec' -count=1 ./internal/hierfmt/

bench:
	$(GO) test -bench=. -benchmem ./...

# Head-to-head D2-MIS mapper cells (mis2 vs mis2fast on the fast slice,
# including the explicit p=1/p=8 mapcompare rows the speedup claim in
# docs/CLAIMS.md is pinned by).
bench-mis2:
	$(GO) run ./cmd/mlcg-bench -suite fast -runs 5 -mappers mis2,mis2fast \
		-out /tmp/mlcg-bench-mis2.json \
		-sha "$$(git rev-parse HEAD 2>/dev/null || echo '')"
	$(GO) test -run='^$$' -bench='BenchmarkMapMIS2' -benchmem ./internal/coarsen/

# Isolated coarse-graph construction benchmark (the two-phase scatter /
# workspace path). `-count=10` gives benchstat enough samples to compare
# against a baseline checkout.
bench-construct:
	$(GO) test -run='^$$' -bench=BenchmarkBuildConstruct -benchmem -count=10 .
	$(GO) run ./cmd/mlcg-tables -construct -runs 7 -metrics

# Record a machine-readable baseline of the fast suite slice as
# BENCH_<sha>.json (the schema lives in internal/bench/baseline.go).
bench-json:
	$(GO) run ./cmd/mlcg-bench -suite fast -runs 5 \
		-sha "$$(git rev-parse HEAD 2>/dev/null || echo '')"

# Record a fresh fast-slice run and gate it against the committed
# baseline: exits non-zero when a gated metric regressed past tolerance.
bench-check:
	$(GO) run ./cmd/mlcg-bench -suite fast -runs 5 -out /tmp/mlcg-bench-new.json \
		-sha "$$(git rev-parse HEAD 2>/dev/null || echo '')"
	$(GO) run ./cmd/mlcg-bench -compare BENCH_baseline.json /tmp/mlcg-bench-new.json

# Regenerate the committed baseline (run on a quiet machine; see the
# benchmark policy in CONTRIBUTING.md before committing the result).
bench-baseline:
	$(GO) run ./cmd/mlcg-bench -suite fast -runs 5 -out BENCH_baseline.json \
		-sha "$$(git rev-parse HEAD 2>/dev/null || echo '')"

# Kernel-level trace of a representative coarsening run: writes a Chrome
# trace_event file (load it at chrome://tracing or https://ui.perfetto.dev),
# prints the metrics dump, and validates the trace structure.
trace:
	$(GO) run ./cmd/mlcg-coarsen -gen rmat -trace /tmp/mlcg-trace.json -metrics
	$(GO) run ./cmd/mlcg-tracecheck -coarsen /tmp/mlcg-trace.json

# Regenerate the paper's tables and figures (writes to stdout).
tables:
	$(GO) run ./cmd/mlcg-tables -all -runs 5

figures:
	$(GO) run ./cmd/mlcg-figures -all -runs 5

# The full verification ladder used before a release.
verify: build test race
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

clean:
	$(GO) clean ./...
