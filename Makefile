# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race test-determinism fuzz bench bench-construct tables figures trace verify clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Cross-worker determinism gate: the canonical-ID guarantee (byte-identical
# mappings, coarse graphs, and hierarchies at p = 1, 2, 4, 8) checked with
# enough OS threads that the p = 8 runs actually interleave.
test-determinism:
	GOMAXPROCS=8 $(GO) test -run 'Determinism|Deterministic|Canonicalize' ./internal/par/... ./internal/coarsen/...

# Short fuzz pass over every parser target.
fuzz:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=30s -run=Fuzz ./internal/graph/
	$(GO) test -fuzz=FuzzReadMetis -fuzztime=30s -run=Fuzz ./internal/graph/
	$(GO) test -fuzz=FuzzReadBinary -fuzztime=30s -run=Fuzz ./internal/graph/

bench:
	$(GO) test -bench=. -benchmem ./...

# Isolated coarse-graph construction benchmark (the two-phase scatter /
# workspace path). `-count=10` gives benchstat enough samples to compare
# against a baseline checkout.
bench-construct:
	$(GO) test -run='^$$' -bench=BenchmarkBuildConstruct -benchmem -count=10 .
	$(GO) run ./cmd/mlcg-tables -construct -runs 7 -metrics

# Kernel-level trace of a representative coarsening run: writes a Chrome
# trace_event file (load it at chrome://tracing or https://ui.perfetto.dev),
# prints the metrics dump, and validates the trace structure.
trace:
	$(GO) run ./cmd/mlcg-coarsen -gen rmat -trace /tmp/mlcg-trace.json -metrics
	$(GO) run ./cmd/mlcg-tracecheck -coarsen /tmp/mlcg-trace.json

# Regenerate the paper's tables and figures (writes to stdout).
tables:
	$(GO) run ./cmd/mlcg-tables -all -runs 5

figures:
	$(GO) run ./cmd/mlcg-figures -all -runs 5

# The full verification ladder used before a release.
verify: build test race
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

clean:
	$(GO) clean ./...
