package mlcg

// Benchmarks mapping one-to-one onto the paper's tables and figures; see
// DESIGN.md's per-experiment index. Each BenchmarkTableN/BenchmarkFigN
// exercises the code path behind that table/figure on representative suite
// graphs; `go run ./cmd/mlcg-tables -all` prints the full row sets.

import (
	"sync"
	"testing"

	"mlcg/internal/cluster"
	"mlcg/internal/coarsen"
	"mlcg/internal/gen"
	"mlcg/internal/graph"
	"mlcg/internal/par"
	"mlcg/internal/partition"
	"mlcg/internal/spmat"
)

var (
	suiteOnce sync.Once
	suiteAll  []gen.Instance
)

// benchSuite returns the cached Table I suite.
func benchSuite() []gen.Instance {
	suiteOnce.Do(func() {
		suiteAll = gen.Suite(gen.SuiteOptions{Scale: 1, Seed: 20210517})
	})
	return suiteAll
}

// benchGraph fetches one named suite instance.
func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	for _, inst := range benchSuite() {
		if inst.Name == name {
			return inst.Graph
		}
	}
	b.Fatalf("no suite instance %q", name)
	return nil
}

// representatives: two regular + two skewed graphs spanning the suite.
var repGraphs = []string{"HV15R", "delaunay24", "kron21", "ppa"}

// BenchmarkTable1Suite measures workload generation (Table I analog).
func BenchmarkTable1Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gen.Suite(gen.SuiteOptions{Scale: 1, Seed: uint64(i) + 1})
	}
}

// BenchmarkTable2Construction measures HEC multilevel coarsening with each
// construction strategy at full parallelism (Table II analog; the same
// code at Workers:1 is the Table III host role, covered by
// BenchmarkFig3Speedup's serial arm).
func BenchmarkTable2Construction(b *testing.B) {
	for _, gname := range repGraphs {
		g := benchGraph(b, gname)
		for _, bname := range coarsen.BuilderNames() {
			builder, err := coarsen.BuilderByName(bname)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(gname+"/"+bname, func(b *testing.B) {
				c := &coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: builder, Seed: 1}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := c.Run(g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBuildConstruct isolates a single coarse-graph construction per
// builder on the two skewed representatives (kron21 is the RMAT analog,
// ppa the BA analog) — the construction column of Tables II/III without
// the mapping phase. The HEC mapping is precomputed once; builders that
// support it reuse one workspace across iterations, exactly as
// Coarsener.Run drives them, so the numbers reflect steady-state levels.
func BenchmarkBuildConstruct(b *testing.B) {
	for _, gname := range []string{"kron21", "ppa"} {
		g := benchGraph(b, gname)
		g.MaterializeVWgt()
		m, err := coarsen.HEC{}.Map(g, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, bname := range coarsen.BuilderNames() {
			builder, err := coarsen.BuilderByName(bname)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(gname+"/"+bname, func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(g.Size())
				if wb, ok := builder.(coarsen.WorkspaceBuilder); ok {
					ws := coarsen.NewWorkspace()
					for i := 0; i < b.N; i++ {
						if _, err := wb.BuildWith(ws, g, m, 0); err != nil {
							b.Fatal(err)
						}
					}
					return
				}
				for i := 0; i < b.N; i++ {
					if _, err := builder.Build(g, m, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable3HostConstruction is the Table III analog: the same
// pipeline at reduced (host-role) parallelism.
func BenchmarkTable3HostConstruction(b *testing.B) {
	g := benchGraph(b, "kron21")
	for _, bname := range coarsen.BuilderNames() {
		builder, _ := coarsen.BuilderByName(bname)
		b.Run(bname, func(b *testing.B) {
			c := &coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: builder, Seed: 1, Workers: 2}
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHECVariants measures the three HEC parallelizations
// (Section IV.A comparison).
func BenchmarkHECVariants(b *testing.B) {
	g := benchGraph(b, "delaunay24")
	for _, m := range []coarsen.Mapper{coarsen.HEC{}, coarsen.HEC2{}, coarsen.HEC3{}} {
		b.Run(m.Name(), func(b *testing.B) {
			c := &coarsen.Coarsener{Mapper: m, Builder: coarsen.BuildSort{}, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4Mappers measures every coarse-mapping method (Table IV).
func BenchmarkTable4Mappers(b *testing.B) {
	for _, gname := range []string{"delaunay24", "kron21"} {
		g := benchGraph(b, gname)
		for _, mname := range []string{"hec", "hem", "twohop", "gosh", "goshhec", "mis2"} {
			mapper, err := coarsen.MapperByName(mname)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(gname+"/"+mname, func(b *testing.B) {
				c := &coarsen.Coarsener{Mapper: mapper, Builder: coarsen.BuildSort{}, Seed: 1}
				for i := 0; i < b.N; i++ {
					if _, err := c.Run(g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable5Spectral measures multilevel spectral bisection with HEC,
// HEM, and two-hop coarsening (Table V).
func BenchmarkTable5Spectral(b *testing.B) {
	g := benchGraph(b, "channel050")
	for _, mname := range []string{"hec", "hem", "twohop"} {
		mapper, _ := coarsen.MapperByName(mname)
		b.Run(mname, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sb := &partition.SpectralBisector{
					Coarsener: coarsen.Coarsener{Mapper: mapper, Builder: coarsen.BuildSort{}, Seed: uint64(i)},
					Fiedler:   partition.FiedlerOptions{MaxIter: 300},
					Seed:      uint64(i),
				}
				if _, err := sb.Bisect(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable6FM measures the FM pipelines and baselines (Table VI).
func BenchmarkTable6FM(b *testing.B) {
	g := benchGraph(b, "channel050")
	pipelines := map[string]func(uint64) *partition.FMBisector{
		"fm+hec":  func(s uint64) *partition.FMBisector { return partition.NewHECFM(s, 0) },
		"metis":   func(s uint64) *partition.FMBisector { return partition.NewMetisLike(s) },
		"mtmetis": func(s uint64) *partition.FMBisector { return partition.NewMtMetisLike(s, 0) },
	}
	for name, mk := range pipelines {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mk(uint64(i)).Bisect(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3Rate measures HEC coarsening throughput per graph (Fig 3
// left: rate = (2m+n)/s, reported here as ns/op over a fixed size).
func BenchmarkFig3Rate(b *testing.B) {
	for _, gname := range repGraphs {
		g := benchGraph(b, gname)
		b.Run(gname, func(b *testing.B) {
			c := &coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: coarsen.BuildSort{}, Seed: 1}
			b.SetBytes(g.Size()) // rate appears as MB/s = (2m+n)/s
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3Speedup runs the device (parallel) and host (serial) arms
// of the Fig 3 center comparison.
func BenchmarkFig3Speedup(b *testing.B) {
	g := benchGraph(b, "HV15R")
	for name, workers := range map[string]int{"device-parallel": 0, "host-serial": 1} {
		b.Run(name, func(b *testing.B) {
			c := &coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: coarsen.BuildSort{}, Seed: 1, Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3WeakScaling measures the synthetic families at two scales
// (Fig 3 right).
func BenchmarkFig3WeakScaling(b *testing.B) {
	for _, family := range []string{"rgg", "delaunay", "kron"} {
		for _, scale := range []int{1, 2} {
			g, err := gen.FamilyGraph(family, scale, 7)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(family+"/x"+string(rune('0'+scale)), func(b *testing.B) {
				c := &coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: coarsen.BuildSort{}, Seed: 1}
				b.SetBytes(g.Size())
				for i := 0; i < b.N; i++ {
					if _, err := c.Run(g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDedupAblation isolates the degree-based one-sided dedup
// optimization on the kron21 analog (the paper's 25.7x construction-time
// example).
func BenchmarkDedupAblation(b *testing.B) {
	g := benchGraph(b, "kron21")
	for name, builder := range map[string]coarsen.Builder{
		"onesided-off": coarsen.BuildSort{SkewThreshold: -1},
		"onesided-on":  coarsen.BuildSort{ForceOneSided: true},
	} {
		b.Run(name, func(b *testing.B) {
			c := &coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: builder, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig1Fig2Classification measures the heavy-edge classification
// used by the Fig 1 / Fig 2 reproductions.
func BenchmarkFig1Fig2Classification(b *testing.B) {
	g := benchGraph(b, "ppa")
	for i := 0; i < b.N; i++ {
		coarsen.ClassifyHeavyEdges(g, uint64(i))
	}
}

// Micro-benchmarks of the substrates the tables are built on.

func BenchmarkMicroHeavyNeighbors(b *testing.B) {
	g := benchGraph(b, "kron21")
	m, err := coarsen.HEC{}.Map(g, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	_ = m
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (coarsen.HEC{}).Map(g, uint64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroFMRefine(b *testing.B) {
	g := benchGraph(b, "channel050")
	base := make([]int32, g.N())
	for i := range base {
		base[i] = int32(i % 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part := append([]int32(nil), base...)
		partition.RefineFM(g, part, partition.FMOptions{MaxPasses: 2})
	}
}

func BenchmarkNestedDissection(b *testing.B) {
	g := benchGraph(b, "channel050")
	for i := 0; i < b.N; i++ {
		if _, err := partition.NestedDissection(g, partition.NDOptions{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRCM(b *testing.B) {
	g := benchGraph(b, "channel050")
	for i := 0; i < b.N; i++ {
		if _, err := g.RCM(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuitorFamily(b *testing.B) {
	g := benchGraph(b, "delaunay24")
	for _, m := range []coarsen.Mapper{coarsen.Suitor{}, coarsen.BSuitor{}} {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Map(g, uint64(i), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCluster(b *testing.B) {
	g := benchGraph(b, "products")
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Multilevel(g, cluster.Options{TargetClusters: 50, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLouvain(b *testing.B) {
	g := benchGraph(b, "products")
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Louvain(g, cluster.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpectralDrawing(b *testing.B) {
	g := benchGraph(b, "channel050")
	for i := 0; i < b.N; i++ {
		if _, err := partition.SpectralCoordinates(g, partition.DrawOptions{
			Fiedler: partition.FiedlerOptions{MaxIter: 100},
			Seed:    uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroFiedler(b *testing.B) {
	g := benchGraph(b, "channel050")
	for i := 0; i < b.N; i++ {
		partition.Fiedler(g, nil, uint64(i), partition.FiedlerOptions{MaxIter: 50})
	}
}

func BenchmarkMicroCascadicFiedler(b *testing.B) {
	g := benchGraph(b, "channel050")
	for i := 0; i < b.N; i++ {
		if _, _, err := partition.CascadicFiedler(g, partition.CascadicOptions{
			Fiedler: partition.FiedlerOptions{MaxIter: 50},
			Seed:    uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKWayPartition(b *testing.B) {
	g := benchGraph(b, "delaunay24")
	for _, k := range []int{4, 8} {
		b.Run(string(rune('0'+k))+"way", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.KWayFM(g, k, partition.KWayOptions{Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMicroParallelRefine(b *testing.B) {
	g := benchGraph(b, "channel050")
	base := make([]int32, g.N())
	for i := range base {
		base[i] = int32(i % 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part := append([]int32(nil), base...)
		partition.RefineParallelGreedy(g, part, partition.ParallelRefineOptions{})
	}
}

// Substrate micro-benchmarks (the primitives every table is built on).

func BenchmarkMicroRadixSortPairs(b *testing.B) {
	n := 1 << 18
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	st := uint64(1)
	for i := range keys {
		keys[i] = par.SplitMix64(&st)
		vals[i] = uint64(i)
	}
	work := make([]uint64, n)
	workV := make([]uint64, n)
	b.SetBytes(int64(n * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, keys)
		copy(workV, vals)
		par.RadixSortPairs(work, workV, 0)
	}
}

func BenchmarkMicroPrefixSum(b *testing.B) {
	n := 1 << 20
	src := make([]int64, n)
	for i := range src {
		src[i] = int64(i & 7)
	}
	dst := make([]int64, n+1)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.PrefixSumInt64(dst, src, 0)
	}
}

func BenchmarkMicroRandPerm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		par.RandPerm(1<<17, uint64(i), 0)
	}
}

func BenchmarkMicroSpMV(b *testing.B) {
	g := benchGraph(b, "rgg24")
	a := spmat.FromGraph(g)
	x := make([]float64, g.N())
	y := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i%13) / 13
	}
	b.SetBytes(a.NNZ() * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x, 0)
	}
}

func BenchmarkMicroSpGEMMTriple(b *testing.B) {
	g := benchGraph(b, "channel050")
	a := spmat.FromGraph(g)
	m, err := coarsen.HEC{}.Map(g, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmat.PAPt(a, m.M, m.NC, 0)
	}
}

func BenchmarkMicroTranspose(b *testing.B) {
	g := benchGraph(b, "kron21")
	a := spmat.FromGraph(g)
	b.SetBytes(a.NNZ() * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Transpose(0)
	}
}
