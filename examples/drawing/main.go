// Spectral drawing: the paper notes that spectral partitioning "is
// closely related to spectral drawing (where two eigenvectors are used as
// coordinates for vertices)". This example computes a multilevel spectral
// layout of a triangulated mesh and a 4-way partition of it, and renders
// both to an SVG with the parts colored.
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"

	"mlcg"
)

func main() {
	g := mlcg.TriMesh(40, 40, 9)
	fmt.Printf("mesh: n=%d m=%d\n", g.N(), g.M())

	coords, err := mlcg.SpectralCoordinates(g, mlcg.BisectOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	res, err := mlcg.KWayPartition(g, 4, mlcg.BisectOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-way cut: %d, part weights %v\n", res.Cut, res.Weights)

	if err := writeSVG("drawing.svg", g, coords, res.Part); err != nil {
		log.Fatal(err)
	}
	fmt.Println("layout written to drawing.svg")
}

// writeSVG renders the graph with spectral coordinates; vertices are
// colored by partition.
func writeSVG(path string, g *mlcg.Graph, coords [][2]float64, part []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)

	const size = 800.0
	minX, maxX := coords[0][0], coords[0][0]
	minY, maxY := coords[0][1], coords[0][1]
	for _, c := range coords {
		if c[0] < minX {
			minX = c[0]
		}
		if c[0] > maxX {
			maxX = c[0]
		}
		if c[1] < minY {
			minY = c[1]
		}
		if c[1] > maxY {
			maxY = c[1]
		}
	}
	sx := (size - 40) / (maxX - minX)
	sy := (size - 40) / (maxY - minY)
	px := func(u int32) (float64, float64) {
		return 20 + (coords[u][0]-minX)*sx, 20 + (coords[u][1]-minY)*sy
	}

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f">`+"\n", size, size)
	fmt.Fprintln(w, `<rect width="100%" height="100%" fill="white"/>`)
	for u := int32(0); u < g.NumV; u++ {
		adj, _ := g.Neighbors(u)
		x1, y1 := px(u)
		for _, v := range adj {
			if u < v {
				x2, y2 := px(v)
				fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc" stroke-width="0.5"/>`+"\n",
					x1, y1, x2, y2)
			}
		}
	}
	colors := []string{"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377"}
	for u := int32(0); u < g.NumV; u++ {
		x, y := px(u)
		fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="2" fill="%s"/>`+"\n",
			x, y, colors[int(part[u])%len(colors)])
	}
	fmt.Fprintln(w, "</svg>")
	return w.Flush()
}
