// Spectral node embedding: the paper motivates coarsening with multilevel
// representation-learning systems (HARP, GOSH). This example computes a
// d-dimensional spectral embedding of a community graph through the
// multilevel pipeline (coarsen with GOSH-style aggregation, embed the
// coarsest graph, interpolate and refine), then evaluates it with a link
// reconstruction test: edges should be closer in embedding space than
// random non-edges.
package main

import (
	"fmt"
	"log"
	"math"

	"mlcg"
	"mlcg/internal/coarsen"
	"mlcg/internal/par"
	"mlcg/internal/partition"
)

const dim = 4

func main() {
	// Two-scale community graph: 30 communities of 24 vertices.
	g := communities(30, 24, 3)
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())

	// Multilevel spectral embedding: coarsen with the GOSH mapper (the
	// embedding-oriented aggregation), solve on the coarsest graph,
	// interpolate + reiterate at every finer level.
	c := coarsen.Coarsener{Mapper: coarsen.GOSH{}, Builder: coarsen.BuildSort{}, Seed: 7}
	h, err := c.Run(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hierarchy: %d levels, coarsest n=%d\n", h.Levels(), h.Coarsest().N())

	fopt := partition.FiedlerOptions{MaxIter: 600}
	xs, _ := partition.FiedlerK(h.Coarsest(), dim, nil, 99, fopt)
	for i := len(h.Maps) - 1; i >= 0; i-- {
		fineG := h.Graphs[i]
		m := h.Maps[i]
		seeded := make([][]float64, dim)
		for j := range xs {
			xf := make([]float64, fineG.N())
			for u := range m {
				xf[u] = xs[j][m[u]]
			}
			seeded[j] = xf
		}
		xs, _ = partition.FiedlerK(fineG, dim, seeded, 99, fopt)
	}

	emb := make([][]float64, g.N())
	for u := range emb {
		emb[u] = make([]float64, dim)
		for j := 0; j < dim; j++ {
			emb[u][j] = xs[j][u]
		}
	}

	// Link reconstruction AUC: sample an edge and a non-edge; count how
	// often the edge pair is closer.
	rng := par.NewRNG(123)
	n := g.N()
	wins, trials := 0, 20000
	for t := 0; t < trials; t++ {
		// Random edge.
		u := int32(rng.Intn(n))
		adj, _ := g.Neighbors(u)
		for len(adj) == 0 {
			u = int32(rng.Intn(n))
			adj, _ = g.Neighbors(u)
		}
		v := adj[rng.Intn(len(adj))]
		// Random non-edge.
		var a, b int32
		for {
			a, b = int32(rng.Intn(n)), int32(rng.Intn(n))
			if a != b && !g.HasEdge(a, b) {
				break
			}
		}
		if dist(emb[u], emb[v]) < dist(emb[a], emb[b]) {
			wins++
		}
	}
	fmt.Printf("link-reconstruction AUC over %d samples: %.3f (0.5 = random)\n",
		trials, float64(wins)/float64(trials))
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// communities builds the two-scale benchmark graph.
func communities(k, size int, seed uint64) *mlcg.Graph {
	rng := par.NewRNG(seed)
	n := k * size
	var edges []mlcg.Edge
	for c := 0; c < k; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for tries := 0; tries < 6; tries++ {
				j := rng.Intn(size)
				if j != i {
					edges = append(edges, mlcg.Edge{U: int32(base + i), V: int32(base + j), W: 3})
				}
			}
		}
		edges = append(edges, mlcg.Edge{
			U: int32(base + rng.Intn(size)),
			V: int32(((c+1)%k)*size + rng.Intn(size)), W: 1,
		})
	}
	g, err := mlcg.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	return g
}
