// Multilevel clustering: the paper positions coarsening as the first step
// of multilevel clustering and embedding methods. This example clusters a
// planted-community graph by coarsening until roughly k super-vertices
// remain and projecting the aggregates back to the original vertices,
// then scores the recovered clustering against the planted communities.
package main

import (
	"fmt"
	"log"

	"mlcg"
)

// plantedCommunities builds a graph of dense communities: heavy edges
// inside each community, a sparse ring plus light random edges between
// them.
func plantedCommunities(communities, size int, seed uint64) *mlcg.Graph {
	st := seed
	next := func(n int) int { // tiny deterministic PRNG for the example
		st = st*6364136223846793005 + 1442695040888963407
		return int((st >> 33) % uint64(n))
	}
	var edges []mlcg.Edge
	n := communities * size
	for c := 0; c < communities; c++ {
		base := c * size
		// Dense heavy intra-community edges: a ring plus chords.
		for i := 0; i < size; i++ {
			edges = append(edges, mlcg.Edge{U: int32(base + i), V: int32(base + (i+1)%size), W: 5})
			edges = append(edges, mlcg.Edge{U: int32(base + i), V: int32(base + (i+7)%size), W: 5})
			edges = append(edges, mlcg.Edge{U: int32(base + i), V: int32(base + (i+13)%size), W: 5})
		}
		// One light bridge to the next community.
		edges = append(edges, mlcg.Edge{
			U: int32(base + next(size)), V: int32(((c+1)%communities)*size + next(size)), W: 1,
		})
	}
	// Light random noise edges.
	for i := 0; i < n/10; i++ {
		u, v := next(n), next(n)
		if u != v {
			edges = append(edges, mlcg.Edge{U: int32(u), V: int32(v), W: 1})
		}
	}
	g, err := mlcg.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func main() {
	// 24 planted communities of 40 vertices.
	const communities, size = 24, 40
	g := plantedCommunities(communities, size, 11)
	fmt.Printf("planted-community graph: n=%d m=%d\n", g.N(), g.M())

	// Multilevel clustering: coarsen with weight-aware HEC until about
	// one super-vertex per community remains, then refine with
	// modularity-driven local moving at every level.
	res, err := mlcg.Cluster(g, communities, mlcg.BisectOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coarsened through %d levels to %d clusters (modularity %.3f)\n",
		res.Levels, res.K, res.Modularity)
	cluster := res.Labels

	// Intra-cluster edge fraction: how much of the total edge weight the
	// clustering keeps internal (the quantity coarsening implicitly
	// maximizes by contracting heavy edges).
	var intra, total int64
	for u := int32(0); u < g.NumV; u++ {
		adj, wgt := g.Neighbors(u)
		for k, v := range adj {
			if u < v {
				total += wgt[k]
				if cluster[u] == cluster[v] {
					intra += wgt[k]
				}
			}
		}
	}
	fmt.Printf("intra-cluster edge weight: %d/%d (%.1f%%)\n",
		intra, total, 100*float64(intra)/float64(total))

	// Community recovery: for each planted community, the fraction of its
	// vertices landing in that community's majority cluster.
	var agree, n int
	for c := 0; c < communities; c++ {
		counts := map[int32]int{}
		for i := 0; i < size; i++ {
			counts[cluster[int32(c*size+i)]]++
		}
		best := 0
		for _, cnt := range counts {
			if cnt > best {
				best = cnt
			}
		}
		agree += best
		n += size
	}
	fmt.Printf("planted-community purity: %.1f%%\n", 100*float64(agree)/float64(n))
}
