// Quickstart: generate a mesh, coarsen it with parallel HEC, inspect the
// hierarchy, and bisect the graph — the whole public API in ~40 lines.
package main

import (
	"fmt"
	"log"

	"mlcg"
)

func main() {
	// A 3D mesh like the paper's CFD/FEM workloads.
	g := mlcg.Grid3D(24, 24, 24)
	fmt.Printf("input graph: n=%d m=%d\n", g.N(), g.M())

	// Multilevel coarsening: lock-free parallel HEC mapping (Algorithm 4
	// of the paper) with sort-based coarse graph construction (Algorithm
	// 6), down to the paper's 50-vertex cutoff.
	h, err := mlcg.Coarsen(g, "hec", "sort", mlcg.CoarsenOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hierarchy: %d levels, coarsening ratio %.2f per level\n",
		h.Levels(), h.CoarseningRatio())
	for i, cg := range h.Graphs {
		fmt.Printf("  level %d: n=%-8d m=%-8d total vertex weight=%d\n",
			i, cg.N(), cg.M(), cg.TotalVertexWeight())
	}

	// Bisect with the paper's best pipeline: HEC coarsening + greedy graph
	// growing + Fiduccia–Mattheyses refinement.
	res, err := mlcg.FMBisect(g, mlcg.BisectOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FM bisection: cut=%d sides=%d/%d (%.3fs)\n",
		res.Cut, res.Weights[0], res.Weights[1], res.TotalTime().Seconds())

	// And the spectral alternative for comparison.
	spr, err := mlcg.SpectralBisect(g, mlcg.BisectOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spectral bisection: cut=%d (%.3fs)\n", spr.Cut, spr.TotalTime().Seconds())
}
