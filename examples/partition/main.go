// Partitioning shoot-out: reproduce the paper's Table VI story on one
// workload — compare FM-refined bisection under four coarsening strategies
// against the spectral method and the Metis-style baselines, on both a
// regular mesh and a skewed social-network-like graph.
package main

import (
	"fmt"
	"log"

	"mlcg"
)

func bisectWith(g *mlcg.Graph, mapper string, seed uint64) (*mlcg.BisectResult, error) {
	return mlcg.FMBisect(g, mlcg.BisectOptions{Mapper: mapper, Seed: seed})
}

func run(name string, g *mlcg.Graph) {
	fmt.Printf("== %s: n=%d m=%d skew=%.1f ==\n",
		name, g.N(), g.M(), g.ComputeStats().Skew)

	// FM refinement under different coarsening strategies (the paper's
	// central comparison: HEC coarsens more aggressively than matching
	// and usually wins on cut).
	for _, mapper := range []string{"hec", "hem", "twohop", "mis2"} {
		res, err := bisectWith(g, mapper, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  FM + %-7s cut=%-8d levels=%-3d time=%.3fs\n",
			mapper, res.Cut, res.Levels, res.TotalTime().Seconds())
	}

	// Spectral refinement with HEC coarsening (Table V pipeline).
	spr, err := mlcg.SpectralBisect(g, mlcg.BisectOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  spectral+hec  cut=%-8d levels=%-3d time=%.3fs\n",
		spr.Cut, spr.Levels, spr.TotalTime().Seconds())

	// The Metis-style baselines assembled from the same substrates.
	for name, b := range map[string]*mlcg.FMBisector{
		"metis-like  ": mlcg.MetisLike(7),
		"mtmetis-like": mlcg.MtMetisLike(7, 0),
	} {
		res, err := b.Bisect(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  cut=%-8d levels=%-3d time=%.3fs\n",
			name, res.Cut, res.Levels, res.TotalTime().Seconds())
	}
	fmt.Println()
}

func main() {
	run("triangulated mesh (regular)", mlcg.TriMesh(120, 120, 3))
	run("preferential attachment (skewed)", mlcg.BA(12000, 8, 5))
}
