// Hierarchy reuse: multilevel coarsening is the expensive shared prefix of
// many analyses. This example builds a hierarchy once, serializes it,
// reloads it, and reuses the single hierarchy for three different
// downstream solves — bisection seeds with different random starts — the
// way a production pipeline amortizes coarsening across runs.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mlcg/internal/coarsen"
	"mlcg/internal/gen"
	"mlcg/internal/hierfmt"
	"mlcg/internal/partition"
)

func main() {
	g := gen.TriMesh(120, 120, 3)
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())

	// Coarsen once.
	c := &coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: coarsen.BuildSort{}, Seed: 11}
	h, err := c.Run(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hierarchy: %d levels (%.3fs)\n", h.Levels(), h.TotalTime().Seconds())

	// Serialize and reload (a file in real use; a buffer here). The
	// container format is specified in docs/FORMAT.md.
	var buf bytes.Buffer
	if err := hierfmt.Save(&buf, h, hierfmt.SaveOptions{CompressAdj: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized hierarchy: %d bytes\n", buf.Len())
	h2, _, err := hierfmt.Load(buf.Bytes(), hierfmt.LoadOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Reuse the reloaded hierarchy: initial partitions with different
	// seeds on the coarsest graph, each refined down the same hierarchy.
	best := int64(-1)
	for seed := uint64(0); seed < 3; seed++ {
		part := partition.GreedyGrow(h2.Coarsest(), seed, 4)
		partition.RefineFM(h2.Coarsest(), part, partition.FMOptions{})
		for i := len(h2.Maps) - 1; i >= 0; i-- {
			fineG := h2.Graphs[i]
			m := h2.Maps[i]
			pf := make([]int32, fineG.N())
			for u := range m {
				pf[u] = part[m[u]]
			}
			partition.RefineFM(fineG, pf, partition.FMOptions{})
			part = pf
		}
		cut := partition.EdgeCut(g, part)
		fmt.Printf("seed %d: cut %d\n", seed, cut)
		if best < 0 || cut < best {
			best = cut
		}
	}
	fmt.Printf("best of 3 seeds: %d\n", best)

	// The flattened mapping gives the direct fine-to-coarsest contraction.
	flat := h2.Flatten()
	fmt.Printf("flattened mapping: %d fine -> %d coarse vertices\n", len(flat.M), flat.NC)
}
