// Edge classes (Fig 2 of the paper): replay sequential HEC over the heavy
// edge set of a small weighted graph, label every heavy edge as create,
// inherit, or skip, and dump DOT files of the fine graph colored by
// aggregate — the exact content of the paper's Fig 1/Fig 2 illustration.
package main

import (
	"fmt"
	"log"
	"os"

	"mlcg/internal/bench"
	"mlcg/internal/coarsen"
)

func main() {
	g := bench.Fig1Demo()
	fmt.Printf("demo graph: n=%d m=%d\n", g.N(), g.M())

	cls := coarsen.ClassifyHeavyEdges(g, 20210517)
	fmt.Println("heavy-edge classification (sequential HEC replay):")
	for u := int32(0); u < g.NumV; u++ {
		fmt.Printf("  <%2d -> %2d>  %s\n", u, cls.Heavy[u], cls.Class[u])
	}
	fmt.Printf("totals: create=%d inherit=%d skip=%d -> %d coarse vertices\n",
		cls.Counts[coarsen.CreateEdge], cls.Counts[coarsen.InheritEdge],
		cls.Counts[coarsen.SkipEdge], cls.NC)

	// One level of every mapping method on the same graph (Fig 1).
	fmt.Println("\none level of coarsening per method:")
	for _, name := range coarsen.MapperNames() {
		mapper, err := coarsen.MapperByName(name)
		if err != nil {
			log.Fatal(err)
		}
		m, err := mapper.Map(g, 20210517, 1)
		if err != nil {
			log.Fatal(err)
		}
		cg, err := coarsen.BuildSort{}.Build(g, m, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s nc=%-3d coarse m=%-3d\n", name, m.NC, cg.M())

		f, err := os.Create("fig1-" + name + ".dot")
		if err != nil {
			log.Fatal(err)
		}
		if err := g.WriteDOT(f, name, m.M); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nDOT files fig1-<method>.dot written (render with graphviz)")
}
