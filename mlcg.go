// Package mlcg (MultiLevel Coarsening of Graphs) is the public API of a
// from-scratch Go reproduction of "Performance-Portable Graph Coarsening
// for Efficient Multilevel Graph Analysis" (Gilbert, Acer, Boman, Madduri,
// Rajamanickam; IPDPS 2021).
//
// The package exposes the building blocks of a multilevel graph-analysis
// pipeline:
//
//   - CSR graphs (NewGraph, ReadEdgeList, ReadBinary) and synthetic
//     generators (RGG, Grid3D, RMAT, ...);
//   - thirteen coarse-mapping algorithms (Mapper / MapperByName) including
//     the paper's lock-free parallel HEC, and seven coarse-graph
//     construction strategies (Builder / BuilderByName);
//   - the multilevel driver (Coarsen / Coarsener);
//   - multilevel spectral and Fiduccia–Mattheyses bisection
//     (SpectralBisect, FMBisect) plus the Metis-style baselines.
//
// A minimal end-to-end use:
//
//	g := mlcg.Grid3D(32, 32, 32)
//	h, err := mlcg.Coarsen(g, "hec", "sort", mlcg.CoarsenOptions{})
//	res, err := mlcg.FMBisect(g, mlcg.BisectOptions{})
//
// See examples/ for runnable programs and DESIGN.md for the mapping from
// the paper's algorithms and experiments to this module's packages.
package mlcg

import (
	"io"

	"mlcg/internal/cluster"
	"mlcg/internal/coarsen"
	"mlcg/internal/gen"
	"mlcg/internal/graph"
	"mlcg/internal/partition"
)

// Re-exported core types. The aliases make the internal implementation
// types usable by external callers without exposing the internal packages
// themselves.
type (
	// Graph is an undirected weighted graph in CSR form.
	Graph = graph.Graph
	// Edge is a builder input edge.
	Edge = graph.Edge
	// Stats summarizes a graph (size, degree skew, ...).
	Stats = graph.Stats

	// Mapping is a fine-to-coarse vertex mapping.
	Mapping = coarsen.Mapping
	// Mapper is a coarse-mapping algorithm.
	Mapper = coarsen.Mapper
	// Builder is a coarse-graph construction strategy.
	Builder = coarsen.Builder
	// Coarsener drives multilevel coarsening.
	Coarsener = coarsen.Coarsener
	// Hierarchy is the multilevel result.
	Hierarchy = coarsen.Hierarchy

	// BisectResult is the outcome of a bisection.
	BisectResult = partition.Result
	// SpectralBisector is the multilevel spectral partitioner.
	SpectralBisector = partition.SpectralBisector
	// FMBisector is the multilevel FM partitioner.
	FMBisector = partition.FMBisector
	// FiedlerOptions tunes the power iteration.
	FiedlerOptions = partition.FiedlerOptions
	// FMOptions tunes Fiduccia–Mattheyses refinement.
	FMOptions = partition.FMOptions
)

// NewGraph builds a validated graph from an undirected edge list;
// self-loops are dropped and duplicate edges merged.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// ReadEdgeList parses the "n m" + "u v [w]" text format.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ReadBinary parses the compact binary CSR container.
func ReadBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// Generators (synthetic stand-ins for the paper's workload classes).
var (
	// Grid2D returns a rows×cols lattice.
	Grid2D = gen.Grid2D
	// Grid3D returns an x×y×z lattice.
	Grid3D = gen.Grid3D
	// TriMesh returns a triangulated lattice (delaunay-like).
	TriMesh = gen.TriMesh
	// RGG returns a random geometric graph.
	RGG = gen.RGG
	// RMAT returns a Kronecker/R-MAT graph.
	RMAT = gen.RMAT
	// BA returns a Barabási–Albert preferential-attachment graph.
	BA = gen.BA
	// Mycielskian returns the k-th Mycielskian of a triangle.
	Mycielskian = gen.Mycielskian
	// PowerLaw returns an erased configuration-model graph with a
	// prescribed power-law degree exponent.
	PowerLaw = gen.PowerLaw
)

// MapperByName returns one of the registered coarse-mapping algorithms:
// hec, hecseq, hec2, hec3, hem, hemseq, twohop, mis2, mis2fast, gosh,
// goshhec, suitor, bsuitor.
func MapperByName(name string) (Mapper, error) { return coarsen.MapperByName(name) }

// BuilderByName returns one of the registered construction strategies:
// sort, hash, spgemm, globalsort.
func BuilderByName(name string) (Builder, error) { return coarsen.BuilderByName(name) }

// MapperNames lists the available mapping algorithms.
func MapperNames() []string { return coarsen.MapperNames() }

// BuilderNames lists the available construction strategies.
func BuilderNames() []string { return coarsen.BuilderNames() }

// CoarsenOptions configures the one-call multilevel helper.
type CoarsenOptions struct {
	Cutoff    int    // stop below this vertex count (0 = 50, the paper's)
	MaxLevels int    // hierarchy cap (0 = 201, as in the paper's runs)
	Seed      uint64 // per-level random orders
	Workers   int    // parallelism (0 = GOMAXPROCS)
}

// Coarsen builds a multilevel hierarchy of g using the named mapper and
// builder (see MapperNames and BuilderNames).
func Coarsen(g *Graph, mapper, builder string, opt CoarsenOptions) (*Hierarchy, error) {
	m, err := coarsen.MapperByName(mapper)
	if err != nil {
		return nil, err
	}
	b, err := coarsen.BuilderByName(builder)
	if err != nil {
		return nil, err
	}
	c := &coarsen.Coarsener{
		Mapper: m, Builder: b,
		Cutoff: opt.Cutoff, MaxLevels: opt.MaxLevels,
		Seed: opt.Seed, Workers: opt.Workers,
	}
	return c.Run(g)
}

// BisectOptions configures the one-call bisection helpers.
type BisectOptions struct {
	Mapper  string // coarse-mapping algorithm (default "hec")
	Builder string // construction strategy (default "sort")
	Seed    uint64
	Workers int
}

func (o BisectOptions) coarsener() (coarsen.Coarsener, error) {
	mname := o.Mapper
	if mname == "" {
		mname = "hec"
	}
	bname := o.Builder
	if bname == "" {
		bname = "sort"
	}
	m, err := coarsen.MapperByName(mname)
	if err != nil {
		return coarsen.Coarsener{}, err
	}
	b, err := coarsen.BuilderByName(bname)
	if err != nil {
		return coarsen.Coarsener{}, err
	}
	return coarsen.Coarsener{Mapper: m, Builder: b, Seed: o.Seed, Workers: o.Workers}, nil
}

// FMBisect bisects g with multilevel coarsening, greedy graph growing, and
// Fiduccia–Mattheyses refinement — the paper's best pipeline when run with
// the default HEC mapper.
func FMBisect(g *Graph, opt BisectOptions) (*BisectResult, error) {
	c, err := opt.coarsener()
	if err != nil {
		return nil, err
	}
	b := &partition.FMBisector{Coarsener: c, Seed: opt.Seed}
	return b.Bisect(g)
}

// SpectralBisect bisects g with multilevel coarsening and power-iteration
// spectral refinement (the paper's primary case study).
func SpectralBisect(g *Graph, opt BisectOptions) (*BisectResult, error) {
	c, err := opt.coarsener()
	if err != nil {
		return nil, err
	}
	b := &partition.SpectralBisector{
		Coarsener: c,
		Fiedler:   partition.FiedlerOptions{Workers: opt.Workers},
		Seed:      opt.Seed,
	}
	return b.Bisect(g)
}

// EdgeCut returns the weight of edges crossing a bisection.
func EdgeCut(g *Graph, part []int32) int64 { return partition.EdgeCut(g, part) }

// KWayResult is the outcome of a k-way partition.
type KWayResult = partition.KWayResult

// KWayPartition splits g into k balanced parts by recursive multilevel FM
// bisection with proportional split targets.
func KWayPartition(g *Graph, k int, opt BisectOptions) (*KWayResult, error) {
	c, err := opt.coarsener()
	if err != nil {
		return nil, err
	}
	return partition.KWayFM(g, k, partition.KWayOptions{
		Mapper: c.Mapper, Builder: c.Builder, Seed: opt.Seed, Workers: opt.Workers,
	})
}

// KWayEdgeCut returns the weight of edges crossing any part boundary.
func KWayEdgeCut(g *Graph, part []int32) int64 { return partition.KWayEdgeCut(g, part) }

// ClusterResult is the outcome of multilevel clustering.
type ClusterResult = cluster.Result

// Cluster runs multilevel modularity clustering: coarsen until roughly k
// super-vertices remain, seed clusters from them, and refine with
// modularity-driven local moving at every level.
func Cluster(g *Graph, k int, opt BisectOptions) (*ClusterResult, error) {
	c, err := opt.coarsener()
	if err != nil {
		return nil, err
	}
	return cluster.Multilevel(g, cluster.Options{
		TargetClusters: k,
		Mapper:         c.Mapper, Builder: c.Builder,
		Seed: opt.Seed, Workers: opt.Workers,
	})
}

// Modularity returns Newman's weighted modularity of a labeling.
func Modularity(g *Graph, labels []int32) float64 { return cluster.Modularity(g, labels) }

// SpectralCoordinates computes a 2D multilevel spectral layout of g (the
// second and third Laplacian eigenvectors as coordinates).
func SpectralCoordinates(g *Graph, opt BisectOptions) ([][2]float64, error) {
	c, err := opt.coarsener()
	if err != nil {
		return nil, err
	}
	return partition.SpectralCoordinates(g, partition.DrawOptions{
		Coarsener: c,
		Fiedler:   partition.FiedlerOptions{Workers: opt.Workers},
		Seed:      opt.Seed,
	})
}

// NestedDissection computes a fill-reducing elimination ordering by
// recursive bisection with vertex separators numbered last. Returns perm
// with perm[newPosition] = oldVertex.
func NestedDissection(g *Graph, opt BisectOptions) ([]int32, error) {
	c, err := opt.coarsener()
	if err != nil {
		return nil, err
	}
	return partition.NestedDissection(g, partition.NDOptions{
		Mapper: c.Mapper, Builder: c.Builder, Seed: opt.Seed, Workers: opt.Workers,
	})
}

// MetisLike returns the sequential Metis-style baseline partitioner.
func MetisLike(seed uint64) *FMBisector { return partition.NewMetisLike(seed) }

// MtMetisLike returns the mt-Metis-style baseline partitioner.
func MtMetisLike(seed uint64, workers int) *FMBisector {
	return partition.NewMtMetisLike(seed, workers)
}
