package mlcg_test

import (
	"fmt"

	"mlcg"
)

// ExampleCoarsen shows the one-call multilevel coarsening helper.
func ExampleCoarsen() {
	g := mlcg.Grid2D(40, 40) // 1600-vertex mesh
	h, err := mlcg.Coarsen(g, "hecseq", "sort", mlcg.CoarsenOptions{Seed: 1, Workers: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("coarsest below cutoff:", h.Coarsest().N() <= 50)
	fmt.Println("vertex weight conserved:", h.Coarsest().TotalVertexWeight() == int64(g.N()))
	// Output:
	// coarsest below cutoff: true
	// vertex weight conserved: true
}

// ExampleFMBisect shows multilevel FM bisection.
func ExampleFMBisect() {
	g := mlcg.Grid2D(30, 30)
	res, err := mlcg.FMBisect(g, mlcg.BisectOptions{Seed: 7, Workers: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("balanced:", res.Weights[0] == res.Weights[1])
	fmt.Println("cut positive:", res.Cut > 0)
	// Output:
	// balanced: true
	// cut positive: true
}

// ExampleNewGraph builds a graph from an edge list and inspects it.
func ExampleNewGraph() {
	g, err := mlcg.NewGraph(4, []mlcg.Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}, {U: 2, V: 3, W: 1}, {U: 3, V: 0, W: 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("n =", g.N(), "m =", g.M())
	fmt.Println("total edge weight =", g.TotalEdgeWeight())
	// Output:
	// n = 4 m = 4
	// total edge weight = 7
}

// ExampleKWayPartition splits a mesh into four balanced parts.
func ExampleKWayPartition() {
	g := mlcg.Grid2D(20, 20)
	res, err := mlcg.KWayPartition(g, 4, mlcg.BisectOptions{Seed: 5, Workers: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("parts:", len(res.Weights))
	balanced := true
	for _, w := range res.Weights {
		if w != 100 {
			balanced = false
		}
	}
	fmt.Println("perfectly balanced:", balanced)
	// Output:
	// parts: 4
	// perfectly balanced: true
}

// ExampleMapperNames lists the registered coarsening algorithms.
func ExampleMapperNames() {
	for _, name := range mlcg.MapperNames() {
		fmt.Println(name)
	}
	// Output:
	// hec
	// hecseq
	// hec2
	// hec3
	// hem
	// hemseq
	// twohop
	// mis2
	// mis2fast
	// gosh
	// goshhec
	// suitor
	// bsuitor
}
