module mlcg

go 1.22
