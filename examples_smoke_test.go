package mlcg_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end-to-end via `go run`.
// Gated behind -short because each run compiles a binary.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example execution is slow for -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string]string{
		"quickstart":  "FM bisection",
		"partition":   "metis-like",
		"clustering":  "purity",
		"edgeclasses": "create",
		"drawing":     "4-way cut",
		"embedding":   "AUC",
		"hierarchy":   "best of 3 seeds",
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		found++
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir() // examples write artifacts (svg, dot) to cwd
			wd, err := os.Getwd()
			if err != nil {
				t.Fatal(err)
			}
			bin := filepath.Join(dir, name+".bin")
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			build.Dir = wd // module context for the build
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			cmd.Dir = dir // artifact writes land in the temp dir
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%v\n%s", err, out)
			}
			if want := wants[name]; want != "" && !strings.Contains(string(out), want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		})
	}
	if found < 7 {
		t.Errorf("only %d example directories found", found)
	}
}

// TestCLISmoke runs each user-facing command once with a minimal flag set
// and checks for its signature output line — the "does the binary still
// start, parse flags, and do its job" gate that unit tests of run() cannot
// give because they never link the final main package. Gated behind -short
// like the examples; each case compiles a binary.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke runs are slow for -short")
	}
	cases := []struct {
		cmd  string
		args []string
		want string
	}{
		{"mlcg-coarsen", []string{"-gen", "grid2d", "-quality"}, "mapping quality"},
		{"mlcg-partition", []string{"-gen", "trimesh", "-method", "fm"}, "edge cut:"},
		{"mlcg-embed", []string{"-gen", "rgg", "-dim", "16", "-epochs", "4", "-negatives", "3", "-eval"}, "link-prediction AUC:"},
		{"mlcg-suite", []string{"-scale", "1", "-format", "edgelist", "-dir", "SUITE_DIR"}, "Graph"},
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.cmd, func(t *testing.T) {
			dir := t.TempDir()
			bin := filepath.Join(dir, tc.cmd+".bin")
			build := exec.Command("go", "build", "-o", bin, "./cmd/"+tc.cmd)
			build.Dir = wd
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			args := make([]string, len(tc.args))
			for i, a := range tc.args {
				if a == "SUITE_DIR" {
					a = filepath.Join(dir, "suite")
				}
				args[i] = a
			}
			cmd := exec.Command(bin, args...)
			cmd.Dir = dir
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%v\n%s", err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("output missing %q:\n%s", tc.want, out)
			}
		})
	}
}
