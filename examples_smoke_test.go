package mlcg_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end-to-end via `go run`.
// Gated behind -short because each run compiles a binary.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example execution is slow for -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string]string{
		"quickstart":  "FM bisection",
		"partition":   "metis-like",
		"clustering":  "purity",
		"edgeclasses": "create",
		"drawing":     "4-way cut",
		"embedding":   "AUC",
		"hierarchy":   "best of 3 seeds",
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		found++
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir() // examples write artifacts (svg, dot) to cwd
			wd, err := os.Getwd()
			if err != nil {
				t.Fatal(err)
			}
			bin := filepath.Join(dir, name+".bin")
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			build.Dir = wd // module context for the build
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			cmd.Dir = dir // artifact writes land in the temp dir
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%v\n%s", err, out)
			}
			if want := wants[name]; want != "" && !strings.Contains(string(out), want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		})
	}
	if found < 7 {
		t.Errorf("only %d example directories found", found)
	}
}
