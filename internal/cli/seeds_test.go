package cli

import "testing"

// TestDeriveSeedsStreams pins the derivation contract: deterministic in
// the root, pairwise-distinct streams, none equal to the raw root (so no
// subsystem accidentally consumes the user's seed directly), and
// root-sensitive.
func TestDeriveSeedsStreams(t *testing.T) {
	s := DeriveSeeds(20210517)
	if s != DeriveSeeds(20210517) {
		t.Fatal("DeriveSeeds is not deterministic")
	}
	streams := map[string]uint64{
		"graph":     s.Graph,
		"coarsen":   s.Coarsen,
		"partition": s.Partition,
		"embed":     s.Embed,
		"eval":      s.Eval,
	}
	seen := map[uint64]string{s.Root: "root"}
	for name, v := range streams {
		if prev, dup := seen[v]; dup {
			t.Errorf("stream %s collides with %s (%#x)", name, prev, v)
		}
		seen[v] = name
	}

	other := DeriveSeeds(20210518)
	for name, v := range streams {
		var o uint64
		switch name {
		case "graph":
			o = other.Graph
		case "coarsen":
			o = other.Coarsen
		case "partition":
			o = other.Partition
		case "embed":
			o = other.Embed
		case "eval":
			o = other.Eval
		}
		if v == o {
			t.Errorf("stream %s ignores the root seed", name)
		}
	}
	if s.Root != 20210517 {
		t.Errorf("Root = %d, want the input back", s.Root)
	}

	// Zero is a legal root and must still separate the streams.
	z := DeriveSeeds(0)
	if z.Graph == z.Coarsen || z.Embed == z.Eval || z.Graph == 0 {
		t.Error("zero root does not separate streams")
	}
}
