package cli

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the structured logger the daemons share. format is
// "text" (human-oriented key=value, the default) or "json" (one JSON
// object per line, for log shippers); level is one of debug, info, warn,
// error. Both are compared case-insensitively.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}
