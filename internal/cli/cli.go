package cli

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"mlcg/internal/coarsen"
	"mlcg/internal/gen"
	"mlcg/internal/graph"
	"mlcg/internal/hierfmt"
)

// Formats lists the supported -format values. "mlcg" is the hierfmt
// checksummed container (docs/FORMAT.md) restricted to a single level.
func Formats() string { return "edgelist, metis, binary, mlcg" }

// ConstructPolicies documents the -construct flag values shared by the
// coarsening commands.
func ConstructPolicies() string {
	return "auto, probe, or a fixed builder (" + strings.Join(coarsen.BuilderNames(), ", ") + ")"
}

// Mappers documents the -mapper flag values shared by the coarsening
// commands. Derived from the coarsen.AllMappers registry so a newly
// registered mapper appears in every command's help text automatically.
func Mappers() string {
	all := coarsen.AllMappers()
	names := make([]string, len(all))
	for i, m := range all {
		names[i] = m.Name()
	}
	return strings.Join(names, ", ")
}

// PickBuilder resolves the -construct/-builder flag pair shared by the
// coarsening commands. construct selects the construction policy: "auto"
// (the commands' default) dispatches per level via coarsen.AutoConstruct,
// "probe" additionally times the regime candidates on the first level, and
// any registered builder name pins that fixed strategy. A non-empty
// builder — the pre-policy flag, kept as an explicit override — wins over
// construct.
func PickBuilder(construct, builder string) (coarsen.Builder, error) {
	if builder != "" {
		return coarsen.BuilderByName(builder)
	}
	switch construct {
	case "", "auto":
		return &coarsen.AutoConstruct{}, nil
	case "probe":
		return &coarsen.AutoConstruct{Probe: true}, nil
	}
	return coarsen.BuilderByName(construct)
}

// Generators lists the supported -gen values.
func Generators() string { return "grid2d, grid3d, trimesh, rgg, rmat, ba, road, chain, web" }

// LoadOrGenerate reads a graph from path in the given format, or generates
// one with the named generator when path is empty.
func LoadOrGenerate(path, format, genName string, seed uint64) (*graph.Graph, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		switch strings.ToLower(format) {
		case "", "edgelist":
			// Shard-parallel text parse; identical results to the
			// sequential reader, just faster on multi-MB lists.
			return graph.StreamEdges(f, runtime.GOMAXPROCS(0))
		case "metis":
			return graph.ReadMetis(f)
		case "binary":
			return graph.ReadBinary(f)
		case "mlcg":
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			g, _, err := hierfmt.LoadGraph(data, hierfmt.LoadOptions{})
			return g, err
		}
		return nil, fmt.Errorf("unknown format %q (want %s)", format, Formats())
	}
	switch genName {
	case "grid2d":
		return gen.Grid2D(300, 300), nil
	case "grid3d":
		return gen.Grid3D(40, 40, 40), nil
	case "trimesh":
		return gen.TriMesh(250, 250, seed), nil
	case "rgg":
		return gen.RGG(60000, 0, seed), nil
	case "rmat":
		return gen.RMAT(15, 10, seed), nil
	case "ba":
		return gen.BA(30000, 8, seed), nil
	case "road":
		return gen.RoadLike(250, 250, seed), nil
	case "chain":
		return gen.ChainLike(80000, seed), nil
	case "web":
		return gen.WebLike(40000, seed), nil
	case "":
		return nil, fmt.Errorf("need -in FILE or -gen NAME (one of %s)", Generators())
	}
	return nil, fmt.Errorf("unknown generator %q (want %s)", genName, Generators())
}

// StartProfiles starts pprof collection for the -cpuprofile/-memprofile
// flags shared by the commands. Either path may be empty to skip that
// profile. The returned stop function must be called exactly once, after
// the work being measured: it finishes the CPU profile and snapshots the
// heap profile.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// WriteGraph writes g to path in the given format.
func WriteGraph(g *graph.Graph, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch strings.ToLower(format) {
	case "", "edgelist":
		return g.WriteEdgeList(f)
	case "metis":
		return g.WriteMetis(f)
	case "binary":
		return g.WriteBinary(f)
	case "mlcg":
		return hierfmt.SaveGraph(f, g, hierfmt.SaveOptions{})
	}
	return fmt.Errorf("unknown format %q (want %s)", format, Formats())
}
