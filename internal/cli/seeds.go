package cli

import "mlcg/internal/par"

// Seeds holds the per-subsystem RNG roots derived from the single
// user-facing -seed flag. Each stream is Mix64-separated from the root and
// from every other stream, so subsystems cannot alias each other's
// randomness: changing how many negatives the trainer draws, say, can
// never perturb which edges the evaluation split holds out. Every command
// derives its streams with DeriveSeeds, which makes "same -seed, same
// output" a cross-command guarantee rather than a per-command accident.
type Seeds struct {
	// Root echoes the -seed value the user passed.
	Root uint64
	// Graph keys synthetic-instance generation (the -gen families).
	Graph uint64
	// Coarsen keys mapper tie-breaks and hierarchy construction.
	Coarsen uint64
	// Partition keys partitioner randomness (FM passes, spectral starts).
	Partition uint64
	// Embed keys embedding training: init, edge order, negative sampling.
	Embed uint64
	// Eval keys evaluation hold-out splits (link prediction).
	Eval uint64
}

// Domain-separation constants: ASCII tags of the stream names, xored into
// the root before mixing so the streams are pairwise independent.
const (
	seedTagGraph     = 0x6772617068     // "graph"
	seedTagCoarsen   = 0x636f617273656e // "coarsen"
	seedTagPartition = 0x7061727469746e // "partitn"
	seedTagEmbed     = 0x656d626564     // "embed"
	seedTagEval      = 0x6576616c       // "eval"
)

// DeriveSeeds expands one root seed into the independent subsystem
// streams.
func DeriveSeeds(root uint64) Seeds {
	return Seeds{
		Root:      root,
		Graph:     par.Mix64(root ^ seedTagGraph),
		Coarsen:   par.Mix64(root ^ seedTagCoarsen),
		Partition: par.Mix64(root ^ seedTagPartition),
		Embed:     par.Mix64(root ^ seedTagEmbed),
		Eval:      par.Mix64(root ^ seedTagEval),
	}
}
