// Package cli holds the helpers shared by every command under cmd/: input
// loading in all supported formats, the named synthetic generators, and
// the profiling/tracing flag plumbing, so the tools stay thin wrappers
// over the internal packages.
//
// # Flag conventions
//
// The commands share a vocabulary so that muscle memory transfers:
//
//	-in FILE, -format F   load a graph (edgelist, metis, binary; Formats)
//	-gen NAME             or generate one (grid2d, rmat, ba, ...; Generators)
//	-seed N               every random choice derives from one seed
//	-workers N            parallelism; 0 means GOMAXPROCS
//	-runs N               repetitions per measurement, median reported
//	-only a,b             restrict the Table I suite to named instances
//	-json                 machine-readable rows instead of formatted text
//	-cpuprofile/-memprofile FILE   pprof capture (StartProfiles)
//	-trace FILE, -metrics          kernel tracing (StartObs, internal/obs)
//
// Tools exit 0 on success, 1 on runtime errors, and 2 on usage errors
// (undefined flags, bad flag values, missing arguments).
//
// # Lifecycle helpers
//
// StartProfiles and StartObs both return a stop function that must run
// exactly once after the measured work — several mains exit via os.Exit,
// which skips defers, so the commands call stop explicitly and fold its
// error into the exit code. StartObs wires the shared -trace/-metrics
// flags into internal/obs: when both are off it returns a no-op stop and
// tracing stays disabled, preserving the zero-overhead path.
package cli
