package cli

import (
	"os"
	"path/filepath"
	"testing"

	"mlcg/internal/graph"
)

func TestLoadOrGenerateGenerators(t *testing.T) {
	for _, name := range []string{"grid2d", "trimesh"} {
		g, err := LoadOrGenerate("", "", name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() == 0 {
			t.Errorf("%s: empty graph", name)
		}
	}
	if _, err := LoadOrGenerate("", "", "", 1); err == nil {
		t.Error("missing input accepted")
	}
	if _, err := LoadOrGenerate("", "", "nope", 1); err == nil {
		t.Error("unknown generator accepted")
	}
}

func TestWriteAndLoadRoundTrip(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}})
	dir := t.TempDir()
	for _, format := range []string{"edgelist", "metis", "binary"} {
		path := filepath.Join(dir, "g."+format)
		if err := WriteGraph(g, path, format); err != nil {
			t.Fatalf("%s write: %v", format, err)
		}
		h, err := LoadOrGenerate(path, format, "", 1)
		if err != nil {
			t.Fatalf("%s read: %v", format, err)
		}
		if !graph.Equal(g, h) {
			t.Errorf("%s: round trip changed the graph", format)
		}
	}
	if err := WriteGraph(g, filepath.Join(dir, "g.x"), "nope"); err == nil {
		t.Error("unknown output format accepted")
	}
	if _, err := LoadOrGenerate(filepath.Join(dir, "g.edgelist"), "nope", "", 1); err == nil {
		t.Error("unknown input format accepted")
	}
	if _, err := LoadOrGenerate(filepath.Join(dir, "missing"), "edgelist", "", 1); !os.IsNotExist(err) {
		t.Errorf("missing file error = %v", err)
	}
}

func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}

	// Both paths empty: stop is a no-op that must not fail.
	stop, err = StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
