package cli

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("build", "outcome", "ok", "ms", 12.5)
	var entry map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("json logger wrote non-JSON %q: %v", buf.String(), err)
	}
	if entry["msg"] != "build" || entry["outcome"] != "ok" {
		t.Fatalf("entry = %v", entry)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "", "")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("visible")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "msg=visible") {
		t.Fatalf("default text/info logger wrote %q", out)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "text", "ERROR")
	if err != nil {
		t.Fatal(err)
	}
	lg.Warn("hidden")
	lg.Error("boom")
	if strings.Contains(buf.String(), "hidden") || !strings.Contains(buf.String(), "boom") {
		t.Fatalf("error-level logger wrote %q", buf.String())
	}

	if _, err := NewLogger(&buf, "yaml", "info"); err == nil {
		t.Fatal("accepted unknown format")
	}
	if _, err := NewLogger(&buf, "json", "loud"); err == nil {
		t.Fatal("accepted unknown level")
	}
}
