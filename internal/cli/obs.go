package cli

import (
	"fmt"
	"io"

	"mlcg/internal/obs"
)

// StartObs enables the ambient trace when the shared -trace/-metrics flags
// request it. tracePath may be empty (no trace file) and metrics false (no
// text dump); when both are off the returned stop is a no-op and tracing
// stays disabled, so the instrumented code paths keep their nil-check-only
// cost. The returned stop function must be called exactly once, after the
// work being traced: it closes every open span, writes the Chrome
// trace_event file, and prints the metrics dump to metricsOut.
func StartObs(tracePath string, metrics bool, metricsOut io.Writer) (stop func() error, err error) {
	if tracePath == "" && !metrics {
		return func() error { return nil }, nil
	}
	tr := obs.StartTrace("run")
	if tr == nil {
		return nil, fmt.Errorf("a trace is already attached to this goroutine")
	}
	return func() error {
		tr.Stop()
		if tracePath != "" {
			if err := tr.WriteTraceFile(tracePath); err != nil {
				return err
			}
		}
		if metrics {
			return tr.WriteMetrics(metricsOut)
		}
		return nil
	}, nil
}
