package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"mlcg/internal/par"
)

// streamChunk is the byte granularity of one parallel parse shard. Large
// enough that per-shard overhead (slice headers, worklist dispatch) is
// noise, small enough that a handful of shards are in flight per batch on
// any worker count. A variable so tests can shrink it to force the
// multi-shard carry paths on small inputs.
var streamChunk = 4 << 20

// streamBatch is how many shards one par.For round parses. Reads stay
// sequential (the producer walks the file linearly, which is what page
// cache and disks want); only the CPU-bound field parsing fans out.
const streamBatch = 16

// StreamEdges parses the WriteEdgeList text format like ReadEdgeList, but
// splits the byte stream into newline-aligned shards and parses them on p
// workers. The result is identical to ReadEdgeList on every valid input —
// parsing is per-line and order is restored by shard index — so callers
// choose purely on throughput: field splitting and integer decoding
// dominate text ingest, and both scale with cores.
//
// p <= 1 still uses the shard parser (single worker), which is itself
// faster than ReadEdgeList: it avoids Scanner and strconv overhead with a
// dedicated byte-level tokenizer.
func StreamEdges(r io.Reader, p int) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)

	// The header is parsed inline before sharding: it determines n and the
	// claimed edge count, and keeping it out of the shard grammar means
	// every shard line has the same "u v [w]" shape.
	n, m, err := streamHeader(br)
	if err != nil {
		return nil, err
	}

	type shard struct {
		data  []byte
		edges []Edge
		err   error
	}
	// Capacity from actual content, never the claimed header (adversarial
	// inputs control the header; see ReadEdgeList).
	edges := make([]Edge, 0, min64(m, 1<<16))
	shards := make([]shard, streamBatch)
	var carry []byte // partial last line of the previous read
	done := false
	for !done {
		// Producer: fill up to streamBatch newline-aligned shards.
		filled := 0
		for filled < streamBatch {
			buf := make([]byte, streamChunk)
			copy(buf, carry)
			nr, rerr := io.ReadFull(br, buf[len(carry):])
			buf = buf[:len(carry)+nr]
			carry = nil
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				done = true
			} else if rerr != nil {
				return nil, rerr
			}
			if !done {
				// Push the trailing partial line into the next shard so
				// every shard ends on a line boundary.
				cut := bytes.LastIndexByte(buf, '\n')
				if cut < 0 {
					return nil, fmt.Errorf("graph: edge line exceeds %d bytes", streamChunk)
				}
				carry = append(carry, buf[cut+1:]...)
				buf = buf[:cut+1]
			}
			if len(buf) > 0 {
				shards[filled] = shard{data: buf}
				filled++
			}
			if done {
				break
			}
		}
		// Consumers: parse shards independently, in parallel.
		par.For(filled, p, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				shards[i].edges, shards[i].err = parseEdgeShard(shards[i].data)
			}
		})
		// Ordered merge keeps the edge sequence identical to a sequential
		// read, which FromEdges then canonicalizes either way.
		for i := 0; i < filled; i++ {
			if shards[i].err != nil {
				return nil, shards[i].err
			}
			edges = append(edges, shards[i].edges...)
			shards[i] = shard{}
		}
	}

	g, err := FromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	if g.M() != m {
		return nil, fmt.Errorf("graph: header claims %d edges, found %d after dedup", m, g.M())
	}
	return g, nil
}

// streamHeader consumes comments and blank lines until the "n m" header.
func streamHeader(br *bufio.Reader) (int, int64, error) {
	for {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 && err != nil {
			if err == io.EOF {
				return 0, 0, fmt.Errorf("graph: empty input")
			}
			return 0, 0, err
		}
		t := bytes.TrimSpace(line)
		if len(t) == 0 || t[0] == '#' || t[0] == '%' {
			if err == io.EOF {
				return 0, 0, fmt.Errorf("graph: empty input")
			}
			continue
		}
		f0, rest := nextField(t)
		f1, rest := nextField(rest)
		if f2, _ := nextField(rest); f0 == nil || f1 == nil || f2 != nil {
			return 0, 0, fmt.Errorf("graph: header must be \"n m\", got %q", t)
		}
		nn, ok1 := parseInt(f0)
		mm, ok2 := parseInt(f1)
		if !ok1 || !ok2 {
			return 0, 0, fmt.Errorf("graph: bad header %q", t)
		}
		if nn < 0 || nn > MaxParseVertices || mm < 0 || mm > maxParseEdges {
			return 0, 0, fmt.Errorf("graph: implausible header n=%d m=%d", nn, mm)
		}
		return int(nn), mm, nil
	}
}

// parseEdgeShard parses a newline-aligned run of "u v [w]" lines. Comments
// and blank lines are allowed anywhere, matching ReadEdgeList.
func parseEdgeShard(data []byte) ([]Edge, error) {
	// Pre-size from a line-count estimate: ~8 bytes is the floor for a
	// "u v\n" line, so this is a safe overestimate cap that avoids regrowth
	// without trusting anything but the shard's own length.
	edges := make([]Edge, 0, len(data)/8)
	for len(data) > 0 {
		line := data
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			line, data = data[:nl], data[nl+1:]
		} else {
			data = nil
		}
		t := bytes.TrimSpace(line)
		if len(t) == 0 || t[0] == '#' || t[0] == '%' {
			continue
		}
		f0, rest := nextField(t)
		f1, rest := nextField(rest)
		f2, rest := nextField(rest)
		if f3, _ := nextField(rest); f0 == nil || f1 == nil || f3 != nil {
			return nil, fmt.Errorf("graph: want \"u v [w]\", got %q", t)
		}
		u, ok1 := parseInt(f0)
		v, ok2 := parseInt(f1)
		w, ok3 := int64(1), true
		if f2 != nil {
			w, ok3 = parseInt(f2)
		}
		if !ok1 || !ok2 || !ok3 || u != int64(int32(u)) || v != int64(int32(v)) {
			return nil, fmt.Errorf("graph: bad edge %q", t)
		}
		edges = append(edges, Edge{int32(u), int32(v), w})
	}
	return edges, nil
}

// nextField splits the leading whitespace-delimited token off t, returning
// nil when none remains.
func nextField(t []byte) (field, rest []byte) {
	i := 0
	for i < len(t) && (t[i] == ' ' || t[i] == '\t' || t[i] == '\r') {
		i++
	}
	j := i
	for j < len(t) && t[j] != ' ' && t[j] != '\t' && t[j] != '\r' {
		j++
	}
	if i == j {
		return nil, nil
	}
	return t[i:j], t[j:]
}

// parseInt is a minimal signed decimal parser over a byte field — the
// strconv string round-trip is the hottest allocation in text ingest.
// Overflow-checks against int64 like strconv.ParseInt(s, 10, 64).
func parseInt(f []byte) (int64, bool) {
	neg := false
	if len(f) > 0 && (f[0] == '-' || f[0] == '+') {
		neg = f[0] == '-'
		f = f[1:]
	}
	if len(f) == 0 {
		return 0, false
	}
	var v int64
	for _, c := range f {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := int64(c - '0')
		if v > (1<<63-1-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	if neg {
		v = -v
	}
	return v, true
}
