package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g as a plain-text edge list: a header line
// "n m" followed by one "u v w" line per undirected edge (u < v).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumV, g.M()); err != nil {
		return err
	}
	for u := int32(0); u < g.NumV; u++ {
		adj, wgt := g.Neighbors(u)
		for i, v := range adj {
			if u < v {
				if _, err := fmt.Fprintf(bw, "%d %d %d\n", u, v, wgt[i]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// MaxParseVertices bounds the vertex count parsers accept (2^28). The
// limit exists so that a tiny crafted header cannot demand an enormous
// allocation; it is far above the module's laptop-scale workloads.
const MaxParseVertices = 1 << 28

// maxParseEdges bounds claimed edge counts the parsers trust.
const maxParseEdges = int64(1) << 33

// ReadEdgeList parses the format written by WriteEdgeList. The weight
// column is optional (defaults to 1), so plain "u v" edge lists load too.
// Lines starting with '#' or '%' are comments.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int
	var m int64
	var edges []Edge
	lineNo := 0
	header := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if !header {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: header must be \"n m\"", lineNo)
			}
			nn, err1 := strconv.Atoi(fields[0])
			mm, err2 := strconv.ParseInt(fields[1], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad header %q", lineNo, line)
			}
			if nn < 0 || nn > MaxParseVertices || mm < 0 || mm > maxParseEdges {
				return nil, fmt.Errorf("graph: line %d: implausible header n=%d m=%d", lineNo, nn, mm)
			}
			n, m = nn, mm
			// Capacity grows with actual content, never with the claimed
			// header (which an adversarial input controls).
			edges = make([]Edge, 0, min64(m, 1<<16))
			header = true
			continue
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want \"u v [w]\", got %q", lineNo, line)
		}
		u, err1 := strconv.ParseInt(fields[0], 10, 32)
		v, err2 := strconv.ParseInt(fields[1], 10, 32)
		w := int64(1)
		var err3 error
		if len(fields) == 3 {
			w, err3 = strconv.ParseInt(fields[2], 10, 64)
		}
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("graph: line %d: bad edge %q", lineNo, line)
		}
		edges = append(edges, Edge{int32(u), int32(v), w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !header {
		return nil, fmt.Errorf("graph: empty input")
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	if g.M() != m {
		return nil, fmt.Errorf("graph: header claims %d edges, found %d after dedup", m, g.M())
	}
	return g, nil
}

const binMagic = uint64(0x6d6c63672d637372) // "mlcg-csr"

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// WriteBinary writes g in a compact little-endian CSR container. The
// format: magic, n, nnz, hasVWgt flag, then Xadj, Adj, Wgt, and VWgt.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint64{binMagic, uint64(g.NumV), uint64(len(g.Adj)), 0}
	if g.VWgt != nil {
		hdr[3] = 1
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Xadj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Adj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Wgt); err != nil {
		return err
	}
	if g.VWgt != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.VWgt); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readChunk bounds how many elements the binary readers allocate per step.
// Size-prefixed formats must never trust a claimed length for an up-front
// make(): a 32-byte crafted header claiming 2^34 elements would otherwise
// demand tens of GiB before the short read is even noticed. Growing in
// bounded windows means a truncated stream fails after at most one chunk.
const readChunk = 1 << 16

// ReadI64Chunked reads count little-endian int64 values, allocating in
// readChunk-element steps so the peak over-allocation on a lying length
// prefix is bounded. Shared by the CSR container and the hierarchy format.
func ReadI64Chunked(r io.Reader, count int, what string) ([]int64, error) {
	out := make([]int64, 0, min(count, readChunk))
	for len(out) < count {
		k := min(count-len(out), readChunk)
		out = append(out, make([]int64, k)...)
		if err := binary.Read(r, binary.LittleEndian, out[len(out)-k:]); err != nil {
			return nil, fmt.Errorf("graph: short %s (%d/%d values): %w", what, len(out)-k, count, err)
		}
	}
	return out, nil
}

// ReadI32Chunked is ReadI64Chunked for int32 payloads.
func ReadI32Chunked(r io.Reader, count int, what string) ([]int32, error) {
	out := make([]int32, 0, min(count, readChunk))
	for len(out) < count {
		k := min(count-len(out), readChunk)
		out = append(out, make([]int32, k)...)
		if err := binary.Read(r, binary.LittleEndian, out[len(out)-k:]); err != nil {
			return nil, fmt.Errorf("graph: short %s (%d/%d values): %w", what, len(out)-k, count, err)
		}
	}
	return out, nil
}

// ReadBinary parses the container written by WriteBinary and validates the
// result. It is safe on untrusted input: claimed lengths are range-checked
// and materialized in bounded chunks, so truncated or lying headers produce
// an error, not an enormous allocation.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: short binary header: %w", err)
		}
	}
	if hdr[0] != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	if hdr[1] > MaxParseVertices || hdr[2] > uint64(2*maxParseEdges) || hdr[3] > 1 {
		return nil, fmt.Errorf("graph: bad binary sizes n=%d nnz=%d flag=%d", hdr[1], hdr[2], hdr[3])
	}
	n, nnz := int(hdr[1]), int(hdr[2])
	g := &Graph{NumV: int32(n)}
	var err error
	if g.Xadj, err = ReadI64Chunked(br, n+1, "Xadj"); err != nil {
		return nil, err
	}
	if g.Adj, err = ReadI32Chunked(br, nnz, "Adj"); err != nil {
		return nil, err
	}
	if g.Wgt, err = ReadI64Chunked(br, nnz, "Wgt"); err != nil {
		return nil, err
	}
	if hdr[3] == 1 {
		if g.VWgt, err = ReadI64Chunked(br, n, "VWgt"); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteDOT writes g in Graphviz DOT format, optionally coloring vertices by
// a group array (e.g. a coarse mapping or a bisection part vector). Used by
// the Fig 1 demo to visualize one level of coarsening.
func (g *Graph) WriteDOT(w io.Writer, name string, group []int32) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %q {\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	palette := []string{
		"lightblue", "salmon", "palegreen", "gold", "plum", "lightgray",
		"orange", "cyan", "pink", "yellowgreen", "tan", "orchid",
	}
	for u := int32(0); u < g.NumV; u++ {
		if group != nil {
			color := palette[int(group[u])%len(palette)]
			fmt.Fprintf(bw, "  %d [style=filled, fillcolor=%s, label=\"%d/%d\"];\n", u, color, u, group[u])
		} else {
			fmt.Fprintf(bw, "  %d;\n", u)
		}
	}
	for u := int32(0); u < g.NumV; u++ {
		adj, wgt := g.Neighbors(u)
		for i, v := range adj {
			if u < v {
				fmt.Fprintf(bw, "  %d -- %d [label=%d];\n", u, v, wgt[i])
			}
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
