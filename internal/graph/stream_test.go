package graph

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// edgeListText renders a messy-but-valid edge list: comments, blank lines,
// mixed weight columns, tabs, CRLF — everything ReadEdgeList tolerates.
func edgeListText(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	type pair struct{ u, v int32 }
	seen := map[pair]bool{}
	var lines []string
	for i := 0; i < n*4; i++ {
		u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			continue
		}
		seen[pair{u, v}] = true
		switch rng.Intn(4) {
		case 0:
			lines = append(lines, fmt.Sprintf("%d %d", u, v))
		case 1:
			lines = append(lines, fmt.Sprintf("%d\t%d\t%d", u, v, 1+rng.Intn(9)))
		case 2:
			lines = append(lines, fmt.Sprintf("  %d %d %d\r", u, v, 1+rng.Intn(9)))
		default:
			lines = append(lines, fmt.Sprintf("%d %d %d", u, v, 1+rng.Intn(9)))
		}
		if rng.Intn(10) == 0 {
			lines = append(lines, "# comment", "")
		}
	}
	fmt.Fprintf(&b, "%% leading comment\n\n%d %d\n", n, len(seen))
	b.WriteString(strings.Join(lines, "\n"))
	if seed%2 == 0 {
		b.WriteString("\n") // half the cases end without a newline
	}
	return b.String()
}

func TestStreamEdgesMatchesReadEdgeList(t *testing.T) {
	for _, n := range []int{5, 60, 500} {
		for seed := int64(0); seed < 4; seed++ {
			text := edgeListText(n, seed)
			want, err := ReadEdgeList(strings.NewReader(text))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{1, 2, 8} {
				got, err := StreamEdges(strings.NewReader(text), p)
				if err != nil {
					t.Fatalf("n=%d seed=%d p=%d: %v", n, seed, p, err)
				}
				if !Equal(want, got) {
					t.Fatalf("n=%d seed=%d p=%d: StreamEdges differs from ReadEdgeList", n, seed, p)
				}
			}
		}
	}
}

// TestStreamEdgesSharding forces the multi-shard carry paths: a tiny shard
// size makes every boundary land mid-line, and a drip reader adds short
// reads on top. The result must still match the sequential parser exactly.
func TestStreamEdgesSharding(t *testing.T) {
	text := edgeListText(300, 7)
	want, err := ReadEdgeList(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	defer func(old int) { streamChunk = old }(streamChunk)
	for _, chunk := range []int{64, 129, 4096} {
		streamChunk = chunk
		got, err := StreamEdges(&drip{data: []byte(text), step: 13}, 4)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if !Equal(want, got) {
			t.Fatalf("chunk=%d: StreamEdges differs from ReadEdgeList", chunk)
		}
	}
	// A line longer than the shard size must fail cleanly, not mis-parse.
	streamChunk = 8
	if _, err := StreamEdges(strings.NewReader(text), 2); err == nil {
		t.Error("over-long line accepted at tiny shard size")
	}
}

type drip struct {
	data []byte
	step int
}

func (d *drip) Read(p []byte) (int, error) {
	if len(d.data) == 0 {
		return 0, io.EOF
	}
	k := min(d.step, min(len(p), len(d.data)))
	copy(p, d.data[:k])
	d.data = d.data[k:]
	return k, nil
}

func TestStreamEdgesErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"comment-only", "# nothing\n"},
		{"bad-header", "a b\n"},
		{"header-extra-field", "3 2 9\n0 1\n1 2\n"},
		{"implausible-n", fmt.Sprintf("%d 1\n0 1\n", MaxParseVertices+1)},
		{"bad-edge", "2 1\n0 x\n"},
		{"edge-extra-field", "2 1\n0 1 2 3\n"},
		{"self-loop", "2 1\n1 1\n"},
		{"out-of-range", "2 1\n0 5\n"},
		{"edge-count-lie", "3 5\n0 1\n1 2\n"},
		{"overflow-weight", "2 1\n0 1 99999999999999999999\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := StreamEdges(strings.NewReader(tc.in), 2); err == nil {
				t.Error("invalid input accepted")
			}
			// ReadEdgeList must agree that it's invalid.
			if _, err := ReadEdgeList(strings.NewReader(tc.in)); err == nil {
				t.Error("ReadEdgeList accepted what StreamEdges should reject")
			}
		})
	}
}

func TestParseInt(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true}, {"7", 7, true}, {"-3", -3, true}, {"+9", 9, true},
		{"007", 7, true}, {"2147483647", 2147483647, true},
		{"9223372036854775807", 1<<63 - 1, true},
		{"9223372036854775808", 0, false}, // overflow
		{"", 0, false}, {"-", 0, false}, {"1x", 0, false}, {" 1", 0, false},
	}
	for _, tc := range cases {
		got, ok := parseInt([]byte(tc.in))
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("parseInt(%q) = %d,%v; want %d,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func BenchmarkIngestText(b *testing.B) {
	// A ~2 MB synthetic list, rendered once.
	data := []byte(edgeListText(20000, 1))
	b.Run("ReadEdgeList", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := ReadEdgeList(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("StreamEdges-p%d", p), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := StreamEdges(bytes.NewReader(data), p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
