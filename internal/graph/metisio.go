package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMetis writes g in the Metis/Chaco .graph format: a header line
// "n m fmt" followed by one line per vertex listing its neighbors
// (1-indexed). fmt is chosen automatically: 1 when edge weights are
// non-unit ("001"), 11 when vertex weights are also present ("011").
func (g *Graph) WriteMetis(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hasEW := false
	for _, wt := range g.Wgt {
		if wt != 1 {
			hasEW = true
			break
		}
	}
	hasVW := g.VWgt != nil
	format := ""
	switch {
	case hasVW && hasEW:
		format = " 011"
	case hasVW:
		format = " 010"
	case hasEW:
		format = " 001"
	}
	if _, err := fmt.Fprintf(bw, "%d %d%s\n", g.NumV, g.M(), format); err != nil {
		return err
	}
	for u := int32(0); u < g.NumV; u++ {
		first := true
		if hasVW {
			fmt.Fprintf(bw, "%d", g.VertexWeight(u))
			first = false
		}
		adj, wgt := g.Neighbors(u)
		for k, v := range adj {
			if !first {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			first = false
			if hasEW {
				fmt.Fprintf(bw, "%d %d", v+1, wgt[k])
			} else {
				fmt.Fprintf(bw, "%d", v+1)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMetis parses the Metis/Chaco .graph format, supporting the 000, 001,
// 010, and 011 format codes (edge weights, vertex weights, or both;
// multi-constraint vertex weights are not supported). Comment lines start
// with '%'.
func ReadMetis(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Comment lines (starting with %) are skipped everywhere. Blank lines
	// are skipped only before the header: a blank vertex line is a valid
	// isolated vertex.
	nextLine := func(skipBlank bool) (string, bool) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if len(line) > 0 && line[0] == '%' {
				continue
			}
			if line == "" && skipBlank {
				continue
			}
			return line, true
		}
		return "", false
	}

	header, ok := nextLine(true)
	if !ok {
		return nil, fmt.Errorf("graph: empty metis input")
	}
	hf := strings.Fields(header)
	if len(hf) < 2 || len(hf) > 4 {
		return nil, fmt.Errorf("graph: bad metis header %q", header)
	}
	n, err1 := strconv.Atoi(hf[0])
	m, err2 := strconv.ParseInt(hf[1], 10, 64)
	if err1 != nil || err2 != nil || n < 0 {
		return nil, fmt.Errorf("graph: bad metis header %q", header)
	}
	if n > MaxParseVertices || m < 0 || m > maxParseEdges {
		return nil, fmt.Errorf("graph: implausible metis header n=%d m=%d", n, m)
	}
	hasVW, hasEW := false, false
	if len(hf) >= 3 {
		code := hf[2]
		if len(code) > 3 {
			return nil, fmt.Errorf("graph: bad metis format code %q", code)
		}
		for len(code) < 3 {
			code = "0" + code
		}
		if code[0] != '0' {
			return nil, fmt.Errorf("graph: metis vertex sizes (fmt %q) unsupported", hf[2])
		}
		hasVW = code[1] == '1'
		hasEW = code[2] == '1'
	}
	if len(hf) == 4 && hf[3] != "1" {
		return nil, fmt.Errorf("graph: multi-constraint metis files (ncon=%s) unsupported", hf[3])
	}

	// Allocations grow with the actual input, never with the header's
	// claims (an adversarial header must not demand huge buffers).
	edges := make([]Edge, 0, min64(m, 1<<16))
	var vwgt []int64
	for u := 0; u < n; u++ {
		line, ok := nextLine(false)
		if !ok {
			return nil, fmt.Errorf("graph: metis file ends at vertex %d of %d", u+1, n)
		}
		fields := strings.Fields(line)
		idx := 0
		if hasVW {
			if len(fields) == 0 {
				return nil, fmt.Errorf("graph: vertex %d missing weight", u+1)
			}
			w, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("graph: vertex %d bad weight %q", u+1, fields[0])
			}
			vwgt = append(vwgt, w)
			idx = 1
		}
		step := 1
		if hasEW {
			step = 2
		}
		for ; idx < len(fields); idx += step {
			v, err := strconv.ParseInt(fields[idx], 10, 32)
			if err != nil || v < 1 || int(v) > n {
				return nil, fmt.Errorf("graph: vertex %d bad neighbor %q", u+1, fields[idx])
			}
			w := int64(1)
			if hasEW {
				if idx+1 >= len(fields) {
					return nil, fmt.Errorf("graph: vertex %d neighbor %d missing weight", u+1, v)
				}
				w, err = strconv.ParseInt(fields[idx+1], 10, 64)
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("graph: vertex %d bad edge weight %q", u+1, fields[idx+1])
				}
			}
			if int64(u) < v-1 { // each undirected edge appears twice; keep one
				edges = append(edges, Edge{int32(u), int32(v - 1), w})
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	if g.M() != m {
		return nil, fmt.Errorf("graph: metis header claims %d edges, found %d", m, g.M())
	}
	g.VWgt = vwgt
	return g, nil
}

// RelabelByBFS returns a copy of g with vertices renumbered in BFS order
// from the given source (improving CSR locality, the paper's "relabel
// vertex identifiers" preprocessing), plus the old-id array indexed by new
// id. The graph must be connected.
func (g *Graph) RelabelByBFS(src int32) (*Graph, []int32, error) {
	_, order := g.BFS(src)
	if len(order) != g.N() {
		return nil, nil, fmt.Errorf("graph: RelabelByBFS requires a connected graph (%d of %d reached)",
			len(order), g.N())
	}
	newID := make([]int32, g.NumV)
	for pos, old := range order {
		newID[old] = int32(pos)
	}
	var edges []Edge
	for u := int32(0); u < g.NumV; u++ {
		adj, wgt := g.Neighbors(u)
		for k, v := range adj {
			if u < v {
				edges = append(edges, Edge{newID[u], newID[v], wgt[k]})
			}
		}
	}
	out, err := FromEdges(g.N(), edges)
	if err != nil {
		return nil, nil, err
	}
	if g.VWgt != nil {
		out.VWgt = make([]int64, g.NumV)
		for old, vw := range g.VWgt {
			out.VWgt[newID[old]] = vw
		}
	}
	return out, order, nil
}
