package graph

import (
	"testing"
	"testing/quick"

	"mlcg/internal/par"
)

// path returns a path graph 0-1-2-...-n-1 with unit weights.
func path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{int32(i), int32(i + 1), 1})
	}
	return MustFromEdges(n, edges)
}

// star returns a star with center 0 and n-1 leaves.
func star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{0, int32(i), 1})
	}
	return MustFromEdges(n, edges)
}

func TestFromEdgesBasics(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {3, 0, 5}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("n=%d m=%d, want 4,4", g.N(), g.M())
	}
	if w, ok := g.EdgeWeight(2, 1); !ok || w != 3 {
		t.Errorf("EdgeWeight(2,1) = %d,%v", w, ok)
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected edge {0,2}")
	}
	if g.TotalEdgeWeight() != 14 {
		t.Errorf("TotalEdgeWeight = %d, want 14", g.TotalEdgeWeight())
	}
	if g.Size() != 12 {
		t.Errorf("Size = %d, want 12", g.Size())
	}
}

func TestFromEdgesMergesDuplicatesAndDropsLoops(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1, 1}, {1, 0, 2}, {0, 0, 9}, {1, 2, 1}})
	if g.M() != 2 {
		t.Fatalf("m = %d, want 2", g.M())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 3 {
		t.Errorf("merged weight = %d, want 3", w)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesRejectsBadInput(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5, 1}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromEdges(2, []Edge{{0, 1, 0}}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := FromEdges(2, []Edge{{0, 1, -3}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := FromEdges(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
}

func TestEmptyAndSingletonGraphs(t *testing.T) {
	g := MustFromEdges(0, nil)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("empty graph should count as connected")
	}
	s := MustFromEdges(1, nil)
	if s.Degree(0) != 0 || s.M() != 0 {
		t.Error("singleton graph malformed")
	}
	if s.DegreeSkew() != 0 {
		t.Errorf("skew = %v, want 0", s.DegreeSkew())
	}
}

func TestDegreeStats(t *testing.T) {
	g := star(11)
	if g.MaxDegree() != 10 {
		t.Errorf("MaxDegree = %d, want 10", g.MaxDegree())
	}
	if got := g.AvgDegree(); got < 1.8 || got > 1.82 {
		t.Errorf("AvgDegree = %v, want ~1.818", got)
	}
	if g.DegreeSkew() < 5 {
		t.Errorf("star should be skewed, got %v", g.DegreeSkew())
	}
	p := path(100)
	if p.DegreeSkew() > 1.2 {
		t.Errorf("path should be regular, got %v", p.DegreeSkew())
	}
}

func TestVertexWeights(t *testing.T) {
	g := path(3)
	if g.VertexWeight(0) != 1 || g.TotalVertexWeight() != 3 {
		t.Error("nil VWgt should act as all ones")
	}
	g.MaterializeVWgt()
	g.VWgt[1] = 5
	if g.TotalVertexWeight() != 7 {
		t.Errorf("TotalVertexWeight = %d, want 7", g.TotalVertexWeight())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Graph { return path(4) }

	g := fresh()
	g.Adj[0] = 0 // self-loop at vertex 0
	if g.Validate() == nil {
		t.Error("self-loop not caught")
	}

	g = fresh()
	g.Wgt[0] = -1
	if g.Validate() == nil {
		t.Error("negative weight not caught")
	}

	g = fresh()
	g.Wgt[0] = 2 // asymmetric weight
	if g.Validate() == nil {
		t.Error("asymmetric weight not caught")
	}

	g = fresh()
	g.Xadj[1] = 99
	if g.Validate() == nil {
		t.Error("bad Xadj not caught")
	}

	g = fresh()
	g.VWgt = make([]int64, 2)
	if g.Validate() == nil {
		t.Error("short VWgt not caught")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := path(5)
	g.MaterializeVWgt()
	h := g.Clone()
	h.Wgt[0] = 99
	h.VWgt[0] = 99
	if g.Wgt[0] == 99 || g.VWgt[0] == 99 {
		t.Error("Clone shares storage")
	}
	if !Equal(g, g.Clone()) {
		t.Error("clone not Equal to original")
	}
}

func TestEqual(t *testing.T) {
	a := MustFromEdges(3, []Edge{{0, 1, 1}, {1, 2, 2}})
	b := MustFromEdges(3, []Edge{{1, 0, 1}, {2, 1, 2}})
	if !Equal(a, b) {
		t.Error("isomorphic-identical graphs not Equal")
	}
	c := MustFromEdges(3, []Edge{{0, 1, 1}, {1, 2, 3}})
	if Equal(a, c) {
		t.Error("different weights reported Equal")
	}
	d := MustFromEdges(3, []Edge{{0, 1, 1}, {0, 2, 2}})
	if Equal(a, d) {
		t.Error("different structure reported Equal")
	}
	// Equal must handle unsorted adjacency produced by hash construction.
	e := a.Clone()
	adj, wgt := e.Neighbors(1)
	adj[0], adj[1] = adj[1], adj[0]
	wgt[0], wgt[1] = wgt[1], wgt[0]
	if !Equal(a, e) {
		t.Error("Equal is order-sensitive")
	}
}

func TestBFS(t *testing.T) {
	g := path(5)
	dist, order := g.BFS(0)
	for i := 0; i < 5; i++ {
		if dist[i] != int32(i) {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
	if len(order) != 5 || order[0] != 0 {
		t.Errorf("bad BFS order %v", order)
	}
	dist, _ = g.BFS(2)
	if dist[0] != 2 || dist[4] != 2 {
		t.Errorf("BFS from middle wrong: %v", dist)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: a triangle and an edge.
	g := MustFromEdges(5, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {3, 4, 1}})
	comp, k := g.ConnectedComponents()
	if k != 2 {
		t.Fatalf("k = %d, want 2", k)
	}
	if comp[0] != comp[1] || comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] {
		t.Errorf("bad component labels %v", comp)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if !path(10).IsConnected() {
		t.Error("path reported disconnected")
	}
}

func TestLargestComponent(t *testing.T) {
	// Big component: path 0..5 (6 vertices); small: edge {6,7}; isolated 8.
	edges := []Edge{{6, 7, 3}}
	for i := 0; i < 5; i++ {
		edges = append(edges, Edge{int32(i), int32(i + 1), int64(i + 1)})
	}
	g := MustFromEdges(9, edges)
	lcc, oldID := g.LargestComponent()
	if lcc.N() != 6 || lcc.M() != 5 {
		t.Fatalf("lcc n=%d m=%d, want 6,5", lcc.N(), lcc.M())
	}
	if err := lcc.Validate(); err != nil {
		t.Fatal(err)
	}
	for newV, oldV := range oldID {
		if int32(newV) != oldV { // the path occupies ids 0..5 already
			t.Errorf("oldID[%d] = %d", newV, oldV)
		}
	}
	// Weights preserved through relabeling.
	if w, _ := lcc.EdgeWeight(3, 4); w != 4 {
		t.Errorf("weight lost in extraction: %d", w)
	}
	// Connected input returns the same graph.
	p := path(4)
	same, ids := p.LargestComponent()
	if same != p || ids != nil {
		t.Error("connected graph should be returned unchanged")
	}
}

func TestInducedSubgraphVertexWeights(t *testing.T) {
	g := path(4)
	g.MaterializeVWgt()
	g.VWgt[2] = 7
	keep := []bool{false, true, true, true}
	sub, oldID := g.InducedSubgraph(keep)
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("sub n=%d m=%d", sub.N(), sub.M())
	}
	if sub.VWgt[1] != 7 {
		t.Errorf("vertex weight not carried: %v (oldID %v)", sub.VWgt, oldID)
	}
}

func TestSortAdjacencyCanonicalizes(t *testing.T) {
	g := path(50)
	// Scramble one list.
	adj, wgt := g.Neighbors(25)
	adj[0], adj[1] = adj[1], adj[0]
	wgt[0], wgt[1] = wgt[1], wgt[0]
	g.SortAdjacency(4)
	adj, _ = g.Neighbors(25)
	if adj[0] != 24 || adj[1] != 26 {
		t.Errorf("adjacency not sorted: %v", adj)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	// Star with 8 leaves: 8 vertices of degree 1 (bin 0), 1 of degree 8
	// (bin 3).
	g := star(9)
	h := g.DegreeHistogram()
	if len(h) != 4 || h[0] != 8 || h[3] != 1 || h[1] != 0 || h[2] != 0 {
		t.Errorf("histogram = %v", h)
	}
	// Isolated vertices land in bin 0.
	iso := MustFromEdges(3, []Edge{{0, 1, 1}})
	hi := iso.DegreeHistogram()
	if hi[0] != 3 { // two degree-1 endpoints + one isolated
		t.Errorf("histogram = %v", hi)
	}
	var total int64
	for _, c := range h {
		total += c
	}
	if total != int64(g.N()) {
		t.Errorf("histogram total %d != n %d", total, g.N())
	}
}

func TestComputeStats(t *testing.T) {
	g := star(5)
	s := g.ComputeStats()
	if s.N != 5 || s.M != 4 || s.MaxDeg != 4 || s.Weighted {
		t.Errorf("bad stats %+v", s)
	}
	h := MustFromEdges(2, []Edge{{0, 1, 7}})
	if !h.ComputeStats().Weighted {
		t.Error("weighted graph not flagged")
	}
}

// randomGraphFromSeed builds a small random graph deterministically; used
// by the property tests.
func randomGraphFromSeed(seed uint64, n int) *Graph {
	if n < 2 {
		n = 2
	}
	rng := par.NewRNG(seed)
	var edges []Edge
	// Spanning path keeps it connected, then extra random edges.
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{int32(i), int32(i + 1), int64(rng.Intn(9) + 1)})
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, Edge{int32(u), int32(v), int64(rng.Intn(9) + 1)})
		}
	}
	return MustFromEdges(n, edges)
}

func TestQuickBuiltGraphsAlwaysValid(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		g := randomGraphFromSeed(seed, int(nRaw%64)+2)
		return g.Validate() == nil && g.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickHandshake(t *testing.T) {
	// Sum of degrees is exactly 2m for every built graph.
	f := func(seed uint64, nRaw uint8) bool {
		g := randomGraphFromSeed(seed, int(nRaw%64)+2)
		var degSum int64
		for u := int32(0); u < g.NumV; u++ {
			degSum += g.Degree(u)
		}
		return degSum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
