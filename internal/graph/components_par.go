package graph

import (
	"sync/atomic"

	"mlcg/internal/par"
)

// ConnectedComponentsPar labels connected components with a parallel
// hook-and-compress algorithm (Shiloach–Vishkin style): every vertex
// repeatedly hooks onto the smallest root among its neighbors, then paths
// are compressed by pointer jumping. Converges in O(log n) rounds on
// typical graphs and matches ConnectedComponents' labeling up to
// renumbering. p is the worker count (0 = GOMAXPROCS).
func (g *Graph) ConnectedComponentsPar(p int) ([]int32, int32) {
	n := g.N()
	parent := make([]int32, n)
	par.ForEach(n, p, func(i int) {
		parent[i] = int32(i)
	})
	if n == 0 {
		return parent, 0
	}
	for {
		var changed int32
		// Hook: point each vertex's root at the smallest neighboring root.
		par.ForEachChunked(n, p, 256, func(i int) {
			u := int32(i)
			pu := atomic.LoadInt32(&parent[u])
			best := pu
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if pv := atomic.LoadInt32(&parent[v]); pv < best {
					best = pv
				}
			}
			if best < pu {
				// Atomic-min on parent[pu] and parent[u].
				atomicMin32(&parent[pu], best)
				atomicMin32(&parent[u], best)
				atomic.StoreInt32(&changed, 1)
			}
		})
		// Compress: full pointer jumping to the current roots.
		par.ForEachChunked(n, p, 512, func(i int) {
			u := int32(i)
			r := atomic.LoadInt32(&parent[u])
			for {
				next := atomic.LoadInt32(&parent[r])
				if next == r {
					break
				}
				r = next
			}
			atomic.StoreInt32(&parent[u], r)
		})
		if changed == 0 {
			break
		}
	}
	// Compact root ids to [0, k).
	newID := make([]int32, n)
	var k int32
	for u := 0; u < n; u++ {
		if parent[u] == int32(u) {
			newID[u] = k
			k++
		}
	}
	comp := make([]int32, n)
	par.ForEach(n, p, func(i int) {
		comp[i] = newID[parent[i]]
	})
	return comp, k
}

// atomicMin32 lowers *addr to v if v is smaller.
func atomicMin32(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if v >= cur {
			return
		}
		if atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}
