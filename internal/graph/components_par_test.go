package graph

import (
	"testing"
	"testing/quick"

	"mlcg/internal/par"
)

func TestConnectedComponentsParMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 4} {
		// Triangle + edge + isolated vertex.
		g := MustFromEdges(6, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {3, 4, 1}})
		comp, k := g.ConnectedComponentsPar(p)
		if k != 3 {
			t.Fatalf("p=%d: k = %d, want 3", p, k)
		}
		if comp[0] != comp[1] || comp[1] != comp[2] {
			t.Errorf("triangle split: %v", comp)
		}
		if comp[3] != comp[4] || comp[3] == comp[0] || comp[5] == comp[0] || comp[5] == comp[3] {
			t.Errorf("labels wrong: %v", comp)
		}
	}
}

func TestConnectedComponentsParQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := par.NewRNG(seed)
		n := int(nRaw%80) + 2
		var e []Edge
		// Random sparse edges: typically several components.
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				e = append(e, Edge{int32(u), int32(v), 1})
			}
		}
		g := MustFromEdges(n, e)
		seqComp, seqK := g.ConnectedComponents()
		parComp, parK := g.ConnectedComponentsPar(3)
		if seqK != parK {
			return false
		}
		// Same partition up to renumbering: equal labels iff equal labels.
		remap := map[int32]int32{}
		for u := 0; u < n; u++ {
			if want, ok := remap[seqComp[u]]; ok {
				if parComp[u] != want {
					return false
				}
			} else {
				remap[seqComp[u]] = parComp[u]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConnectedComponentsParPath(t *testing.T) {
	// A long path stresses the pointer-jumping convergence.
	n := 5000
	var e []Edge
	for i := 0; i < n-1; i++ {
		e = append(e, Edge{int32(i), int32(i + 1), 1})
	}
	g := MustFromEdges(n, e)
	comp, k := g.ConnectedComponentsPar(4)
	if k != 1 {
		t.Fatalf("k = %d", k)
	}
	for _, c := range comp {
		if c != 0 {
			t.Fatal("path split")
		}
	}
}

func TestConnectedComponentsParEmpty(t *testing.T) {
	g := MustFromEdges(0, nil)
	if _, k := g.ConnectedComponentsPar(2); k != 0 {
		t.Errorf("k = %d", k)
	}
}
