package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 1, 2}, {1, 2, 3}, {2, 3, 1}, {3, 4, 9}, {4, 0, 1}})
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, h) {
		t.Error("edge-list round trip changed the graph")
	}
}

func TestReadEdgeListDefaultsAndComments(t *testing.T) {
	in := `# a comment
% another comment
3 2
0 1
1 2 5
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 1 {
		t.Errorf("default weight = %d, want 1", w)
	}
	if w, _ := g.EdgeWeight(1, 2); w != 5 {
		t.Errorf("explicit weight = %d, want 5", w)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"junk header\n",  // bad header
		"2\n",            // header with one field
		"2 1\n0 1 2 3\n", // too many fields
		"2 1\n0 x\n",     // non-numeric
		"2 5\n0 1\n",     // edge count mismatch
		"2 1\n0 1 0\n",   // zero weight
		"2 1\n0 7\n",     // out of range
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1, 2}, {1, 2, 3}, {2, 3, 1}, {3, 4, 9}, {4, 5, 1}, {5, 0, 4}})
	g.MaterializeVWgt()
	g.VWgt[3] = 11
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, h) {
		t.Error("binary round trip changed the graph")
	}
	if h.VWgt == nil || h.VWgt[3] != 11 {
		t.Error("vertex weights lost in binary round trip")
	}
}

func TestBinaryRoundTripNilVWgt(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1, 1}, {1, 2, 1}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.VWgt != nil {
		t.Error("nil VWgt materialized by round trip")
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("short input accepted")
	}
	bad := make([]byte, 64)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1, 2}, {1, 2, 1}})
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "demo", []int32{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"demo\"", "0 -- 1 [label=2]", "1 -- 2 [label=1]", "fillcolor"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := g.WriteDOT(&buf, "plain", nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "fillcolor") {
		t.Error("ungrouped DOT should not color nodes")
	}
}
