package graph

import "fmt"

// BFS runs a breadth-first search from src and returns the distance array
// (-1 for unreached vertices) and the visit order.
func (g *Graph) BFS(src int32) (dist []int32, order []int32) {
	n := g.N()
	dist = make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	order = make([]int32, 0, n)
	queue := make([]int32, 0, n)
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		order = append(order, u)
		adj, _ := g.Neighbors(u)
		for _, v := range adj {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist, order
}

// RCM computes the reverse Cuthill–McKee ordering: BFS from a
// pseudo-peripheral vertex with neighbors visited in increasing-degree
// order, reversed — the classic bandwidth/envelope-reducing ordering, used
// here as the baseline nested dissection is compared against. Returns
// perm with perm[newPosition] = oldVertex. The graph must be connected.
func (g *Graph) RCM() ([]int32, error) {
	n := g.N()
	if n == 0 {
		return nil, nil
	}
	// Pseudo-peripheral start: BFS twice from the farthest vertex found.
	start := int32(0)
	for i := 0; i < 2; i++ {
		dist, order := g.BFS(start)
		if len(order) != n {
			return nil, fmt.Errorf("graph: RCM requires a connected graph (%d of %d reached)", len(order), n)
		}
		far := order[len(order)-1]
		// Among the farthest level, pick the minimum-degree vertex.
		best := far
		for _, v := range order {
			if dist[v] == dist[far] && g.Degree(v) < g.Degree(best) {
				best = v
			}
		}
		start = best
	}
	// Cuthill–McKee BFS with degree-sorted neighbor expansion.
	visited := make([]bool, n)
	order := make([]int32, 0, n)
	queue := []int32{start}
	visited[start] = true
	var nbrs []int32
	var degs []int64
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		order = append(order, u)
		adj, _ := g.Neighbors(u)
		nbrs = nbrs[:0]
		degs = degs[:0]
		for _, v := range adj {
			if !visited[v] {
				visited[v] = true
				nbrs = append(nbrs, v)
				degs = append(degs, g.Degree(v))
			}
		}
		// Insertion sort by degree (neighbor lists are short).
		for i := 1; i < len(nbrs); i++ {
			v, d := nbrs[i], degs[i]
			j := i - 1
			for j >= 0 && (degs[j] > d || (degs[j] == d && nbrs[j] > v)) {
				nbrs[j+1], degs[j+1] = nbrs[j], degs[j]
				j--
			}
			nbrs[j+1], degs[j+1] = v, d
		}
		queue = append(queue, nbrs...)
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// ConnectedComponents labels each vertex with a component id in [0, k) and
// returns the labels and component count. Uses iterative BFS, so it is
// stack-safe on long paths.
func (g *Graph) ConnectedComponents() ([]int32, int32) {
	n := g.N()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var k int32
	queue := make([]int32, 0, 1024)
	for s := int32(0); int(s) < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = k
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if comp[v] < 0 {
					comp[v] = k
					queue = append(queue, v)
				}
			}
		}
		k++
	}
	return comp, k
}

// IsConnected reports whether the graph has exactly one connected component
// (the paper's algorithms assume connected inputs).
func (g *Graph) IsConnected() bool {
	if g.NumV == 0 {
		return true
	}
	_, k := g.ConnectedComponents()
	return k == 1
}

// LargestComponent extracts the largest connected component, relabels its
// vertices, and returns the subgraph plus the old-id array. This is the
// paper's preprocessing step ("extract the largest connected component and
// relabel vertex identifiers", Table I caption).
func (g *Graph) LargestComponent() (*Graph, []int32) {
	comp, k := g.ConnectedComponents()
	if k <= 1 {
		return g, nil
	}
	counts := make([]int64, k)
	for _, c := range comp {
		counts[c]++
	}
	best := int32(0)
	for c := int32(1); c < k; c++ {
		if counts[c] > counts[best] {
			best = c
		}
	}
	keep := make([]bool, g.NumV)
	for v, c := range comp {
		keep[v] = c == best
	}
	return g.InducedSubgraph(keep)
}
