package graph

import (
	"bytes"
	"encoding/binary"
	"math"
	"strconv"
	"strings"
	"testing"
)

// headerTooBigForFuzz skips inputs whose (legitimate) header asks for more
// vertices than the fuzz environment's memory budget allows. The parsers
// themselves cap at MaxParseVertices and tie buffer growth to actual
// content; this guard only bounds the fuzz harness's peak RSS.
func headerTooBigForFuzz(in string) bool {
	for _, line := range strings.Split(in, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		n, err := strconv.ParseInt(fields[0], 10, 64)
		return err == nil && n > 1<<20
	}
	return false
}

// The fuzz targets double as robustness tests: with `go test` they run
// over the seed corpus; `go test -fuzz=FuzzReadEdgeList` explores further.

func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"3 2\n0 1\n1 2 5\n",
		"0 0\n",
		"2 1\n0 1 9223372036854775807\n",
		"# comment\n% more\n1 0\n",
		"4 3\n0 1\n1 2\n2 3\n",
		"junk",
		"3 2\n0 1\n0 1\n", // duplicate: header mismatch after merge
		"2 1\n1 0 -5\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		if headerTooBigForFuzz(in) {
			t.Skip()
		}
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return // rejection is fine; crashing is not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", err, in)
		}
		// Round trip must succeed and reproduce the graph.
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		h, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !Equal(g, h) {
			t.Fatalf("round trip changed the graph\ninput: %q", in)
		}
	})
}

func FuzzReadMetis(f *testing.F) {
	seeds := []string{
		"3 2\n2\n1 3\n2\n",
		"3 2 001\n2 5\n1 5 3 4\n2 4\n",
		"3 2 010\n7 2\n3 1 3\n2 2\n",
		"2 1 011 1\n1 2 9\n1 1 9\n",
		"% c\n1 0\n\n",
		"7 11\n5 3 2\n1 3 4\n5 4 2 1\n2 3 6 7\n1 3 6\n5 4 7\n6 4\n",
		"bogus",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		if headerTooBigForFuzz(in) {
			t.Skip()
		}
		g, err := ReadMetis(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted metis graph fails validation: %v\ninput: %q", err, in)
		}
		var buf bytes.Buffer
		if err := g.WriteMetis(&buf); err != nil {
			t.Fatal(err)
		}
		h, err := ReadMetis(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\noriginal: %q\nwritten: %q", err, in, buf.String())
		}
		if !Equal(g, h) {
			t.Fatalf("round trip changed the graph\ninput: %q", in)
		}
	})
}

// encodeFuzzEdges packs an edge list into the 16-bytes-per-edge wire form
// FuzzCSRFromEdges decodes (u, v int32; w int64, little endian).
func encodeFuzzEdges(edges []Edge) []byte {
	out := make([]byte, 0, 16*len(edges))
	var b [16]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint32(b[0:], uint32(e.U))
		binary.LittleEndian.PutUint32(b[4:], uint32(e.V))
		binary.LittleEndian.PutUint64(b[8:], uint64(e.W))
		out = append(out, b[:]...)
	}
	return out
}

// FuzzCSRFromEdges drives FromEdges with arbitrary (vertex count, edge
// list) pairs: malformed input (out-of-range endpoints, non-positive or
// overflowing weights) must be rejected with an error, and anything
// accepted must pass the full CSR validation battery and survive an
// edge-list round trip — never panic, never return a half-built graph.
func FuzzCSRFromEdges(f *testing.F) {
	f.Add(3, encodeFuzzEdges([]Edge{{0, 1, 2}, {1, 2, 3}}))
	f.Add(4, encodeFuzzEdges([]Edge{{0, 1, 1}, {1, 0, 1}, {2, 3, 5}, {3, 3, 9}}))
	f.Add(2, encodeFuzzEdges([]Edge{{0, 1, math.MaxInt64}, {1, 0, math.MaxInt64}})) // merged weight overflow
	f.Add(2, encodeFuzzEdges([]Edge{{0, 1, -7}}))                                   // negative weight
	f.Add(2, encodeFuzzEdges([]Edge{{0, 5, 1}}))                                    // endpoint out of range
	f.Add(0, []byte{})
	// A generator-shaped seed: the 4-cycle with a chord, in both orientations.
	f.Add(4, encodeFuzzEdges([]Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 0, 1}, {0, 2, 2}, {2, 0, 2}}))
	// Truncated wire form (partial trailing record) and an oversized vertex
	// count relative to the edge content.
	f.Add(3, encodeFuzzEdges([]Edge{{0, 1, 2}, {1, 2, 3}})[:20])
	f.Add(1<<19, encodeFuzzEdges([]Edge{{0, 1, 1}}))
	f.Fuzz(func(t *testing.T, n int, data []byte) {
		if n < 0 || n > 1<<20 || len(data) > 1<<16 {
			t.Skip() // bound harness memory, not parser behavior
		}
		edges := make([]Edge, 0, len(data)/16)
		for i := 0; i+16 <= len(data); i += 16 {
			edges = append(edges, Edge{
				U: int32(binary.LittleEndian.Uint32(data[i:])),
				V: int32(binary.LittleEndian.Uint32(data[i+4:])),
				W: int64(binary.LittleEndian.Uint64(data[i+8:])),
			})
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return // rejection is fine; crashing is not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v\nn=%d edges=%v", err, n, edges)
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		h, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !Equal(g, h) {
			t.Fatalf("round trip changed the graph\nn=%d edges=%v", n, edges)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid container and mutations of it.
	g := MustFromEdges(3, []Edge{{0, 1, 2}, {1, 2, 3}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	flipped[20] ^= 0xff
	f.Add(flipped)
	// Lying length prefixes: headers that claim far more payload than the
	// stream carries. Chunked allocation must turn these into short-read
	// errors, not multi-GiB make() calls — no skip guard needed anymore.
	hostile := func(n, nnz, flag uint64) []byte {
		var b bytes.Buffer
		for _, v := range []uint64{binMagic, n, nnz, flag} {
			binary.Write(&b, binary.LittleEndian, v)
		}
		return b.Bytes()
	}
	f.Add(hostile(1<<28, 1<<33, 0))                   // max in-range claim, zero payload
	f.Add(hostile(3, 1<<60, 0))                       // nnz beyond the range check
	f.Add(hostile(1<<63, 4, 1))                       // n overflows int32
	f.Add(append(hostile(1<<20, 1<<22, 0), valid...)) // big claim, partial garbage payload
	f.Fuzz(func(t *testing.T, in []byte) {
		h, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("accepted binary graph fails validation: %v", err)
		}
	})
}
