package graph

import (
	"fmt"
	"sort"

	"mlcg/internal/par"
)

// Edge is one undirected edge used by the builder. Endpoint order does not
// matter; duplicates (in either orientation) are merged by summing weights.
type Edge struct {
	U, V int32
	W    int64
}

// FromEdges builds a validated CSR graph from an undirected edge list.
// Self-loops are dropped, duplicate edges merged (weights summed), and
// weights <= 0 are rejected. This is the paper's preprocessing path: raw
// inputs are symmetrized and deduplicated before any coarsening runs.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 || n > 1<<31-1 {
		return nil, fmt.Errorf("graph: vertex count %d out of range", n)
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", e.U, e.V, n)
		}
		if e.W <= 0 {
			return nil, fmt.Errorf("graph: edge {%d,%d} has non-positive weight %d", e.U, e.V, e.W)
		}
	}
	// Canonicalize each edge to (min,max), sort, merge duplicates.
	canon := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue // drop self-loops
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		canon = append(canon, e)
	}
	sort.Slice(canon, func(i, j int) bool {
		if canon[i].U != canon[j].U {
			return canon[i].U < canon[j].U
		}
		return canon[i].V < canon[j].V
	})
	merged := canon[:0]
	for _, e := range canon {
		if k := len(merged); k > 0 && merged[k-1].U == e.U && merged[k-1].V == e.V {
			// Both weights are positive, so a non-positive sum means the
			// merge overflowed int64 — reject rather than return a graph
			// that silently fails Validate.
			if s := merged[k-1].W + e.W; s > 0 {
				merged[k-1].W = s
			} else {
				return nil, fmt.Errorf("graph: merged weight of edge {%d,%d} overflows int64", e.U, e.V)
			}
		} else {
			merged = append(merged, e)
		}
	}
	return fromCanonicalEdges(n, merged), nil
}

// MustFromEdges is FromEdges that panics on error, for tests and examples
// with known-good inputs.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// fromCanonicalEdges assumes edges are deduplicated with U < V and builds
// the symmetric CSR directly.
func fromCanonicalEdges(n int, edges []Edge) *Graph {
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	xadj := make([]int64, n+1)
	par.PrefixSumInt32(xadj, deg, 1)
	adj := make([]int32, xadj[n])
	wgt := make([]int64, xadj[n])
	pos := make([]int64, n)
	copy(pos, xadj[:n])
	for _, e := range edges {
		adj[pos[e.U]], wgt[pos[e.U]] = e.V, e.W
		pos[e.U]++
		adj[pos[e.V]], wgt[pos[e.V]] = e.U, e.W
		pos[e.V]++
	}
	g := &Graph{NumV: int32(n), Xadj: xadj, Adj: adj, Wgt: wgt}
	g.SortAdjacency(1)
	return g
}

// FromCSR wraps raw CSR arrays into a Graph after validating them.
func FromCSR(n int, xadj []int64, adj []int32, wgt []int64, vwgt []int64) (*Graph, error) {
	g := &Graph{NumV: int32(n), Xadj: xadj, Adj: adj, Wgt: wgt, VWgt: vwgt}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// SortAdjacency sorts each vertex's neighbor list ascending by id, keeping
// weights aligned. Construction algorithms may emit unsorted adjacencies
// (hash-based dedup); canonical form makes graphs comparable.
func (g *Graph) SortAdjacency(p int) {
	par.ForEachChunked(g.N(), p, 256, func(i int) {
		u := int32(i)
		adj, wgt := g.Neighbors(u)
		par.SortPairsInt32(adj, wgt)
	})
}

// Equal reports whether g and h are identical graphs: same vertex count,
// same sorted adjacency structure, same edge and vertex weights. Both
// graphs are compared in canonical (sorted) order without being modified.
func Equal(g, h *Graph) bool {
	if g.NumV != h.NumV {
		return false
	}
	for i := range g.Xadj {
		if g.Xadj[i] != h.Xadj[i] {
			return false
		}
	}
	for u := int32(0); u < g.NumV; u++ {
		if g.VertexWeight(u) != h.VertexWeight(u) {
			return false
		}
		ga, gw := g.Neighbors(u)
		ha, hw := h.Neighbors(u)
		if len(ga) != len(ha) {
			return false
		}
		gi := sortedView(ga, gw)
		hi := sortedView(ha, hw)
		for k := range gi.adj {
			if gi.adj[k] != hi.adj[k] || gi.wgt[k] != hi.wgt[k] {
				return false
			}
		}
	}
	return true
}

type adjView struct {
	adj []int32
	wgt []int64
}

// sortedView returns a sorted copy of one adjacency list (copying only when
// it is not already sorted).
func sortedView(adj []int32, wgt []int64) adjView {
	sorted := true
	for i := 1; i < len(adj); i++ {
		if adj[i-1] > adj[i] {
			sorted = false
			break
		}
	}
	if sorted {
		return adjView{adj, wgt}
	}
	a := append([]int32(nil), adj...)
	w := append([]int64(nil), wgt...)
	par.SortPairsInt32(a, w)
	return adjView{a, w}
}

// InducedSubgraph returns the subgraph induced by keep (vertices with
// keep[v] true), relabeled to 0..k-1 in ascending original-id order, plus
// the old-id array indexed by new id.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []int32) {
	newID := make([]int32, g.NumV)
	var oldID []int32
	for v := int32(0); v < g.NumV; v++ {
		if keep[v] {
			newID[v] = int32(len(oldID))
			oldID = append(oldID, v)
		} else {
			newID[v] = -1
		}
	}
	var edges []Edge
	for _, u := range oldID {
		adj, wgt := g.Neighbors(u)
		for i, v := range adj {
			if keep[v] && u < v {
				edges = append(edges, Edge{newID[u], newID[v], wgt[i]})
			}
		}
	}
	sub := fromCanonicalEdges(len(oldID), edges)
	if g.VWgt != nil {
		sub.VWgt = make([]int64, len(oldID))
		for i, u := range oldID {
			sub.VWgt[i] = g.VWgt[u]
		}
	}
	return sub, oldID
}
