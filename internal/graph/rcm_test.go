package graph

import (
	"testing"
)

// bandwidth returns max |pos[u]-pos[v]| over edges.
func bandwidth(g *Graph, perm []int32) int64 {
	pos := make([]int64, g.N())
	for p, u := range perm {
		pos[u] = int64(p)
	}
	var bw int64
	for u := int32(0); u < g.NumV; u++ {
		adj, _ := g.Neighbors(u)
		for _, v := range adj {
			d := pos[u] - pos[v]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

func TestRCMIsPermutation(t *testing.T) {
	g := randomGraphFromSeed(7, 200)
	perm, err := g.RCM()
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, g.N())
	for _, v := range perm {
		if seen[v] {
			t.Fatal("duplicate in RCM permutation")
		}
		seen[v] = true
	}
	if len(perm) != g.N() {
		t.Fatalf("covers %d of %d", len(perm), g.N())
	}
}

func TestRCMReducesBandwidthVsShuffle(t *testing.T) {
	// A grid with a scrambled identity baseline: RCM should achieve
	// near-minimal bandwidth (a k×k grid has optimal bandwidth ~k).
	const k = 16
	var e []Edge
	id := func(i, j int) int32 { return int32(i*k + j) }
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if j+1 < k {
				e = append(e, Edge{id(i, j), id(i, j+1), 1})
			}
			if i+1 < k {
				e = append(e, Edge{id(i, j), id(i+1, j), 1})
			}
		}
	}
	g := MustFromEdges(k*k, e)
	perm, err := g.RCM()
	if err != nil {
		t.Fatal(err)
	}
	if bw := bandwidth(g, perm); bw > 2*k {
		t.Errorf("RCM bandwidth %d on a %dx%d grid, want ~%d", bw, k, k, k)
	}
}

func TestRCMOnPathIsMonotone(t *testing.T) {
	// RCM of a path is the path itself (bandwidth 1), up to direction.
	g := path(50)
	perm, err := g.RCM()
	if err != nil {
		t.Fatal(err)
	}
	if bw := bandwidth(g, perm); bw != 1 {
		t.Errorf("path bandwidth %d, want 1", bw)
	}
}

func TestRCMRejectsDisconnected(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1, 1}})
	if _, err := g.RCM(); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestRCMEmpty(t *testing.T) {
	g := MustFromEdges(0, nil)
	perm, err := g.RCM()
	if err != nil || perm != nil {
		t.Errorf("perm=%v err=%v", perm, err)
	}
}
