package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestMetisRoundTripPlain(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 0, 1}})
	var buf bytes.Buffer
	if err := g.WriteMetis(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "4 4\n") {
		t.Errorf("unweighted header wrong: %q", buf.String()[:10])
	}
	h, err := ReadMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, h) {
		t.Error("plain metis round trip changed the graph")
	}
}

func TestMetisRoundTripWeighted(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1, 5}, {1, 2, 2}, {2, 3, 7}})
	g.MaterializeVWgt()
	g.VWgt = []int64{1, 2, 3, 4}
	var buf bytes.Buffer
	if err := g.WriteMetis(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "011") {
		t.Errorf("expected fmt 011 header, got %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	h, err := ReadMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, h) {
		t.Error("weighted metis round trip changed the graph")
	}
}

func TestMetisRoundTripEdgeWeightsOnly(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1, 9}, {1, 2, 4}})
	var buf bytes.Buffer
	if err := g.WriteMetis(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, h) {
		t.Error("edge-weight metis round trip changed the graph")
	}
}

func TestReadMetisKnownFile(t *testing.T) {
	// The example graph from the Metis manual (7 vertices, 11 edges).
	in := `% comment line
7 11
5 3 2
1 3 4
5 4 2 1
2 3 6 7
1 3 6
5 4 7
6 4
`
	g, err := ReadMetis(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 || g.M() != 11 {
		t.Fatalf("n=%d m=%d, want 7,11", g.N(), g.M())
	}
	if !g.HasEdge(0, 4) || !g.HasEdge(3, 6) {
		t.Error("expected edges missing")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMetisVertexWeights(t *testing.T) {
	in := `3 2 010
5 2
7 1 3
2 2
`
	g, err := ReadMetis(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.VWgt == nil || g.VWgt[0] != 5 || g.VWgt[1] != 7 || g.VWgt[2] != 2 {
		t.Errorf("vertex weights %v", g.VWgt)
	}
}

func TestReadMetisErrors(t *testing.T) {
	cases := []string{
		"",                    // empty
		"x y\n",               // junk header
		"2 1 100\n1\n2\n",     // vertex sizes unsupported
		"2 1 011 2\n1 1\n1 1", // multi-constraint
		"3 2\n2\n",            // truncated
		"2 1\n5\n1\n",         // neighbor out of range
		"2 1 001\n2\n1 3\n",   // missing edge weight
		"2 5\n2\n1\n",         // edge count mismatch
	}
	for _, in := range cases {
		if _, err := ReadMetis(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestRelabelByBFS(t *testing.T) {
	// A graph with poor initial ordering; relabeled, vertex 0's neighbors
	// come first.
	g := MustFromEdges(6, []Edge{{0, 5, 2}, {5, 1, 3}, {1, 4, 1}, {4, 2, 5}, {2, 3, 4}})
	h, order, err := g.RelabelByBFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if order[0] != 0 || order[1] != 5 {
		t.Errorf("BFS order %v", order)
	}
	// Same structure: total weight and degree multiset preserved.
	if h.TotalEdgeWeight() != g.TotalEdgeWeight() || h.M() != g.M() {
		t.Error("relabel changed weights")
	}
	// Weight of edge {0,5} follows the relabeling: new ids 0 and 1.
	if w, ok := h.EdgeWeight(0, 1); !ok || w != 2 {
		t.Errorf("edge weight after relabel: %d,%v", w, ok)
	}
	// Disconnected input is rejected.
	d := MustFromEdges(3, []Edge{{0, 1, 1}})
	if _, _, err := d.RelabelByBFS(0); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestRelabelByBFSVertexWeights(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 2, 1}, {2, 1, 1}})
	g.MaterializeVWgt()
	g.VWgt = []int64{10, 20, 30}
	h, order, err := g.RelabelByBFS(0)
	if err != nil {
		t.Fatal(err)
	}
	for newID, oldID := range order {
		if h.VWgt[newID] != g.VWgt[oldID] {
			t.Errorf("vwgt mismatch at %d", newID)
		}
	}
}
