// Package graph provides the compressed sparse row (CSR) graph substrate
// the paper's algorithms operate on: undirected weighted graphs with no
// self-loops or parallel edges, positive integer edge weights, and vertex
// weights that track aggregate sizes across coarsening levels.
package graph

import (
	"fmt"

	"mlcg/internal/par"
)

// Graph is an undirected graph in CSR form. Every undirected edge {u, v}
// is stored twice: once in u's adjacency range and once in v's. Invariants
// (checked by Validate):
//
//   - len(Xadj) == NumV+1, Xadj non-decreasing, Xadj[0] == 0
//   - len(Adj) == len(Wgt) == Xadj[NumV] == 2m
//   - no self-loops, no duplicate neighbors within a vertex's range
//   - symmetric: v in Adj(u) with weight w  <=>  u in Adj(v) with weight w
//   - all edge weights positive
//
// VWgt holds per-vertex weights (the number of fine vertices an aggregate
// represents). A nil VWgt means "all ones", which is how freshly generated
// graphs start; coarsening materializes it.
type Graph struct {
	NumV int32
	Xadj []int64 // vertex offsets into Adj/Wgt, len NumV+1
	Adj  []int32 // neighbor ids, len 2m
	Wgt  []int64 // edge weights parallel to Adj
	VWgt []int64 // vertex weights, nil means all 1
}

// N returns the number of vertices as an int for loop convenience.
func (g *Graph) N() int { return int(g.NumV) }

// M returns the number of undirected edges.
func (g *Graph) M() int64 { return g.Xadj[g.NumV] / 2 }

// Size returns 2m+n, the paper's graph-size normalization (Table I order,
// Fig 3 performance rate).
func (g *Graph) Size() int64 { return g.Xadj[g.NumV] + int64(g.NumV) }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int32) int64 { return g.Xadj[u+1] - g.Xadj[u] }

// Neighbors returns the adjacency and weight slices of u. The slices alias
// the graph's storage and must not be modified.
func (g *Graph) Neighbors(u int32) ([]int32, []int64) {
	lo, hi := g.Xadj[u], g.Xadj[u+1]
	return g.Adj[lo:hi], g.Wgt[lo:hi]
}

// VertexWeight returns the weight of u, treating nil VWgt as all ones.
func (g *Graph) VertexWeight(u int32) int64 {
	if g.VWgt == nil {
		return 1
	}
	return g.VWgt[u]
}

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() int64 {
	if g.VWgt == nil {
		return int64(g.NumV)
	}
	var sum int64
	for _, w := range g.VWgt {
		sum += w
	}
	return sum
}

// TotalEdgeWeight returns the sum of weights over undirected edges (each
// edge counted once).
func (g *Graph) TotalEdgeWeight() int64 {
	var sum int64
	for _, w := range g.Wgt {
		sum += w
	}
	return sum / 2
}

// MaxDegree returns the maximum vertex degree, 0 for an empty graph.
func (g *Graph) MaxDegree() int64 {
	return par.MaxInt64(g.N(), 0, 0, func(i int) int64 {
		return g.Xadj[i+1] - g.Xadj[i]
	})
}

// AvgDegree returns 2m/n, 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.NumV == 0 {
		return 0
	}
	return float64(g.Xadj[g.NumV]) / float64(g.NumV)
}

// DegreeSkew returns Δ/(2m/n), the paper's regular-vs-skewed criterion
// (Table I). Graphs with skew above ~10 behave like the paper's
// "irregular" group.
func (g *Graph) DegreeSkew() float64 {
	ad := g.AvgDegree()
	if ad == 0 {
		return 0
	}
	return float64(g.MaxDegree()) / ad
}

// HasEdge reports whether {u, v} is an edge, by scanning u's (typically
// short) adjacency list.
func (g *Graph) HasEdge(u, v int32) bool {
	adj, _ := g.Neighbors(u)
	for _, x := range adj {
		if x == v {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of {u, v} and whether the edge exists.
func (g *Graph) EdgeWeight(u, v int32) (int64, bool) {
	adj, wgt := g.Neighbors(u)
	for i, x := range adj {
		if x == v {
			return wgt[i], true
		}
	}
	return 0, false
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	out := &Graph{
		NumV: g.NumV,
		Xadj: append([]int64(nil), g.Xadj...),
		Adj:  append([]int32(nil), g.Adj...),
		Wgt:  append([]int64(nil), g.Wgt...),
	}
	if g.VWgt != nil {
		out.VWgt = append([]int64(nil), g.VWgt...)
	}
	return out
}

// MaterializeVWgt ensures VWgt is non-nil (all ones if it was nil).
func (g *Graph) MaterializeVWgt() {
	if g.VWgt == nil {
		g.VWgt = make([]int64, g.NumV)
		for i := range g.VWgt {
			g.VWgt[i] = 1
		}
	}
}

// Validate checks every CSR invariant and returns a descriptive error for
// the first violation. It is O(m·d) in the worst case due to the symmetry
// check, so it is meant for tests and input validation, not inner loops.
func (g *Graph) Validate() error {
	n := g.N()
	if len(g.Xadj) != n+1 {
		return fmt.Errorf("graph: len(Xadj)=%d, want NumV+1=%d", len(g.Xadj), n+1)
	}
	if g.Xadj[0] != 0 {
		return fmt.Errorf("graph: Xadj[0]=%d, want 0", g.Xadj[0])
	}
	for i := 0; i < n; i++ {
		if g.Xadj[i+1] < g.Xadj[i] {
			return fmt.Errorf("graph: Xadj decreasing at %d", i)
		}
	}
	if int64(len(g.Adj)) != g.Xadj[n] {
		return fmt.Errorf("graph: len(Adj)=%d, want Xadj[n]=%d", len(g.Adj), g.Xadj[n])
	}
	if len(g.Wgt) != len(g.Adj) {
		return fmt.Errorf("graph: len(Wgt)=%d != len(Adj)=%d", len(g.Wgt), len(g.Adj))
	}
	if g.VWgt != nil && len(g.VWgt) != n {
		return fmt.Errorf("graph: len(VWgt)=%d, want %d", len(g.VWgt), n)
	}
	for u := int32(0); u < g.NumV; u++ {
		adj, wgt := g.Neighbors(u)
		seen := make(map[int32]bool, len(adj))
		for i, v := range adj {
			if v < 0 || v >= g.NumV {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", u, v)
			}
			if v == u {
				return fmt.Errorf("graph: self-loop at vertex %d", u)
			}
			if seen[v] {
				return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
			}
			seen[v] = true
			if wgt[i] <= 0 {
				return fmt.Errorf("graph: non-positive weight %d on edge {%d,%d}", wgt[i], u, v)
			}
			if w2, ok := g.EdgeWeight(v, u); !ok {
				return fmt.Errorf("graph: edge {%d,%d} missing reverse", u, v)
			} else if w2 != wgt[i] {
				return fmt.Errorf("graph: edge {%d,%d} weight %d != reverse %d", u, v, wgt[i], w2)
			}
		}
	}
	return nil
}

// Stats is a summary used by the Table I analog.
type Stats struct {
	N        int64
	M        int64
	MaxDeg   int64
	AvgDeg   float64
	Skew     float64 // Δ/(2m/n)
	Size     int64   // 2m+n
	TotalEW  int64
	TotalVW  int64
	Weighted bool // any edge weight != 1
}

// DegreeHistogram returns log2-binned degree counts: bin i holds the
// number of vertices with degree in [2^i, 2^(i+1)), with bin 0 also
// counting isolated vertices. Useful for eyeballing the skew structure
// the paper's regular/skewed grouping is based on.
func (g *Graph) DegreeHistogram() []int64 {
	var bins []int64
	for u := int32(0); u < g.NumV; u++ {
		d := g.Degree(u)
		bin := 0
		for v := d; v > 1; v >>= 1 {
			bin++
		}
		for len(bins) <= bin {
			bins = append(bins, 0)
		}
		bins[bin]++
	}
	return bins
}

// ComputeStats returns the summary statistics of g.
func (g *Graph) ComputeStats() Stats {
	weighted := false
	for _, w := range g.Wgt {
		if w != 1 {
			weighted = true
			break
		}
	}
	return Stats{
		N:        int64(g.NumV),
		M:        g.M(),
		MaxDeg:   g.MaxDegree(),
		AvgDeg:   g.AvgDegree(),
		Skew:     g.DegreeSkew(),
		Size:     g.Size(),
		TotalEW:  g.TotalEdgeWeight(),
		TotalVW:  g.TotalVertexWeight(),
		Weighted: weighted,
	}
}
