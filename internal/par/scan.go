package par

// PrefixSumInt64 computes the exclusive prefix sum of src into dst, which
// must have len(src)+1 entries; dst[0] = 0 and dst[len(src)] is the total.
// The parallel version is a classic three-phase blocked scan: per-block
// sums, a sequential scan over the (small) block totals, then a per-block
// fill. Returns the total.
func PrefixSumInt64(dst, src []int64, p int) int64 {
	n := len(src)
	if len(dst) != n+1 {
		panic("par: PrefixSumInt64 dst must have len(src)+1 entries")
	}
	p = Workers(p, n)
	if n == 0 {
		dst[0] = 0
		return 0
	}
	if p == 1 || n < 4096 {
		var sum int64
		for i, v := range src {
			dst[i] = sum
			sum += v
		}
		dst[n] = sum
		return sum
	}
	blockSums := make([]int64, p)
	For(n, p, func(w, lo, hi int) {
		var sum int64
		for i := lo; i < hi; i++ {
			sum += src[i]
		}
		blockSums[w] = sum
	})
	var total int64
	for w := 0; w < p; w++ {
		s := blockSums[w]
		blockSums[w] = total
		total += s
	}
	For(n, p, func(w, lo, hi int) {
		sum := blockSums[w]
		for i := lo; i < hi; i++ {
			dst[i] = sum
			sum += src[i]
		}
	})
	dst[n] = total
	return total
}

// PrefixSumInt32 is PrefixSumInt64 for int32 counters with int64 offsets.
// dst must have len(src)+1 entries.
func PrefixSumInt32(dst []int64, src []int32, p int) int64 {
	n := len(src)
	if len(dst) != n+1 {
		panic("par: PrefixSumInt32 dst must have len(src)+1 entries")
	}
	p = Workers(p, n)
	if n == 0 {
		dst[0] = 0
		return 0
	}
	if p == 1 || n < 4096 {
		var sum int64
		for i, v := range src {
			dst[i] = sum
			sum += int64(v)
		}
		dst[n] = sum
		return sum
	}
	blockSums := make([]int64, p)
	For(n, p, func(w, lo, hi int) {
		var sum int64
		for i := lo; i < hi; i++ {
			sum += int64(src[i])
		}
		blockSums[w] = sum
	})
	var total int64
	for w := 0; w < p; w++ {
		s := blockSums[w]
		blockSums[w] = total
		total += s
	}
	For(n, p, func(w, lo, hi int) {
		sum := blockSums[w]
		for i := lo; i < hi; i++ {
			dst[i] = sum
			sum += int64(src[i])
		}
	})
	dst[n] = total
	return total
}

// ExclusiveScanInt32 computes the exclusive prefix sum of src into dst
// (dst[i] = src[0] + ... + src[i-1]) and returns the total. dst and src
// must have equal length and may alias — the scan is safe in place, which
// saves the second buffer when the input counters are no longer needed.
// The caller guarantees the total fits in int32 (true for any 0/1 flag
// array of addressable length).
func ExclusiveScanInt32(dst, src []int32, p int) int32 {
	n := len(src)
	if len(dst) != n {
		panic("par: ExclusiveScanInt32 needs len(dst) == len(src)")
	}
	p = Workers(p, n)
	if n == 0 {
		return 0
	}
	if p == 1 || n < 4096 {
		var sum int32
		for i := 0; i < n; i++ {
			v := src[i]
			dst[i] = sum
			sum += v
		}
		return sum
	}
	blockSums := make([]int32, p)
	For(n, p, func(w, lo, hi int) {
		var sum int32
		for i := lo; i < hi; i++ {
			sum += src[i]
		}
		blockSums[w] = sum
	})
	var total int32
	for w := 0; w < p; w++ {
		s := blockSums[w]
		blockSums[w] = total
		total += s
	}
	For(n, p, func(w, lo, hi int) {
		sum := blockSums[w]
		for i := lo; i < hi; i++ {
			v := src[i]
			dst[i] = sum
			sum += v
		}
	})
	return total
}

// MergeHistograms is the segmented cross-worker prefix sum behind the
// contention-free two-phase scatter: hists holds one bin-count histogram
// per worker (each of length nc), and for every bin a the call replaces
// the per-worker counts with their exclusive prefix across workers while
// accumulating the bin total into cnt[a]:
//
//	cnt[a]      = Σ_w hists[w][a]
//	hists[w][a] = Σ_{w'<w} old hists[w'][a]
//
// After a global exclusive prefix sum of cnt into base offsets r, worker w
// owns the write window [r[a]+hists[w][a], r[a]+hists[w][a]+count) of bin a
// and can scatter into it without atomics. Because workers own contiguous,
// ordered input ranges, the resulting bin contents are in global input
// order — independent of the worker count.
func MergeHistograms(hists [][]int32, cnt []int32, p int) {
	nc := len(cnt)
	ForChunked(nc, p, 2048, func(_, lo, hi int) {
		for a := lo; a < hi; a++ {
			var run int32
			for w := range hists {
				c := hists[w][a]
				hists[w][a] = run
				run += c
			}
			cnt[a] = run
		}
	})
}

// Pack writes the indices i in [0, n) for which keep(i) is true into a
// freshly allocated slice, preserving index order. This is the parallel
// stream-compaction used to gather unmapped vertices between passes of the
// lock-free HEC/HEM algorithms (Algorithm 4, lines 22-28).
func Pack(n, p int, keep func(i int) bool) []int32 {
	p = Workers(p, n)
	if n == 0 {
		return nil
	}
	if p == 1 {
		var out []int32
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	counts := make([]int64, p)
	For(n, p, func(w, lo, hi int) {
		var c int64
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[w] = c
	})
	offsets := make([]int64, p+1)
	total := PrefixSumInt64(offsets, counts, 1)
	out := make([]int32, total)
	For(n, p, func(w, lo, hi int) {
		pos := offsets[w]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[pos] = int32(i)
				pos++
			}
		}
	})
	return out
}
