package par

// Hooks into the internal/obs tracing layer. Every parallel primitive
// reports each worker's busy wall time into the ambient span and labels
// worker goroutines for pprof, but only when a trace is active: the loops
// in par.go capture the ambient span once per call, and a nil span routes
// straight to the uninstrumented body. The disabled cost is therefore one
// atomic pointer load per *loop*, not per iteration.

import (
	"context"
	"runtime/pprof"
	"time"

	"mlcg/internal/obs"
)

// obsWorker runs one statically-assigned worker body under a pprof label
// naming the ambient kernel and charges its wall time to the span's busy
// slot for worker w. It also binds the worker goroutine to the span's
// trace for the duration, so package-level obs.Add flushes issued inside
// the body land on the trace of the run that spawned the worker — not on
// some other run's trace — when several traced runs proceed concurrently.
func obsWorker(s *obs.Span, w int, body func()) {
	detach := s.Trace().Attach()
	defer detach()
	pprof.Do(context.Background(), pprof.Labels("obs_kernel", s.Name()), func(context.Context) {
		t0 := time.Now()
		body()
		s.BusyAdd(w, time.Since(t0))
	})
}
