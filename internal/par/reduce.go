package par

// Reduce folds fn over [0, n) in parallel: each worker folds its block with
// fold starting from identity, then the per-worker partials are combined
// sequentially with combine. This mirrors Kokkos parallel_reduce.
func Reduce[T any](n, p int, identity T, fold func(acc T, i int) T, combine func(a, b T) T) T {
	p = Workers(p, n)
	if n == 0 {
		return identity
	}
	if p == 1 {
		acc := identity
		for i := 0; i < n; i++ {
			acc = fold(acc, i)
		}
		return acc
	}
	partials := make([]T, p)
	For(n, p, func(w, lo, hi int) {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = fold(acc, i)
		}
		partials[w] = acc
	})
	acc := identity
	for _, v := range partials {
		acc = combine(acc, v)
	}
	return acc
}

// SumInt64 returns the sum of fn(i) over [0, n).
func SumInt64(n, p int, fn func(i int) int64) int64 {
	return Reduce(n, p, 0, func(acc int64, i int) int64 { return acc + fn(i) },
		func(a, b int64) int64 { return a + b })
}

// MaxInt64 returns the maximum of fn(i) over [0, n), or identity when n==0.
func MaxInt64(n, p int, identity int64, fn func(i int) int64) int64 {
	return Reduce(n, p, identity,
		func(acc int64, i int) int64 {
			if v := fn(i); v > acc {
				return v
			}
			return acc
		},
		func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
}

// CountInt64 returns the number of i in [0, n) for which pred(i) holds.
func CountInt64(n, p int, pred func(i int) bool) int64 {
	return SumInt64(n, p, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// Fill sets dst[i] = v for all i, in parallel.
func Fill[T any](dst []T, v T, p int) {
	For(len(dst), p, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = v
		}
	})
}

// Copy copies src into dst (which must be at least as long), in parallel.
func Copy[T any](dst, src []T, p int) {
	if len(dst) < len(src) {
		panic("par: Copy dst shorter than src")
	}
	For(len(src), p, func(_, lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}
