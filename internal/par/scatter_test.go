package par

import (
	"testing"
)

func TestBalancedRanges(t *testing.T) {
	// CSR-style prefix with one huge item in the middle.
	deg := []int64{1, 1, 1, 100, 1, 1, 1, 1}
	n := len(deg)
	prefix := make([]int64, n+1)
	for i, d := range deg {
		prefix[i+1] = prefix[i] + d
	}
	for p := 1; p <= 6; p++ {
		b := BalancedRanges(nil, prefix, p)
		if len(b) != p+1 || b[0] != 0 || b[p] != n {
			t.Fatalf("p=%d: bad bounds %v", p, b)
		}
		for w := 0; w < p; w++ {
			if b[w] > b[w+1] {
				t.Fatalf("p=%d: non-monotone bounds %v", p, b)
			}
		}
	}
	// The heavy item must not share a range with all the others when p >= 2.
	b := BalancedRanges(nil, prefix, 2)
	if b[1] == 0 || b[1] == n {
		t.Errorf("p=2: heavy item not isolated: %v", b)
	}
}

func TestBalancedRangesReuse(t *testing.T) {
	prefix := []int64{0, 1, 2, 3, 4}
	buf := make([]int, 8)
	b := BalancedRanges(buf, prefix, 3)
	if &b[0] != &buf[0] {
		t.Error("BalancedRanges did not reuse the provided backing slice")
	}
}

func TestForRangesCoversExactlyOnce(t *testing.T) {
	n := 1000
	prefix := make([]int64, n+1)
	for i := 0; i < n; i++ {
		prefix[i+1] = prefix[i] + int64(i%17)
	}
	for _, p := range []int{1, 2, 5, 16, 40} {
		bounds := BalancedRanges(nil, prefix, p)
		hits := make([]int32, n)
		ForRanges(bounds, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("p=%d: index %d visited %d times", p, i, h)
			}
		}
	}
}

func TestMergeHistograms(t *testing.T) {
	nc, p := 300, 4
	hists := make([][]int32, p)
	want := make([]int32, nc)
	st := uint64(99)
	for w := range hists {
		hists[w] = make([]int32, nc)
		for a := 0; a < nc; a++ {
			hists[w][a] = int32(SplitMix64(&st) % 7)
			want[a] += hists[w][a]
		}
	}
	// Keep a copy to verify the exclusive prefix property.
	orig := make([][]int32, p)
	for w := range hists {
		orig[w] = append([]int32(nil), hists[w]...)
	}
	cnt := make([]int32, nc)
	MergeHistograms(hists, cnt, p)
	for a := 0; a < nc; a++ {
		if cnt[a] != want[a] {
			t.Fatalf("cnt[%d] = %d, want %d", a, cnt[a], want[a])
		}
		var run int32
		for w := 0; w < p; w++ {
			if hists[w][a] != run {
				t.Fatalf("hists[%d][%d] = %d, want %d", w, a, hists[w][a], run)
			}
			run += orig[w][a]
		}
	}
}

// TestTwoPhaseScatterOrder pins the determinism contract: scattering via
// BalancedRanges + MergeHistograms places bin contents in global input
// order regardless of the worker count.
func TestTwoPhaseScatterOrder(t *testing.T) {
	n, nc := 5000, 37
	bin := make([]int32, n)
	st := uint64(7)
	for i := range bin {
		bin[i] = int32(SplitMix64(&st) % uint64(nc))
	}
	prefix := make([]int64, n+1)
	for i := 0; i < n; i++ {
		prefix[i+1] = prefix[i] + 1
	}
	var ref []int32
	for _, p := range []int{1, 2, 3, 8} {
		bounds := BalancedRanges(nil, prefix, p)
		hists := make([][]int32, p)
		for w := range hists {
			hists[w] = make([]int32, nc)
		}
		ForRanges(bounds, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				hists[w][bin[i]]++
			}
		})
		cnt := make([]int32, nc)
		MergeHistograms(hists, cnt, p)
		r := make([]int64, nc+1)
		PrefixSumInt32(r, cnt, p)
		out := make([]int32, n)
		ForRanges(bounds, func(w, lo, hi int) {
			h := hists[w]
			for i := lo; i < hi; i++ {
				a := bin[i]
				out[r[a]+int64(h[a])] = int32(i)
				h[a]++
			}
		})
		if ref == nil {
			ref = out
			continue
		}
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("p=%d: scatter order differs from p=1 at slot %d", p, i)
			}
		}
	}
}
