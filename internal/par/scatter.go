package par

// Contention-free scatter support: work-balanced contiguous range
// partitioning plus the range-parallel loop that pins one worker per
// range. Together with MergeHistograms (scan.go) these realize the
// owner-computes two-phase scatter used by coarse-graph construction:
// count into per-worker histograms, turn counts into exact per-worker
// write offsets, then scatter with zero atomics.
//
// Determinism note: ForRanges workers own contiguous index ranges ordered
// by worker id, so any scatter that appends each range's contributions
// after the previous range's reproduces the sequential (p == 1) placement
// exactly — bin contents are byte-identical for every worker count.

import (
	"sort"
	"time"

	"mlcg/internal/obs"
)

// BalancedRanges splits [0, n) into p contiguous ranges of approximately
// equal prefix mass, where prefix is a monotone array with len(prefix) ==
// n+1 and prefix[i] the cumulative work before item i (a CSR Xadj array is
// exactly this shape). The returned boundary slice b has p+1 entries with
// b[0] == 0 and b[p] == n; range w is [b[w], b[w]). bounds is an optional
// reusable backing slice. Empty ranges are possible when p > n or the mass
// is concentrated.
func BalancedRanges(bounds []int, prefix []int64, p int) []int {
	n := len(prefix) - 1
	if p < 1 {
		p = 1
	}
	if cap(bounds) < p+1 {
		bounds = make([]int, p+1)
	}
	bounds = bounds[:p+1]
	total := prefix[n]
	bounds[0] = 0
	for w := 1; w < p; w++ {
		target := prefix[0] + total*int64(w)/int64(p)
		// First index whose cumulative mass reaches the target.
		lo := sort.Search(n, func(i int) bool { return prefix[i+1] > target })
		if lo < bounds[w-1] {
			lo = bounds[w-1]
		}
		bounds[w] = lo
	}
	bounds[p] = n
	return bounds
}

// ForRanges runs fn once per range of the boundary slice produced by
// BalancedRanges, one worker per range. Unlike ForChunked the assignment
// of indices to workers is fixed by the boundaries, which scatter passes
// rely on: the counting pass and the writing pass must see identical
// (worker, range) pairs.
func ForRanges(bounds []int, fn func(w, lo, hi int)) {
	p := len(bounds) - 1
	if p <= 0 {
		return
	}
	span := obs.Ambient()
	if p == 1 {
		if bounds[0] < bounds[1] {
			if span != nil {
				t0 := time.Now()
				fn(0, bounds[0], bounds[1])
				span.BusyAdd(0, time.Since(t0))
				return
			}
			fn(0, bounds[0], bounds[1])
		}
		return
	}
	done := make(chan struct{}, p)
	for w := 0; w < p; w++ {
		go func(w int) {
			if bounds[w] < bounds[w+1] {
				if span != nil {
					obsWorker(span, w, func() { fn(w, bounds[w], bounds[w+1]) })
				} else {
					fn(w, bounds[w], bounds[w+1])
				}
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < p; w++ {
		<-done
	}
}
