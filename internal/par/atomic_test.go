package par

import "testing"

func TestAtomicMinInt32Sequential(t *testing.T) {
	x := int32(10)
	AtomicMinInt32(&x, 12)
	if x != 10 {
		t.Errorf("min(10, 12) = %d", x)
	}
	AtomicMinInt32(&x, 3)
	if x != 3 {
		t.Errorf("min(10, 3) = %d", x)
	}
	AtomicMinInt32(&x, 3)
	if x != 3 {
		t.Errorf("min(3, 3) = %d", x)
	}
}

func TestAtomicMinInt32Concurrent(t *testing.T) {
	// Many workers hammer a small set of cells; the result must be the
	// true per-cell minimum regardless of scheduling.
	const n = 64
	const k = 100000
	cells := make([]int32, n)
	for i := range cells {
		cells[i] = int32(k + 1)
	}
	ForEach(k, 8, func(i int) {
		AtomicMinInt32(&cells[i%n], int32(i))
	})
	for c := 0; c < n; c++ {
		if cells[c] != int32(c) {
			t.Fatalf("cell %d = %d, want %d", c, cells[c], c)
		}
	}
}
