package par

// Deterministic, splittable pseudo-random number generation. Every
// algorithm in this module takes an explicit seed; per-worker streams are
// derived with SplitMix64 so parallel runs do not share RNG state.

// SplitMix64 advances the state and returns the next 64-bit output. It is
// used both as a standalone generator for seeding and as the per-element
// hash in the sort-based random permutation.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 is the stateless SplitMix64 finalizer: a high-quality 64-bit mixing
// of x. Mix64 of distinct inputs under a fixed seed behaves like a random
// function, which is exactly what the sort-based permutation needs.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RNG is xoshiro256** — a small, fast generator with 256-bit state used for
// sequential decisions (initial-partition seeds, tie-breaking experiments).
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, per the
// xoshiro authors' recommendation.
func NewRNG(seed uint64) *RNG {
	var r RNG
	st := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&st)
	}
	// All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
	// zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit output.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("par: RNG.Intn n must be positive")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill
	// here; modulo bias is negligible for the graph sizes involved, but use
	// rejection sampling anyway for exactness.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split returns a new RNG whose stream is independent of r's future output.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
