package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestReduceStructAccumulator(t *testing.T) {
	type stats struct {
		sum, max int64
		count    int64
	}
	n := 5000
	got := Reduce(n, 4, stats{max: -1},
		func(acc stats, i int) stats {
			v := int64((i * 7) % 113)
			acc.sum += v
			acc.count++
			if v > acc.max {
				acc.max = v
			}
			return acc
		},
		func(a, b stats) stats {
			a.sum += b.sum
			a.count += b.count
			if b.max > a.max {
				a.max = b.max
			}
			return a
		})
	var want stats
	want.max = -1
	for i := 0; i < n; i++ {
		v := int64((i * 7) % 113)
		want.sum += v
		want.count++
		if v > want.max {
			want.max = v
		}
	}
	if got != want {
		t.Errorf("got %+v want %+v", got, want)
	}
}

func TestForChunkedWorkerIDsInRange(t *testing.T) {
	n := 10000
	p := 4
	var bad int32
	ForChunked(n, p, 128, func(w, lo, hi int) {
		if w < 0 || w >= p {
			atomic.StoreInt32(&bad, int32(w)+1)
		}
	})
	if bad != 0 {
		t.Errorf("worker id out of range: %d", bad-1)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(_, _, _ int) { called = true })
	For(-5, 4, func(_, _, _ int) { called = true })
	ForChunked(0, 4, 16, func(_, _, _ int) { called = true })
	if called {
		t.Error("callback invoked for empty range")
	}
}

func TestPrefixSumQuickAgainstSequential(t *testing.T) {
	f := func(raw []int16) bool {
		src := make([]int64, len(raw))
		for i, v := range raw {
			src[i] = int64(v)
		}
		dst := make([]int64, len(src)+1)
		total := PrefixSumInt64(dst, src, 4)
		var sum int64
		for i, v := range src {
			if dst[i] != sum {
				return false
			}
			sum += v
		}
		return total == sum && dst[len(src)] == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRadixSortAllEqualKeys(t *testing.T) {
	n := 1 << 15
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = 42
		vals[i] = uint64(i)
	}
	RadixSortPairs(keys, vals, 4)
	// Equal keys + stability: values must remain in input order.
	for i := range vals {
		if vals[i] != uint64(i) {
			t.Fatalf("stability broken at %d", i)
		}
	}
}

func TestRadixSortExtremes(t *testing.T) {
	keys := []uint64{^uint64(0), 0, 1, ^uint64(0) - 1, 1 << 63}
	vals := []uint64{0, 1, 2, 3, 4}
	RadixSortPairs(keys, vals, 1)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("not sorted: %v", keys)
		}
	}
}

func TestSortPairsInt32NegativeKeys(t *testing.T) {
	// Negative keys must order correctly on both the insertion-sort path
	// (short inputs) and the sign-bit-flipped radix path (long inputs).
	for _, n := range []int{5, 300} {
		keys := make([]int32, n)
		wgts := make([]int64, n)
		st := uint64(uint(n))
		for i := range keys {
			keys[i] = int32(SplitMix64(&st)) % 1000 // mixed signs
			wgts[i] = int64(keys[i]) * 10
		}
		SortPairsInt32(keys, wgts)
		for i := 1; i < n; i++ {
			if keys[i-1] > keys[i] {
				t.Fatalf("n=%d: not sorted at %d: %d > %d", n, i, keys[i-1], keys[i])
			}
		}
		for i := range keys {
			if wgts[i] != int64(keys[i])*10 {
				t.Fatalf("n=%d: weights decoupled at %d", n, i)
			}
		}
	}
}

func TestPackAll(t *testing.T) {
	got := Pack(100000, 8, func(int) bool { return true })
	if len(got) != 100000 {
		t.Fatalf("len %d", len(got))
	}
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("order broken at %d", i)
		}
	}
	if got := Pack(100000, 8, func(int) bool { return false }); len(got) != 0 {
		t.Errorf("kept %d", len(got))
	}
}
