package par

import "sync/atomic"

// AtomicMinInt32 lowers *addr to v if v is smaller, atomically. The final
// value of a cell hammered by concurrent AtomicMinInt32 calls is the minimum
// over all proposed values — min is commutative and associative, so the
// result is independent of the interleaving. This order-insensitivity is
// what makes the deterministic-reservation protocols in internal/coarsen
// schedule-independent: reservations race, but the winner does not depend
// on who raced first.
func AtomicMinInt32(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if cur <= v {
			return
		}
		if atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}

// AtomicMinInt32Retries is AtomicMinInt32 reporting the number of failed
// compare-and-swap attempts — the contention signal the obs layer's
// cas_retries counter aggregates. Callers batch the returned counts locally
// and flush once per chunk, so the uninstrumented cost is one register add.
func AtomicMinInt32Retries(addr *int32, v int32) int64 {
	var retries int64
	for {
		cur := atomic.LoadInt32(addr)
		if cur <= v {
			return retries
		}
		if atomic.CompareAndSwapInt32(addr, cur, v) {
			return retries
		}
		retries++
	}
}
