// Package par is a small shared-memory parallel runtime used by every other
// package in this module. It stands in for the Kokkos layer the paper builds
// on: parallel loops (static and dynamically scheduled), parallel prefix
// sums, reductions, a parallel LSD radix sort, and a sort-based parallel
// random permutation (Algorithm 4, line 1 of the paper).
//
// All entry points accept an explicit worker count p; p <= 0 means
// runtime.GOMAXPROCS(0). With p == 1 every routine degenerates to the plain
// sequential loop, which the benchmark harness uses as the "host" baseline.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mlcg/internal/obs"
)

// Workers normalizes a requested worker count: values <= 0 become
// runtime.GOMAXPROCS(0), and the result is never larger than n (no point
// spawning workers with empty ranges) but always at least 1.
func Workers(p, n int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// For runs fn over [0, n) split into p statically scheduled contiguous
// blocks. fn receives the worker index and its half-open range. Static
// scheduling is the analogue of Kokkos RangePolicy and is right for loops
// with uniform per-iteration cost.
func For(n, p int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	p = Workers(p, n)
	span := obs.Ambient()
	if p == 1 {
		if span != nil {
			t0 := time.Now()
			fn(0, 0, n)
			span.BusyAdd(0, time.Since(t0))
			return
		}
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		lo := w * n / p
		hi := (w + 1) * n / p
		go func(w, lo, hi int) {
			defer wg.Done()
			if lo >= hi {
				return
			}
			if span != nil {
				obsWorker(span, w, func() { fn(w, lo, hi) })
				return
			}
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ForChunked runs fn over [0, n) with dynamic scheduling: workers repeatedly
// claim chunks of the given size from a shared atomic counter. This is the
// analogue of Kokkos dynamic scheduling and is the right policy for loops
// with skewed per-iteration cost (adjacency scans over skewed-degree
// graphs). chunk <= 0 picks a heuristic chunk size.
func ForChunked(n, p, chunk int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	p = Workers(p, n)
	if chunk <= 0 {
		chunk = n / (8 * p)
		if chunk < 64 {
			chunk = 64
		}
	}
	// Never spawn more workers than there are chunks to claim: a frontier
	// smaller than one chunk runs inline on the caller's goroutine, which is
	// what makes worklist tail rounds (tiny frontiers, many rounds) cheap.
	if nchunks := (n + chunk - 1) / chunk; p > nchunks {
		p = nchunks
	}
	span := obs.Ambient()
	if p == 1 {
		if span != nil {
			t0 := time.Now()
			fn(0, 0, n)
			span.BusyAdd(0, time.Since(t0))
			return
		}
		fn(0, 0, n)
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			loop := func() {
				for {
					lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
					if lo >= n {
						return
					}
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					fn(w, lo, hi)
				}
			}
			if span != nil {
				obsWorker(span, w, loop)
				return
			}
			loop()
		}(w)
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n) with static scheduling.
func ForEach(n, p int, fn func(i int)) {
	For(n, p, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachChunked runs fn(i) for every i in [0, n) with dynamic scheduling.
func ForEachChunked(n, p, chunk int, fn func(i int)) {
	ForChunked(n, p, chunk, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachChunkedWorker is ForEachChunked with the worker index exposed, for
// element-wise loops that append to per-worker buffers (frontier and
// worklist construction). The worker index is always < Workers(p, n).
func ForEachChunkedWorker(n, p, chunk int, fn func(worker, i int)) {
	ForChunked(n, p, chunk, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(w, i)
		}
	})
}
