package par

// Parallel LSD radix sort on (uint64 key, uint64 value) pairs. This is the
// workhorse behind the sort-based parallel random permutation (Algorithm 4,
// line 1), the global-sort coarse-graph construction baseline, and the
// segmented sorts used by sort-based deduplication on long adjacency lists.

import "mlcg/internal/obs"

const radixBits = 8
const radixBuckets = 1 << radixBits

// RadixSortPairs sorts keys ascending, permuting vals alongside. Both
// slices must have the same length. The sort is stable per digit pass
// (standard LSD), so overall it is a stable sort by key.
func RadixSortPairs(keys, vals []uint64, p int) {
	n := len(keys)
	if len(vals) != n {
		panic("par: RadixSortPairs slice length mismatch")
	}
	if n < 2 {
		return
	}
	p = Workers(p, n)
	if n < 1<<14 || p == 1 {
		radixSortPairsSeq(keys, vals)
		return
	}

	// Bits that actually differ across keys let us skip constant digits.
	var orAll, andAll uint64 = 0, ^uint64(0)
	type mm struct{ or, and uint64 }
	m := Reduce(n, p, mm{0, ^uint64(0)},
		func(acc mm, i int) mm { return mm{acc.or | keys[i], acc.and & keys[i]} },
		func(a, b mm) mm { return mm{a.or | b.or, a.and & b.and} })
	orAll, andAll = m.or, m.and
	diff := orAll ^ andAll

	tmpK := make([]uint64, n)
	tmpV := make([]uint64, n)
	hist := make([]int64, p*radixBuckets)
	offs := make([]int64, p*radixBuckets)

	srcK, srcV := keys, vals
	dstK, dstV := tmpK, tmpV
	var passes int64
	for shift := 0; shift < 64; shift += radixBits {
		if (diff>>shift)&(radixBuckets-1) == 0 {
			continue
		}
		passes++
		for i := range hist {
			hist[i] = 0
		}
		For(n, p, func(w, lo, hi int) {
			h := hist[w*radixBuckets : (w+1)*radixBuckets]
			for i := lo; i < hi; i++ {
				h[(srcK[i]>>shift)&(radixBuckets-1)]++
			}
		})
		// Offsets: bucket-major over workers so the pass stays stable.
		var running int64
		for b := 0; b < radixBuckets; b++ {
			for w := 0; w < p; w++ {
				offs[w*radixBuckets+b] = running
				running += hist[w*radixBuckets+b]
			}
		}
		For(n, p, func(w, lo, hi int) {
			o := offs[w*radixBuckets : (w+1)*radixBuckets]
			for i := lo; i < hi; i++ {
				b := (srcK[i] >> shift) & (radixBuckets - 1)
				pos := o[b]
				o[b] = pos + 1
				dstK[pos] = srcK[i]
				dstV[pos] = srcV[i]
			}
		})
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	obs.Add(obs.CtrRadixPass, passes)
	if &srcK[0] != &keys[0] {
		Copy(keys, srcK, p)
		Copy(vals, srcV, p)
	}
}

// radixSortPairsSeq is the sequential LSD radix sort used for small inputs
// and as the p==1 path.
func radixSortPairsSeq(keys, vals []uint64) {
	n := len(keys)
	radixSortPairsSeqScratch(keys, vals, make([]uint64, n), make([]uint64, n))
}

// radixSortPairsSeqScratch is radixSortPairsSeq with caller-provided
// ping-pong buffers (each at least len(keys) long).
func radixSortPairsSeqScratch(keys, vals, tmpK, tmpV []uint64) {
	n := len(keys)
	var orAll uint64
	andAll := ^uint64(0)
	for _, k := range keys {
		orAll |= k
		andAll &= k
	}
	diff := orAll ^ andAll
	tmpK = tmpK[:n]
	tmpV = tmpV[:n]
	var hist [radixBuckets]int64
	srcK, srcV := keys, vals
	dstK, dstV := tmpK, tmpV
	var passes int64
	for shift := 0; shift < 64; shift += radixBits {
		if (diff>>shift)&(radixBuckets-1) == 0 {
			continue
		}
		passes++
		for i := range hist {
			hist[i] = 0
		}
		for i := 0; i < n; i++ {
			hist[(srcK[i]>>shift)&(radixBuckets-1)]++
		}
		var running int64
		for b := 0; b < radixBuckets; b++ {
			c := hist[b]
			hist[b] = running
			running += c
		}
		for i := 0; i < n; i++ {
			b := (srcK[i] >> shift) & (radixBuckets - 1)
			pos := hist[b]
			hist[b] = pos + 1
			dstK[pos] = srcK[i]
			dstV[pos] = srcV[i]
		}
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	obs.Add(obs.CtrRadixPass, passes)
	if &srcK[0] != &keys[0] {
		copy(keys, srcK)
		copy(vals, srcV)
	}
}

// SortPairsInt32 sorts a short (key int32, weight int64) list ascending by
// key in place using insertion sort below a threshold and radix sort above.
// This is the per-vertex sorter used by sort-based deduplication
// (DEDUPWITHWTS in Algorithm 6); adjacency lists are mostly short, so the
// insertion-sort fast path matters.
func SortPairsInt32(keys []int32, wgts []int64) {
	n := len(keys)
	if n < 2 {
		return
	}
	if n <= 48 {
		for i := 1; i < n; i++ {
			k, w := keys[i], wgts[i]
			j := i - 1
			for j >= 0 && keys[j] > k {
				keys[j+1], wgts[j+1] = keys[j], wgts[j]
				j--
			}
			keys[j+1], wgts[j+1] = k, w
		}
		return
	}
	var s SortScratch
	sortPairsInt32Radix(keys, wgts, &s)
}

// SortScratch holds the reusable buffers of SortPairsInt32Scratch. The
// zero value is ready; buffers grow on demand and are retained.
type SortScratch struct {
	k64, v64, tmpK, tmpV []uint64
}

func (s *SortScratch) ensure(n int) {
	if cap(s.k64) < n {
		s.k64 = make([]uint64, n)
		s.v64 = make([]uint64, n)
		s.tmpK = make([]uint64, n)
		s.tmpV = make([]uint64, n)
	}
}

// SortPairsInt32Scratch is SortPairsInt32 with caller-provided scratch,
// for callers that sort many segments in a loop and want zero steady-state
// allocations. The scratch must not be shared between concurrent callers.
func SortPairsInt32Scratch(keys []int32, wgts []int64, s *SortScratch) {
	n := len(keys)
	if n < 2 {
		return
	}
	if n <= 48 {
		SortPairsInt32(keys, wgts)
		return
	}
	sortPairsInt32Radix(keys, wgts, s)
}

func sortPairsInt32Radix(keys []int32, wgts []int64, s *SortScratch) {
	n := len(keys)
	s.ensure(n)
	k64 := s.k64[:n]
	v64 := s.v64[:n]
	for i := 0; i < n; i++ {
		// Flip the sign bit so negative keys order below non-negative
		// ones under the unsigned radix comparison.
		k64[i] = uint64(uint32(keys[i]) ^ 0x80000000)
		v64[i] = uint64(wgts[i])
	}
	radixSortPairsSeqScratch(k64, v64, s.tmpK, s.tmpV)
	for i := 0; i < n; i++ {
		keys[i] = int32(uint32(k64[i]) ^ 0x80000000)
		wgts[i] = int64(v64[i])
	}
}

// RandPerm returns a uniformly pseudo-random permutation of [0, n) computed
// the way the paper's PARGENPERM does it: assign each index a random 64-bit
// key and sort indices by key in parallel. Ties are broken by index via the
// composite (key<<~, idx) ordering, so the result is always a permutation.
func RandPerm(n int, seed uint64, p int) []int32 {
	perm := make([]int32, n)
	if n == 0 {
		return perm
	}
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	ForEach(n, p, func(i int) {
		keys[i] = Mix64(seed ^ uint64(i)*0x9e3779b97f4a7c15)
		vals[i] = uint64(i)
	})
	RadixSortPairs(keys, vals, p)
	ForEach(n, p, func(i int) {
		perm[i] = int32(vals[i])
	})
	return perm
}

// InversePerm computes the inverse permutation: out[perm[i]] = i
// (Algorithm 5, lines 3-4).
func InversePerm(perm []int32, p int) []int32 {
	out := make([]int32, len(perm))
	ForEach(len(perm), p, func(i int) {
		out[perm[i]] = int32(i)
	})
	return out
}
