package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkers(t *testing.T) {
	cases := []struct{ p, n, min, max int }{
		{1, 100, 1, 1},
		{4, 100, 4, 4},
		{8, 3, 1, 3},
		{0, 100, 1, 1 << 20}, // GOMAXPROCS-dependent; just bounds
		{-1, 0, 1, 1},
	}
	for _, c := range cases {
		got := Workers(c.p, c.n)
		if got < c.min || got > c.max {
			t.Errorf("Workers(%d,%d) = %d, want in [%d,%d]", c.p, c.n, got, c.min, c.max)
		}
	}
}

func TestForCoversRangeOnce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 1000} {
			hits := make([]int32, n)
			For(n, p, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("p=%d n=%d: index %d visited %d times", p, n, i, h)
				}
			}
		}
	}
}

func TestForChunkedCoversRangeOnce(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		for _, chunk := range []int{0, 1, 7, 1024} {
			n := 5000
			hits := make([]int32, n)
			ForChunked(n, p, chunk, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("p=%d chunk=%d: index %d visited %d times", p, chunk, i, h)
				}
			}
		}
	}
}

func TestForEachSum(t *testing.T) {
	n := 10000
	var sum int64
	ForEach(n, 8, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	want := int64(n) * int64(n-1) / 2
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

func TestPrefixSumInt64MatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 4096, 10000} {
		src := make([]int64, n)
		st := uint64(42)
		for i := range src {
			src[i] = int64(SplitMix64(&st) % 1000)
		}
		want := make([]int64, n+1)
		var sum int64
		for i, v := range src {
			want[i] = sum
			sum += v
		}
		want[n] = sum
		for _, p := range []int{1, 4, 16} {
			dst := make([]int64, n+1)
			total := PrefixSumInt64(dst, src, p)
			if total != sum {
				t.Fatalf("n=%d p=%d total=%d want %d", n, p, total, sum)
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("n=%d p=%d dst[%d]=%d want %d", n, p, i, dst[i], want[i])
				}
			}
		}
	}
}

func TestPrefixSumInt32MatchesSequential(t *testing.T) {
	n := 9000
	src := make([]int32, n)
	st := uint64(7)
	for i := range src {
		src[i] = int32(SplitMix64(&st) % 100)
	}
	dst1 := make([]int64, n+1)
	dst8 := make([]int64, n+1)
	t1 := PrefixSumInt32(dst1, src, 1)
	t8 := PrefixSumInt32(dst8, src, 8)
	if t1 != t8 {
		t.Fatalf("totals differ: %d vs %d", t1, t8)
	}
	for i := range dst1 {
		if dst1[i] != dst8[i] {
			t.Fatalf("dst[%d]: %d vs %d", i, dst1[i], dst8[i])
		}
	}
}

func TestPrefixSumPanicsOnBadDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dst length")
		}
	}()
	PrefixSumInt64(make([]int64, 3), make([]int64, 3), 1)
}

func TestPack(t *testing.T) {
	for _, p := range []int{1, 4} {
		got := Pack(10, p, func(i int) bool { return i%3 == 0 })
		want := []int32{0, 3, 6, 9}
		if len(got) != len(want) {
			t.Fatalf("p=%d: got %v want %v", p, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: got %v want %v", p, got, want)
			}
		}
	}
	if got := Pack(0, 4, func(int) bool { return true }); len(got) != 0 {
		t.Errorf("Pack(0) = %v, want empty", got)
	}
	// Large input exercises the parallel path.
	got := Pack(100000, 8, func(i int) bool { return i%2 == 1 })
	if len(got) != 50000 {
		t.Fatalf("len = %d, want 50000", len(got))
	}
	for k, v := range got {
		if int(v) != 2*k+1 {
			t.Fatalf("got[%d] = %d, want %d", k, v, 2*k+1)
		}
	}
}

func TestReduceAndHelpers(t *testing.T) {
	n := 12345
	sum := SumInt64(n, 8, func(i int) int64 { return int64(i) })
	if want := int64(n) * int64(n-1) / 2; sum != want {
		t.Errorf("SumInt64 = %d, want %d", sum, want)
	}
	max := MaxInt64(n, 8, -1, func(i int) int64 { return int64(i % 997) })
	if max != 996 {
		t.Errorf("MaxInt64 = %d, want 996", max)
	}
	if got := MaxInt64(0, 8, -5, func(i int) int64 { return 0 }); got != -5 {
		t.Errorf("MaxInt64 empty = %d, want identity -5", got)
	}
	cnt := CountInt64(n, 8, func(i int) bool { return i%5 == 0 })
	if want := int64((n + 4) / 5); cnt != want {
		t.Errorf("CountInt64 = %d, want %d", cnt, want)
	}
}

func TestFillAndCopy(t *testing.T) {
	a := make([]int32, 5000)
	Fill(a, 7, 8)
	for i, v := range a {
		if v != 7 {
			t.Fatalf("a[%d] = %d", i, v)
		}
	}
	b := make([]int32, 5000)
	Copy(b, a, 8)
	for i, v := range b {
		if v != 7 {
			t.Fatalf("b[%d] = %d", i, v)
		}
	}
}

func TestCopyPanicsOnShortDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Copy(make([]int, 1), make([]int, 2), 1)
}

func TestSplitMix64Known(t *testing.T) {
	// Reference values from the public-domain splitmix64.c with seed 0.
	st := uint64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := SplitMix64(&st); got != w {
			t.Fatalf("output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestRNGDeterministicAndSpread(t *testing.T) {
	a, b := NewRNG(1), NewRNG(1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/100 outputs", same)
	}
	// Intn stays in range and hits all residues eventually.
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d residues in 1000 draws", len(seen))
	}
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(9)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Error("split stream equals parent stream")
	}
}

func TestRadixSortPairsSorted(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 1 << 14, 50000} {
		for _, p := range []int{1, 8} {
			keys := make([]uint64, n)
			vals := make([]uint64, n)
			st := uint64(uint(n)*31 + uint(p))
			for i := range keys {
				keys[i] = SplitMix64(&st)
				vals[i] = keys[i] ^ 0xabcdef // value tied to key for checking
			}
			RadixSortPairs(keys, vals, p)
			for i := 1; i < n; i++ {
				if keys[i-1] > keys[i] {
					t.Fatalf("n=%d p=%d not sorted at %d", n, p, i)
				}
			}
			for i := range keys {
				if vals[i] != keys[i]^0xabcdef {
					t.Fatalf("n=%d p=%d value decoupled from key at %d", n, p, i)
				}
			}
		}
	}
}

func TestRadixSortPairsStable(t *testing.T) {
	// Many duplicate keys; values record original order.
	n := 40000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	st := uint64(5)
	for i := range keys {
		keys[i] = SplitMix64(&st) % 16
		vals[i] = uint64(i)
	}
	RadixSortPairs(keys, vals, 8)
	for i := 1; i < n; i++ {
		if keys[i-1] == keys[i] && vals[i-1] > vals[i] {
			t.Fatalf("instability at %d: key %d order %d > %d", i, keys[i], vals[i-1], vals[i])
		}
	}
}

func TestRadixSortPairsQuick(t *testing.T) {
	f := func(in []uint64) bool {
		keys := append([]uint64(nil), in...)
		vals := make([]uint64, len(keys))
		for i := range vals {
			vals[i] = keys[i]
		}
		RadixSortPairs(keys, vals, 4)
		for i := 1; i < len(keys); i++ {
			if keys[i-1] > keys[i] {
				return false
			}
		}
		for i := range keys {
			if vals[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSortPairsInt32(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, 48, 49, 100, 500} {
		keys := make([]int32, n)
		wgts := make([]int64, n)
		st := uint64(uint(n) + 99)
		for i := range keys {
			keys[i] = int32(SplitMix64(&st) % 64)
			wgts[i] = int64(keys[i]) * 10
		}
		SortPairsInt32(keys, wgts)
		for i := 1; i < n; i++ {
			if keys[i-1] > keys[i] {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
		for i := range keys {
			if wgts[i] != int64(keys[i])*10 {
				t.Fatalf("n=%d: weight decoupled at %d", n, i)
			}
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	for _, n := range []int{0, 1, 2, 1000, 1 << 15} {
		for _, p := range []int{1, 8} {
			perm := RandPerm(n, 12345, p)
			if len(perm) != n {
				t.Fatalf("len = %d, want %d", len(perm), n)
			}
			seen := make([]bool, n)
			for _, v := range perm {
				if v < 0 || int(v) >= n || seen[v] {
					t.Fatalf("n=%d p=%d: not a permutation (element %d)", n, p, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestRandPermSeedSensitivity(t *testing.T) {
	a := RandPerm(1000, 1, 1)
	b := RandPerm(1000, 2, 1)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 50 { // expectation is ~1 fixed point
		t.Errorf("different seeds agree on %d/1000 positions", same)
	}
	// Same seed must reproduce regardless of parallelism: the sort is by
	// unique random keys, so the order is seed-determined.
	c := RandPerm(1000, 1, 8)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("seeded permutation differs between p=1 and p=8 at %d", i)
		}
	}
}

func TestInversePerm(t *testing.T) {
	perm := RandPerm(500, 3, 4)
	inv := InversePerm(perm, 4)
	for i, v := range perm {
		if inv[v] != int32(i) {
			t.Fatalf("inv[perm[%d]] = %d, want %d", i, inv[v], i)
		}
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
}
