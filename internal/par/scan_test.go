package par

import "testing"

func exclusiveScanRef(src []int32) ([]int32, int32) {
	out := make([]int32, len(src))
	var sum int32
	for i, v := range src {
		out[i] = sum
		sum += v
	}
	return out, sum
}

func TestExclusiveScanInt32MatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 4095, 4096, 20000} {
		src := make([]int32, n)
		st := uint64(uint(n) + 11)
		for i := range src {
			src[i] = int32(SplitMix64(&st) % 50)
		}
		want, wantTotal := exclusiveScanRef(src)
		for _, p := range []int{1, 2, 4, 8} {
			dst := make([]int32, n)
			total := ExclusiveScanInt32(dst, src, p)
			if total != wantTotal {
				t.Fatalf("n=%d p=%d total=%d want %d", n, p, total, wantTotal)
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("n=%d p=%d dst[%d]=%d want %d", n, p, i, dst[i], want[i])
				}
			}
		}
	}
}

// The in-place contract (dst aliasing src) is what canonicalize relies on
// to scan its flag array without a second buffer.
func TestExclusiveScanInt32InPlace(t *testing.T) {
	for _, n := range []int{100, 20000} {
		src := make([]int32, n)
		st := uint64(uint(n) + 3)
		for i := range src {
			src[i] = int32(SplitMix64(&st) % 2)
		}
		want, wantTotal := exclusiveScanRef(src)
		for _, p := range []int{1, 8} {
			buf := make([]int32, n)
			copy(buf, src)
			total := ExclusiveScanInt32(buf, buf, p)
			if total != wantTotal {
				t.Fatalf("n=%d p=%d total=%d want %d", n, p, total, wantTotal)
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("n=%d p=%d buf[%d]=%d want %d", n, p, i, buf[i], want[i])
				}
			}
		}
	}
}

func TestExclusiveScanInt32PanicsOnBadDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched dst length")
		}
	}()
	ExclusiveScanInt32(make([]int32, 2), make([]int32, 3), 1)
}
