package coarsen

import (
	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// HECSeq is the sequential Heavy Edge Coarsening algorithm (Algorithm 3):
// vertices are visited in random order; an unmapped vertex joins the
// aggregate of its heaviest neighbor, creating the aggregate if the
// neighbor is still unmapped. The coarsening ratio can exceed two because
// many vertices may join the same aggregate.
type HECSeq struct{}

// Name implements Mapper.
func (HECSeq) Name() string { return "hecseq" }

// Map implements Mapper.
func (HECSeq) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	perm := par.RandPerm(n, seed, p)
	pos := par.InversePerm(perm, p)
	m := make([]int32, n)
	for i := range m {
		m[i] = unset
	}
	// Root-vertex labels (m[u] = the vertex that anchored u's aggregate)
	// instead of a running counter, so the canonical relabeling below can
	// assign the same ids regardless of visit order.
	for _, u := range perm {
		if m[u] != unset {
			continue
		}
		adj, wgt := g.Neighbors(u)
		if len(adj) == 0 {
			m[u] = u
			continue
		}
		x := adj[0]
		bw := wgt[0]
		for k := 1; k < len(adj); k++ {
			if wgt[k] > bw {
				x, bw = adj[k], wgt[k]
			}
		}
		if m[x] == unset {
			m[x] = x
		}
		m[u] = m[x]
	}
	nc := canonicalize(m, pos, p)
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}

// HEC is the parallel heavy edge coarsening of Algorithm 4, made
// schedule-independent: instead of racing compare-and-swap claims (whose
// winners depend on thread interleaving), each pass runs a deterministic
// reservation round in the style of deterministic parallel reservations
// (Blelloch et al.). Every pending vertex u inspects its heavy edge
// <u, H[u]> and classifies the operation:
//
//   - singleton — u is isolated; always commits.
//   - inherit   — H[u] already carries an aggregate; u wants to join it.
//   - pair      — H[u] is unmapped; u wants to found the aggregate {u, H[u]}.
//
// Each inherit/pair operation reserves the cells it writes (its own, plus
// the partner's for pairs) with an atomic-min keyed by pos[u], and commits
// only if it holds the minimum on every reserved cell. Min is
// order-insensitive, so the set of committed operations — and therefore the
// aggregate membership — is identical for every worker count and
// interleaving. The globally minimum-position pending operation always
// holds all its cells, so every round makes progress and no livelock
// (Section III.A.1's mutual-pair deadlock) can occur. A catch-up wave then
// lets pair operations whose partner was claimed by a stronger rival adopt
// the partner's fresh aggregate within the same pass (writing only their
// own cell — race-free), which preserves the paper's property that the
// vast majority of vertices map within two passes.
type HEC struct {
	// MaxPasses bounds the reservation rounds; once exceeded, the
	// remaining vertices are finished sequentially in permutation order
	// (exact Algorithm 3 semantics on the residue). Zero means the default
	// of 64. In practice the paper observes >99% of vertices mapping
	// within two passes.
	MaxPasses int

	// MaxAggWeight optionally caps the vertex weight an aggregate may
	// accumulate (0 = unbounded, the paper's setting). Partitioners use a
	// cap so hub aggregates cannot grow past the balance tolerance —
	// the same guard Metis applies during matching. A vertex whose heavy
	// neighbor's aggregate is full becomes a singleton instead, and a
	// vertex whose own weight exceeds the cap is always a singleton (it
	// could never share an aggregate without blowing the cap).
	MaxAggWeight int64
}

// Name implements Mapper.
func (HEC) Name() string { return "hec" }

// Operation kinds for the reservation rounds.
const (
	hecActSingle = int8(iota)
	hecActPair
	hecActInherit
)

// Map implements Mapper.
func (h HEC) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	maxPasses := h.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 64
	}
	setup := obs.StartKernel("hec:setup")
	perm := par.RandPerm(n, seed, p)
	pos := par.InversePerm(perm, p)
	hv := heavyNeighbors(g, pos, p)
	setup.Done()

	m := make([]int32, n)
	par.Fill(m, unset, p)
	// res[x] = pos of the strongest (minimum-position) pending operation
	// that reserved cell x this round; act[u] = u's classified operation.
	// Only cells of queued vertices are read, so neither array needs a
	// full reset between passes.
	res := make([]int32, n)
	act := make([]int8, n)
	inf := int32(n)

	// Aggregate weights by root vertex, tracked only when a cap is
	// configured. All writes are made by the unique reservation winner or
	// inside the owner's sorted segment, so no atomics are needed.
	maxAW := h.MaxAggWeight
	var aw []int64
	if maxAW > 0 {
		aw = make([]int64, n)
	}
	vw := func(u int32) int64 { return g.VertexWeight(u) }

	queue := perm
	var passMapped []int64
	pass := 0
	for len(queue) > 0 && pass < maxPasses {
		pass++
		span := obs.StartKernel("hec:pass")
		// Reset reservations. Every reservable cell belongs to a queued
		// vertex (pair partners are unmapped, hence queued), so resetting
		// res[u] for u in the queue covers them all with exclusive writes.
		par.ForEach(len(queue), p, func(i int) {
			res[queue[i]] = inf
		})
		// Classify and reserve. m is frozen during this phase, so the
		// inherit-vs-pair decision reads stable values. Reservation issue and
		// CAS-retry counts are batched per chunk and flushed to the ambient
		// span in one call, so the uninstrumented cost is a register add.
		par.ForChunked(len(queue), p, 512, func(_, lo, hi int) {
			var reserves, retries int64
			for i := lo; i < hi; i++ {
				u := queue[i]
				v := hv[u]
				if v == u {
					act[u] = hecActSingle
					continue
				}
				if m[v] != unset {
					act[u] = hecActInherit
					retries += par.AtomicMinInt32Retries(&res[u], pos[u])
					reserves++
					continue
				}
				act[u] = hecActPair
				retries += par.AtomicMinInt32Retries(&res[u], pos[u])
				retries += par.AtomicMinInt32Retries(&res[v], pos[u])
				reserves += 2
			}
			obs.Add(obs.CtrReserve, reserves)
			obs.Add(obs.CtrCASRetry, retries)
		})
		// Commit. An operation writes only cells it holds the minimum
		// reservation on, so every write has a unique writer; the only m
		// reads are of aggregates mapped in earlier passes (stable).
		par.ForChunked(len(queue), p, 512, func(_, lo, hi int) {
			var commits int64
			for i := lo; i < hi; i++ {
				u := queue[i]
				switch act[u] {
				case hecActSingle:
					m[u] = u
					if aw != nil {
						aw[u] = vw(u)
					}
					commits++
				case hecActPair:
					v := hv[u]
					if res[u] != pos[u] || res[v] != pos[u] {
						continue
					}
					if aw != nil {
						wu, wv := vw(u), vw(v)
						if wu+wv > maxAW {
							// Over-cap pair: both endpoints become singletons
							// (this operation holds both cells).
							m[u] = u
							m[v] = v
							aw[u] = wu
							aw[v] = wv
							commits++
							continue
						}
						aw[v] = wu + wv
					}
					m[v] = v
					m[u] = v
					commits++
				case hecActInherit:
					if aw != nil {
						continue // cap admissions resolve in sorted order below
					}
					if res[u] != pos[u] {
						continue
					}
					m[u] = m[hv[u]]
					commits++
				}
			}
			obs.Add(obs.CtrCommit, commits)
		})
		if aw == nil {
			// Catch-up wave: a pending vertex whose partner was founded or
			// claimed this round adopts the partner's aggregate now instead
			// of waiting a pass. Reads are of post-commit values (stable —
			// nothing writes m between the waves) and each vertex writes
			// only its own cell, so the wave is race-free and its outcome
			// schedule-independent. Two sub-phases keep adoption values
			// frozen: first gather, then write.
			par.ForEach(len(queue), p, func(i int) {
				u := queue[i]
				if m[u] != unset || act[u] == hecActSingle {
					res[u] = inf // reuse res as the adoption buffer flag
					return
				}
				if t := m[hv[u]]; t != unset {
					res[u] = t
				} else {
					res[u] = inf
				}
			})
			par.ForEach(len(queue), p, func(i int) {
				u := queue[i]
				if m[u] == unset && res[u] != inf {
					m[u] = res[u]
				}
			})
		} else {
			hecCapAdmission(g, m, hv, pos, act, aw, maxAW, queue, p)
		}
		next := par.Pack(len(queue), p, func(i int) bool {
			return m[queue[i]] == unset
		})
		remapped := int64(len(queue) - len(next))
		passMapped = append(passMapped, remapped)
		q2 := make([]int32, len(next))
		par.ForEach(len(next), p, func(i int) {
			q2[i] = queue[next[i]]
		})
		queue = q2
		span.Done()
		if remapped == 0 {
			// Unreachable given the progress guarantee, but kept as a
			// backstop: fall through to the sequential residue.
			break
		}
	}
	if len(queue) > 0 {
		// Sequential residue in permutation order (the queue preserves
		// it), exact Algorithm 3 semantics with root labels.
		span := obs.StartKernel("hec:residue")
		var cleaned int64
		for _, u := range queue {
			if m[u] != unset {
				continue
			}
			v := hv[u]
			if v == u {
				m[u] = u
				if aw != nil {
					aw[u] = vw(u)
				}
				cleaned++
				continue
			}
			if m[v] == unset {
				if aw != nil && vw(u)+vw(v) > maxAW {
					m[u] = u
					aw[u] = vw(u)
					cleaned++
					continue // v maps on its own turn
				}
				m[v] = v
				m[u] = v
				if aw != nil {
					aw[v] = vw(u) + vw(v)
				}
				cleaned += 2
				continue
			}
			if aw != nil {
				r := m[v]
				if vw(u) > maxAW || aw[r]+vw(u) > maxAW {
					m[u] = u
					aw[u] = vw(u)
				} else {
					m[u] = r
					aw[r] += vw(u)
				}
			} else {
				m[u] = m[v]
			}
			cleaned++
		}
		passMapped = append(passMapped, cleaned)
		pass++
		span.Done()
	}
	nc := canonicalize(m, pos, p)
	return &Mapping{M: m, NC: nc, Passes: pass, PassMapped: passMapped}, nil
}

// hecCapAdmission resolves this pass's joins under an aggregate-weight cap
// deterministically: all pending vertices whose heavy neighbor now carries
// an aggregate are grouped by target root and admitted greedily in
// permutation order within each group. Sorting by (root, pos) makes the
// admission order — and thus which joins bounce off the cap — independent
// of worker count. A vertex heavier than the cap itself is an explicit
// singleton; the historical tryJoin guard (`cur > 0`) let such a vertex
// slip into an aggregate whose weight counter was still zero.
func hecCapAdmission(g *graph.Graph, m, hv, pos []int32, act []int8, aw []int64, maxAW int64, queue []int32, p int) {
	cand := par.Pack(len(queue), p, func(i int) bool {
		u := queue[i]
		return m[u] == unset && act[u] != hecActSingle && m[hv[u]] != unset
	})
	if len(cand) == 0 {
		return
	}
	keys := make([]uint64, len(cand))
	vals := make([]uint64, len(cand))
	par.ForEach(len(cand), p, func(i int) {
		u := queue[cand[i]]
		r := m[hv[u]] // root vertex id of the target aggregate
		keys[i] = uint64(uint32(r))<<32 | uint64(uint32(pos[u]))
		vals[i] = uint64(uint32(u))
	})
	par.RadixSortPairs(keys, vals, p)
	// Each worker handles the whole segment whose head it sees; segments
	// (one per target root) are disjoint, so all writes are exclusive.
	par.ForEachChunked(len(cand), p, 64, func(i int) {
		root := int32(keys[i] >> 32)
		if i > 0 && int32(keys[i-1]>>32) == root {
			return // not a segment head
		}
		w := aw[root]
		for j := i; j < len(cand) && int32(keys[j]>>32) == root; j++ {
			u := int32(uint32(vals[j]))
			wu := g.VertexWeight(u)
			if wu > maxAW {
				// Explicit over-weight singleton (see the comment above).
				m[u] = u
				aw[u] = wu
				continue
			}
			if w+wu <= maxAW {
				m[u] = root
				w += wu
			} else {
				m[u] = u
				aw[u] = wu
			}
		}
		aw[root] = w
	})
}
