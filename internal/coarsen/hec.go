package coarsen

import (
	"sync/atomic"

	"mlcg/internal/graph"
	"mlcg/internal/par"
)

// HECSeq is the sequential Heavy Edge Coarsening algorithm (Algorithm 3):
// vertices are visited in random order; an unmapped vertex joins the
// aggregate of its heaviest neighbor, creating the aggregate if the
// neighbor is still unmapped. The coarsening ratio can exceed two because
// many vertices may join the same aggregate.
type HECSeq struct{}

// Name implements Mapper.
func (HECSeq) Name() string { return "hecseq" }

// Map implements Mapper.
func (HECSeq) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	perm := par.RandPerm(n, seed, p)
	m := make([]int32, n)
	for i := range m {
		m[i] = unset
	}
	var nc int32
	for _, u := range perm {
		if m[u] != unset {
			continue
		}
		adj, wgt := g.Neighbors(u)
		if len(adj) == 0 {
			m[u] = nc
			nc++
			continue
		}
		x := adj[0]
		bw := wgt[0]
		for k := 1; k < len(adj); k++ {
			if wgt[k] > bw {
				x, bw = adj[k], wgt[k]
			}
		}
		if m[x] == unset {
			m[x] = nc
			nc++
		}
		m[u] = m[x]
	}
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}

// HEC is the lock-free parallelization of heavy edge coarsening
// (Algorithm 4). Threads concurrently inspect heavy edges <u, H[u]> and
// claim both endpoints with compare-and-swap on a temporary ownership
// array C; create edges allocate a fresh coarse id, inherit edges adopt
// the partner's id, and failed claims release ownership and retry in a
// later pass over the still-unmapped vertices. A positional identifier
// check on mutual heavy pairs prevents the claim deadlock discussed in
// Section III.A.1.
type HEC struct {
	// MaxPasses bounds the retry loop; once exceeded, the remaining
	// vertices are finished sequentially (exact Algorithm 3 semantics on
	// the residue). Zero means the default of 64. In practice the paper
	// observes >99% of vertices mapping within two passes.
	MaxPasses int

	// MaxAggWeight optionally caps the vertex weight an aggregate may
	// accumulate (0 = unbounded, the paper's setting). Partitioners use a
	// cap so hub aggregates cannot grow past the balance tolerance —
	// the same guard Metis applies during matching. A vertex whose heavy
	// neighbor's aggregate is full becomes a singleton instead.
	MaxAggWeight int64
}

// Name implements Mapper.
func (HEC) Name() string { return "hec" }

// Map implements Mapper.
func (h HEC) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	maxPasses := h.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 64
	}
	perm := par.RandPerm(n, seed, p)
	pos := par.InversePerm(perm, p)
	hv := heavyNeighbors(g, pos, p)

	m := make([]int32, n)
	par.Fill(m, unset, p)
	c := make([]int32, n) // 0 = unclaimed, v+1 = claimed for partner v
	var nc int32

	// Aggregate weights, tracked only when a cap is configured.
	maxAW := h.MaxAggWeight
	var aw []int64
	if maxAW > 0 {
		aw = make([]int64, n)
	}
	// tryJoin reserves u's weight in aggregate id, failing when the cap
	// would be exceeded (singletons always fit: they get a fresh id).
	tryJoin := func(id int32, w int64) bool {
		if maxAW <= 0 {
			return true
		}
		for {
			cur := atomic.LoadInt64(&aw[id])
			if cur+w > maxAW && cur > 0 {
				return false
			}
			if atomic.CompareAndSwapInt64(&aw[id], cur, cur+w) {
				return true
			}
		}
	}
	singleton := func(u int32) {
		id := atomic.AddInt32(&nc, 1) - 1
		if maxAW > 0 {
			atomic.StoreInt64(&aw[id], g.VertexWeight(u))
		}
		atomic.StoreInt32(&m[u], id)
	}

	queue := perm
	var passMapped []int64
	pass := 0
	for len(queue) > 0 && pass < maxPasses {
		pass++
		par.ForEachChunked(len(queue), p, 512, func(i int) {
			u := queue[i]
			if atomic.LoadInt32(&m[u]) != unset {
				return
			}
			v := hv[u]
			if v == u { // isolated vertex: singleton aggregate
				if atomic.LoadInt32(&m[u]) == unset {
					singleton(u)
				}
				return
			}
			// Deadlock prevention for mutual heavy pairs: only the
			// lower-position endpoint drives the create; the other waits
			// for its partner (it will be mapped by the partner's create,
			// or inherit once the partner is mapped some other way).
			if hv[v] == u && pos[u] > pos[v] && atomic.LoadInt32(&m[v]) == unset {
				return
			}
			if atomic.LoadInt32(&c[u]) != 0 {
				return
			}
			if !atomic.CompareAndSwapInt32(&c[u], 0, v+1) {
				return
			}
			if atomic.CompareAndSwapInt32(&c[v], 0, u+1) {
				// Create edge: both endpoints were free. An over-cap pair
				// splits into singletons instead (both endpoints are owned
				// by this thread at this point).
				if maxAW > 0 && g.VertexWeight(u)+g.VertexWeight(v) > maxAW {
					singleton(u)
					singleton(v)
					return
				}
				id := atomic.AddInt32(&nc, 1) - 1
				if maxAW > 0 {
					atomic.StoreInt64(&aw[id], g.VertexWeight(u)+g.VertexWeight(v))
				}
				atomic.StoreInt32(&m[v], id)
				atomic.StoreInt32(&m[u], id)
				return
			}
			if mv := atomic.LoadInt32(&m[v]); mv != unset {
				// Inherit edge: partner already carries a coarse id —
				// join it unless the aggregate is full.
				if tryJoin(mv, g.VertexWeight(u)) {
					atomic.StoreInt32(&m[u], mv)
				} else {
					singleton(u)
				}
				return
			}
			// Partner claimed but not yet mapped: release and retry.
			atomic.StoreInt32(&c[u], 0)
		})
		next := par.Pack(len(queue), p, func(i int) bool {
			return atomic.LoadInt32(&m[queue[i]]) == unset
		})
		remapped := int64(len(queue) - len(next))
		passMapped = append(passMapped, remapped)
		// Translate packed indices back to vertex ids.
		q2 := make([]int32, len(next))
		par.ForEach(len(next), p, func(i int) {
			q2[i] = queue[next[i]]
		})
		if remapped == 0 {
			// No progress this pass (possible under adversarial
			// scheduling): finish the residue sequentially.
			queue = q2
			break
		}
		queue = q2
	}
	if len(queue) > 0 {
		// Sequential cleanup with exact Algorithm 3 semantics.
		var cleaned int64
		for _, u := range queue {
			if m[u] != unset {
				continue
			}
			v := hv[u]
			if v == u {
				singleton(u)
				cleaned++
				continue
			}
			if m[v] == unset {
				if maxAW > 0 && g.VertexWeight(u)+g.VertexWeight(v) > maxAW {
					singleton(u)
					cleaned++
					continue // v maps on its own turn
				}
				id := nc
				nc++
				if maxAW > 0 {
					aw[id] = g.VertexWeight(u) + g.VertexWeight(v)
				}
				m[v] = id
				m[u] = id
				cleaned += 2
				continue
			}
			if tryJoin(m[v], g.VertexWeight(u)) {
				m[u] = m[v]
			} else {
				singleton(u)
			}
			cleaned++
		}
		passMapped = append(passMapped, cleaned)
		pass++
	}
	return &Mapping{M: m, NC: nc, Passes: pass, PassMapped: passMapped}, nil
}
