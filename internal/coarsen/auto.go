package coarsen

import (
	"time"

	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// Thresholds of the adaptive construction policy. Calibrated against the
// per-level builder shootout recorded in BENCH_baseline.json on the
// reference host (see DESIGN.md, "Adaptive construction"); the numbers are
// deliberately coarse — the regimes they separate differ by integer
// factors, not percents.
const (
	// autoTinyEdges is the edge count below which the hash builder's small
	// constant factor beats every sort-based strategy regardless of worker
	// count (measured: hash wins or ties every calibrated level with
	// m <= 1024; all such levels finish in well under 50µs).
	autoTinyEdges = 1024

	// autoCliqueDensity is the estimated coarse density 2m/nc² above which
	// the level is collapsing toward a clique with edge duplication so
	// extreme that the SpGEMM dense accumulator stays flat while every
	// sort-based strategy pays for each duplicate. The densest calibrated
	// level (the mycielskian17 analog's final level, density 571) had
	// spgemm beating per-bin sort and segsort but still losing to the
	// global radix sort, so the threshold sits above everything measured
	// and the branch covers only the asymptotic clique-collapse regime.
	// Values far above 1 are possible because the estimate counts fine
	// edges before deduplication.
	autoCliqueDensity = 1000.0

	// autoDenseFoldDensity marks the dense-fold regime: estimated coarse
	// density 2m/nc² >= 0.5 means most scattered entries will merge into
	// already-present coarse edges. Hash dedup is the robust winner there —
	// the per-bin tables stay small and cache-resident precisely because
	// the fold ratio is high, while any global sort drags every duplicate
	// through all of its radix passes (calibrated on the mycielskian17
	// analog: hash beats the global sort by 1.3-1.4x on its HEM levels,
	// density 0.65-2.2, and is within measurement noise of the field on
	// its density-571 HEC level).
	autoDenseFoldDensity = 0.5
)

// Choice records one per-level decision of the AutoConstruct policy.
type Choice struct {
	// Level is the 0-based level index within the current hierarchy.
	Level int
	// Builder is the name of the dispatched builder and Reason the stable
	// decision-rule code that selected it (trivial-level, tiny-level,
	// near-clique, serial-default, skewed-parallel, regular-parallel,
	// probe-winner).
	Builder string
	Reason  string
	// Probed marks a decision made by timing candidates rather than by the
	// static rule.
	Probed bool
	// The statistics the rule saw: fine vertex/edge counts, coarse vertex
	// count, degree skew Δ/(2m/n), coarsening ratio n/nc, and the estimated
	// coarse density 2m/nc².
	N       int32
	NC      int32
	M       int64
	Skew    float64
	Ratio   float64
	Density float64
}

// AutoConstruct is the adaptive per-level construction policy: each Build
// computes cheap statistics of the (fine graph, mapping) pair and
// dispatches to the builder the calibrated decision rule predicts to be
// fastest for that level. The rule (decideConstruct) is a pure function of
// the statistics and the worker count, so the policy inherits the
// schedule-independence guarantee of the underlying builders: branches
// that depend on the worker count only ever switch between builders that
// emit byte-identical canonical CSR (sort, segsort, globalsort), while the
// branches selecting hash or spgemm — whose adjacency order differs — are
// worker-count-independent.
//
// With Probe set, the first non-trivial level additionally times the two
// regime candidates back to back and locks the measured winner in for the
// rest of the hierarchy (the paper's "try both once" portability
// fallback). Probing is off by default because it makes the choice
// timing-dependent across runs; within a run determinism still holds
// because the candidates share output order.
type AutoConstruct struct {
	// Probe enables first-level candidate timing (see type comment).
	Probe bool

	// locked is the probe winner ("" until a probe has run); it replaces
	// the static pick of the sorted-family regimes for subsequent levels.
	locked string
	// level counts Build calls since BeginHierarchy, for Choice records.
	level   int
	last    *Choice
	choices []Choice
}

// Name implements Builder.
func (b *AutoConstruct) Name() string { return "auto" }

// BeginHierarchy resets the per-hierarchy state (level counter, choice log,
// probe lock). Coarsener.Run calls it before the first level.
func (b *AutoConstruct) BeginHierarchy() {
	b.locked = ""
	b.level = 0
	b.last = nil
	b.choices = b.choices[:0]
}

// LastChoice returns the decision of the most recent Build (nil before the
// first).
func (b *AutoConstruct) LastChoice() *Choice { return b.last }

// Choices returns the decision log since the last BeginHierarchy.
func (b *AutoConstruct) Choices() []Choice { return append([]Choice(nil), b.choices...) }

// Build implements Builder with a private workspace.
func (b *AutoConstruct) Build(g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	return b.BuildWith(NewWorkspace(), g, m, p)
}

// BuildWith implements WorkspaceBuilder: it decides, records the choice,
// and forwards the shared workspace to the chosen builder.
func (b *AutoConstruct) BuildWith(ws *Workspace, g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	if err := m.Validate(g.N()); err != nil {
		return nil, err
	}
	n, edges, nc := g.NumV, g.M(), m.NC
	skew := g.DegreeSkew()
	dens := 0.0
	if nc > 0 {
		dens = 2 * float64(edges) / (float64(nc) * float64(nc))
	}
	// The rule sees the resolved parallelism (0 means GOMAXPROCS all the
	// way down to the kernels, but the serial-vs-parallel branches need
	// the actual degree). n bounds it the same way par.Workers does for
	// the builders themselves.
	rp := par.Workers(p, int(n))
	name, reason := decideConstruct(edges, nc, skew, dens, rp)
	if b.locked != "" && sortedFamily[name] {
		name, reason = b.locked, "probe-winner"
	}

	ch := Choice{
		Level: b.level, Builder: name, Reason: reason,
		N: n, NC: nc, M: edges, Skew: skew, Ratio: m.Ratio(), Density: dens,
	}

	var cg *graph.Graph
	var err error
	if b.Probe && b.locked == "" && sortedFamily[name] {
		cg, err = b.probe(ws, g, m, p, rp, &ch)
	} else {
		cg, err = dispatchConstruct(name, ws, g, m, p)
	}
	if err != nil {
		return nil, err
	}

	b.level++
	b.last = &ch
	b.choices = append(b.choices, ch)
	obs.Add(counterForBuilder(ch.Builder), 1)
	if obs.Enabled() {
		// A zero-width marker span makes the per-level decision visible in
		// the trace tree under the enclosing build span.
		obs.StartKernel("policy:" + ch.Builder + ":" + ch.Reason).Done()
	}
	return cg, nil
}

// probe times the static pick against the other sorted-family candidate of
// the current regime (rp is the resolved parallelism), locks the winner
// in, and returns the winner's output (both candidates emit identical
// CSR, so either output is the answer — the faster one's is simply the
// one we keep).
func (b *AutoConstruct) probe(ws *Workspace, g *graph.Graph, m *Mapping, p, rp int, ch *Choice) (*graph.Graph, error) {
	alt := "sort"
	if ch.Builder == "sort" {
		if rp <= 1 {
			alt = "globalsort"
		} else {
			alt = "segsort"
		}
	}
	obs.Add(obs.CtrAutoProbe, 2)
	t0 := time.Now()
	cg, err := dispatchConstruct(ch.Builder, ws, g, m, p)
	if err != nil {
		return nil, err
	}
	dMain := time.Since(t0)
	t0 = time.Now()
	cgAlt, err := dispatchConstruct(alt, ws, g, m, p)
	if err != nil {
		return nil, err
	}
	if time.Since(t0) < dMain {
		ch.Builder, cg = alt, cgAlt
	}
	ch.Probed, ch.Reason = true, "probe-winner"
	b.locked = ch.Builder
	return cg, nil
}

// sortedFamily marks the builders that emit identical fully sorted
// canonical CSR for a given (graph, mapping). Only these may be selected
// by worker-count-dependent branches or swapped by probing, or the policy
// would lose byte-determinism across worker counts.
var sortedFamily = map[string]bool{"sort": true, "segsort": true, "globalsort": true}

// decideConstruct is the documented decision rule: a pure function of the
// level statistics and the worker count. Branch order matters — the
// worker-count-independent branches (1–4) come first so that the builders
// with non-canonical output order (hash, spgemm) are chosen identically at
// every worker count.
//
//  1. No edges, or a single coarse vertex: nothing to deduplicate; the
//     sort builder's scatter has the least setup.
//  2. Tiny level (m <= 1024): hash — the level runs in microseconds and
//     hash has the smallest constant factor (wins or ties every
//     calibrated tiny level).
//  3. Near-clique densification (2m/nc² >= 1000): spgemm — duplication is
//     so extreme that the dense accumulator beats every sort-based
//     strategy (asymptotic regime; the threshold sits above the densest
//     calibrated level, where the global sort still won).
//  4. Dense-fold (2m/nc² >= 0.5): hash — most entries merge into
//     existing coarse edges, so the dedup tables stay cache-resident
//     while any global sort drags every duplicate through all its passes
//     (calibrated on the mycielskian17 analog's HEM levels). The regime is
//     inherently low-skew (a densifying level has no room for hubs), so
//     hash is safe at every worker count.
//  5. Serial (p == 1): globalsort — one global radix sort avoids all
//     partitioning overhead and won 19 of 21 calibrated levels on the
//     reference host.
//  6. Parallel and skewed (Δ/(2m/n) >= DefaultSkewThreshold): segsort —
//     the segmented global sort load-balances hub bins instead of leaving
//     one worker holding the hub (the paper's device-role result).
//  7. Parallel and regular: sort — per-bin dedup with the contention-free
//     scatter, the paper's Table II winner.
func decideConstruct(m int64, nc int32, skew, dens float64, p int) (name, reason string) {
	switch {
	case m == 0 || nc <= 1:
		return "sort", "trivial-level"
	case m <= autoTinyEdges:
		return "hash", "tiny-level"
	case dens >= autoCliqueDensity:
		return "spgemm", "near-clique"
	case dens >= autoDenseFoldDensity:
		return "hash", "dense-fold"
	case p == 1:
		return "globalsort", "serial-default"
	case skew >= DefaultSkewThreshold:
		return "segsort", "skewed-parallel"
	default:
		return "sort", "regular-parallel"
	}
}

// dispatchConstruct forwards to the named underlying builder, reusing the
// caller's workspace (the builder-switching reuse path exercised by
// TestWorkspaceReuseAcrossBuilderSwitch).
func dispatchConstruct(name string, ws *Workspace, g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	var wb WorkspaceBuilder
	switch name {
	case "sort":
		wb = BuildSort{}
	case "hash":
		wb = BuildHash{}
	case "segsort":
		wb = BuildSegSort{}
	case "spgemm":
		wb = BuildSpGEMM{}
	case "globalsort":
		wb = BuildGlobalSort{}
	default:
		wb = BuildSort{}
	}
	return wb.BuildWith(ws, g, m, p)
}

// counterForBuilder maps a chosen builder to its construct_policy counter.
func counterForBuilder(name string) obs.Counter {
	switch name {
	case "sort":
		return obs.CtrAutoSort
	case "hash":
		return obs.CtrAutoHash
	case "segsort":
		return obs.CtrAutoSegSort
	case "spgemm":
		return obs.CtrAutoSpGEMM
	case "globalsort":
		return obs.CtrAutoGlobalSort
	}
	return obs.CtrAutoSort
}

// PolicyBuilder is implemented by builders that make per-level dispatch
// decisions. Coarsener.Run uses it to reset per-hierarchy state and to
// record the chosen builder and reason in LevelStats.
type PolicyBuilder interface {
	Builder
	// BeginHierarchy resets per-hierarchy decision state.
	BeginHierarchy()
	// LastChoice reports the most recent decision (nil before the first).
	LastChoice() *Choice
}
