package coarsen

import (
	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// heavyNeighbors computes H[u] = the heaviest neighbor of u (Algorithm 4,
// lines 2-8). Ties on weight are broken toward the neighbor with the
// smallest position in the random permutation (pos = O, the inverse
// permutation). The positional tie-break matters: it guarantees that the
// functional graph u -> H[u] contains no cycles longer than two, which is
// what makes the pointer-jumping phase of HEC3 (Algorithm 5) terminate.
//
// Proof sketch: along any cycle u1 -> u2 -> ... -> uk -> u1 the edge
// weights are non-decreasing, hence all equal; then each step strictly
// decreases the permutation position two hops back, which is impossible
// for k > 2.
//
// Vertices with no neighbors get H[u] = u.
func heavyNeighbors(g *graph.Graph, pos []int32, p int) []int32 {
	span := obs.StartKernel("heavy-neighbors")
	defer span.Done()
	n := g.N()
	h := make([]int32, n)
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		adj, wgt := g.Neighbors(u)
		if len(adj) == 0 {
			h[u] = u
			return
		}
		best := adj[0]
		bw := wgt[0]
		for k := 1; k < len(adj); k++ {
			v, w := adj[k], wgt[k]
			if w > bw || (w == bw && pos[v] < pos[best]) {
				best, bw = v, w
			}
		}
		h[u] = best
	})
	return h
}

// heavyUnmatchedNeighbors recomputes H restricted to unmatched vertices
// (match[v] == unset), the HEM variant (tech-report Algorithm 10): a
// vertex looks for its heaviest still-unmatched neighbor. Vertices that
// are matched, or whose neighbors are all matched, get H[u] = u.
func heavyUnmatchedNeighbors(g *graph.Graph, match, pos []int32, p int) []int32 {
	span := obs.StartKernel("heavy-unmatched")
	defer span.Done()
	n := g.N()
	h := make([]int32, n)
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		h[u] = u
		if match[u] != unset {
			return
		}
		adj, wgt := g.Neighbors(u)
		best := u
		var bw int64 = -1
		for k, v := range adj {
			if match[v] != unset {
				continue
			}
			w := wgt[k]
			if w > bw || (w == bw && pos[v] < pos[best]) {
				best, bw = v, w
			}
		}
		h[u] = best
	})
	return h
}
