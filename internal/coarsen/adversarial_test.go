package coarsen

import (
	"fmt"
	"testing"

	"mlcg/internal/graph"
)

// Adversarial structures that historically break coarsening codes: deep
// stars-of-stars (recursion/pointer-jumping depth), barbells (balance
// pressure), complete bipartite graphs (dedup blowup), long heavy chains
// (HEC pass counts), and near-overflow edge weights (accumulator safety).

func starOfStars(fanout, depth int) *graph.Graph {
	var e []graph.Edge
	next := int32(1)
	var build func(root int32, d int)
	build = func(root int32, d int) {
		if d == 0 {
			return
		}
		for i := 0; i < fanout; i++ {
			child := next
			next++
			e = append(e, graph.Edge{U: root, V: child, W: int64(d)})
			build(child, d-1)
		}
	}
	build(0, depth)
	return graph.MustFromEdges(int(next), e)
}

func barbell(k int) *graph.Graph {
	var e []graph.Edge
	for side := 0; side < 2; side++ {
		base := int32(side * k)
		for i := int32(0); i < int32(k); i++ {
			for j := i + 1; j < int32(k); j++ {
				e = append(e, graph.Edge{U: base + i, V: base + j, W: 2})
			}
		}
	}
	e = append(e, graph.Edge{U: 0, V: int32(k), W: 1})
	return graph.MustFromEdges(2*k, e)
}

func completeBipartite(a, b int) *graph.Graph {
	var e []graph.Edge
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			e = append(e, graph.Edge{U: int32(i), V: int32(a + j), W: int64(i+j)%7 + 1})
		}
	}
	return graph.MustFromEdges(a+b, e)
}

// increasingChain makes HEC's heavy pointers form one long chain — the
// worst case for Algorithm 4's pass count.
func increasingChain(n int) *graph.Graph {
	var e []graph.Edge
	for i := 0; i < n-1; i++ {
		e = append(e, graph.Edge{U: int32(i), V: int32(i + 1), W: int64(i + 1)})
	}
	return graph.MustFromEdges(n, e)
}

func TestAdversarialStructuresAllMappers(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"starOfStars": starOfStars(4, 5),
		"barbell":     barbell(20),
		"bipartite":   completeBipartite(12, 40),
		"chain":       increasingChain(500),
	}
	for gname, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		for _, mapper := range allMappers(t) {
			m, err := mapper.Map(g, 3, 4)
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, mapper.Name(), err)
			}
			if err := m.Validate(g.N()); err != nil {
				t.Fatalf("%s/%s: %v", gname, mapper.Name(), err)
			}
			cg, err := BuildSort{}.Build(g, m, 4)
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, mapper.Name(), err)
			}
			if err := cg.Validate(); err != nil {
				t.Fatalf("%s/%s: coarse graph: %v", gname, mapper.Name(), err)
			}
		}
	}
}

func TestIncreasingChainHECPasses(t *testing.T) {
	// The chain is HEC's worst case: each pass resolves only the tail.
	// The implementation must fall back to the sequential cleanup rather
	// than looping forever, and still map everything.
	g := increasingChain(2000)
	m, err := HEC{MaxPasses: 4}.Map(g, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(g.N()); err != nil {
		t.Fatal(err)
	}
	if m.Passes > 5 { // 4 parallel + 1 cleanup accounting
		t.Errorf("passes = %d", m.Passes)
	}
}

func TestHugeWeightsNoOverflow(t *testing.T) {
	// Weights near 2^50; merging hundreds of them stays far below int64
	// overflow but would wreck any int32 accumulator. The total must be
	// conserved exactly through coarsening and partitioning.
	const w = int64(1) << 50
	var e []graph.Edge
	n := 200
	for i := 0; i < n-1; i++ {
		e = append(e, graph.Edge{U: int32(i), V: int32(i + 1), W: w + int64(i)})
	}
	for i := 0; i < n; i += 3 {
		j := (i + 57) % n
		if i != j {
			e = append(e, graph.Edge{U: int32(i), V: int32(j), W: w - int64(i)})
		}
	}
	g := graph.MustFromEdges(n, e)
	total := g.TotalEdgeWeight()
	for _, bname := range BuilderNames() {
		b, _ := BuilderByName(bname)
		m, err := HEC{}.Map(g, 5, 2)
		if err != nil {
			t.Fatal(err)
		}
		cg, err := b.Build(g, m, 2)
		if err != nil {
			t.Fatalf("%s: %v", bname, err)
		}
		var intra int64
		for u := int32(0); u < g.NumV; u++ {
			adj, wgt := g.Neighbors(u)
			for k, v := range adj {
				if u < v && m.M[u] == m.M[v] {
					intra += wgt[k]
				}
			}
		}
		if got := cg.TotalEdgeWeight() + intra; got != total {
			t.Errorf("%s: weight %d, want %d", bname, got, total)
		}
	}
}

// policyBuilders are the construction strategies the auto decision rule
// can dispatch to, plus the policy itself.
func policyBuilders(t *testing.T) []Builder {
	t.Helper()
	var out []Builder
	for _, name := range []string{"sort", "hash", "segsort", "spgemm", "globalsort", "auto"} {
		b, err := BuilderByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// TestAutoPolicyEdgeCases drives every policy-selectable builder (and the
// policy itself) through the degenerate inputs that break dispatch
// surfaces: the empty graph, a single vertex, a star, an already-coarsest
// identity mapping, and a level that densifies to near-clique. Each output
// must satisfy the full coarse-graph invariant battery.
func TestAutoPolicyEdgeCases(t *testing.T) {
	star := func(leaves int) *graph.Graph {
		var e []graph.Edge
		for i := 1; i <= leaves; i++ {
			e = append(e, graph.Edge{U: 0, V: int32(i), W: int64(i%5 + 1)})
		}
		return graph.MustFromEdges(leaves+1, e)
	}
	starMap := func(leaves int) *Mapping {
		// Hub keeps its own aggregate; leaves merge pairwise.
		m := make([]int32, leaves+1)
		for i := 1; i <= leaves; i++ {
			m[i] = 1 + int32(i-1)/2
		}
		return &Mapping{M: m, NC: 1 + int32((leaves+1)/2)}
	}
	identity := func(n int) *Mapping {
		m := make([]int32, n)
		for i := range m {
			m[i] = int32(i)
		}
		return &Mapping{M: m, NC: int32(n)}
	}
	bip := completeBipartite(40, 40)
	bipMap := make([]int32, bip.N())
	for u := range bipMap {
		bipMap[u] = int32(u % 2)
	}
	cases := []struct {
		name string
		g    *graph.Graph
		m    *Mapping
	}{
		{"empty", graph.MustFromEdges(0, nil), &Mapping{M: []int32{}, NC: 0}},
		{"singleVertex", graph.MustFromEdges(1, nil), &Mapping{M: []int32{0}, NC: 1}},
		{"star", star(64), starMap(64)},
		{"alreadyCoarsest", increasingChain(100), identity(100)},
		{"nearClique", bip, &Mapping{M: bipMap, NC: 2}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(tc.g.N()); err != nil {
			t.Fatalf("%s: bad test mapping: %v", tc.name, err)
		}
		for _, b := range policyBuilders(t) {
			for _, p := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%s/p%d", tc.name, b.Name(), p), func(t *testing.T) {
					cg, err := b.Build(tc.g, tc.m, p)
					if err != nil {
						t.Fatal(err)
					}
					CheckCoarseInvariants(t, tc.g, tc.m, cg)
				})
			}
		}
	}
}

// TestAutoDecisionRuleCoverage pins the decision rule's branch map: each
// adversarial regime must select the documented builder, and between them
// the regimes must reach every builder the policy can dispatch to.
func TestAutoDecisionRuleCoverage(t *testing.T) {
	cases := []struct {
		name            string
		m               int64
		nc              int32
		skew, dens      float64
		p               int
		builder, reason string
	}{
		{"empty", 0, 0, 0, 0, 1, "sort", "trivial-level"},
		{"singleCoarseVertex", 500, 1, 1, 0, 4, "sort", "trivial-level"},
		{"tinyStar", 64, 33, 30, 0.1, 4, "hash", "tiny-level"},
		{"nearClique", 1600, 2, 1.0, 1600, 1, "spgemm", "near-clique"},
		{"denseFoldSerial", 121269, 613, 4.8, 0.65, 1, "hash", "dense-fold"},
		{"denseFoldParallel", 121269, 613, 4.8, 0.65, 4, "hash", "dense-fold"},
		{"serialRegular", 3000, 1000, 1.9, 0.006, 1, "globalsort", "serial-default"},
		{"parallelSkewed", 3000, 1000, 1500, 0.006, 4, "segsort", "skewed-parallel"},
		{"parallelRegular", 3000, 1000, 1.9, 0.006, 4, "sort", "regular-parallel"},
	}
	covered := map[string]bool{}
	for _, tc := range cases {
		name, reason := decideConstruct(tc.m, tc.nc, tc.skew, tc.dens, tc.p)
		if name != tc.builder || reason != tc.reason {
			t.Errorf("%s: decide = (%s, %s), want (%s, %s)", tc.name, name, reason, tc.builder, tc.reason)
		}
		covered[name] = true
	}
	for _, want := range []string{"sort", "hash", "segsort", "spgemm", "globalsort"} {
		if !covered[want] {
			t.Errorf("decision rule never selects %s", want)
		}
	}
}

// TestWorkspaceReuseAcrossBuilderSwitch is the regression test for the
// builder-switching workspace hazard the auto policy introduces: one
// Workspace now serves different builders (and different graphs) level
// after level, so buffers sized and epoch-stamped by builder A are handed
// to builder B. Every build through the battle-worn shared workspace must
// be byte-identical to the same build on a fresh one.
func TestWorkspaceReuseAcrossBuilderSwitch(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"bipartite", completeBipartite(12, 40)},
		{"starOfStars", starOfStars(4, 5)},
		{"chain", increasingChain(500)},
	}
	order := []string{"sort", "hash", "segsort", "spgemm", "globalsort", "hash", "heap", "hybrid", "sort", "segsort"}
	shared := NewWorkspace()
	for round := 0; round < 2; round++ {
		// Interleave graphs of different sizes so buffers are grown, then
		// reused smaller, then regrown — the sizing hazard, not just the
		// staleness hazard.
		for _, tg := range graphs {
			m, err := HEC{}.Map(tg.g, 3, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{1, 4} {
				for _, bn := range order {
					b, err := BuilderByName(bn)
					if err != nil {
						t.Fatal(err)
					}
					wb, ok := b.(WorkspaceBuilder)
					if !ok {
						t.Fatalf("%s: not a WorkspaceBuilder", bn)
					}
					got, err := wb.BuildWith(shared, tg.g, m, p)
					if err != nil {
						t.Fatalf("round %d %s/%s/p%d (shared): %v", round, tg.name, bn, p, err)
					}
					want, err := wb.BuildWith(NewWorkspace(), tg.g, m, p)
					if err != nil {
						t.Fatalf("%s/%s/p%d (fresh): %v", tg.name, bn, p, err)
					}
					if !rawEqual(got, want) {
						t.Fatalf("round %d %s/%s/p%d: shared-workspace CSR differs from fresh-workspace CSR",
							round, tg.name, bn, p)
					}
				}
			}
		}
	}
}

func TestBarbellBisection(t *testing.T) {
	// The optimal barbell bisection cuts the single bridge.
	g := barbell(24)
	m, err := HEC{}.Map(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// HEC must not contract the bridge while heavier intra-clique edges
	// exist (heavy-edge preference).
	if m.M[0] == m.M[24] && m.NC > 2 {
		t.Errorf("bridge contracted before cliques collapsed")
	}
}

func TestMultilevelOnStarOfStars(t *testing.T) {
	g := starOfStars(3, 7) // deep hierarchy, n = (3^8-1)/2
	c := &Coarsener{Mapper: HEC{}, Builder: BuildSort{}, Seed: 2, Workers: 2}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, cg := range h.Graphs[1:] {
		if err := cg.Validate(); err != nil {
			t.Fatalf("level %d: %v", i+1, err)
		}
	}
	if h.Coarsest().TotalVertexWeight() != int64(g.N()) {
		t.Error("vertex weight lost")
	}
}
