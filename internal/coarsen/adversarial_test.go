package coarsen

import (
	"testing"

	"mlcg/internal/graph"
)

// Adversarial structures that historically break coarsening codes: deep
// stars-of-stars (recursion/pointer-jumping depth), barbells (balance
// pressure), complete bipartite graphs (dedup blowup), long heavy chains
// (HEC pass counts), and near-overflow edge weights (accumulator safety).

func starOfStars(fanout, depth int) *graph.Graph {
	var e []graph.Edge
	next := int32(1)
	var build func(root int32, d int)
	build = func(root int32, d int) {
		if d == 0 {
			return
		}
		for i := 0; i < fanout; i++ {
			child := next
			next++
			e = append(e, graph.Edge{U: root, V: child, W: int64(d)})
			build(child, d-1)
		}
	}
	build(0, depth)
	return graph.MustFromEdges(int(next), e)
}

func barbell(k int) *graph.Graph {
	var e []graph.Edge
	for side := 0; side < 2; side++ {
		base := int32(side * k)
		for i := int32(0); i < int32(k); i++ {
			for j := i + 1; j < int32(k); j++ {
				e = append(e, graph.Edge{U: base + i, V: base + j, W: 2})
			}
		}
	}
	e = append(e, graph.Edge{U: 0, V: int32(k), W: 1})
	return graph.MustFromEdges(2*k, e)
}

func completeBipartite(a, b int) *graph.Graph {
	var e []graph.Edge
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			e = append(e, graph.Edge{U: int32(i), V: int32(a + j), W: int64(i+j)%7 + 1})
		}
	}
	return graph.MustFromEdges(a+b, e)
}

// increasingChain makes HEC's heavy pointers form one long chain — the
// worst case for Algorithm 4's pass count.
func increasingChain(n int) *graph.Graph {
	var e []graph.Edge
	for i := 0; i < n-1; i++ {
		e = append(e, graph.Edge{U: int32(i), V: int32(i + 1), W: int64(i + 1)})
	}
	return graph.MustFromEdges(n, e)
}

func TestAdversarialStructuresAllMappers(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"starOfStars": starOfStars(4, 5),
		"barbell":     barbell(20),
		"bipartite":   completeBipartite(12, 40),
		"chain":       increasingChain(500),
	}
	for gname, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		for _, mapper := range allMappers(t) {
			m, err := mapper.Map(g, 3, 4)
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, mapper.Name(), err)
			}
			if err := m.Validate(g.N()); err != nil {
				t.Fatalf("%s/%s: %v", gname, mapper.Name(), err)
			}
			cg, err := BuildSort{}.Build(g, m, 4)
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, mapper.Name(), err)
			}
			if err := cg.Validate(); err != nil {
				t.Fatalf("%s/%s: coarse graph: %v", gname, mapper.Name(), err)
			}
		}
	}
}

func TestIncreasingChainHECPasses(t *testing.T) {
	// The chain is HEC's worst case: each pass resolves only the tail.
	// The implementation must fall back to the sequential cleanup rather
	// than looping forever, and still map everything.
	g := increasingChain(2000)
	m, err := HEC{MaxPasses: 4}.Map(g, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(g.N()); err != nil {
		t.Fatal(err)
	}
	if m.Passes > 5 { // 4 parallel + 1 cleanup accounting
		t.Errorf("passes = %d", m.Passes)
	}
}

func TestHugeWeightsNoOverflow(t *testing.T) {
	// Weights near 2^50; merging hundreds of them stays far below int64
	// overflow but would wreck any int32 accumulator. The total must be
	// conserved exactly through coarsening and partitioning.
	const w = int64(1) << 50
	var e []graph.Edge
	n := 200
	for i := 0; i < n-1; i++ {
		e = append(e, graph.Edge{U: int32(i), V: int32(i + 1), W: w + int64(i)})
	}
	for i := 0; i < n; i += 3 {
		j := (i + 57) % n
		if i != j {
			e = append(e, graph.Edge{U: int32(i), V: int32(j), W: w - int64(i)})
		}
	}
	g := graph.MustFromEdges(n, e)
	total := g.TotalEdgeWeight()
	for _, bname := range BuilderNames() {
		b, _ := BuilderByName(bname)
		m, err := HEC{}.Map(g, 5, 2)
		if err != nil {
			t.Fatal(err)
		}
		cg, err := b.Build(g, m, 2)
		if err != nil {
			t.Fatalf("%s: %v", bname, err)
		}
		var intra int64
		for u := int32(0); u < g.NumV; u++ {
			adj, wgt := g.Neighbors(u)
			for k, v := range adj {
				if u < v && m.M[u] == m.M[v] {
					intra += wgt[k]
				}
			}
		}
		if got := cg.TotalEdgeWeight() + intra; got != total {
			t.Errorf("%s: weight %d, want %d", bname, got, total)
		}
	}
}

func TestBarbellBisection(t *testing.T) {
	// The optimal barbell bisection cuts the single bridge.
	g := barbell(24)
	m, err := HEC{}.Map(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// HEC must not contract the bridge while heavier intra-clique edges
	// exist (heavy-edge preference).
	if m.M[0] == m.M[24] && m.NC > 2 {
		t.Errorf("bridge contracted before cliques collapsed")
	}
}

func TestMultilevelOnStarOfStars(t *testing.T) {
	g := starOfStars(3, 7) // deep hierarchy, n = (3^8-1)/2
	c := &Coarsener{Mapper: HEC{}, Builder: BuildSort{}, Seed: 2, Workers: 2}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, cg := range h.Graphs[1:] {
		if err := cg.Validate(); err != nil {
			t.Fatalf("level %d: %v", i+1, err)
		}
	}
	if h.Coarsest().TotalVertexWeight() != int64(g.N()) {
		t.Error("vertex weight lost")
	}
}
