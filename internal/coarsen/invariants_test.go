package coarsen

import (
	"fmt"
	"testing"

	"mlcg/internal/gen"
	"mlcg/internal/graph"
)

// CheckCoarseInvariants asserts every structural property a coarse graph
// must satisfy regardless of which mapper, builder, or worker count
// produced it:
//
//   - CSR well-formedness: monotone offsets, in-range neighbor ids, no
//     self-loops, no duplicate columns per row
//   - canonical validity after sorting (graph.Validate: symmetry with
//     matching reverse weights, positive weights, sorted adjacency)
//   - vertex-weight conservation: Σ coarse VWgt == Σ fine VWgt
//   - edge-weight conservation modulo self-loop folding: the directed
//     coarse weight total equals the fine total minus the weight of edges
//     folded inside aggregates
//
// The raw (pre-sort) checks run on the builder's output verbatim — some
// builders (hash, spgemm, hybrid) legitimately emit unsorted rows, so
// sortedness is asserted on a copy.
func CheckCoarseInvariants(t *testing.T, fine *graph.Graph, m *Mapping, coarse *graph.Graph) {
	t.Helper()
	if err := coarseInvariantErr(fine, m, coarse); err != nil {
		t.Fatal(err)
	}
}

// coarseInvariantErr is CheckCoarseInvariants with an error return, usable
// from fuzz targets and non-test callers.
func coarseInvariantErr(fine *graph.Graph, m *Mapping, coarse *graph.Graph) error {
	if coarse.NumV != m.NC {
		return fmt.Errorf("coarse vertex count %d, mapping says %d", coarse.NumV, m.NC)
	}
	if len(coarse.Xadj) != int(coarse.NumV)+1 {
		return fmt.Errorf("xadj length %d, want %d", len(coarse.Xadj), coarse.NumV+1)
	}
	if coarse.Xadj[0] != 0 {
		return fmt.Errorf("xadj[0] = %d", coarse.Xadj[0])
	}
	nnz := coarse.Xadj[coarse.NumV]
	if int64(len(coarse.Adj)) != nnz || int64(len(coarse.Wgt)) != nnz {
		return fmt.Errorf("adj/wgt lengths %d/%d, xadj says %d", len(coarse.Adj), len(coarse.Wgt), nnz)
	}
	seen := make(map[int32]bool)
	for u := int32(0); u < coarse.NumV; u++ {
		if coarse.Xadj[u+1] < coarse.Xadj[u] {
			return fmt.Errorf("xadj not monotone at %d", u)
		}
		adj, _ := coarse.Neighbors(u)
		for k := range seen {
			delete(seen, k)
		}
		for _, v := range adj {
			if v < 0 || v >= coarse.NumV {
				return fmt.Errorf("vertex %d: neighbor %d out of range", u, v)
			}
			if v == u {
				return fmt.Errorf("vertex %d: self-loop survived construction", u)
			}
			if seen[v] {
				return fmt.Errorf("vertex %d: duplicate column %d", u, v)
			}
			seen[v] = true
		}
	}

	// Canonical battery (sortedness, symmetry, positive weights) on a copy
	// so the caller's graph keeps the builder's raw output order.
	norm := &graph.Graph{
		NumV: coarse.NumV,
		Xadj: append([]int64(nil), coarse.Xadj...),
		Adj:  append([]int32(nil), coarse.Adj...),
		Wgt:  append([]int64(nil), coarse.Wgt...),
		VWgt: coarse.VWgt,
	}
	norm.SortAdjacency(1)
	if err := norm.Validate(); err != nil {
		return fmt.Errorf("canonicalized coarse graph invalid: %w", err)
	}

	var fineVW, coarseVW int64
	for u := int32(0); u < fine.NumV; u++ {
		fineVW += fine.VertexWeight(u)
	}
	for a := int32(0); a < coarse.NumV; a++ {
		coarseVW += coarse.VertexWeight(a)
	}
	if fineVW != coarseVW {
		return fmt.Errorf("vertex weight not conserved: fine %d, coarse %d", fineVW, coarseVW)
	}

	var fineEW, coarseEW int64
	for _, w := range fine.Wgt {
		fineEW += w
	}
	for _, w := range coarse.Wgt {
		coarseEW += w
	}
	if want := fineEW - 2*intraWeight(fine, m); coarseEW != want {
		return fmt.Errorf("edge weight not conserved: coarse %d, want fine %d - folded %d = %d",
			coarseEW, fineEW, fineEW-want, want)
	}
	return nil
}

// invariantInstances picks the gen-suite slice the harness sweeps: small
// enough that 12 mappers × all builders × the worker grid stays tractable
// under -race, while covering one regular and one densifying skewed
// instance.
func invariantInstances(t *testing.T) []gen.Instance {
	t.Helper()
	names := map[string]bool{"channel050": true, "mycielskian17": true}
	if testing.Short() {
		// The race-enabled CI pass runs -short; the dense mycielskian17
		// analog costs ~5× channel050 per build there.
		delete(names, "mycielskian17")
	}
	var out []gen.Instance
	for _, inst := range gen.DefaultSuite() {
		if names[inst.Name] {
			out = append(out, inst)
		}
	}
	if len(out) == 0 {
		t.Fatal("no invariant suite instances found")
	}
	return out
}

// TestCoarseInvariants sweeps every mapper × builder (including the auto
// policy) × worker count over the invariant suite and checks every
// produced coarse graph. This is the blast-radius test for the adaptive
// dispatch surface: any (mapper, builder, p) cell that violates CSR shape,
// conservation, or symmetry fails with its exact coordinates.
func TestCoarseInvariants(t *testing.T) {
	workers := []int{1, 4, 8}
	if testing.Short() {
		workers = []int{1, 4}
	}
	mappers := allMappers(t)
	builders := allBuilders(t)
	for _, inst := range invariantInstances(t) {
		g := inst.Graph
		g.MaterializeVWgt()
		for _, mapper := range mappers {
			m, err := mapper.Map(g, 42, 2)
			if err != nil {
				t.Fatalf("%s/%s: %v", inst.Name, mapper.Name(), err)
			}
			if err := m.Validate(g.N()); err != nil {
				t.Fatalf("%s/%s: %v", inst.Name, mapper.Name(), err)
			}
			for _, b := range builders {
				for _, p := range workers {
					t.Run(fmt.Sprintf("%s/%s/%s/p%d", inst.Name, mapper.Name(), b.Name(), p), func(t *testing.T) {
						cg, err := b.Build(g, m, p)
						if err != nil {
							t.Fatal(err)
						}
						CheckCoarseInvariants(t, g, m, cg)
					})
				}
			}
		}
	}
}

// TestCoarseInvariantsMultilevel runs the auto policy through full
// hierarchies and checks the invariants at every level, so decisions made
// on already-coarsened (denser, skewed-shifted) graphs are covered too —
// exactly where the policy switches builders mid-hierarchy.
func TestCoarseInvariantsMultilevel(t *testing.T) {
	for _, inst := range invariantInstances(t) {
		g := inst.Graph
		g.MaterializeVWgt()
		c := &Coarsener{Mapper: HEC{}, Builder: &AutoConstruct{}, Seed: 7, Workers: 4}
		h, err := c.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		for i := range h.Maps {
			m := &Mapping{M: h.Maps[i], NC: h.Graphs[i+1].NumV}
			CheckCoarseInvariants(t, h.Graphs[i], m, h.Graphs[i+1])
			if got := h.Stats[i].Builder; got == "" || got == "auto" {
				t.Errorf("%s level %d: LevelStats.Builder = %q, want a dispatched builder name", inst.Name, i, got)
			}
			if h.Stats[i].BuildReason == "" {
				t.Errorf("%s level %d: LevelStats.BuildReason empty", inst.Name, i)
			}
		}
	}
}
