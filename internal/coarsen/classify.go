package coarsen

import (
	"mlcg/internal/graph"
	"mlcg/internal/par"
)

// EdgeClass labels a heavy edge <u, H[u]> by its role in the sequential
// HEC execution (Fig. 2 of the paper).
type EdgeClass int8

const (
	// CreateEdge maps both endpoints to a freshly created coarse vertex.
	CreateEdge EdgeClass = iota
	// InheritEdge maps u into the aggregate its heavy neighbor already
	// belongs to.
	InheritEdge
	// SkipEdge is ignored because u was already mapped when visited.
	SkipEdge
)

// String implements fmt.Stringer.
func (c EdgeClass) String() string {
	switch c {
	case CreateEdge:
		return "create"
	case InheritEdge:
		return "inherit"
	case SkipEdge:
		return "skip"
	}
	return "unknown"
}

// Classification is the result of replaying sequential HEC over the heavy
// edge set.
type Classification struct {
	// Class[u] labels the heavy edge <u, H[u]>.
	Class []EdgeClass
	// Heavy[u] is the heavy neighbor H[u] (== u for isolated vertices).
	Heavy []int32
	// Counts per class, indexed by EdgeClass.
	Counts [3]int64
	// NC is the number of coarse vertices the replay produced; it always
	// equals Counts[CreateEdge].
	NC int32
}

// ClassifyHeavyEdges replays the sequential HEC algorithm (Algorithm 3)
// over the heavy edge set of g and labels every edge as create, inherit,
// or skip (Fig. 2, left). The heavy-neighbor digraph itself (Fig. 2,
// right) is the returned Heavy array: every vertex has out-degree one, so
// it forms a pseudoforest.
func ClassifyHeavyEdges(g *graph.Graph, seed uint64) *Classification {
	n := g.N()
	perm := par.RandPerm(n, seed, 1)
	pos := par.InversePerm(perm, 1)
	hv := heavyNeighbors(g, pos, 1)

	m := make([]int32, n)
	for i := range m {
		m[i] = unset
	}
	cls := &Classification{
		Class: make([]EdgeClass, n),
		Heavy: hv,
	}
	var nc int32
	for _, u := range perm {
		v := hv[u]
		if m[u] != unset {
			cls.Class[u] = SkipEdge
			cls.Counts[SkipEdge]++
			continue
		}
		if v == u { // isolated: counts as create of a singleton
			m[u] = nc
			nc++
			cls.Class[u] = CreateEdge
			cls.Counts[CreateEdge]++
			continue
		}
		if m[v] == unset {
			m[v] = nc
			nc++
			m[u] = m[v]
			cls.Class[u] = CreateEdge
			cls.Counts[CreateEdge]++
		} else {
			m[u] = m[v]
			cls.Class[u] = InheritEdge
			cls.Counts[InheritEdge]++
		}
	}
	cls.NC = nc
	return cls
}
