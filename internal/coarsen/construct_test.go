package coarsen

import (
	"testing"
	"testing/quick"

	"mlcg/internal/graph"
	"mlcg/internal/par"
)

func allBuilders(t *testing.T) []Builder {
	t.Helper()
	var out []Builder
	for _, name := range BuilderNames() {
		b, err := BuilderByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// intraWeight sums the weight of fine edges whose endpoints share an
// aggregate (counting each undirected edge once).
func intraWeight(g *graph.Graph, m *Mapping) int64 {
	var w int64
	for u := int32(0); u < g.NumV; u++ {
		adj, wgt := g.Neighbors(u)
		for k, v := range adj {
			if u < v && m.M[u] == m.M[v] {
				w += wgt[k]
			}
		}
	}
	return w
}

func TestBuildersAgreeAndConserve(t *testing.T) {
	builders := allBuilders(t)
	mappers := allMappers(t)
	for gname, g := range testGraphs() {
		g.MaterializeVWgt()
		for _, mapper := range mappers {
			m, err := mapper.Map(g, 77, 2)
			if err != nil {
				t.Fatal(err)
			}
			var ref *graph.Graph
			for _, b := range builders {
				cg, err := b.Build(g, m, 2)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", gname, mapper.Name(), b.Name(), err)
				}
				cg.SortAdjacency(1)
				if err := cg.Validate(); err != nil {
					t.Fatalf("%s/%s/%s: invalid coarse graph: %v", gname, mapper.Name(), b.Name(), err)
				}
				if err := checkCoarse(g, cg, m); err != nil {
					t.Fatalf("%s/%s/%s: %v", gname, mapper.Name(), b.Name(), err)
				}
				// Edge weight conservation: coarse total = fine total - intra.
				want := g.TotalEdgeWeight() - intraWeight(g, m)
				if got := cg.TotalEdgeWeight(); got != want {
					t.Fatalf("%s/%s/%s: edge weight %d, want %d", gname, mapper.Name(), b.Name(), got, want)
				}
				if ref == nil {
					ref = cg
				} else if !graph.Equal(ref, cg) {
					t.Fatalf("%s/%s: builder %s disagrees with %s", gname, mapper.Name(), b.Name(), builders[0].Name())
				}
			}
		}
	}
}

func TestBuildSortOneSidedMatchesBothSided(t *testing.T) {
	// The degree-based optimization must not change the output graph.
	for gname, g := range testGraphs() {
		m, err := HEC{}.Map(g, 5, 2)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := BuildSort{SkewThreshold: -1}.Build(g, m, 2)
		if err != nil {
			t.Fatal(err)
		}
		forced, err := BuildSort{ForceOneSided: true}.Build(g, m, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.Equal(plain, forced) {
			t.Errorf("%s: one-sided sort output differs from both-sided", gname)
		}
		forcedHash, err := BuildHash{ForceOneSided: true}.Build(g, m, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.Equal(plain, forcedHash) {
			t.Errorf("%s: one-sided hash output differs from both-sided", gname)
		}
		// The fine-side pre-dedup optimization must also be invisible in
		// the output, in both side modes.
		pre, err := BuildSort{SkewThreshold: -1, PreDedup: true}.Build(g, m, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.Equal(plain, pre) {
			t.Errorf("%s: pre-dedup (both-sided) output differs", gname)
		}
		preOne, err := BuildSort{ForceOneSided: true, PreDedup: true}.Build(g, m, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.Equal(plain, preOne) {
			t.Errorf("%s: pre-dedup (one-sided) output differs", gname)
		}
	}
}

func TestBuildAggregatesVertexWeights(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	})
	g.MaterializeVWgt()
	g.VWgt = []int64{1, 2, 3, 4}
	m := &Mapping{M: []int32{0, 0, 1, 1}, NC: 2}
	for _, b := range allBuilders(t) {
		cg, err := b.Build(g, m, 1)
		if err != nil {
			t.Fatal(err)
		}
		if cg.VWgt[0] != 3 || cg.VWgt[1] != 7 {
			t.Errorf("%s: VWgt = %v, want [3 7]", b.Name(), cg.VWgt)
		}
		if w, ok := cg.EdgeWeight(0, 1); !ok || w != 1 {
			t.Errorf("%s: coarse edge weight %d,%v", b.Name(), w, ok)
		}
	}
}

func TestBuildMergesParallelCoarseEdges(t *testing.T) {
	// K4 mapped to 2 aggregates: the four cross edges merge into one
	// coarse edge with summed weight.
	var e []graph.Edge
	w := int64(1)
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			e = append(e, graph.Edge{U: i, V: j, W: w})
			w++
		}
	}
	g := graph.MustFromEdges(4, e)
	m := &Mapping{M: []int32{0, 0, 1, 1}, NC: 2}
	// Cross edges: (0,2)=2, (0,3)=3, (1,2)=4, (1,3)=5 => 14.
	for _, b := range allBuilders(t) {
		cg, err := b.Build(g, m, 1)
		if err != nil {
			t.Fatal(err)
		}
		if cg.M() != 1 {
			t.Errorf("%s: coarse m = %d, want 1", b.Name(), cg.M())
		}
		if got, _ := cg.EdgeWeight(0, 1); got != 14 {
			t.Errorf("%s: merged weight = %d, want 14", b.Name(), got)
		}
	}
}

func TestBuildIdentityMapping(t *testing.T) {
	// The identity mapping must reproduce the input graph exactly.
	g := testGraphs()["rand200"]
	n := g.N()
	m := &Mapping{M: make([]int32, n), NC: int32(n)}
	for i := range m.M {
		m.M[i] = int32(i)
	}
	for _, b := range allBuilders(t) {
		cg, err := b.Build(g, m, 3)
		if err != nil {
			t.Fatal(err)
		}
		cg.SortAdjacency(1)
		want := g.Clone()
		want.MaterializeVWgt()
		if !graph.Equal(want, cg) {
			t.Errorf("%s: identity mapping changed the graph", b.Name())
		}
	}
}

func TestBuildAllToOneMapping(t *testing.T) {
	// Mapping everything to one aggregate yields the 1-vertex empty graph.
	g := testGraphs()["grid8x9"]
	m := &Mapping{M: make([]int32, g.N()), NC: 1}
	for _, b := range allBuilders(t) {
		cg, err := b.Build(g, m, 2)
		if err != nil {
			t.Fatal(err)
		}
		if cg.N() != 1 || cg.M() != 0 {
			t.Errorf("%s: got n=%d m=%d, want 1,0", b.Name(), cg.N(), cg.M())
		}
		if cg.VWgt[0] != int64(g.N()) {
			t.Errorf("%s: vwgt = %d, want %d", b.Name(), cg.VWgt[0], g.N())
		}
	}
}

func TestBuildRejectsInvalidMapping(t *testing.T) {
	g := testGraphs()["triangle"]
	bad := &Mapping{M: []int32{0, 5, 0}, NC: 2}
	for _, b := range allBuilders(t) {
		if _, err := b.Build(g, bad, 1); err == nil {
			t.Errorf("%s accepted an invalid mapping", b.Name())
		}
	}
}

func TestQuickBuildersEquivalent(t *testing.T) {
	builders := allBuilders(t)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 4
		rng := par.NewRNG(seed)
		var e []graph.Edge
		for i := 0; i < n-1; i++ {
			e = append(e, graph.Edge{U: int32(i), V: int32(i + 1), W: int64(rng.Intn(7) + 1)})
		}
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				e = append(e, graph.Edge{U: int32(u), V: int32(v), W: int64(rng.Intn(7) + 1)})
			}
		}
		g := graph.MustFromEdges(n, e)
		// Random (not algorithmic) mapping with nc aggregates, made
		// compact by construction: assign each vertex rng.Intn(nc), then
		// compact unused ids.
		raw := make([]int32, n)
		k := rng.Intn(n-1) + 1
		for i := range raw {
			raw[i] = int32(rng.Intn(k))
		}
		remap := make([]int32, k)
		for i := range remap {
			remap[i] = -1
		}
		var nc int32
		for _, a := range raw {
			if remap[a] == -1 {
				remap[a] = nc
				nc++
			}
		}
		m := &Mapping{M: make([]int32, n), NC: nc}
		for i, a := range raw {
			m.M[i] = remap[a]
		}
		var ref *graph.Graph
		for _, b := range builders {
			cg, err := b.Build(g, m, 2)
			if err != nil {
				return false
			}
			cg.SortAdjacency(1)
			if cg.Validate() != nil {
				return false
			}
			if ref == nil {
				ref = cg
			} else if !graph.Equal(ref, cg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWeightTable(t *testing.T) {
	wt := newWeightTable(4)
	wt.reset(3)
	wt.add(7, 2)
	wt.add(9, 3)
	wt.add(7, 5)
	got := map[int32]int64{}
	for s := 0; s < wt.cap; s++ {
		if wt.occupied(s) {
			got[wt.keys[s]] = wt.vals[s]
		}
	}
	if got[7] != 7 || got[9] != 3 || len(got) != 2 {
		t.Errorf("weightTable contents = %v", got)
	}
	// Epoch reset must hide all previous entries without touching slots.
	wt.reset(3)
	for s := 0; s < wt.cap; s++ {
		if wt.occupied(s) {
			t.Fatalf("slot %d still occupied after reset", s)
		}
	}
	// The logical capacity is a pure function of the segment size, so the
	// slot layout is the same no matter what earlier segments used it for.
	if wt.cap != 16 {
		t.Errorf("reset(3) cap = %d, want 16", wt.cap)
	}
	// Force growth via reset with a large segment.
	wt.reset(1000)
	if wt.cap < 2000 {
		t.Errorf("cap = %d after big reset", wt.cap)
	}
}
