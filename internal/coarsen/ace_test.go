package coarsen

import (
	"math"
	"testing"
)

func TestACESelectionIsDominating(t *testing.T) {
	for gname, g := range testGraphs() {
		res, err := ACE{}.Coarsen(g, 5, 2)
		if err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		// Every fine vertex is coarse or adjacent to a coarse vertex.
		for u := int32(0); u < g.NumV; u++ {
			if res.IsCoarse[u] {
				continue
			}
			found := false
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if res.IsCoarse[v] {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: vertex %d not dominated", gname, u)
			}
		}
		// No two coarse representatives adjacent (independent set): the
		// greedy selection marks all neighbors as covered.
		for u := int32(0); u < g.NumV; u++ {
			if !res.IsCoarse[u] {
				continue
			}
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if res.IsCoarse[v] {
					t.Errorf("%s: adjacent representatives %d,%d", gname, u, v)
				}
			}
		}
	}
}

func TestACEInterpolationIsStochastic(t *testing.T) {
	g := testGraphs()["grid8x9"]
	res, err := ACE{}.Coarsen(g, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Column sums of P (= row sums of Pᵀ) are 1: each fine vertex's
	// interpolation weights form a convex combination.
	colSum := make([]float64, g.N())
	for i := int32(0); i < res.P.Rows; i++ {
		cs, vs := res.P.Row(i)
		for k, c := range cs {
			if vs[k] < 0 || vs[k] > 1+1e-12 {
				t.Fatalf("entry P[%d][%d]=%v out of [0,1]", i, c, vs[k])
			}
			colSum[c] += vs[k]
		}
	}
	for u, s := range colSum {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("column %d sums to %v, want 1", u, s)
		}
	}
}

func TestACECoarseGraphValidAndConserving(t *testing.T) {
	for gname, g := range testGraphs() {
		if g.N() < 4 {
			continue
		}
		res, err := ACE{}.Coarsen(g, 3, 2)
		if err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		if err := res.Coarse.Validate(); err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		if res.Coarse.N() >= g.N() {
			t.Errorf("%s: no reduction (%d -> %d)", gname, g.N(), res.Coarse.N())
		}
		if got, want := res.Coarse.TotalVertexWeight(), g.TotalVertexWeight(); got != want {
			t.Errorf("%s: vertex weight %d, want %d", gname, got, want)
		}
	}
}

func TestACEDensifies(t *testing.T) {
	// The paper's observation: ACE coarse graphs get denser (average
	// degree grows) faster than strict aggregation. Compare one level of
	// ACE against one level of HEC on a grid.
	g := testGraphs()["grid8x9"]
	res, err := ACE{}.Coarsen(g, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := HEC{}.Map(g, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	hecCoarse, err := BuildSort{}.Build(g, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coarse.AvgDegree() <= g.AvgDegree() {
		t.Errorf("ACE coarse avg degree %.2f did not grow from %.2f",
			res.Coarse.AvgDegree(), g.AvgDegree())
	}
	// Normalize by reduction: ACE density per vertex should exceed HEC's.
	aceDensity := res.Coarse.AvgDegree()
	hecDensity := hecCoarse.AvgDegree()
	if aceDensity < hecDensity*0.8 {
		t.Errorf("expected ACE (%.2f) to densify at least comparably to HEC (%.2f)",
			aceDensity, hecDensity)
	}
}

func TestACEMinFracSparsifies(t *testing.T) {
	g := testGraphs()["clique12"]
	full, err := ACE{}.Coarsen(g, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := ACE{MinFrac: 0.4}.Coarsen(g, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.P.NNZ() > full.P.NNZ() {
		t.Errorf("MinFrac increased interpolation nnz: %d > %d", sparse.P.NNZ(), full.P.NNZ())
	}
}

func TestACEInterpolateConstant(t *testing.T) {
	// Pᵀ is row-stochastic, so interpolating a constant vector gives the
	// same constant — the property that makes ACE projections preserve
	// the Laplacian null space.
	g := testGraphs()["rand200"]
	res, err := ACE{}.Coarsen(g, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	xc := make([]float64, res.Coarse.N())
	for i := range xc {
		xc[i] = 3.5
	}
	xf := res.Interpolate(xc)
	for u, v := range xf {
		if math.Abs(v-3.5) > 1e-9 {
			t.Fatalf("interpolated constant broke at %d: %v", u, v)
		}
	}
}

func TestACEEmptyGraph(t *testing.T) {
	g := testGraphs()["pair"]
	if _, err := (ACE{}).Coarsen(g, 1, 1); err != nil {
		t.Fatal(err)
	}
}
