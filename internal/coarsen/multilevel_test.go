package coarsen

import (
	"testing"
	"time"

	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// bigTestGraph builds a connected random graph large enough for several
// coarsening levels.
func bigTestGraph(n int, seed uint64) *graph.Graph {
	rng := par.NewRNG(seed)
	var e []graph.Edge
	for i := 0; i < n-1; i++ {
		e = append(e, graph.Edge{U: int32(i), V: int32(i + 1), W: int64(rng.Intn(5) + 1)})
	}
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			e = append(e, graph.Edge{U: int32(u), V: int32(v), W: int64(rng.Intn(5) + 1)})
		}
	}
	return graph.MustFromEdges(n, e)
}

func TestCoarsenerRunsToCutoff(t *testing.T) {
	g := bigTestGraph(5000, 3)
	// Discard disabled so the cutoff itself is observable; the discard
	// rule has its own test.
	c := &Coarsener{Mapper: HEC{}, Builder: BuildSort{}, Seed: 7, Workers: 4, DiscardBelow: -1}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() < 2 {
		t.Fatalf("only %d levels", h.Levels())
	}
	if h.Coarsest().N() > 50 {
		t.Errorf("coarsest has %d vertices, cutoff is 50", h.Coarsest().N())
	}
	// Sizes strictly decrease.
	for i := 1; i < len(h.Graphs); i++ {
		if h.Graphs[i].NumV >= h.Graphs[i-1].NumV {
			t.Errorf("level %d did not shrink: %d -> %d", i, h.Graphs[i-1].NumV, h.Graphs[i].NumV)
		}
	}
	// Vertex weight is conserved down the whole hierarchy.
	want := int64(g.N())
	for i, cg := range h.Graphs {
		if cg.TotalVertexWeight() != want {
			t.Errorf("level %d: total vertex weight %d, want %d", i, cg.TotalVertexWeight(), want)
		}
	}
	// Every coarse graph is structurally valid and connected (coarsening
	// preserves connectivity).
	for i, cg := range h.Graphs[1:] {
		if err := cg.Validate(); err != nil {
			t.Errorf("level %d: %v", i+1, err)
		}
		if !cg.IsConnected() {
			t.Errorf("level %d: disconnected coarse graph", i+1)
		}
	}
	if h.CoarseningRatio() <= 1 {
		t.Errorf("coarsening ratio %v", h.CoarseningRatio())
	}
	if h.TotalTime() <= 0 || len(h.Stats) != h.Levels() {
		t.Errorf("stats missing: total=%v levels=%d stats=%d", h.TotalTime(), h.Levels(), len(h.Stats))
	}
}

func TestCoarsenerAllMappersAndBuilders(t *testing.T) {
	g := bigTestGraph(1200, 9)
	for _, mname := range MapperNames() {
		mapper, _ := MapperByName(mname)
		c := &Coarsener{Mapper: mapper, Builder: BuildSort{}, Seed: 1, Workers: 2, MaxLevels: 60}
		h, err := c.Run(g)
		if err != nil {
			t.Fatalf("%s: %v", mname, err)
		}
		if h.Levels() == 0 {
			t.Errorf("%s: no coarsening happened", mname)
		}
		for i, cg := range h.Graphs[1:] {
			if err := cg.Validate(); err != nil {
				t.Fatalf("%s level %d: %v", mname, i+1, err)
			}
		}
	}
	for _, bname := range BuilderNames() {
		builder, _ := BuilderByName(bname)
		c := &Coarsener{Mapper: HEC{}, Builder: builder, Seed: 2, Workers: 2}
		h, err := c.Run(g)
		if err != nil {
			t.Fatalf("%s: %v", bname, err)
		}
		if h.Coarsest().N() > 50 {
			t.Errorf("%s: stopped at %d vertices", bname, h.Coarsest().N())
		}
	}
}

func TestCoarsenerMatchingNeedsMoreLevels(t *testing.T) {
	// Matching-based coarsening (ratio <= 2) must need at least as many
	// levels as HEC (Table IV shape).
	g := bigTestGraph(4000, 11)
	run := func(m Mapper) int {
		c := &Coarsener{Mapper: m, Builder: BuildSort{}, Seed: 5, Workers: 2}
		h, err := c.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		return h.Levels()
	}
	lHEC := run(HEC{})
	lHEM := run(HEM{})
	if lHEM < lHEC {
		t.Errorf("HEM levels %d < HEC levels %d — matching cannot out-coarsen HEC", lHEM, lHEC)
	}
}

func TestProjectToFine(t *testing.T) {
	g := bigTestGraph(800, 13)
	c := &Coarsener{Mapper: HEC{}, Builder: BuildSort{}, Seed: 3, Workers: 2}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	// Assign each coarsest vertex its own label; the projection must equal
	// the composition of the mapping arrays.
	nc := h.Coarsest().N()
	labels := make([]int32, nc)
	for i := range labels {
		labels[i] = int32(i)
	}
	fine := h.ProjectToFine(labels)
	if len(fine) != g.N() {
		t.Fatalf("projection covers %d vertices, want %d", len(fine), g.N())
	}
	for u := 0; u < g.N(); u++ {
		want := int32(u)
		for _, m := range h.Maps {
			want = m[want]
		}
		if fine[u] != want {
			t.Fatalf("projection wrong at %d: %d != %d", u, fine[u], want)
		}
	}
}

func TestCoarsenerDiscardRule(t *testing.T) {
	// A star coarsens to 1 vertex in one HEC step; with the default rules
	// (cutoff 50, discard 10) the driver must discard that degenerate
	// level and keep the star itself.
	var e []graph.Edge
	for i := 1; i < 200; i++ {
		e = append(e, graph.Edge{U: 0, V: int32(i), W: 1})
	}
	g := graph.MustFromEdges(200, e)
	c := &Coarsener{Mapper: HEC{}, Builder: BuildSort{}, Seed: 1, Workers: 2}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Coarsest().N() < 10 && h.Coarsest() != g {
		t.Errorf("degenerate coarsest graph (%d vertices) not discarded", h.Coarsest().N())
	}
	// With the discard rule disabled the degenerate level is kept.
	c2 := &Coarsener{Mapper: HEC{}, Builder: BuildSort{}, Seed: 1, Workers: 2, DiscardBelow: -1}
	h2, err := c2.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Coarsest().N() >= 10 {
		t.Errorf("discard disabled but coarsest has %d vertices", h2.Coarsest().N())
	}
}

func TestCoarsenerMaxLevels(t *testing.T) {
	g := bigTestGraph(3000, 17)
	c := &Coarsener{Mapper: HEM{}, Builder: BuildSort{}, Seed: 1, Workers: 2, MaxLevels: 2}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 2 {
		t.Errorf("levels = %d, want exactly 2 (cap)", h.Levels())
	}
}

func TestCoarsenerHEC2StallStops(t *testing.T) {
	// Two vertices, one edge: HEC2 maps both to themselves (mutual pair,
	// no 2-cycle collapse) and must not loop forever.
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	c := &Coarsener{Mapper: HEC2{}, Builder: BuildSort{}, Seed: 1, Workers: 1, Cutoff: 1}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 0 {
		t.Errorf("stalled mapper should produce zero levels, got %d", h.Levels())
	}
}

func TestCoarsenerStallIsRecorded(t *testing.T) {
	// The stall break used to be silent; a stalled run must now be
	// distinguishable from one that reached the cutoff, with the failed
	// attempt's measurements preserved.
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	c := &Coarsener{Mapper: HEC2{}, Builder: BuildSort{}, Seed: 1, Workers: 1, Cutoff: 1}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Stalled {
		t.Fatal("stalled run not flagged")
	}
	st := h.StallStats
	if st == nil {
		t.Fatal("stalled run has no StallStats")
	}
	if st.N != 2 || st.NC < st.N {
		t.Errorf("stall stats n=%d nc=%d, want n=2 and nc >= n", st.N, st.NC)
	}
	// Stats must still pair with the built levels only.
	if len(h.Stats) != h.Levels() {
		t.Errorf("Stats length %d != levels %d", len(h.Stats), h.Levels())
	}

	// A run that reaches the cutoff is not stalled.
	g2 := bigTestGraph(500, 5)
	c2 := &Coarsener{Mapper: HEC{}, Builder: BuildSort{}, Seed: 1, Workers: 2}
	h2, err := c2.Run(g2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Stalled || h2.StallStats != nil {
		t.Error("cutoff run wrongly flagged as stalled")
	}
}

func TestTotalTimeIncludesStallTime(t *testing.T) {
	// Regression: TotalTime() used to sum Stats only, so a stalled
	// attempt's map/build time vanished from the Table II/III totals.
	h := &Hierarchy{
		Stats: []LevelStats{
			{MapTime: 10 * time.Millisecond, BuildTime: 5 * time.Millisecond},
			{MapTime: 4 * time.Millisecond, BuildTime: 1 * time.Millisecond},
		},
		Stalled:    true,
		StallStats: &LevelStats{MapTime: 7 * time.Millisecond, BuildTime: 3 * time.Millisecond},
	}
	if got, want := h.MapTime(), 21*time.Millisecond; got != want {
		t.Errorf("MapTime = %v, want %v", got, want)
	}
	if got, want := h.BuildTime(), 9*time.Millisecond; got != want {
		t.Errorf("BuildTime = %v, want %v", got, want)
	}
	if got, want := h.TotalTime(), 30*time.Millisecond; got != want {
		t.Errorf("TotalTime = %v, want %v", got, want)
	}

	// An end-to-end stalled run must report a positive total even with
	// zero built levels.
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	c := &Coarsener{Mapper: HEC2{}, Builder: BuildSort{}, Seed: 1, Workers: 1, Cutoff: 1}
	hr, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !hr.Stalled || hr.TotalTime() <= 0 {
		t.Errorf("stalled run: Stalled=%v TotalTime=%v, want stalled with positive total", hr.Stalled, hr.TotalTime())
	}
}

func TestRunRecordsLevelSpans(t *testing.T) {
	tr := obs.StartTrace("test")
	if tr == nil {
		t.Fatal("could not start trace")
	}
	defer tr.Stop()
	g := bigTestGraph(2000, 11)
	c := &Coarsener{Mapper: HEC{}, Builder: BuildHash{}, Seed: 3, Workers: 2}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() == 0 {
		t.Fatal("no levels built")
	}
	for i, st := range h.Stats {
		if st.Span == nil {
			t.Fatalf("level %d: no span recorded", i)
		}
		kids := st.Span.Children()
		if len(kids) < 2 {
			t.Fatalf("level %d: %d phase spans, want map+build", i, len(kids))
		}
		if got := kids[0].Name(); got != "map:hec" {
			t.Errorf("level %d: first phase %q, want map:hec", i, got)
		}
		if got := kids[1].Name(); got != "build:hash" {
			t.Errorf("level %d: second phase %q, want build:hash", i, got)
		}
		ctr := st.Counters()
		if ctr == nil {
			t.Fatalf("level %d: no counters", i)
		}
		if ctr["reservations"] == 0 {
			t.Errorf("level %d: no HEC reservations counted (got %v)", i, ctr)
		}
		if ctr["hash_probes"] == 0 {
			t.Errorf("level %d: no hash probes counted (got %v)", i, ctr)
		}
	}
	// Without a trace, the view methods must be nil-safe no-ops.
	tr.Stop()
	h2, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Stats[0].Span != nil || h2.Stats[0].Counters() != nil {
		t.Error("untraced run recorded spans")
	}
}

func TestCoarsenerWeightedInput(t *testing.T) {
	// Starting from an already-weighted graph (as if resuming mid-
	// hierarchy): weights and vertex weights must flow through intact.
	g := bigTestGraph(600, 21)
	g.MaterializeVWgt()
	rng := par.NewRNG(3)
	var totalVW int64
	for i := range g.VWgt {
		g.VWgt[i] = int64(rng.Intn(5) + 1)
		totalVW += g.VWgt[i]
	}
	c := &Coarsener{Mapper: HEC{}, Builder: BuildSort{}, Seed: 2, Workers: 2}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, cg := range h.Graphs {
		if cg.TotalVertexWeight() != totalVW {
			t.Errorf("level %d: vertex weight %d, want %d", i, cg.TotalVertexWeight(), totalVW)
		}
	}
}

func TestCoarsenerNeedsMapperAndBuilder(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := (&Coarsener{Mapper: HEC{}}).Run(g); err == nil {
		t.Error("missing builder accepted")
	}
	if _, err := (&Coarsener{Builder: BuildSort{}}).Run(g); err == nil {
		t.Error("missing mapper accepted")
	}
}

func TestClassifyHeavyEdges(t *testing.T) {
	g := bigTestGraph(500, 19)
	cls := ClassifyHeavyEdges(g, 23)
	if len(cls.Class) != g.N() || len(cls.Heavy) != g.N() {
		t.Fatal("classification arrays wrong length")
	}
	total := cls.Counts[CreateEdge] + cls.Counts[InheritEdge] + cls.Counts[SkipEdge]
	if total != int64(g.N()) {
		t.Errorf("class counts sum to %d, want %d", total, g.N())
	}
	// Every create edge allocates exactly one coarse vertex.
	if cls.Counts[CreateEdge] != int64(cls.NC) {
		t.Errorf("create edges %d != coarse vertices %d", cls.Counts[CreateEdge], cls.NC)
	}
	// The replay is a legitimate HEC execution: its nc is within the range
	// other HEC runs produce (loose sanity bound: at most n/2 + isolated).
	if cls.NC <= 0 || cls.NC > g.NumV/2+1 {
		t.Errorf("replay produced nc=%d on n=%d", cls.NC, g.NumV)
	}
	// Heavy array is a pseudoforest: out-degree one, H[u] is a neighbor.
	for u := int32(0); u < g.NumV; u++ {
		h := cls.Heavy[u]
		if h != u && !g.HasEdge(u, h) {
			t.Errorf("H[%d] = %d is not a neighbor", u, h)
		}
	}
	for _, c := range []EdgeClass{CreateEdge, InheritEdge, SkipEdge} {
		if c.String() == "unknown" {
			t.Errorf("class %d has no name", c)
		}
	}
	if EdgeClass(9).String() != "unknown" {
		t.Error("invalid class should stringify as unknown")
	}
}

func TestClassifyPaperExampleShape(t *testing.T) {
	// On any graph, create edges come in at most pairs-of-endpoints:
	// create+inherit = number of aggregates' member additions; skip edges
	// are vertices whose heavy edge was redundant. A star must classify
	// hub-or-first-leaf as create and the rest inherit/skip.
	var e []graph.Edge
	for i := 1; i < 10; i++ {
		e = append(e, graph.Edge{U: 0, V: int32(i), W: 1})
	}
	g := graph.MustFromEdges(10, e)
	cls := ClassifyHeavyEdges(g, 3)
	if cls.Counts[CreateEdge] != 1 {
		t.Errorf("star should have exactly 1 create edge, got %d", cls.Counts[CreateEdge])
	}
	if cls.Counts[InheritEdge]+cls.Counts[SkipEdge] != 9 {
		t.Errorf("star leaves should inherit or skip: %v", cls.Counts)
	}
}
