package coarsen

import (
	"bytes"
	"testing"

	"mlcg/internal/graph"
)

func TestHierarchyRoundTrip(t *testing.T) {
	g := bigTestGraph(1500, 5)
	c := &Coarsener{Mapper: HEC{}, Builder: BuildSort{}, Seed: 3, Workers: 2}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := legacyWriteHierarchy(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadHierarchy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(h2.Graphs) != len(h.Graphs) || len(h2.Maps) != len(h.Maps) {
		t.Fatalf("shape mismatch: %d/%d graphs, %d/%d maps",
			len(h2.Graphs), len(h.Graphs), len(h2.Maps), len(h.Maps))
	}
	for i := range h.Graphs {
		if !graph.Equal(h.Graphs[i], h2.Graphs[i]) {
			t.Errorf("level %d graph differs", i)
		}
	}
	for i := range h.Maps {
		for u := range h.Maps[i] {
			if h.Maps[i][u] != h2.Maps[i][u] {
				t.Fatalf("map %d differs at %d", i, u)
			}
		}
	}
	// The reloaded hierarchy is usable: projection works.
	labels := make([]int32, h2.Coarsest().N())
	for i := range labels {
		labels[i] = int32(i)
	}
	fine := h2.ProjectToFine(labels)
	if len(fine) != g.N() {
		t.Errorf("projection covers %d", len(fine))
	}
}

func TestReadHierarchyRejectsCorruption(t *testing.T) {
	g := bigTestGraph(300, 7)
	c := &Coarsener{Mapper: HEC{}, Builder: BuildSort{}, Seed: 1, Workers: 1}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := legacyWriteHierarchy(&buf, h); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	if _, err := ReadHierarchy(bytes.NewReader(valid[:8])); err == nil {
		t.Error("truncated header accepted")
	}
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xff
	if _, err := ReadHierarchy(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadHierarchy(bytes.NewReader(valid[:len(valid)/2])); err == nil {
		t.Error("truncated body accepted")
	}
}
