package coarsen

import (
	"sync/atomic"

	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// HEC3 is the alternate parallelization of HEC's second phase
// (Algorithm 5). The heavy-neighbor array H induces a directed
// pseudoforest (every vertex has out-degree one); coarse vertices are the
// targets of heavy edges. The phases: collapse mutual (2-cycle) heavy
// pairs, mark every remaining heavy-edge target as a coarse root,
// point every unmapped vertex at its target's root, then pointer-jump to a
// fixpoint. Requires very little fine-grained synchronization — only the
// root-marking CAS — at the cost of creating more coarse vertices than
// Algorithm 4 (every target becomes a root, so the coarsening is less
// aggressive and more levels are needed; the paper measures 1.26× more
// levels on average).
type HEC3 struct{}

// Name implements Mapper.
func (HEC3) Name() string { return "hec3" }

// Map implements Mapper.
func (HEC3) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	perm := par.RandPerm(n, seed, p)
	pos := par.InversePerm(perm, p)
	hv := heavyNeighbors(g, pos, p)
	m := hec3FromHeavy(g, hv, pos, p, nil)
	nc := canonicalize(m, pos, p)
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}

// hec3FromHeavy runs Algorithm 5 given the heavy-neighbor array. skip, if
// non-nil, marks vertices excluded from aggregation (used by GOSHHEC for
// high-degree vertices); excluded vertices become singleton roots unless
// some other vertex targets them. The returned slice maps each vertex to
// its aggregate's root vertex id (m[r] == r for roots).
func hec3FromHeavy(g *graph.Graph, hv, pos []int32, p int, skip []bool) []int32 {
	span := obs.StartKernel("hec3:pseudoforest")
	defer span.Done()
	n := g.N()
	m := make([]int32, n)
	par.Fill(m, unset, p)

	// Phase 1 (lines 5-8): collapse mutual heavy pairs. The lower-position
	// endpoint becomes the root of the pair.
	par.ForEach(n, p, func(i int) {
		u := int32(i)
		if skip != nil && skip[u] {
			return
		}
		v := hv[u]
		if v == u || (skip != nil && skip[v]) {
			return
		}
		if hv[v] == u {
			r := u
			if pos[v] < pos[u] {
				r = v
			}
			m[u] = r
		}
	})

	// Phase 2 (lines 9-12): mark heavy-edge targets as roots. The
	// historical version CAS-marked targets but skipped a proposal when the
	// proposer had itself been marked a root earlier in the same loop, so
	// the root set depended on thread interleaving. Deciding every proposal
	// against the frozen phase-1 state (a flag array, as in HEC2) makes the
	// root set a pure function of (graph, seed). The flag store is atomic
	// only to license the concurrent same-value writes.
	x := make([]int32, n)
	par.ForEach(n, p, func(i int) {
		u := int32(i)
		if skip != nil && skip[u] {
			return
		}
		if m[u] != unset {
			return // collapsed mutual pair
		}
		v := hv[u]
		if v == u || (skip != nil && skip[v]) {
			return
		}
		atomic.StoreInt32(&x[v], 1)
	})
	par.ForEach(n, p, func(i int) {
		u := int32(i)
		if m[u] == unset && x[u] == 1 {
			m[u] = u
		}
	})

	// Phase 3 (lines 13-16): unmapped vertices adopt their target's id.
	// Every proposed target was finalized above (pair member or fresh
	// root), so this loop reads only finished values. Vertices excluded
	// from aggregation become singleton roots.
	par.ForEach(n, p, func(i int) {
		u := int32(i)
		if m[u] != unset {
			return
		}
		v := hv[u]
		if v == u || (skip != nil && (skip[u] || skip[v])) {
			m[u] = u
			return
		}
		m[u] = m[v]
	})

	// Phase 4 (lines 17-21): pointer jumping to the aggregate root.
	par.ForEach(n, p, func(i int) {
		u := int32(i)
		r := atomic.LoadInt32(&m[u])
		for {
			next := atomic.LoadInt32(&m[r])
			if next == r {
				break
			}
			r = atomic.LoadInt32(&m[next])
		}
		atomic.StoreInt32(&m[u], r)
	})
	return m
}

// HEC2 is the intermediate parallelization between Algorithms 4 and 5
// (tech-report Algorithm 9, reconstructed): the decoupled root-marking of
// HEC3 driven through two auxiliary arrays that make coarse-id assignment
// race-free, but without HEC3's 2-cycle collapse loop. Mutual heavy pairs
// therefore both become roots instead of merging, which is why the paper
// measures HEC2 needing 1.56× more coarsening levels than HEC.
type HEC2 struct{}

// Name implements Mapper.
func (HEC2) Name() string { return "hec2" }

// Map implements Mapper.
func (HEC2) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	perm := par.RandPerm(n, seed, p)
	pos := par.InversePerm(perm, p)
	hv := heavyNeighbors(g, pos, p)

	// X[v] = 1 when some vertex proposes to v (v must become a root);
	// Y assigns root flags without racing on M.
	span := obs.StartKernel("hec2:roots")
	x := make([]int32, n)
	par.ForEach(n, p, func(i int) {
		u := int32(i)
		v := hv[u]
		if v != u {
			atomic.StoreInt32(&x[v], 1)
		}
	})
	m := make([]int32, n)
	par.ForEach(n, p, func(i int) {
		u := int32(i)
		if x[u] == 1 || hv[u] == u {
			m[u] = u // root: targeted by someone, or isolated
		} else {
			m[u] = unset
		}
	})
	par.ForEach(n, p, func(i int) {
		u := int32(i)
		if m[u] == unset {
			m[u] = hv[u] // target is a root by construction
		}
	})
	span.Done()
	nc := canonicalize(m, pos, p)
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}
