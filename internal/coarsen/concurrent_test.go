package coarsen_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mlcg/internal/coarsen"
	"mlcg/internal/gen"
	"mlcg/internal/graph"
	"mlcg/internal/obs"
)

// csrBytes serializes a graph's CSR for byte-identity comparison.
func csrBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

// TestConcurrentTracedRuns is the regression test for the trace-scoping
// bug the serving path exposed: with process-global ambient/activeTrace
// state, two concurrent traced Coarsener.Runs clobbered each other's span
// trees. Now each run holds its own goroutine-scoped trace; this runs two
// traced coarsenings concurrently (under -race in CI) and asserts each
// trace is laminar, self-contained, and shaped like its own run.
func TestConcurrentTracedRuns(t *testing.T) {
	graphs := []*graph.Graph{
		gen.RMAT(11, 8, 7),
		gen.Grid2D(96, 96),
	}
	type out struct {
		tr *obs.Trace
		h  *coarsen.Hierarchy
	}
	outs := make([]out, len(graphs))
	errs := make(chan error, len(graphs))
	var wg sync.WaitGroup
	for i, g := range graphs {
		wg.Add(1)
		go func(i int, g *graph.Graph) {
			defer wg.Done()
			tr := obs.NewTrace(fmt.Sprintf("run-%d", i))
			ctx := obs.NewContext(context.Background(), tr)
			c := coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: coarsen.BuildSort{}, Seed: uint64(i + 1), Workers: 2}
			h, err := c.RunCtx(ctx, g)
			tr.Stop()
			if err != nil {
				errs <- err
				return
			}
			outs[i] = out{tr, h}
		}(i, g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i, o := range outs {
		// Laminar: the exported span tree must pass the nesting checker
		// including the coarsening-shape requirements.
		var buf bytes.Buffer
		if err := o.tr.WriteTrace(&buf); err != nil {
			t.Fatalf("run %d: WriteTrace: %v", i, err)
		}
		if err := obs.CheckTrace(bytes.NewReader(buf.Bytes()), obs.CheckOptions{RequireCoarsen: true}); err != nil {
			t.Errorf("run %d: trace not laminar/complete: %v", i, err)
		}
		// Self-contained: exactly one level span per hierarchy level — a
		// clobbered ambient stack leaks the sibling run's spans into this
		// tree (or loses this run's own).
		levels := 0
		var walk func(s *obs.Span)
		walk = func(s *obs.Span) {
			if s.Trace() != o.tr {
				t.Errorf("run %d: span %q belongs to a different trace", i, s.Name())
			}
			if strings.HasPrefix(s.Name(), "level ") {
				levels++
			}
			for _, c := range s.Children() {
				walk(c)
			}
		}
		walk(o.tr.Root)
		// One span per kept level, plus at most one for a final attempt that
		// stalled or was discarded by the too-aggressive guard. A clobbered
		// ambient stack instead leaks the sibling run's spans in wholesale.
		if levels < o.h.Levels() || levels > o.h.Levels()+1 {
			t.Errorf("run %d: %d level spans for %d hierarchy levels", i, levels, o.h.Levels())
		}
		// The per-level spans recorded in LevelStats must point into this
		// run's own trace.
		for li, st := range o.h.Stats {
			if st.Span == nil || st.Span.Trace() != o.tr {
				t.Errorf("run %d: level %d Span missing or foreign", i, li)
			}
		}
	}
}

// TestWorkspaceConcurrentMisuse pins the guard: two Runs handed the same
// Workspace must not both proceed — the loser gets a descriptive error
// instead of silently corrupted scratch.
func TestWorkspaceConcurrentMisuse(t *testing.T) {
	g := gen.RMAT(12, 8, 3)
	ws := coarsen.NewWorkspace()
	const runs = 4
	var ok, failed int
	var mu sync.Mutex
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			c := coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: coarsen.BuildSort{}, Seed: 9, Workers: 2, Workspace: ws}
			_, err := c.Run(g)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				ok++
			} else if strings.Contains(err.Error(), "already in use") {
				failed++
			} else {
				t.Errorf("run %d: unexpected error: %v", i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if ok < 1 {
		t.Fatalf("no run acquired the workspace (ok=%d failed=%d)", ok, failed)
	}
	if ok+failed != runs {
		t.Fatalf("accounting: ok=%d failed=%d, want total %d", ok, failed, runs)
	}
	// Sequential reuse of the same workspace stays allowed.
	c := coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: coarsen.BuildSort{}, Seed: 9, Workers: 2, Workspace: ws}
	if _, err := c.Run(g); err != nil {
		t.Fatalf("sequential reuse after release failed: %v", err)
	}
	if ws.InUse() {
		t.Fatal("workspace still marked in use after Run returned")
	}
}

// TestWorkspacePoolConcurrentIdentical checks the server's build substrate
// end to end: many concurrent Runs drawing scratch from one WorkspacePool
// produce hierarchies byte-identical to the serial single-workspace runs.
func TestWorkspacePoolConcurrentIdentical(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":  gen.RMAT(11, 8, 5),
		"grid":  gen.Grid2D(80, 80),
		"chain": gen.ChainLike(4000, 11),
	}
	// Builders are constructed per Run (the auto policy is stateful per
	// hierarchy, so concurrent Runs must not share one instance).
	combos := []struct {
		mapper  coarsen.Mapper
		builder func() coarsen.Builder
	}{
		{coarsen.HEC{}, func() coarsen.Builder { return coarsen.BuildSort{} }},
		{coarsen.MIS2Fast{}, func() coarsen.Builder { return coarsen.BuildSort{} }},
		{coarsen.HEC{}, func() coarsen.Builder { return &coarsen.AutoConstruct{} }},
	}

	run := func(g *graph.Graph, mapper coarsen.Mapper, builder coarsen.Builder, ws *coarsen.Workspace) (*coarsen.Hierarchy, error) {
		c := coarsen.Coarsener{Mapper: mapper, Builder: builder, Seed: 42, Workers: 4, Workspace: ws}
		return c.Run(g)
	}

	// Serial reference, each with a fresh private workspace.
	type key struct{ gname, mname string }
	want := map[key][][]byte{}
	for gname, g := range graphs {
		for _, cb := range combos {
			h, err := run(g, cb.mapper, cb.builder(), coarsen.NewWorkspace())
			if err != nil {
				t.Fatalf("serial %s/%s: %v", gname, cb.mapper.Name(), err)
			}
			var lv [][]byte
			for _, cg := range h.Graphs {
				lv = append(lv, csrBytes(t, cg))
			}
			want[key{gname, cb.mapper.Name() + "/" + cb.builder().Name()}] = lv
		}
	}

	var pool coarsen.WorkspacePool
	var wg sync.WaitGroup
	errs := make(chan error, len(graphs)*len(combos)*3)
	for rep := 0; rep < 3; rep++ {
		for gname, g := range graphs {
			for _, cb := range combos {
				wg.Add(1)
				go func(gname string, g *graph.Graph, mapper coarsen.Mapper, builder coarsen.Builder) {
					defer wg.Done()
					ws := pool.Get()
					defer pool.Put(ws)
					h, err := run(g, mapper, builder, ws)
					if err != nil {
						errs <- fmt.Errorf("pooled %s/%s: %v", gname, mapper.Name(), err)
						return
					}
					ref := want[key{gname, mapper.Name() + "/" + builder.Name()}]
					if len(h.Graphs) != len(ref) {
						errs <- fmt.Errorf("pooled %s/%s: %d levels, want %d", gname, mapper.Name(), len(h.Graphs)-1, len(ref)-1)
						return
					}
					for li, cg := range h.Graphs {
						var buf bytes.Buffer
						if err := cg.WriteBinary(&buf); err != nil {
							errs <- err
							return
						}
						if !bytes.Equal(buf.Bytes(), ref[li]) {
							errs <- fmt.Errorf("pooled %s/%s level %d: CSR differs from serial build", gname, mapper.Name(), li)
							return
						}
					}
				}(gname, g, cb.mapper, cb.builder())
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRunCtxCancellation checks the level-boundary cancellation contract:
// an already-canceled context stops the run before the first level with a
// wrapped context error.
func TestRunCtxCancellation(t *testing.T) {
	g := gen.Grid2D(64, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: coarsen.BuildSort{}, Seed: 1}
	if _, err := c.RunCtx(ctx, g); err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("RunCtx on canceled ctx: err = %v, want cancellation", err)
	}
	// A deadline that expires mid-run stops at a level boundary rather
	// than running to completion (best-effort: on very fast machines the
	// run may legitimately finish first, so only the error shape is pinned
	// when one occurs).
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	if _, err := c.RunCtx(ctx2, g); err != nil && !strings.Contains(err.Error(), "canceled before level") {
		t.Fatalf("deadline error has wrong shape: %v", err)
	}
}
