package coarsen

import (
	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// buildVertexCentricPre is the Algorithm 6 skeleton with the fine-side
// pre-deduplication optimization: each fine vertex's adjacency is first
// collapsed to distinct coarse targets with merged weights, and those
// merged entries feed the counting/scatter phases. Because merged entries
// no longer correspond to a single fine edge, the one-sided tie-break uses
// coarse ids (a < b) rather than fine ids — each undirected fine edge is
// still written to exactly one side.
//
// Like buildVertexCentric, every pass is a contention-free two-phase
// scatter over fixed edge-balanced worker ranges: no contended writes, and bin
// contents in fine-vertex order for every worker count.
func buildVertexCentricPre(ws *Workspace, g *graph.Graph, m *Mapping, p int, mode sideMode, dedup dedupFunc) (*graph.Graph, error) {
	n := g.N()
	if err := m.Validate(n); err != nil {
		return nil, err
	}
	nc := int(m.NC)
	mv := m.M
	p = par.Workers(p, n)

	ws.bounds = par.BalancedRanges(ws.bounds, g.Xadj, p)
	bounds := ws.bounds

	span := obs.StartKernel("cons:vwgt")
	vwgt := aggregateVertexWeights(ws, g, mv, nc, p, bounds)
	span.Done()

	oneSided := mode == sideOne
	keyBufs, wgtBufs := ws.pairBufsFor(p)
	scratch := ws.sortScratchFor(p)

	// localTargets fills worker w's scratch buffers with vertex u's
	// distinct coarse targets (excluding its own aggregate) and merged
	// weights.
	localTargets := func(w int, u int32) ([]int32, []int64) {
		a := mv[u]
		adj, wgt := g.Neighbors(u)
		ks := keyBufs[w][:0]
		ws2 := wgtBufs[w][:0]
		for k, v := range adj {
			if b := mv[v]; b != a {
				ks = append(ks, b)
				ws2 = append(ws2, wgt[k])
			}
		}
		keyBufs[w], wgtBufs[w] = ks, ws2
		par.SortPairsInt32Scratch(ks, ws2, scratch[w])
		var wr int
		for i := 0; i < len(ks); i++ {
			if wr > 0 && ks[wr-1] == ks[i] {
				ws2[wr-1] += ws2[i]
			} else {
				ks[wr] = ks[i]
				ws2[wr] = ws2[i]
				wr++
			}
		}
		return ks[:wr], ws2[:wr]
	}

	// Step 1: upper-bound coarse degrees over merged entries.
	span = obs.StartKernel("cons:count")
	hists := ws.histograms(p, nc)
	par.ForRanges(bounds, func(w, lo, hi int) {
		h := hists[w]
		for i := lo; i < hi; i++ {
			u := int32(i)
			ks, _ := localTargets(w, u)
			h[mv[u]] += int32(len(ks))
		}
	})
	cEst := growI32(&ws.cEst, nc)
	par.MergeHistograms(hists, cEst, p)
	span.Done()

	writeHere := func(a, b int32) bool {
		if !oneSided {
			return true
		}
		if cEst[a] != cEst[b] {
			return cEst[a] < cEst[b]
		}
		return a < b
	}

	// Step 2: exact bin sizes. Both-sided reuses the step-1 histograms
	// (already converted to per-worker offsets by MergeHistograms).
	cnt := cEst
	if oneSided {
		span = obs.StartKernel("cons:recount")
		hists = ws.histograms(p, nc)
		par.ForRanges(bounds, func(w, lo, hi int) {
			h := hists[w]
			for i := lo; i < hi; i++ {
				u := int32(i)
				a := mv[u]
				ks, _ := localTargets(w, u)
				for _, b := range ks {
					if writeHere(a, b) {
						h[a]++
					}
				}
			}
		})
		cnt = growI32(&ws.cnt, nc)
		par.MergeHistograms(hists, cnt, p)
		span.Done()
	}

	// Step 3 + 4: offsets and contention-free scatter.
	r := growI64(&ws.r, nc+1)
	total := par.PrefixSumInt32(r, cnt, p)
	span = obs.StartKernel("cons:scatter")
	f := growI32(&ws.binF, int(total))
	x := growI64(&ws.binX, int(total))
	par.ForRanges(bounds, func(w, lo, hi int) {
		h := hists[w]
		for i := lo; i < hi; i++ {
			u := int32(i)
			a := mv[u]
			ks, wsg := localTargets(w, u)
			for k, b := range ks {
				if !writeHere(a, b) {
					continue
				}
				l := r[a] + int64(h[a])
				h[a]++
				f[l] = b
				x[l] = wsg[k]
			}
		}
	})
	span.Done()

	// Steps 5 + 6: per-coarse-vertex dedup and finalization.
	newCnt := dedup(ws, f, x, r, cnt, p)
	var cg *graph.Graph
	if oneSided {
		span = obs.StartKernel("cons:symmetrize")
		cg = symmetrizeDeduped(ws, f, x, r, newCnt, nc, p, dedup)
	} else {
		span = obs.StartKernel("cons:compact")
		cg = compactDeduped(f, x, r, newCnt, nc, p)
	}
	span.Done()
	cg.VWgt = vwgt
	return cg, nil
}
