package coarsen

import (
	"sync/atomic"

	"mlcg/internal/graph"
	"mlcg/internal/par"
)

// buildVertexCentricPre is the Algorithm 6 skeleton with the fine-side
// pre-deduplication optimization: each fine vertex's adjacency is first
// collapsed to distinct coarse targets with merged weights, and those
// merged entries feed the counting/scatter phases. Because merged entries
// no longer correspond to a single fine edge, the one-sided tie-break uses
// coarse ids (a < b) rather than fine ids — each undirected fine edge is
// still written to exactly one side.
func buildVertexCentricPre(g *graph.Graph, m *Mapping, p int, mode sideMode, dedup dedupFunc) (*graph.Graph, error) {
	n := g.N()
	if err := m.Validate(n); err != nil {
		return nil, err
	}
	nc := int(m.NC)
	mv := m.M

	vwgt := make([]int64, nc)
	par.ForEachChunked(n, p, 1024, func(i int) {
		atomic.AddInt64(&vwgt[mv[i]], g.VertexWeight(int32(i)))
	})

	oneSided := mode == sideOne

	// localTargets fills the scratch buffers with vertex u's distinct
	// coarse targets (excluding its own aggregate) and merged weights.
	localTargets := func(u int32, bufK *[]int32, bufW *[]int64) ([]int32, []int64) {
		a := mv[u]
		adj, wgt := g.Neighbors(u)
		ks := (*bufK)[:0]
		ws := (*bufW)[:0]
		for k, v := range adj {
			if b := mv[v]; b != a {
				ks = append(ks, b)
				ws = append(ws, wgt[k])
			}
		}
		par.SortPairsInt32(ks, ws)
		var w int
		for i := 0; i < len(ks); i++ {
			if w > 0 && ks[w-1] == ks[i] {
				ws[w-1] += ws[i]
			} else {
				ks[w] = ks[i]
				ws[w] = ws[i]
				w++
			}
		}
		*bufK, *bufW = ks, ws
		return ks[:w], ws[:w]
	}

	// Step 1: upper-bound coarse degrees over merged entries.
	cEst := make([]int32, nc)
	par.ForChunked(n, p, 256, func(_, lo, hi int) {
		var bufK []int32
		var bufW []int64
		for i := lo; i < hi; i++ {
			u := int32(i)
			ks, _ := localTargets(u, &bufK, &bufW)
			atomic.AddInt32(&cEst[mv[u]], int32(len(ks)))
		}
	})

	writeHere := func(a, b int32) bool {
		if !oneSided {
			return true
		}
		if cEst[a] != cEst[b] {
			return cEst[a] < cEst[b]
		}
		return a < b
	}

	// Step 2: exact bin sizes.
	var cnt []int32
	if oneSided {
		cnt = make([]int32, nc)
		par.ForChunked(n, p, 256, func(_, lo, hi int) {
			var bufK []int32
			var bufW []int64
			for i := lo; i < hi; i++ {
				u := int32(i)
				a := mv[u]
				ks, _ := localTargets(u, &bufK, &bufW)
				var c int32
				for _, b := range ks {
					if writeHere(a, b) {
						c++
					}
				}
				if c > 0 {
					atomic.AddInt32(&cnt[a], c)
				}
			}
		})
	} else {
		cnt = cEst
	}

	// Step 3 + 4: offsets and scatter.
	r := make([]int64, nc+1)
	total := par.PrefixSumInt32(r, cnt, p)
	f := make([]int32, total)
	x := make([]int64, total)
	pos := make([]int32, nc)
	par.ForChunked(n, p, 256, func(_, lo, hi int) {
		var bufK []int32
		var bufW []int64
		for i := lo; i < hi; i++ {
			u := int32(i)
			a := mv[u]
			ks, ws := localTargets(u, &bufK, &bufW)
			for k, b := range ks {
				if !writeHere(a, b) {
					continue
				}
				l := r[a] + int64(atomic.AddInt32(&pos[a], 1)-1)
				f[l] = b
				x[l] = ws[k]
			}
		}
	})

	// Steps 5 + 6: per-coarse-vertex dedup and finalization.
	newCnt := dedup(f, x, r, cnt, p)
	var cg *graph.Graph
	if oneSided {
		cg = symmetrizeDeduped(f, x, r, newCnt, nc, p, dedup)
	} else {
		cg = compactDeduped(f, x, r, newCnt, nc, p)
	}
	cg.VWgt = vwgt
	return cg, nil
}
