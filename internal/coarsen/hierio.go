package coarsen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mlcg/internal/graph"
)

// Legacy hierarchy container (magic "mlcg-hie"): length-prefixed graph
// binaries plus the mapping arrays, with no checksums, no level stats, and
// no alignment. Superseded by the versioned hierfmt container
// (internal/hierfmt, spec in docs/FORMAT.md), which round-trips stats and
// provenance, checksums every section, and supports zero-copy/mmap loads.
//
// This file is now a read-only shim: the writer has been removed, and
// ReadHierarchy remains for one release so existing files can be migrated.

const hierMagic = uint64(0x6d6c63672d686965) // "mlcg-hie"

// ReadHierarchy parses the legacy "mlcg-hie" container and validates its
// internal consistency (each map's length matches its fine graph, ids stay
// within the coarse graph). Level stats were never persisted by this
// format, so h.Stats is empty on return.
//
// Deprecated: the legacy format is read-only and will be removed in a
// future release. Migrate files by loading them here and re-saving with
// hierfmt.Save (or `mlcg-coarsen -loadhier old.hier -save new.mlcg`); new
// code should use hierfmt.Load/hierfmt.Save directly.
func ReadHierarchy(r io.Reader) (*Hierarchy, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, levels uint64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("coarsen: short hierarchy header: %w", err)
	}
	if magic != hierMagic {
		return nil, fmt.Errorf("coarsen: bad hierarchy magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &levels); err != nil {
		return nil, err
	}
	if levels == 0 || levels > 1<<20 {
		return nil, fmt.Errorf("coarsen: implausible level count %d", levels)
	}
	h := &Hierarchy{}
	for i := uint64(0); i < levels; i++ {
		g, err := graph.ReadBinary(br)
		if err != nil {
			return nil, fmt.Errorf("coarsen: level %d graph: %w", i, err)
		}
		h.Graphs = append(h.Graphs, g)
	}
	for i := 0; i+1 < len(h.Graphs); i++ {
		var mlen uint64
		if err := binary.Read(br, binary.LittleEndian, &mlen); err != nil {
			return nil, fmt.Errorf("coarsen: map %d length: %w", i, err)
		}
		if mlen != uint64(h.Graphs[i].N()) {
			return nil, fmt.Errorf("coarsen: map %d covers %d vertices, graph has %d",
				i, mlen, h.Graphs[i].N())
		}
		m, err := graph.ReadI32Chunked(br, int(mlen), fmt.Sprintf("hierarchy map %d", i))
		if err != nil {
			return nil, err
		}
		nc := h.Graphs[i+1].NumV
		for u, a := range m {
			if a < 0 || a >= nc {
				return nil, fmt.Errorf("coarsen: map %d vertex %d -> %d out of [0,%d)", i, u, a, nc)
			}
		}
		h.Maps = append(h.Maps, m)
	}
	return h, nil
}
