package coarsen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mlcg/internal/graph"
)

// Hierarchy serialization: a coarsening hierarchy is expensive relative to
// the downstream solves that reuse it (several partitions with different
// seeds, repeated spectral solves), so it can be written once and
// reloaded (Hierarchy.Write / ReadHierarchy). The container holds every level's graph (in the graph binary
// format) and the mapping arrays; timings are not persisted.

const hierMagic = uint64(0x6d6c63672d686965) // "mlcg-hie"

// Write serializes the hierarchy.
func (h *Hierarchy) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := binary.Write(bw, binary.LittleEndian, hierMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(h.Graphs))); err != nil {
		return err
	}
	for _, g := range h.Graphs {
		if err := g.WriteBinary(bw); err != nil {
			return err
		}
	}
	for _, m := range h.Maps {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(m))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, m); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadHierarchy parses a container written by Write and validates its
// internal consistency (each map's length matches its fine graph, ids stay
// within the coarse graph).
func ReadHierarchy(r io.Reader) (*Hierarchy, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, levels uint64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("coarsen: short hierarchy header: %w", err)
	}
	if magic != hierMagic {
		return nil, fmt.Errorf("coarsen: bad hierarchy magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &levels); err != nil {
		return nil, err
	}
	if levels == 0 || levels > 1<<20 {
		return nil, fmt.Errorf("coarsen: implausible level count %d", levels)
	}
	h := &Hierarchy{}
	for i := uint64(0); i < levels; i++ {
		g, err := graph.ReadBinary(br)
		if err != nil {
			return nil, fmt.Errorf("coarsen: level %d graph: %w", i, err)
		}
		h.Graphs = append(h.Graphs, g)
	}
	for i := 0; i+1 < len(h.Graphs); i++ {
		var mlen uint64
		if err := binary.Read(br, binary.LittleEndian, &mlen); err != nil {
			return nil, fmt.Errorf("coarsen: map %d length: %w", i, err)
		}
		if mlen != uint64(h.Graphs[i].N()) {
			return nil, fmt.Errorf("coarsen: map %d covers %d vertices, graph has %d",
				i, mlen, h.Graphs[i].N())
		}
		m, err := graph.ReadI32Chunked(br, int(mlen), fmt.Sprintf("hierarchy map %d", i))
		if err != nil {
			return nil, err
		}
		nc := h.Graphs[i+1].NumV
		for u, a := range m {
			if a < 0 || a >= nc {
				return nil, fmt.Errorf("coarsen: map %d vertex %d -> %d out of [0,%d)", i, u, a, nc)
			}
		}
		h.Maps = append(h.Maps, m)
	}
	return h, nil
}
