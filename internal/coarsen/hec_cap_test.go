package coarsen

import (
	"testing"

	"mlcg/internal/graph"
)

// maxAggregateWeight returns the heaviest aggregate of a mapping.
func maxAggregateWeight(g *graph.Graph, m *Mapping) int64 {
	w := make([]int64, m.NC)
	for u := int32(0); u < g.NumV; u++ {
		w[m.M[u]] += g.VertexWeight(u)
	}
	var max int64
	for _, x := range w {
		if x > max {
			max = x
		}
	}
	return max
}

func TestHECAggregateWeightCapOnStar(t *testing.T) {
	// Without a cap, HEC collapses a star into one aggregate; with a cap,
	// every aggregate stays within it.
	var e []graph.Edge
	for i := 1; i <= 200; i++ {
		e = append(e, graph.Edge{U: 0, V: int32(i), W: 1})
	}
	g := graph.MustFromEdges(201, e)

	uncapped, err := HEC{}.Map(g, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if maxAggregateWeight(g, uncapped) < 100 {
		t.Fatalf("expected the uncapped star to collapse, max agg %d", maxAggregateWeight(g, uncapped))
	}

	capped, err := HEC{MaxAggWeight: 10}.Map(g, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := capped.Validate(g.N()); err != nil {
		t.Fatal(err)
	}
	if got := maxAggregateWeight(g, capped); got > 10 {
		t.Errorf("max aggregate weight %d exceeds cap 10", got)
	}
	if capped.NC <= uncapped.NC {
		t.Errorf("capped run should create more aggregates (%d vs %d)", capped.NC, uncapped.NC)
	}
}

func TestHECCapWithVertexWeights(t *testing.T) {
	// Vertex weights from a previous level must count against the cap.
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 4}, {U: 2, V: 3, W: 3},
	})
	g.MaterializeVWgt()
	g.VWgt = []int64{6, 6, 6, 6}
	for seed := uint64(0); seed < 6; seed++ {
		m, err := HEC{MaxAggWeight: 12}.Map(g, seed, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := maxAggregateWeight(g, m); got > 12 {
			t.Errorf("seed %d: max agg weight %d > 12", seed, got)
		}
	}
	// A cap below a pair weight forces all singletons.
	m, err := HEC{MaxAggWeight: 11}.Map(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NC != 4 {
		t.Errorf("sub-pair cap should force singletons, nc=%d", m.NC)
	}
}

func TestHECCapQuickInvariant(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := bigTestGraph(800, seed)
		const cap = 16
		m, err := HEC{MaxAggWeight: cap}.Map(g, seed^7, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(g.N()); err != nil {
			t.Fatal(err)
		}
		if got := maxAggregateWeight(g, m); got > cap {
			t.Fatalf("seed %d: max agg weight %d > %d", seed, got, cap)
		}
	}
}

func TestHECCapOverweightVertexIsSingleton(t *testing.T) {
	// A vertex heavier than the cap can never share an aggregate. The old
	// tryJoin admitted such a vertex into an aggregate whose weight counter
	// was still zero (`cur > 0` guard), silently blowing the cap.
	g := graph.MustFromEdges(3, []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 5},
	})
	g.MaterializeVWgt()
	g.VWgt = []int64{3, 20, 3}
	const cap = 10
	for seed := uint64(0); seed < 8; seed++ {
		for _, p := range []int{1, 2, 4} {
			m, err := HEC{MaxAggWeight: cap}.Map(g, seed, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Validate(g.N()); err != nil {
				t.Fatal(err)
			}
			// Vertex 1 must be alone in its aggregate.
			if m.M[0] == m.M[1] || m.M[2] == m.M[1] {
				t.Fatalf("seed %d p=%d: over-weight vertex shares aggregate: %v", seed, p, m.M)
			}
			if got := maxAggregateWeight(g, m); got > 20 {
				t.Fatalf("seed %d p=%d: max agg weight %d", seed, p, got)
			}
		}
	}
}

func TestHECCapThroughMultilevel(t *testing.T) {
	// The cap must hold level over level as vertex weights accumulate.
	g := bigTestGraph(2000, 3)
	const cap = 64
	c := &Coarsener{Mapper: HEC{MaxAggWeight: cap}, Builder: BuildSort{}, Seed: 1, Workers: 2}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, cg := range h.Graphs[1:] {
		for u := int32(0); u < cg.NumV; u++ {
			if w := cg.VertexWeight(u); w > cap {
				t.Fatalf("level %d vertex %d weight %d > cap", i+1, u, w)
			}
		}
	}
	if h.Coarsest().N() > 50 && h.Levels() < 3 {
		t.Errorf("capped coarsening stalled: levels=%d coarsest=%d", h.Levels(), h.Coarsest().N())
	}
}
