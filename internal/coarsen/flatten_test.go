package coarsen

import (
	"testing"

	"mlcg/internal/graph"
)

func TestComposeMaps(t *testing.T) {
	fineToMid := []int32{0, 0, 1, 2, 1}
	midToCoarse := []int32{1, 0, 1}
	got := ComposeMaps(fineToMid, midToCoarse)
	want := []int32{1, 1, 0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("compose[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFlattenMatchesProjection(t *testing.T) {
	g := bigTestGraph(1200, 3)
	c := &Coarsener{Mapper: HEC{}, Builder: BuildSort{}, Seed: 5, Workers: 2}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	flat := h.Flatten()
	if err := flat.Validate(g.N()); err != nil {
		t.Fatal(err)
	}
	if flat.NC != h.Coarsest().NumV {
		t.Fatalf("flat NC %d != coarsest %d", flat.NC, h.Coarsest().NumV)
	}
	// Flatten must equal projecting coarse identities down.
	ids := make([]int32, h.Coarsest().N())
	for i := range ids {
		ids[i] = int32(i)
	}
	proj := h.ProjectToFine(ids)
	for u := range proj {
		if proj[u] != flat.M[u] {
			t.Fatalf("mismatch at %d: %d vs %d", u, proj[u], flat.M[u])
		}
	}
	// Building with the flattened mapping reproduces the coarsest graph.
	direct, err := BuildSort{}.Build(g, flat, 2)
	if err != nil {
		t.Fatal(err)
	}
	direct.SortAdjacency(1)
	want := h.Coarsest().Clone()
	want.SortAdjacency(1)
	// Contraction is associative: one-shot contraction with the composed
	// mapping must reproduce the multilevel result exactly.
	if !graph.Equal(direct, want) {
		t.Error("flattened one-shot contraction differs from the multilevel result")
	}
}

func TestFlattenIdentityOnTrivialHierarchy(t *testing.T) {
	g := testGraphs()["pair"]
	c := &Coarsener{Mapper: HEC{}, Builder: BuildSort{}, Cutoff: 1000} // no levels
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	flat := h.Flatten()
	if flat.NC != g.NumV {
		t.Errorf("NC = %d", flat.NC)
	}
	for i, v := range flat.M {
		if v != int32(i) {
			t.Errorf("not identity at %d", i)
		}
	}
}
