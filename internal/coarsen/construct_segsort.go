package coarsen

import (
	"mlcg/internal/graph"
	"mlcg/internal/par"
)

// BuildSegSort is the segmented-global-sort alternative the paper mentions
// in Section III.B ("A segmented global sort is also an alternative to
// separate per-vertex sorts"): instead of sorting each coarse vertex's bin
// independently, all bins are sorted at once by one parallel radix sort on
// the composite key (bin id, neighbor id). Long hub bins then benefit from
// the fully parallel sort instead of serializing inside one worker.
type BuildSegSort struct {
	SkewThreshold float64
	ForceOneSided bool
}

// Name implements Builder.
func (BuildSegSort) Name() string { return "segsort" }

// Build implements Builder.
func (b BuildSegSort) Build(g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	return b.BuildWith(NewWorkspace(), g, m, p)
}

// BuildWith implements WorkspaceBuilder.
func (b BuildSegSort) BuildWith(ws *Workspace, g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	mode := BuildSort{SkewThreshold: b.SkewThreshold, ForceOneSided: b.ForceOneSided}.mode(g)
	return buildVertexCentric(ws, g, m, p, mode, dedupSegmentedSort)
}

// dedupSegmentedSort deduplicates all segments with a single global sort
// on (segment, key) composite keys followed by a per-segment merge scan.
// The bins produced by the two-phase scatter are dense (r[a+1] = r[a] +
// cnt[a]), so packing the composite keys is an index-parallel pass and the
// sorted stream unpacks back into the same positions. LSD radix is stable,
// so the result is deterministic for every worker count.
func dedupSegmentedSort(ws *Workspace, f []int32, x []int64, r []int64, cnt []int32, p int) []int32 {
	nc := len(cnt)
	newCnt := growI32(&ws.newCnt, nc)
	total := r[nc]
	keys := growU64(&ws.keys64, int(total))
	vals := growU64(&ws.vals64, int(total))
	// Pack (segment id, neighbor id) into one 64-bit key.
	par.ForEachChunked(nc, p, 256, func(a int) {
		lo := r[a]
		hi := lo + int64(cnt[a])
		for i := lo; i < hi; i++ {
			keys[i] = uint64(uint32(a))<<32 | uint64(uint32(f[i]))
			vals[i] = uint64(x[i])
		}
	})
	par.RadixSortPairs(keys, vals, p)

	// Unpack: the sorted stream is grouped by segment (high bits), so each
	// segment's entries are back at [r[a], r[a]+cnt[a]); merge duplicates
	// into f/x.
	par.ForChunked(nc, p, 64, func(_, aLo, aHi int) {
		for a := aLo; a < aHi; a++ {
			lo := r[a]
			hi := lo + int64(cnt[a])
			w := lo
			var written int32
			for i := lo; i < hi; i++ {
				k := int32(uint32(keys[i]))
				v := int64(vals[i])
				if written > 0 && f[w-1] == k {
					x[w-1] += v
				} else {
					f[w] = k
					x[w] = v
					w++
					written++
				}
			}
			newCnt[a] = written
		}
	})
	return newCnt
}
