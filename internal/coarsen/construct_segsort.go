package coarsen

import (
	"mlcg/internal/graph"
	"mlcg/internal/par"
)

// BuildSegSort is the segmented-global-sort alternative the paper mentions
// in Section III.B ("A segmented global sort is also an alternative to
// separate per-vertex sorts"): instead of sorting each coarse vertex's bin
// independently, all bins are sorted at once by one parallel radix sort on
// the composite key (bin id, neighbor id). Long hub bins then benefit from
// the fully parallel sort instead of serializing inside one worker.
type BuildSegSort struct {
	SkewThreshold float64
	ForceOneSided bool
}

// Name implements Builder.
func (BuildSegSort) Name() string { return "segsort" }

// Build implements Builder.
func (b BuildSegSort) Build(g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	mode := BuildSort{SkewThreshold: b.SkewThreshold, ForceOneSided: b.ForceOneSided}.mode(g)
	return buildVertexCentric(g, m, p, mode, dedupSegmentedSort)
}

// dedupSegmentedSort deduplicates all segments with a single global sort
// on (segment, key) composite keys followed by a per-segment merge scan.
func dedupSegmentedSort(f []int32, x []int64, r []int64, cnt []int32, p int) []int32 {
	nc := len(cnt)
	var total int64
	for _, c := range cnt {
		total += int64(c)
	}
	keys := make([]uint64, total)
	vals := make([]uint64, total)
	// Pack (segment id, neighbor id) into one 64-bit key; positions are
	// compacted so the sorted stream can be unpacked back into segments.
	pos := int64(0)
	offsets := make([]int64, nc+1)
	for a := 0; a < nc; a++ {
		offsets[a] = pos
		lo := r[a]
		for k := int64(0); k < int64(cnt[a]); k++ {
			keys[pos] = uint64(uint32(a))<<32 | uint64(uint32(f[lo+k]))
			vals[pos] = uint64(x[lo+k])
			pos++
		}
	}
	offsets[nc] = pos
	par.RadixSortPairs(keys, vals, p)

	// Unpack: the sorted stream is grouped by segment (high bits), so each
	// segment's entries are contiguous; merge duplicates back into f/x.
	newCnt := make([]int32, nc)
	par.ForChunked(nc, p, 64, func(_, aLo, aHi int) {
		for a := aLo; a < aHi; a++ {
			lo, hi := offsets[a], offsets[a+1]
			w := r[a]
			var written int32
			for i := lo; i < hi; i++ {
				k := int32(uint32(keys[i]))
				v := int64(vals[i])
				if written > 0 && f[w-1] == k {
					x[w-1] += v
				} else {
					f[w] = k
					x[w] = v
					w++
					written++
				}
			}
			newCnt[a] = written
		}
	})
	return newCnt
}
