package coarsen

import (
	"runtime"
	"sync/atomic"

	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// Suitor implements coarsening by the Suitor algorithm of Manne and
// Halappanavar ("New effective multithreaded matching algorithms", IPDPS
// 2014), the weighted-matching alternative the paper names as future work
// ("we will compare to approximation algorithms for weighted maximal
// matching such as Suitor in future work"). Suitor computes the same
// 1/2-approximate maximum weight matching as greedy-by-weight, but by
// local proposals: every vertex proposes to its best neighbor whose
// current suitor is weaker, dislodged proposers re-propose, and mutual
// proposals form the matching.
type Suitor struct{}

// Name implements Mapper.
func (Suitor) Name() string { return "suitor" }

// Map implements Mapper.
func (Suitor) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	perm := par.RandPerm(n, seed, p)
	pos := par.InversePerm(perm, p)

	// suitor[v] is the current proposer to v (unset = none); ws[v] is the
	// weight of that proposal. beats reports whether a proposal (u, w)
	// dislodges v's current suitor, with the positional tie-break keeping
	// the outcome deterministic for p == 1.
	suitor := make([]int32, n)
	ws := make([]int64, n)
	par.Fill(suitor, unset, p)

	beats := func(w int64, u, v int32) bool {
		if w != ws[v] {
			return w > ws[v]
		}
		cur := suitor[v]
		return cur == unset || pos[u] < pos[cur]
	}

	if par.Workers(p, n) == 1 {
		// Sequential suitor with an explicit work stack of dislodged
		// proposers.
		stack := make([]int32, 0, 64)
		for _, start := range perm {
			u := start
			for u != unset {
				adj, wgt := g.Neighbors(u)
				best := unset
				var bw int64 = -1
				for k, v := range adj {
					w := wgt[k]
					if (w > bw || (w == bw && (best == unset || pos[v] < pos[best]))) && beats(w, u, v) {
						best, bw = v, w
					}
				}
				if best == unset {
					u = unset
					continue
				}
				dislodged := suitor[best]
				suitor[best] = u
				ws[best] = bw
				if dislodged != unset {
					stack = append(stack, dislodged)
				}
				if len(stack) > 0 {
					u = stack[len(stack)-1]
					stack = stack[:len(stack)-1]
				} else {
					u = unset
				}
			}
		}
	} else {
		parallelSuitor(g, suitor, ws, pos, p)
	}

	// Mutual suitors are matched; everything else is a singleton. The
	// matching itself is schedule-independent — proposals resolve to the
	// unique greedy-by-(weight, pos) matching regardless of interleaving —
	// so canonical relabeling pins the labels too.
	m := make([]int32, n)
	for u := int32(0); int(u) < n; u++ {
		if v := suitor[u]; v != unset && suitor[v] == u && v < u {
			m[u] = v // pair root is the lower id
		} else {
			m[u] = u
		}
	}
	nc := canonicalize(m, pos, p)
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}

// parallelSuitor runs the lock-based variant: each proposal
// inspect-and-update of (suitor[v], ws[v]) happens under a per-vertex spin
// lock, exactly as in the multithreaded algorithm of the original paper.
func parallelSuitor(g *graph.Graph, suitor []int32, ws []int64, pos []int32, p int) {
	span := obs.StartKernel("suitor:propose")
	defer span.Done()
	n := g.N()
	locks := make([]int32, n)
	// Spin iterations batch into a per-chunk counter (suitor_spins) flushed
	// once per chunk; the common uncontended acquire adds one register add.
	par.ForChunked(n, p, 256, func(_, lo, hi int) {
		var spins int64
		lock := func(v int32) {
			for !atomic.CompareAndSwapInt32(&locks[v], 0, 1) {
				spins++
				// Yield so the lock holder can run: with fewer OS threads
				// than workers (or under the race detector) a pure spin
				// starves the holder and livelocks the pass.
				runtime.Gosched()
			}
		}
		unlock := func(v int32) { atomic.StoreInt32(&locks[v], 0) }
		for i := lo; i < hi; i++ {
			suitorPropose(g, suitor, ws, pos, int32(i), lock, unlock)
		}
		obs.Add(obs.CtrSuitorSpin, spins)
	})
}

// suitorPropose runs one vertex's proposal chain (including re-proposals of
// dislodged suitors) under the caller's per-vertex lock functions.
func suitorPropose(g *graph.Graph, suitor []int32, ws []int64, pos []int32, u int32, lock, unlock func(v int32)) {
	for u != unset {
		adj, wgt := g.Neighbors(u)
		best := unset
		var bw int64 = -1
		for k, v := range adj {
			w := wgt[k]
			// Unlocked reads are a heuristic filter; the decision is
			// re-checked under the lock. The filter must use the same
			// tie-break as the lock-side test (positional comparison
			// of proposers), otherwise equal-weight proposals that
			// would win on the tie-break get dropped and mutual pairs
			// never form.
			if w > bw || (w == bw && (best == unset || pos[v] < pos[best])) {
				cw := atomic.LoadInt64(&ws[v])
				cur := atomic.LoadInt32(&suitor[v])
				if w > cw || (w == cw && (cur == unset || pos[u] < pos[cur])) {
					best, bw = v, w
				}
			}
		}
		if best == unset {
			return
		}
		lock(best)
		cur := suitor[best]
		ok := bw > ws[best] || (bw == ws[best] && (cur == unset || pos[u] < pos[cur]))
		var dislodged int32 = unset
		if ok {
			dislodged = cur
			// Atomic stores so the unlocked filter reads above never
			// race with in-progress updates; ordering still comes from
			// the lock.
			atomic.StoreInt32(&suitor[best], u)
			atomic.StoreInt64(&ws[best], bw)
		}
		unlock(best)
		if !ok {
			// Retry: this proposal lost; look for the next-best
			// target in the following loop iteration by continuing
			// with the same u (the filter will now skip best).
			continue
		}
		u = dislodged
	}
}
