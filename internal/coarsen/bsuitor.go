package coarsen

import (
	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// BSuitor implements coarsening via b-matching with the b-Suitor algorithm
// of Khan, Pothen, et al. (SISC 2016) — the paper's second named
// future-work direction ("evaluating b-matching and the b-Suitor algorithm
// [30] for coarsening"). Every vertex may keep up to B partners; the
// greedy-equivalent 1/2-approximate maximum weight b-matching is computed
// by proposals into per-vertex suitor lists, and the aggregates are the
// connected components of the mutual-match edge set. With B = 1 this
// degenerates to Suitor; B = 2 (the default) yields path/cycle components
// and coarsening ratios up to ~3, between matching and HEC.
type BSuitor struct {
	// B is the per-vertex partner bound. Zero means 2.
	B int
}

// Name implements Mapper.
func (BSuitor) Name() string { return "bsuitor" }

// suitorList is one vertex's bounded list of current proposals, kept
// sorted ascending by (weight, tie) so the weakest entry is evicted first.
type suitorList struct {
	who []int32
	w   []int64
}

// worst returns the weakest current proposal (the admission threshold).
func (s *suitorList) worst() (int32, int64) {
	if len(s.who) == 0 {
		return -1, -1
	}
	return s.who[0], s.w[0]
}

// insert adds a proposal, evicting the weakest if the list is full.
// Returns the evicted vertex (or -1). Caller guarantees the proposal
// beats the current worst when the list is full.
func (s *suitorList) insert(u int32, w int64, b int, better func(w1 int64, u1 int32, w2 int64, u2 int32) bool) int32 {
	evicted := int32(-1)
	if len(s.who) == b {
		evicted = s.who[0]
		s.who = s.who[1:]
		s.w = s.w[1:]
	}
	// Insertion keeping ascending order by (w, tie).
	i := 0
	for i < len(s.who) && better(w, u, s.w[i], s.who[i]) {
		i++
	}
	s.who = append(s.who, 0)
	s.w = append(s.w, 0)
	copy(s.who[i+1:], s.who[i:])
	copy(s.w[i+1:], s.w[i:])
	s.who[i] = u
	s.w[i] = w
	return evicted
}

// contains reports whether u is in the list.
func (s *suitorList) contains(u int32) bool {
	for _, x := range s.who {
		if x == u {
			return true
		}
	}
	return false
}

// Map implements Mapper.
func (bs BSuitor) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	b := bs.B
	if b <= 0 {
		b = 2
	}
	lists, pos := bsuitorLists(g, seed, p, b)

	// Mutual proposals form the b-matching; aggregates are its connected
	// components (paths/cycles for b=2), found by union-find.
	span := obs.StartKernel("bsuitor:components")
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, bv int32) {
		ra, rb := find(a), find(bv)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for u := int32(0); int(u) < n; u++ {
		for _, v := range lists[u].who {
			if lists[v].contains(u) {
				union(u, v)
			}
		}
	}
	m := make([]int32, n)
	for u := int32(0); int(u) < n; u++ {
		m[u] = find(u)
	}
	span.Done()
	nc := canonicalize(m, pos, p)
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}

// bsuitorLists runs the proposal rounds and returns every vertex's final
// suitor list (exposed for the invariant tests) together with the random
// permutation positions used, which drive the canonical relabeling.
func bsuitorLists(g *graph.Graph, seed uint64, p, b int) ([]suitorList, []int32) {
	n := g.N()
	perm := par.RandPerm(n, seed, p)
	pos := par.InversePerm(perm, p)

	// better reports whether proposal (w1 from u1) beats (w2 from u2).
	better := func(w1 int64, u1 int32, w2 int64, u2 int32) bool {
		if w1 != w2 {
			return w1 > w2
		}
		if u2 < 0 {
			return true
		}
		return pos[u1] < pos[u2]
	}

	lists := make([]suitorList, n)
	// propCount tracks how many proposals u currently has standing, so a
	// dislodged vertex re-proposes for the lost slot only.
	standing := make([]int32, n)

	// Sequential b-Suitor (the parallel variant would lock per-vertex
	// lists exactly like parallelSuitor; coarsening cost is dominated by
	// construction, so the sequential matcher keeps this variant simple
	// and deterministic).
	span := obs.StartKernel("bsuitor:propose")
	defer span.Done()
	stack := make([]int32, 0, 64)
	nextWork := func() int32 {
		if len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			return u
		}
		return -1
	}
	process := func(start int32) {
		u := start
		for u >= 0 {
			// u needs (b - standing[u]) more proposals; make one.
			if standing[u] >= int32(b) {
				u = nextWork()
				continue
			}
			adj, wgt := g.Neighbors(u)
			best := int32(-1)
			var bw int64 = -1
			for k, v := range adj {
				w := wgt[k]
				if lists[v].contains(u) {
					continue // u already proposed to v
				}
				// Admissible if v's list has room or we beat its worst.
				wv, ww := lists[v].worst()
				admissible := len(lists[v].who) < b || better(w, u, ww, wv)
				if admissible && (best < 0 || better(w, v, bw, best)) {
					best, bw = v, w
				}
			}
			if best < 0 {
				// u cannot place more proposals; drain the dislodge stack.
				u = nextWork()
				continue
			}
			evicted := lists[best].insert(u, bw, b, better)
			standing[u]++
			if evicted >= 0 {
				standing[evicted]--
				stack = append(stack, evicted)
			}
		}
	}
	for _, u := range perm {
		process(u)
	}
	return lists, pos
}
