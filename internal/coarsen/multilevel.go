package coarsen

import (
	"context"
	"fmt"
	"math"
	"time"

	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// Coarsener drives the multilevel loop (Algorithm 1): repeatedly map fine
// vertices to coarse ones and construct the coarse graph until the vertex
// count drops below the cutoff.
type Coarsener struct {
	Mapper  Mapper
	Builder Builder

	// Cutoff is the coarse vertex count at which coarsening stops; the
	// paper uses 50. Zero means 50.
	Cutoff int

	// DiscardBelow implements the paper's guard: "if the vertex count
	// drops from greater than 50 to less than 10 in an iteration, we
	// discard the coarsest graph". Zero means 10; negative disables.
	DiscardBelow int

	// MaxLevels caps the hierarchy depth. The paper's runs cap at 201
	// levels (visible in Table IV where stalled HEM reports l = 201).
	// Zero means 201.
	MaxLevels int

	// Seed randomizes the per-level vertex orders; level i uses Seed+i.
	Seed uint64

	// Workers is the parallelism degree (0 = GOMAXPROCS).
	Workers int

	// Workspace optionally supplies the scratch arena for this run instead
	// of allocating a private one. A workspace is single-owner: Run
	// acquires it with a CAS and fails fast with a clear error if another
	// Run currently holds it. Servers recycle arenas across requests with
	// a WorkspacePool.
	Workspace *Workspace
}

// LevelStats records per-level measurements used by the Table II/III
// benchmarks.
type LevelStats struct {
	N, NC     int32
	M         int64
	MapTime   time.Duration
	BuildTime time.Duration
	Passes    int
	// PassMapped mirrors Mapping.PassMapped for this level.
	PassMapped []int64

	// Builder is the construction strategy that built this level's coarse
	// graph — the configured builder's name, or the dispatched builder
	// when the configured builder is a PolicyBuilder (then BuildReason
	// carries the decision-rule code that selected it).
	Builder     string
	BuildReason string

	// Span is the level's obs span (nil unless a trace was active during
	// Run). Its children are the map/build phase spans with per-kernel
	// wall/busy times; kept here so callers can drill into a level without
	// walking the whole trace tree.
	Span *obs.Span
}

// Counters returns the level's subtree-aggregated obs counter totals by
// stable name (cas_retries, hash_probes, ...). Nil when the level was run
// without an active trace.
func (s *LevelStats) Counters() map[string]int64 { return s.Span.Counters() }

// Hierarchy is the output of multilevel coarsening: Graphs[0] is the input
// graph and Graphs[i] the i-th coarse graph; Maps[i] maps the vertices of
// Graphs[i] onto Graphs[i+1].
type Hierarchy struct {
	Graphs []*graph.Graph
	Maps   [][]int32
	Stats  []LevelStats

	// Stalled reports that coarsening stopped because a mapping produced no
	// reduction (NC >= N), not because the cutoff was reached. HEC2-style
	// mappers hit this on mutual-matching graphs (Table IV's l = 201 rows
	// are the paper's version of the same pathology). StallStats then holds
	// the measurements of the failed attempt — kept separate from Stats so
	// that Stats[i] still pairs with Graphs[i+1]/Maps[i].
	Stalled    bool
	StallStats *LevelStats
}

// Levels returns the number of coarsening levels (coarse graphs built).
func (h *Hierarchy) Levels() int { return len(h.Graphs) - 1 }

// Coarsest returns the last graph of the hierarchy.
func (h *Hierarchy) Coarsest() *graph.Graph { return h.Graphs[len(h.Graphs)-1] }

// MapTime returns the total time spent in the mapping phase, including a
// stalled final attempt: a stall still pays for its mapping pass, and the
// Table II/III timings must account for it.
func (h *Hierarchy) MapTime() time.Duration {
	var t time.Duration
	for _, s := range h.Stats {
		t += s.MapTime
	}
	if h.StallStats != nil {
		t += h.StallStats.MapTime
	}
	return t
}

// BuildTime returns the total time spent constructing coarse graphs
// (including any build time recorded on a stalled attempt).
func (h *Hierarchy) BuildTime() time.Duration {
	var t time.Duration
	for _, s := range h.Stats {
		t += s.BuildTime
	}
	if h.StallStats != nil {
		t += h.StallStats.BuildTime
	}
	return t
}

// TotalTime returns MapTime + BuildTime, the paper's t_c.
func (h *Hierarchy) TotalTime() time.Duration { return h.MapTime() + h.BuildTime() }

// CoarseningRatio returns the paper's cr = (n_0/n_l)^(1/l), the geometric
// mean per-level reduction. (Table IV's caption writes (n_0/n_l)^{l-1};
// the values reported there are consistent with the l-th root, which is
// the standard definition used here.)
func (h *Hierarchy) CoarseningRatio() float64 {
	l := h.Levels()
	if l == 0 {
		return 1
	}
	n0 := float64(h.Graphs[0].NumV)
	nl := float64(h.Coarsest().NumV)
	if nl == 0 {
		return 1
	}
	return math.Pow(n0/nl, 1/float64(l))
}

// ProjectToFine carries a per-vertex assignment on the coarsest graph back
// to level 0 through the mapping arrays.
func (h *Hierarchy) ProjectToFine(coarsest []int32) []int32 {
	cur := coarsest
	for i := len(h.Maps) - 1; i >= 0; i-- {
		m := h.Maps[i]
		fine := make([]int32, len(m))
		par.ForEach(len(m), 0, func(u int) {
			fine[u] = cur[m[u]]
		})
		cur = fine
	}
	return cur
}

// ComposeMaps composes two consecutive mapping arrays: the result maps
// fine vertices directly onto the coarser of the two levels.
func ComposeMaps(fineToMid, midToCoarse []int32) []int32 {
	out := make([]int32, len(fineToMid))
	par.ForEach(len(fineToMid), 0, func(u int) {
		out[u] = midToCoarse[fineToMid[u]]
	})
	return out
}

// Flatten returns the direct fine-to-coarsest mapping of the whole
// hierarchy as a single Mapping (the matrix P of the full multilevel
// contraction). For a hierarchy with no levels it returns the identity.
func (h *Hierarchy) Flatten() *Mapping {
	n := h.Graphs[0].N()
	if len(h.Maps) == 0 {
		m := make([]int32, n)
		for i := range m {
			m[i] = int32(i)
		}
		return &Mapping{M: m, NC: int32(n)}
	}
	cur := h.Maps[0]
	for i := 1; i < len(h.Maps); i++ {
		cur = ComposeMaps(cur, h.Maps[i])
	}
	out := make([]int32, n)
	copy(out, cur)
	return &Mapping{M: out, NC: h.Coarsest().NumV}
}

// Run coarsens g to completion and returns the hierarchy. The input graph
// is stored as level 0 and never modified.
func (c *Coarsener) Run(g *graph.Graph) (*Hierarchy, error) {
	return c.RunCtx(context.Background(), g)
}

// RunCtx is Run with a context: the multilevel loop checks for
// cancellation between levels (a deadline or a disconnected client stops
// the run at the next level boundary), and a trace carried by the context
// (obs.NewContext) is attached to the running goroutine for the duration,
// so per-request spans thread through runs executed on pool goroutines.
func (c *Coarsener) RunCtx(ctx context.Context, g *graph.Graph) (*Hierarchy, error) {
	if c.Mapper == nil || c.Builder == nil {
		return nil, fmt.Errorf("coarsen: Coarsener needs both a Mapper and a Builder")
	}
	if t := obs.TraceFromContext(ctx); t != nil && !obs.Enabled() {
		detach := t.Attach()
		defer detach()
	}
	cutoff := c.Cutoff
	if cutoff <= 0 {
		cutoff = 50
	}
	discard := c.DiscardBelow
	if discard == 0 {
		discard = 10
	}
	maxLevels := c.MaxLevels
	if maxLevels <= 0 {
		maxLevels = 201
	}

	h := &Hierarchy{Graphs: []*graph.Graph{g}}
	cur := g
	// Builders and mappers that support it share one scratch workspace
	// across all levels, so steady-state mapping and construction allocate
	// only the outputs that escape into the hierarchy. A caller-supplied
	// workspace is acquired exclusively: scratch is single-owner, and two
	// Runs sharing one arena would silently corrupt each other's buffers.
	var ws *Workspace
	wb, reuse := c.Builder.(WorkspaceBuilder)
	wm, mapReuse := c.Mapper.(WorkspaceMapper)
	if c.Workspace != nil {
		ws = c.Workspace
		if err := ws.tryAcquire(); err != nil {
			return nil, err
		}
		defer ws.release()
	} else if reuse || mapReuse {
		ws = NewWorkspace()
	}
	policy, adaptive := c.Builder.(PolicyBuilder)
	if adaptive {
		policy.BeginHierarchy()
	}
	for cur.N() > cutoff && h.Levels() < maxLevels {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("coarsen: canceled before level %d: %w", h.Levels()+1, err)
		}
		// Span names are only built when a trace is active, so the disabled
		// path stays allocation-free (the Enabled check is one pointer load).
		var lvl, phase *obs.Span
		if obs.Enabled() {
			lvl = obs.StartKernel(fmt.Sprintf("level %d", h.Levels()))
			phase = obs.StartKernel("map:" + c.Mapper.Name())
		}
		t0 := time.Now()
		var m *Mapping
		var err error
		if mapReuse {
			m, err = wm.MapWith(ws, cur, c.Seed+uint64(h.Levels()), c.Workers)
		} else {
			m, err = c.Mapper.Map(cur, c.Seed+uint64(h.Levels()), c.Workers)
		}
		t1 := time.Now()
		phase.Done()
		if err != nil {
			lvl.Done()
			return nil, fmt.Errorf("coarsen: level %d mapping: %w", h.Levels()+1, err)
		}
		if m.NC >= cur.NumV {
			// Stall: no reduction at all. Stop with what we have, but
			// record the failed attempt so callers can tell "reached the
			// cutoff" from "gave up" (previously this break was silent).
			lvl.Done()
			h.Stalled = true
			h.StallStats = &LevelStats{
				N: cur.NumV, NC: m.NC, M: cur.M(),
				MapTime: t1.Sub(t0),
				Passes:  m.Passes, PassMapped: m.PassMapped,
				Span: lvl,
			}
			break
		}
		if lvl != nil {
			phase = obs.StartKernel("build:" + c.Builder.Name())
		}
		var next *graph.Graph
		if reuse {
			next, err = wb.BuildWith(ws, cur, m, c.Workers)
		} else {
			next, err = c.Builder.Build(cur, m, c.Workers)
		}
		t2 := time.Now()
		phase.Done()
		lvl.Done()
		if err != nil {
			return nil, fmt.Errorf("coarsen: level %d construction: %w", h.Levels()+1, err)
		}
		if discard > 0 && cur.N() > cutoff && next.N() < discard {
			// Over-aggressive final step: discard the coarsest graph.
			break
		}
		bname, breason := c.Builder.Name(), ""
		if adaptive {
			if ch := policy.LastChoice(); ch != nil {
				bname, breason = ch.Builder, ch.Reason
			}
		}
		h.Stats = append(h.Stats, LevelStats{
			N: cur.NumV, NC: m.NC, M: cur.M(),
			MapTime: t1.Sub(t0), BuildTime: t2.Sub(t1),
			Passes: m.Passes, PassMapped: m.PassMapped,
			Builder: bname, BuildReason: breason,
			Span: lvl,
		})
		h.Graphs = append(h.Graphs, next)
		h.Maps = append(h.Maps, m.M)
		cur = next
	}
	return h, nil
}
