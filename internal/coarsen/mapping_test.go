package coarsen

import (
	"testing"
	"testing/quick"

	"mlcg/internal/graph"
	"mlcg/internal/par"
)

// testGraphs returns a small zoo of connected graphs exercising different
// structures.
func testGraphs() map[string]*graph.Graph {
	path := func(n int) *graph.Graph {
		var e []graph.Edge
		for i := 0; i < n-1; i++ {
			e = append(e, graph.Edge{U: int32(i), V: int32(i + 1), W: int64(i%3 + 1)})
		}
		return graph.MustFromEdges(n, e)
	}
	star := func(n int) *graph.Graph {
		var e []graph.Edge
		for i := 1; i < n; i++ {
			e = append(e, graph.Edge{U: 0, V: int32(i), W: int64(i%5 + 1)})
		}
		return graph.MustFromEdges(n, e)
	}
	grid := func(r, c int) *graph.Graph {
		var e []graph.Edge
		id := func(i, j int) int32 { return int32(i*c + j) }
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if j+1 < c {
					e = append(e, graph.Edge{U: id(i, j), V: id(i, j+1), W: 1})
				}
				if i+1 < r {
					e = append(e, graph.Edge{U: id(i, j), V: id(i+1, j), W: 2})
				}
			}
		}
		return graph.MustFromEdges(r*c, e)
	}
	clique := func(n int) *graph.Graph {
		var e []graph.Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				e = append(e, graph.Edge{U: int32(i), V: int32(j), W: int64((i+j)%4 + 1)})
			}
		}
		return graph.MustFromEdges(n, e)
	}
	rand := func(n int, seed uint64) *graph.Graph {
		rng := par.NewRNG(seed)
		var e []graph.Edge
		for i := 0; i < n-1; i++ {
			e = append(e, graph.Edge{U: int32(i), V: int32(i + 1), W: int64(rng.Intn(9) + 1)})
		}
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				e = append(e, graph.Edge{U: int32(u), V: int32(v), W: int64(rng.Intn(9) + 1)})
			}
		}
		return graph.MustFromEdges(n, e)
	}
	return map[string]*graph.Graph{
		"path40":   path(40),
		"star30":   star(30),
		"grid8x9":  grid(8, 9),
		"clique12": clique(12),
		"rand200":  rand(200, 7),
		"rand999":  rand(999, 13),
		"pair":     path(2),
		"triangle": clique(3),
	}
}

func allMappers(t *testing.T) []Mapper {
	t.Helper()
	var out []Mapper
	for _, name := range MapperNames() {
		m, err := MapperByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

// aggregatesConnected reports whether every aggregate of m induces a
// connected subgraph of g.
func aggregatesConnected(g *graph.Graph, m *Mapping) bool {
	n := g.N()
	members := make([][]int32, m.NC)
	for u := 0; u < n; u++ {
		members[m.M[u]] = append(members[m.M[u]], int32(u))
	}
	inAgg := make([]int32, n)
	for u := 0; u < n; u++ {
		inAgg[u] = m.M[u]
	}
	visited := make([]bool, n)
	var stack []int32
	for a, mem := range members {
		if len(mem) <= 1 {
			continue
		}
		count := 0
		stack = append(stack[:0], mem[0])
		visited[mem[0]] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			count++
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if inAgg[v] == int32(a) && !visited[v] {
					visited[v] = true
					stack = append(stack, v)
				}
			}
		}
		if count != len(mem) {
			return false
		}
	}
	return true
}

func TestMapperRegistry(t *testing.T) {
	for _, name := range MapperNames() {
		m, err := MapperByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("mapper %q reports name %q", name, m.Name())
		}
	}
	if _, err := MapperByName("bogus"); err == nil {
		t.Error("bogus mapper name accepted")
	}
	for _, name := range BuilderNames() {
		b, err := BuilderByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("builder %q reports name %q", name, b.Name())
		}
	}
	if _, err := BuilderByName("bogus"); err == nil {
		t.Error("bogus builder name accepted")
	}
}

func TestAllMappersProduceValidMappings(t *testing.T) {
	graphs := testGraphs()
	for _, mapper := range allMappers(t) {
		for gname, g := range graphs {
			for _, p := range []int{1, 4} {
				m, err := mapper.Map(g, 42, p)
				if err != nil {
					t.Fatalf("%s/%s p=%d: %v", mapper.Name(), gname, p, err)
				}
				if err := m.Validate(g.N()); err != nil {
					t.Errorf("%s/%s p=%d: %v", mapper.Name(), gname, p, err)
				}
			}
		}
	}
}

func TestMappersReduceVertexCount(t *testing.T) {
	// On any graph with >= 8 vertices, every mapper except possibly HEC2
	// (which stalls on mutual-matching structures) must achieve nc < n.
	graphs := testGraphs()
	for _, mapper := range allMappers(t) {
		for gname, g := range graphs {
			if g.N() < 8 {
				continue
			}
			m, err := mapper.Map(g, 3, 2)
			if err != nil {
				t.Fatal(err)
			}
			if mapper.Name() == "hec2" {
				continue // may legitimately stall; driver handles it
			}
			if m.NC >= g.NumV {
				t.Errorf("%s/%s: no reduction (nc=%d n=%d)", mapper.Name(), gname, m.NC, g.NumV)
			}
		}
	}
}

func TestHECFamilyAggregatesConnected(t *testing.T) {
	// Strict aggregation schemes produce connected aggregates (vertices
	// only ever join a neighbor's aggregate). Two-hop matching is the
	// designed exception.
	graphs := testGraphs()
	for _, name := range []string{"hec", "hecseq", "hec2", "hec3", "hem", "hemseq", "gosh", "goshhec", "mis2"} {
		mapper, _ := MapperByName(name)
		for gname, g := range graphs {
			m, err := mapper.Map(g, 99, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !aggregatesConnected(g, m) {
				t.Errorf("%s/%s: disconnected aggregate", name, gname)
			}
		}
	}
}

func TestMatchingAggregatesAreSmall(t *testing.T) {
	// HEM is a matching: aggregates have at most two vertices.
	graphs := testGraphs()
	for _, name := range []string{"hem", "hemseq", "twohop"} {
		mapper, _ := MapperByName(name)
		for gname, g := range graphs {
			m, err := mapper.Map(g, 5, 4)
			if err != nil {
				t.Fatal(err)
			}
			sizes := make([]int, m.NC)
			for _, a := range m.M {
				sizes[a]++
			}
			for a, s := range sizes {
				if s > 2 {
					t.Errorf("%s/%s: aggregate %d has %d vertices (matching allows 2)",
						name, gname, a, s)
				}
			}
			if float64(m.NC) < float64(g.N())/2 {
				t.Errorf("%s/%s: nc=%d below n/2=%d — impossible for a matching",
					name, gname, m.NC, g.N()/2)
			}
		}
	}
}

func TestHECRatioCanExceedTwo(t *testing.T) {
	// On a star, HEC maps every leaf into the hub's aggregate: ratio ~n.
	g := testGraphs()["star30"]
	for _, name := range []string{"hec", "hecseq"} {
		mapper, _ := MapperByName(name)
		m, err := mapper.Map(g, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if m.Ratio() < 5 {
			t.Errorf("%s: star ratio = %v, want aggressive coarsening", name, m.Ratio())
		}
	}
}

func TestHECSeqDeterministic(t *testing.T) {
	g := testGraphs()["rand200"]
	a, _ := HECSeq{}.Map(g, 7, 1)
	b, _ := HECSeq{}.Map(g, 7, 4) // parallelism must not change p=seq algorithm output
	for i := range a.M {
		if a.M[i] != b.M[i] {
			t.Fatalf("HECSeq output differs at %d", i)
		}
	}
	c, _ := HECSeq{}.Map(g, 8, 1)
	same := 0
	for i := range a.M {
		if a.M[i] == c.M[i] {
			same++
		}
	}
	if same == len(a.M) {
		t.Error("different seeds produced identical HECSeq mapping (suspicious)")
	}
}

func TestHECPassStatistics(t *testing.T) {
	g := testGraphs()["rand999"]
	m, err := HEC{}.Map(g, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range m.PassMapped {
		total += c
	}
	if total != int64(g.N()) {
		t.Errorf("pass counts sum to %d, want n=%d", total, g.N())
	}
	if m.Passes < 1 {
		t.Errorf("passes = %d", m.Passes)
	}
	// The paper's observation: the vast majority maps in the first two
	// passes. Assert a loose version.
	var firstTwo int64
	for i := 0; i < len(m.PassMapped) && i < 2; i++ {
		firstTwo += m.PassMapped[i]
	}
	if float64(firstTwo) < 0.8*float64(g.N()) {
		t.Errorf("only %d/%d vertices mapped in two passes", firstTwo, g.N())
	}
}

func TestHEMSeqMatchesAreHeavy(t *testing.T) {
	// For the sequential algorithm with a known seed, each matched pair
	// must be joined by an edge (sanity of the matching).
	g := testGraphs()["grid8x9"]
	m, err := HEMSeq{}.Map(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	members := make(map[int32][]int32)
	for u, a := range m.M {
		members[a] = append(members[a], int32(u))
	}
	for a, mem := range members {
		if len(mem) == 2 && !g.HasEdge(mem[0], mem[1]) {
			t.Errorf("aggregate %d pairs non-adjacent vertices %v", a, mem)
		}
	}
}

func TestMIS2Invariants(t *testing.T) {
	for gname, g := range testGraphs() {
		state := mis2States(g, 17, 4)
		n := g.N()
		// (1) No two MIS vertices within distance two.
		for u := int32(0); int(u) < n; u++ {
			if state[u] != misIn {
				continue
			}
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if state[v] == misIn {
					t.Fatalf("%s: adjacent MIS vertices %d,%d", gname, u, v)
				}
				adj2, _ := g.Neighbors(v)
				for _, w := range adj2 {
					if w != u && state[w] == misIn {
						t.Fatalf("%s: MIS vertices %d,%d at distance 2", gname, u, w)
					}
				}
			}
		}
		// (2) Maximality: every vertex is within distance 2 of the MIS.
		for u := int32(0); int(u) < n; u++ {
			if state[u] == misIn {
				continue
			}
			found := false
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if state[v] == misIn {
					found = true
					break
				}
				adj2, _ := g.Neighbors(v)
				for _, w := range adj2 {
					if state[w] == misIn {
						found = true
						break
					}
				}
				if found {
					break
				}
			}
			if !found {
				t.Fatalf("%s: vertex %d not within distance 2 of the MIS", gname, u)
			}
		}
	}
}

func TestMIS2CoarsensAggressively(t *testing.T) {
	g := testGraphs()["grid8x9"]
	m, err := MIS2{}.Map(g, 23, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Distance-2 aggregation on a grid shrinks by much more than 2x.
	if m.Ratio() < 3 {
		t.Errorf("MIS2 ratio = %v on grid, want aggressive (>3)", m.Ratio())
	}
}

func TestGOSHAvoidsHubHubMerge(t *testing.T) {
	// Two hubs joined by a heavy edge, each with leaves: GOSH must not put
	// both hubs into one aggregate.
	var e []graph.Edge
	e = append(e, graph.Edge{U: 0, V: 1, W: 100})
	for i := int32(2); i < 22; i++ {
		hub := int32(0)
		if i >= 12 {
			hub = 1
		}
		e = append(e, graph.Edge{U: hub, V: i, W: 1})
	}
	g := graph.MustFromEdges(22, e)
	for seed := uint64(0); seed < 10; seed++ {
		m, err := GOSH{}.Map(g, seed, 4)
		if err != nil {
			t.Fatal(err)
		}
		if m.M[0] == m.M[1] {
			t.Fatalf("seed %d: hubs 0 and 1 merged", seed)
		}
	}
}

func TestGOSHHECPrefersHeavyEdges(t *testing.T) {
	// A square with one heavy edge: GOSHHEC (weight-aware) must contract
	// the heavy pair together.
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 100}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}, {U: 3, V: 0, W: 1},
	})
	m, err := GOSHHEC{}.Map(g, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.M[0] != m.M[1] {
		t.Errorf("heavy pair not contracted: %v", m.M)
	}
}

func TestTwoHopMatchesLeaves(t *testing.T) {
	// A star of leaves: HEM matches the hub with one leaf and strands the
	// rest; leaf matching should pair the stranded leaves.
	var e []graph.Edge
	for i := int32(1); i <= 20; i++ {
		e = append(e, graph.Edge{U: 0, V: i, W: 1})
	}
	g := graph.MustFromEdges(21, e)
	m, err := TwoHop{}.Map(g, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	// With leaf matching: hub+1 leaf, and 19 leaves pair into 9 pairs + 1
	// singleton => nc = 11. Plain HEM would give nc = 20.
	if m.NC > 12 {
		t.Errorf("two-hop left nc=%d, leaf matching ineffective (plain HEM gives 20)", m.NC)
	}
}

func TestTwoHopMatchesTwins(t *testing.T) {
	// Bipartite-ish: many degree-2 vertices with identical neighborhoods.
	var e []graph.Edge
	for i := int32(2); i < 20; i++ {
		e = append(e, graph.Edge{U: 0, V: i, W: 1})
		e = append(e, graph.Edge{U: 1, V: i, W: 1})
	}
	g := graph.MustFromEdges(20, e)
	m, err := TwoHop{}.Map(g, 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 18 twins (all adjacent to exactly {0,1}) plus vertices 0,1. HEM
	// matches 0 and 1 with one twin each; remaining 16 twins pair up.
	if m.NC > 12 {
		t.Errorf("twin matching left nc=%d", m.NC)
	}
}

func TestHeavyNeighborsTieBreak(t *testing.T) {
	// Triangle with equal weights: H must contain no cycle longer than 2
	// under the positional tie-break.
	g := graph.MustFromEdges(3, []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 5}, {U: 2, V: 0, W: 5},
	})
	for seed := uint64(0); seed < 20; seed++ {
		perm := par.RandPerm(3, seed, 1)
		pos := par.InversePerm(perm, 1)
		hv := heavyNeighbors(g, pos, 1)
		// Follow pointers from each vertex; must reach a 2-cycle within n
		// steps.
		for s := int32(0); s < 3; s++ {
			a, b := s, hv[s]
			for i := 0; i < 6; i++ {
				if hv[b] == a {
					break
				}
				a, b = b, hv[b]
				if i == 5 {
					t.Fatalf("seed %d: no 2-cycle reached from %d (H=%v)", seed, s, hv)
				}
			}
		}
	}
}

func TestHeavyNeighborsPicksHeaviest(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 9}, {U: 0, V: 3, W: 3},
	})
	pos := []int32{0, 1, 2, 3}
	hv := heavyNeighbors(g, pos, 1)
	if hv[0] != 2 {
		t.Errorf("H[0] = %d, want 2 (heaviest)", hv[0])
	}
	if hv[1] != 0 || hv[2] != 0 || hv[3] != 0 {
		t.Errorf("leaves should point at hub: %v", hv)
	}
}

func TestQuickAllMappersOnRandomGraphs(t *testing.T) {
	mappers := allMappers(t)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%120) + 4
		rng := par.NewRNG(seed)
		var e []graph.Edge
		for i := 0; i < n-1; i++ {
			e = append(e, graph.Edge{U: int32(i), V: int32(i + 1), W: int64(rng.Intn(7) + 1)})
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				e = append(e, graph.Edge{U: int32(u), V: int32(v), W: int64(rng.Intn(7) + 1)})
			}
		}
		g := graph.MustFromEdges(n, e)
		for _, mp := range mappers {
			m, err := mp.Map(g, seed^0xabc, 3)
			if err != nil {
				return false
			}
			if m.Validate(g.N()) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMappingValidateRejectsBadMappings(t *testing.T) {
	m := &Mapping{M: []int32{0, 1, 1}, NC: 2}
	if err := m.Validate(3); err != nil {
		t.Errorf("good mapping rejected: %v", err)
	}
	if (&Mapping{M: []int32{0, 2}, NC: 2}).Validate(2) == nil {
		t.Error("out-of-range id accepted")
	}
	if (&Mapping{M: []int32{0, 0}, NC: 2}).Validate(2) == nil {
		t.Error("non-compact mapping accepted")
	}
	if (&Mapping{M: []int32{0}, NC: 1}).Validate(2) == nil {
		t.Error("short mapping accepted")
	}
	if (&Mapping{M: []int32{-1, 0}, NC: 1}).Validate(2) == nil {
		t.Error("unset entry accepted")
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.MustFromEdges(0, nil)
	single := graph.MustFromEdges(1, nil)
	for _, mapper := range allMappers(t) {
		m, err := mapper.Map(empty, 1, 2)
		if err != nil {
			t.Fatalf("%s on empty: %v", mapper.Name(), err)
		}
		if len(m.M) != 0 {
			t.Errorf("%s on empty: M=%v", mapper.Name(), m.M)
		}
		m, err = mapper.Map(single, 1, 2)
		if err != nil {
			t.Fatalf("%s on single: %v", mapper.Name(), err)
		}
		if m.NC != 1 || m.M[0] != 0 {
			t.Errorf("%s on single vertex: NC=%d M=%v", mapper.Name(), m.NC, m.M)
		}
	}
}
