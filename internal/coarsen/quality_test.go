package coarsen

import (
	"strings"
	"testing"

	"mlcg/internal/graph"
)

func TestQualityReport(t *testing.T) {
	// Path 0-1-2-3 with weights 5,1,5 mapped into {0,1} {2,3}.
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 5},
	})
	m := &Mapping{M: []int32{0, 0, 1, 1}, NC: 2}
	r, err := Quality(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if r.NC != 2 || r.Ratio != 2 {
		t.Errorf("nc=%d ratio=%v", r.NC, r.Ratio)
	}
	if r.IntraWeight != 10 || r.CrossWeight != 1 {
		t.Errorf("intra=%d cross=%d, want 10,1", r.IntraWeight, r.CrossWeight)
	}
	if r.RetainedFrac < 0.9 {
		t.Errorf("retained = %v", r.RetainedFrac)
	}
	if r.MinAgg != 2 || r.MaxAgg != 2 || r.MedianAgg != 2 {
		t.Errorf("agg sizes %d/%d/%d", r.MinAgg, r.MedianAgg, r.MaxAgg)
	}
	if r.SingletonFrac != 0 {
		t.Errorf("singletons = %v", r.SingletonFrac)
	}
	if !strings.Contains(r.String(), "nc=2") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestQualitySingletons(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	m := &Mapping{M: []int32{0, 1, 2}, NC: 3} // identity: all singletons
	r, err := Quality(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if r.SingletonFrac != 1 {
		t.Errorf("singleton frac = %v", r.SingletonFrac)
	}
	if r.RetainedFrac != 0 {
		t.Errorf("retained = %v, want 0", r.RetainedFrac)
	}
}

func TestQualityRejectsBadMapping(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := Quality(g, &Mapping{M: []int32{0, 3}, NC: 2}); err == nil {
		t.Error("bad mapping accepted")
	}
}

func TestHECRetainsHeavyWeight(t *testing.T) {
	// HEC contracts heavy edges, so its retained weight fraction should
	// beat a random matching's on a weighted graph.
	g := testGraphs()["rand999"]
	m, err := HEC{}.Map(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Quality(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if r.RetainedFrac < 0.3 {
		t.Errorf("HEC retained only %.1f%% of edge weight", 100*r.RetainedFrac)
	}
}

func TestVerifyStrictAggregation(t *testing.T) {
	g := testGraphs()["grid8x9"]
	m, err := HEC{}.Map(g, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyStrictAggregation(g, m); err != nil {
		t.Errorf("HEC flagged: %v", err)
	}
	// A deliberately disconnected aggregate must be flagged: map two
	// far-apart grid corners together.
	bad := &Mapping{M: make([]int32, g.N()), NC: int32(g.N() - 1)}
	for i := range bad.M {
		bad.M[i] = int32(i)
	}
	bad.M[g.N()-1] = 0 // corner joins vertex 0's aggregate; not adjacent
	// Compact: id g.N()-1 now unused; rebuild a compact mapping instead.
	for i := range bad.M {
		if bad.M[i] == int32(g.N()-1) {
			bad.M[i] = 0
		}
	}
	if err := VerifyStrictAggregation(g, bad); err == nil {
		t.Error("disconnected aggregate not flagged")
	}
}
