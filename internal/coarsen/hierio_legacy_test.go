package coarsen

import (
	"bufio"
	"encoding/binary"
	"io"
)

// legacyWriteHierarchy emits the legacy "mlcg-hie" container. The
// production writer is gone (hierfmt replaced it); this test-local copy
// exists solely to generate inputs for the read-only shim's tests and fuzz
// seeds until ReadHierarchy is removed.
func legacyWriteHierarchy(w io.Writer, h *Hierarchy) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := binary.Write(bw, binary.LittleEndian, hierMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(h.Graphs))); err != nil {
		return err
	}
	for _, g := range h.Graphs {
		if err := g.WriteBinary(bw); err != nil {
			return err
		}
	}
	for _, m := range h.Maps {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(m))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, m); err != nil {
			return err
		}
	}
	return bw.Flush()
}
