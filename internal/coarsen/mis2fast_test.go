package coarsen

import (
	"math"
	"testing"

	"mlcg/internal/gen"
	"mlcg/internal/graph"
	"mlcg/internal/par"
)

// TestMIS2FastMatchesMIS2 pins the strongest possible quality statement:
// the worklist kernel reaches the exact fixpoint of the full-resweep MIS2
// (same tie-breaking hashes, same elimination rule), so the two mappers
// produce byte-identical mappings on every graph, seed, and worker count.
func TestMIS2FastMatchesMIS2(t *testing.T) {
	for name, g := range testGraphs() {
		for _, seed := range []uint64{1, 42, 20210517} {
			ref, err := MIS2{}.Map(g, seed, 1)
			if err != nil {
				t.Fatalf("%s: mis2: %v", name, err)
			}
			for _, p := range determinismWorkers {
				m, err := MIS2Fast{}.Map(g, seed, p)
				if err != nil {
					t.Fatalf("%s: mis2fast p=%d: %v", name, p, err)
				}
				if err := m.Validate(g.N()); err != nil {
					t.Fatalf("%s: mis2fast p=%d: %v", name, p, err)
				}
				if err := sameMapping(ref, m); err != nil {
					t.Errorf("%s seed=%d p=%d: mis2fast differs from mis2: %v", name, seed, p, err)
				}
			}
		}
	}
}

// TestMIS2FastMatchesMIS2Quality runs both D2-MIS mappers over the
// generator suite and asserts comparable coarsening ratios — the issue's
// acceptance bar. The kernels are exact-equivalent (pinned above on the
// small zoo), so the tolerance is belt-and-braces: any future divergence
// of the worklist variant must stay within 1% coarsening ratio before the
// exact-match test is deliberately relaxed.
func TestMIS2FastMatchesMIS2Quality(t *testing.T) {
	suite := gen.DefaultSuite()
	if testing.Short() {
		var small []gen.Instance
		for _, inst := range suite {
			if inst.Graph.N() <= shortSlowMaxN {
				small = append(small, inst)
			}
		}
		suite = small
	}
	for _, inst := range suite {
		ref, err := MIS2{}.Map(inst.Graph, 20210517, 0)
		if err != nil {
			t.Fatalf("%s: mis2: %v", inst.Name, err)
		}
		m, err := MIS2Fast{}.Map(inst.Graph, 20210517, 0)
		if err != nil {
			t.Fatalf("%s: mis2fast: %v", inst.Name, err)
		}
		if err := m.Validate(inst.Graph.N()); err != nil {
			t.Fatalf("%s: mis2fast: %v", inst.Name, err)
		}
		if rel := math.Abs(m.Ratio()-ref.Ratio()) / ref.Ratio(); rel > 0.01 {
			t.Errorf("%s: coarsening ratio %.3f vs mis2's %.3f (drift %.1f%%)",
				inst.Name, m.Ratio(), ref.Ratio(), rel*100)
		}
		if err := sameMapping(ref, m); err != nil {
			t.Errorf("%s: mis2fast differs from mis2: %v", inst.Name, err)
		}
	}
}

// TestMIS2FastWorkspaceReuse drives the WorkspaceMapper path: one arena
// shared across every level of a hierarchy (and across repeated MapWith
// calls on shrinking graphs) must give the same hierarchy as fresh-scratch
// Map calls.
func TestMIS2FastWorkspaceReuse(t *testing.T) {
	g := bigTestGraph(3000, 9)
	c := &Coarsener{Mapper: MIS2Fast{}, Builder: BuildSort{}, Seed: 7, Workers: 4}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Mapper(MIS2Fast{}).(WorkspaceMapper); !ok {
		t.Fatal("MIS2Fast does not implement WorkspaceMapper")
	}
	// Re-map every level with fresh scratch and compare.
	for i, lg := range h.Graphs[:len(h.Graphs)-1] {
		m, err := MIS2Fast{}.Map(lg, 7+uint64(i), 4)
		if err != nil {
			t.Fatal(err)
		}
		lvl := h.Maps[i]
		if len(m.M) != len(lvl) {
			t.Fatalf("level %d: length %d vs %d", i, len(m.M), len(lvl))
		}
		for u := range lvl {
			if m.M[u] != lvl[u] {
				t.Fatalf("level %d: arena-reuse mapping differs at vertex %d", i, u)
			}
		}
	}
}

// TestMIS2FastAutoBuilder shares one arena between the worklist mapper and
// the adaptive construction policy: the mapper's selection scratch and the
// builders' bin/histogram scratch live in disjoint Workspace fields, so an
// auto-built hierarchy must be byte-identical to a sort-built one.
func TestMIS2FastAutoBuilder(t *testing.T) {
	g := bigTestGraph(3000, 9)
	ref, err := (&Coarsener{Mapper: MIS2Fast{}, Builder: BuildSort{}, Seed: 7, Workers: 4}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	h, err := (&Coarsener{Mapper: MIS2Fast{}, Builder: &AutoConstruct{}, Seed: 7, Workers: 4}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != ref.Levels() {
		t.Fatalf("auto builder: %d levels vs sort's %d", h.Levels(), ref.Levels())
	}
	for i := range ref.Maps {
		if len(h.Maps[i]) != len(ref.Maps[i]) {
			t.Fatalf("level %d: map length %d vs %d", i, len(h.Maps[i]), len(ref.Maps[i]))
		}
		for u := range ref.Maps[i] {
			if h.Maps[i][u] != ref.Maps[i][u] {
				t.Fatalf("level %d: auto-built mapping differs at vertex %d", i, u)
			}
		}
		// Builders may order adjacency differently; the guarantee across
		// builders is the same weighted edge set, not the same byte layout.
		a, b := ref.Graphs[i+1], h.Graphs[i+1]
		if a.N() != b.N() || a.M() != b.M() {
			t.Fatalf("level %d: auto-built graph is %dx%d, sort-built %dx%d",
				i+1, b.N(), b.M(), a.N(), a.M())
		}
		for u := int32(0); u < int32(a.N()); u++ {
			adj, wgt := a.Neighbors(u)
			for k, v := range adj {
				if w, ok := b.EdgeWeight(u, v); !ok || w != wgt[k] {
					t.Fatalf("level %d: edge (%d,%d) weight mismatch between builders", i+1, u, v)
				}
			}
		}
	}
}

// fuzzCSR decodes fuzz bytes into a small valid CSR graph: byte 0 picks
// the vertex count, the rest are (u, v, w) edge triples. Returns nil when
// the bytes do not form a usable graph.
func fuzzCSR(in []byte) *graph.Graph {
	if len(in) < 3 {
		return nil
	}
	n := int(in[0])%48 + 2
	var edges []graph.Edge
	for i := 1; i+2 < len(in) && len(edges) < 512; i += 3 {
		u := int32(int(in[i]) % n)
		v := int32(int(in[i+1]) % n)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: int64(in[i+2]%9) + 1})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		return nil
	}
	return g
}

// FuzzMIS2Fast checks the worklist kernel's defining invariants on
// arbitrary small CSRs: the selected set is distance-2 independent and
// maximal, every vertex is decided, the emitted mapping is a valid compact
// mapping, and selection and mapping are byte-identical to MIS2 at p=1 and
// a parallel worker count.
func FuzzMIS2Fast(f *testing.F) {
	f.Add([]byte{7, 0, 1, 1, 1, 2, 1, 2, 3, 1, 3, 4, 1})  // path
	f.Add([]byte{16, 0, 1, 3, 0, 2, 5, 0, 3, 1, 0, 4, 2}) // star
	f.Add([]byte{2, 0, 1, 1})                             // single edge
	f.Add([]byte{40, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(func(t *testing.T, in []byte) {
		g := fuzzCSR(in)
		if g == nil {
			return
		}
		n := g.N()
		const seed, p = 99, 3

		ws := NewWorkspace()
		s := ws.mis2Scratch(n, par.Workers(p, n))
		key := s.key
		for i := 0; i < n; i++ {
			key[i] = par.Mix64(seed ^ uint64(i)*0x9e3779b97f4a7c15)
		}
		state := mis2FastStates(g, s, p)

		// Every vertex decided; the IN set is a distance-2 independent set.
		inD2 := func(v int32) bool { // v within distance 2 of an IN vertex ≠ v
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if state[u] == misIn {
					return true
				}
				adj2, _ := g.Neighbors(u)
				for _, w := range adj2 {
					if w != v && state[w] == misIn {
						return true
					}
				}
			}
			return false
		}
		for v := int32(0); v < int32(n); v++ {
			switch state[v] {
			case misIn:
				if inD2(v) {
					t.Fatalf("vertex %d: two MIS members within distance 2", v)
				}
			case misOut:
				if !inD2(v) {
					t.Fatalf("vertex %d: eliminated with no MIS member within distance 2 (not maximal)", v)
				}
			default:
				t.Fatalf("vertex %d: left undecided (state %d)", v, state[v])
			}
		}

		// Kernel equivalence and mapping invariants vs MIS2, sequential and
		// parallel.
		refStates := mis2States(g, seed, 1)
		for v := 0; v < n; v++ {
			if refStates[v] != state[v] {
				t.Fatalf("vertex %d: state %d, mis2 has %d", v, state[v], refStates[v])
			}
		}
		ref, err := MIS2{}.Map(g, seed, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, p} {
			m, err := MIS2Fast{}.Map(g, seed, workers)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Validate(n); err != nil {
				t.Fatalf("p=%d: %v", workers, err)
			}
			if err := sameMapping(ref, m); err != nil {
				t.Fatalf("p=%d: mis2fast differs from mis2: %v", workers, err)
			}
		}
	})
}
