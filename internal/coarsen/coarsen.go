// Package coarsen implements the paper's primary contribution: parallel
// fine-to-coarse vertex mapping algorithms and coarse graph construction
// strategies for multilevel graph analysis.
//
// Mapping algorithms (Section III.A):
//
//   - HECSeq   — sequential Heavy Edge Coarsening (Algorithm 3)
//   - HEC      — lock-free parallel HEC (Algorithm 4)
//   - HEC2     — intermediate decoupled parallelization (tech-report Alg 9)
//   - HEC3     — pseudoforest parallelization (Algorithm 5)
//   - HEMSeq   — sequential Heavy Edge Matching (Algorithm 2)
//   - HEM      — parallel HEM with per-pass heavy recomputation (Alg 10)
//   - TwoHop   — mt-Metis style HEM + leaf/twin/relative matching
//   - MIS2     — Bell et al. distance-2 MIS aggregation
//   - MIS2Fast — Kelley–Rajamanickam worklist-driven D2-MIS with fused
//     aggregation (arXiv:2204.02934); same fixpoint as MIS2
//   - GOSH     — degree-ordered aggregation that avoids hub-hub merges
//   - GOSHHEC  — the paper's new weighted GOSH/HEC hybrid (Alg 16)
//
// Construction strategies (Section III.B):
//
//   - BuildSort       — Algorithm 6 with per-vertex sort deduplication and
//     the degree-based one-sided write optimization for skewed graphs
//   - BuildHash       — Algorithm 6 with per-vertex hash-table dedup
//   - BuildSpGEMM     — the P·A·Pᵀ triple product via internal/spmat
//   - BuildGlobalSort — global edge-triple sort baseline
//
// The Coarsener type drives the multilevel loop (Algorithm 1) with the
// paper's cutoff-50 / discard-below-10 rules.
package coarsen

import (
	"fmt"

	"mlcg/internal/graph"
)

// Mapping is the result of one fine-to-coarse mapping step: M[u] is the
// coarse vertex id of fine vertex u, with compact ids in [0, NC).
type Mapping struct {
	M  []int32
	NC int32

	// Passes and PassMapped describe multi-pass algorithms (HEC/HEM):
	// PassMapped[i] is how many vertices became mapped during pass i.
	// The paper reports 99.4% of vertices mapping within two passes.
	Passes     int
	PassMapped []int64
}

// Validate checks that m is a complete, compact mapping for an n-vertex
// fine graph.
func (m *Mapping) Validate(n int) error {
	if len(m.M) != n {
		return fmt.Errorf("coarsen: mapping covers %d vertices, want %d", len(m.M), n)
	}
	if m.NC < 0 || (n > 0 && m.NC == 0) {
		return fmt.Errorf("coarsen: bad coarse count %d", m.NC)
	}
	seen := make([]bool, m.NC)
	for u, a := range m.M {
		if a < 0 || a >= m.NC {
			return fmt.Errorf("coarsen: vertex %d maps to %d, out of [0,%d)", u, a, m.NC)
		}
		seen[a] = true
	}
	for a, ok := range seen {
		if !ok {
			return fmt.Errorf("coarsen: coarse id %d unused (not compact)", a)
		}
	}
	return nil
}

// Ratio returns the coarsening ratio n/nc of this step.
func (m *Mapping) Ratio() float64 {
	if m.NC == 0 {
		return 0
	}
	return float64(len(m.M)) / float64(m.NC)
}

// Mapper computes a fine-to-coarse mapping of g. Implementations must
// return compact coarse ids. seed controls the random ordering; p is the
// worker count (p <= 0 means GOMAXPROCS).
//
// All registered mappers are schedule-independent: for a fixed (graph,
// seed), M and NC are byte-identical at every worker count. Coarse ids are
// the canonical labels produced by canonicalize — aggregates numbered by
// the minimum permutation position of their members (see DESIGN.md,
// "Canonical coarse IDs and cross-worker determinism").
type Mapper interface {
	Name() string
	Map(g *graph.Graph, seed uint64, p int) (*Mapping, error)
}

// Builder constructs the coarse graph from a fine graph and a mapping.
type Builder interface {
	Name() string
	Build(g *graph.Graph, m *Mapping, p int) (*graph.Graph, error)
}

// mapperRegistry is the single roster of mapping algorithms in canonical
// order. Every name-facing surface — MapperByName, MapperNames, AllMappers,
// CLI -mapper help strings, bench sweeps — derives from this list, so a new
// mapper registered here appears everywhere at once and cannot drift.
var mapperRegistry = []Mapper{
	HEC{}, HECSeq{}, HEC2{}, HEC3{}, HEM{}, HEMSeq{}, TwoHop{},
	MIS2{}, MIS2Fast{}, GOSH{}, GOSHHEC{}, Suitor{}, BSuitor{},
}

// AllMappers returns one instance of every registered mapping algorithm in
// canonical registry order. The instances are stateless values and safe to
// share; callers that need a mapper by name should use MapperByName.
func AllMappers() []Mapper {
	out := make([]Mapper, len(mapperRegistry))
	copy(out, mapperRegistry)
	return out
}

// MapperByName returns the mapper registered under name (see MapperNames
// for the roster).
func MapperByName(name string) (Mapper, error) {
	for _, m := range mapperRegistry {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("coarsen: unknown mapper %q", name)
}

// NewMapper is MapperByName under the constructor-style name used by the
// CLIs and examples.
func NewMapper(name string) (Mapper, error) { return MapperByName(name) }

// MapperNames lists the registered mapping algorithms in registry order.
func MapperNames() []string {
	out := make([]string, len(mapperRegistry))
	for i, m := range mapperRegistry {
		out[i] = m.Name()
	}
	return out
}

// builderRegistry pairs every construction strategy's name with its
// factory, in canonical order. Factories (not shared values) because the
// auto builder is a stateful per-hierarchy policy that must be fresh per
// call.
var builderRegistry = []struct {
	name string
	make func() Builder
}{
	{"sort", func() Builder { return BuildSort{} }},
	{"hash", func() Builder { return BuildHash{} }},
	{"spgemm", func() Builder { return BuildSpGEMM{} }},
	{"globalsort", func() Builder { return BuildGlobalSort{} }},
	{"heap", func() Builder { return BuildHeap{} }},
	{"hybrid", func() Builder { return BuildHybrid{} }},
	{"segsort", func() Builder { return BuildSegSort{} }},
	{"auto", func() Builder { return &AutoConstruct{} }},
}

// BuilderByName returns the builder registered under name (see
// BuilderNames). The auto builder is the adaptive per-level policy (a fresh
// stateful instance per call); pass -construct probe on the CLI for its
// probe variant.
func BuilderByName(name string) (Builder, error) {
	for _, b := range builderRegistry {
		if b.name == name {
			return b.make(), nil
		}
	}
	return nil, fmt.Errorf("coarsen: unknown builder %q", name)
}

// BuilderNames lists the registered construction strategies (the fixed
// kernels plus the adaptive auto policy) in registry order.
func BuilderNames() []string {
	out := make([]string, len(builderRegistry))
	for i, b := range builderRegistry {
		out[i] = b.name
	}
	return out
}

const unset = int32(-1)
