package coarsen

import (
	"fmt"
	"math"

	"mlcg/internal/graph"
	"mlcg/internal/par"
	"mlcg/internal/spmat"
)

// ACE implements the weighted-aggregation coarsening of the ACE multiscale
// graph-drawing system (Koren, Carmel, Harel; tech-report Algorithm 8).
// Unlike the strict aggregation schemes, ACE permits many-to-many
// mappings: a representative subset of vertices becomes the coarse set,
// and every remaining vertex is interpolated fractionally across its
// coarse neighbors in proportion to edge weight. The coarse matrix is the
// triple product P·A·Pᵀ with the real-valued interpolation matrix P.
//
// The paper evaluated ACE in preliminary experiments and found that it
// "quickly makes the coarse graphs dense" (Section II) — reproduced here;
// see the tests — and left sparsification for future work, so ACE is not
// part of the Mapper registry (its mapping is not many-to-one). MinFrac
// optionally drops interpolation entries below the given fraction to
// limit densification.
type ACE struct {
	// MinFrac drops interpolation weights below this fraction of a
	// vertex's total coupling (0 keeps everything, as in plain ACE).
	MinFrac float64
}

// ACEResult is the outcome of one ACE coarsening level.
type ACEResult struct {
	// Coarse is the coarse graph. Edge weights are the P·A·Pᵀ values
	// rounded half-up with a floor of 1 (ACE produces real weights; the
	// module's graphs carry integer weights).
	Coarse *graph.Graph
	// P is the nc×n real interpolation matrix (row sums over fine columns
	// are 1 per fine vertex across rows: Pᵀ is row-stochastic).
	P *spmat.CSR
	// CoarseOf maps each coarse vertex to the fine representative it was
	// seeded from.
	CoarseOf []int32
	// IsCoarse flags the representative fine vertices.
	IsCoarse []bool
}

// Coarsen performs one ACE coarsening level.
func (a ACE) Coarsen(g *graph.Graph, seed uint64, p int) (*ACEResult, error) {
	n := g.N()
	if n == 0 {
		return &ACEResult{
			Coarse: g,
			P:      &spmat.CSR{Rowptr: []int64{0}},
		}, nil
	}

	// Representative selection: visit in random order; a vertex joins the
	// coarse set unless it is already strongly coupled to it (has a
	// coarse neighbor). This yields an independent-set-like dominating
	// set, the standard AMG C/F splitting heuristic ACE builds on.
	perm := par.RandPerm(n, seed, p)
	isCoarse := make([]bool, n)
	hasCoarseNbr := make([]bool, n)
	for _, u := range perm {
		if hasCoarseNbr[u] {
			continue
		}
		isCoarse[u] = true
		adj, _ := g.Neighbors(u)
		for _, v := range adj {
			hasCoarseNbr[v] = true
		}
	}
	coarseID := make([]int32, n)
	var coarseOf []int32
	for u := int32(0); int(u) < n; u++ {
		if isCoarse[u] {
			coarseID[u] = int32(len(coarseOf))
			coarseOf = append(coarseOf, u)
		} else {
			coarseID[u] = unset
		}
	}
	nc := int32(len(coarseOf))
	if nc == 0 {
		return nil, fmt.Errorf("coarsen: ACE selected no representatives")
	}

	// Interpolation matrix P (nc×n): a coarse vertex interpolates only
	// from itself; a fine vertex splits across its coarse neighbors
	// proportionally to edge weight.
	type entry struct {
		row int32
		val float64
	}
	cols := make([][]entry, n)
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		if isCoarse[u] {
			cols[u] = []entry{{coarseID[u], 1}}
			return
		}
		adj, wgt := g.Neighbors(u)
		var total float64
		for k, v := range adj {
			if isCoarse[v] {
				total += float64(wgt[k])
			}
		}
		if total == 0 {
			// Selection guarantees a coarse neighbor; guard for
			// degenerate inputs (isolated vertices become their own
			// representative above).
			return
		}
		var es []entry
		for k, v := range adj {
			if !isCoarse[v] {
				continue
			}
			frac := float64(wgt[k]) / total
			if frac < a.MinFrac {
				continue
			}
			es = append(es, entry{coarseID[v], frac})
		}
		// Renormalize after MinFrac dropping.
		var kept float64
		for _, e := range es {
			kept += e.val
		}
		for j := range es {
			es[j].val /= kept
		}
		cols[u] = es
	})

	// Assemble P in CSR (rows = coarse vertices).
	rowCnt := make([]int32, nc)
	for u := 0; u < n; u++ {
		for _, e := range cols[u] {
			rowCnt[e.row]++
		}
	}
	rowptr := make([]int64, nc+1)
	par.PrefixSumInt32(rowptr, rowCnt, 1)
	col := make([]int32, rowptr[nc])
	val := make([]float64, rowptr[nc])
	pos := make([]int64, nc)
	copy(pos, rowptr[:nc])
	for u := 0; u < n; u++ {
		for _, e := range cols[u] {
			col[pos[e.row]] = int32(u)
			val[pos[e.row]] = e.val
			pos[e.row]++
		}
	}
	pm := &spmat.CSR{Rows: nc, Cols: int32(n), Rowptr: rowptr, Col: col, Val: val}

	// Coarse matrix P·A·Pᵀ; strip diagonal, round weights (floor 1).
	amat := spmat.FromGraph(g)
	pt := pm.Transpose(p)
	ac := spmat.SpGEMM(pm, spmat.SpGEMM(amat, pt, p), p)

	var edges []graph.Edge
	for i := int32(0); i < nc; i++ {
		cs, vs := ac.Row(i)
		for k, c := range cs {
			if c <= i { // keep upper triangle once
				continue
			}
			w := int64(math.Round(vs[k]))
			if w < 1 {
				w = 1
			}
			edges = append(edges, graph.Edge{U: i, V: c, W: w})
		}
	}
	cg, err := graph.FromEdges(int(nc), edges)
	if err != nil {
		return nil, fmt.Errorf("coarsen: ACE coarse graph: %w", err)
	}
	// Vertex weights: distribute each fine vertex's weight across its
	// interpolants (fractional weights rounded at the end, preserving the
	// total by assigning the residual to the largest share).
	vw := make([]float64, nc)
	for u := 0; u < n; u++ {
		w := float64(g.VertexWeight(int32(u)))
		for _, e := range cols[u] {
			vw[e.row] += w * e.val
		}
	}
	cg.VWgt = make([]int64, nc)
	var acc int64
	for i, w := range vw {
		cg.VWgt[i] = int64(math.Round(w))
		if cg.VWgt[i] < 1 {
			cg.VWgt[i] = 1
		}
		acc += cg.VWgt[i]
	}
	// Fix rounding drift on the heaviest coarse vertex so the total is
	// conserved exactly.
	if drift := g.TotalVertexWeight() - acc; drift != 0 {
		big := 0
		for i := range cg.VWgt {
			if cg.VWgt[i] > cg.VWgt[big] {
				big = i
			}
		}
		if cg.VWgt[big]+drift >= 1 {
			cg.VWgt[big] += drift
		}
	}
	return &ACEResult{Coarse: cg, P: pm, CoarseOf: coarseOf, IsCoarse: isCoarse}, nil
}

// Interpolate carries a real-valued coarse vector back to the fine level:
// x_fine = Pᵀ · x_coarse. This is the projection step of ACE's multiscale
// eigenvector computation.
func (r *ACEResult) Interpolate(xc []float64) []float64 {
	n := int(r.P.Cols)
	xf := make([]float64, n)
	for i := int32(0); i < r.P.Rows; i++ {
		cs, vs := r.P.Row(i)
		for k, c := range cs {
			xf[c] += vs[k] * xc[i]
		}
	}
	return xf
}
