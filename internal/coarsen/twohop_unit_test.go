package coarsen

import (
	"testing"

	"mlcg/internal/graph"
	"mlcg/internal/par"
)

func TestLeafMatchPairsLeavesOfSameCenter(t *testing.T) {
	// Center 0 with 5 leaves; leaves 1..5 are unmatched, center matched.
	var e []graph.Edge
	for i := int32(1); i <= 5; i++ {
		e = append(e, graph.Edge{U: 0, V: i, W: 1})
	}
	// A second vertex matched to the center so the center is "used".
	e = append(e, graph.Edge{U: 0, V: 6, W: 9})
	g := graph.MustFromEdges(7, e)
	match := make([]int32, 7)
	for i := range match {
		match[i] = unset
	}
	match[0], match[6] = 6, 0
	leafMatch(g, match, 1)
	paired := 0
	for u := int32(1); u <= 5; u++ {
		v := match[u]
		if v == unset {
			continue
		}
		if match[v] != u {
			t.Fatalf("asymmetric match %d <-> %d", u, v)
		}
		if g.Degree(u) != 1 || g.Degree(v) != 1 {
			t.Fatalf("non-leaf matched: %d-%d", u, v)
		}
		paired++
	}
	// 5 leaves: two pairs and one leftover.
	if paired != 4 {
		t.Errorf("paired leaves = %d, want 4", paired)
	}
}

func TestLeafMatchIgnoresMatchedLeaves(t *testing.T) {
	var e []graph.Edge
	for i := int32(1); i <= 4; i++ {
		e = append(e, graph.Edge{U: 0, V: i, W: 1})
	}
	g := graph.MustFromEdges(5, e)
	match := make([]int32, 5)
	for i := range match {
		match[i] = unset
	}
	match[1] = 1 // already a singleton: must not be re-paired
	leafMatch(g, match, 1)
	if match[1] != 1 {
		t.Errorf("matched leaf re-paired: %d", match[1])
	}
}

func TestTwinMatchIdentifiesExactTwins(t *testing.T) {
	// Vertices 3 and 4 have identical neighborhoods {0,1,2}; vertex 5 has
	// {0,1} — not a twin.
	var e []graph.Edge
	for _, v := range []int32{3, 4} {
		for c := int32(0); c < 3; c++ {
			e = append(e, graph.Edge{U: c, V: v, W: 1})
		}
	}
	e = append(e, graph.Edge{U: 0, V: 5, W: 1}, graph.Edge{U: 1, V: 5, W: 1})
	e = append(e, graph.Edge{U: 0, V: 1, W: 1}) // keep base connected
	e = append(e, graph.Edge{U: 1, V: 2, W: 1})
	g := graph.MustFromEdges(6, e)
	match := make([]int32, 6)
	for i := range match {
		match[i] = unset
	}
	// Mark the base vertices matched so only 3,4,5 are candidates.
	match[0], match[1] = 1, 0
	match[2] = 2
	twinMatch(g, match, 1, 64, 7)
	if match[3] != 4 || match[4] != 3 {
		t.Errorf("twins 3,4 not matched: %v", match)
	}
	if match[5] != unset {
		t.Errorf("non-twin 5 matched to %d", match[5])
	}
}

func TestTwinMatchHonorsDegreeCap(t *testing.T) {
	// Twins of degree 3 with cap 2: must not match.
	var e []graph.Edge
	for _, v := range []int32{3, 4} {
		for c := int32(0); c < 3; c++ {
			e = append(e, graph.Edge{U: c, V: v, W: 1})
		}
	}
	e = append(e, graph.Edge{U: 0, V: 1, W: 1})
	g := graph.MustFromEdges(5, e)
	match := make([]int32, 5)
	for i := range match {
		match[i] = unset
	}
	match[0], match[1], match[2] = 1, 0, 2
	twinMatch(g, match, 1, 2, 7)
	if match[3] != unset || match[4] != unset {
		t.Errorf("over-cap twins matched: %v", match)
	}
}

func TestRelativeMatchPairsThroughSharedNeighbor(t *testing.T) {
	// 1 and 2 share neighbor 0 but are not adjacent; both unmatched.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}})
	match := []int32{0, unset, unset}
	relativeMatch(g, match, []int32{0, 1, 2}, 1)
	if match[1] != 2 || match[2] != 1 {
		t.Errorf("relatives not matched: %v", match)
	}
}

func TestRelativeMatchNoDoubleClaim(t *testing.T) {
	// Two centers share candidate vertices; every final match must be
	// symmetric and each vertex matched at most once.
	var e []graph.Edge
	for i := int32(2); i < 12; i++ {
		e = append(e, graph.Edge{U: 0, V: i, W: 1})
		e = append(e, graph.Edge{U: 1, V: i, W: 1})
	}
	g := graph.MustFromEdges(12, e)
	match := make([]int32, 12)
	for i := range match {
		match[i] = unset
	}
	match[0], match[1] = 0, 1
	pos := make([]int32, 12)
	for i := range pos {
		pos[i] = int32(i)
	}
	relativeMatch(g, match, pos, 4)
	for u := int32(2); u < 12; u++ {
		if v := match[u]; v != unset && match[v] != u {
			t.Fatalf("asymmetric match %d -> %d -> %d", u, v, match[v])
		}
	}
}

func TestHeavyUnmatchedNeighbors(t *testing.T) {
	// 0-1 weight 5, 0-2 weight 9 (2 matched): H[0] must pick 1.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 5}, {U: 0, V: 2, W: 9}})
	match := []int32{unset, unset, 2}
	pos := []int32{0, 1, 2}
	h := heavyUnmatchedNeighbors(g, match, pos, 1)
	if h[0] != 1 {
		t.Errorf("H[0] = %d, want 1 (heaviest unmatched)", h[0])
	}
	if h[2] != 2 {
		t.Errorf("matched vertex should self-point, got %d", h[2])
	}
	// All neighbors matched -> self-point.
	match2 := []int32{unset, 1, 2}
	h2 := heavyUnmatchedNeighbors(g, match2, pos, 1)
	if h2[0] != 0 {
		t.Errorf("H[0] = %d, want self", h2[0])
	}
}

func TestAdjacencyHashCollisionFree(t *testing.T) {
	// Distinct small neighborhoods hash distinctly (w.h.p.); identical
	// ones hash identically regardless of storage order.
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 2},
		{U: 1, V: 3, W: 5}, {U: 1, V: 2, W: 1},
		{U: 4, V: 2, W: 1}, {U: 5, V: 2, W: 1}, {U: 4, V: 5, W: 1},
	})
	var buf []int32
	h0 := adjacencyHash(g, 0, &buf, 9)
	h1 := adjacencyHash(g, 1, &buf, 9)
	if h0 != h1 {
		t.Error("identical neighborhoods {2,3} hash differently")
	}
	h4 := adjacencyHash(g, 4, &buf, 9)
	if h4 == h0 {
		t.Error("different neighborhoods collide (improbable)")
	}
}

func TestSameAdjacency(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1},
		{U: 1, V: 3, W: 1}, {U: 1, V: 2, W: 1},
		{U: 4, V: 2, W: 1},
	})
	var b1, b2 []int32
	if !sameAdjacency(g, 0, 1, &b1, &b2) {
		t.Error("twins not recognized")
	}
	if sameAdjacency(g, 0, 4, &b1, &b2) {
		t.Error("non-twins recognized")
	}
}

func TestPackTranslationInHEC(t *testing.T) {
	// Regression guard for the queue-translation logic in HEC.Map: all
	// vertices map even when many passes are needed on a chain.
	g := increasingChain(300)
	m, err := HEC{MaxPasses: 64}.Map(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(g.N()); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range m.PassMapped {
		total += c
	}
	if total != int64(g.N()) {
		t.Errorf("pass counts %d != n %d", total, g.N())
	}
	_ = par.Workers(0, 1) // keep par import for the test file
}
