package coarsen

import (
	"bytes"
	"encoding/binary"
	"testing"

	"mlcg/internal/gen"
	"mlcg/internal/graph"
)

// hierBytes serializes a freshly coarsened hierarchy of g for seeding.
func hierBytes(f *testing.F, g *graph.Graph) []byte {
	f.Helper()
	c := &Coarsener{Mapper: HEC{}, Builder: &AutoConstruct{}, Seed: 11, Workers: 1}
	h, err := c.Run(g)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Write(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzHierIO fuzzes the hierarchy container parser: arbitrary bytes must
// be cleanly rejected or parsed into an internally consistent hierarchy
// that survives a Write/ReadHierarchy round trip bit-for-bit at the graph
// level. Seeds are real serialized hierarchies from the generator suite
// plus truncated/corrupted mutants.
func FuzzHierIO(f *testing.F) {
	grid := hierBytes(f, gen.Grid2D(30, 30))
	f.Add(grid)
	f.Add(hierBytes(f, gen.RMAT(9, 8, 3)))
	f.Add(hierBytes(f, gen.BA(400, 3, 5)))
	f.Add(grid[:len(grid)/2]) // truncated mid-graph
	corrupt := append([]byte(nil), grid...)
	corrupt[24] ^= 0xff // damage the first graph's header
	f.Add(corrupt)
	f.Add([]byte("not a hierarchy"))
	f.Fuzz(func(t *testing.T, in []byte) {
		// Bound harness memory: the first graph's binary header starts at
		// offset 16 (after the hierarchy magic and level count) and claims
		// its n at +8 and nnz at +16, little endian.
		if len(in) >= 40 {
			if binary.LittleEndian.Uint64(in[24:]) > 1<<20 || binary.LittleEndian.Uint64(in[32:]) > 1<<22 {
				t.Skip()
			}
		}
		h, err := ReadHierarchy(bytes.NewReader(in))
		if err != nil {
			return // rejection is fine; crashing is not
		}
		for i, g := range h.Graphs {
			if err := g.Validate(); err != nil {
				t.Fatalf("accepted hierarchy level %d invalid: %v", i, err)
			}
		}
		if len(h.Maps) != len(h.Graphs)-1 {
			t.Fatalf("accepted hierarchy has %d maps for %d graphs", len(h.Maps), len(h.Graphs))
		}
		var buf bytes.Buffer
		if err := h.Write(&buf); err != nil {
			t.Fatal(err)
		}
		h2, err := ReadHierarchy(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(h2.Graphs) != len(h.Graphs) {
			t.Fatalf("round trip level count %d, want %d", len(h2.Graphs), len(h.Graphs))
		}
		for i := range h.Graphs {
			if !graph.Equal(h.Graphs[i], h2.Graphs[i]) {
				t.Fatalf("round trip changed level %d graph", i)
			}
		}
		for i := range h.Maps {
			if len(h.Maps[i]) != len(h2.Maps[i]) {
				t.Fatalf("round trip changed map %d length", i)
			}
			for u := range h.Maps[i] {
				if h.Maps[i][u] != h2.Maps[i][u] {
					t.Fatalf("round trip changed map %d at vertex %d", i, u)
				}
			}
		}
	})
}
