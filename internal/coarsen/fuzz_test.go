package coarsen

import (
	"bytes"
	"encoding/binary"
	"testing"

	"mlcg/internal/gen"
	"mlcg/internal/graph"
)

// hierBytes serializes a freshly coarsened hierarchy of g for seeding.
func hierBytes(f *testing.F, g *graph.Graph) []byte {
	f.Helper()
	c := &Coarsener{Mapper: HEC{}, Builder: &AutoConstruct{}, Seed: 11, Workers: 1}
	h, err := c.Run(g)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := legacyWriteHierarchy(&buf, h); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzHierIO fuzzes the legacy hierarchy container parser (now a read-only
// shim): arbitrary bytes must be cleanly rejected or parsed into an
// internally consistent hierarchy that survives a round trip through the
// test-local legacy writer bit-for-bit at the graph level. Seeds are real
// serialized hierarchies from the generator suite plus truncated/corrupted
// mutants.
func FuzzHierIO(f *testing.F) {
	grid := hierBytes(f, gen.Grid2D(30, 30))
	f.Add(grid)
	f.Add(hierBytes(f, gen.RMAT(9, 8, 3)))
	f.Add(hierBytes(f, gen.BA(400, 3, 5)))
	f.Add(grid[:len(grid)/2]) // truncated mid-graph
	corrupt := append([]byte(nil), grid...)
	corrupt[24] ^= 0xff // damage the first graph's header
	f.Add(corrupt)
	f.Add([]byte("not a hierarchy"))
	// Lying length prefixes: a header that claims a huge level count with no
	// payload, and an embedded graph claiming far more vertices/edges than
	// the stream carries. Chunked allocation in the graph reader means these
	// must fail with short-read errors, not giant make() calls, so the old
	// harness memory guard is gone on purpose.
	lying := func(levels, n, nnz uint64) []byte {
		var b bytes.Buffer
		binary.Write(&b, binary.LittleEndian, uint64(0x6d6c63672d686965))
		binary.Write(&b, binary.LittleEndian, levels)
		binary.Write(&b, binary.LittleEndian, uint64(0x6d6c63672d637372))
		for _, v := range []uint64{n, nnz, 0} {
			binary.Write(&b, binary.LittleEndian, v)
		}
		return b.Bytes()
	}
	f.Add(lying(1<<20, 1<<28, 1<<33)) // max in-range claims, no payload
	f.Add(lying(2, 1<<62, 7))         // n overflows the range check
	f.Add(grid[:18])                  // truncated inside the level count
	f.Fuzz(func(t *testing.T, in []byte) {
		h, err := ReadHierarchy(bytes.NewReader(in))
		if err != nil {
			return // rejection is fine; crashing is not
		}
		for i, g := range h.Graphs {
			if err := g.Validate(); err != nil {
				t.Fatalf("accepted hierarchy level %d invalid: %v", i, err)
			}
		}
		if len(h.Maps) != len(h.Graphs)-1 {
			t.Fatalf("accepted hierarchy has %d maps for %d graphs", len(h.Maps), len(h.Graphs))
		}
		var buf bytes.Buffer
		if err := legacyWriteHierarchy(&buf, h); err != nil {
			t.Fatal(err)
		}
		h2, err := ReadHierarchy(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(h2.Graphs) != len(h.Graphs) {
			t.Fatalf("round trip level count %d, want %d", len(h2.Graphs), len(h.Graphs))
		}
		for i := range h.Graphs {
			if !graph.Equal(h.Graphs[i], h2.Graphs[i]) {
				t.Fatalf("round trip changed level %d graph", i)
			}
		}
		for i := range h.Maps {
			if len(h.Maps[i]) != len(h2.Maps[i]) {
				t.Fatalf("round trip changed map %d length", i)
			}
			for u := range h.Maps[i] {
				if h.Maps[i][u] != h2.Maps[i][u] {
					t.Fatalf("round trip changed map %d at vertex %d", i, u)
				}
			}
		}
	})
}
