package coarsen

import (
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// canonicalize is the shared canonical-renumbering kernel behind the
// schedule-independence guarantee of every mapper (see DESIGN.md,
// "Canonical coarse IDs"): it rewrites an arbitrary complete labeling into
// the unique canonical one, in O(n) work on the existing par primitives.
//
// On entry m[u] holds any label in [0, len(m)) — root vertex ids for most
// mappers, but the labels need not be compact and carry no meaning beyond
// partitioning the vertices. On return every aggregate is relabeled by the
// rank of its minimum pos[] entry (the random-permutation position of its
// earliest member) among all aggregates, so ids are dense in [0, nc) and
// ascend with the permutation order of the aggregates' first members.
// Returns nc.
//
// pos must be a permutation of [0, n); nil means the identity (aggregates
// ordered by minimum member vertex id), which mappers without a random
// visit order (MIS2) use.
//
// The kernel runs a handful of O(n) passes over two int32 scratch arrays:
//
//  1. minPos[a] = min over members u of a of pos[u]. The scatter uses
//     par.AtomicMinInt32, which is order-insensitive (min is commutative),
//     so the array is identical for every worker count and interleaving —
//     the one place the kernel touches an atomic.
//  2. flag[q] = 1 iff q == minPos[a] for some aggregate a. Distinct
//     aggregates have distinct minimum positions (pos is a permutation and
//     aggregates partition the vertices), so every write targets a
//     distinct cell: no atomics.
//  3. An in-place exclusive prefix sum over flag yields, at each flagged
//     position, the number of aggregates whose minimum position is
//     smaller — exactly the canonical id.
//  4. minPos[a] = flag[minPos[a]] rewrites the per-aggregate minimum into
//     the aggregate's canonical id (sequential read/write, one gather),
//     so the final relabel m[u] = minPos[m[u]] is a single race-free
//     gather per vertex instead of two dependent ones.
func canonicalize(m []int32, pos []int32, p int) int32 {
	n := len(m)
	if n == 0 {
		return 0
	}
	// The passes run as range loops (par.For, not the per-element ForEach
	// wrappers): the kernel rides on every mapper's critical path, and at
	// ~n iterations per pass the per-element closure calls would cost more
	// than the passes themselves. Positions are stored biased by -n, i.e.
	// minPos[a] holds minpos(a)-n in [-n, -1] with 0 meaning "no member
	// seen": the zero value make() provides is then already the identity
	// of min, which saves the explicit +inf fill pass.
	span := obs.StartKernel("canonicalize")
	defer span.Done()
	nn := int32(n)
	minPos := make([]int32, n)
	switch {
	case par.Workers(p, n) == 1:
		// Single worker: a plain min computes the identical array without
		// the atomic's load/CAS cost.
		if pos == nil {
			for i := 0; i < n; i++ {
				if a, v := m[i], int32(i)-nn; v < minPos[a] {
					minPos[a] = v
				}
			}
		} else {
			for i := 0; i < n; i++ {
				if a, v := m[i], pos[i]-nn; v < minPos[a] {
					minPos[a] = v
				}
			}
		}
	case pos == nil:
		par.For(n, p, func(_, lo, hi int) {
			var retries int64
			for i := lo; i < hi; i++ {
				retries += par.AtomicMinInt32Retries(&minPos[m[i]], int32(i)-nn)
			}
			obs.Add(obs.CtrCASRetry, retries)
		})
	default:
		par.For(n, p, func(_, lo, hi int) {
			var retries int64
			for i := lo; i < hi; i++ {
				retries += par.AtomicMinInt32Retries(&minPos[m[i]], pos[i]-nn)
			}
			obs.Add(obs.CtrCASRetry, retries)
		})
	}
	flag := make([]int32, n) // zeroed by make
	par.For(n, p, func(_, lo, hi int) {
		for a := lo; a < hi; a++ {
			if v := minPos[a]; v < 0 {
				flag[v+nn] = 1
			}
		}
	})
	nc := par.ExclusiveScanInt32(flag, flag, p)
	par.For(n, p, func(_, lo, hi int) {
		for a := lo; a < hi; a++ {
			if v := minPos[a]; v < 0 {
				minPos[a] = flag[v+nn]
			}
		}
	})
	par.For(n, p, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			m[i] = minPos[m[i]]
		}
	})
	return nc
}
