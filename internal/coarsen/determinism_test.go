package coarsen

import (
	"testing"

	"mlcg/internal/graph"
)

// TestSingleWorkerDeterminism pins the reproducibility guarantee from
// DESIGN.md: with Workers == 1 and a fixed seed, every mapper produces
// bit-identical mappings run over run. (Parallel runs relax ordering by
// design, as the paper discusses.)
func TestSingleWorkerDeterminism(t *testing.T) {
	g := bigTestGraph(1500, 9)
	for _, mapper := range allMappers(t) {
		a, err := mapper.Map(g, 42, 1)
		if err != nil {
			t.Fatalf("%s: %v", mapper.Name(), err)
		}
		b, err := mapper.Map(g, 42, 1)
		if err != nil {
			t.Fatalf("%s: %v", mapper.Name(), err)
		}
		if a.NC != b.NC {
			t.Errorf("%s: nc differs %d vs %d", mapper.Name(), a.NC, b.NC)
			continue
		}
		for i := range a.M {
			if a.M[i] != b.M[i] {
				t.Errorf("%s: mapping differs at vertex %d", mapper.Name(), i)
				break
			}
		}
	}
}

// TestSingleWorkerBuilderDeterminism does the same for every builder.
func TestSingleWorkerBuilderDeterminism(t *testing.T) {
	g := bigTestGraph(1000, 11)
	m, err := HEC{}.Map(g, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range BuilderNames() {
		b, _ := BuilderByName(name)
		x, err := b.Build(g, m, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y, err := b.Build(g, m, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !graph.Equal(x, y) {
			t.Errorf("%s: nondeterministic at p=1", name)
		}
	}
}

// TestSeedSensitivity verifies the opposite: different seeds give
// different mappings (the random ordering actually randomizes).
func TestSeedSensitivity(t *testing.T) {
	g := bigTestGraph(1500, 13)
	for _, mapper := range allMappers(t) {
		a, _ := mapper.Map(g, 1, 1)
		b, _ := mapper.Map(g, 2, 1)
		same := 0
		for i := range a.M {
			if b.M != nil && i < len(b.M) && a.M[i] == b.M[i] {
				same++
			}
		}
		// MIS2/GOSH-style algorithms keyed on structure more than order
		// may coincide substantially, but full coincidence across 1500
		// vertices would mean the seed is ignored. GOSH orders primarily
		// by degree, so allow it (and the hybrid) near-coincidence.
		if same == len(a.M) && mapper.Name() != "gosh" && mapper.Name() != "goshhec" {
			t.Errorf("%s: seeds 1 and 2 give identical mappings", mapper.Name())
		}
	}
}
