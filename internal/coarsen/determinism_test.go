package coarsen

import (
	"fmt"
	"testing"

	"mlcg/internal/gen"
)

// determinismWorkers is the worker grid every cross-worker test runs on.
var determinismWorkers = []int{1, 2, 4, 8}

func sameMapping(a, b *Mapping) error {
	if a.NC != b.NC {
		return fmt.Errorf("nc differs: %d vs %d", a.NC, b.NC)
	}
	if len(a.M) != len(b.M) {
		return fmt.Errorf("length differs: %d vs %d", len(a.M), len(b.M))
	}
	for i := range a.M {
		if a.M[i] != b.M[i] {
			return fmt.Errorf("label differs at vertex %d: %d vs %d", i, a.M[i], b.M[i])
		}
	}
	return nil
}

// TestMapperDeterminismAcrossWorkers pins the canonical-ID guarantee from
// DESIGN.md: for a fixed (graph, seed), every mapper produces byte-identical
// M and NC at every worker count. (This test used to cover only Workers == 1;
// parallel runs were allowed to drift before the mappers moved to
// deterministic reservations and canonical renumbering.)
func TestMapperDeterminismAcrossWorkers(t *testing.T) {
	g := bigTestGraph(1500, 9)
	for _, mapper := range allMappers(t) {
		t.Run(mapper.Name(), func(t *testing.T) {
			ref, err := mapper.Map(g, 42, determinismWorkers[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Validate(g.N()); err != nil {
				t.Fatal(err)
			}
			for _, p := range determinismWorkers[1:] {
				m, err := mapper.Map(g, 42, p)
				if err != nil {
					t.Fatalf("p=%d: %v", p, err)
				}
				if err := sameMapping(ref, m); err != nil {
					t.Errorf("p=%d: %v", p, err)
				}
			}
			// Run-to-run repeatability at a parallel worker count.
			a, err := mapper.Map(g, 42, 4)
			if err != nil {
				t.Fatal(err)
			}
			b, err := mapper.Map(g, 42, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := sameMapping(a, b); err != nil {
				t.Errorf("p=4 run-to-run: %v", err)
			}
		})
	}
}

// TestBuilderDeterminismAcrossWorkers does the same for every builder: the
// constructed CSR must be verbatim identical at every worker count.
func TestBuilderDeterminismAcrossWorkers(t *testing.T) {
	g := bigTestGraph(1000, 11)
	m, err := HEC{}.Map(g, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range BuilderNames() {
		t.Run(name, func(t *testing.T) {
			b, _ := BuilderByName(name)
			ref, err := b.Build(g, m, determinismWorkers[0])
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range determinismWorkers[1:] {
				x, err := b.Build(g, m, p)
				if err != nil {
					t.Fatalf("p=%d: %v", p, err)
				}
				if !rawEqual(ref, x) {
					t.Errorf("p=%d: coarse CSR differs from p=1", p)
				}
			}
		})
	}
}

// TestSeedSensitivity verifies the opposite: different seeds give
// different mappings (the random ordering actually randomizes).
func TestSeedSensitivity(t *testing.T) {
	g := bigTestGraph(1500, 13)
	for _, mapper := range allMappers(t) {
		a, _ := mapper.Map(g, 1, 1)
		b, _ := mapper.Map(g, 2, 1)
		same := 0
		for i := range a.M {
			if b.M != nil && i < len(b.M) && a.M[i] == b.M[i] {
				same++
			}
		}
		// MIS2/GOSH-style algorithms keyed on structure more than order
		// may coincide substantially, but full coincidence across 1500
		// vertices would mean the seed is ignored. GOSH orders primarily
		// by degree, so allow it (and the hybrid) near-coincidence.
		if same == len(a.M) && mapper.Name() != "gosh" && mapper.Name() != "goshhec" {
			t.Errorf("%s: seeds 1 and 2 give identical mappings", mapper.Name())
		}
	}
}

// hierarchyMappers are the parallel mappers covered by the end-to-end
// determinism test (the sequential reference mappers are covered implicitly:
// they ignore p beyond the canonical relabel, which the kernel test pins).
var hierarchyMappers = []string{
	"hec", "hec2", "hec3", "hem", "twohop", "mis2", "mis2fast", "gosh",
	"goshhec", "suitor", "bsuitor",
}

// shortSlowMaxN gates the slowest mappers in -short mode: instead of a
// blanket cut to the first (regular) instance, they run every instance at
// or below this vertex count. The threshold keeps the skewed instance of
// the short suite (ppa, n=6000) in play, so short CI still exercises the
// full-resweep D2-MIS mapper in the degree regime where it is weakest.
const shortSlowMaxN = 10000

// TestHierarchyDeterminismAcrossWorkers is the end-to-end guarantee: running
// the full multilevel loop on the generator suite yields byte-identical
// hierarchies — every coarse CSR, every mapping array, every per-level stat —
// for every worker count. This is what makes parallel coarsening results
// reproducible and debuggable across machines.
func TestHierarchyDeterminismAcrossWorkers(t *testing.T) {
	suite := gen.DefaultSuite()
	if testing.Short() {
		// A regular and a skewed instance keep the short run fast while
		// still exercising both degree regimes.
		suite = []gen.Instance{suite[0], suite[len(suite)-1]}
	}
	for _, name := range hierarchyMappers {
		mapper, err := MapperByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			insts := suite
			if testing.Short() && (name == "suitor" || name == "bsuitor" || name == "mis2") {
				var small []gen.Instance
				for _, inst := range insts {
					if inst.Graph.N() <= shortSlowMaxN {
						small = append(small, inst)
					}
				}
				insts = small
			}
			for _, inst := range insts {
				var ref *Hierarchy
				for _, p := range determinismWorkers {
					c := &Coarsener{Mapper: mapper, Builder: BuildSort{}, Seed: 20210517, Workers: p}
					h, err := c.Run(inst.Graph)
					if err != nil {
						t.Fatalf("%s p=%d: %v", inst.Name, p, err)
					}
					if ref == nil {
						ref = h
						continue
					}
					compareHierarchies(t, inst.Name, p, ref, h)
				}
			}
		})
	}
}

// compareHierarchies asserts h is byte-identical to ref.
func compareHierarchies(t *testing.T, inst string, p int, ref, h *Hierarchy) {
	t.Helper()
	if len(ref.Graphs) != len(h.Graphs) || len(ref.Maps) != len(h.Maps) {
		t.Errorf("%s p=%d: shape differs: %d/%d graphs, %d/%d maps",
			inst, p, len(h.Graphs), len(ref.Graphs), len(h.Maps), len(ref.Maps))
		return
	}
	for i := range ref.Graphs {
		if !rawEqual(ref.Graphs[i], h.Graphs[i]) {
			t.Errorf("%s p=%d: level-%d CSR differs", inst, p, i)
			return
		}
	}
	for i := range ref.Maps {
		a, b := ref.Maps[i], h.Maps[i]
		if len(a) != len(b) {
			t.Errorf("%s p=%d: level-%d map length differs", inst, p, i)
			return
		}
		for u := range a {
			if a[u] != b[u] {
				t.Errorf("%s p=%d: level-%d map differs at vertex %d", inst, p, i, u)
				return
			}
		}
	}
	if len(ref.Stats) != len(h.Stats) {
		t.Errorf("%s p=%d: stats length differs", inst, p)
		return
	}
	for i := range ref.Stats {
		a, b := ref.Stats[i], h.Stats[i]
		if a.N != b.N || a.NC != b.NC || a.M != b.M || a.Passes != b.Passes {
			t.Errorf("%s p=%d: level-%d stats differ: n=%d/%d nc=%d/%d m=%d/%d passes=%d/%d",
				inst, p, i, b.N, a.N, b.NC, a.NC, b.M, a.M, b.Passes, a.Passes)
			return
		}
		if len(a.PassMapped) != len(b.PassMapped) {
			t.Errorf("%s p=%d: level-%d pass counts differ in length", inst, p, i)
			return
		}
		for j := range a.PassMapped {
			if a.PassMapped[j] != b.PassMapped[j] {
				t.Errorf("%s p=%d: level-%d pass %d mapped %d, want %d",
					inst, p, i, j, b.PassMapped[j], a.PassMapped[j])
				return
			}
		}
	}
	if ref.Stalled != h.Stalled {
		t.Errorf("%s p=%d: stalled %v, want %v", inst, p, h.Stalled, ref.Stalled)
	}
}

// TestHECCapDeterminismAcrossWorkers covers the cap-admission path, which
// takes a different (sorted greedy) route than the uncapped catch-up wave.
func TestHECCapDeterminismAcrossWorkers(t *testing.T) {
	g := bigTestGraph(2000, 3)
	var ref *Mapping
	for _, p := range determinismWorkers {
		m, err := HEC{MaxAggWeight: 16}.Map(g, 5, p)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = m
			continue
		}
		if err := sameMapping(ref, m); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
	}
}
