package coarsen

import (
	"testing"

	"mlcg/internal/graph"
)

func TestSuitorIsMatching(t *testing.T) {
	for gname, g := range testGraphs() {
		for _, p := range []int{1, 4} {
			m, err := Suitor{}.Map(g, 7, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Validate(g.N()); err != nil {
				t.Fatalf("%s p=%d: %v", gname, p, err)
			}
			members := make(map[int32][]int32)
			for u, a := range m.M {
				members[a] = append(members[a], int32(u))
			}
			for a, mem := range members {
				if len(mem) > 2 {
					t.Fatalf("%s p=%d: aggregate %d has %d members", gname, p, a, len(mem))
				}
				if len(mem) == 2 && !g.HasEdge(mem[0], mem[1]) {
					t.Fatalf("%s p=%d: matched non-adjacent pair %v", gname, p, mem)
				}
			}
		}
	}
}

func TestSuitorHalfApproximation(t *testing.T) {
	// Suitor yields a 1/2-approximate maximum weight matching. Check the
	// guarantee against the exact optimum on small graphs via brute force.
	graphs := map[string]*graph.Graph{
		"weightedPath": graph.MustFromEdges(6, []graph.Edge{
			{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 5}, {U: 2, V: 3, W: 4},
			{U: 3, V: 4, W: 7}, {U: 4, V: 5, W: 2},
		}),
		"triangle+": graph.MustFromEdges(5, []graph.Edge{
			{U: 0, V: 1, W: 9}, {U: 1, V: 2, W: 8}, {U: 2, V: 0, W: 7},
			{U: 2, V: 3, W: 5}, {U: 3, V: 4, W: 6},
		}),
	}
	for name, g := range graphs {
		opt := bruteForceMaxMatching(g)
		m, err := Suitor{}.Map(g, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := matchingWeight(g, m)
		if 2*got < opt {
			t.Errorf("%s: suitor weight %d below half of optimum %d", name, got, opt)
		}
	}
}

// matchingWeight sums the weight of matched edges in a pair mapping.
func matchingWeight(g *graph.Graph, m *Mapping) int64 {
	members := make(map[int32][]int32)
	for u, a := range m.M {
		members[a] = append(members[a], int32(u))
	}
	var total int64
	for _, mem := range members {
		if len(mem) == 2 {
			if w, ok := g.EdgeWeight(mem[0], mem[1]); ok {
				total += w
			}
		}
	}
	return total
}

// bruteForceMaxMatching enumerates all matchings of a small graph.
func bruteForceMaxMatching(g *graph.Graph) int64 {
	type edge struct {
		u, v int32
		w    int64
	}
	var edges []edge
	for u := int32(0); u < g.NumV; u++ {
		adj, wgt := g.Neighbors(u)
		for k, v := range adj {
			if u < v {
				edges = append(edges, edge{u, v, wgt[k]})
			}
		}
	}
	var best int64
	var rec func(i int, used uint32, w int64)
	rec = func(i int, used uint32, w int64) {
		if w > best {
			best = w
		}
		for j := i; j < len(edges); j++ {
			e := edges[j]
			if used&(1<<uint(e.u)) == 0 && used&(1<<uint(e.v)) == 0 {
				rec(j+1, used|1<<uint(e.u)|1<<uint(e.v), w+e.w)
			}
		}
	}
	rec(0, 0, 0)
	return best
}

func TestSuitorPicksHeaviestOnStar(t *testing.T) {
	// On a star with distinct weights, the matching must take the single
	// heaviest edge.
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 9}, {U: 0, V: 3, W: 3}, {U: 0, V: 4, W: 2},
	})
	m, err := Suitor{}.Map(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.M[0] != m.M[2] {
		t.Errorf("heaviest edge {0,2} not matched: %v", m.M)
	}
	if m.NC != 4 { // pair + three singletons
		t.Errorf("nc = %d, want 4", m.NC)
	}
}

func TestSuitorSequentialDeterministic(t *testing.T) {
	g := testGraphs()["rand999"]
	a, _ := Suitor{}.Map(g, 5, 1)
	b, _ := Suitor{}.Map(g, 5, 1)
	for i := range a.M {
		if a.M[i] != b.M[i] {
			t.Fatalf("sequential suitor nondeterministic at %d", i)
		}
	}
}

func TestSuitorInMultilevelDriver(t *testing.T) {
	g := bigTestGraph(2000, 3)
	c := &Coarsener{Mapper: Suitor{}, Builder: BuildSort{}, Seed: 1, Workers: 2}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() < 3 {
		t.Errorf("levels = %d", h.Levels())
	}
	// Matching-based: per-level ratio at most 2.
	for i, st := range h.Stats {
		if float64(st.N)/float64(st.NC) > 2.0001 {
			t.Errorf("level %d ratio %v exceeds 2", i, float64(st.N)/float64(st.NC))
		}
	}
}
