package coarsen

import (
	"fmt"
	"sync/atomic"

	"mlcg/internal/graph"
	"mlcg/internal/par"
)

// DefaultSkewThreshold is the Δ/(2m/n) ratio above which the vertex-centric
// builders switch on the degree-based one-sided deduplication optimization
// (Section III.B: "we use the ratio of maximum degree to average vertex
// degree to estimate the skew, and selectively invoke this optimization").
const DefaultSkewThreshold = 8.0

// sideMode selects how the vertex-centric builders place fine edges into
// coarse-vertex bins before deduplication.
type sideMode int

const (
	// sideAuto applies the one-sided optimization only when the fine
	// graph's degree skew exceeds the threshold.
	sideAuto sideMode = iota
	// sideBoth always writes each fine directed edge at its own endpoint
	// (the unoptimized Algorithm 6).
	sideBoth
	// sideOne always writes each fine undirected edge once, at the
	// endpoint whose coarse vertex has the smaller estimated degree.
	sideOne
)

// BuildSort is the paper's default construction (Algorithm 6 with
// sort-based DEDUPWITHWTS): bin edges by coarse source vertex, sort each
// bin by coarse neighbor id, and merge duplicates by summing weights. On
// skewed graphs the one-sided write optimization stores each undirected
// edge only at the endpoint with the smaller estimated coarse degree,
// halving (often much more than halving, on hub-heavy bins) the sort work;
// a transpose pass then restores symmetry.
type BuildSort struct {
	// SkewThreshold overrides DefaultSkewThreshold; negative disables the
	// one-sided optimization entirely, zero means the default.
	SkewThreshold float64
	// ForceOneSided applies the optimization regardless of skew (used by
	// the ablation benchmarks).
	ForceOneSided bool
	// PreDedup additionally deduplicates the coarse adjacencies of each
	// fine vertex before scattering (Section III.B names this as an
	// additional future-work optimization): a fine vertex with many
	// neighbors inside the same target aggregate then contributes one
	// merged entry instead of one entry per edge.
	PreDedup bool
}

// Name implements Builder.
func (BuildSort) Name() string { return "sort" }

// Build implements Builder.
func (b BuildSort) Build(g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	if b.PreDedup {
		return buildVertexCentricPre(g, m, p, b.mode(g), dedupSortSegments)
	}
	return buildVertexCentric(g, m, p, b.mode(g), dedupSortSegments)
}

func (b BuildSort) mode(g *graph.Graph) sideMode {
	if b.ForceOneSided {
		return sideOne
	}
	th := b.SkewThreshold
	if th == 0 {
		th = DefaultSkewThreshold
	}
	if th < 0 {
		return sideBoth
	}
	if g.DegreeSkew() >= th {
		return sideOne
	}
	return sideBoth
}

// BuildHash is Algorithm 6 with hash-based DEDUPWITHWTS: per-vertex open
// addressing tables accumulate (neighbor, weight) pairs. Preferable when
// the duplication factor is high; the sort wins when duplication is near
// one (Section III.B).
type BuildHash struct {
	SkewThreshold float64
	ForceOneSided bool
}

// Name implements Builder.
func (BuildHash) Name() string { return "hash" }

// Build implements Builder.
func (b BuildHash) Build(g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	mode := BuildSort{SkewThreshold: b.SkewThreshold, ForceOneSided: b.ForceOneSided}.mode(g)
	return buildVertexCentric(g, m, p, mode, dedupHashSegments)
}

// dedupFunc deduplicates every coarse vertex's segment in place: for each
// vertex a, entries [r[a], r[a]+cnt[a]) of f/x are rewritten so the first
// newCnt[a] entries hold distinct neighbor ids with summed weights.
type dedupFunc func(f []int32, x []int64, r []int64, cnt []int32, p int) (newCnt []int32)

// buildVertexCentric is the shared six-step skeleton of Algorithm 6.
func buildVertexCentric(g *graph.Graph, m *Mapping, p int, mode sideMode, dedup dedupFunc) (*graph.Graph, error) {
	n := g.N()
	if err := m.Validate(n); err != nil {
		return nil, err
	}
	nc := int(m.NC)
	mv := m.M

	// Aggregate vertex weights.
	vwgt := make([]int64, nc)
	par.ForEachChunked(n, p, 1024, func(i int) {
		atomic.AddInt64(&vwgt[mv[i]], g.VertexWeight(int32(i)))
	})

	// Step 1: upper-bound coarse degrees C' (both-sided counts).
	cEst := make([]int32, nc)
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		a := mv[u]
		adj, _ := g.Neighbors(u)
		for _, v := range adj {
			if mv[v] != a {
				atomic.AddInt32(&cEst[a], 1)
			}
		}
	})

	oneSided := mode == sideOne
	// writeHere reports whether the directed fine edge (u, v) is placed in
	// the bin of M[u]. One-sided mode picks the endpoint whose coarse
	// vertex has the smaller estimated degree, tie-broken by fine id
	// (Algorithm 6, line 9): exactly one of (u,v) / (v,u) qualifies.
	writeHere := func(u, v int32, a, bb int32) bool {
		if !oneSided {
			return true
		}
		if cEst[a] != cEst[bb] {
			return cEst[a] < cEst[bb]
		}
		return u < v
	}

	// Step 2: exact bin sizes C.
	var cnt []int32
	if oneSided {
		cnt = make([]int32, nc)
		par.ForEachChunked(n, p, 256, func(i int) {
			u := int32(i)
			a := mv[u]
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				bb := mv[v]
				if bb != a && writeHere(u, v, a, bb) {
					atomic.AddInt32(&cnt[a], 1)
				}
			}
		})
	} else {
		cnt = cEst
	}

	// Step 3: offsets.
	r := make([]int64, nc+1)
	total := par.PrefixSumInt32(r, cnt, p)

	// Step 4: scatter adjacencies and weights into the bins.
	f := make([]int32, total)
	x := make([]int64, total)
	pos := make([]int32, nc)
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		a := mv[u]
		adj, wgt := g.Neighbors(u)
		for k, v := range adj {
			bb := mv[v]
			if bb == a || !writeHere(u, v, a, bb) {
				continue
			}
			l := r[a] + int64(atomic.AddInt32(&pos[a], 1)-1)
			f[l] = bb
			x[l] = wgt[k]
		}
	})

	// Step 5: per-vertex deduplication.
	newCnt := dedup(f, x, r, cnt, p)

	// Step 6: final CSR, with the transpose merge in one-sided mode.
	var cg *graph.Graph
	if oneSided {
		cg = symmetrizeDeduped(f, x, r, newCnt, nc, p, dedup)
	} else {
		cg = compactDeduped(f, x, r, newCnt, nc, p)
	}
	cg.VWgt = vwgt
	return cg, nil
}

// compactDeduped packs the dedup'd segments into a tight CSR graph.
func compactDeduped(f []int32, x []int64, r []int64, newCnt []int32, nc, p int) *graph.Graph {
	xadj := make([]int64, nc+1)
	par.PrefixSumInt32(xadj, newCnt, p)
	adj := make([]int32, xadj[nc])
	wgt := make([]int64, xadj[nc])
	par.ForEachChunked(nc, p, 256, func(a int) {
		src := r[a]
		dst := xadj[a]
		for k := int32(0); k < newCnt[a]; k++ {
			adj[dst] = f[src]
			wgt[dst] = x[src]
			src++
			dst++
		}
	})
	return &graph.Graph{NumV: int32(nc), Xadj: xadj, Adj: adj, Wgt: wgt}
}

// symmetrizeDeduped implements GRAPHCONSWITHTRANS (Algorithm 6, line 22):
// the one-sided dedup'd lists contain each coarse edge in at least one
// direction with possibly split weights; emit both directions of every
// entry, then dedup once more (segments are now at most twice the final
// degree) and compact.
func symmetrizeDeduped(f []int32, x []int64, r []int64, newCnt []int32, nc, p int, dedup dedupFunc) *graph.Graph {
	cnt2 := make([]int32, nc)
	par.ForEachChunked(nc, p, 256, func(a int) {
		atomic.AddInt32(&cnt2[a], newCnt[a])
		for k := int64(0); k < int64(newCnt[a]); k++ {
			atomic.AddInt32(&cnt2[f[r[a]+k]], 1)
		}
	})
	r2 := make([]int64, nc+1)
	total := par.PrefixSumInt32(r2, cnt2, p)
	f2 := make([]int32, total)
	x2 := make([]int64, total)
	pos := make([]int32, nc)
	par.ForEachChunked(nc, p, 256, func(a int) {
		for k := int64(0); k < int64(newCnt[a]); k++ {
			b := f[r[a]+k]
			w := x[r[a]+k]
			la := r2[a] + int64(atomic.AddInt32(&pos[a], 1)-1)
			f2[la] = b
			x2[la] = w
			lb := r2[b] + int64(atomic.AddInt32(&pos[b], 1)-1)
			f2[lb] = int32(a)
			x2[lb] = w
		}
	})
	newCnt2 := dedup(f2, x2, r2, cnt2, p)
	return compactDeduped(f2, x2, r2, newCnt2, nc, p)
}

// dedupSortSegments sorts each segment by neighbor id and merges equal
// keys by summing weights (the bitonic/radix team sort of the paper,
// realized as insertion sort for short lists and LSD radix above).
func dedupSortSegments(f []int32, x []int64, r []int64, cnt []int32, p int) []int32 {
	nc := len(cnt)
	newCnt := make([]int32, nc)
	par.ForEachChunked(nc, p, 64, func(a int) {
		lo := r[a]
		hi := lo + int64(cnt[a])
		seg := f[lo:hi]
		wseg := x[lo:hi]
		par.SortPairsInt32(seg, wseg)
		var w int32 // write cursor
		for i := 0; i < len(seg); i++ {
			if w > 0 && seg[w-1] == seg[i] {
				wseg[w-1] += wseg[i]
			} else {
				seg[w] = seg[i]
				wseg[w] = wseg[i]
				w++
			}
		}
		newCnt[a] = w
	})
	return newCnt
}

// dedupHashSegments deduplicates each segment with a per-worker open
// addressing accumulator, then writes the distinct pairs back to the
// segment prefix (unsorted).
func dedupHashSegments(f []int32, x []int64, r []int64, cnt []int32, p int) []int32 {
	nc := len(cnt)
	newCnt := make([]int32, nc)
	par.ForChunked(nc, p, 64, func(_, aLo, aHi int) {
		ht := newWeightTable(64)
		for a := aLo; a < aHi; a++ {
			lo := r[a]
			hi := lo + int64(cnt[a])
			if lo == hi {
				continue
			}
			ht.reset(int(hi - lo))
			for i := lo; i < hi; i++ {
				ht.add(f[i], x[i])
			}
			w := lo
			for s := 0; s < ht.cap; s++ {
				if ht.keys[s] != unset {
					f[w] = ht.keys[s]
					x[w] = ht.vals[s]
					w++
				}
			}
			newCnt[a] = int32(w - lo)
		}
	})
	return newCnt
}

// weightTable is an int32 -> int64 open-addressing accumulator sized to
// the current segment.
type weightTable struct {
	keys []int32
	vals []int64
	cap  int
}

func newWeightTable(capacity int) *weightTable {
	t := &weightTable{}
	t.grow(capacity)
	return t
}

func (t *weightTable) grow(capacity int) {
	c := 16
	for c < 2*capacity {
		c *= 2
	}
	t.cap = c
	t.keys = make([]int32, c)
	t.vals = make([]int64, c)
	for i := range t.keys {
		t.keys[i] = unset
	}
}

// reset prepares the table for a segment of the given size.
func (t *weightTable) reset(size int) {
	if 2*size > t.cap {
		t.grow(size)
		return
	}
	for i := range t.keys {
		t.keys[i] = unset
	}
}

func (t *weightTable) add(k int32, v int64) {
	mask := uint32(t.cap - 1)
	s := (uint32(k) * 2654435761) & mask
	for {
		if t.keys[s] == k {
			t.vals[s] += v
			return
		}
		if t.keys[s] == unset {
			t.keys[s] = k
			t.vals[s] = v
			return
		}
		s = (s + 1) & mask
	}
}

// checkCoarse validates invariants shared by all builders; used in tests
// via buildAndCheck but cheap enough for defensive use.
func checkCoarse(fine, coarse *graph.Graph, m *Mapping) error {
	if coarse.NumV != m.NC {
		return fmt.Errorf("coarsen: coarse graph has %d vertices, mapping says %d", coarse.NumV, m.NC)
	}
	var fineVW, coarseVW int64
	fineVW = fine.TotalVertexWeight()
	coarseVW = coarse.TotalVertexWeight()
	if fineVW != coarseVW {
		return fmt.Errorf("coarsen: vertex weight not conserved: fine %d coarse %d", fineVW, coarseVW)
	}
	return nil
}
