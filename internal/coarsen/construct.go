package coarsen

import (
	"fmt"

	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// DefaultSkewThreshold is the Δ/(2m/n) ratio above which the vertex-centric
// builders switch on the degree-based one-sided deduplication optimization
// (Section III.B: "we use the ratio of maximum degree to average vertex
// degree to estimate the skew, and selectively invoke this optimization").
const DefaultSkewThreshold = 8.0

// sideMode selects how the vertex-centric builders place fine edges into
// coarse-vertex bins before deduplication.
type sideMode int

const (
	// sideAuto applies the one-sided optimization only when the fine
	// graph's degree skew exceeds the threshold.
	sideAuto sideMode = iota
	// sideBoth always writes each fine directed edge at its own endpoint
	// (the unoptimized Algorithm 6).
	sideBoth
	// sideOne always writes each fine undirected edge once, at the
	// endpoint whose coarse vertex has the smaller estimated degree.
	sideOne
)

// BuildSort is the paper's default construction (Algorithm 6 with
// sort-based DEDUPWITHWTS): bin edges by coarse source vertex, sort each
// bin by coarse neighbor id, and merge duplicates by summing weights. On
// skewed graphs the one-sided write optimization stores each undirected
// edge only at the endpoint with the smaller estimated coarse degree,
// halving (often much more than halving, on hub-heavy bins) the sort work;
// a transpose pass then restores symmetry.
//
// All phases use the contention-free two-phase scatter (per-worker
// histogram + merged prefix offsets), so construction never contends on
// shared counters and the output CSR is byte-identical for every worker
// count.
type BuildSort struct {
	// SkewThreshold overrides DefaultSkewThreshold; negative disables the
	// one-sided optimization entirely, zero means the default.
	SkewThreshold float64
	// ForceOneSided applies the optimization regardless of skew (used by
	// the ablation benchmarks).
	ForceOneSided bool
	// PreDedup additionally deduplicates the coarse adjacencies of each
	// fine vertex before scattering (Section III.B names this as an
	// additional future-work optimization): a fine vertex with many
	// neighbors inside the same target aggregate then contributes one
	// merged entry instead of one entry per edge.
	PreDedup bool
}

// Name implements Builder.
func (BuildSort) Name() string { return "sort" }

// Build implements Builder.
func (b BuildSort) Build(g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	return b.BuildWith(NewWorkspace(), g, m, p)
}

// BuildWith implements WorkspaceBuilder.
func (b BuildSort) BuildWith(ws *Workspace, g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	if b.PreDedup {
		return buildVertexCentricPre(ws, g, m, p, b.mode(g), dedupSortSegments)
	}
	return buildVertexCentric(ws, g, m, p, b.mode(g), dedupSortSegments)
}

func (b BuildSort) mode(g *graph.Graph) sideMode {
	if b.ForceOneSided {
		return sideOne
	}
	th := b.SkewThreshold
	if th == 0 {
		th = DefaultSkewThreshold
	}
	if th < 0 {
		return sideBoth
	}
	if g.DegreeSkew() >= th {
		return sideOne
	}
	return sideBoth
}

// BuildHash is Algorithm 6 with hash-based DEDUPWITHWTS: per-vertex open
// addressing tables accumulate (neighbor, weight) pairs. Preferable when
// the duplication factor is high; the sort wins when duplication is near
// one (Section III.B).
type BuildHash struct {
	SkewThreshold float64
	ForceOneSided bool
}

// Name implements Builder.
func (BuildHash) Name() string { return "hash" }

// Build implements Builder.
func (b BuildHash) Build(g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	return b.BuildWith(NewWorkspace(), g, m, p)
}

// BuildWith implements WorkspaceBuilder.
func (b BuildHash) BuildWith(ws *Workspace, g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	mode := BuildSort{SkewThreshold: b.SkewThreshold, ForceOneSided: b.ForceOneSided}.mode(g)
	return buildVertexCentric(ws, g, m, p, mode, dedupHashSegments)
}

// dedupFunc deduplicates every coarse vertex's segment in place: for each
// vertex a, entries [r[a], r[a]+cnt[a]) of f/x are rewritten so the first
// newCnt[a] entries hold distinct neighbor ids with summed weights. The
// returned slice is scratch owned by ws. Implementations must write
// newCnt[a] for every a (including empty segments) and must be
// deterministic functions of the segment contents alone, so the final CSR
// stays byte-identical across worker counts.
type dedupFunc func(ws *Workspace, f []int32, x []int64, r []int64, cnt []int32, p int) []int32

// aggregateVertexWeights sums fine vertex weights per aggregate without
// contention-free: per-worker partial arrays over the fixed ranges, then a
// bin-parallel reduction. The int64 sums are exact, so the result is
// independent of the worker count.
func aggregateVertexWeights(ws *Workspace, g *graph.Graph, mv []int32, nc, p int, bounds []int) []int64 {
	vwgt := make([]int64, nc)
	if p == 1 {
		for i := range mv {
			vwgt[mv[i]] += g.VertexWeight(int32(i))
		}
		return vwgt
	}
	parts := ws.weightPartials(p, nc)
	par.ForRanges(bounds, func(w, lo, hi int) {
		pw := parts[w]
		for i := lo; i < hi; i++ {
			pw[mv[i]] += g.VertexWeight(int32(i))
		}
	})
	par.ForChunked(nc, p, 2048, func(_, lo, hi int) {
		for a := lo; a < hi; a++ {
			var s int64
			for w := 0; w < p; w++ {
				s += parts[w][a]
			}
			vwgt[a] = s
		}
	})
	return vwgt
}

// buildVertexCentric is the shared skeleton of Algorithm 6, restructured
// as a contention-free two-phase scatter. Workers own contiguous
// edge-balanced vertex ranges; each pass counts bin contributions into a
// private histogram, par.MergeHistograms converts the counts into exact
// per-worker write offsets, and the scatter pass writes every (f, x)
// entry to its precomputed slot without contended writes. Because the ranges are
// ordered, bin contents come out in fine-vertex order regardless of the
// worker count — the basis of the byte-identical determinism guarantee.
func buildVertexCentric(ws *Workspace, g *graph.Graph, m *Mapping, p int, mode sideMode, dedup dedupFunc) (*graph.Graph, error) {
	n := g.N()
	if err := m.Validate(n); err != nil {
		return nil, err
	}
	nc := int(m.NC)
	mv := m.M
	p = par.Workers(p, n)

	ws.bounds = par.BalancedRanges(ws.bounds, g.Xadj, p)
	bounds := ws.bounds

	// Aggregate vertex weights.
	span := obs.StartKernel("cons:vwgt")
	vwgt := aggregateVertexWeights(ws, g, mv, nc, p, bounds)
	span.Done()

	// Step 1: upper-bound coarse degrees C' (both-sided counts) via
	// per-worker histograms.
	span = obs.StartKernel("cons:count")
	hists := ws.histograms(p, nc)
	par.ForRanges(bounds, func(w, lo, hi int) {
		h := hists[w]
		for i := lo; i < hi; i++ {
			u := int32(i)
			a := mv[u]
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if mv[v] != a {
					h[a]++
				}
			}
		}
	})
	cEst := growI32(&ws.cEst, nc)
	par.MergeHistograms(hists, cEst, p)
	span.Done()

	oneSided := mode == sideOne
	// writeHere reports whether the directed fine edge (u, v) is placed in
	// the bin of M[u]. One-sided mode picks the endpoint whose coarse
	// vertex has the smaller estimated degree, tie-broken by fine id
	// (Algorithm 6, line 9): exactly one of (u,v) / (v,u) qualifies.
	writeHere := func(u, v int32, a, bb int32) bool {
		if !oneSided {
			return true
		}
		if cEst[a] != cEst[bb] {
			return cEst[a] < cEst[bb]
		}
		return u < v
	}

	// Step 2: exact bin sizes C. In both-sided mode the step-1 histograms
	// already hold the per-worker write offsets after MergeHistograms; in
	// one-sided mode recount with the one-sided filter.
	cnt := cEst
	if oneSided {
		span = obs.StartKernel("cons:recount")
		hists = ws.histograms(p, nc)
		par.ForRanges(bounds, func(w, lo, hi int) {
			h := hists[w]
			for i := lo; i < hi; i++ {
				u := int32(i)
				a := mv[u]
				adj, _ := g.Neighbors(u)
				for _, v := range adj {
					bb := mv[v]
					if bb != a && writeHere(u, v, a, bb) {
						h[a]++
					}
				}
			}
		})
		cnt = growI32(&ws.cnt, nc)
		par.MergeHistograms(hists, cnt, p)
		span.Done()
	}

	// Step 3: offsets.
	r := growI64(&ws.r, nc+1)
	total := par.PrefixSumInt32(r, cnt, p)

	// Step 4: scatter adjacencies and weights into precomputed windows —
	// worker w owns [r[a]+hists[w][a], ...) of bin a.
	span = obs.StartKernel("cons:scatter")
	f := growI32(&ws.binF, int(total))
	x := growI64(&ws.binX, int(total))
	par.ForRanges(bounds, func(w, lo, hi int) {
		h := hists[w]
		for i := lo; i < hi; i++ {
			u := int32(i)
			a := mv[u]
			adj, wgt := g.Neighbors(u)
			for k, v := range adj {
				bb := mv[v]
				if bb == a || !writeHere(u, v, a, bb) {
					continue
				}
				l := r[a] + int64(h[a])
				h[a]++
				f[l] = bb
				x[l] = wgt[k]
			}
		}
	})
	span.Done()

	// Step 5: per-vertex deduplication.
	newCnt := dedup(ws, f, x, r, cnt, p)

	// Step 6: final CSR, with the transpose merge in one-sided mode.
	var cg *graph.Graph
	if oneSided {
		span = obs.StartKernel("cons:symmetrize")
		cg = symmetrizeDeduped(ws, f, x, r, newCnt, nc, p, dedup)
	} else {
		span = obs.StartKernel("cons:compact")
		cg = compactDeduped(f, x, r, newCnt, nc, p)
	}
	span.Done()
	cg.VWgt = vwgt
	return cg, nil
}

// compactDeduped packs the dedup'd segments into a tight CSR graph.
func compactDeduped(f []int32, x []int64, r []int64, newCnt []int32, nc, p int) *graph.Graph {
	xadj := make([]int64, nc+1)
	par.PrefixSumInt32(xadj, newCnt, p)
	adj := make([]int32, xadj[nc])
	wgt := make([]int64, xadj[nc])
	par.ForEachChunked(nc, p, 256, func(a int) {
		src := r[a]
		dst := xadj[a]
		for k := int32(0); k < newCnt[a]; k++ {
			adj[dst] = f[src]
			wgt[dst] = x[src]
			src++
			dst++
		}
	})
	return &graph.Graph{NumV: int32(nc), Xadj: xadj, Adj: adj, Wgt: wgt}
}

// symmetrizeDeduped implements GRAPHCONSWITHTRANS (Algorithm 6, line 22):
// the one-sided dedup'd lists contain each coarse edge in at least one
// direction with possibly split weights; emit both directions of every
// entry, then dedup once more (segments are now at most twice the final
// degree) and compact. The transpose scatter uses the same two-phase
// histogram scheme as the binning passes: workers own contiguous ranges of
// source bins (balanced by the pre-dedup bin mass in r), so the merged
// bins come out ordered by source bin — again byte-identical across
// worker counts, without contended writes.
func symmetrizeDeduped(ws *Workspace, f []int32, x []int64, r []int64, newCnt []int32, nc, p int, dedup dedupFunc) *graph.Graph {
	p = par.Workers(p, nc)
	ws.bounds2 = par.BalancedRanges(ws.bounds2, r, p)
	bounds := ws.bounds2

	hists := ws.histograms(p, nc)
	par.ForRanges(bounds, func(w, lo, hi int) {
		h := hists[w]
		for a := lo; a < hi; a++ {
			base := r[a]
			h[a] += newCnt[a]
			for k := int64(0); k < int64(newCnt[a]); k++ {
				h[f[base+k]]++
			}
		}
	})
	cnt2 := growI32(&ws.cnt2, nc)
	par.MergeHistograms(hists, cnt2, p)
	r2 := growI64(&ws.r2, nc+1)
	total := par.PrefixSumInt32(r2, cnt2, p)

	f2 := growI32(&ws.symF, int(total))
	x2 := growI64(&ws.symX, int(total))
	par.ForRanges(bounds, func(w, lo, hi int) {
		h := hists[w]
		for a := lo; a < hi; a++ {
			base := r[a]
			for k := int64(0); k < int64(newCnt[a]); k++ {
				b := f[base+k]
				wv := x[base+k]
				la := r2[a] + int64(h[a])
				h[a]++
				f2[la] = b
				x2[la] = wv
				lb := r2[b] + int64(h[b])
				h[b]++
				f2[lb] = int32(a)
				x2[lb] = wv
			}
		}
	})
	newCnt2 := dedup(ws, f2, x2, r2, cnt2, p)
	return compactDeduped(f2, x2, r2, newCnt2, nc, p)
}

// dedupSortSegments sorts each segment by neighbor id and merges equal
// keys by summing weights (the bitonic/radix team sort of the paper,
// realized as insertion sort for short lists and LSD radix above).
func dedupSortSegments(ws *Workspace, f []int32, x []int64, r []int64, cnt []int32, p int) []int32 {
	span := obs.StartKernel("dedup:sort")
	defer span.Done()
	nc := len(cnt)
	newCnt := growI32(&ws.newCnt, nc)
	p = par.Workers(p, nc)
	scratch := ws.sortScratchFor(p)
	par.ForChunked(nc, p, 64, func(wid, aLo, aHi int) {
		sc := scratch[wid]
		for a := aLo; a < aHi; a++ {
			lo := r[a]
			hi := lo + int64(cnt[a])
			seg := f[lo:hi]
			wseg := x[lo:hi]
			par.SortPairsInt32Scratch(seg, wseg, sc)
			var w int32 // write cursor
			for i := 0; i < len(seg); i++ {
				if w > 0 && seg[w-1] == seg[i] {
					wseg[w-1] += wseg[i]
				} else {
					seg[w] = seg[i]
					wseg[w] = wseg[i]
					w++
				}
			}
			newCnt[a] = w
		}
	})
	return newCnt
}

// dedupHashSegments deduplicates each segment with a per-worker open
// addressing accumulator, then writes the distinct pairs back to the
// segment prefix (unsorted). The table's logical capacity is a function
// of the segment size alone, so the slot layout — and therefore the
// unsorted output order — is deterministic for any worker count.
func dedupHashSegments(ws *Workspace, f []int32, x []int64, r []int64, cnt []int32, p int) []int32 {
	span := obs.StartKernel("dedup:hash")
	defer span.Done()
	nc := len(cnt)
	newCnt := growI32(&ws.newCnt, nc)
	p = par.Workers(p, nc)
	tables := ws.tablesFor(p)
	par.ForChunked(nc, p, 64, func(wid, aLo, aHi int) {
		ht := tables[wid]
		defer ht.flushCounters()
		for a := aLo; a < aHi; a++ {
			lo := r[a]
			hi := lo + int64(cnt[a])
			if lo == hi {
				newCnt[a] = 0
				continue
			}
			ht.reset(int(hi - lo))
			for i := lo; i < hi; i++ {
				ht.add(f[i], x[i])
			}
			w := lo
			for s := 0; s < ht.cap; s++ {
				if ht.occupied(s) {
					f[w] = ht.keys[s]
					x[w] = ht.vals[s]
					w++
				}
			}
			newCnt[a] = int32(w - lo)
		}
	})
	return newCnt
}

// weightTable is an int32 -> int64 open-addressing accumulator sized to
// the current segment. Slots are validated by an epoch stamp, so reset is
// O(1) instead of O(capacity): bumping the epoch invalidates every slot at
// once. The logical capacity (cap) is always the smallest power of two
// holding twice the segment, a pure function of the segment size, which
// keeps the probe sequence — and therefore the unsorted dedup output —
// independent of what the table processed before.
type weightTable struct {
	keys  []int32
	vals  []int64
	stamp []uint64
	epoch uint64
	cap   int // logical capacity for the current segment (power of two)

	// probes/collisions accumulate locally (plain adds, one per slot
	// inspection) and reach the obs layer only via flushCounters, so add()
	// itself never touches shared state.
	probes     int64
	collisions int64
}

// flushCounters reports and clears the accumulated probe statistics.
// Callers flush once per parallel chunk, not per segment.
func (t *weightTable) flushCounters() {
	obs.Add(obs.CtrHashProbe, t.probes)
	obs.Add(obs.CtrHashCollision, t.collisions)
	t.probes, t.collisions = 0, 0
}

func newWeightTable(capacity int) *weightTable {
	t := &weightTable{}
	t.reset(capacity)
	return t
}

// reset prepares the table for a segment of the given size in O(1),
// growing the backing arrays only when the logical capacity exceeds them.
func (t *weightTable) reset(size int) {
	c := 16
	for c < 2*size {
		c *= 2
	}
	t.cap = c
	if c > len(t.keys) {
		t.keys = make([]int32, c)
		t.vals = make([]int64, c)
		t.stamp = make([]uint64, c)
		t.epoch = 0
	}
	t.epoch++
}

// occupied reports whether slot s holds a live entry for the current
// segment.
func (t *weightTable) occupied(s int) bool { return t.stamp[s] == t.epoch }

func (t *weightTable) add(k int32, v int64) {
	mask := uint32(t.cap - 1)
	s := (uint32(k) * 2654435761) & mask
	for {
		t.probes++
		if t.stamp[s] != t.epoch {
			t.stamp[s] = t.epoch
			t.keys[s] = k
			t.vals[s] = v
			return
		}
		if t.keys[s] == k {
			t.vals[s] += v
			return
		}
		t.collisions++
		s = (s + 1) & mask
	}
}

// checkCoarse validates invariants shared by all builders; used in tests
// via buildAndCheck but cheap enough for defensive use.
func checkCoarse(fine, coarse *graph.Graph, m *Mapping) error {
	if coarse.NumV != m.NC {
		return fmt.Errorf("coarsen: coarse graph has %d vertices, mapping says %d", coarse.NumV, m.NC)
	}
	var fineVW, coarseVW int64
	fineVW = fine.TotalVertexWeight()
	coarseVW = coarse.TotalVertexWeight()
	if fineVW != coarseVW {
		return fmt.Errorf("coarsen: vertex weight not conserved: fine %d coarse %d", fineVW, coarseVW)
	}
	return nil
}
