package coarsen

import (
	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// Workspace is the reusable scratch arena of the vertex-centric coarse
// graph builders. One construction level needs O(m) bin storage (f/x),
// O(nc) counters and offsets, and O(p·nc) per-worker histograms; without a
// workspace every level allocates those afresh. Coarsener.Run keeps one
// Workspace for the whole hierarchy, so steady-state construction performs
// (amortized) zero scratch allocations — only the output CSR arrays, which
// escape into the Hierarchy, are freshly allocated per level.
//
// Lifetime rules:
//   - A Workspace may be reused across levels, graphs, and builders, but
//     not concurrently: one Build call owns it exclusively.
//   - Buffers handed out by the getters alias the arena; they are dead as
//     soon as the Build call returns. Builders must never let them escape
//     into the returned graph.
//   - The zero value is not ready; use NewWorkspace.
type Workspace struct {
	// Bin storage for the scatter phases: first-generation bins (binF/binX)
	// and the symmetrize-phase bins (symF/symX).
	binF []int32
	binX []int64
	symF []int32
	symX []int64

	// Per-bin counters and offsets.
	cnt    []int32
	cnt2   []int32
	cEst   []int32
	newCnt []int32
	r      []int64
	r2     []int64

	// Per-worker state: scatter histograms, vertex-weight partials, range
	// boundaries, dedup hash tables, and small pair buffers (heap dedup
	// output, pre-dedup adjacency scratch).
	hists     [][]int32
	vwgtParts [][]int64
	bounds    []int
	bounds2   []int
	tables    []*weightTable
	keyBufs   [][]int32
	wgtBufs   [][]int64
	sortBufs  []*par.SortScratch

	// Radix-sort builder scratch (segsort dedup, global-sort baseline).
	keys64 []uint64
	vals64 []uint64
	offs   []int64
}

// NewWorkspace returns an empty workspace; buffers grow on first use and
// are retained for reuse.
func NewWorkspace() *Workspace { return &Workspace{} }

// The grow helpers report arena effectiveness to the obs layer: bytes
// served from retained buffers (workspace_bytes_reused) vs. freshly
// allocated (workspace_bytes_alloc). A reuse ratio near 1 in steady state
// is the arena working as designed; allocations recurring past the first
// level mean a buffer is being resized every level.

func growI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
		obs.Add(obs.CtrWSBytesAlloc, int64(n)*4)
	} else {
		obs.Add(obs.CtrWSBytesReused, int64(n)*4)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growI64(buf *[]int64, n int) []int64 {
	if cap(*buf) < n {
		*buf = make([]int64, n)
		obs.Add(obs.CtrWSBytesAlloc, int64(n)*8)
	} else {
		obs.Add(obs.CtrWSBytesReused, int64(n)*8)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growU64(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
		obs.Add(obs.CtrWSBytesAlloc, int64(n)*8)
	} else {
		obs.Add(obs.CtrWSBytesReused, int64(n)*8)
	}
	*buf = (*buf)[:n]
	return *buf
}

// histograms returns p zero-filled histograms of nc bins each.
// Callers own histogram w exclusively while worker w runs.
func (ws *Workspace) histograms(p, nc int) [][]int32 {
	for len(ws.hists) < p {
		ws.hists = append(ws.hists, nil)
	}
	hs := ws.hists[:p]
	for w := 0; w < p; w++ {
		h := growI32(&ws.hists[w], nc)
		for i := range h {
			h[i] = 0
		}
	}
	return hs
}

// weightPartials returns p zero-filled int64 accumulators of nc bins each.
func (ws *Workspace) weightPartials(p, nc int) [][]int64 {
	for len(ws.vwgtParts) < p {
		ws.vwgtParts = append(ws.vwgtParts, nil)
	}
	hs := ws.vwgtParts[:p]
	for w := 0; w < p; w++ {
		h := growI64(&ws.vwgtParts[w], nc)
		for i := range h {
			h[i] = 0
		}
	}
	return hs
}

// tablesFor returns one dedup hash table per worker. Must be called
// before the parallel section; workers then index the result by worker id.
func (ws *Workspace) tablesFor(p int) []*weightTable {
	for len(ws.tables) < p {
		ws.tables = append(ws.tables, newWeightTable(64))
	}
	return ws.tables[:p]
}

// sortScratchFor returns one radix-sort scratch per worker. Must be called
// before the parallel section; workers then index the result by worker id.
func (ws *Workspace) sortScratchFor(p int) []*par.SortScratch {
	for len(ws.sortBufs) < p {
		ws.sortBufs = append(ws.sortBufs, &par.SortScratch{})
	}
	return ws.sortBufs[:p]
}

// pairBufsFor returns per-worker reusable (key, weight) pair buffers.
// Must be called before the parallel section; worker w owns element w of
// both slices and writes grown buffers back into them.
func (ws *Workspace) pairBufsFor(p int) ([][]int32, [][]int64) {
	for len(ws.keyBufs) < p {
		ws.keyBufs = append(ws.keyBufs, nil)
		ws.wgtBufs = append(ws.wgtBufs, nil)
	}
	return ws.keyBufs[:p], ws.wgtBufs[:p]
}

// WorkspaceBuilder is implemented by builders that can run their scratch
// phase out of a caller-provided Workspace. Coarsener.Run uses it to reuse
// one arena across all levels of a hierarchy.
type WorkspaceBuilder interface {
	Builder
	// BuildWith is Build with explicit scratch; ws must be non-nil.
	BuildWith(ws *Workspace, g *graph.Graph, m *Mapping, p int) (*graph.Graph, error)
}
