package coarsen

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// Workspace is the reusable scratch arena of the vertex-centric coarse
// graph builders. One construction level needs O(m) bin storage (f/x),
// O(nc) counters and offsets, and O(p·nc) per-worker histograms; without a
// workspace every level allocates those afresh. Coarsener.Run keeps one
// Workspace for the whole hierarchy, so steady-state construction performs
// (amortized) zero scratch allocations — only the output CSR arrays, which
// escape into the Hierarchy, are freshly allocated per level.
//
// Lifetime rules:
//   - A Workspace may be reused across levels, graphs, and builders, but
//     not concurrently: one Build call owns it exclusively.
//   - Buffers handed out by the getters alias the arena; they are dead as
//     soon as the Build call returns. Builders must never let them escape
//     into the returned graph.
//   - The zero value is not ready; use NewWorkspace.
type Workspace struct {
	// Bin storage for the scatter phases: first-generation bins (binF/binX)
	// and the symmetrize-phase bins (symF/symX).
	binF []int32
	binX []int64
	symF []int32
	symX []int64

	// Per-bin counters and offsets.
	cnt    []int32
	cnt2   []int32
	cEst   []int32
	newCnt []int32
	r      []int64
	r2     []int64

	// Per-worker state: scatter histograms, vertex-weight partials, range
	// boundaries, dedup hash tables, and small pair buffers (heap dedup
	// output, pre-dedup adjacency scratch).
	hists     [][]int32
	vwgtParts [][]int64
	bounds    []int
	bounds2   []int
	tables    []*weightTable
	keyBufs   [][]int32
	wgtBufs   [][]int64
	sortBufs  []*par.SortScratch

	// Radix-sort builder scratch (segsort dedup, global-sort baseline).
	keys64 []uint64
	vals64 []uint64
	offs   []int64

	// Worklist-mapper scratch (mis2fast selection and frontiers).
	mis *mis2Scratch

	// inUse is the single-owner guard: 1 while a Run (or an explicit
	// TryAcquire) holds the workspace. Concurrent acquisition is the bug
	// class a server hits first — two requests sharing scratch silently
	// corrupt each other's coarse graphs — so it fails loudly instead.
	inUse int32
}

// NewWorkspace returns an empty workspace; buffers grow on first use and
// are retained for reuse.
func NewWorkspace() *Workspace { return &Workspace{} }

// tryAcquire claims exclusive use of the workspace, failing with a
// descriptive error if another holder has it.
func (ws *Workspace) tryAcquire() error {
	if !atomic.CompareAndSwapInt32(&ws.inUse, 0, 1) {
		return fmt.Errorf("coarsen: Workspace is already in use by a concurrent Run; " +
			"a workspace is single-owner scratch — give each concurrent Run its own (see WorkspacePool)")
	}
	return nil
}

// release returns the workspace to the idle state.
func (ws *Workspace) release() { atomic.StoreInt32(&ws.inUse, 0) }

// InUse reports whether a Run currently holds the workspace.
func (ws *Workspace) InUse() bool { return atomic.LoadInt32(&ws.inUse) != 0 }

// WorkspacePool recycles workspaces across concurrent Runs — the server's
// substrate for steady-state zero-scratch-allocation builds without
// sharing an arena between in-flight requests. The zero value is ready.
type WorkspacePool struct {
	pool sync.Pool
}

// Get returns an idle workspace, allocating one if the pool is empty.
func (p *WorkspacePool) Get() *Workspace {
	if ws, ok := p.pool.Get().(*Workspace); ok {
		return ws
	}
	return NewWorkspace()
}

// Put returns a workspace to the pool. A workspace still held by a Run is
// dropped instead of pooled, so a misbehaving caller cannot poison the
// pool with scratch another goroutine is actively writing.
func (p *WorkspacePool) Put(ws *Workspace) {
	if ws == nil || ws.InUse() {
		return
	}
	p.pool.Put(ws)
}

// The grow helpers report arena effectiveness to the obs layer: bytes
// served from retained buffers (workspace_bytes_reused) vs. freshly
// allocated (workspace_bytes_alloc). A reuse ratio near 1 in steady state
// is the arena working as designed; allocations recurring past the first
// level mean a buffer is being resized every level.

func growI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
		obs.Add(obs.CtrWSBytesAlloc, int64(n)*4)
	} else {
		obs.Add(obs.CtrWSBytesReused, int64(n)*4)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growI64(buf *[]int64, n int) []int64 {
	if cap(*buf) < n {
		*buf = make([]int64, n)
		obs.Add(obs.CtrWSBytesAlloc, int64(n)*8)
	} else {
		obs.Add(obs.CtrWSBytesReused, int64(n)*8)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growU64(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
		obs.Add(obs.CtrWSBytesAlloc, int64(n)*8)
	} else {
		obs.Add(obs.CtrWSBytesReused, int64(n)*8)
	}
	*buf = (*buf)[:n]
	return *buf
}

// histograms returns p zero-filled histograms of nc bins each.
// Callers own histogram w exclusively while worker w runs.
func (ws *Workspace) histograms(p, nc int) [][]int32 {
	for len(ws.hists) < p {
		ws.hists = append(ws.hists, nil)
	}
	hs := ws.hists[:p]
	for w := 0; w < p; w++ {
		h := growI32(&ws.hists[w], nc)
		for i := range h {
			h[i] = 0
		}
	}
	return hs
}

// weightPartials returns p zero-filled int64 accumulators of nc bins each.
func (ws *Workspace) weightPartials(p, nc int) [][]int64 {
	for len(ws.vwgtParts) < p {
		ws.vwgtParts = append(ws.vwgtParts, nil)
	}
	hs := ws.vwgtParts[:p]
	for w := 0; w < p; w++ {
		h := growI64(&ws.vwgtParts[w], nc)
		for i := range h {
			h[i] = 0
		}
	}
	return hs
}

// tablesFor returns one dedup hash table per worker. Must be called
// before the parallel section; workers then index the result by worker id.
func (ws *Workspace) tablesFor(p int) []*weightTable {
	for len(ws.tables) < p {
		ws.tables = append(ws.tables, newWeightTable(64))
	}
	return ws.tables[:p]
}

// sortScratchFor returns one radix-sort scratch per worker. Must be called
// before the parallel section; workers then index the result by worker id.
func (ws *Workspace) sortScratchFor(p int) []*par.SortScratch {
	for len(ws.sortBufs) < p {
		ws.sortBufs = append(ws.sortBufs, &par.SortScratch{})
	}
	return ws.sortBufs[:p]
}

// pairBufsFor returns per-worker reusable (key, weight) pair buffers.
// Must be called before the parallel section; worker w owns element w of
// both slices and writes grown buffers back into them.
func (ws *Workspace) pairBufsFor(p int) ([][]int32, [][]int64) {
	for len(ws.keyBufs) < p {
		ws.keyBufs = append(ws.keyBufs, nil)
		ws.wgtBufs = append(ws.wgtBufs, nil)
	}
	return ws.keyBufs[:p], ws.wgtBufs[:p]
}

// WorkspaceBuilder is implemented by builders that can run their scratch
// phase out of a caller-provided Workspace. Coarsener.Run uses it to reuse
// one arena across all levels of a hierarchy.
type WorkspaceBuilder interface {
	Builder
	// BuildWith is Build with explicit scratch; ws must be non-nil.
	BuildWith(ws *Workspace, g *graph.Graph, m *Mapping, p int) (*graph.Graph, error)
}

// WorkspaceMapper is the mapper-side twin of WorkspaceBuilder: mappers that
// keep their selection state and frontier buffers in the arena implement it
// and Coarsener.Run routes Map calls through MapWith so one hierarchy
// shares one arena across both phases of every level.
type WorkspaceMapper interface {
	Mapper
	// MapWith is Map with explicit scratch; ws must be non-nil.
	MapWith(ws *Workspace, g *graph.Graph, seed uint64, p int) (*Mapping, error)
}

// mis2Scratch is the retained scratch of the mis2fast worklist kernel: the
// per-vertex selection arrays, the epoch-stamped claim marks that dedup
// candidate lists, and the per-worker frontier buffers with their merged
// flat lists. All buffers are arena-owned and dead once MapWith returns
// (the output mapping array is allocated fresh — it escapes).
type mis2Scratch struct {
	key   []uint64
	state []int32
	t1    []int32
	near  []int32

	// mark[v] holds the last epoch that claimed v; claimEpoch CAS-bumps it
	// so each (epoch, vertex) pair is claimed by exactly one worker. The
	// epoch survives across levels and graphs — stale marks are always
	// smaller than a freshly issued epoch.
	mark  []int32
	epoch int32

	bufs [][]int32 // per-worker append buffers (worker w owns bufs[w])
	cnt  []int32   // per-worker counts / exclusive offsets for the merge

	// Merged flat frontier lists, reused round over round.
	f1, in, out []int32

	// roots accumulates every MIS member across rounds (append-only during
	// one selection); the fused aggregation scatters from it.
	roots []int32
}

// mis2Scratch returns the arena's worklist-mapper scratch sized for an
// n-vertex graph and p workers.
func (ws *Workspace) mis2Scratch(n, p int) *mis2Scratch {
	if ws.mis == nil {
		ws.mis = &mis2Scratch{}
	}
	s := ws.mis
	s.key = growU64(&s.key, n)
	s.state = growI32(&s.state, n)
	s.t1 = growI32(&s.t1, n)
	s.near = growI32(&s.near, n)
	// The claim marks must be strictly below any future epoch. Reused
	// buffers only ever hold previously issued epochs, so they are fine
	// as-is; a freshly grown buffer is zero-filled and fine too. Guard the
	// (never reached in practice) epoch wrap by rezeroing.
	if s.epoch > (1<<31)-2-int32(64) {
		s.epoch = 0
		s.mark = nil
	}
	s.mark = growI32(&s.mark, n)
	for len(s.bufs) < p {
		s.bufs = append(s.bufs, nil)
	}
	s.cnt = growI32(&s.cnt, p)
	return s
}

// resetBufs truncates the first p per-worker buffers for a new fill phase.
func (s *mis2Scratch) resetBufs(p int) {
	for w := 0; w < p; w++ {
		s.bufs[w] = s.bufs[w][:0]
	}
}

// nextEpoch issues a fresh claim epoch (strictly larger than every mark).
func (s *mis2Scratch) nextEpoch() int32 {
	s.epoch++
	return s.epoch
}

// claimEpoch claims vertex v for the given epoch; exactly one caller per
// (epoch, v) pair wins. Marks only grow, so a load-then-CAS loop suffices.
func (s *mis2Scratch) claimEpoch(v, epoch int32) bool {
	for {
		old := atomic.LoadInt32(&s.mark[v])
		if old >= epoch {
			return false
		}
		if atomic.CompareAndSwapInt32(&s.mark[v], old, epoch) {
			return true
		}
	}
}

// mergeBufs concatenates the first p per-worker buffers into dst (grown in
// the arena) in worker order, using an exclusive scan over the per-worker
// counts — the same histogram-merge discipline as the builders, no atomics.
// The returned slice aliases dst's backing array.
func (s *mis2Scratch) mergeBufs(dst *[]int32, p int) []int32 {
	cnt := s.cnt[:p]
	for w := 0; w < p; w++ {
		cnt[w] = int32(len(s.bufs[w]))
	}
	total := par.ExclusiveScanInt32(cnt, cnt, 1)
	out := growI32(dst, int(total))
	if total < 1<<13 {
		// Small merges (the common worklist tail) are cheaper on one core
		// than p goroutine spawns.
		for w := 0; w < p; w++ {
			copy(out[cnt[w]:], s.bufs[w])
		}
		return out
	}
	par.For(p, p, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			copy(out[cnt[w]:], s.bufs[w])
		}
	})
	return out
}
