package coarsen

import (
	"sync/atomic"

	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// MIS2Fast is the worklist-driven distance-2 MIS coarsening of Kelley and
// Rajamanickam (arXiv:2204.02934): the same iterated random-priority
// elimination as MIS2 — identical tie-breaking hashes, identical fixpoint —
// but after the first full sweep each round only revisits vertices whose
// status can still change. Per-round frontiers are built into per-worker
// buffers and merged with an exclusive scan (no atomics on the merge); the
// only atomics are monotone 0→1 claim marks that deduplicate candidate
// lists. Three structural facts keep the per-round work far below MIS2's
// five O(n + m) sweeps:
//
//  1. only a vertex v with t1[v] == v (it beats its whole undecided closed
//     neighborhood) can pass MIS2's t2[v] == v test, so the decide frontier
//     holds local maxima only — the O(m) t2 sweep becomes a scan over a few
//     candidates with an early exit;
//  2. distance-2 independence means a non-root has at most one adjacent
//     root, so the distance-1 aggregation scatters from the root list with
//     plain uncontended stores in O(Σdeg(roots)) instead of scanning every
//     edge; and
//  3. elimination walks only the distance-2 ball of newly selected members
//     (monotone near marks), not the whole graph.
//
// Because every per-vertex write is a pure function of the previous round's
// state, frontier order never influences values, so M and NC are
// byte-identical to MIS2's at every worker count (see DESIGN.md).
type MIS2Fast struct{}

// Name implements Mapper.
func (MIS2Fast) Name() string { return "mis2fast" }

// Map implements Mapper.
func (m MIS2Fast) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	return m.MapWith(NewWorkspace(), g, seed, p)
}

// MapWith is Map with explicit scratch; ws must be non-nil. Coarsener.Run
// uses it to reuse one arena's selection/frontier buffers across all levels
// of a hierarchy.
func (MIS2Fast) MapWith(ws *Workspace, g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	p = par.Workers(p, n)
	s := ws.mis2Scratch(n, p)

	// Random priorities; ties broken by id via the tuple (key, id). The
	// hash matches MIS2 exactly so both mappers converge to the same MIS.
	// (Mix64 of distinct inputs never collides — it is a bijection — so the
	// id tie-break is defensive, not load-bearing.)
	key := s.key
	par.ForEach(n, p, func(i int) {
		key[i] = par.Mix64(seed ^ uint64(i)*0x9e3779b97f4a7c15)
	})

	span := obs.StartKernel("mis2fast:select")
	state := mis2FastStates(g, s, p)
	span.Done()

	span = obs.StartKernel("mis2fast:aggregate")
	m := mis2FastAggregate(g, s, state, p)
	span.Done()

	// No random visit permutation, so the canonical order is the identity:
	// aggregates are numbered by their minimum member vertex id (same as
	// MIS2).
	nc := canonicalize(m, nil, p)
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}

// mis2FastStates runs the worklist-driven random-priority elimination and
// returns the per-vertex state array (misIn marks the distance-2 MIS, and
// s.roots lists its members).
//
// Invariants maintained between rounds, for every vertex v (decided or
// not):
//
//	t1[v]   = the highest-priority undecided vertex in N[v] ∪ {v}, or
//	          unset — exactly MIS2's t1 array;
//	near[v] = 1 iff v is in the MIS or adjacent to an MIS vertex.
//
// A round recomputes t1 only where its cached value just became decided,
// re-decides only vertices whose closed-neighborhood t1 values changed, and
// eliminates only vertices within distance two of a *new* MIS member. Each
// quantity is reachable from the previous round's transitions, which is
// what makes the frontiers sound; since undecided sets only shrink, every
// skipped vertex provably keeps its value.
func mis2FastStates(g *graph.Graph, s *mis2Scratch, p int) []int32 {
	n := g.N()
	p = par.Workers(p, n) // scratch is sized for the clamped worker count
	key := s.key
	state := s.state
	t1 := s.t1
	near := s.near
	par.Fill(state, misUndecided, p)
	par.Fill(near, 0, p)
	s.roots = s.roots[:0]

	// recomputeT1 refreshes t1 for every vertex in list. The loop body is
	// written out inline: at ~5 loads per visited edge an indirect
	// per-element call would be a measurable fraction of the pass.
	recomputeT1 := func(list []int32) {
		par.ForChunked(len(list), p, 256, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := list[i]
				best := unset
				var bk uint64
				if state[v] == misUndecided {
					best, bk = v, key[v]
				}
				adj, _ := g.Neighbors(v)
				for _, u := range adj {
					if state[u] != misUndecided {
						continue
					}
					if ku := key[u]; best == unset || ku > bk || (ku == bk && u > best) {
						best, bk = u, ku
					}
				}
				t1[v] = best
			}
		})
	}

	// recomputeT1All is recomputeT1 over every vertex (the defensive full
	// resweep; round 0 uses the specialized all-undecided sweep instead).
	recomputeT1All := func() {
		par.ForChunked(n, p, 256, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := int32(i)
				best := unset
				var bk uint64
				if state[v] == misUndecided {
					best, bk = v, key[v]
				}
				adj, _ := g.Neighbors(v)
				for _, u := range adj {
					if state[u] != misUndecided {
						continue
					}
					if ku := key[u]; best == unset || ku > bk || (ku == bk && u > best) {
						best, bk = u, ku
					}
				}
				t1[v] = best
			}
		})
	}

	// decide appends v to the worker's buffer when v dominates its own
	// distance-2 neighborhood — MIS2's t2[v] == v test. Callers guarantee
	// t1[v] == v (v already beats N[v] ∪ {v}), so only a neighbor's t1
	// beating v can disqualify it and the scan exits on the first witness.
	// Each v appears once, so the state write is a race-free per-cell store.
	decide := func(w int, v int32) {
		kv := key[v]
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if c := t1[u]; c != unset && c != v && (key[c] > kv || (key[c] == kv && c > v)) {
				return
			}
		}
		state[v] = misIn
		s.bufs[w] = append(s.bufs[w], v)
	}

	remaining := n
	full := true  // round 0 sweeps everything
	first := true // ... and everything is still undecided in round 0
	var frontier1, prevIn, prevOut []int32
	for remaining > 0 {
		obs.Add(obs.CtrMIS2FastRounds, 1)

		// Phase 1: refresh t1. In worklist rounds only vertices whose
		// cached best candidate just got decided can change; they are
		// exactly the closed neighbors v of a newly decided d with
		// t1[v] == d, so each changed vertex is claimed by exactly one d —
		// per-worker buffers, no atomics.
		switch {
		case first:
			// Round 0: every vertex is undecided, so the state checks
			// vanish and t1[v] is the plain key argmax over N[v] ∪ {v}.
			par.ForChunked(n, p, 256, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					v := int32(i)
					best, bk := v, key[v]
					adj, _ := g.Neighbors(v)
					for _, u := range adj {
						if ku := key[u]; ku > bk || (ku == bk && u > best) {
							best, bk = u, ku
						}
					}
					t1[v] = best
				}
			})
		case full:
			recomputeT1All()
		default:
			s.resetBufs(p)
			scanDecided := func(list []int32) {
				par.ForChunked(len(list), p, 256, func(w, lo, hi int) {
					for i := lo; i < hi; i++ {
						d := list[i]
						if t1[d] == d {
							s.bufs[w] = append(s.bufs[w], d)
						}
						adj, _ := g.Neighbors(d)
						for _, u := range adj {
							if t1[u] == d {
								s.bufs[w] = append(s.bufs[w], u)
							}
						}
					}
				})
			}
			scanDecided(prevIn)
			scanDecided(prevOut)
			frontier1 = s.mergeBufs(&s.f1, p)
			recomputeT1(frontier1)
		}

		// Phase 2: decide. Only undecided local maxima (t1[v] == v;
		// anything else fails the t2 test outright) whose closed-
		// neighborhood t1 changed — members of N[frontier1] ∪ frontier1 —
		// can flip, and deciding them happens in the same pass that finds
		// them. In a full round every vertex is visited exactly once, so no
		// dedup is needed; worklist rounds claim each candidate with an
		// epoch-stamped mark first, which makes the winner the vertex's
		// unique owner: its state read and misIn write cannot race.
		s.resetBufs(p)
		if full {
			par.ForChunked(n, p, 256, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					if state[i] == misUndecided && t1[i] == int32(i) {
						decide(w, int32(i))
					}
				}
			})
		} else {
			// The t1[v] == v test goes first: local maxima are rare, so
			// most visits end after one predictable load. The claim comes
			// before the state check so that the state access stays
			// single-owner; a decided vertex with a stale t1 == v merely
			// burns one claim.
			epoch := s.nextEpoch()
			par.ForChunked(len(frontier1), p, 256, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					u := frontier1[i]
					if t1[u] == u && s.claimEpoch(u, epoch) && state[u] == misUndecided {
						decide(w, u)
					}
					adj, _ := g.Neighbors(u)
					for _, v := range adj {
						if t1[v] == v && s.claimEpoch(v, epoch) && state[v] == misUndecided {
							decide(w, v)
						}
					}
				}
			})
		}
		newlyIn := s.mergeBufs(&s.in, p)
		s.roots = append(s.roots, newlyIn...)

		// Phase 3: eliminate the distance-2 ball of the new MIS members.
		// near-mark 0→1 transitions (CAS-claimed) identify the vertices
		// whose ball newly intersects the MIS; their undecided closed
		// neighbors are claimed into the duplicate-free out list in the
		// same walk. State is read-only here — the misOut writes happen in
		// phase 4 once ownership is settled.
		s.resetBufs(p)
		epoch := s.nextEpoch()
		par.ForChunked(len(newlyIn), p, 256, func(w, lo, hi int) {
			outClaim := func(v int32) {
				if state[v] == misUndecided && s.claimEpoch(v, epoch) {
					s.bufs[w] = append(s.bufs[w], v)
				}
			}
			nearWalk := func(u int32) {
				if atomic.LoadInt32(&near[u]) != 0 || !atomic.CompareAndSwapInt32(&near[u], 0, 1) {
					return
				}
				outClaim(u)
				adj, _ := g.Neighbors(u)
				for _, v := range adj {
					outClaim(v)
				}
			}
			for i := lo; i < hi; i++ {
				d := newlyIn[i]
				nearWalk(d)
				adj, _ := g.Neighbors(d)
				for _, u := range adj {
					nearWalk(u)
				}
			}
		})
		newlyOut := s.mergeBufs(&s.out, p)
		obs.Add(obs.CtrMIS2FastFrontier, int64(len(frontier1)+len(newlyIn)+len(newlyOut)))

		// Phase 4: eliminate (unique owners, plain stores).
		par.ForChunked(len(newlyOut), p, 256, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				state[newlyOut[i]] = misOut
			}
		})

		remaining -= len(newlyIn) + len(newlyOut)
		if len(newlyIn)+len(newlyOut) == 0 {
			// Unreachable when the frontier invariants hold (the globally
			// highest undecided vertex always enters the MIS), but a full
			// resweep keeps the kernel safe rather than spinning if they
			// ever break.
			if full {
				break
			}
			full = true
			continue
		}
		full, first = false, false

		// Next round's t1 frontier is driven by this round's transitions.
		// The merged lists live in s.in/s.out, which phase 3/4b only
		// overwrite after phase 1 has consumed them.
		prevIn, prevOut = newlyIn, newlyOut
	}
	return state
}

// mis2FastAggregate assigns every vertex to an MIS root. Distance-2
// independence guarantees a non-root vertex has at most one adjacent root,
// so the distance-1 phase scatters from the root list — every write has a
// unique owner, no scan of the remaining edges — and only the compacted
// distance-2 remainder rescans its neighborhoods. Root preference follows
// MIS2 exactly — the highest (key, id) root — so the resulting mapping is
// identical to MIS2's two full rescan rounds.
func mis2FastAggregate(g *graph.Graph, s *mis2Scratch, state []int32, p int) []int32 {
	n := g.N()
	key := s.key
	m := make([]int32, n) // escapes into the Mapping: not arena-owned
	par.Fill(m, unset, p)
	roots := s.roots
	par.ForEachChunked(len(roots), p, 64, func(i int) {
		r := roots[i]
		m[r] = r
		adj, _ := g.Neighbors(r)
		for _, u := range adj {
			m[u] = r // u's only adjacent root: an uncontended store
		}
	})
	// Compact the distance-2 remainder (typically a small fraction of n).
	rest := par.Pack(n, p, func(i int) bool { return m[i] == unset })
	// Join the best already-assigned neighbor's root. Reads m (complete
	// after the scatter above), writes the side buffer, then scatters back —
	// the same read-old/write-new discipline as MIS2's copied rounds.
	mRest := growI32(&s.f1, len(rest))
	par.ForEachChunked(len(rest), p, 64, func(i int) {
		v := rest[i]
		adj, _ := g.Neighbors(v)
		best := unset
		var bk uint64
		for _, u := range adj {
			r := m[u]
			if r == unset {
				continue
			}
			if kr := key[r]; best == unset || kr > bk || (kr == bk && r > best) {
				best, bk = r, kr
			}
		}
		if best == unset {
			best = v // unreached (degenerate inputs): singleton, as in MIS2
		}
		mRest[i] = best
	})
	par.ForEachChunked(len(rest), p, 256, func(i int) {
		m[rest[i]] = mRest[i]
	})
	return m
}
