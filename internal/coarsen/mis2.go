package coarsen

import (
	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// MIS2 is the distance-2 maximal independent set coarsening of Bell,
// Dalton, and Olson (tech-report Algorithm 14): aggregate roots form an
// MIS of the square graph (no two roots within distance two), found by
// iterated random-priority elimination; every other vertex joins a root
// within two hops. Coarsening is aggressive (aggregates are distance-2
// balls), which the paper observes can make the coarsest graphs less
// useful (e.g. mycielskian17).
type MIS2 struct{}

// Name implements Mapper.
func (MIS2) Name() string { return "mis2" }

const (
	misUndecided int32 = 0
	misIn        int32 = 1
	misOut       int32 = 2
)

// Map implements Mapper.
func (MIS2) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	span := obs.StartKernel("mis2:select")
	state := mis2States(g, seed, p)
	span.Done()
	span = obs.StartKernel("mis2:aggregate")
	key := make([]uint64, n)
	par.ForEach(n, p, func(i int) {
		key[i] = par.Mix64(seed ^ uint64(i)*0x9e3779b97f4a7c15)
	})
	higher := func(a, b int32) bool {
		return key[a] > key[b] || (key[a] == key[b] && a > b)
	}

	// Aggregation: roots are MIS vertices; everyone else joins a root at
	// distance one, then the rest join any aggregated neighbor (distance
	// two). Maximality guarantees coverage; a final sweep turns anything
	// unreached (possible only on degenerate inputs) into singletons.
	m := make([]int32, n)
	par.Fill(m, unset, p)
	par.ForEach(n, p, func(i int) {
		if state[i] == misIn {
			m[i] = int32(i)
		}
	})
	for round := 0; round < 2; round++ {
		next := make([]int32, n)
		par.Copy(next, m, p)
		par.ForEachChunked(n, p, 256, func(i int) {
			v := int32(i)
			if m[v] != unset {
				return
			}
			adj, _ := g.Neighbors(v)
			best := unset
			for _, u := range adj {
				if m[u] != unset {
					r := m[u]
					if best == unset || higher(r, best) {
						best = r
					}
				}
			}
			if best != unset {
				next[v] = best
			}
		})
		m = next
	}
	par.ForEach(n, p, func(i int) {
		if m[i] == unset {
			m[i] = int32(i)
		}
	})
	span.Done()
	// MIS2 has no random visit permutation, so the canonical order is the
	// identity: aggregates are numbered by their minimum member vertex id.
	nc := canonicalize(m, nil, p)
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}

// mis2States runs the iterated random-priority elimination and returns the
// per-vertex state array (misIn marks the distance-2 MIS).
func mis2States(g *graph.Graph, seed uint64, p int) []int32 {
	n := g.N()
	state := make([]int32, n)
	// Random priorities; ties broken by id via the tuple (key, id).
	key := make([]uint64, n)
	par.ForEach(n, p, func(i int) {
		key[i] = par.Mix64(seed ^ uint64(i)*0x9e3779b97f4a7c15)
	})
	higher := func(a, b int32) bool { // does a beat b?
		return key[a] > key[b] || (key[a] == key[b] && a > b)
	}

	t1 := make([]int32, n) // best undecided vertex within distance 1
	t2 := make([]int32, n) // best undecided vertex within distance 2
	for {
		undecided := par.CountInt64(n, p, func(i int) bool { return state[i] == misUndecided })
		if undecided == 0 {
			break
		}
		// t1[v]: the strongest undecided candidate among v and neighbors.
		par.ForEachChunked(n, p, 256, func(i int) {
			v := int32(i)
			best := unset
			if state[v] == misUndecided {
				best = v
			}
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if state[u] == misUndecided && (best == unset || higher(u, best)) {
					best = u
				}
			}
			t1[v] = best
		})
		// t2[v]: strongest candidate within distance 2 (max of t1 over the
		// closed neighborhood).
		par.ForEachChunked(n, p, 256, func(i int) {
			v := int32(i)
			best := t1[v]
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if t1[u] != unset && (best == unset || higher(t1[u], best)) {
					best = t1[u]
				}
			}
			t2[v] = best
		})
		// A vertex that dominates its own distance-2 neighborhood joins
		// the MIS.
		par.ForEach(n, p, func(i int) {
			v := int32(i)
			if state[v] == misUndecided && t2[v] == v {
				state[v] = misIn
			}
		})
		// Eliminate everything within distance 2 of a new MIS vertex.
		near := make([]bool, n)
		par.ForEachChunked(n, p, 256, func(i int) {
			v := int32(i)
			if state[v] == misIn {
				near[v] = true
				return
			}
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if state[u] == misIn {
					near[v] = true
					return
				}
			}
		})
		par.ForEachChunked(n, p, 256, func(i int) {
			v := int32(i)
			if state[v] != misUndecided {
				return
			}
			if near[v] {
				state[v] = misOut
				return
			}
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if near[u] {
					state[v] = misOut
					return
				}
			}
		})
	}
	return state
}
