package coarsen

import (
	"math"

	"mlcg/internal/graph"
	"mlcg/internal/par"
	"mlcg/internal/spmat"
)

// BuildSpGEMM constructs the coarse graph as the sparse triple product
// A_c = P·A·Pᵀ, where P is the nc×n aggregation matrix (Section II). Two
// calls into the SpGEMM kernel compute the product; the diagonal (intra-
// aggregate weight) is dropped to match the no-self-loop graph invariant.
type BuildSpGEMM struct{}

// Name implements Builder.
func (BuildSpGEMM) Name() string { return "spgemm" }

// Build implements Builder.
func (b BuildSpGEMM) Build(g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	return b.BuildWith(NewWorkspace(), g, m, p)
}

// BuildWith implements WorkspaceBuilder. The SpGEMM kernel manages its own
// scratch; the workspace covers the vertex-weight aggregation.
func (BuildSpGEMM) BuildWith(ws *Workspace, g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	n := g.N()
	if err := m.Validate(n); err != nil {
		return nil, err
	}
	nc := int(m.NC)
	p = par.Workers(p, n)
	a := spmat.FromGraph(g)
	ac := spmat.PAPt(a, m.M, m.NC, p)

	// Strip the diagonal and convert float accumulators back to the exact
	// integer weights (sums of int64 inputs are exactly representable for
	// any realistic weight range).
	cnt := growI32(&ws.cnt, nc)
	par.ForEachChunked(nc, p, 256, func(i int) {
		cols, _ := ac.Row(int32(i))
		var c int32
		for _, cc := range cols {
			if cc != int32(i) {
				c++
			}
		}
		cnt[i] = c
	})
	xadj := make([]int64, nc+1)
	par.PrefixSumInt32(xadj, cnt, p)
	adj := make([]int32, xadj[nc])
	wgt := make([]int64, xadj[nc])
	par.ForEachChunked(nc, p, 256, func(i int) {
		cols, vals := ac.Row(int32(i))
		pos := xadj[i]
		for k, cc := range cols {
			if cc == int32(i) {
				continue
			}
			adj[pos] = cc
			wgt[pos] = int64(math.Round(vals[k]))
			pos++
		}
	})
	ws.bounds = par.BalancedRanges(ws.bounds, g.Xadj, p)
	vwgt := aggregateVertexWeights(ws, g, m.M, nc, p, ws.bounds)
	return &graph.Graph{NumV: int32(nc), Xadj: xadj, Adj: adj, Wgt: wgt, VWgt: vwgt}, nil
}

// BuildGlobalSort is the global sort-based baseline (Section II): every
// fine directed edge becomes a triple <M[u], M[v], W(u,v)> packed into a
// 64-bit key; one parallel radix sort groups duplicates, which a
// segmented reduction then merges. The paper found this approach not
// competitive with the vertex-centric methods; it is included as the
// baseline and as an oracle for testing the others.
type BuildGlobalSort struct{}

// Name implements Builder.
func (BuildGlobalSort) Name() string { return "globalsort" }

// Build implements Builder.
func (b BuildGlobalSort) Build(g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	return b.BuildWith(NewWorkspace(), g, m, p)
}

// BuildWith implements WorkspaceBuilder.
func (BuildGlobalSort) BuildWith(ws *Workspace, g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	n := g.N()
	if err := m.Validate(n); err != nil {
		return nil, err
	}
	nc := int(m.NC)
	mv := m.M
	p = par.Workers(p, n)

	// Count cross-aggregate directed edges per vertex.
	perVertex := growI32(&ws.cEst, n)
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		a := mv[u]
		adj, _ := g.Neighbors(u)
		var c int32
		for _, v := range adj {
			if mv[v] != a {
				c++
			}
		}
		perVertex[i] = c
	})
	offs := growI64(&ws.offs, n+1)
	total := par.PrefixSumInt32(offs, perVertex, p)

	keys := growU64(&ws.keys64, int(total))
	vals := growU64(&ws.vals64, int(total))
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		a := mv[u]
		adj, wgt := g.Neighbors(u)
		pos := offs[i]
		for k, v := range adj {
			b := mv[v]
			if b == a {
				continue
			}
			keys[pos] = uint64(uint32(a))<<32 | uint64(uint32(b))
			vals[pos] = uint64(wgt[k])
			pos++
		}
	})
	par.RadixSortPairs(keys, vals, p)

	// Segmented reduction over equal keys. Boundaries are computed in
	// parallel; the compaction itself is a sequential scan (the sorted
	// stream is already the dominant cost).
	adj := make([]int32, 0, total/2)
	wgt := make([]int64, 0, total/2)
	xadj := make([]int64, nc+1)
	for lo := int64(0); lo < total; {
		hi := lo + 1
		for hi < total && keys[hi] == keys[lo] {
			hi++
		}
		var w int64
		for i := lo; i < hi; i++ {
			w += int64(vals[i])
		}
		a := int32(keys[lo] >> 32)
		b := int32(uint32(keys[lo]))
		adj = append(adj, b)
		wgt = append(wgt, w)
		xadj[a+1]++
		lo = hi
	}
	for i := 0; i < nc; i++ {
		xadj[i+1] += xadj[i]
	}
	ws.bounds = par.BalancedRanges(ws.bounds, g.Xadj, p)
	vwgt := aggregateVertexWeights(ws, g, mv, nc, p, ws.bounds)
	return &graph.Graph{NumV: int32(nc), Xadj: xadj, Adj: adj, Wgt: wgt, VWgt: vwgt}, nil
}
