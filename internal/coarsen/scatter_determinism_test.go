package coarsen

import (
	"testing"

	"mlcg/internal/graph"
)

// rawEqual compares the CSR arrays verbatim — unlike graph.Equal it does
// NOT canonicalize adjacency order, so it detects any scheduling-dependent
// permutation of the output.
func rawEqual(a, b *graph.Graph) bool {
	if a.NumV != b.NumV ||
		len(a.Xadj) != len(b.Xadj) || len(a.Adj) != len(b.Adj) ||
		len(a.Wgt) != len(b.Wgt) || len(a.VWgt) != len(b.VWgt) {
		return false
	}
	for i := range a.Xadj {
		if a.Xadj[i] != b.Xadj[i] {
			return false
		}
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] || a.Wgt[i] != b.Wgt[i] {
			return false
		}
	}
	for i := range a.VWgt {
		if a.VWgt[i] != b.VWgt[i] {
			return false
		}
	}
	return true
}

// TestBuildDeterministicAcrossWorkers pins the central guarantee of the
// two-phase scatter: every builder emits a byte-identical coarse CSR
// (including adjacency order, not just the canonicalized graph) for every
// worker count, and reusing a dirty workspace must not change the output.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	builders := allBuilders(t)
	for gname, g := range testGraphs() {
		g.MaterializeVWgt()
		m, err := HEC{}.Map(g, 42, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range builders {
			wb, ok := b.(WorkspaceBuilder)
			if !ok {
				t.Fatalf("%s: builder does not implement WorkspaceBuilder", b.Name())
			}
			ref, err := b.Build(g, m, 1)
			if err != nil {
				t.Fatalf("%s/%s p=1: %v", gname, b.Name(), err)
			}
			// One workspace left dirty across all worker counts (and, via
			// the outer loops, across graphs): reuse must not leak state.
			dirty := NewWorkspace()
			for _, p := range []int{1, 2, 4, 8} {
				fresh, err := b.Build(g, m, p)
				if err != nil {
					t.Fatalf("%s/%s p=%d: %v", gname, b.Name(), p, err)
				}
				if !rawEqual(ref, fresh) {
					t.Fatalf("%s/%s: p=%d output differs from p=1 (fresh workspace)", gname, b.Name(), p)
				}
				reused, err := wb.BuildWith(dirty, g, m, p)
				if err != nil {
					t.Fatalf("%s/%s p=%d reused ws: %v", gname, b.Name(), p, err)
				}
				if !rawEqual(ref, reused) {
					t.Fatalf("%s/%s: p=%d output differs from p=1 (reused workspace)", gname, b.Name(), p)
				}
			}
		}
	}
}

// TestBuildDeterministicAcrossWorkersBig repeats the cross-p check on a
// graph large enough that edge-balanced ranges genuinely differ per p.
func TestBuildDeterministicAcrossWorkersBig(t *testing.T) {
	g := bigTestGraph(3000, 17)
	g.MaterializeVWgt()
	m, err := HEC{}.Map(g, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range allBuilders(t) {
		ref, err := b.Build(g, m, 1)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		for _, p := range []int{2, 4, 8} {
			got, err := b.Build(g, m, p)
			if err != nil {
				t.Fatalf("%s p=%d: %v", b.Name(), p, err)
			}
			if !rawEqual(ref, got) {
				t.Fatalf("%s: p=%d output differs from p=1", b.Name(), p)
			}
		}
	}
}

// TestBuildWithSteadyStateAllocs pins the workspace payoff: once the arena
// has warmed up, a construction level allocates only the output CSR plus a
// constant handful of escaping closures — O(1) allocations, independent of
// graph size, where builders without a workspace allocate O(m) scratch
// every level.
func TestBuildWithSteadyStateAllocs(t *testing.T) {
	g := bigTestGraph(2000, 3)
	g.MaterializeVWgt()
	m, err := HEC{}.Map(g, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range allBuilders(t) {
		if b.Name() == "spgemm" || b.Name() == "globalsort" {
			// The SpGEMM kernel manages its own scratch and the global-sort
			// baseline grows its output slices incrementally; neither is
			// part of the steady-state guarantee.
			continue
		}
		wb := b.(WorkspaceBuilder)
		ws := NewWorkspace()
		// Warm up the arena.
		if _, err := wb.BuildWith(ws, g, m, 1); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := wb.BuildWith(ws, g, m, 1); err != nil {
				t.Error(err)
			}
		})
		// Output graph: Xadj, Adj, Wgt, VWgt, the Graph struct itself, plus
		// a few escaping closure headers. Anything near O(m) (thousands of
		// edges here) means the workspace is not actually being reused.
		if allocs > 32 {
			t.Errorf("%s: %v allocs per warm BuildWith, want ≤ 32", b.Name(), allocs)
		}
	}
}
