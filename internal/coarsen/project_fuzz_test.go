package coarsen

import (
	"testing"
)

// decodeHostileMaps builds a chain of level maps from fuzz bytes. Every map
// is in-range (entries mod the coarse size) but the shapes are hostile:
// stalled levels that do not reduce at all, total collapses to a single
// aggregate, empty levels, and arbitrary irregular fan-in. Returns the maps
// (finest first, Maps[i] maps level i onto level i+1) and the coarsest
// vertex count.
func decodeHostileMaps(in []byte) (maps [][]int32, coarsestN int) {
	rd := 0
	next := func() byte {
		if rd < len(in) {
			b := in[rd]
			rd++
			return b
		}
		return 0
	}
	levels := int(next()) % 5
	n := int(next()) % 40 // finest size; 0 produces the empty chain
	for l := 0; l < levels; l++ {
		var nc int
		switch next() % 4 {
		case 0:
			nc = n // stalled: no reduction this level
		case 1:
			if n > 0 {
				nc = 1 // total collapse to a singleton aggregate
			}
		case 2:
			nc = (n + 1) / 2 // the well-behaved halving shape
		default:
			if n > 0 {
				nc = int(next())%n + 1 // arbitrary reduction
			}
		}
		m := make([]int32, n)
		for u := 0; u < n; u++ {
			if nc > 0 {
				m[u] = int32(int(next()) % nc)
			}
		}
		maps = append(maps, m)
		n = nc
	}
	return maps, n
}

// FuzzProjectToFine drives Hierarchy.ProjectToFine with degenerate level
// maps — stalled (identity-size) levels, singleton collapses, empty
// coarsest, ragged chains — and checks it against a trivial sequential
// reference and against the ComposeMaps shortcut (projecting through the
// composed fine-to-coarsest map must agree with level-by-level projection).
func FuzzProjectToFine(f *testing.F) {
	f.Add([]byte{1, 8, 0, 1, 2, 3, 4, 5, 6, 7, 0, 9, 9})    // one stalled level
	f.Add([]byte{2, 6, 1, 3, 3, 3, 3, 3, 3, 0, 7})          // collapse then stall
	f.Add([]byte{3, 0, 2, 2, 2})                            // empty everywhere
	f.Add([]byte{4, 39, 2, 2, 2, 2})                        // deep halving chain
	f.Add([]byte{1, 5, 3, 2, 0, 1, 0, 1, 0, 255, 254, 253}) // irregular fan-in
	f.Add([]byte{0, 17, 42})                                // no levels at all
	f.Fuzz(func(t *testing.T, in []byte) {
		maps, nc := decodeHostileMaps(in)
		// Labels on the coarsest level: arbitrary values derived from the
		// input so mutations explore the payload too.
		coarsest := make([]int32, nc)
		for i := range coarsest {
			coarsest[i] = int32(i * 3)
			if len(in) > 0 {
				coarsest[i] += int32(in[i%len(in)])
			}
		}

		h := &Hierarchy{Maps: maps}
		got := h.ProjectToFine(coarsest)

		// Sequential reference: walk the maps coarsest-to-finest.
		want := coarsest
		for i := len(maps) - 1; i >= 0; i-- {
			m := maps[i]
			fine := make([]int32, len(m))
			for u := range m {
				fine[u] = want[m[u]]
			}
			want = fine
		}
		if len(got) != len(want) {
			t.Fatalf("projected length %d, reference %d", len(got), len(want))
		}
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("vertex %d: projected %d, reference %d", u, got[u], want[u])
			}
		}

		// Composition property: one hop through the composed map must agree.
		if len(maps) > 0 {
			composed := maps[0]
			for i := 1; i < len(maps); i++ {
				composed = ComposeMaps(composed, maps[i])
			}
			for u := range composed {
				if got[u] != coarsest[composed[u]] {
					t.Fatalf("vertex %d: level-by-level %d, composed-map %d",
						u, got[u], coarsest[composed[u]])
				}
			}
		}
	})
}

// TestProjectToFineDegenerate pins the named degenerate shapes directly so
// they are exercised on every `go test` run, not only under -fuzz.
func TestProjectToFineDegenerate(t *testing.T) {
	t.Run("no levels", func(t *testing.T) {
		h := &Hierarchy{}
		in := []int32{4, 5, 6}
		got := h.ProjectToFine(in)
		if len(got) != 3 || got[0] != 4 || got[1] != 5 || got[2] != 6 {
			t.Errorf("zero-level projection changed the input: %v", got)
		}
	})
	t.Run("stalled identity level", func(t *testing.T) {
		h := &Hierarchy{Maps: [][]int32{{0, 1, 2, 3}}}
		got := h.ProjectToFine([]int32{9, 8, 7, 6})
		for u, want := range []int32{9, 8, 7, 6} {
			if got[u] != want {
				t.Fatalf("identity map permuted labels: %v", got)
			}
		}
	})
	t.Run("singleton coarsest", func(t *testing.T) {
		h := &Hierarchy{Maps: [][]int32{{0, 0, 0, 0, 0}}}
		got := h.ProjectToFine([]int32{42})
		for u, v := range got {
			if v != 42 {
				t.Fatalf("vertex %d got %d, want 42", u, v)
			}
		}
	})
	t.Run("empty coarsest", func(t *testing.T) {
		h := &Hierarchy{Maps: [][]int32{{}}}
		got := h.ProjectToFine([]int32{})
		if len(got) != 0 {
			t.Errorf("empty chain projected to %d labels", len(got))
		}
	})
	t.Run("levels of size one throughout", func(t *testing.T) {
		h := &Hierarchy{Maps: [][]int32{{0}, {0}, {0}}}
		got := h.ProjectToFine([]int32{-1})
		if len(got) != 1 || got[0] != -1 {
			t.Errorf("unit chain projection = %v, want [-1]", got)
		}
	})
}
