package coarsen

import (
	"testing"

	"mlcg/internal/graph"
)

// fig1Demo mirrors bench.Fig1Demo (duplicated here to avoid an import
// cycle): the 16-vertex weighted demo graph of the Fig 1/2 illustrations.
func fig1Demo() *graph.Graph {
	e := []graph.Edge{
		{U: 0, V: 1, W: 4}, {U: 0, V: 2, W: 1}, {U: 1, V: 2, W: 2},
		{U: 1, V: 3, W: 3}, {U: 2, V: 3, W: 5}, {U: 3, V: 4, W: 1},
		{U: 4, V: 5, W: 6}, {U: 4, V: 6, W: 2}, {U: 5, V: 6, W: 3},
		{U: 5, V: 7, W: 2}, {U: 6, V: 7, W: 4}, {U: 7, V: 8, W: 1},
		{U: 8, V: 9, W: 5}, {U: 8, V: 10, W: 2}, {U: 9, V: 10, W: 3},
		{U: 9, V: 11, W: 4}, {U: 10, V: 11, W: 1}, {U: 11, V: 12, W: 2},
		{U: 12, V: 13, W: 6}, {U: 12, V: 14, W: 1}, {U: 13, V: 14, W: 2},
		{U: 13, V: 15, W: 3}, {U: 14, V: 15, W: 5}, {U: 15, V: 0, W: 1},
	}
	return graph.MustFromEdges(16, e)
}

// TestGoldenDemoOutcomes pins the fixed-seed behaviour of every mapper on
// the demo graph — since the canonical-renumbering change the values hold
// for every worker count, not just one. These are the qualitative Fig 1
// results recorded in EXPERIMENTS.md; a change here means an algorithm's
// deterministic behaviour drifted and the recorded analysis needs
// re-checking (update both together, deliberately).
//
// Values regenerated when the parallel mappers switched from racing CAS
// claims to deterministic reservation rounds with canonical coarse ids:
// only gosh moved (5 -> 4 — the rank-driven center election merges one
// more pair than the historical racy claim order happened to on this
// graph); the other mappers' memberships are unchanged on the demo.
func TestGoldenDemoOutcomes(t *testing.T) {
	golden := map[string]int32{
		"hec":    7,
		"hecseq": 7,
		"hec2":   14,
		"hec3":   7,
		"hem":    9,
		"hemseq": 9,
		"twohop": 8,
		"mis2":   3,
		// mis2fast reaches the same MIS fixpoint as mis2 by construction,
		// so its golden matches mis2's (TestMIS2FastMatchesMIS2Quality pins
		// the full-mapping equality on the generator suite).
		"mis2fast": 3,
		"gosh":     4,
		"goshhec":  5,
		"suitor":   8,
		"bsuitor":  3,
	}
	g := fig1Demo()
	for _, name := range MapperNames() {
		want, ok := golden[name]
		if !ok {
			t.Errorf("no golden value for mapper %q — add one", name)
			continue
		}
		mapper, err := MapperByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := mapper.Map(g, 20210517, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.NC != want {
			t.Errorf("%s: nc = %d, golden %d (deterministic behaviour drifted)", name, m.NC, want)
		}
	}
}
