package coarsen

import (
	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// TwoHop is the mt-Metis coarsening scheme (LaSalle et al.), new to the
// GPU in the paper: parallel HEM first, then — if too many vertices remain
// unmatched — two-hop matches, which contract vertices that are not
// adjacent but share a neighbor. The two-hop sub-classes run in order and
// each is skipped once the unmatched ratio falls below the threshold:
// leaves (degree-1 vertices hanging off the same vertex), twins (vertices
// with identical adjacency lists), and relatives (any two unmatched
// vertices sharing a neighbor).
type TwoHop struct {
	MaxPasses int // HEM pass bound, 0 means default

	// UnmatchedThreshold is the fraction of unmatched vertices above which
	// the next two-hop phase runs; mt-Metis uses a comparable constant.
	// Zero means the default of 0.10.
	UnmatchedThreshold float64

	// MaxTwinDegree bounds the adjacency-list comparison for twin
	// matching; mt-Metis uses a similar cap. Zero means the default of 64.
	MaxTwinDegree int
}

// Name implements Mapper.
func (TwoHop) Name() string { return "twohop" }

// Map implements Mapper.
func (t TwoHop) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	threshold := t.UnmatchedThreshold
	if threshold <= 0 {
		threshold = 0.10
	}
	maxTwinDeg := t.MaxTwinDegree
	if maxTwinDeg <= 0 {
		maxTwinDeg = 64
	}
	match, pos, passes, passMapped := hemMatch(g, seed, p, t.MaxPasses, false)

	unmatchedRatio := func() float64 {
		if n == 0 {
			return 0
		}
		c := par.CountInt64(n, p, func(i int) bool { return match[i] == unset })
		return float64(c) / float64(n)
	}
	if unmatchedRatio() > threshold {
		span := obs.StartKernel("twohop:leaf")
		leafMatch(g, match, p)
		span.Done()
	}
	if unmatchedRatio() > threshold {
		span := obs.StartKernel("twohop:twin")
		twinMatch(g, match, p, maxTwinDeg, seed)
		span.Done()
	}
	if unmatchedRatio() > threshold {
		span := obs.StartKernel("twohop:relative")
		relativeMatch(g, match, pos, p)
		span.Done()
	}
	// Whatever is still unmatched becomes a singleton.
	par.ForEach(n, p, func(i int) {
		if match[i] == unset {
			match[i] = int32(i)
		}
	})
	m, nc := matchToMapping(match, pos, p)
	return &Mapping{M: m, NC: nc, Passes: passes, PassMapped: passMapped}, nil
}

// leafMatch pairs up unmatched degree-1 vertices that hang off the same
// vertex (tech-report Algorithm 11). A degree-1 vertex is reachable only
// through its unique neighbor, so iterating over potential centers gives
// each leaf exactly one owner and the phase needs no synchronization
// beyond the parallel loop.
func leafMatch(g *graph.Graph, match []int32, p int) {
	par.ForEachChunked(g.N(), p, 256, func(i int) {
		v := int32(i)
		adj, _ := g.Neighbors(v)
		if len(adj) < 2 {
			return
		}
		prev := unset
		for _, u := range adj {
			if match[u] != unset || g.Degree(u) != 1 {
				continue
			}
			if prev == unset {
				prev = u
				continue
			}
			match[prev] = u
			match[u] = prev
			prev = unset
		}
	})
}

// twinMatch pairs unmatched vertices with identical adjacency lists
// (tech-report Algorithm 12). Candidate groups are found by hashing each
// sorted adjacency list and sorting the (hash, vertex) pairs; hash
// collisions are resolved by comparing the actual lists. Twins are never
// adjacent (a vertex cannot appear in its own adjacency list), so pairing
// them is always a valid two-hop contraction.
func twinMatch(g *graph.Graph, match []int32, p, maxDeg int, seed uint64) {
	n := g.N()
	cand := par.Pack(n, p, func(i int) bool {
		d := g.Degree(int32(i))
		return match[i] == unset && d >= 1 && d <= int64(maxDeg)
	})
	if len(cand) < 2 {
		return
	}
	keys := make([]uint64, len(cand))
	vals := make([]uint64, len(cand))
	scratch := make([][]int32, par.Workers(p, len(cand)))
	par.For(len(cand), p, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			u := cand[i]
			keys[i] = adjacencyHash(g, u, &scratch[w], seed)
			vals[i] = uint64(u)
		}
	})
	par.RadixSortPairs(keys, vals, p)
	// Walk hash groups; within a group, greedily pair verified twins.
	// Groups are disjoint vertex sets, so this loop could be parallelized
	// over group boundaries; group sizes are tiny in practice and the scan
	// is linear, so it runs sequentially for simplicity.
	var buf1, buf2 []int32
	for lo := 0; lo < len(keys); {
		hi := lo + 1
		for hi < len(keys) && keys[hi] == keys[lo] {
			hi++
		}
		if hi-lo >= 2 {
			prevIdx := -1
			for i := lo; i < hi; i++ {
				u := int32(vals[i])
				if match[u] != unset {
					continue
				}
				if prevIdx < 0 {
					prevIdx = i
					continue
				}
				v := int32(vals[prevIdx])
				if sameAdjacency(g, u, v, &buf1, &buf2) {
					match[u] = v
					match[v] = u
					prevIdx = -1
				}
			}
		}
		lo = hi
	}
}

// adjacencyHash returns an order-independent-but-verified hash of u's
// neighbor ids: the list is copied, sorted, and FNV-style mixed, so equal
// lists always collide and unequal lists almost never do.
func adjacencyHash(g *graph.Graph, u int32, scratch *[]int32, seed uint64) uint64 {
	adj, _ := g.Neighbors(u)
	buf := append((*scratch)[:0], adj...)
	*scratch = buf
	w := make([]int64, len(buf)) // weights ignored for twin identity
	par.SortPairsInt32(buf, w)
	h := par.Mix64(seed ^ uint64(len(buf)))
	for _, v := range buf {
		h = par.Mix64(h ^ uint64(uint32(v)))
	}
	return h
}

// sameAdjacency reports whether u and v have identical neighbor sets.
func sameAdjacency(g *graph.Graph, u, v int32, buf1, buf2 *[]int32) bool {
	au, _ := g.Neighbors(u)
	av, _ := g.Neighbors(v)
	if len(au) != len(av) {
		return false
	}
	b1 := append((*buf1)[:0], au...)
	b2 := append((*buf2)[:0], av...)
	*buf1, *buf2 = b1, b2
	w1 := make([]int64, len(b1))
	w2 := make([]int64, len(b2))
	par.SortPairsInt32(b1, w1)
	par.SortPairsInt32(b2, w2)
	for i := range b1 {
		if b1[i] != b2[i] {
			return false
		}
	}
	return true
}

// relativeMatch pairs unmatched vertices that share any neighbor
// (tech-report Algorithm 13), deterministically. The historical version
// CAS-claimed candidates, so which center paired a shared candidate
// depended on thread interleaving. Here every unmatched vertex instead
// elects a unique owner — its minimum-position neighbor that could act as
// a center (at least two unmatched neighbors) — and each center then pairs
// exactly the candidates it owns, in adjacency order. Ownership is a pure
// function of the frozen match state, so the pairing is identical for
// every worker count; writes are exclusive because owners partition the
// candidates.
func relativeMatch(g *graph.Graph, match, pos []int32, p int) {
	n := g.N()
	// unmatchedDeg[v]: how many unmatched neighbors v has, against the
	// frozen pre-phase match state.
	unmatchedDeg := make([]int32, n)
	par.ForEachChunked(n, p, 256, func(i int) {
		v := int32(i)
		adj, _ := g.Neighbors(v)
		var c int32
		for _, u := range adj {
			if match[u] == unset {
				c++
			}
		}
		unmatchedDeg[v] = c
	})
	// owner[u]: the elected center for unmatched u, or unset.
	owner := make([]int32, n)
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		owner[u] = unset
		if match[u] != unset {
			return
		}
		adj, _ := g.Neighbors(u)
		best := unset
		for _, v := range adj {
			if unmatchedDeg[v] >= 2 && (best == unset || pos[v] < pos[best]) {
				best = v
			}
		}
		owner[u] = best
	})
	// Each center pairs its owned candidates two at a time. A center may
	// itself be a candidate owned elsewhere; it only ever writes its owned
	// cells (never its own), so the writes stay exclusive, and a pair of
	// owned candidates always shares the center as a common neighbor.
	par.ForEachChunked(n, p, 128, func(i int) {
		v := int32(i)
		if unmatchedDeg[v] < 2 {
			return
		}
		adj, _ := g.Neighbors(v)
		prev := unset
		for _, u := range adj {
			if owner[u] != v {
				continue
			}
			if prev == unset {
				prev = u
				continue
			}
			match[prev] = u
			match[u] = prev
			prev = unset
		}
	})
}
