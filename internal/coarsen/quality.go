package coarsen

import (
	"fmt"
	"sort"

	"mlcg/internal/graph"
)

// QualityReport summarizes how a mapping treats the fine graph: the
// aggregate size distribution and how much edge weight the contraction
// keeps inside aggregates. High retained weight with controlled aggregate
// sizes is what makes a coarsening useful downstream (the paper's
// desirable-features discussion in Section I).
type QualityReport struct {
	NC             int32
	Ratio          float64 // n / nc
	MinAgg, MaxAgg int
	MeanAgg        float64
	MedianAgg      int
	// IntraWeight is the edge weight contracted inside aggregates;
	// CrossWeight survives into the coarse graph. Their sum is the fine
	// graph's total edge weight.
	IntraWeight, CrossWeight int64
	// RetainedFrac = IntraWeight / (IntraWeight + CrossWeight).
	RetainedFrac float64
	// SingletonFrac is the fraction of aggregates with a single vertex —
	// the stalling signal for matching-based schemes.
	SingletonFrac float64
}

// Quality computes the report for mapping m over fine graph g.
func Quality(g *graph.Graph, m *Mapping) (*QualityReport, error) {
	if err := m.Validate(g.N()); err != nil {
		return nil, err
	}
	sizes := make([]int, m.NC)
	for _, a := range m.M {
		sizes[a]++
	}
	r := &QualityReport{NC: m.NC, Ratio: m.Ratio()}
	if m.NC > 0 {
		sorted := append([]int(nil), sizes...)
		sort.Ints(sorted)
		r.MinAgg = sorted[0]
		r.MaxAgg = sorted[len(sorted)-1]
		r.MedianAgg = sorted[len(sorted)/2]
		r.MeanAgg = float64(g.N()) / float64(m.NC)
		singles := 0
		for _, s := range sizes {
			if s == 1 {
				singles++
			}
		}
		r.SingletonFrac = float64(singles) / float64(m.NC)
	}
	for u := int32(0); u < g.NumV; u++ {
		adj, wgt := g.Neighbors(u)
		for k, v := range adj {
			if u < v {
				if m.M[u] == m.M[v] {
					r.IntraWeight += wgt[k]
				} else {
					r.CrossWeight += wgt[k]
				}
			}
		}
	}
	if t := r.IntraWeight + r.CrossWeight; t > 0 {
		r.RetainedFrac = float64(r.IntraWeight) / float64(t)
	}
	return r, nil
}

// String implements fmt.Stringer with a one-line summary.
func (r *QualityReport) String() string {
	return fmt.Sprintf("nc=%d ratio=%.2f agg[min/med/max]=%d/%d/%d singletons=%.1f%% retained=%.1f%%",
		r.NC, r.Ratio, r.MinAgg, r.MedianAgg, r.MaxAgg,
		100*r.SingletonFrac, 100*r.RetainedFrac)
}

// VerifyStrictAggregation checks the invariant of strict aggregation
// schemes: every aggregate induces a connected subgraph. Two-hop matching
// intentionally violates it; everything else in the registry satisfies it.
func VerifyStrictAggregation(g *graph.Graph, m *Mapping) error {
	if err := m.Validate(g.N()); err != nil {
		return err
	}
	n := g.N()
	members := make([][]int32, m.NC)
	for u := 0; u < n; u++ {
		members[m.M[u]] = append(members[m.M[u]], int32(u))
	}
	visited := make([]bool, n)
	var stack []int32
	for a, mem := range members {
		if len(mem) <= 1 {
			continue
		}
		stack = append(stack[:0], mem[0])
		visited[mem[0]] = true
		count := 0
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			count++
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if m.M[v] == int32(a) && !visited[v] {
					visited[v] = true
					stack = append(stack, v)
				}
			}
		}
		if count != len(mem) {
			return fmt.Errorf("coarsen: aggregate %d is disconnected (%d of %d reachable)",
				a, count, len(mem))
		}
	}
	return nil
}
