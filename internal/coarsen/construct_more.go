package coarsen

import (
	"container/heap"

	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// BuildHeap is the heap-based deduplication variant the paper's authors
// implemented on the CPU (Section V: "a graph construction strategy using
// heaps for deduplication"): each coarse vertex's bin is turned into a
// binary min-heap on neighbor id and drained in order, merging equal keys.
// Asymptotically it matches the sort-based dedup (O(d log d) per bin) but
// with a different constant profile — it is included for the comparison,
// not as a recommended default.
type BuildHeap struct {
	SkewThreshold float64
	ForceOneSided bool
}

// Name implements Builder.
func (BuildHeap) Name() string { return "heap" }

// Build implements Builder.
func (b BuildHeap) Build(g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	return b.BuildWith(NewWorkspace(), g, m, p)
}

// BuildWith implements WorkspaceBuilder.
func (b BuildHeap) BuildWith(ws *Workspace, g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	mode := BuildSort{SkewThreshold: b.SkewThreshold, ForceOneSided: b.ForceOneSided}.mode(g)
	return buildVertexCentric(ws, g, m, p, mode, dedupHeapSegments)
}

// pairHeap is a binary min-heap over (key, weight) pairs ordered by key.
type pairHeap struct {
	keys []int32
	wgts []int64
}

func (h *pairHeap) Len() int           { return len(h.keys) }
func (h *pairHeap) Less(i, j int) bool { return h.keys[i] < h.keys[j] }
func (h *pairHeap) Swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.wgts[i], h.wgts[j] = h.wgts[j], h.wgts[i]
}
func (h *pairHeap) Push(x interface{}) { panic("pairHeap: push unused; heapify in place") }
func (h *pairHeap) Pop() interface{} {
	n := len(h.keys) - 1
	h.keys = h.keys[:n]
	h.wgts = h.wgts[:n]
	return nil
}

// dedupHeapSegments deduplicates every segment by heapifying it in place
// and draining in key order into a per-worker scratch buffer, merging
// duplicates.
func dedupHeapSegments(ws *Workspace, f []int32, x []int64, r []int64, cnt []int32, p int) []int32 {
	span := obs.StartKernel("dedup:heap")
	defer span.Done()
	nc := len(cnt)
	newCnt := growI32(&ws.newCnt, nc)
	p = par.Workers(p, nc)
	keyBufs, wgtBufs := ws.pairBufsFor(p)
	par.ForChunked(nc, p, 64, func(wid, aLo, aHi int) {
		outK := keyBufs[wid]
		outW := wgtBufs[wid]
		// One heap header per chunk, re-pointed at each segment, so the
		// interface conversion for heap.Init does not allocate per bin.
		ph := &pairHeap{}
		for a := aLo; a < aHi; a++ {
			lo := r[a]
			n := int(cnt[a])
			if n == 0 {
				newCnt[a] = 0
				continue
			}
			ph.keys = f[lo : lo+int64(n)]
			ph.wgts = x[lo : lo+int64(n)]
			heap.Init(ph)
			outK = outK[:0]
			outW = outW[:0]
			for ph.Len() > 0 {
				k, w := ph.keys[0], ph.wgts[0]
				if l := len(outK); l > 0 && outK[l-1] == k {
					outW[l-1] += w
				} else {
					outK = append(outK, k)
					outW = append(outW, w)
				}
				// Pop the root: move the last element to the root and
				// sift down by shrinking the heap.
				last := ph.Len() - 1
				ph.Swap(0, last)
				ph.keys = ph.keys[:last]
				ph.wgts = ph.wgts[:last]
				if last > 0 {
					heap.Fix(ph, 0)
				}
			}
			copy(f[lo:], outK)
			copy(x[lo:], outW)
			newCnt[a] = int32(len(outK))
		}
		keyBufs[wid] = outK
		wgtBufs[wid] = outW
	})
	return newCnt
}

// BuildHybrid realizes the paper's future-work idea of "deciding whether
// to sort or hash on a per-vertex basis": short bins use the insertion/
// radix sort path (duplication is usually low there), long bins — the hub
// bins of skewed graphs where duplication concentrates — use the hash
// accumulator.
type BuildHybrid struct {
	SkewThreshold float64
	ForceOneSided bool
	// SortBelow is the bin length under which the sort path is used.
	// Zero means 128.
	SortBelow int
}

// Name implements Builder.
func (BuildHybrid) Name() string { return "hybrid" }

// Build implements Builder.
func (b BuildHybrid) Build(g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	return b.BuildWith(NewWorkspace(), g, m, p)
}

// BuildWith implements WorkspaceBuilder.
func (b BuildHybrid) BuildWith(ws *Workspace, g *graph.Graph, m *Mapping, p int) (*graph.Graph, error) {
	mode := BuildSort{SkewThreshold: b.SkewThreshold, ForceOneSided: b.ForceOneSided}.mode(g)
	cutover := b.SortBelow
	if cutover <= 0 {
		cutover = 128
	}
	dedup := func(ws *Workspace, f []int32, x []int64, r []int64, cnt []int32, p int) []int32 {
		return dedupHybridSegments(ws, f, x, r, cnt, p, cutover)
	}
	return buildVertexCentric(ws, g, m, p, mode, dedup)
}

// dedupHybridSegments picks sort or hash per segment by length.
func dedupHybridSegments(ws *Workspace, f []int32, x []int64, r []int64, cnt []int32, p, cutover int) []int32 {
	span := obs.StartKernel("dedup:hybrid")
	defer span.Done()
	nc := len(cnt)
	newCnt := growI32(&ws.newCnt, nc)
	p = par.Workers(p, nc)
	tables := ws.tablesFor(p)
	scratch := ws.sortScratchFor(p)
	par.ForChunked(nc, p, 64, func(wid, aLo, aHi int) {
		ht := tables[wid]
		defer ht.flushCounters()
		sc := scratch[wid]
		for a := aLo; a < aHi; a++ {
			lo := r[a]
			n := int(cnt[a])
			if n == 0 {
				newCnt[a] = 0
				continue
			}
			seg := f[lo : lo+int64(n)]
			wseg := x[lo : lo+int64(n)]
			if n < cutover {
				par.SortPairsInt32Scratch(seg, wseg, sc)
				var w int32
				for i := 0; i < n; i++ {
					if w > 0 && seg[w-1] == seg[i] {
						wseg[w-1] += wseg[i]
					} else {
						seg[w] = seg[i]
						wseg[w] = wseg[i]
						w++
					}
				}
				newCnt[a] = w
				continue
			}
			ht.reset(n)
			for i := 0; i < n; i++ {
				ht.add(seg[i], wseg[i])
			}
			var w int64
			for s := 0; s < ht.cap; s++ {
				if ht.occupied(s) {
					seg[w] = ht.keys[s]
					wseg[w] = ht.vals[s]
					w++
				}
			}
			newCnt[a] = int32(w)
		}
	})
	return newCnt
}
