package coarsen

import (
	"testing"

	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// benchMapWithRenumber runs the mapper end to end ("full") and the canonical
// renumber kernel alone ("renumber") on the same instance, so the relative
// cost of the canonicalization pass can be read off directly. The renumber
// sub-benchmark exploits idempotence: canonical labels are a fixpoint of
// canonicalize, so the kernel re-runs on its own output without per-iteration
// copies. The acceptance target is renumber < 5% of full map time.
func benchMapWithRenumber(b *testing.B, mapper Mapper) {
	g := bigTestGraph(100000, 5)
	p := 0 // GOMAXPROCS

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mapper.Map(g, 42, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("renumber", func(b *testing.B) {
		m, err := mapper.Map(g, 42, p)
		if err != nil {
			b.Fatal(err)
		}
		pos := par.InversePerm(par.RandPerm(g.N(), 42, p), p)
		labels := append([]int32(nil), m.M...)
		canonicalize(labels, pos, p) // reach the fixpoint once
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			canonicalize(labels, pos, p)
		}
	})
}

// BenchmarkObsOverhead measures the cost of the obs instrumentation on a
// full multilevel coarsening run: "disabled" is the production path (every
// span/counter call is a nil-check), "enabled" runs with an active trace.
// The acceptance target is a disabled-path throughput delta within noise
// (≤2% vs. the pre-instrumentation baseline); the enabled-path cost is
// reported for the record, not bounded.
func BenchmarkObsOverhead(b *testing.B) {
	g := bigTestGraph(100000, 5)
	run := func(b *testing.B) {
		c := &Coarsener{Mapper: HEC{}, Builder: BuildSort{}, Seed: 42}
		for i := 0; i < b.N; i++ {
			if _, err := c.Run(g); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		if obs.Enabled() {
			b.Fatal("trace unexpectedly active")
		}
		b.ReportAllocs()
		run(b)
	})
	b.Run("enabled", func(b *testing.B) {
		tr := obs.StartTrace("bench")
		if tr == nil {
			b.Fatal("could not start trace")
		}
		defer tr.Stop()
		b.ReportAllocs()
		run(b)
	})
}

func BenchmarkMapHEC(b *testing.B)    { benchMapWithRenumber(b, HEC{}) }
func BenchmarkMapHEM(b *testing.B)    { benchMapWithRenumber(b, HEM{}) }
func BenchmarkMapTwoHop(b *testing.B) { benchMapWithRenumber(b, TwoHop{}) }
func BenchmarkMapGOSH(b *testing.B)   { benchMapWithRenumber(b, GOSH{}) }

// The D2-MIS pair: same fixpoint, full-resweep vs worklist kernel. Run
// both (make bench-mis2) to read the worklist speedup off directly.
func BenchmarkMapMIS2(b *testing.B)     { benchMapWithRenumber(b, MIS2{}) }
func BenchmarkMapMIS2Fast(b *testing.B) { benchMapWithRenumber(b, MIS2Fast{}) }
