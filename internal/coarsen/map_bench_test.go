package coarsen

import (
	"testing"

	"mlcg/internal/par"
)

// benchMapWithRenumber runs the mapper end to end ("full") and the canonical
// renumber kernel alone ("renumber") on the same instance, so the relative
// cost of the canonicalization pass can be read off directly. The renumber
// sub-benchmark exploits idempotence: canonical labels are a fixpoint of
// canonicalize, so the kernel re-runs on its own output without per-iteration
// copies. The acceptance target is renumber < 5% of full map time.
func benchMapWithRenumber(b *testing.B, mapper Mapper) {
	g := bigTestGraph(100000, 5)
	p := 0 // GOMAXPROCS

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mapper.Map(g, 42, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("renumber", func(b *testing.B) {
		m, err := mapper.Map(g, 42, p)
		if err != nil {
			b.Fatal(err)
		}
		pos := par.InversePerm(par.RandPerm(g.N(), 42, p), p)
		labels := append([]int32(nil), m.M...)
		canonicalize(labels, pos, p) // reach the fixpoint once
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			canonicalize(labels, pos, p)
		}
	})
}

func BenchmarkMapHEC(b *testing.B)    { benchMapWithRenumber(b, HEC{}) }
func BenchmarkMapHEM(b *testing.B)    { benchMapWithRenumber(b, HEM{}) }
func BenchmarkMapTwoHop(b *testing.B) { benchMapWithRenumber(b, TwoHop{}) }
func BenchmarkMapGOSH(b *testing.B)   { benchMapWithRenumber(b, GOSH{}) }
