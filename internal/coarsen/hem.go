package coarsen

import (
	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// HEMSeq is the sequential Heavy Edge Matching algorithm (Algorithm 2):
// vertices are visited in random order; an unmatched vertex pairs with its
// heaviest unmatched neighbor, or becomes a singleton when none exists.
// Because aggregates have at most two vertices, the coarsening ratio is at
// most two.
type HEMSeq struct{}

// Name implements Mapper.
func (HEMSeq) Name() string { return "hemseq" }

// Map implements Mapper.
func (HEMSeq) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	perm := par.RandPerm(n, seed, p)
	pos := par.InversePerm(perm, p)
	m := make([]int32, n)
	for i := range m {
		m[i] = unset
	}
	// Root-vertex labels (the visited vertex anchors its aggregate);
	// canonicalize turns them into the canonical dense ids.
	for _, u := range perm {
		if m[u] != unset {
			continue
		}
		adj, wgt := g.Neighbors(u)
		var bw int64
		x := unset
		for k, v := range adj {
			if m[v] == unset && wgt[k] > bw {
				bw = wgt[k]
				x = v
			}
		}
		if x != unset {
			m[x] = u
		}
		m[u] = u
	}
	nc := canonicalize(m, pos, p)
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}

// HEM is the parallel heavy edge matching (tech-report Algorithm 10),
// built on the same deterministic reservation rounds as HEC with one
// distinction: the heaviest neighbor is chosen among unmatched vertices,
// so the heavy array is recomputed for the unassigned vertices after each
// pass, and there are no inherit edges — an operation whose partner was
// matched away simply retries against a fresh H next pass.
type HEM struct {
	MaxPasses int // 0 means the default of 64
}

// Name implements Mapper.
func (HEM) Name() string { return "hem" }

// Map implements Mapper.
func (h HEM) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	match, pos, passes, passMapped := hemMatch(g, seed, p, h.MaxPasses, true)
	m, nc := matchToMapping(match, pos, p)
	return &Mapping{M: m, NC: nc, Passes: passes, PassMapped: passMapped}, nil
}

// hemMatch runs the deterministic parallel HEM passes and returns the
// match array — match[u] == v and match[v] == u for matched pairs,
// match[u] == u for singletons, unset for unmatched vertices — along with
// the permutation positions used (for canonical relabeling downstream).
// When singletons is true, vertices with no unmatched neighbor are
// finalized as singletons (plain HEM); when false they are left unmatched
// for the two-hop phases.
//
// Each pass is one reservation round: every unmatched vertex u proposes
// the pair {u, hv[u]} and reserves both cells with an atomic-min on
// pos[u]; proposals holding the minimum on both cells commit. The winners
// depend only on (graph, seed), never on scheduling, and the
// minimum-position pending proposal always commits, so passes make
// progress until only neighborless vertices remain.
func hemMatch(g *graph.Graph, seed uint64, p, maxPasses int, singletons bool) (match, pos []int32, passes int, passMapped []int64) {
	n := g.N()
	if maxPasses <= 0 {
		maxPasses = 64
	}
	perm := par.RandPerm(n, seed, p)
	pos = par.InversePerm(perm, p)

	match = make([]int32, n)
	par.Fill(match, unset, p)
	res := make([]int32, n)
	inf := int32(n)

	queue := perm
	for len(queue) > 0 && passes < maxPasses {
		passes++
		span := obs.StartKernel("hem:pass")
		hv := heavyUnmatchedNeighbors(g, match, pos, p)
		// Reservable cells all belong to queued vertices (proposal targets
		// are unmatched), so resetting the queue's cells covers them.
		par.ForEach(len(queue), p, func(i int) {
			res[queue[i]] = inf
		})
		// Reservation issue and CAS-retry counts batch per chunk (one
		// flush each — free when tracing is off).
		par.ForChunked(len(queue), p, 512, func(_, lo, hi int) {
			var reserves, retries int64
			for i := lo; i < hi; i++ {
				u := queue[i]
				v := hv[u]
				if v == u {
					continue // no unmatched neighbor; handled in the commit wave
				}
				retries += par.AtomicMinInt32Retries(&res[u], pos[u])
				retries += par.AtomicMinInt32Retries(&res[v], pos[u])
				reserves += 2
			}
			obs.Add(obs.CtrReserve, reserves)
			obs.Add(obs.CtrCASRetry, retries)
		})
		par.ForChunked(len(queue), p, 512, func(_, lo, hi int) {
			var commits int64
			for i := lo; i < hi; i++ {
				u := queue[i]
				v := hv[u]
				if v == u {
					// A vertex whose neighbors are all matched can never be
					// proposed to (a proposer would be its unmatched neighbor),
					// so finalizing it is always safe.
					if singletons {
						match[u] = u
						commits++
					}
					continue
				}
				if res[u] == pos[u] && res[v] == pos[u] {
					match[u] = v
					match[v] = u
					commits++
				}
			}
			obs.Add(obs.CtrCommit, commits)
		})
		next := par.Pack(len(queue), p, func(i int) bool {
			return match[queue[i]] == unset
		})
		matched := int64(len(queue) - len(next))
		passMapped = append(passMapped, matched)
		q2 := make([]int32, len(next))
		par.ForEach(len(next), p, func(i int) {
			q2[i] = queue[next[i]]
		})
		queue = q2
		span.Done()
		if matched == 0 {
			// Only vertices with no unmatched neighbors remain (and
			// singletons is false, or they would have been finalized);
			// terminal for pure matching.
			break
		}
	}
	if singletons && len(queue) > 0 {
		for _, u := range queue {
			if match[u] == unset {
				match[u] = u
			}
		}
		passMapped = append(passMapped, int64(len(queue)))
		passes++
	}
	return match, pos, passes, passMapped
}

// matchToMapping converts a complete match array (no unset entries) into a
// canonically labeled compact mapping. The root of a pair is the lower
// vertex id; canonicalize then relabels by minimum permutation position.
func matchToMapping(match, pos []int32, p int) ([]int32, int32) {
	n := len(match)
	m := make([]int32, n)
	par.ForEach(n, p, func(i int) {
		u := int32(i)
		v := match[u]
		if v == unset {
			panic("coarsen: matchToMapping on incomplete match")
		}
		if v < u {
			m[u] = v
		} else {
			m[u] = u
		}
	})
	nc := canonicalize(m, pos, p)
	return m, nc
}
