package coarsen

import (
	"sync/atomic"

	"mlcg/internal/graph"
	"mlcg/internal/par"
)

// HEMSeq is the sequential Heavy Edge Matching algorithm (Algorithm 2):
// vertices are visited in random order; an unmatched vertex pairs with its
// heaviest unmatched neighbor, or becomes a singleton when none exists.
// Because aggregates have at most two vertices, the coarsening ratio is at
// most two.
type HEMSeq struct{}

// Name implements Mapper.
func (HEMSeq) Name() string { return "hemseq" }

// Map implements Mapper.
func (HEMSeq) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	perm := par.RandPerm(n, seed, p)
	m := make([]int32, n)
	for i := range m {
		m[i] = unset
	}
	var nc int32
	for _, u := range perm {
		if m[u] != unset {
			continue
		}
		adj, wgt := g.Neighbors(u)
		var bw int64
		x := unset
		for k, v := range adj {
			if m[v] == unset && wgt[k] > bw {
				bw = wgt[k]
				x = v
			}
		}
		if x != unset {
			m[x] = nc
		}
		m[u] = nc
		nc++
	}
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}

// HEM is the parallel heavy edge matching (tech-report Algorithm 10),
// modeled on the lock-free machinery of Algorithm 4 with one distinction:
// the heaviest neighbor is chosen among unmatched vertices, so the heavy
// array is recomputed for the unassigned vertices after each pass, and
// there are no inherit edges — a failed claim always retries.
type HEM struct {
	MaxPasses int // 0 means the default of 64
}

// Name implements Mapper.
func (HEM) Name() string { return "hem" }

// Map implements Mapper.
func (h HEM) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	match, passes, passMapped := hemMatch(g, seed, p, h.MaxPasses, true)
	m, nc := matchToMapping(match)
	return &Mapping{M: m, NC: nc, Passes: passes, PassMapped: passMapped}, nil
}

// hemMatch runs parallel HEM passes and returns the match array:
// match[u] == v and match[v] == u for matched pairs, match[u] == u for
// singletons, and unset for unmatched vertices. When singletons is true,
// vertices with no unmatched neighbor are finalized as singletons (plain
// HEM); when false they are left unmatched for the two-hop phases.
func hemMatch(g *graph.Graph, seed uint64, p, maxPasses int, singletons bool) (match []int32, passes int, passMapped []int64) {
	n := g.N()
	if maxPasses <= 0 {
		maxPasses = 64
	}
	perm := par.RandPerm(n, seed, p)
	pos := par.InversePerm(perm, p)

	match = make([]int32, n)
	par.Fill(match, unset, p)
	c := make([]int32, n)

	queue := perm
	for len(queue) > 0 && passes < maxPasses {
		passes++
		hv := heavyUnmatchedNeighbors(g, match, pos, p)
		// Reset claims for the vertices still in play.
		par.ForEach(len(queue), p, func(i int) {
			c[queue[i]] = 0
		})
		par.ForEachChunked(len(queue), p, 512, func(i int) {
			u := queue[i]
			if atomic.LoadInt32(&match[u]) != unset {
				return
			}
			v := hv[u]
			if v == u {
				// No unmatched neighbor. Finalize as singleton (HEM) or
				// leave for two-hop matching.
				if singletons && atomic.CompareAndSwapInt32(&c[u], 0, u+1) {
					atomic.StoreInt32(&match[u], u)
				}
				return
			}
			if hv[v] == u && pos[u] > pos[v] && atomic.LoadInt32(&match[v]) == unset {
				return // partner drives mutual pairs
			}
			if atomic.LoadInt32(&c[u]) != 0 {
				return
			}
			if !atomic.CompareAndSwapInt32(&c[u], 0, v+1) {
				return
			}
			if atomic.CompareAndSwapInt32(&c[v], 0, u+1) {
				atomic.StoreInt32(&match[v], u)
				atomic.StoreInt32(&match[u], v)
				return
			}
			// v was claimed by someone else; matching has no inherit
			// edges, so release and retry next pass with a fresh H.
			atomic.StoreInt32(&c[u], 0)
		})
		next := par.Pack(len(queue), p, func(i int) bool {
			return atomic.LoadInt32(&match[queue[i]]) == unset
		})
		matched := int64(len(queue) - len(next))
		passMapped = append(passMapped, matched)
		q2 := make([]int32, len(next))
		par.ForEach(len(next), p, func(i int) {
			q2[i] = queue[next[i]]
		})
		queue = q2
		if matched == 0 {
			// Remaining vertices form an independent set among the
			// unmatched (or are livelocked); both cases are terminal for
			// pure matching.
			break
		}
	}
	if singletons && len(queue) > 0 {
		for _, u := range queue {
			if match[u] == unset {
				match[u] = u
			}
		}
		passMapped = append(passMapped, int64(len(queue)))
		passes++
	}
	return match, passes, passMapped
}

// matchToMapping converts a complete match array (no unset entries) into a
// compact mapping. The root of a pair is the lower vertex id.
func matchToMapping(match []int32) ([]int32, int32) {
	n := len(match)
	m := make([]int32, n)
	for u := 0; u < n; u++ {
		v := match[u]
		if v == unset {
			panic("coarsen: matchToMapping on incomplete match")
		}
		if v < int32(u) {
			m[u] = v
		} else {
			m[u] = int32(u)
		}
	}
	nc := compactRoots(m)
	return m, nc
}
