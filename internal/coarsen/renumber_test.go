package coarsen

import (
	"testing"

	"mlcg/internal/par"
)

func TestCanonicalizeBasic(t *testing.T) {
	// Labels are arbitrary root ids; pos is the identity, so aggregates
	// are numbered by minimum member index: {0,2} -> 0, {1,3,4} -> 1.
	m := []int32{2, 4, 2, 4, 4}
	pos := []int32{0, 1, 2, 3, 4}
	nc := canonicalize(m, pos, 1)
	want := []int32{0, 1, 0, 1, 1}
	if nc != 2 {
		t.Fatalf("nc = %d, want 2", nc)
	}
	for i := range m {
		if m[i] != want[i] {
			t.Fatalf("m = %v, want %v", m, want)
		}
	}
}

func TestCanonicalizeOrdersByPosition(t *testing.T) {
	// Same membership, but pos reverses the visit order: the aggregate
	// containing the minimum position (vertex 4 here) gets id 0.
	m := []int32{2, 4, 2, 4, 4}
	pos := []int32{4, 3, 2, 1, 0}
	nc := canonicalize(m, pos, 1)
	want := []int32{1, 0, 1, 0, 0}
	if nc != 2 {
		t.Fatalf("nc = %d, want 2", nc)
	}
	for i := range m {
		if m[i] != want[i] {
			t.Fatalf("m = %v, want %v", m, want)
		}
	}
}

func TestCanonicalizeNilPosIsIdentity(t *testing.T) {
	m := []int32{3, 3, 0, 0, 3}
	nc := canonicalize(m, nil, 2)
	// Aggregate {0,1,4} has min member 0 -> id 0; {2,3} -> id 1.
	want := []int32{0, 0, 1, 1, 0}
	if nc != 2 {
		t.Fatalf("nc = %d, want 2", nc)
	}
	for i := range m {
		if m[i] != want[i] {
			t.Fatalf("m = %v, want %v", m, want)
		}
	}
}

func TestCanonicalizeEmptyAndSingleton(t *testing.T) {
	if nc := canonicalize(nil, nil, 4); nc != 0 {
		t.Errorf("empty: nc = %d", nc)
	}
	m := []int32{0}
	if nc := canonicalize(m, nil, 4); nc != 1 || m[0] != 0 {
		t.Errorf("singleton: nc = %d, m = %v", nc, m)
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	// Canonical labels fed back in (with the same pos) must be a fixpoint:
	// the benchmark relies on this to re-run the kernel without copies.
	n := 5000
	m := make([]int32, n)
	rng := par.NewRNG(17)
	for i := range m {
		m[i] = int32(rng.Intn(n))
	}
	// Make the labeling "rooted" enough to be a valid partition label set
	// (any values work — canonicalize only partitions by equal labels).
	pos := par.InversePerm(par.RandPerm(n, 99, 1), 1)
	nc1 := canonicalize(m, pos, 4)
	snap := append([]int32(nil), m...)
	nc2 := canonicalize(m, pos, 4)
	if nc1 != nc2 {
		t.Fatalf("nc changed on second pass: %d vs %d", nc1, nc2)
	}
	for i := range m {
		if m[i] != snap[i] {
			t.Fatalf("labels changed on second pass at %d", i)
		}
	}
}

func TestCanonicalizeWorkerCountInvariant(t *testing.T) {
	n := 20000
	rng := par.NewRNG(5)
	base := make([]int32, n)
	for i := range base {
		base[i] = int32(rng.Intn(n / 3))
	}
	pos := par.InversePerm(par.RandPerm(n, 7, 1), 1)

	ref := append([]int32(nil), base...)
	refNC := canonicalize(ref, pos, 1)
	if refNC <= 0 || refNC > int32(n/3) {
		t.Fatalf("implausible nc %d", refNC)
	}
	for _, p := range []int{2, 4, 8} {
		m := append([]int32(nil), base...)
		nc := canonicalize(m, pos, p)
		if nc != refNC {
			t.Fatalf("p=%d: nc %d != %d", p, nc, refNC)
		}
		for i := range m {
			if m[i] != ref[i] {
				t.Fatalf("p=%d: label differs at %d", p, i)
			}
		}
	}
}

func TestCanonicalizeCompact(t *testing.T) {
	// Output ids must be dense in [0, nc) regardless of how sparse the
	// input labels were.
	n := 1000
	m := make([]int32, n)
	for i := range m {
		m[i] = int32((i / 7) * 7) // labels 0, 7, 14, ... each shared by 7
	}
	nc := canonicalize(m, nil, 3)
	seen := make([]bool, nc)
	for _, a := range m {
		if a < 0 || a >= nc {
			t.Fatalf("label %d outside [0,%d)", a, nc)
		}
		seen[a] = true
	}
	for a, ok := range seen {
		if !ok {
			t.Fatalf("id %d unused", a)
		}
	}
}
