package coarsen

import (
	"sync/atomic"

	"mlcg/internal/graph"
	"mlcg/internal/par"
)

// GOSH is the coarsening scheme of the GOSH embedding system (Akyildiz,
// Aljundi, Kaya; tech-report Algorithms 7 and 15): an MIS-flavored
// aggregation where vertices are visited in decreasing-degree order, an
// unmapped vertex becomes a cluster center, and its unmapped neighbors
// join it — except that two high-degree vertices are never contracted
// together, which keeps hubs from collapsing into one mega-aggregate.
// Edge weights are ignored by design (the paper calls this out as a
// drawback that GOSHHEC fixes).
type GOSH struct {
	// HubDegreeFactor scales the high-degree threshold δ =
	// max(4, factor·avgdeg); two vertices with degree > δ are not merged.
	// Zero means the default factor of 1.
	HubDegreeFactor float64
}

// Name implements Mapper.
func (GOSH) Name() string { return "gosh" }

// goshThreshold computes the hub-degree cutoff δ.
func goshThreshold(g *graph.Graph, factor float64) int64 {
	if factor <= 0 {
		factor = 1
	}
	d := int64(factor * g.AvgDegree())
	if d < 4 {
		d = 4
	}
	return d
}

// Map implements Mapper.
func (gm GOSH) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	delta := goshThreshold(g, gm.HubDegreeFactor)

	// Order vertices by decreasing degree; ties broken pseudo-randomly by
	// the seed so different runs explore different orders.
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	par.ForEach(n, p, func(i int) {
		d := uint64(g.Degree(int32(i)))
		// Sort ascending on (maxdeg-d, noise) == descending on degree.
		keys[i] = (^d)<<20 | (par.Mix64(seed^uint64(i)) & 0xfffff)
		vals[i] = uint64(i)
	})
	par.RadixSortPairs(keys, vals, p)

	m := make([]int32, n)
	par.Fill(m, unset, p)
	par.ForEachChunked(n, p, 512, func(i int) {
		u := int32(vals[i])
		if !atomic.CompareAndSwapInt32(&m[u], unset, u) {
			return // u already joined another cluster
		}
		uHigh := g.Degree(u) > delta
		adj, _ := g.Neighbors(u)
		for _, v := range adj {
			if uHigh && g.Degree(v) > delta {
				continue // never contract two hubs
			}
			atomic.CompareAndSwapInt32(&m[v], unset, u)
		}
	})
	// Claimed-but-center vertices: m[u] == u are roots, everything else
	// points at its center, which is a root by construction (a center
	// claimed itself before claiming others).
	nc := compactRoots(m)
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}

// GOSHHEC is the paper's new coarsening approach (tech-report
// Algorithm 16) combining ideas from the HEC and GOSH parallelizations: a
// weight-aware aggregation with less indirection and less fine-grained
// synchronization than GOSH, which skips high-degree vertex adjacencies in
// several loops. This reconstruction keeps GOSH's degree-first aggregation
// but makes it weight-aware and nearly synchronization-free:
//
//  1. Centers are the local maxima of a (degree, random) priority — a
//     single race-free read-only pass, no CAS claiming as in GOSH.
//  2. Every other vertex joins its *heaviest* center neighbor (the HEC
//     idea; GOSH ignores weights), skipping hub→hub merges.
//  3. Two cleanup rounds let stragglers adopt a neighbor's aggregate via
//     their heaviest assigned neighbor; leftovers become singletons.
//
// Hub adjacency lists are scanned only in the one priority pass (their
// neighbors read them; they never scan in phases 2-3), realizing the
// "skips high-degree vertex adjacencies in several loops" property.
type GOSHHEC struct {
	HubDegreeFactor float64 // as in GOSH; zero means default
}

// Name implements Mapper.
func (GOSHHEC) Name() string { return "goshhec" }

// Map implements Mapper.
func (gm GOSHHEC) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	delta := goshThreshold(g, gm.HubDegreeFactor)
	perm := par.RandPerm(n, seed, p)
	pos := par.InversePerm(perm, p)

	// Priority: degree first (GOSH's ordering), random tie-break, vertex
	// id as the final strict tie-break so priorities are unique.
	higher := func(a, b int32) bool {
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da > db
		}
		if pos[a] != pos[b] {
			return pos[a] < pos[b]
		}
		return a < b
	}

	// Phase 1: centers = local priority maxima (independent set).
	m := make([]int32, n)
	par.Fill(m, unset, p)
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		adj, _ := g.Neighbors(u)
		for _, v := range adj {
			if higher(v, u) {
				return
			}
		}
		m[u] = u
	})

	// Phase 2: join the heaviest center neighbor; hubs never merge into
	// hub centers. Race-free: each vertex writes only its own entry.
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		if m[u] != unset {
			return
		}
		uHub := g.Degree(u) > delta
		adj, wgt := g.Neighbors(u)
		best := unset
		var bw int64 = -1
		for k, v := range adj {
			if m[v] != int32(v) || v == u {
				continue // not a center
			}
			if uHub && g.Degree(v) > delta {
				continue // never contract two hubs
			}
			w := wgt[k]
			if w > bw || (w == bw && (best == unset || pos[v] < pos[best])) {
				best, bw = v, w
			}
		}
		if best != unset {
			m[u] = best
		}
	})

	// Phase 3: stragglers adopt their heaviest assigned neighbor's
	// aggregate. Two rounds reach everything within distance two of a
	// center; the rest become singletons. Each round reads the previous
	// round's snapshot to stay race-free and keep members pointing
	// directly at roots.
	for round := 0; round < 2; round++ {
		snapshot := make([]int32, n)
		par.Copy(snapshot, m, p)
		par.ForEachChunked(n, p, 256, func(i int) {
			u := int32(i)
			if snapshot[u] != unset {
				return
			}
			adj, wgt := g.Neighbors(u)
			best := unset
			var bw int64 = -1
			for k, v := range adj {
				if snapshot[v] == unset {
					continue
				}
				w := wgt[k]
				if w > bw || (w == bw && (best == unset || pos[v] < pos[best])) {
					best, bw = v, w
				}
			}
			if best != unset {
				m[u] = snapshot[best]
			}
		})
	}
	par.ForEach(n, p, func(i int) {
		if m[i] == unset {
			m[i] = int32(i)
		}
	})
	nc := compactRoots(m)
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}
