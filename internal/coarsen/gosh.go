package coarsen

import (
	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// GOSH is the coarsening scheme of the GOSH embedding system (Akyildiz,
// Aljundi, Kaya; tech-report Algorithms 7 and 15): an MIS-flavored
// aggregation where vertices are visited in decreasing-degree order, an
// unmapped vertex becomes a cluster center, and its unmapped neighbors
// join it — except that two high-degree vertices are never contracted
// together, which keeps hubs from collapsing into one mega-aggregate.
// Edge weights are ignored by design (the paper calls this out as a
// drawback that GOSHHEC fixes).
//
// The historical implementation raced CAS claims along the degree order,
// so cluster membership depended on thread interleaving. This version
// resolves the same visit order through race-free phases: centers are the
// vertices no claim-eligible neighbor outranks, everyone else joins their
// best-ranked center neighbor, and two snapshot rounds let stragglers
// adopt an already-assigned neighbor's cluster. Membership and labels are
// identical for every worker count.
type GOSH struct {
	// HubDegreeFactor scales the high-degree threshold δ =
	// max(4, factor·avgdeg); two vertices with degree > δ are not merged.
	// Zero means the default factor of 1.
	HubDegreeFactor float64
}

// Name implements Mapper.
func (GOSH) Name() string { return "gosh" }

// goshThreshold computes the hub-degree cutoff δ.
func goshThreshold(g *graph.Graph, factor float64) int64 {
	if factor <= 0 {
		factor = 1
	}
	d := int64(factor * g.AvgDegree())
	if d < 4 {
		d = 4
	}
	return d
}

// Map implements Mapper.
func (gm GOSH) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	delta := goshThreshold(g, gm.HubDegreeFactor)
	hub := func(v int32) bool { return g.Degree(v) > delta }

	// Order vertices by decreasing degree; ties broken pseudo-randomly by
	// the seed, then by id (radix sort is stable), so ranks are unique.
	// rank[u] is u's visit position — it plays the role pos[] plays for
	// the permutation-driven mappers, including in the canonical relabel.
	span := obs.StartKernel("gosh:rank")
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	par.ForEach(n, p, func(i int) {
		d := uint64(g.Degree(int32(i)))
		// Sort ascending on (maxdeg-d, noise) == descending on degree.
		keys[i] = (^d)<<20 | (par.Mix64(seed^uint64(i)) & 0xfffff)
		vals[i] = uint64(i)
	})
	par.RadixSortPairs(keys, vals, p)
	rank := make([]int32, n)
	par.ForEach(n, p, func(i int) {
		rank[vals[i]] = int32(i)
	})
	span.Done()
	span = obs.StartKernel("gosh:aggregate")

	// Phase 1: centers. u becomes a center when no neighbor that could
	// claim it (hub–hub edges never claim) outranks it — the vertices the
	// sequential degree-order sweep would visit unclaimed. Read-only on
	// shared state, each vertex writes its own entry.
	m := make([]int32, n)
	par.Fill(m, unset, p)
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		uHub := hub(u)
		adj, _ := g.Neighbors(u)
		for _, v := range adj {
			if uHub && hub(v) {
				continue // never contract two hubs
			}
			if rank[v] < rank[u] {
				return
			}
		}
		m[u] = u
	})

	// Phase 2: everyone else joins their best-ranked (earliest-visited)
	// center neighbor. Written into a fresh array so the center test reads
	// only the frozen phase-1 output.
	m2 := make([]int32, n)
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		if m[u] != unset {
			m2[u] = m[u]
			return
		}
		uHub := hub(u)
		adj, _ := g.Neighbors(u)
		best := unset
		for _, v := range adj {
			if m[v] != v {
				continue // not a center
			}
			if uHub && hub(v) {
				continue
			}
			if best == unset || rank[v] < rank[best] {
				best = v
			}
		}
		m2[u] = best // may remain unset
	})
	m = m2

	// Phase 3: two snapshot rounds let stragglers (vertices whose eligible
	// neighbors were all claimed, which the sequential sweep would have
	// visited and centered or chained) adopt the cluster of their
	// best-ranked assigned neighbor, unless that would merge two hubs.
	for round := 0; round < 2; round++ {
		snapshot := make([]int32, n)
		par.Copy(snapshot, m, p)
		par.ForEachChunked(n, p, 256, func(i int) {
			u := int32(i)
			if snapshot[u] != unset {
				return
			}
			uHub := hub(u)
			adj, _ := g.Neighbors(u)
			best := unset
			for _, v := range adj {
				if snapshot[v] == unset {
					continue
				}
				if uHub && hub(snapshot[v]) {
					continue // cluster root is a hub: keep hubs apart
				}
				if best == unset || rank[v] < rank[best] {
					best = v
				}
			}
			if best != unset {
				m[u] = snapshot[best]
			}
		})
	}
	par.ForEach(n, p, func(i int) {
		if m[i] == unset {
			m[i] = int32(i)
		}
	})
	span.Done()
	nc := canonicalize(m, rank, p)
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}

// GOSHHEC is the paper's new coarsening approach (tech-report
// Algorithm 16) combining ideas from the HEC and GOSH parallelizations: a
// weight-aware aggregation with less indirection and less fine-grained
// synchronization than GOSH, which skips high-degree vertex adjacencies in
// several loops. This reconstruction keeps GOSH's degree-first aggregation
// but makes it weight-aware and nearly synchronization-free:
//
//  1. Centers are the local maxima of a (degree, random) priority — a
//     single race-free read-only pass, no CAS claiming as in GOSH.
//  2. Every other vertex joins its *heaviest* center neighbor (the HEC
//     idea; GOSH ignores weights), skipping hub→hub merges.
//  3. Two cleanup rounds let stragglers adopt a neighbor's aggregate via
//     their heaviest assigned neighbor; leftovers become singletons.
//
// Hub adjacency lists are scanned only in the one priority pass (their
// neighbors read them; they never scan in phases 2-3), realizing the
// "skips high-degree vertex adjacencies in several loops" property.
type GOSHHEC struct {
	HubDegreeFactor float64 // as in GOSH; zero means default
}

// Name implements Mapper.
func (GOSHHEC) Name() string { return "goshhec" }

// Map implements Mapper.
func (gm GOSHHEC) Map(g *graph.Graph, seed uint64, p int) (*Mapping, error) {
	n := g.N()
	delta := goshThreshold(g, gm.HubDegreeFactor)
	perm := par.RandPerm(n, seed, p)
	pos := par.InversePerm(perm, p)

	// Priority: degree first (GOSH's ordering), random tie-break, vertex
	// id as the final strict tie-break so priorities are unique.
	higher := func(a, b int32) bool {
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da > db
		}
		if pos[a] != pos[b] {
			return pos[a] < pos[b]
		}
		return a < b
	}

	// Phase 1: centers = local priority maxima (independent set).
	span := obs.StartKernel("goshhec:aggregate")
	m := make([]int32, n)
	par.Fill(m, unset, p)
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		adj, _ := g.Neighbors(u)
		for _, v := range adj {
			if higher(v, u) {
				return
			}
		}
		m[u] = u
	})

	// Phase 2: join the heaviest center neighbor; hubs never merge into
	// hub centers. Written into a fresh array so the center test reads
	// only the frozen phase-1 output (reading m while peers assign their
	// own entries would race).
	m2 := make([]int32, n)
	par.ForEachChunked(n, p, 256, func(i int) {
		u := int32(i)
		if m[u] != unset {
			m2[u] = m[u]
			return
		}
		uHub := g.Degree(u) > delta
		adj, wgt := g.Neighbors(u)
		best := unset
		var bw int64 = -1
		for k, v := range adj {
			if m[v] != v || v == u {
				continue // not a center
			}
			if uHub && g.Degree(v) > delta {
				continue // never contract two hubs
			}
			w := wgt[k]
			if w > bw || (w == bw && (best == unset || pos[v] < pos[best])) {
				best, bw = v, w
			}
		}
		m2[u] = best // may remain unset
	})
	m = m2

	// Phase 3: stragglers adopt their heaviest assigned neighbor's
	// aggregate. Two rounds reach everything within distance two of a
	// center; the rest become singletons. Each round reads the previous
	// round's snapshot to stay race-free and keep members pointing
	// directly at roots.
	for round := 0; round < 2; round++ {
		snapshot := make([]int32, n)
		par.Copy(snapshot, m, p)
		par.ForEachChunked(n, p, 256, func(i int) {
			u := int32(i)
			if snapshot[u] != unset {
				return
			}
			adj, wgt := g.Neighbors(u)
			best := unset
			var bw int64 = -1
			for k, v := range adj {
				if snapshot[v] == unset {
					continue
				}
				w := wgt[k]
				if w > bw || (w == bw && (best == unset || pos[v] < pos[best])) {
					best, bw = v, w
				}
			}
			if best != unset {
				m[u] = snapshot[best]
			}
		})
	}
	par.ForEach(n, p, func(i int) {
		if m[i] == unset {
			m[i] = int32(i)
		}
	})
	span.Done()
	nc := canonicalize(m, pos, p)
	return &Mapping{M: m, NC: nc, Passes: 1, PassMapped: []int64{int64(n)}}, nil
}
