package coarsen

import (
	"testing"

	"mlcg/internal/graph"
)

func TestBSuitorListsRespectBound(t *testing.T) {
	for gname, g := range testGraphs() {
		for _, b := range []int{1, 2, 3} {
			lists, _ := bsuitorLists(g, 7, 1, b)
			for u := int32(0); u < g.NumV; u++ {
				if len(lists[u].who) > b {
					t.Fatalf("%s b=%d: vertex %d holds %d suitors", gname, b, u, len(lists[u].who))
				}
				// Every proposal comes from a neighbor.
				for _, v := range lists[u].who {
					if !g.HasEdge(u, v) {
						t.Fatalf("%s b=%d: non-neighbor proposal %d -> %d", gname, b, v, u)
					}
				}
				// List is sorted ascending by weight.
				for i := 1; i < len(lists[u].w); i++ {
					if lists[u].w[i-1] > lists[u].w[i] {
						t.Fatalf("%s b=%d: list of %d unsorted", gname, b, u)
					}
				}
			}
		}
	}
}

func TestBSuitorB1MatchesSuitorSemantics(t *testing.T) {
	// With B = 1 aggregates are matched pairs or singletons.
	for gname, g := range testGraphs() {
		m, err := BSuitor{B: 1}.Map(g, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(g.N()); err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		sizes := make(map[int32]int)
		for _, a := range m.M {
			sizes[a]++
		}
		for a, s := range sizes {
			if s > 2 {
				t.Errorf("%s: aggregate %d has %d members with B=1", gname, a, s)
			}
		}
	}
}

func TestBSuitorDefaultAggregatesConnectedAndBounded(t *testing.T) {
	for gname, g := range testGraphs() {
		m, err := BSuitor{}.Map(g, 9, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(g.N()); err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		if !aggregatesConnected(g, m) {
			t.Errorf("%s: disconnected aggregate", gname)
		}
	}
}

func TestBSuitorCoarsensAtLeastAsMuchAsMatching(t *testing.T) {
	// b=2 components are paths/cycles of unbounded length, so the ratio
	// can exceed 3 on heavy chains; it must at least match a plain
	// matching's reduction.
	g := bigTestGraph(3000, 7)
	hem, _ := HEM{}.Map(g, 3, 1)
	bs, _ := BSuitor{}.Map(g, 3, 1)
	if bs.Ratio() < hem.Ratio()*0.9 {
		t.Errorf("b-suitor ratio %.2f should be at least matching's %.2f", bs.Ratio(), hem.Ratio())
	}
}

func TestBSuitorMutualDegreeBound(t *testing.T) {
	// The defining b-matching invariant: each vertex has at most B mutual
	// partners, and aggregates (b=2) induce paths/cycles.
	for gname, g := range testGraphs() {
		for _, b := range []int{1, 2, 3} {
			lists, _ := bsuitorLists(g, 13, 1, b)
			for u := int32(0); u < g.NumV; u++ {
				deg := 0
				for _, v := range lists[u].who {
					if lists[v].contains(u) {
						deg++
					}
				}
				if deg > b {
					t.Fatalf("%s b=%d: vertex %d has %d mutual partners", gname, b, u, deg)
				}
			}
		}
	}
}

func TestBSuitorPrefersHeavyEdges(t *testing.T) {
	// Path with one heavy edge: the heavy pair must land in one aggregate.
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 100}, {U: 2, V: 3, W: 1}, {U: 3, V: 4, W: 1},
	})
	for seed := uint64(0); seed < 8; seed++ {
		m, err := BSuitor{}.Map(g, seed, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m.M[1] != m.M[2] {
			t.Fatalf("seed %d: heavy pair separated: %v", seed, m.M)
		}
	}
}

func TestBSuitorInMultilevelDriver(t *testing.T) {
	g := bigTestGraph(2000, 11)
	c := &Coarsener{Mapper: BSuitor{}, Builder: BuildSort{}, Seed: 1, Workers: 1}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Coarsest().N() > 50 && h.Levels() < 3 {
		t.Errorf("levels=%d coarsest=%d", h.Levels(), h.Coarsest().N())
	}
	for i, cg := range h.Graphs[1:] {
		if err := cg.Validate(); err != nil {
			t.Fatalf("level %d: %v", i+1, err)
		}
	}
}
