package coarsen

// Algorithm-to-code map
//
// The paper's pseudocode (conference version and tech report
// DOI 10.26207/mwqw-fb88) corresponds to this package as follows:
//
//	Algorithm 1  (multilevel loop)............... Coarsener.Run
//	Algorithm 2  (sequential HEM)............... HEMSeq.Map
//	Algorithm 3  (sequential HEC)............... HECSeq.Map
//	Algorithm 4  (lock-free parallel HEC)....... HEC.Map
//	Algorithm 5  (pseudoforest HEC3)............ HEC3.Map / hec3FromHeavy
//	Algorithm 6  (vertex-centric construction).. buildVertexCentric,
//	             step 1-2 counting.............. cEst / cnt loops
//	             line 9 one-sided condition..... writeHere
//	             FINDLOC scatter................ pos atomic cursors
//	             DEDUPWITHWTS (sort)............ dedupSortSegments
//	             DEDUPWITHWTS (hash)............ dedupHashSegments
//	             GRAPHCONSWITHTRANS............. symmetrizeDeduped
//	Algorithm 7  (GOSH, tech report)............ GOSH.Map
//	Algorithm 8  (ACE, tech report)............. ACE.Coarsen
//	Algorithm 9  (HEC2, tech report)............ HEC2.Map (reconstruction)
//	Algorithm 10 (parallel HEM, tech report).... HEM.Map / hemMatch
//	Algorithm 11 (leaf matching)................ leafMatch
//	Algorithm 12 (twin matching)................ twinMatch
//	Algorithm 13 (relative matching)............ relativeMatch
//	Algorithm 14 (MIS2)......................... MIS2.Map / mis2States
//	Algorithm 15 (parallel GOSH)................ GOSH.Map
//	Algorithm 16 (GOSH/HEC hybrid).............. GOSHHEC.Map (reconstruction)
//
// Beyond the paper: Suitor.Map and BSuitor.Map implement the weighted
// matching algorithms named in the paper's future work; BuildHeap,
// BuildHybrid, BuildSegSort and BuildSort.PreDedup implement the
// construction alternatives Section III.B sketches.
//
// The tech-report pseudocode for Algorithms 9 and 16 was not available to
// this reproduction; HEC2 and GOSHHEC are reconstructions from the
// conference text's descriptions, and their deviations are documented on
// the type declarations and measured in EXPERIMENTS.md.
