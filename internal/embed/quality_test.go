package embed

import (
	"testing"

	"mlcg/internal/coarsen"
	"mlcg/internal/gen"
	"mlcg/internal/graph"
)

// TestEmbedLinkPredictionAUC is the statistical quality gate: embeddings
// are judged by what they predict, not by golden bytes. Every number in
// here is deterministic — fixed graph seeds, fixed split seeds, fixed
// training seeds, and the trainer's byte-identical-across-workers
// guarantee — so the thresholds are a tolerance band around observed
// values, not a flakiness budget:
//
//   - AUC >= 0.90 on the rgg/channel-style instances (observed ≈ 0.96+;
//     the 0.90 floor leaves room for schedule-tuning PRs without letting
//     a broken trainer through — a broken sign or projection lands at
//     ≈ 0.5).
//   - multilevel >= flat at the same total epoch budget (the GOSH claim;
//     the flat baseline gets exactly TotalEpochs of the multilevel
//     schedule on the finest graph).
func TestEmbedLinkPredictionAUC(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"rgg", gen.RGG(4000, 0, 21)},       // rgg24 analog
		{"channel", gen.Grid2D(64, 64)},     // channel050 analog
		{"trimesh", gen.TriMesh(56, 56, 9)}, // delaunay analog
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := SplitForEval(tc.g, 0.1, 2024)
			if err != nil {
				t.Fatal(err)
			}
			c := &coarsen.Coarsener{Mapper: coarsen.GOSH{}, Builder: &coarsen.AutoConstruct{}, Seed: 5, Workers: 0}
			h, err := c.Run(sp.Train)
			if err != nil {
				t.Fatal(err)
			}
			opt := Options{Dim: 32, Epochs: 40, Negatives: 5, Seed: 77}
			ml, err := TrainHierarchy(h, opt)
			if err != nil {
				t.Fatal(err)
			}
			total := TotalEpochs(len(h.Graphs), opt)
			flat, err := TrainFlat(sp.Train, total, opt)
			if err != nil {
				t.Fatal(err)
			}
			aucML := LinkAUC(ml.Emb, sp)
			aucFlat := LinkAUC(flat.Emb, sp)
			t.Logf("%s: multilevel AUC %.4f, flat AUC %.4f (total epochs %d, %d levels)",
				tc.name, aucML, aucFlat, total, h.Levels())
			if aucML < 0.90 {
				t.Errorf("multilevel AUC %.4f below the 0.90 gate", aucML)
			}
			if aucML < aucFlat {
				t.Errorf("multilevel AUC %.4f below equal-budget flat baseline %.4f", aucML, aucFlat)
			}
		})
	}
}
