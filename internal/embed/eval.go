package embed

import (
	"fmt"
	"sort"

	"mlcg/internal/graph"
	"mlcg/internal/par"
)

// EvalSplit is a link-prediction evaluation instance: the training graph
// with the held-out edges removed, the held-out positives, and an equal
// number of degree-matched negative (non-)edges.
type EvalSplit struct {
	Train      *graph.Graph
	PosU, PosV []int32 // held-out true edges
	NegU, NegV []int32 // sampled non-edges, degree-matched to the graph
}

// SplitForEval holds out about frac of the edges of g as test positives
// and samples as many degree-matched negatives. Deterministic in seed.
//
// Edges are visited in a seeded random order; an edge is held out only
// while both endpoints keep residual degree >= 2, which protects the
// training graph from growing isolated vertices (the standard
// link-prediction protocol). Negative endpoints are drawn from the degree
// distribution of g — matching the degree profile of the positives — and
// rejected while they form a real edge or a self-loop.
func SplitForEval(g *graph.Graph, frac float64, seed uint64) (*EvalSplit, error) {
	if frac <= 0 || frac >= 1 {
		return nil, fmt.Errorf("embed: holdout fraction %v outside (0, 1)", frac)
	}
	n, m := g.N(), int(g.M())
	if m < 10 {
		return nil, fmt.Errorf("embed: graph too small to split (m=%d)", m)
	}
	target := int(float64(m)*frac + 0.5)
	if target < 1 {
		target = 1
	}

	// Enumerate undirected edges once, in CSR order.
	srcs := make([]int32, m)
	dsts := make([]int32, m)
	e := 0
	for u := int32(0); u < g.NumV; u++ {
		adj, _ := g.Neighbors(u)
		for _, v := range adj {
			if v > u {
				srcs[e], dsts[e] = u, v
				e++
			}
		}
	}

	// Greedy hold-out in seeded random order under the residual-degree rule.
	order := par.RandPerm(m, par.Mix64(seed^0x73706c69), 0)
	deg := make([]int64, n)
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(int32(u))
	}
	held := make([]bool, m)
	sp := &EvalSplit{}
	for _, oe := range order {
		if len(sp.PosU) >= target {
			break
		}
		u, v := srcs[oe], dsts[oe]
		if deg[u] < 2 || deg[v] < 2 {
			continue
		}
		deg[u]--
		deg[v]--
		held[oe] = true
		sp.PosU = append(sp.PosU, u)
		sp.PosV = append(sp.PosV, v)
	}
	if len(sp.PosU) == 0 {
		return nil, fmt.Errorf("embed: no edge satisfies the residual-degree hold-out rule")
	}

	// Training graph = the kept edges.
	kept := make([]graph.Edge, 0, m-len(sp.PosU))
	for i := 0; i < m; i++ {
		if !held[i] {
			w := int64(1)
			// Preserve the original edge weight.
			adj, wgt := g.Neighbors(srcs[i])
			for j, x := range adj {
				if x == dsts[i] {
					w = wgt[j]
					break
				}
			}
			kept = append(kept, graph.Edge{U: srcs[i], V: dsts[i], W: w})
		}
	}
	train, err := graph.FromEdges(n, kept)
	if err != nil {
		return nil, fmt.Errorf("embed: building training graph: %w", err)
	}
	sp.Train = train

	// Degree-matched negatives: endpoints from the degree distribution of
	// the full graph, rejected while they collide with a real edge.
	cum := make([]float64, n)
	var running float64
	for u := 0; u < n; u++ {
		running += float64(g.Degree(int32(u)))
		cum[u] = running
	}
	state := par.Mix64(seed ^ 0x6e656773)
	drawDeg := func() int32 {
		r := float64(par.SplitMix64(&state)>>11) / (1 << 53) * running
		i := sort.SearchFloat64s(cum, r)
		if i >= n {
			i = n - 1
		}
		return int32(i)
	}
	const negTries = 64
	for len(sp.NegU) < len(sp.PosU) {
		var a, b int32
		ok := false
		for try := 0; try < negTries; try++ {
			a, b = drawDeg(), drawDeg()
			if a != b && !g.HasEdge(a, b) {
				ok = true
				break
			}
		}
		if !ok {
			// Near-clique graphs can defeat degree-matched rejection; fall
			// back to uniform endpoints so the split always completes.
			for {
				a = int32(par.SplitMix64(&state) % uint64(n))
				b = int32(par.SplitMix64(&state) % uint64(n))
				if a != b && !g.HasEdge(a, b) {
					break
				}
			}
		}
		sp.NegU = append(sp.NegU, a)
		sp.NegV = append(sp.NegV, b)
	}
	return sp, nil
}

// LinkAUC computes the exact link-prediction AUC of e on the split: the
// probability that a held-out edge scores above a sampled non-edge, with
// ties counted half (the rank-sum estimator, no sampling noise).
func LinkAUC(e *Embedding, sp *EvalSplit) float64 {
	np, nn := len(sp.PosU), len(sp.NegU)
	if np == 0 || nn == 0 {
		return 0
	}
	type scored struct {
		s   float64
		pos bool
	}
	all := make([]scored, 0, np+nn)
	for i := range sp.PosU {
		all = append(all, scored{e.Score(sp.PosU[i], sp.PosV[i]), true})
	}
	for i := range sp.NegU {
		all = append(all, scored{e.Score(sp.NegU[i], sp.NegV[i]), false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
	// Sum positive ranks with average ranks over tie groups. j starts past
	// i so the loop advances even on NaN scores (NaN != NaN would otherwise
	// produce an empty "tie group" and spin forever).
	var rankSum float64
	for i := 0; i < len(all); {
		j := i + 1
		for j < len(all) && all[j].s == all[i].s {
			j++
		}
		avgRank := float64(i+j-1)/2 + 1 // 1-based average rank of the tie group
		for k := i; k < j; k++ {
			if all[k].pos {
				rankSum += avgRank
			}
		}
		i = j
	}
	return (rankSum - float64(np)*float64(np+1)/2) / (float64(np) * float64(nn))
}
