package embed

import (
	"testing"

	"mlcg/internal/gen"
)

// TestSplitForEvalInvariants checks the structural contract of the
// link-prediction split on a realistic instance: held-out edges are real
// edges absent from the training graph, negatives are real non-edges, no
// training vertex is isolated by the hold-out, and the split is
// deterministic in its seed.
func TestSplitForEvalInvariants(t *testing.T) {
	g := gen.RGG(1500, 0, 17)
	sp, err := SplitForEval(g, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := int(g.M())
	want := int(float64(m)*0.1 + 0.5)
	if len(sp.PosU) != want {
		t.Errorf("held out %d edges, want %d", len(sp.PosU), want)
	}
	if len(sp.NegU) != len(sp.PosU) || len(sp.PosV) != len(sp.PosU) || len(sp.NegV) != len(sp.PosU) {
		t.Fatalf("split arrays unbalanced: pos %d/%d neg %d/%d",
			len(sp.PosU), len(sp.PosV), len(sp.NegU), len(sp.NegV))
	}
	if got := int(sp.Train.M()) + len(sp.PosU); got != m {
		t.Errorf("train edges + held-out = %d, want %d", got, m)
	}
	for i := range sp.PosU {
		u, v := sp.PosU[i], sp.PosV[i]
		if !g.HasEdge(u, v) {
			t.Fatalf("positive %d: {%d,%d} is not an edge of g", i, u, v)
		}
		if sp.Train.HasEdge(u, v) {
			t.Fatalf("positive %d: {%d,%d} still present in the training graph", i, u, v)
		}
	}
	for i := range sp.NegU {
		a, b := sp.NegU[i], sp.NegV[i]
		if a == b {
			t.Fatalf("negative %d is a self-loop at %d", i, a)
		}
		if g.HasEdge(a, b) {
			t.Fatalf("negative %d: {%d,%d} is a real edge", i, a, b)
		}
	}
	// No vertex that had edges loses them all.
	for u := int32(0); u < g.NumV; u++ {
		if g.Degree(u) > 0 && sp.Train.Degree(u) == 0 {
			t.Fatalf("vertex %d isolated by the hold-out", u)
		}
	}

	// Determinism and seed sensitivity.
	sp2, err := SplitForEval(g, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	same := len(sp2.PosU) == len(sp.PosU)
	for i := 0; same && i < len(sp.PosU); i++ {
		same = sp2.PosU[i] == sp.PosU[i] && sp2.NegU[i] == sp.NegU[i]
	}
	if !same {
		t.Error("same seed produced a different split")
	}
	sp3, err := SplitForEval(g, 0.1, 6)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := 0; i < len(sp.PosU) && i < len(sp3.PosU); i++ {
		if sp3.PosU[i] != sp.PosU[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical hold-out order")
	}
}

func TestSplitForEvalRejectsBadInput(t *testing.T) {
	g := gen.Grid2D(20, 20)
	if _, err := SplitForEval(g, 0, 1); err == nil {
		t.Error("frac 0 accepted")
	}
	if _, err := SplitForEval(g, 1, 1); err == nil {
		t.Error("frac 1 accepted")
	}
	tiny := gen.Grid2D(2, 2)
	if _, err := SplitForEval(tiny, 0.5, 1); err == nil {
		t.Error("graph with m < 10 accepted")
	}
}

// TestLinkAUC pins the estimator on hand-computable cases: perfect
// separation, perfect anti-separation, and all-ties (including the NaN
// regression — NaN scores must terminate, not loop).
func TestLinkAUC(t *testing.T) {
	emb := &Embedding{N: 4, Dim: 1, Vecs: []float32{2, 1, -1, -2}}
	// Scores: pos {0,0}=4, {0,1}=2; neg {2,2}=1, {3,3}=4... build explicit pairs.
	sp := &EvalSplit{
		PosU: []int32{0, 0}, PosV: []int32{0, 1}, // scores 4, 2
		NegU: []int32{2, 2}, NegV: []int32{2, 3}, // scores 1, 2
	}
	// Ranks: 1 (score 1, neg), tie group {2,2} ranks 2.5 each, 4 (score 4, pos).
	// rankSum = 2.5 + 4 = 6.5; AUC = (6.5 - 3) / 4 = 0.875.
	if got := LinkAUC(emb, sp); got != 0.875 {
		t.Errorf("AUC with ties = %v, want 0.875", got)
	}

	perfect := &EvalSplit{
		PosU: []int32{0}, PosV: []int32{0}, // score 4
		NegU: []int32{2}, NegV: []int32{2}, // score 1
	}
	if got := LinkAUC(emb, perfect); got != 1 {
		t.Errorf("perfect separation AUC = %v, want 1", got)
	}
	inverted := &EvalSplit{
		PosU: []int32{2}, PosV: []int32{2},
		NegU: []int32{0}, NegV: []int32{0},
	}
	if got := LinkAUC(emb, inverted); got != 0 {
		t.Errorf("inverted AUC = %v, want 0", got)
	}

	allTies := &EvalSplit{
		PosU: []int32{0}, PosV: []int32{1},
		NegU: []int32{0}, NegV: []int32{1},
	}
	if got := LinkAUC(emb, allTies); got != 0.5 {
		t.Errorf("all-ties AUC = %v, want 0.5", got)
	}

	// NaN scores must not hang (regression: the tie-group scan previously
	// failed to advance past a NaN because NaN != NaN).
	nanEmb := &Embedding{N: 2, Dim: 1, Vecs: []float32{float32nan(), 1}}
	nanSplit := &EvalSplit{
		PosU: []int32{0}, PosV: []int32{0},
		NegU: []int32{1}, NegV: []int32{1},
	}
	_ = LinkAUC(nanEmb, nanSplit) // value is garbage; termination is the assertion

	if got := LinkAUC(emb, &EvalSplit{}); got != 0 {
		t.Errorf("empty split AUC = %v, want 0", got)
	}
}

func float32nan() float32 {
	var z float32
	return z / z
}
