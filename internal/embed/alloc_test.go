package embed

import (
	"testing"

	"mlcg/internal/gen"
	"mlcg/internal/par"
)

// TestEmbedWorkspaceReuse pins the SGD inner loop at literal zero
// steady-state allocations: after newTrainer has sized every scratch
// buffer, running epochs allocates nothing. The trainer hoists its phase
// closures into fields (tr.fa/tr.fb) precisely so the epoch loop passes
// pre-built funcs to par.For instead of constructing closure headers per
// chunk — this test is the regression net for that structure.
func TestEmbedWorkspaceReuse(t *testing.T) {
	g := gen.RGG(1200, 0, 41)
	opt := Options{Dim: 16, Negatives: 3, Seed: 9, Workers: 1}.withDefaults()
	emb := randomInit(g.NumV, int32(opt.Dim), opt.Seed, 1)
	ws := newWorkspace()
	levelKey := par.Mix64(opt.Seed ^ 0x9e3779b97f4a7c15)
	tr := newTrainer(g, emb, ws, levelKey, opt)
	tr.lr = 0.05
	tr.epochKey = par.Mix64(levelKey ^ 0xbf58476d1ce4e5b9)

	// Warm-up epoch so any lazy runtime state settles.
	tr.runEpoch()

	allocs := testing.AllocsPerRun(3, func() {
		tr.epochKey = par.Mix64(tr.epochKey + 1)
		tr.runEpoch()
	})
	if allocs != 0 {
		t.Errorf("steady-state epoch allocated %.1f times, want 0", allocs)
	}
}

// TestEmbedWorkspaceGrowsAcrossLevels covers the multilevel reuse path:
// the same workspace serves levels of different sizes, growing buffers
// monotonically and never shrinking capacity.
func TestEmbedWorkspaceGrowsAcrossLevels(t *testing.T) {
	small := gen.Grid2D(10, 10)
	large := gen.Grid2D(40, 40)
	opt := Options{Dim: 8, Negatives: 2, Seed: 3, Workers: 1}.withDefaults()
	ws := newWorkspace()

	embS := randomInit(small.NumV, int32(opt.Dim), opt.Seed, 1)
	if _, err := trainLevel(small, embS, ws, 0, 2, 0.05, opt); err != nil {
		t.Fatal(err)
	}
	capAfterSmall := cap(ws.delta)

	embL := randomInit(large.NumV, int32(opt.Dim), opt.Seed, 1)
	if _, err := trainLevel(large, embL, ws, 1, 2, 0.05, opt); err != nil {
		t.Fatal(err)
	}
	if cap(ws.delta) < capAfterSmall {
		t.Errorf("workspace delta capacity shrank: %d -> %d", capAfterSmall, cap(ws.delta))
	}

	// Back to the small level: nothing should need to grow again.
	embS2 := randomInit(small.NumV, int32(opt.Dim), opt.Seed, 1)
	capBefore := cap(ws.delta)
	if _, err := trainLevel(small, embS2, ws, 0, 2, 0.05, opt); err != nil {
		t.Fatal(err)
	}
	if cap(ws.delta) != capBefore {
		t.Errorf("revisiting a smaller level reallocated: %d -> %d", capBefore, cap(ws.delta))
	}
}
