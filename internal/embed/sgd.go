package embed

import (
	"fmt"
	"math"
	"sort"

	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// maxChunkTasks caps the number of SGD tasks per two-phase round. Within
// a chunk all gradient computations read the same frozen parameters
// (minibatch semantics); across chunks updates are visible. 1024 tasks at
// the default 5 negatives and dim 32 keep the scratch under 2 MiB while
// amortizing the two parallel-region spawns per round.
const maxChunkTasks = 1024

// minChunkTasks floors the chunk size so tiny graphs still amortize the
// round structure.
const minChunkTasks = 8

// chunkFor sizes the two-phase round for a level with n vertices. Frozen
// parameters mean a row touched k times in one chunk takes k same-direction
// steps with no sigmoid feedback between them — an effective learning rate
// of k*lr. Capping the chunk near n/rowsPerTask keeps the expected touches
// per row around one, which restores sequential-SGD's self-damping and
// keeps small coarse graphs (where one epoch would otherwise be a single
// frozen chunk) from diverging. Depends only on (n, rpt), never on the
// worker count, so determinism across p is untouched.
func chunkFor(n, rpt int) int {
	c := n / rpt
	if c < minChunkTasks {
		c = minChunkTasks
	}
	if c > maxChunkTasks {
		c = maxChunkTasks
	}
	return c
}

// negResampleTries bounds the rejection loop when a drawn negative equals
// an endpoint of the positive pair. After the bound the sample is accepted
// anyway (a bounded deterministic loop; occasional true-edge negatives are
// ordinary sampling noise).
const negResampleTries = 8

// workspace holds every scratch buffer of the trainer so steady-state
// epochs allocate nothing (the coarsen.Workspace discipline applied to a
// training loop). Buffers grow monotonically and are reused across levels.
type workspace struct {
	srcs, dsts []int32   // training edges in CSR discovery order, len m
	perm       []int32   // per-level pseudo-random edge order, len m
	cum        []float64 // inclusive prefix of deg^0.75, len n (negative table)
	total      float64   // cum[n-1]
	rows       []int32   // chunk scratch: row id per delta slot
	delta      []float32 // chunk scratch: one dim-length delta per slot
	negDrawn   []int64   // per-worker drawn-negative counts, stride padded
}

func newWorkspace() *workspace { return &workspace{} }

// negStride pads the per-worker counters to separate cache lines.
const negStride = 8

func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growI64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

// prepareLevel extracts the level's edge list, builds the degree^0.75
// negative-sampling table, and fixes the level's edge order. The order is
// drawn once per level (epochs vary their negatives, not their edge
// order), keyed by levelKey so it is identical at every worker count.
func (ws *workspace) prepareLevel(g *graph.Graph, levelKey uint64, p int) {
	n, m := g.N(), int(g.M())
	ws.srcs = growI32(ws.srcs, m)
	ws.dsts = growI32(ws.dsts, m)
	e := 0
	for u := int32(0); u < g.NumV; u++ {
		adj, _ := g.Neighbors(u)
		for _, v := range adj {
			if v > u {
				ws.srcs[e], ws.dsts[e] = u, v
				e++
			}
		}
	}
	ws.cum = growF64(ws.cum, n)
	var running float64
	for u := 0; u < n; u++ {
		d := float64(g.Xadj[u+1] - g.Xadj[u])
		running += math.Pow(d, 0.75)
		ws.cum[u] = running
	}
	ws.total = running
	if m > 0 {
		ws.perm = par.RandPerm(m, par.Mix64(levelKey^0x7065726d), p)
	} else {
		ws.perm = ws.perm[:0]
	}
}

// trainer is the per-level SGD state. Its phase methods are hoisted into
// the fa/fb closures once per level so the epoch loop itself allocates
// nothing (TestEmbedWorkspaceReuse pins that at literal zero).
type trainer struct {
	emb      *Embedding
	ws       *workspace
	m        int // training edges of the level
	dim      int
	negs     int
	p        int
	lr       float32
	epochKey uint64
	chunk    int // tasks per two-phase round (chunkFor)
	base     int // first task of the current chunk
	cnt      int // tasks in the current chunk

	fa, fb func(w, lo, hi int)
}

// newTrainer prepares the level: edge extraction, negative table, edge
// order, scratch sizing, and the hoisted phase closures.
func newTrainer(g *graph.Graph, emb *Embedding, ws *workspace, levelKey uint64, opt Options) *trainer {
	m := int(g.M())
	p := par.Workers(opt.Workers, m)
	ws.prepareLevel(g, levelKey, p)
	tr := &trainer{emb: emb, ws: ws, m: m, dim: int(emb.Dim), negs: opt.Negatives, p: p}
	rpt := tr.rowsPerTask()
	tr.chunk = chunkFor(g.N(), rpt)
	maxChunk := tr.chunk
	if m < maxChunk {
		maxChunk = m
	}
	ws.rows = growI32(ws.rows, maxChunk*rpt)
	ws.delta = growF32(ws.delta, maxChunk*rpt*tr.dim)
	ws.negDrawn = growI64(ws.negDrawn, p*negStride)
	tr.fa, tr.fb = tr.phaseA, tr.phaseB
	return tr
}

// runEpoch executes one pass over the level's edges in chunked two-phase
// rounds at the current lr/epochKey and returns the drawn-negative count.
// Allocation-free: every buffer it touches was sized by newTrainer.
func (t *trainer) runEpoch() int64 {
	ws := t.ws
	for i := range ws.negDrawn {
		ws.negDrawn[i] = 0
	}
	for base := 0; base < t.m; base += t.chunk {
		cnt := t.chunk
		if t.m-base < cnt {
			cnt = t.m - base
		}
		t.base, t.cnt = base, cnt
		par.For(cnt, t.p, t.fa)
		par.For(t.p, t.p, t.fb)
	}
	var drawn int64
	for w := 0; w < t.p; w++ {
		drawn += ws.negDrawn[w*negStride]
	}
	return drawn
}

// rowsPerTask is 2 + negs: the source row accumulates across all pairs of
// the task, the positive destination and each negative get one slot.
func (t *trainer) rowsPerTask() int { return 2 + t.negs }

// taskState derives the task's private SplitMix64 state from
// (epochKey, task). Keying by logical task — not by worker — is what makes
// the drawn negatives independent of the parallel schedule.
func taskState(epochKey uint64, task int) uint64 {
	return par.Mix64(epochKey ^ (uint64(task)+1)*0x94d049bb133111eb)
}

// sampleNeg draws one vertex from the deg^0.75 distribution.
func (t *trainer) sampleNeg(state *uint64) int32 {
	r := float64(par.SplitMix64(state)>>11) / (1 << 53) * t.ws.total
	i := sort.SearchFloat64s(t.ws.cum, r)
	if i >= len(t.ws.cum) {
		i = len(t.ws.cum) - 1
	}
	return int32(i)
}

func sigmoid(x float64) float64 {
	if x > 8 {
		x = 8
	} else if x < -8 {
		x = -8
	}
	return 1 / (1 + math.Exp(-x))
}

// phaseA computes gradient deltas for tasks [base+lo, base+hi) of the
// current chunk into the per-slot scratch. It reads embedding rows that
// are frozen for the whole chunk and writes only slots owned by the task,
// so the parallel schedule cannot influence any value.
func (t *trainer) phaseA(w, lo, hi int) {
	dim, rpt := t.dim, t.rowsPerTask()
	ws, emb := t.ws, t.emb
	var drawn int64
	for s := lo; s < hi; s++ {
		task := t.base + s
		e := int(ws.perm[task])
		u, v := ws.srcs[e], ws.dsts[e]
		slot := s * rpt
		rows := ws.rows[slot : slot+rpt]
		delta := ws.delta[slot*dim : (slot+rpt)*dim]
		du := delta[:dim]
		for j := range du {
			du[j] = 0
		}
		rows[0], rows[1] = u, v
		eu := emb.Row(u)

		// Positive pair (u, v): pull together.
		ev := emb.Row(v)
		var dot float64
		for j := 0; j < dim; j++ {
			dot += float64(eu[j]) * float64(ev[j])
		}
		g := t.lr * float32(1-sigmoid(dot))
		dv := delta[dim : 2*dim]
		for j := 0; j < dim; j++ {
			du[j] += g * ev[j]
			dv[j] = g * eu[j]
		}

		// Negative pairs: push apart. Each negative owns its own slot, so
		// duplicate draws within a task still apply in fixed slot order.
		state := taskState(t.epochKey, task)
		for k := 0; k < t.negs; k++ {
			c := t.sampleNeg(&state)
			drawn++
			for try := 0; (c == u || c == v) && try < negResampleTries; try++ {
				c = t.sampleNeg(&state)
				drawn++
			}
			rows[2+k] = c
			ec := emb.Row(c)
			dot = 0
			for j := 0; j < dim; j++ {
				dot += float64(eu[j]) * float64(ec[j])
			}
			g = -t.lr * float32(sigmoid(dot))
			dc := delta[(2+k)*dim : (3+k)*dim]
			for j := 0; j < dim; j++ {
				du[j] += g * ec[j]
				dc[j] = g * eu[j]
			}
		}
	}
	ws.negDrawn[w*negStride] += drawn
}

// phaseB applies the chunk's deltas. Each embedding row is owned by
// exactly one worker (row mod p) and every owner scans the slots in task
// order, so per-row float32 addition order is fixed no matter how many
// workers run or how they are scheduled.
func (t *trainer) phaseB(w, _, _ int) {
	dim := t.dim
	ws, emb := t.ws, t.emb
	slots := t.cnt * t.rowsPerTask()
	for idx := 0; idx < slots; idx++ {
		r := ws.rows[idx]
		if int(r)%t.p != w {
			continue
		}
		row := emb.Row(r)
		d := ws.delta[idx*dim : (idx+1)*dim]
		for j := 0; j < dim; j++ {
			row[j] += d[j]
		}
	}
}

// levelTrainStats are the per-level step counts trainLevel reports up.
type levelTrainStats struct {
	steps     int64
	negatives int64
}

// trainLevel runs the level's epochs. The learning rate decays linearly
// from lr0 to 0.1*lr0 across the level's epochs (a single epoch trains at
// lr0). Byte-identical output at every worker count; see the package
// comment for the two mechanisms.
func trainLevel(g *graph.Graph, emb *Embedding, ws *workspace, level uint64, epochs int, lr0 float64, opt Options) (levelTrainStats, error) {
	var st levelTrainStats
	if g.NumV != emb.N {
		return st, fmt.Errorf("embedding has %d rows, graph has %d vertices", emb.N, g.NumV)
	}
	m := int(g.M())
	if m == 0 || epochs <= 0 {
		return st, nil
	}
	levelKey := par.Mix64(opt.Seed ^ (level+1)*0x9e3779b97f4a7c15)
	tr := newTrainer(g, emb, ws, levelKey, opt)

	var span *obs.Span
	if obs.Enabled() {
		span = obs.StartKernel("embed:train")
		defer span.Done()
	}
	for e := 0; e < epochs; e++ {
		lr := lr0
		if epochs > 1 {
			lr = lr0 * (1 - 0.9*float64(e)/float64(epochs-1))
		}
		tr.lr = float32(lr)
		tr.epochKey = par.Mix64(levelKey ^ (uint64(e)+1)*0xbf58476d1ce4e5b9)
		drawn := tr.runEpoch()
		st.steps += int64(m)
		st.negatives += drawn
		span.Add(obs.CtrEmbedSGDSteps, int64(m))
		span.Add(obs.CtrEmbedNegatives, drawn)
	}
	return st, nil
}

// projectRows carries a coarse embedding one level finer: every fine
// vertex starts from its aggregate's vector. The level maps are the same
// arrays coarsen.Hierarchy.ProjectToFine walks; here whole rows are copied
// instead of labels.
func projectRows(coarse *Embedding, m []int32, p int) *Embedding {
	dim := int(coarse.Dim)
	fine := &Embedding{N: int32(len(m)), Dim: coarse.Dim, Vecs: make([]float32, len(m)*dim)}
	par.ForEach(len(m), p, func(u int) {
		copy(fine.Vecs[u*dim:(u+1)*dim], coarse.Row(m[u]))
	})
	obs.Add(obs.CtrEmbedProjRows, int64(len(m)))
	return fine
}

// fillRandomRows writes small deterministic pseudo-random values in
// [-0.5/dim, 0.5/dim) keyed by (seed, element index) — independent of the
// worker count, like every other stream in the package.
func fillRandomRows(vecs []float32, start int, seed uint64, dim, p int) {
	inv := 1.0 / float64(dim)
	par.ForEach(len(vecs)-start, p, func(i int) {
		idx := start + i
		r := float64(par.Mix64(seed+uint64(idx))>>11) / (1 << 53) // [0,1)
		vecs[idx] = float32((r - 0.5) * inv)
	})
}
