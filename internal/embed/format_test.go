package embed

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func testEmbedding(n, dim int32) *Embedding {
	e := &Embedding{N: n, Dim: dim, Vecs: make([]float32, int(n)*int(dim))}
	for i := range e.Vecs {
		e.Vecs[i] = float32(i)*0.25 - 3
	}
	return e
}

func TestFormatRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, dim int32 }{
		{1, 1},
		{7, 3},
		{100, 32},
		{1000, 64},
	} {
		e := testEmbedding(tc.n, tc.dim)
		var buf bytes.Buffer
		if err := SaveEmbedding(&buf, e, 0xdeadbeef); err != nil {
			t.Fatalf("n=%d dim=%d: save: %v", tc.n, tc.dim, err)
		}
		got, seed, err := LoadEmbedding(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d dim=%d: load: %v", tc.n, tc.dim, err)
		}
		if seed != 0xdeadbeef {
			t.Errorf("seed round-trip: got %x", seed)
		}
		if got.N != e.N || got.Dim != e.Dim || !bitsEqual(got.Vecs, e.Vecs) {
			t.Errorf("n=%d dim=%d: embedding did not round-trip", tc.n, tc.dim)
		}
	}
}

func TestFormatFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e"+FileExt)
	e := testEmbedding(50, 8)
	if err := SaveFile(path, e, 42); err != nil {
		t.Fatal(err)
	}
	got, seed, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if seed != 42 || !bitsEqual(got.Vecs, e.Vecs) {
		t.Error("file round-trip mismatch")
	}
}

// TestFormatSpecialFloats pins that NaN and infinity payloads survive
// bit-exactly — the loader must not normalize them.
func TestFormatSpecialFloats(t *testing.T) {
	e := &Embedding{N: 1, Dim: 4, Vecs: []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), -0,
	}}
	var buf bytes.Buffer
	if err := SaveEmbedding(&buf, e, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadEmbedding(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got.Vecs, e.Vecs) {
		t.Error("special floats did not round-trip bit-exactly")
	}
}

func validSidecar(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveEmbedding(&buf, testEmbedding(10, 4), 7); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFormatHostileInputs feeds the loader corrupt, truncated, and lying
// sidecars; every one must error, none may panic or over-allocate.
func TestFormatHostileInputs(t *testing.T) {
	good := validSidecar(t)
	reheader := func(mut func(hdr []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b[:32])
		binary.LittleEndian.PutUint32(b[32:36], crc32.Checksum(b[:32], crc32.MakeTable(crc32.Castagnoli)))
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "header"},
		{"short header", good[:10], "header"},
		{"bad magic", append([]byte("NOTMAGIC"), good[8:]...), "magic"},
		{"header crc", func() []byte {
			b := append([]byte(nil), good...)
			b[12] ^= 0xff // corrupt dim without fixing the CRC
			return b
		}(), "header CRC"},
		{"zero dim", reheader(func(h []byte) {
			binary.LittleEndian.PutUint32(h[12:16], 0)
		}), "implausible dim"},
		{"huge dim", reheader(func(h []byte) {
			binary.LittleEndian.PutUint32(h[12:16], 1<<20)
		}), "implausible dim"},
		{"lying row count", reheader(func(h []byte) {
			binary.LittleEndian.PutUint64(h[16:24], 1<<30)
		}), "truncated"},
		{"absurd row count", reheader(func(h []byte) {
			binary.LittleEndian.PutUint64(h[16:24], 1<<60)
		}), "implausible row count"},
		{"truncated payload", good[:len(good)-20], "truncated"},
		{"missing payload crc", good[:len(good)-2], "payload CRC"},
		{"corrupt payload", func() []byte {
			b := append([]byte(nil), good...)
			b[headerSize+5] ^= 0x01
			return b
		}(), "payload CRC mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := LoadEmbedding(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("hostile input loaded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestFormatSaveRejectsInconsistent pins the writer-side validation.
func TestFormatSaveRejectsInconsistent(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveEmbedding(&buf, nil, 0); err == nil {
		t.Error("nil embedding saved without error")
	}
	bad := &Embedding{N: 3, Dim: 4, Vecs: make([]float32, 5)}
	if err := SaveEmbedding(&buf, bad, 0); err == nil {
		t.Error("length-mismatched embedding saved without error")
	}
}
