package embed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// The embedding sidecar format: a versioned, checksummed binary file that
// rides alongside a .mlcg hierarchy container (same magic discipline as
// docs/FORMAT.md, one section, no section table — an embedding is a single
// dense matrix and does not need the container machinery).
//
// Layout (all integers little-endian):
//
//	off  size  field
//	0    8     magic "MLCGEB01" (version in the last two bytes)
//	8    4     flags (reserved, 0)
//	12   4     dim
//	16   8     n (row count)
//	24   8     seed (the training seed, informational)
//	32   4     header CRC-32C of bytes [0, 32)
//	36   n*dim*4  rows, row-major float32
//	end  4     payload CRC-32C of the row bytes
//
// Load reads the payload in bounded chunks, so a lying header cannot make
// it allocate more than one chunk beyond what the stream actually carries
// (the untrusted-input discipline from graph.ReadBinary).

// Magic identifies embedding sidecar files, version 01.
const Magic = "MLCGEB01"

// FileExt is the conventional filename extension for embedding sidecars.
const FileExt = ".mlcgemb"

const headerSize = 36

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// loadChunkRows bounds how many rows a single read allocates before the
// stream has proven it carries them.
const loadChunkBytes = 1 << 16

// SaveEmbedding writes e to w in the sidecar format. seed is recorded in
// the header so a loader can verify it evaluates against the split it was
// trained for.
func SaveEmbedding(w io.Writer, e *Embedding, seed uint64) error {
	if e == nil {
		return fmt.Errorf("embed: nil embedding")
	}
	if int64(len(e.Vecs)) != int64(e.N)*int64(e.Dim) {
		return fmt.Errorf("embed: inconsistent embedding (n=%d dim=%d len=%d)", e.N, e.Dim, len(e.Vecs))
	}
	bw := bufio.NewWriter(w)
	var hdr [headerSize]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], 0)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(e.Dim))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(e.N))
	binary.LittleEndian.PutUint64(hdr[24:32], seed)
	binary.LittleEndian.PutUint32(hdr[32:36], crc32.Checksum(hdr[:32], crcTable))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	crc := crc32.New(crcTable)
	var buf [4]byte
	for _, v := range e.Vecs {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		crc.Write(buf[:])
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(buf[:], crc.Sum32())
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadEmbedding parses a sidecar from r, returning the embedding and the
// recorded training seed. Corrupt, truncated, or lying inputs return an
// error; they never allocate past the next bounded chunk.
func LoadEmbedding(r io.Reader) (*Embedding, uint64, error) {
	br := bufio.NewReader(r)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("embed: reading sidecar header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		return nil, 0, fmt.Errorf("embed: bad magic %q (want %q)", hdr[:8], Magic)
	}
	if got, want := crc32.Checksum(hdr[:32], crcTable), binary.LittleEndian.Uint32(hdr[32:36]); got != want {
		return nil, 0, fmt.Errorf("embed: header CRC mismatch (got %08x, want %08x)", got, want)
	}
	dim := binary.LittleEndian.Uint32(hdr[12:16])
	n := binary.LittleEndian.Uint64(hdr[16:24])
	seed := binary.LittleEndian.Uint64(hdr[24:32])
	if dim == 0 || dim > 1<<16 {
		return nil, 0, fmt.Errorf("embed: implausible dim %d", dim)
	}
	if n > 1<<40/uint64(dim) {
		return nil, 0, fmt.Errorf("embed: implausible row count %d", n)
	}
	total := int64(n) * int64(dim)
	e := &Embedding{N: int32(n), Dim: int32(dim)}
	if uint64(e.N) != n {
		return nil, 0, fmt.Errorf("embed: row count %d exceeds int32", n)
	}
	crc := crc32.New(crcTable)
	var chunk [loadChunkBytes]byte
	for read := int64(0); read < total*4; {
		want := total*4 - read
		if want > loadChunkBytes {
			want = loadChunkBytes
		}
		if _, err := io.ReadFull(br, chunk[:want]); err != nil {
			return nil, 0, fmt.Errorf("embed: sidecar truncated at row byte %d of %d: %w", read, total*4, err)
		}
		crc.Write(chunk[:want])
		for off := int64(0); off < want; off += 4 {
			e.Vecs = append(e.Vecs, math.Float32frombits(binary.LittleEndian.Uint32(chunk[off:off+4])))
		}
		read += want
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, 0, fmt.Errorf("embed: reading payload CRC: %w", err)
	}
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, 0, fmt.Errorf("embed: payload CRC mismatch (got %08x, want %08x)", got, want)
	}
	return e, seed, nil
}

// SaveFile writes e to path.
func SaveFile(path string, e *Embedding, seed uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveEmbedding(f, e, seed); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads the sidecar at path.
func LoadFile(path string) (*Embedding, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return LoadEmbedding(f)
}
