// Package embed trains node embeddings through the coarsening hierarchy,
// the GOSH workload (arXiv:2008.12336) the ROADMAP names as the first
// ML-serving scenario: train on the coarsest graph where one epoch is
// cheap, project the embedding down the hierarchy level by level, and
// refine with a few epochs at each finer level.
//
// The trainer is a negative-sampling SGD over edges (skip-gram with a
// single embedding matrix, as GOSH uses), parallelized with the same
// schedule-independence discipline as the mappers (PR 2): results are
// byte-identical at every worker count. Two mechanisms deliver that:
//
//   - RNG streams are keyed by logical task, not by OS worker. Every SGD
//     task (one training edge within one epoch) derives its own SplitMix64
//     stream from (seed, level, epoch, task), so which goroutine executes
//     a task cannot change the negatives it draws. This is the
//     per-worker-streams idea from the issue made schedule-independent the
//     same way canonical renumbering made mapper tie-breaks so.
//
//   - Updates are applied in chunked two-phase rounds. A chunk of tasks
//     first computes gradient deltas in parallel against parameters that
//     are frozen for the duration of the chunk (phase A writes only to
//     per-task scratch), then the deltas are applied with each embedding
//     row owned by exactly one worker scanning the chunk in task order
//     (phase B). Per-row update order is therefore (task, slot) order
//     regardless of the worker count, and float32 addition order — the
//     thing Hogwild-style SGD leaves to the scheduler — is fixed.
//
// The cost of determinism is minibatch semantics within a chunk (tasks in
// one chunk read the same frozen parameters), which is ordinary minibatch
// SGD and does not hurt link-prediction quality at the chunk sizes used.
package embed

import (
	"fmt"
	"time"

	"mlcg/internal/coarsen"
	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// Options configures multilevel embedding training. The zero value of any
// field selects the documented default.
type Options struct {
	// Dim is the embedding dimensionality (default 32).
	Dim int
	// Epochs is the epoch count at the coarsest level; finer levels decay
	// geometrically from it (default 32). One epoch is one pass over the
	// level's training edges.
	Epochs int
	// Negatives is the number of negative samples drawn per positive edge
	// (default 5).
	Negatives int
	// LR is the initial learning rate at the coarsest level (default 0.25).
	LR float64
	// LevelDecay scales the epoch count per finer level: a level i steps
	// away from the coarsest trains for max(1, round(Epochs*LevelDecay^i))
	// epochs (default 0.65). Coarse levels are cheap and train the global
	// structure; fine levels only polish locally, exactly the GOSH
	// smoothing-ratio idea.
	LevelDecay float64
	// LRDecay scales the starting learning rate per finer level the same
	// way (default 0.85). Within a level the rate additionally decays
	// linearly to 10% of the level's starting rate across its epochs.
	LRDecay float64
	// Seed keys every RNG stream of the run (edge order, negative
	// sampling). Identical options and seed give byte-identical embeddings
	// at every worker count.
	Seed uint64
	// Workers is the parallelism degree (0 = GOMAXPROCS).
	Workers int
}

// withDefaults resolves zero fields to the documented defaults.
func (o Options) withDefaults() Options {
	if o.Dim <= 0 {
		o.Dim = 32
	}
	if o.Epochs <= 0 {
		o.Epochs = 32
	}
	if o.Negatives <= 0 {
		o.Negatives = 5
	}
	if o.LR <= 0 {
		o.LR = 0.25
	}
	if o.LevelDecay <= 0 || o.LevelDecay > 1 {
		o.LevelDecay = 0.65
	}
	if o.LRDecay <= 0 || o.LRDecay > 1 {
		o.LRDecay = 0.85
	}
	return o
}

// Embedding is a dense n x dim float32 matrix, row u being the vector of
// vertex u. Float32 keeps the training memory at GOSH's footprint and
// makes "byte-identical" a literal statement about the stored bits.
type Embedding struct {
	N   int32
	Dim int32
	// Vecs is row-major: vertex u occupies Vecs[u*Dim : (u+1)*Dim].
	Vecs []float32
}

// Row returns the embedding vector of u, aliasing the backing store.
func (e *Embedding) Row(u int32) []float32 {
	d := int64(e.Dim)
	return e.Vecs[int64(u)*d : (int64(u)+1)*d]
}

// Score is the dot product of the two vertex vectors, the link score used
// by the evaluation harness (higher = more likely an edge).
func (e *Embedding) Score(u, v int32) float64 {
	eu, ev := e.Row(u), e.Row(v)
	var s float64
	for i := range eu {
		s += float64(eu[i]) * float64(ev[i])
	}
	return s
}

// Result is a finished training run: the finest-level embedding plus the
// measurements the bench suite and CLIs report.
type Result struct {
	Emb *Embedding
	// Steps counts positive-sample SGD steps across all levels (one per
	// training edge per epoch); the bench suite's steps/sec divides this
	// by TrainTime.
	Steps int64
	// Negatives counts drawn negative samples.
	Negatives int64
	// TrainTime is wall time spent in SGD epochs and projection, excluding
	// hierarchy construction (which is the coarsening benchmarks' number).
	TrainTime time.Duration
	// EpochsPerLevel records the realized schedule, finest level first
	// (index parallel to h.Graphs).
	EpochsPerLevel []int
}

// StepsPerSec returns positive SGD steps per second of training time.
func (r *Result) StepsPerSec() float64 {
	if r.TrainTime <= 0 {
		return 0
	}
	return float64(r.Steps) / r.TrainTime.Seconds()
}

// Schedule returns the per-level (epochs, lr) pairs for a hierarchy with
// the given number of graphs (levels+1), finest first. Exposed so the
// flat-baseline comparison and the docs can state the exact schedule.
func Schedule(numGraphs int, opt Options) (epochs []int, lrs []float64) {
	opt = opt.withDefaults()
	epochs = make([]int, numGraphs)
	lrs = make([]float64, numGraphs)
	ecur, lcur := float64(opt.Epochs), opt.LR
	// Walk from the coarsest graph (last index) to the finest.
	for i := numGraphs - 1; i >= 0; i-- {
		e := int(ecur + 0.5)
		if e < 1 {
			e = 1
		}
		epochs[i] = e
		lrs[i] = lcur
		ecur *= opt.LevelDecay
		lcur *= opt.LRDecay
	}
	return epochs, lrs
}

// TotalEpochs sums the schedule for a hierarchy with numGraphs graphs —
// the epoch budget a flat single-level run needs to be an equal-budget
// baseline.
func TotalEpochs(numGraphs int, opt Options) int {
	epochs, _ := Schedule(numGraphs, opt)
	total := 0
	for _, e := range epochs {
		total += e
	}
	return total
}

// TrainHierarchy trains a multilevel embedding: SGD on the coarsest graph,
// then repeatedly project one level finer and refine. The returned
// embedding covers the finest (input) graph.
func TrainHierarchy(h *coarsen.Hierarchy, opt Options) (*Result, error) {
	if h == nil || len(h.Graphs) == 0 {
		return nil, fmt.Errorf("embed: nil or empty hierarchy")
	}
	opt = opt.withDefaults()
	epochs, lrs := Schedule(len(h.Graphs), opt)
	res := &Result{EpochsPerLevel: epochs}
	t0 := time.Now()

	ws := newWorkspace()
	last := len(h.Graphs) - 1
	emb := randomInit(h.Graphs[last].NumV, int32(opt.Dim), opt.Seed, opt.Workers)
	for i := last; i >= 0; i-- {
		g := h.Graphs[i]
		var lvl *obs.Span
		if obs.Enabled() {
			lvl = obs.StartKernel(fmt.Sprintf("embed:level %d", i))
		}
		st, err := trainLevel(g, emb, ws, uint64(i), epochs[i], lrs[i], opt)
		if err != nil {
			lvl.Done()
			return nil, fmt.Errorf("embed: level %d: %w", i, err)
		}
		res.Steps += st.steps
		res.Negatives += st.negatives
		if i > 0 {
			// Project onto the next finer level: every fine vertex starts
			// from its aggregate's vector.
			var proj *obs.Span
			if lvl != nil {
				proj = obs.StartKernel("embed:project")
			}
			emb = projectRows(emb, h.Maps[i-1], opt.Workers)
			proj.Done()
		}
		lvl.Done()
	}
	res.Emb = emb
	res.TrainTime = time.Since(t0)
	return res, nil
}

// TrainFlat trains on a single graph with the given epoch count at the
// configured initial learning rate — the equal-budget single-level
// baseline the multilevel claim is measured against.
func TrainFlat(g *graph.Graph, totalEpochs int, opt Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("embed: nil graph")
	}
	opt = opt.withDefaults()
	if totalEpochs < 1 {
		totalEpochs = 1
	}
	res := &Result{EpochsPerLevel: []int{totalEpochs}}
	t0 := time.Now()
	ws := newWorkspace()
	emb := randomInit(g.NumV, int32(opt.Dim), opt.Seed, opt.Workers)
	var lvl *obs.Span
	if obs.Enabled() {
		lvl = obs.StartKernel("embed:level 0")
	}
	st, err := trainLevel(g, emb, ws, 0, totalEpochs, opt.LR, opt)
	lvl.Done()
	if err != nil {
		return nil, fmt.Errorf("embed: flat: %w", err)
	}
	res.Steps, res.Negatives = st.steps, st.negatives
	res.Emb = emb
	res.TrainTime = time.Since(t0)
	return res, nil
}

// randomInit fills an embedding with small deterministic pseudo-random
// values in [-0.5, 0.5)/dim, the word2vec-style init. Keyed by (seed,
// element index) so the result is independent of the worker count; the
// init stream is Mix64-separated from the SGD task streams.
func randomInit(n, dim int32, seed uint64, p int) *Embedding {
	e := &Embedding{N: n, Dim: dim, Vecs: make([]float32, int64(n)*int64(dim))}
	fillRandomRows(e.Vecs, 0, par.Mix64(seed^0x696e6974), int(dim), p)
	return e
}
