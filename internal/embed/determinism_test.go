package embed

import (
	"math"
	"testing"

	"mlcg/internal/coarsen"
	"mlcg/internal/gen"
	"mlcg/internal/graph"
)

// detCases is the table the determinism sweep runs over: one instance per
// generator family of the suite (regular lattice, geometric, triangulated,
// preferential-attachment, web-crawl, chain), laptop-sized so the
// p ∈ {1,2,4,8} × instances sweep stays fast under -race.
func detCases() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"grid2d", gen.Grid2D(40, 40)},
		{"trimesh", gen.TriMesh(36, 36, 15)},
		{"rgg", gen.RGG(2500, 0, 11)},
		{"ba", gen.BA(1500, 6, 12)},
		{"weblike", gen.WebLike(2000, 13)},
		{"chainlike", gen.ChainLike(2500, 14)},
	}
}

func buildHierarchy(t *testing.T, g *graph.Graph) *coarsen.Hierarchy {
	t.Helper()
	c := &coarsen.Coarsener{Mapper: coarsen.GOSH{}, Builder: &coarsen.AutoConstruct{}, Seed: 5, Workers: 4}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// bitsEqual compares float32 slices bit for bit — "byte-identical" taken
// literally (and immune to NaN != NaN surprises).
func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestEmbedDeterminismAcrossWorkers is the PR 2 schedule-independence
// discipline applied to the training loop: the same hierarchy, options,
// and seed must give byte-identical embeddings at every worker count.
// Runs under -race via `make test-determinism`.
func TestEmbedDeterminismAcrossWorkers(t *testing.T) {
	for _, tc := range detCases() {
		t.Run(tc.name, func(t *testing.T) {
			h := buildHierarchy(t, tc.g)
			var ref *Result
			for _, p := range []int{1, 2, 4, 8} {
				opt := Options{Dim: 16, Epochs: 4, Negatives: 3, Seed: 99, Workers: p}
				res, err := TrainHierarchy(h, opt)
				if err != nil {
					t.Fatalf("p=%d: %v", p, err)
				}
				if res.Emb.N != tc.g.NumV {
					t.Fatalf("p=%d: embedding has %d rows, want %d", p, res.Emb.N, tc.g.NumV)
				}
				if ref == nil {
					ref = res
					continue
				}
				if !bitsEqual(ref.Emb.Vecs, res.Emb.Vecs) {
					t.Errorf("p=%d: embedding differs from p=1", p)
				}
				if ref.Steps != res.Steps || ref.Negatives != res.Negatives {
					t.Errorf("p=%d: steps/negatives (%d, %d) differ from p=1 (%d, %d)",
						p, res.Steps, res.Negatives, ref.Steps, ref.Negatives)
				}
			}
		})
	}
}

// TestEmbedFlatDeterminismAcrossWorkers covers the single-level path the
// multilevel-vs-flat comparison depends on.
func TestEmbedFlatDeterminismAcrossWorkers(t *testing.T) {
	g := gen.RGG(2000, 0, 31)
	var ref []float32
	for _, p := range []int{1, 2, 4, 8} {
		res, err := TrainFlat(g, 4, Options{Dim: 16, Negatives: 3, Seed: 7, Workers: p})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if ref == nil {
			ref = res.Emb.Vecs
			continue
		}
		if !bitsEqual(ref, res.Emb.Vecs) {
			t.Errorf("p=%d: flat embedding differs from p=1", p)
		}
	}
}

// TestEmbedSeedSensitivity pins that the seed actually matters: two seeds
// must give different embeddings (the complement of the determinism test,
// and the regression net for accidentally ignoring a seed somewhere).
func TestEmbedSeedSensitivity(t *testing.T) {
	g := gen.Grid2D(30, 30)
	h := buildHierarchy(t, g)
	a, err := TrainHierarchy(h, Options{Dim: 8, Epochs: 2, Negatives: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainHierarchy(h, Options{Dim: 8, Epochs: 2, Negatives: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bitsEqual(a.Emb.Vecs, b.Emb.Vecs) {
		t.Error("different seeds produced identical embeddings")
	}
	c, err := TrainHierarchy(h, Options{Dim: 8, Epochs: 2, Negatives: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(a.Emb.Vecs, c.Emb.Vecs) {
		t.Error("same seed produced different embeddings across runs")
	}
}
