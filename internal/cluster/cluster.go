// Package cluster implements multilevel graph clustering on top of the
// coarsening substrate — the application direction the paper names in
// Section III.C ("we plan to use our new coarse mapping and/or graph
// construction methods in place of the coarsening routines in well-known
// multilevel methods for graph clustering"). The pipeline is the classic
// multilevel scheme: coarsen until roughly the requested number of
// clusters remain, project the coarse vertices back as cluster seeds, and
// refine with modularity-driven local moving sweeps at every level.
package cluster

import (
	"fmt"

	"mlcg/internal/coarsen"
	"mlcg/internal/graph"
)

// Options configures multilevel clustering.
type Options struct {
	// TargetClusters stops coarsening near this cluster count (the
	// coarsening may overshoot slightly; the refinement can merge
	// further). Zero means 16.
	TargetClusters int
	// Mapper and Builder drive the coarsening; nil means HEC + sort, the
	// paper's recommended pair.
	Mapper  coarsen.Mapper
	Builder coarsen.Builder
	// RefinePasses bounds the local-moving sweeps per level; zero means
	// 4, negative disables refinement.
	RefinePasses int
	Seed         uint64
	Workers      int
}

// Result is a clustering of the input graph.
type Result struct {
	Labels     []int32 // cluster id per vertex, compact in [0, K)
	K          int32
	Modularity float64
	Levels     int
}

// Multilevel clusters g.
func Multilevel(g *graph.Graph, opt Options) (*Result, error) {
	n := g.N()
	if n == 0 {
		return &Result{}, nil
	}
	target := opt.TargetClusters
	if target <= 0 {
		target = 16
	}
	if opt.Mapper == nil {
		opt.Mapper = coarsen.HEC{}
	}
	if opt.Builder == nil {
		opt.Builder = coarsen.BuildSort{}
	}
	passes := opt.RefinePasses
	if passes == 0 {
		passes = 4
	}

	c := coarsen.Coarsener{
		Mapper: opt.Mapper, Builder: opt.Builder,
		Cutoff: target, DiscardBelow: -1,
		Seed: opt.Seed, Workers: opt.Workers,
	}
	h, err := c.Run(g)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}

	// Seed from the level whose size lands nearest the target (aggressive
	// mappers like MIS2 can overshoot far past it in the final step).
	seedLevel := len(h.Graphs) - 1
	for i, cg := range h.Graphs {
		if absDiff(cg.N(), target) < absDiff(h.Graphs[seedLevel].N(), target) {
			seedLevel = i
		}
	}

	// Per-level self-loop weights: the intra-aggregate weight each coarse
	// vertex carries. Local moving needs them so that coarse-level moves
	// optimize the FINE graph's modularity (Louvain keeps self-loops for
	// exactly this reason; this module's graphs do not store them).
	selfW := make([][]int64, len(h.Graphs))
	selfW[0] = make([]int64, g.N()) // fine vertices carry none
	for i, m := range h.Maps {
		fineG := h.Graphs[i]
		coarseN := h.Graphs[i+1].N()
		sw := make([]int64, coarseN)
		// Inherited internal weight plus newly contracted edges.
		for u := 0; u < fineG.N(); u++ {
			sw[m[u]] += selfW[i][u]
		}
		for u := int32(0); u < fineG.NumV; u++ {
			adj, wgt := fineG.Neighbors(u)
			for k, v := range adj {
				if u < v && m[u] == m[v] {
					sw[m[u]] += wgt[k]
				}
			}
		}
		selfW[i+1] = sw
	}

	mTotal := float64(g.TotalEdgeWeight())
	labels := make([]int32, h.Graphs[seedLevel].N())
	for i := range labels {
		labels[i] = int32(i)
	}
	if passes > 0 {
		localMoving(h.Graphs[seedLevel], labels, passes, selfW[seedLevel], mTotal)
	}
	for i := seedLevel - 1; i >= 0; i-- {
		fineG := h.Graphs[i]
		m := h.Maps[i]
		fl := make([]int32, fineG.N())
		for u := range m {
			fl[u] = labels[m[u]]
		}
		if passes > 0 {
			localMoving(fineG, fl, passes, selfW[i], mTotal)
		}
		labels = fl
	}
	k := compactLabels(labels)
	return &Result{
		Labels:     labels,
		K:          k,
		Modularity: Modularity(g, labels),
		Levels:     h.Levels(),
	}, nil
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// Louvain runs the full Louvain method with this module's own coarse
// graph construction doing the contraction: local moving to a fixpoint,
// contract the clusters into a coarse graph (each cluster one vertex,
// inter-cluster weights merged by the coarsen builders), and repeat until
// modularity stops improving. Unlike Multilevel, the cluster count is
// chosen by the modularity landscape rather than a target.
func Louvain(g *graph.Graph, opt Options) (*Result, error) {
	n := g.N()
	if n == 0 {
		return &Result{}, nil
	}
	if opt.Builder == nil {
		opt.Builder = coarsen.BuildSort{}
	}
	passes := opt.RefinePasses
	if passes <= 0 {
		passes = 8
	}
	mTotal := float64(g.TotalEdgeWeight())

	cur := g
	selfW := make([]int64, n)
	// chain[i] maps the vertices of level i onto level i+1's clusters.
	var chain [][]int32
	levels := 0
	prevQ := -1.0
	for round := 0; round < 40; round++ {
		labels := make([]int32, cur.N())
		for i := range labels {
			labels[i] = int32(i)
		}
		localMoving(cur, labels, passes, selfW, mTotal)
		k := compactLabels(labels)
		if int(k) == cur.N() {
			break // no merge happened: converged
		}
		chain = append(chain, labels)
		levels++

		// Contract via the module's construction machinery.
		m := &coarsen.Mapping{M: labels, NC: k}
		next, err := opt.Builder.Build(cur, m, opt.Workers)
		if err != nil {
			return nil, fmt.Errorf("cluster: louvain contraction: %w", err)
		}
		// Carry internal weight into the next level's self-loops.
		sw := make([]int64, k)
		for u := 0; u < cur.N(); u++ {
			sw[labels[u]] += selfW[u]
		}
		for u := int32(0); u < cur.NumV; u++ {
			adj, wgt := cur.Neighbors(u)
			for kk, v := range adj {
				if u < v && labels[u] == labels[v] {
					sw[labels[u]] += wgt[kk]
				}
			}
		}
		cur = next
		selfW = sw

		// Project to the fine graph and check progress.
		fine := projectChain(chain, n)
		q := Modularity(g, fine)
		if q <= prevQ+1e-9 {
			break
		}
		prevQ = q
		if cur.N() <= 1 {
			break
		}
	}
	labels := projectChain(chain, n)
	k := compactLabels(labels)
	return &Result{
		Labels:     labels,
		K:          k,
		Modularity: Modularity(g, labels),
		Levels:     levels,
	}, nil
}

// projectChain composes the per-level cluster assignments down to the
// finest level.
func projectChain(chain [][]int32, n int) []int32 {
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	if len(chain) == 0 {
		return labels
	}
	for u := 0; u < n; u++ {
		l := labels[u]
		for _, step := range chain {
			l = step[l]
		}
		labels[u] = l
	}
	return labels
}

// Modularity returns Newman's weighted modularity
// Q = Σ_c [ in_c/m − (tot_c / 2m)² ], where in_c is the intra-cluster
// edge weight, tot_c the total weighted degree of c, and m the total edge
// weight. Q ∈ [−1/2, 1).
func Modularity(g *graph.Graph, labels []int32) float64 {
	m := float64(g.TotalEdgeWeight())
	if m == 0 {
		return 0
	}
	var k int32
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	in := make([]float64, k)
	tot := make([]float64, k)
	for u := int32(0); u < g.NumV; u++ {
		adj, wgt := g.Neighbors(u)
		for kk, v := range adj {
			w := float64(wgt[kk])
			tot[labels[u]] += w
			if labels[u] == labels[v] && u < v {
				in[labels[u]] += w
			}
		}
	}
	var q float64
	for c := int32(0); c < k; c++ {
		q += in[c]/m - (tot[c]/(2*m))*(tot[c]/(2*m))
	}
	return q
}

// localMoving runs modularity-ascent sweeps: each vertex moves to the
// neighboring cluster with the highest modularity gain, until a sweep
// makes no move or the pass budget runs out. Sequential (the refinement
// analog of the paper's sequential FM). selfW carries each vertex's
// internal (contracted) weight and mTotal the FINE graph's total edge
// weight, so the gains computed on a coarse level equal the fine-level
// modularity deltas.
func localMoving(g *graph.Graph, labels []int32, maxPasses int, selfW []int64, mTotal float64) {
	n := g.N()
	m2 := 2 * mTotal
	if m2 == 0 {
		return
	}
	// Weighted degree per vertex (including twice the self-loop weight,
	// as in a standard Louvain contraction) and total per cluster.
	deg := make([]float64, n)
	var k int32
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	tot := make([]float64, k)
	for u := 0; u < n; u++ {
		_, wgt := g.Neighbors(int32(u))
		for _, w := range wgt {
			deg[u] += float64(w)
		}
		if selfW != nil {
			deg[u] += 2 * float64(selfW[u])
		}
		tot[labels[u]] += deg[u]
	}

	// Stamped scratch accumulator: O(deg) per vertex with no map overhead.
	acc := make([]float64, k)
	stamp := make([]int32, k)
	touched := make([]int32, 0, 64)
	version := int32(0)
	for pass := 0; pass < maxPasses; pass++ {
		moved := 0
		for u := int32(0); int(u) < n; u++ {
			cur := labels[u]
			adj, wgt := g.Neighbors(u)
			version++
			touched = touched[:0]
			accOf := func(c int32) float64 {
				if stamp[c] != version {
					return 0
				}
				return acc[c]
			}
			for kk, v := range adj {
				c := labels[v]
				if stamp[c] != version {
					stamp[c] = version
					acc[c] = 0
					touched = append(touched, c)
				}
				acc[c] += float64(wgt[kk])
			}
			// Gain of moving u into cluster c (relative to isolation):
			// w(u→c)/m − deg_u·tot_c/(2m²); compare against staying.
			best := cur
			bestGain := accOf(cur) - deg[u]*(tot[cur]-deg[u])/m2
			for _, c := range touched {
				if c == cur {
					continue
				}
				gain := acc[c] - deg[u]*tot[c]/m2
				if gain > bestGain+1e-12 {
					best = c
					bestGain = gain
				}
			}
			if best != cur {
				tot[cur] -= deg[u]
				tot[best] += deg[u]
				labels[u] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// compactLabels renumbers labels to [0, K) in place and returns K.
func compactLabels(labels []int32) int32 {
	remap := map[int32]int32{}
	var k int32
	for i, l := range labels {
		nl, ok := remap[l]
		if !ok {
			nl = k
			remap[l] = nl
			k++
		}
		labels[i] = nl
	}
	return k
}
