package cluster

import (
	"testing"

	"mlcg/internal/coarsen"
	"mlcg/internal/gen"
	"mlcg/internal/graph"
	"mlcg/internal/par"
)

// planted builds k dense communities joined by single bridges.
func planted(k, size int, seed uint64) *graph.Graph {
	rng := par.NewRNG(seed)
	n := k * size
	var e []graph.Edge
	for c := 0; c < k; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for t := 0; t < 4; t++ {
				j := rng.Intn(size)
				if j != i {
					e = append(e, graph.Edge{U: int32(base + i), V: int32(base + j), W: 4})
				}
			}
		}
		e = append(e, graph.Edge{
			U: int32(base + rng.Intn(size)),
			V: int32(((c+1)%k)*size + rng.Intn(size)), W: 1,
		})
	}
	g, err := graph.FromEdges(n, e)
	if err != nil {
		panic(err)
	}
	lcc, _ := g.LargestComponent()
	return lcc
}

func TestModularityKnownValues(t *testing.T) {
	// Two triangles joined by one edge, clustered by triangle:
	// m = 7, in = 3 per cluster, tot = 7 per cluster.
	// Q = 2*(3/7 - (7/14)^2) = 6/7 - 1/2.
	var e []graph.Edge
	for _, tri := range [][3]int32{{0, 1, 2}, {3, 4, 5}} {
		e = append(e, graph.Edge{U: tri[0], V: tri[1], W: 1},
			graph.Edge{U: tri[1], V: tri[2], W: 1},
			graph.Edge{U: tri[2], V: tri[0], W: 1})
	}
	e = append(e, graph.Edge{U: 2, V: 3, W: 1})
	g := graph.MustFromEdges(6, e)
	labels := []int32{0, 0, 0, 1, 1, 1}
	want := 6.0/7.0 - 0.5
	if got := Modularity(g, labels); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("modularity = %v, want %v", got, want)
	}
	// Everything in one cluster has modularity 0.
	if got := Modularity(g, make([]int32, 6)); got > 1e-9 || got < -1e-9 {
		t.Errorf("single-cluster modularity = %v, want 0", got)
	}
}

func TestMultilevelRecoversPlantedCommunities(t *testing.T) {
	const k, size = 16, 30
	g := planted(k, size, 7)
	res, err := Multilevel(g, Options{TargetClusters: k, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != g.N() {
		t.Fatalf("labels cover %d of %d", len(res.Labels), g.N())
	}
	if res.K < int32(k)/2 || res.K > int32(k)*3 {
		t.Errorf("K = %d, want near %d", res.K, k)
	}
	if res.Modularity < 0.6 {
		t.Errorf("modularity %.3f, want > 0.6 on planted communities", res.Modularity)
	}
	// Purity: most vertices of each planted block share a label.
	agree, total := 0, 0
	for c := 0; c < k; c++ {
		counts := map[int32]int{}
		for i := 0; i < size; i++ {
			v := int32(c*size + i)
			if int(v) < g.N() {
				counts[res.Labels[v]]++
				total++
			}
		}
		best := 0
		for _, cnt := range counts {
			if cnt > best {
				best = cnt
			}
		}
		agree += best
	}
	if purity := float64(agree) / float64(total); purity < 0.85 {
		t.Errorf("purity %.3f", purity)
	}
}

func TestRefinementImprovesModularity(t *testing.T) {
	g := planted(8, 25, 9)
	noRefine, err := Multilevel(g, Options{TargetClusters: 8, RefinePasses: -1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Multilevel(g, Options{TargetClusters: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Modularity < noRefine.Modularity-1e-9 {
		t.Errorf("refinement lowered modularity: %.4f -> %.4f",
			noRefine.Modularity, refined.Modularity)
	}
}

func TestMultilevelWithOtherMappers(t *testing.T) {
	g := planted(6, 20, 11)
	for _, mname := range []string{"gosh", "mis2", "twohop"} {
		mapper, err := coarsen.MapperByName(mname)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Multilevel(g, Options{TargetClusters: 6, Mapper: mapper, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", mname, err)
		}
		if res.Modularity < 0.4 {
			t.Errorf("%s: modularity %.3f", mname, res.Modularity)
		}
	}
}

func TestMultilevelOnSuiteInstance(t *testing.T) {
	g := gen.Caveman(40, 12, 0.1, 5)
	res, err := Multilevel(g, Options{TargetClusters: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Modularity <= 0 {
		t.Errorf("modularity %.3f on a community graph", res.Modularity)
	}
	// Labels compact.
	seen := make([]bool, res.K)
	for _, l := range res.Labels {
		if l < 0 || l >= res.K {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Errorf("cluster %d empty", c)
		}
	}
}

func TestLouvainRecoversCommunities(t *testing.T) {
	const k, size = 12, 30
	g := planted(k, size, 17)
	res, err := Louvain(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Modularity < 0.6 {
		t.Errorf("louvain modularity %.3f", res.Modularity)
	}
	if res.K < 6 || res.K > 40 {
		t.Errorf("K = %d, want near %d", res.K, k)
	}
	if res.Levels < 1 {
		t.Errorf("levels = %d", res.Levels)
	}
}

func TestLouvainBeatsOrMatchesTargeted(t *testing.T) {
	g := planted(10, 25, 21)
	lv, err := Louvain(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Multilevel(g, Options{TargetClusters: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Louvain chooses its own K by modularity; it must be competitive.
	if lv.Modularity < 0.9*ml.Modularity {
		t.Errorf("louvain %.3f far below targeted %.3f", lv.Modularity, ml.Modularity)
	}
}

func TestLouvainOnCliqueIsOneCluster(t *testing.T) {
	// A single clique has no community structure: Q stays ~0 and Louvain
	// collapses everything into one cluster (or stops immediately).
	var e []graph.Edge
	for i := int32(0); i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			e = append(e, graph.Edge{U: i, V: j, W: 1})
		}
	}
	g := graph.MustFromEdges(12, e)
	res, err := Louvain(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 3 {
		t.Errorf("clique split into %d clusters", res.K)
	}
}

func TestLouvainDeterministic(t *testing.T) {
	g := planted(8, 20, 31)
	a, err := Louvain(g, Options{Seed: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Louvain(g, Options{Seed: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K || a.Modularity != b.Modularity {
		t.Fatalf("runs differ: K %d/%d Q %v/%v", a.K, b.K, a.Modularity, b.Modularity)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
}

func TestLouvainEmpty(t *testing.T) {
	res, err := Louvain(graph.MustFromEdges(0, nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 0 {
		t.Errorf("K = %d", res.K)
	}
}

func TestMultilevelEmptyGraph(t *testing.T) {
	g := graph.MustFromEdges(0, nil)
	res, err := Multilevel(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 0 || len(res.Labels) != 0 {
		t.Errorf("empty graph result %+v", res)
	}
}

func TestCompactLabels(t *testing.T) {
	labels := []int32{5, 9, 5, 2}
	k := compactLabels(labels)
	if k != 3 {
		t.Errorf("k = %d", k)
	}
	if labels[0] != labels[2] || labels[0] == labels[1] || labels[3] >= 3 {
		t.Errorf("labels %v", labels)
	}
}
