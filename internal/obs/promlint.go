package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Strict validator for the Prometheus text exposition format — the test
// and CI gate behind /metrics. It is a pure-Go line parser that enforces
// more than the scrape grammar requires, because the repo controls the
// producer:
//
//   - every sample belongs to a family announced by a # HELP line
//     immediately followed by its # TYPE line;
//   - metric and label names match [a-zA-Z_][a-zA-Z0-9_]* (no colons —
//     those are reserved for recording rules);
//   - counter families end in _total and their values are non-negative;
//   - histogram families expose cumulative _bucket series with strictly
//     increasing le bounds, non-decreasing counts, a terminal le="+Inf"
//     bucket, and _sum/_count samples whose _count equals the +Inf bucket;
//   - no duplicate series, no timestamps, no trailing garbage.
//
// LintStats reports what was seen so callers can also assert coverage
// ("at least one histogram family", "this family present").

// LintStats summarizes a validated exposition document.
type LintStats struct {
	// Families maps each family name to its declared type.
	Families map[string]string
	// Samples is the total number of sample lines.
	Samples int
}

type lintSample struct {
	name   string
	labels []Label
	value  float64
	line   int
}

// LintMetrics validates an exposition document read from r. It returns
// the collected stats and the first violation found.
func LintMetrics(r io.Reader) (*LintStats, error) {
	stats := &LintStats{Families: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	var (
		cur        string // current family name
		curType    string
		sawSamples bool // samples seen for the current family
		pendHelp   string
		hist       []lintSample // histogram samples of the current family
		seen       = map[string]bool{}
		lineNo     int
	)
	closeFamily := func() error {
		if cur == "" {
			return nil
		}
		if !sawSamples {
			return fmt.Errorf("family %q declared but has no samples", cur)
		}
		if curType == "histogram" {
			if err := lintHistogram(cur, hist); err != nil {
				return err
			}
		}
		cur, curType, sawSamples, hist = "", "", false, nil
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			return stats, fmt.Errorf("line %d: blank line", lineNo)
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if pendHelp != "" {
				return stats, fmt.Errorf("line %d: # HELP %s not followed by its # TYPE", lineNo, pendHelp)
			}
			rest := line[len("# HELP "):]
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return stats, fmt.Errorf("line %d: malformed HELP line", lineNo)
			}
			if !ValidMetricName(name) {
				return stats, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if _, dup := stats.Families[name]; dup {
				return stats, fmt.Errorf("line %d: family %q declared twice", lineNo, name)
			}
			if err := closeFamily(); err != nil {
				return stats, fmt.Errorf("line %d: %w", lineNo, err)
			}
			pendHelp = name
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line[len("# TYPE "):])
			if len(fields) != 2 {
				return stats, fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			name, typ := fields[0], fields[1]
			if pendHelp == "" {
				return stats, fmt.Errorf("line %d: # TYPE %s without a preceding # HELP", lineNo, name)
			}
			if name != pendHelp {
				return stats, fmt.Errorf("line %d: # TYPE names %q but the pending # HELP names %q", lineNo, name, pendHelp)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return stats, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				return stats, fmt.Errorf("line %d: counter family %q does not end in _total", lineNo, name)
			}
			stats.Families[name] = typ
			cur, curType, pendHelp = name, typ, ""
		case strings.HasPrefix(line, "#"):
			return stats, fmt.Errorf("line %d: comment other than HELP/TYPE: %q", lineNo, line)
		default:
			if pendHelp != "" {
				return stats, fmt.Errorf("line %d: sample before # TYPE of family %q", lineNo, pendHelp)
			}
			s, err := parseSampleLine(line, lineNo)
			if err != nil {
				return stats, err
			}
			if cur == "" {
				return stats, fmt.Errorf("line %d: sample %q outside any family", lineNo, s.name)
			}
			if !sampleBelongs(cur, curType, s.name) {
				return stats, fmt.Errorf("line %d: sample %q does not belong to family %q (type %s)",
					lineNo, s.name, cur, curType)
			}
			if curType == "counter" && s.value < 0 {
				return stats, fmt.Errorf("line %d: counter %s has negative value %v", lineNo, s.name, s.value)
			}
			id := seriesID(s)
			if seen[id] {
				return stats, fmt.Errorf("line %d: duplicate series %s", lineNo, id)
			}
			seen[id] = true
			if curType == "histogram" {
				hist = append(hist, s)
			}
			sawSamples = true
			stats.Samples++
		}
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}
	if pendHelp != "" {
		return stats, fmt.Errorf("trailing # HELP %s without # TYPE", pendHelp)
	}
	if err := closeFamily(); err != nil {
		return stats, err
	}
	if stats.Samples == 0 {
		return stats, fmt.Errorf("document has no samples")
	}
	return stats, nil
}

// LintMetricsFile validates the exposition document at path.
func LintMetricsFile(path string) (*LintStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LintMetrics(f)
}

// sampleBelongs reports whether a sample name is legal inside the family.
func sampleBelongs(fam, typ, name string) bool {
	if typ == "histogram" {
		return name == fam+"_bucket" || name == fam+"_sum" || name == fam+"_count"
	}
	if typ == "summary" {
		return name == fam || name == fam+"_sum" || name == fam+"_count"
	}
	return name == fam
}

// parseSampleLine parses `name{labels} value` with no timestamp.
func parseSampleLine(line string, lineNo int) (lintSample, error) {
	s := lintSample{line: lineNo}
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end <= 0 {
		return s, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
	}
	s.name = rest[:end]
	if !ValidMetricName(s.name) {
		return s, fmt.Errorf("line %d: invalid metric name %q", lineNo, s.name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := strings.LastIndex(rest, "}")
		if close < 0 {
			return s, fmt.Errorf("line %d: unterminated label set", lineNo)
		}
		labels, err := parseLabels(rest[1:close], lineNo)
		if err != nil {
			return s, err
		}
		s.labels = labels
		rest = rest[close+1:]
	}
	if !strings.HasPrefix(rest, " ") {
		return s, fmt.Errorf("line %d: missing value separator in %q", lineNo, line)
	}
	valStr := strings.TrimPrefix(rest, " ")
	if valStr == "" || strings.ContainsAny(valStr, " \t") {
		return s, fmt.Errorf("line %d: expected exactly one value, got %q (timestamps are not allowed)", lineNo, valStr)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("line %d: bad sample value %q: %v", lineNo, valStr, err)
	}
	s.value = v
	return s, nil
}

func parseLabels(body string, lineNo int) ([]Label, error) {
	var out []Label
	i := 0
	for i < len(body) {
		eq := strings.Index(body[i:], "=")
		if eq < 0 {
			return nil, fmt.Errorf("line %d: malformed label pair in %q", lineNo, body)
		}
		name := body[i : i+eq]
		if !ValidMetricName(name) {
			return nil, fmt.Errorf("line %d: invalid label name %q", lineNo, name)
		}
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("line %d: label %q value is not quoted", lineNo, name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(body) {
				return nil, fmt.Errorf("line %d: unterminated label value for %q", lineNo, name)
			}
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return nil, fmt.Errorf("line %d: dangling escape in label %q", lineNo, name)
				}
				switch body[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("line %d: bad escape \\%c in label %q", lineNo, body[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		out = append(out, Label{Name: name, Value: val.String()})
		if i < len(body) {
			if body[i] != ',' {
				return nil, fmt.Errorf("line %d: expected ',' between labels, got %q", lineNo, body[i:])
			}
			i++
		}
	}
	return out, nil
}

func seriesID(s lintSample) string {
	ls := append([]Label(nil), s.labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	sb.WriteString(s.name)
	for _, l := range ls {
		sb.WriteString("|")
		sb.WriteString(l.Name)
		sb.WriteString("=")
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// nonLEKey groups histogram samples by their label set minus le.
func nonLEKey(labels []Label) string {
	ls := make([]Label, 0, len(labels))
	for _, l := range labels {
		if l.Name != "le" {
			ls = append(ls, l)
		}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	for _, l := range ls {
		sb.WriteString(l.Name)
		sb.WriteString("=")
		sb.WriteString(l.Value)
		sb.WriteString("|")
	}
	return sb.String()
}

// lintHistogram checks one histogram family's collected samples: per
// label set, bucket bounds strictly increase, cumulative counts never
// decrease, the series ends at le="+Inf", and _count matches it.
func lintHistogram(fam string, samples []lintSample) error {
	type group struct {
		buckets       []lintSample
		sum, count    *lintSample
		describedKeys string
	}
	groups := map[string]*group{}
	order := []string{}
	get := func(k string) *group {
		g := groups[k]
		if g == nil {
			g = &group{describedKeys: k}
			groups[k] = g
			order = append(order, k)
		}
		return g
	}
	for i := range samples {
		s := samples[i]
		k := nonLEKey(s.labels)
		g := get(k)
		switch s.name {
		case fam + "_bucket":
			g.buckets = append(g.buckets, s)
		case fam + "_sum":
			g.sum = &samples[i]
		case fam + "_count":
			g.count = &samples[i]
		}
	}
	for _, k := range order {
		g := groups[k]
		where := fam
		if k != "" {
			where = fmt.Sprintf("%s{%s}", fam, strings.TrimSuffix(k, "|"))
		}
		if len(g.buckets) == 0 {
			return fmt.Errorf("histogram %s has no _bucket samples", where)
		}
		prevLE := math.Inf(-1)
		prevCum := -1.0
		sawInf := false
		for i, b := range g.buckets {
			var leStr string
			for _, l := range b.labels {
				if l.Name == "le" {
					leStr = l.Value
				}
			}
			if leStr == "" {
				return fmt.Errorf("line %d: histogram %s _bucket without le label", b.line, where)
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("line %d: histogram %s has unparseable le %q", b.line, where, leStr)
			}
			if le <= prevLE {
				return fmt.Errorf("line %d: histogram %s bucket bounds not increasing (%v after %v)", b.line, where, le, prevLE)
			}
			if b.value < prevCum {
				return fmt.Errorf("line %d: histogram %s cumulative bucket count decreases (%v after %v)", b.line, where, b.value, prevCum)
			}
			prevLE, prevCum = le, b.value
			if leStr == "+Inf" {
				if i != len(g.buckets)-1 {
					return fmt.Errorf("line %d: histogram %s has buckets after le=\"+Inf\"", b.line, where)
				}
				sawInf = true
			}
		}
		if !sawInf {
			return fmt.Errorf("histogram %s missing terminal le=\"+Inf\" bucket", where)
		}
		if g.count == nil || g.sum == nil {
			return fmt.Errorf("histogram %s missing _sum or _count", where)
		}
		if g.count.value != g.buckets[len(g.buckets)-1].value {
			return fmt.Errorf("line %d: histogram %s _count (%v) != +Inf bucket (%v)",
				g.count.line, where, g.count.value, g.buckets[len(g.buckets)-1].value)
		}
	}
	return nil
}
