package obs_test

import (
	"sync"
	"testing"
	"time"

	"mlcg/internal/obs"
)

func TestHistogramBuckets(t *testing.T) {
	bounds := obs.HistUpperBounds()
	if len(bounds) != obs.HistBuckets-1 {
		t.Fatalf("HistUpperBounds len = %d, want %d", len(bounds), obs.HistBuckets-1)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != 2*bounds[i-1] {
			t.Fatalf("bounds not power-of-two spaced at %d: %v then %v", i, bounds[i-1], bounds[i])
		}
	}
	if bounds[0] != 1024e-9 {
		t.Fatalf("first bound = %v, want 1.024µs", bounds[0])
	}

	h := obs.NewHistogram("t")
	// One observation exactly on each finite bound lands in that bucket,
	// not the next one (le is inclusive).
	for i, ub := range bounds {
		h.Observe(time.Duration(ub * 1e9))
		s := h.Snapshot()
		if s.Buckets[i] == 0 {
			t.Fatalf("observation on bound %d (%v s) missed its bucket: %v", i, ub, s.Buckets)
		}
	}
	// Overflow and negative observations.
	h2 := obs.NewHistogram("t2")
	h2.Observe(time.Hour)
	h2.Observe(-time.Second)
	h2.Observe(0)
	s := h2.Snapshot()
	if s.Buckets[obs.HistBuckets-1] != 1 {
		t.Fatalf("1h observation not in +Inf bucket: %v", s.Buckets)
	}
	if s.Buckets[0] != 2 {
		t.Fatalf("zero/negative observations not clamped to first bucket: %v", s.Buckets)
	}
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Sum != time.Hour {
		t.Fatalf("sum = %v, want 1h (negative clamped to 0)", s.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := obs.NewHistogram("conc")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	wantSum := time.Duration(0)
	for w := 1; w <= workers; w++ {
		wantSum += time.Duration(w) * time.Microsecond * per
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramQuantileAndMerge(t *testing.T) {
	h := obs.NewHistogram("q")
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Microsecond) // ≤ 2048ns bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 > 4*time.Microsecond || p50 <= 0 {
		t.Fatalf("p50 = %v, want a low-microsecond bound", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 500*time.Millisecond {
		t.Fatalf("p99 = %v, want ≥ the ~1s bucket", p99)
	}
	if q := (obs.HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}

	var merged obs.HistSnapshot
	merged.Merge(s)
	merged.Merge(s)
	if merged.Count != 2*s.Count || merged.Sum != 2*s.Sum {
		t.Fatalf("merge: count %d sum %v, want doubled", merged.Count, merged.Sum)
	}
}

// TestHistogramNilDisabled locks in the disabled-path discipline: a nil
// histogram records nothing and never allocates, mirroring the counter
// path's nil-check-only cost.
func TestHistogramNilDisabled(t *testing.T) {
	var h *obs.Histogram
	h.Observe(time.Second) // must not panic
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatal("nil histogram reported observations")
	}
	if h.Name() != "" {
		t.Fatal("nil histogram has a name")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled (nil) Observe allocates: %v allocs/run, want 0", allocs)
	}
}

// TestHistogramRecordZeroAlloc gates the enabled record path: Observe must
// stay allocation-free so the serve hot path can record every request.
func TestHistogramRecordZeroAlloc(t *testing.T) {
	h := obs.NewHistogram("alloc")
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(17 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("enabled Observe allocates: %v allocs/run, want 0", allocs)
	}
}

// BenchmarkHistogramOverhead measures the record path both enabled and
// disabled (nil receiver). Compare with `go test -bench HistogramOverhead
// -benchmem ./internal/obs/`; mlcg-bench records the same measurement as
// the obs/hist_record_ns baseline row.
func BenchmarkHistogramOverhead(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		h := obs.NewHistogram("bench")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i) * time.Nanosecond)
		}
	})
	b.Run("enabled-parallel", func(b *testing.B) {
		h := obs.NewHistogram("bench")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h.Observe(42 * time.Microsecond)
			}
		})
	})
	b.Run("disabled", func(b *testing.B) {
		var h *obs.Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i) * time.Nanosecond)
		}
	})
}
