package obs_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mlcg/internal/obs"
	"mlcg/internal/par"
)

// startTrace installs a trace and guarantees it is uninstalled at test end,
// so a failing test cannot leak an active trace into the next one.
func startTrace(t *testing.T, name string) *obs.Trace {
	t.Helper()
	tr := obs.StartTrace(name)
	if tr == nil {
		t.Fatal("StartTrace returned nil (trace already active?)")
	}
	t.Cleanup(tr.Stop)
	return tr
}

func TestSpanTreeShape(t *testing.T) {
	tr := startTrace(t, "run")
	if !obs.Enabled() {
		t.Fatal("Enabled() = false with active trace")
	}
	lvl := obs.StartKernel("level 0")
	mapS := obs.StartKernel("map:hec")
	k := obs.StartKernel("classify")
	if got := obs.Ambient(); got != k {
		t.Fatalf("ambient = %q, want innermost kernel", got.Name())
	}
	k.Done()
	if got := obs.Ambient(); got != mapS {
		t.Fatalf("ambient after Done = %q, want parent", got.Name())
	}
	mapS.Done()
	lvl.Done()
	tr.Stop()
	if obs.Enabled() {
		t.Fatal("Enabled() = true after Stop")
	}

	root := tr.Root
	if root.Name() != "run" || len(root.Children()) != 1 {
		t.Fatalf("root %q has %d children, want 1", root.Name(), len(root.Children()))
	}
	l := root.Children()[0]
	if l.Name() != "level 0" || len(l.Children()) != 1 {
		t.Fatalf("level span %q children = %d", l.Name(), len(l.Children()))
	}
	m := l.Children()[0]
	if m.Name() != "map:hec" || len(m.Children()) != 1 || m.Children()[0].Name() != "classify" {
		t.Fatalf("bad phase/kernel nesting under %q", m.Name())
	}
	for _, s := range []*obs.Span{root, l, m, m.Children()[0]} {
		if s.Wall() <= 0 {
			t.Fatalf("span %q has no wall time", s.Name())
		}
	}
}

func TestStopClosesOpenSpans(t *testing.T) {
	tr := startTrace(t, "run")
	obs.StartKernel("level 0")
	obs.StartKernel("map:hem")
	tr.Stop() // both still open
	if obs.Enabled() {
		t.Fatal("trace still enabled after Stop with open spans")
	}
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		if s.Wall() <= 0 {
			t.Errorf("span %q left open by Stop", s.Name())
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(tr.Root)
	// A second trace must be installable after Stop.
	tr2 := obs.StartTrace("run2")
	if tr2 == nil {
		t.Fatal("cannot start a new trace after Stop")
	}
	tr2.Stop()
}

func TestSingleActiveTracePerGoroutine(t *testing.T) {
	tr := startTrace(t, "run")
	if tr2 := obs.StartTrace("second"); tr2 != nil {
		tr2.Stop()
		t.Fatal("second StartTrace on the same goroutine succeeded")
	}
	tr.Stop()
}

// TestConcurrentTraces is the regression test for the process-global
// ambient/activeTrace bug: two goroutines each run their own traced span
// stack concurrently, and neither clobbers the other — every span lands in
// its own trace, counters stay separate, and both trees remain laminar.
// Run under -race this also exercises the registry for data races.
func TestConcurrentTraces(t *testing.T) {
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := []string{"alpha", "beta"}[g]
			tr := obs.StartTrace(name)
			if tr == nil {
				errs <- fmt.Errorf("goroutine %d: StartTrace returned nil", g)
				return
			}
			for i := 0; i < rounds; i++ {
				lvl := obs.StartKernel("level")
				k := obs.StartKernel("kernel")
				obs.Add(obs.CtrCASRetry, int64(g+1))
				if got := obs.Ambient(); got != k {
					errs <- fmt.Errorf("goroutine %d: ambient = %q, want own kernel", g, got.Name())
					return
				}
				k.Done()
				lvl.Done()
			}
			tr.Stop()
			if tr.Root.Name() != name {
				errs <- fmt.Errorf("goroutine %d: root = %q", g, tr.Root.Name())
				return
			}
			if got := len(tr.Root.Children()); got != rounds {
				errs <- fmt.Errorf("goroutine %d: %d level spans, want %d", g, got, rounds)
				return
			}
			if got := tr.Root.Counters()["cas_retries"]; got != int64(rounds*(g+1)) {
				errs <- fmt.Errorf("goroutine %d: cas_retries = %d, want %d", g, got, rounds*(g+1))
				return
			}
			var buf bytes.Buffer
			if err := tr.WriteTrace(&buf); err != nil {
				errs <- err
				return
			}
			if err := obs.CheckTrace(bytes.NewReader(buf.Bytes()), obs.CheckOptions{}); err != nil {
				errs <- fmt.Errorf("goroutine %d: non-laminar trace: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestAttachContext covers the server-shaped lifecycle: a trace created on
// one goroutine, carried through a context, and attached by the goroutine
// that does the work.
func TestAttachContext(t *testing.T) {
	tr := obs.NewTrace("request")
	ctx := obs.NewContext(context.Background(), tr)
	if got := obs.TraceFromContext(ctx); got != tr {
		t.Fatal("TraceFromContext lost the trace")
	}
	if obs.TraceFromContext(context.Background()) != nil {
		t.Fatal("TraceFromContext invented a trace")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		detach := obs.TraceFromContext(ctx).Attach()
		k := obs.StartKernel("work")
		obs.Add(obs.CtrCommit, 3)
		k.Done()
		detach()
		if obs.Enabled() {
			t.Error("goroutine still traced after detach")
		}
	}()
	<-done
	tr.Stop()
	if got := tr.Root.Counters()["commits"]; got != 3 {
		t.Fatalf("commits = %d, want 3", got)
	}
	// Attach restores a previous binding rather than dropping it.
	outer := obs.StartTrace("outer")
	detach := tr.Attach()
	if obs.Ambient() != nil {
		t.Fatal("stopped trace should expose no ambient span")
	}
	detach()
	if !obs.Enabled() {
		t.Fatal("detach did not restore the outer trace binding")
	}
	outer.Stop()
	// Nil-safety of the handle API.
	var nilTr *obs.Trace
	nilTr.Attach()()
	if obs.NewContext(context.Background(), nil) != context.Background() {
		t.Fatal("NewContext(nil) should return ctx unchanged")
	}
}

// TestConcurrentWorkers exercises the reporting surface the way
// internal/par uses it: many workers concurrently creating child spans,
// adding busy time, and bumping counters on a shared ambient span. Run
// under -race this is the span-nesting race test of the issue.
func TestConcurrentWorkers(t *testing.T) {
	tr := startTrace(t, "run")
	kern := obs.StartKernel("scatter")
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Workers bind themselves to the span's trace, exactly as
			// par's obsWorker does, so package-level Add resolves here.
			defer kern.Trace().Attach()()
			for i := 0; i < 100; i++ {
				kern.BusyAdd(w, time.Microsecond)
				kern.Add(obs.CtrCASRetry, 1)
				obs.Add(obs.CtrHashProbe, 2)
			}
			c := kern.Child("worker-sub")
			c.End()
		}(w)
	}
	wg.Wait()
	kern.Done()
	tr.Stop()

	busy := kern.Busy()
	if len(busy) != workers {
		t.Fatalf("busy slots = %d, want %d", len(busy), workers)
	}
	for w, b := range busy {
		if b != 100*time.Microsecond {
			t.Fatalf("worker %d busy = %v, want 100µs", w, b)
		}
	}
	if imb := kern.Imbalance(); imb < 0.99 || imb > 1.01 {
		t.Fatalf("uniform busy imbalance = %v, want ~1.0", imb)
	}
	if got := len(kern.Children()); got != workers {
		t.Fatalf("child spans = %d, want %d", got, workers)
	}
	ctrs := tr.Root.Counters()
	if ctrs["cas_retries"] != workers*100 {
		t.Fatalf("cas_retries = %d, want %d", ctrs["cas_retries"], workers*100)
	}
	if ctrs["hash_probes"] != workers*200 {
		t.Fatalf("hash_probes = %d, want %d", ctrs["hash_probes"], workers*200)
	}
}

// TestForRangesSpanNesting drives real par workers — ForRanges over a
// balanced partition, plus a static For — inside nested kernels and checks
// that each worker's busy time lands on the span that was ambient when the
// loop ran, with no cross-talk between sibling kernels. Run under -race
// this covers concurrent BusyAdd/Add against the ambient stack.
func TestForRangesSpanNesting(t *testing.T) {
	tr := startTrace(t, "run")
	const n, p = 1 << 14, 4
	prefix := make([]int64, n+1)
	for i := 0; i <= n; i++ {
		prefix[i] = int64(i)
	}
	bounds := par.BalancedRanges(nil, prefix, p)

	sink := make([]int64, n)
	scatter := obs.StartKernel("scatter")
	par.ForRanges(bounds, func(w, lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			sink[i] = int64(i)
			local++
		}
		obs.Add(obs.CtrCommit, local)
	})
	scatter.Done()

	count := obs.StartKernel("count")
	par.For(n, p, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			sink[i]++
		}
	})
	count.Done()
	tr.Stop()

	for _, s := range []*obs.Span{scatter, count} {
		busy := s.Busy()
		if len(busy) == 0 {
			t.Fatalf("span %q recorded no worker busy time", s.Name())
		}
		var sum time.Duration
		for _, b := range busy {
			sum += b
		}
		if sum <= 0 {
			t.Fatalf("span %q busy sum = %v", s.Name(), sum)
		}
	}
	// Counter flushed inside ForRanges lands on the scatter span only.
	if got := scatter.Counters()["commits"]; got != n {
		t.Fatalf("scatter commits = %d, want %d", got, n)
	}
	if got := count.Counters()["commits"]; got != 0 {
		t.Fatalf("count span stole sibling's counter: commits = %d", got)
	}
}

// TestCounterAggregation checks that subtree totals roll up across levels:
// run-span totals equal the sum over level spans, and sibling levels do not
// bleed into each other.
func TestCounterAggregation(t *testing.T) {
	tr := startTrace(t, "run")
	perLevel := []int64{10, 20, 30}
	for i, n := range perLevel {
		lvl := obs.StartKernel("level")
		mapS := obs.StartKernel("map:hec")
		obs.Add(obs.CtrCASRetry, n)
		obs.Add(obs.CtrRadixPass, 1)
		mapS.Done()
		if got := lvl.Counters()["cas_retries"]; got != n {
			t.Fatalf("level %d cas_retries = %d, want %d", i, got, n)
		}
		lvl.Done()
	}
	tr.Stop()
	totals := tr.Root.Counters()
	if totals["cas_retries"] != 60 {
		t.Fatalf("run cas_retries = %d, want 60", totals["cas_retries"])
	}
	if totals["radix_passes"] != int64(len(perLevel)) {
		t.Fatalf("run radix_passes = %d, want %d", totals["radix_passes"], len(perLevel))
	}
	dense := tr.Root.CounterTotals()
	if dense[obs.CtrCASRetry] != 60 {
		t.Fatalf("dense cas_retries = %d, want 60", dense[obs.CtrCASRetry])
	}
	// Zero counters are omitted from the map view but present in the dense
	// view.
	if _, ok := totals["suitor_spins"]; ok {
		t.Fatal("zero counter present in Counters() map")
	}
	if dense[obs.CtrSuitorSpin] != 0 {
		t.Fatal("dense view lost a zero counter")
	}
}

// TestObsDisabledZeroAlloc proves the disabled path allocates nothing: with
// no active trace, every hot-path entry point must be a pointer load plus a
// nil check.
func TestObsDisabledZeroAlloc(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("precondition: tracing must be disabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s := obs.StartKernel("kernel")
		s.BusyAdd(3, time.Microsecond)
		s.Add(obs.CtrCASRetry, 7)
		obs.Add(obs.CtrHashProbe, 9)
		c := s.Child("sub")
		c.End()
		c.Done()
		s.Done()
		_ = obs.Ambient()
		_ = obs.Enabled()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates: %v allocs/run, want 0", allocs)
	}
}

func TestNilSafety(t *testing.T) {
	var s *obs.Span
	s.Done()
	s.End()
	s.Add(obs.CtrCASRetry, 1)
	s.BusyAdd(0, time.Second)
	if s.Wall() != 0 || s.Imbalance() != 0 || s.Name() != "" {
		t.Fatal("nil span reported nonzero state")
	}
	if s.Child("x") != nil || s.Busy() != nil || s.Children() != nil || s.Counters() != nil {
		t.Fatal("nil span produced non-nil derived values")
	}
	var tr *obs.Trace
	tr.Stop()
}

func TestExportersAndChecker(t *testing.T) {
	tr := startTrace(t, "coarsen gen")
	for i := 0; i < 2; i++ {
		lvl := obs.StartKernel("level 0")
		mapS := obs.StartKernel("map:hec")
		k := obs.StartKernel("classify")
		k.BusyAdd(0, time.Millisecond)
		k.BusyAdd(1, 2*time.Millisecond)
		obs.Add(obs.CtrCASRetry, 5)
		k.Done()
		mapS.Done()
		b := obs.StartKernel("build:hash")
		obs.Add(obs.CtrHashProbe, 11)
		b.Done()
		lvl.Done()
	}
	tr.Stop()

	var trace bytes.Buffer
	if err := tr.WriteTrace(&trace); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := obs.CheckTrace(bytes.NewReader(trace.Bytes()), obs.CheckOptions{RequireCoarsen: true}); err != nil {
		t.Fatalf("CheckTrace rejected a valid trace: %v", err)
	}
	got := trace.String()
	for _, want := range []string{`"ph":"X"`, "cas_retries", "hash_probes", "busy_ns", "imbalance", "map:hec", "build:hash"} {
		if !strings.Contains(got, want) {
			t.Errorf("trace JSON missing %q", want)
		}
	}

	var metrics bytes.Buffer
	if err := tr.WriteMetrics(&metrics); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	dump := metrics.String()
	for _, want := range []string{"== spans ==", "== counters (whole trace) ==", "cas_retries", "suitor_spins", "map:hec", "imb", "== kernels (by total busy) =="} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

func TestCheckerRejectsBadTraces(t *testing.T) {
	cases := []struct {
		name, json string
	}{
		{"empty", `{"traceEvents":[]}`},
		{"badphase", `{"traceEvents":[{"name":"a","ph":"B","ts":0,"dur":1,"pid":1,"tid":1}]}`},
		{"noname", `{"traceEvents":[{"name":"","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`},
		{"negative", `{"traceEvents":[{"name":"a","ph":"X","ts":-5,"dur":1,"pid":1,"tid":1}]}`},
		{"overlap", `{"traceEvents":[
			{"name":"a","ph":"X","ts":0,"dur":100,"pid":1,"tid":1},
			{"name":"b","ph":"X","ts":50,"dur":100,"pid":1,"tid":1}]}`},
		{"notjson", `{"traceEvents":`},
	}
	for _, c := range cases {
		if err := obs.CheckTrace(strings.NewReader(c.json), obs.CheckOptions{}); err == nil {
			t.Errorf("%s: checker accepted invalid trace", c.name)
		}
	}
	// RequireCoarsen demands level/map/build coverage.
	flat := `{"traceEvents":[{"name":"run","ph":"X","ts":0,"dur":10,"pid":1,"tid":1}]}`
	if err := obs.CheckTrace(strings.NewReader(flat), obs.CheckOptions{RequireCoarsen: true}); err == nil {
		t.Error("RequireCoarsen accepted a trace with no level spans")
	}
}
