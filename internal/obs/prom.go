package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) writer. The serve daemon's
// /metrics endpoint and any other exporter build their output through
// PromWriter so every family carries # HELP and # TYPE lines, names are
// validated, histogram series are emitted in the cumulative
// _bucket/_sum/_count form, and duplicate families or series are caught at
// write time instead of by the scraper.

// ValidMetricName reports whether s is a legal exposition metric name.
// The accepted charset is deliberately stricter than Prometheus's grammar:
// colons are reserved for recording rules and never belong in exporter
// output, so they are rejected here and scrubbed by SanitizeMetricName.
func ValidMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// SanitizeMetricName maps an arbitrary key (obs counter names are clean,
// but span-derived keys can carry ':', '-', spaces, ...) to a valid metric
// name: every illegal rune becomes '_', a leading digit gets a '_' prefix,
// and an empty input becomes "_". The mapping is not injective — use
// SanitizeKeys when distinct inputs must stay distinct.
func SanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// SanitizeKeys sanitizes every key and resolves post-sanitization
// collisions deterministically: keys are processed in sorted order, and
// the second and later keys that map onto an already-taken name get a
// "_2", "_3", ... suffix. The returned map is raw key → unique valid name.
func SanitizeKeys(keys []string) map[string]string {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	out := make(map[string]string, len(sorted))
	taken := make(map[string]bool, len(sorted))
	for _, k := range sorted {
		name := SanitizeMetricName(k)
		if taken[name] {
			for n := 2; ; n++ {
				cand := fmt.Sprintf("%s_%d", name, n)
				if !taken[cand] {
					name = cand
					break
				}
			}
		}
		taken[name] = true
		out[k] = name
	}
	return out
}

// Label is one exposition label pair.
type Label struct {
	Name, Value string
}

// PromWriter emits one exposition document. Families must be opened with
// Family before their samples; the first error sticks and every later
// call is a no-op, so call sites can chain writes and check Err once.
type PromWriter struct {
	w        io.Writer
	err      error
	families map[string]string // family name -> type
	cur      string            // family currently being written
	curType  string
	series   map[string]bool // emitted "name{labels}" identities
}

// NewPromWriter starts an exposition document on w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, families: map[string]string{}, series: map[string]bool{}}
}

// Err returns the first error encountered (bad name, duplicate family or
// series, underlying write failure).
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("prom: "+format, args...)
	}
}

// Family opens a metric family: writes its # HELP and # TYPE lines and
// makes it current for the Sample/Histogram calls that follow. typ must be
// counter, gauge, histogram, or untyped; counter family names must end in
// _total. Reopening a family is an error (the exposition format requires
// all series of a family to be contiguous).
func (p *PromWriter) Family(name, help, typ string) {
	if p.err != nil {
		return
	}
	if !ValidMetricName(name) {
		p.fail("invalid metric name %q", name)
		return
	}
	switch typ {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			p.fail("counter family %q must end in _total", name)
			return
		}
	case "gauge", "histogram", "untyped":
	default:
		p.fail("family %q has unsupported type %q", name, typ)
		return
	}
	if _, dup := p.families[name]; dup {
		p.fail("family %q opened twice", name)
		return
	}
	p.families[name] = typ
	p.cur, p.curType = name, typ
	help = strings.ReplaceAll(help, `\`, `\\`)
	help = strings.ReplaceAll(help, "\n", `\n`)
	_, err := fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	if err != nil {
		p.err = err
	}
}

// Sample writes one sample of the current counter/gauge/untyped family.
// labels may be nil.
func (p *PromWriter) Sample(labels []Label, v float64) {
	if p.err != nil {
		return
	}
	if p.cur == "" {
		p.fail("Sample before Family")
		return
	}
	if p.curType == "histogram" {
		p.fail("family %q is a histogram; use Histogram", p.cur)
		return
	}
	p.writeSample(p.cur, labels, v)
}

// Histogram writes one labeled series of the current histogram family in
// cumulative form: one _bucket sample per bound (terminated by le="+Inf"),
// then _sum (seconds) and _count.
func (p *PromWriter) Histogram(labels []Label, snap HistSnapshot) {
	if p.err != nil {
		return
	}
	if p.cur == "" || p.curType != "histogram" {
		p.fail("Histogram outside a histogram family (current %q type %q)", p.cur, p.curType)
		return
	}
	bounds := HistUpperBounds()
	var cum int64
	le := make([]Label, len(labels)+1)
	copy(le, labels)
	for i, ub := range bounds {
		cum += snap.Buckets[i]
		le[len(labels)] = Label{"le", strconv.FormatFloat(ub, 'g', -1, 64)}
		p.writeSample(p.cur+"_bucket", le, float64(cum))
	}
	le[len(labels)] = Label{"le", "+Inf"}
	p.writeSample(p.cur+"_bucket", le, float64(snap.Count))
	p.writeSample(p.cur+"_sum", labels, snap.Sum.Seconds())
	p.writeSample(p.cur+"_count", labels, float64(snap.Count))
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func (p *PromWriter) writeSample(name string, labels []Label, v float64) {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if !ValidMetricName(l.Name) || l.Name == "__name__" {
				p.fail("series %s has invalid label name %q", name, l.Name)
				return
			}
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabelValue(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	id := sb.String()
	if p.series[id] {
		p.fail("duplicate series %s", id)
		return
	}
	p.series[id] = true
	if _, err := fmt.Fprintf(p.w, "%s %s\n", id, strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
		p.err = err
	}
}
