package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Counter enumerates the named hot-path event counters. The set is a
// small dense enum so recording is an indexed atomic add, not a map
// lookup.
type Counter uint8

const (
	// CtrCASRetry counts failed compare-and-swap attempts in the
	// atomic-min reservation rounds (HEC/HEM/two-hop) and the canonical
	// renumber scatter — the direct measure of reservation contention.
	CtrCASRetry Counter = iota
	// CtrSuitorSpin counts spin iterations on the per-vertex locks of the
	// parallel Suitor proposal loop.
	CtrSuitorSpin
	// CtrHashProbe counts slot probes of the epoch-stamped dedup hash
	// tables (one per insert plus one per collision step).
	CtrHashProbe
	// CtrHashCollision counts probe steps beyond the home slot — the
	// open-addressing displacement the paper's hash-vs-sort tradeoff
	// hinges on.
	CtrHashCollision
	// CtrRadixPass counts executed digit passes of the parallel LSD radix
	// sort (skipped constant digits are not counted).
	CtrRadixPass
	// CtrWSBytesAlloc counts bytes freshly allocated by the construction
	// workspace arena.
	CtrWSBytesAlloc
	// CtrWSBytesReused counts bytes served by the workspace arena from
	// retained buffers without allocating.
	CtrWSBytesReused
	// CtrReserve counts reservation operations issued in deterministic
	// reservation rounds.
	CtrReserve
	// CtrCommit counts reservation operations that committed.
	CtrCommit

	// The construct_policy counters record the adaptive construction
	// policy's per-level decisions: one CtrAuto<Builder> increment per
	// level dispatched to that builder, and CtrAutoProbe increments per
	// timed probe build. Together they make the policy's behavior visible
	// in traces, metrics dumps, and bench baselines without new plumbing.
	CtrAutoSort
	CtrAutoHash
	CtrAutoSegSort
	CtrAutoSpGEMM
	CtrAutoGlobalSort
	CtrAutoProbe

	// CtrMIS2FastRounds counts selection rounds of the worklist-driven
	// distance-2 MIS kernel (mis2fast); CtrMIS2FastFrontier accumulates the
	// per-round worklist sizes (recompute frontier + newly-in + newly-out
	// vertices), the direct measure of how much work the frontier scheme
	// avoids versus full resweeps.
	CtrMIS2FastRounds
	CtrMIS2FastFrontier

	// The embed counters instrument the multilevel SGD trainer
	// (internal/embed): CtrEmbedSGDSteps counts positive-sample SGD steps
	// (one per training edge per epoch), CtrEmbedNegatives counts drawn
	// negative samples, and CtrEmbedProjRows counts embedding rows copied
	// by hierarchy projection (coarse level -> fine level).
	CtrEmbedSGDSteps
	CtrEmbedNegatives
	CtrEmbedProjRows

	numCounters
)

// counterNames maps Counter values to their stable exported names (used by
// the metrics dump, the JSON trace args, and LevelStats.Counters keys).
var counterNames = [numCounters]string{
	CtrCASRetry:      "cas_retries",
	CtrSuitorSpin:    "suitor_spins",
	CtrHashProbe:     "hash_probes",
	CtrHashCollision: "hash_collisions",
	CtrRadixPass:     "radix_passes",
	CtrWSBytesAlloc:  "workspace_bytes_alloc",
	CtrWSBytesReused: "workspace_bytes_reused",
	CtrReserve:       "reservations",
	CtrCommit:        "commits",

	CtrAutoSort:       "construct_auto_sort",
	CtrAutoHash:       "construct_auto_hash",
	CtrAutoSegSort:    "construct_auto_segsort",
	CtrAutoSpGEMM:     "construct_auto_spgemm",
	CtrAutoGlobalSort: "construct_auto_globalsort",
	CtrAutoProbe:      "construct_auto_probes",

	CtrMIS2FastRounds:   "mis2fast_rounds",
	CtrMIS2FastFrontier: "mis2fast_frontier",

	CtrEmbedSGDSteps:  "embed_sgd_steps",
	CtrEmbedNegatives: "embed_negatives",
	CtrEmbedProjRows:  "embed_proj_rows",
}

// String returns the stable metric name of c.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown"
}

// CounterNames lists every counter's stable name in enum order.
func CounterNames() []string {
	out := make([]string, numCounters)
	copy(out, counterNames[:])
	return out
}

// maxBusySlots bounds the per-span busy-time array. Worker ids beyond the
// bound fold into the last slot; with the library's GOMAXPROCS-capped
// worker counts this is never hit on real machines.
const maxBusySlots = 64

// Span is one node of the trace tree. All methods are safe on a nil
// receiver (the disabled path) and return promptly.
type Span struct {
	name   string
	parent *Span
	trace  *Trace

	start time.Duration // offset from trace epoch
	dur   int64         // nanoseconds, 0 while open (atomic; set once by End)

	mu       sync.Mutex
	children []*Span

	// busy[w] accumulates worker w's busy nanoseconds across every
	// parallel kernel invocation that ran while this span was ambient.
	busy [maxBusySlots]int64
	// workers is the high-water worker count observed (atomic max).
	workers int32

	ctr [numCounters]int64
}

// Trace owns one trace tree. Obtain with StartTrace (create + bind the
// calling goroutine) or NewTrace (create unbound, for handing to another
// goroutine), finish with Stop, then export with WriteTrace/WriteMetrics.
//
// A trace is *goroutine-scoped*, not process-global: the package-level
// helpers (StartKernel, Add, Ambient) resolve to the trace bound to the
// calling goroutine, so any number of traced runs can proceed concurrently
// — each run's span tree is built only from its own goroutine (plus the
// worker goroutines internal/par binds for the duration of each parallel
// loop) and never sees a sibling run's spans or counters.
type Trace struct {
	Root  *Span
	epoch time.Time

	// cur is the innermost open span — the top of the ambient stack. Only
	// the bound orchestrating goroutine pushes/pops it; worker goroutines
	// read it through Ambient while the orchestrator is parked in the
	// parallel runtime, hence the atomic.
	cur atomic.Pointer[Span]

	// owner is the goroutine StartTrace bound (0 for NewTrace traces);
	// Stop uses it to undo the binding from any goroutine.
	owner   uint64
	stopped atomic.Bool
}

// Goroutine-to-trace registry. The disabled fast path is one atomic load
// of activeBinds: when no goroutine anywhere is bound to a trace, every
// hot-path entry point returns after that single load. Only when at least
// one trace is live does a call resolve the calling goroutine's id and
// consult its registry shard.
const regShards = 64

type traceShard struct {
	mu sync.RWMutex
	m  map[uint64]*Trace
}

var (
	registry    [regShards]traceShard
	activeBinds atomic.Int64
)

// goid returns the current goroutine's id, parsed from the first line of
// runtime.Stack ("goroutine N [running]:"). The tiny buffer keeps the cost
// to a shallow stack header write; goroutine ids are never reused.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for i := prefix; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// bindG points goroutine id at t, returning the previous binding (nil if
// none) so callers can restore it.
func bindG(id uint64, t *Trace) *Trace {
	sh := &registry[id%regShards]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[uint64]*Trace)
	}
	prev := sh.m[id]
	sh.m[id] = t
	sh.mu.Unlock()
	if prev == nil {
		activeBinds.Add(1)
	}
	return prev
}

// unbindG restores goroutine id's binding to prev (nil removes it).
func unbindG(id uint64, prev *Trace) {
	sh := &registry[id%regShards]
	sh.mu.Lock()
	if prev == nil {
		delete(sh.m, id)
	} else {
		sh.m[id] = prev
	}
	sh.mu.Unlock()
	if prev == nil {
		activeBinds.Add(-1)
	}
}

// curTrace returns the trace bound to the calling goroutine, or nil. The
// activeBinds check is the entire cost when tracing is disabled anywhere
// in the process.
func curTrace() *Trace {
	if activeBinds.Load() == 0 {
		return nil
	}
	id := goid()
	sh := &registry[id%regShards]
	sh.mu.RLock()
	t := sh.m[id]
	sh.mu.RUnlock()
	return t
}

// Enabled reports whether a trace is bound to the calling goroutine.
func Enabled() bool { return curTrace() != nil }

// Ambient returns the innermost open span of the calling goroutine's
// trace, or nil when the goroutine is not tracing.
func Ambient() *Span {
	t := curTrace()
	if t == nil {
		return nil
	}
	return t.cur.Load()
}

// NewTrace creates a trace with an open root span without binding it to
// any goroutine. Use Attach (directly or via a context handed to
// Coarsener.RunCtx) to make the package-level helpers resolve to it on the
// goroutine that performs the traced work.
func NewTrace(name string) *Trace {
	t := &Trace{epoch: time.Now()}
	t.Root = &Span{name: name, trace: t}
	t.cur.Store(t.Root)
	return t
}

// StartTrace creates a new trace whose root span has the given name, binds
// it to the calling goroutine, and returns it. Returns nil — this
// goroutine's tracing stays disabled — if the goroutine is already bound
// to a trace. Traces on *other* goroutines are independent: concurrent
// runs may each hold their own.
func StartTrace(name string) *Trace {
	id := goid()
	sh := &registry[id%regShards]
	sh.mu.RLock()
	bound := sh.m[id]
	sh.mu.RUnlock()
	if bound != nil {
		return nil
	}
	t := NewTrace(name)
	t.owner = id
	bindG(id, t)
	return t
}

// Attach binds the calling goroutine to the trace so StartKernel/Add/
// Ambient resolve to it, and returns the function that undoes the binding
// (restoring whatever trace, if any, was bound before). detach must be
// called on the same goroutine. Safe on nil (no-op).
func (t *Trace) Attach() (detach func()) {
	if t == nil {
		return func() {}
	}
	id := goid()
	prev := bindG(id, t)
	return func() { unbindG(id, prev) }
}

// Stop ends every still-open span (innermost first) and, when the trace
// was bound by StartTrace, unbinds its owner goroutine. Safe on a nil
// receiver and idempotent; bindings made with Attach are released by their
// own detach functions, not by Stop.
func (t *Trace) Stop() {
	if t == nil || !t.stopped.CompareAndSwap(false, true) {
		return
	}
	for s := t.cur.Load(); s != nil; s = s.parent {
		s.End()
	}
	t.cur.Store(nil)
	if t.owner != 0 {
		unbindG(t.owner, nil)
	}
}

// now returns the offset from the trace epoch.
func (t *Trace) now() time.Duration { return time.Since(t.epoch) }

// StartKernel opens a child of the ambient span, makes it the new ambient
// span, and returns it. Returns nil instantly when the calling goroutine
// is not tracing. Must be called from the orchestrating goroutine; the
// matching Done restores the parent as ambient.
func StartKernel(name string) *Span {
	t := curTrace()
	if t == nil {
		return nil
	}
	a := t.cur.Load()
	if a == nil {
		return nil // trace already stopped
	}
	s := a.Child(name)
	t.cur.Store(s)
	return s
}

// Done ends the span and restores its parent as the ambient span. The
// inverse of StartKernel; safe on nil.
func (s *Span) Done() {
	if s == nil {
		return
	}
	s.End()
	if s.trace.cur.Load() == s {
		s.trace.cur.Store(s.parent)
	}
}

// Trace returns the trace the span belongs to (nil on nil).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.trace
}

// Child creates and opens a child span without touching the ambient
// stack. Safe to call concurrently from worker goroutines (used by tests
// and by parallel phases that want per-worker sub-spans); safe on nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, parent: s, trace: s.trace, start: s.trace.now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its wall duration. Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := int64(s.trace.now() - s.start)
	if d < 1 {
		d = 1 // keep zero-width spans visible and mark the span closed
	}
	atomic.CompareAndSwapInt64(&s.dur, 0, d)
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Add increments counter c by n on this span. Safe on nil and from any
// goroutine. Zero deltas are dropped without touching memory.
func (s *Span) Add(c Counter, n int64) {
	if s == nil || n == 0 {
		return
	}
	atomic.AddInt64(&s.ctr[c], n)
}

// Add increments counter c on the calling goroutine's ambient span — the
// form hot paths use after batching counts locally. One atomic load + nil
// check when tracing is disabled.
func Add(c Counter, n int64) { Ambient().Add(c, n) }

// BusyAdd accumulates d of busy time for worker w on this span. Safe on
// nil and from any goroutine; worker ids beyond the slot bound fold into
// the last slot.
func (s *Span) BusyAdd(w int, d time.Duration) {
	if s == nil {
		return
	}
	if w >= maxBusySlots {
		w = maxBusySlots - 1
	}
	atomic.AddInt64(&s.busy[w], int64(d))
	for {
		cur := atomic.LoadInt32(&s.workers)
		if int32(w) < cur {
			break
		}
		if atomic.CompareAndSwapInt32(&s.workers, cur, int32(w)+1) {
			break
		}
	}
}

// Wall returns the span's wall-clock duration (0 while open or on nil).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(atomic.LoadInt64(&s.dur))
}

// Busy returns the per-worker busy times recorded directly on this span
// (not descendants), trimmed to the observed worker count.
func (s *Span) Busy() []time.Duration {
	if s == nil {
		return nil
	}
	w := int(atomic.LoadInt32(&s.workers))
	out := make([]time.Duration, w)
	for i := 0; i < w; i++ {
		out[i] = time.Duration(atomic.LoadInt64(&s.busy[i]))
	}
	return out
}

// Imbalance returns the load-imbalance factor p·max(busy)/Σbusy of the
// busy time recorded directly on this span: 1.0 is perfect balance, p is
// one worker doing everything. Returns 0 when fewer than two workers
// reported.
func (s *Span) Imbalance() float64 {
	busy := s.Busy()
	if len(busy) < 2 {
		return 0
	}
	var max, sum time.Duration
	for _, b := range busy {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(len(busy)) * float64(max) / float64(sum)
}

// Children returns a snapshot of the span's child spans in creation
// order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	return out
}

// Counters returns the subtree-aggregated counter totals by stable name,
// omitting zero counters. Nil-safe (returns nil).
func (s *Span) Counters() map[string]int64 {
	if s == nil {
		return nil
	}
	var totals [numCounters]int64
	s.addTotals(&totals)
	out := make(map[string]int64)
	for c, v := range totals {
		if v != 0 {
			out[counterNames[c]] = v
		}
	}
	return out
}

// CounterTotals returns the subtree-aggregated totals as a dense array
// indexed by Counter (exporter form; includes zeros).
func (s *Span) CounterTotals() []int64 {
	totals := make([]int64, numCounters)
	if s != nil {
		var t [numCounters]int64
		s.addTotals(&t)
		copy(totals, t[:])
	}
	return totals
}

func (s *Span) addTotals(t *[numCounters]int64) {
	for c := range s.ctr {
		t[c] += atomic.LoadInt64(&s.ctr[c])
	}
	for _, ch := range s.Children() {
		ch.addTotals(t)
	}
}

// ownCounters returns the counters recorded directly on this span.
func (s *Span) ownCounters() [numCounters]int64 {
	var out [numCounters]int64
	for c := range s.ctr {
		out[c] = atomic.LoadInt64(&s.ctr[c])
	}
	return out
}
