package obs

import "context"

// Context carriage for traces. A server (or any orchestrator that hops
// goroutines between accepting a request and executing it) creates a trace
// with NewTrace, stores it in the request context with NewContext, and the
// goroutine that ends up doing the work attaches it for the duration —
// either explicitly (TraceFromContext + Attach) or implicitly through
// coarsen.(*Coarsener).RunCtx, which attaches a context-carried trace
// around the multilevel loop. Because traces are goroutine-scoped, any
// number of requests can be traced concurrently without sharing state.

type ctxKey struct{}

// NewContext returns a copy of ctx carrying the trace. A nil trace returns
// ctx unchanged.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFromContext returns the trace carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
