package obs

import "context"

// Context carriage for traces. A server (or any orchestrator that hops
// goroutines between accepting a request and executing it) creates a trace
// with NewTrace, stores it in the request context with NewContext, and the
// goroutine that ends up doing the work attaches it for the duration —
// either explicitly (TraceFromContext + Attach) or implicitly through
// coarsen.(*Coarsener).RunCtx, which attaches a context-carried trace
// around the multilevel loop. Because traces are goroutine-scoped, any
// number of requests can be traced concurrently without sharing state.

type ctxKey struct{}

// reqIDKey carries the request id alongside the trace. The id is assigned
// at the HTTP boundary and rides the same context the trace does, so the
// structured log line a request emits and the spans/counters it records
// can be joined after the fact.
type reqIDKey struct{}

// ContextWithRequestID returns a copy of ctx carrying the request id.
// An empty id returns ctx unchanged.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFromContext returns the request id carried by ctx, or "".
func RequestIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// NewContext returns a copy of ctx carrying the trace. A nil trace returns
// ctx unchanged.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFromContext returns the trace carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
