package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// CheckOptions configures trace validation.
type CheckOptions struct {
	// RequireCoarsen additionally demands the span names a multilevel
	// coarsening run must produce: a run root, at least one "level" span,
	// and a "map:"/"build:" phase pair under every level.
	RequireCoarsen bool
}

// CheckTrace validates a Chrome trace_event JSON stream produced by
// WriteTrace: well-formed JSON, only complete events, sane timestamps, and
// proper nesting (events on one thread form a laminar family — any two
// either disjoint or contained). Returns a descriptive error on the first
// violation.
func CheckTrace(r io.Reader, opt CheckOptions) error {
	var tf traceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tf); err != nil {
		return fmt.Errorf("trace: bad JSON: %w", err)
	}
	evs := tf.TraceEvents
	if len(evs) == 0 {
		return fmt.Errorf("trace: no events")
	}
	for i, ev := range evs {
		if ev.Name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		if ev.Ph != "X" {
			return fmt.Errorf("trace: event %d (%s) has phase %q, want complete event \"X\"", i, ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			return fmt.Errorf("trace: event %d (%s) has negative time (ts=%v dur=%v)", i, ev.Name, ev.Ts, ev.Dur)
		}
	}

	// Nesting: sort by (start, -end) and sweep with a stack of end times.
	// Two spans on the same tid must be disjoint or nested; a partial
	// overlap means the tree was exported wrong. A small tolerance absorbs
	// microsecond rounding in the export.
	const eps = 1.5 // µs
	type iv struct {
		name       string
		start, end float64
	}
	byTid := map[int][]iv{}
	for _, ev := range evs {
		byTid[ev.Tid] = append(byTid[ev.Tid], iv{ev.Name, ev.Ts, ev.Ts + ev.Dur})
	}
	for tid, ivs := range byTid {
		sort.Slice(ivs, func(a, b int) bool {
			if ivs[a].start != ivs[b].start {
				return ivs[a].start < ivs[b].start
			}
			return ivs[a].end > ivs[b].end
		})
		var stack []iv
		for _, v := range ivs {
			for len(stack) > 0 && stack[len(stack)-1].end <= v.start+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && v.end > stack[len(stack)-1].end+eps {
				return fmt.Errorf("trace: tid %d: span %q [%.1f, %.1f] partially overlaps %q [%.1f, %.1f]",
					tid, v.name, v.start, v.end, stack[len(stack)-1].name,
					stack[len(stack)-1].start, stack[len(stack)-1].end)
			}
			stack = append(stack, v)
		}
	}

	if opt.RequireCoarsen {
		var levels, maps, builds int
		for _, ev := range evs {
			switch {
			case strings.HasPrefix(ev.Name, "level "):
				levels++
			case strings.HasPrefix(ev.Name, "map:"):
				maps++
			case strings.HasPrefix(ev.Name, "build:"):
				builds++
			}
		}
		if levels == 0 {
			return fmt.Errorf("trace: no level spans (coarsening trace expected)")
		}
		if maps < levels {
			return fmt.Errorf("trace: %d level spans but only %d map phases", levels, maps)
		}
		if builds < levels {
			return fmt.Errorf("trace: %d level spans but only %d build phases", levels, builds)
		}
	}
	return nil
}

// CheckTraceFile runs CheckTrace on a file.
func CheckTraceFile(path string, opt CheckOptions) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return CheckTrace(f, opt)
}
