package obs_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mlcg/internal/obs"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"cas_retries":          "cas_retries",
		"policy:sort:trivial":  "policy_sort_trivial",
		"map:hec":              "map_hec",
		"9lives":               "_9lives",
		"":                     "_",
		"a-b c.d":              "a_b_c_d",
		"ünïcode":              "_n_code",
		"already_valid_Name_0": "already_valid_Name_0",
	}
	for in, want := range cases {
		if got := obs.SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
		if !obs.ValidMetricName(obs.SanitizeMetricName(in)) {
			t.Errorf("sanitized %q is still invalid", in)
		}
	}
	if obs.ValidMetricName("has:colon") {
		t.Error("ValidMetricName accepted a colon")
	}
	if obs.ValidMetricName("0leading") {
		t.Error("ValidMetricName accepted a leading digit")
	}
}

func TestSanitizeKeysDedup(t *testing.T) {
	// a:b and a.b and a_b all sanitize to a_b; dedup must be deterministic
	// (sorted input order) and produce valid, distinct names.
	m := obs.SanitizeKeys([]string{"a:b", "a_b", "a.b"})
	if len(m) != 3 {
		t.Fatalf("lost keys: %v", m)
	}
	seen := map[string]string{}
	for raw, name := range m {
		if !obs.ValidMetricName(name) {
			t.Errorf("key %q → invalid name %q", raw, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("keys %q and %q collided on %q", prev, raw, name)
		}
		seen[name] = raw
	}
	// Deterministic: sorted order is "a.b" < "a:b" < "a_b", so "a.b" wins
	// the bare name and the later keys take numbered suffixes.
	if m["a.b"] != "a_b" || m["a:b"] != "a_b_2" || m["a_b"] != "a_b_3" {
		t.Fatalf("non-deterministic dedup: %v", m)
	}
	// Idempotent across calls.
	m2 := obs.SanitizeKeys([]string{"a_b", "a.b", "a:b"})
	for k, v := range m {
		if m2[k] != v {
			t.Fatalf("input order changed the mapping: %v vs %v", m, m2)
		}
	}
}

// promDoc writes a representative exposition document through PromWriter.
func promDoc(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	p := obs.NewPromWriter(&buf)
	p.Family("mlcg_builds_completed_total", "Hierarchy builds finished successfully.", "counter")
	p.Sample(nil, 3)
	p.Family("mlcg_build_queue_depth", "Builds waiting in the queue.", "gauge")
	p.Sample(nil, 0)
	h := obs.NewHistogram("x")
	h.Observe(2 * time.Microsecond)
	h.Observe(3 * time.Second)
	p.Family("mlcg_query_seconds", "Query latency.", "histogram")
	p.Histogram([]obs.Label{{Name: "kind", Value: "partition"}}, h.Snapshot())
	p.Histogram([]obs.Label{{Name: "kind", Value: "cluster"}}, obs.HistSnapshot{})
	if err := p.Err(); err != nil {
		t.Fatalf("PromWriter: %v", err)
	}
	return buf.String()
}

func TestPromWriterOutputPassesLint(t *testing.T) {
	doc := promDoc(t)
	stats, err := obs.LintMetrics(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("writer output failed lint: %v\n%s", err, doc)
	}
	if stats.Families["mlcg_query_seconds"] != "histogram" {
		t.Fatalf("families = %v", stats.Families)
	}
	for _, want := range []string{
		"# HELP mlcg_builds_completed_total ",
		"# TYPE mlcg_builds_completed_total counter",
		`mlcg_query_seconds_bucket{kind="partition",le="+Inf"} 2`,
		`mlcg_query_seconds_count{kind="partition"} 2`,
		`mlcg_query_seconds_count{kind="cluster"} 0`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q\n%s", want, doc)
		}
	}
}

func TestPromWriterRejectsMisuse(t *testing.T) {
	check := func(name string, f func(p *obs.PromWriter)) {
		t.Helper()
		var buf bytes.Buffer
		p := obs.NewPromWriter(&buf)
		f(p)
		if p.Err() == nil {
			t.Errorf("%s: writer accepted invalid usage", name)
		}
	}
	check("invalid name", func(p *obs.PromWriter) { p.Family("bad:name", "h", "gauge") })
	check("counter without _total", func(p *obs.PromWriter) { p.Family("mlcg_builds", "h", "counter") })
	check("unknown type", func(p *obs.PromWriter) { p.Family("x", "h", "timer") })
	check("sample before family", func(p *obs.PromWriter) { p.Sample(nil, 1) })
	check("family reopened", func(p *obs.PromWriter) {
		p.Family("x", "h", "gauge")
		p.Sample(nil, 1)
		p.Family("x", "h", "gauge")
	})
	check("duplicate series", func(p *obs.PromWriter) {
		p.Family("x", "h", "gauge")
		p.Sample(nil, 1)
		p.Sample(nil, 2)
	})
	check("histogram via Sample", func(p *obs.PromWriter) {
		p.Family("x", "h", "histogram")
		p.Sample(nil, 1)
	})
	check("bad label name", func(p *obs.PromWriter) {
		p.Family("x", "h", "gauge")
		p.Sample([]obs.Label{{Name: "le gal", Value: "v"}}, 1)
	})
}

func TestLintRejectsBadDocuments(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"no help", "mlcg_x 1\n"},
		{"type before help", "# TYPE mlcg_x gauge\nmlcg_x 1\n"},
		{"help without type", "# HELP mlcg_x h\nmlcg_x 1\n"},
		{"family without samples", "# HELP mlcg_x h\n# TYPE mlcg_x gauge\n"},
		{"invalid name", "# HELP mlcg:x h\n# TYPE mlcg:x gauge\nmlcg:x 1\n"},
		{"counter not _total", "# HELP mlcg_x h\n# TYPE mlcg_x counter\nmlcg_x 1\n"},
		{"negative counter", "# HELP mlcg_x_total h\n# TYPE mlcg_x_total counter\nmlcg_x_total -1\n"},
		{"foreign sample", "# HELP mlcg_x h\n# TYPE mlcg_x gauge\nmlcg_y 1\n"},
		{"duplicate series", "# HELP mlcg_x h\n# TYPE mlcg_x gauge\nmlcg_x 1\nmlcg_x 2\n"},
		{"timestamp", "# HELP mlcg_x h\n# TYPE mlcg_x gauge\nmlcg_x 1 12345\n"},
		{"bad value", "# HELP mlcg_x h\n# TYPE mlcg_x gauge\nmlcg_x one\n"},
		{"blank line", "# HELP mlcg_x h\n# TYPE mlcg_x gauge\n\nmlcg_x 1\n"},
		{"redeclared family", "# HELP mlcg_x h\n# TYPE mlcg_x gauge\nmlcg_x 1\n# HELP mlcg_x h\n# TYPE mlcg_x gauge\nmlcg_x 2\n"},
		{"histogram no +Inf", `# HELP h_s h
# TYPE h_s histogram
h_s_bucket{le="1"} 1
h_s_sum 1
h_s_count 1
`},
		{"histogram non-monotone buckets", `# HELP h_s h
# TYPE h_s histogram
h_s_bucket{le="1"} 5
h_s_bucket{le="2"} 3
h_s_bucket{le="+Inf"} 5
h_s_sum 1
h_s_count 5
`},
		{"histogram bounds not increasing", `# HELP h_s h
# TYPE h_s histogram
h_s_bucket{le="2"} 1
h_s_bucket{le="1"} 2
h_s_bucket{le="+Inf"} 2
h_s_sum 1
h_s_count 2
`},
		{"histogram count mismatch", `# HELP h_s h
# TYPE h_s histogram
h_s_bucket{le="1"} 1
h_s_bucket{le="+Inf"} 2
h_s_sum 1
h_s_count 7
`},
		{"histogram missing sum", `# HELP h_s h
# TYPE h_s histogram
h_s_bucket{le="+Inf"} 1
h_s_count 1
`},
		{"unterminated labels", "# HELP mlcg_x h\n# TYPE mlcg_x gauge\nmlcg_x{a=\"b\" 1\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := obs.LintMetrics(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: lint accepted an invalid document", c.name)
		}
	}
}

func TestLintAcceptsValidDocument(t *testing.T) {
	doc := `# HELP mlcg_x h
# TYPE mlcg_x gauge
mlcg_x{inst="a b",quote="say \"hi\"",path="c:\\d"} 1.5e-06
# HELP mlcg_y_total counts
# TYPE mlcg_y_total counter
mlcg_y_total 0
`
	stats, err := obs.LintMetrics(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("lint rejected a valid document: %v", err)
	}
	if len(stats.Families) != 2 || stats.Samples != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}
