// Package obs is the kernel-level tracing and runtime-metrics layer of the
// module. It gives every coarsening run the lens the paper's evaluation is
// built on — *where the time goes* — at the granularity the whole-table
// benchmarks cannot see: per mapping pass, per construction phase, per
// parallel kernel, per worker.
//
// The layer has three pieces:
//
//   - Hierarchical spans (run → level → phase → kernel) carrying wall time
//     plus per-worker busy time, so load imbalance is computable per kernel.
//     The orchestrating goroutine opens spans with StartKernel/Done; the
//     parallel runtime (internal/par) reports each worker's busy time into
//     the ambient span automatically.
//   - Named atomic counters (Counter) for the hot-path events that exist in
//     the algorithms but were previously uncounted: CAS retries in the
//     reservation rounds, suitor spin iterations, epoch-hash probes and
//     collisions, radix-sort passes, workspace bytes reused vs. allocated.
//   - Exporters: a Chrome trace_event-compatible JSON trace (export.go), a
//     flat text metrics dump, and pprof labels on worker goroutines (applied
//     by internal/par when a trace is active).
//
// # Span hierarchy
//
// A coarsening run produces the tree
//
//	run                      (StartTrace root; one per tool invocation)
//	└── level <i>            one per hierarchy level, from Coarsener.Run
//	    ├── map:<mapper>     the mapping phase
//	    │   └── <kernel>...  e.g. hec:setup, hec:pass
//	    └── build:<builder>  the construction phase
//	        └── <kernel>...  e.g. cons:count, cons:scatter, dedup:sort
//
// cmd/mlcg-tracecheck validates this structure (well-formed events,
// laminar nesting); coarsen.LevelStats.Span keeps a pointer to each
// level's span so callers can drill in without walking the whole tree.
//
// # Consumers
//
// Besides the -trace/-metrics flags on every tool (internal/cli.StartObs),
// the benchmark-baseline runner (internal/bench.RunBaseline) wraps one
// repetition per measured combination in a trace and records the
// subtree-aggregated counter totals (Span.Counters) as ctr_* metrics in
// BENCH_*.json files, so counter drift — more hash probes, more CAS
// retries — shows up in baseline comparisons alongside wall times.
//
// # Zero overhead when disabled
//
// Tracing is off unless a Trace is bound to the calling goroutine. Every
// entry point a hot path can reach begins with a single atomic load of the
// process-wide bound-trace count and a nil check: no allocation, no atomic
// read-modify-write, no lock. Only when at least one trace is live
// anywhere does a call resolve the calling goroutine's id and consult the
// sharded goroutine→trace registry. TestObsDisabledZeroAlloc proves the
// allocation claim with testing.AllocsPerRun; BenchmarkObsOverhead (in
// internal/coarsen) bounds the throughput delta of the instrumented
// disabled path.
//
// # Concurrency model
//
// Traces are goroutine-scoped, not process-global: the package-level
// helpers (StartKernel, Add, Ambient, Enabled) resolve to the trace bound
// to the *calling goroutine*, so any number of traced runs — e.g.
// concurrent requests inside mlcg-serve — proceed independently, each
// building its own laminar span tree. StartTrace creates a trace and
// binds the calling goroutine (returning nil only if that goroutine is
// already tracing); NewTrace creates an unbound trace that a different
// goroutine attaches with Attach, typically carried there inside a
// context.Context via NewContext/TraceFromContext.
//
// Within one trace, the ambient span stack (StartKernel/Done) is
// manipulated only by the orchestrating goroutine — the one that calls
// the par primitives, never from inside a parallel region. Worker
// goroutines concurrently *report into* the current span (BusyAdd, Add,
// Child), which is safe: busy slots and counters are atomic adds, and
// child-span creation takes the span's mutex. internal/par binds each
// worker goroutine to the spawning run's trace for the duration of a
// parallel loop, so batched package-level Add flushes inside worker
// closures reach the correct trace even with many traced runs in flight.
package obs
