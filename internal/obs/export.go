package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// traceEvent is one Chrome trace_event entry. The exporter emits only
// complete events ("ph": "X"), which chrome://tracing and Perfetto nest by
// time containment, so the span tree renders as a flame graph without
// explicit parent links.
type traceEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`  // microseconds since trace epoch
	Dur  float64                `json:"dur"` // microseconds
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// traceFile is the JSON object format of the trace_event spec.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
	DisplayUnit string       `json:"displayTimeUnit"`
}

// WriteTrace exports the trace as Chrome trace_event JSON, one complete
// event per span. Per-span counters (nonzero, own — not subtree) and
// per-worker busy times land in the event's args so they show in the
// trace viewer's detail pane.
func (t *Trace) WriteTrace(w io.Writer) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("obs: WriteTrace on empty trace")
	}
	var events []traceEvent
	var walk func(s *Span)
	walk = func(s *Span) {
		ev := traceEvent{
			Name: s.name,
			Ph:   "X",
			Ts:   float64(s.start) / float64(time.Microsecond),
			Dur:  float64(s.Wall()) / float64(time.Microsecond),
			Pid:  1,
			Tid:  1,
		}
		args := map[string]interface{}{}
		own := s.ownCounters()
		for c, v := range own {
			if v != 0 {
				args[counterNames[c]] = v
			}
		}
		if busy := s.Busy(); len(busy) > 0 {
			ns := make([]int64, len(busy))
			for i, b := range busy {
				ns[i] = int64(b)
			}
			args["busy_ns"] = ns
			if imb := s.Imbalance(); imb > 0 {
				args["imbalance"] = imb
			}
		}
		if len(args) > 0 {
			ev.Args = args
		}
		events = append(events, ev)
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(t.Root)
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayUnit: "ms"})
}

// WriteTraceFile writes the Chrome trace to the given path.
func (t *Trace) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := t.WriteTrace(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteMetrics prints the flat human-readable metrics dump: the span tree
// with wall time, summed busy time, worker count and imbalance per span,
// followed by the full counter table (every named counter, zero or not, so
// the dump's schema is stable across runs).
func (t *Trace) WriteMetrics(w io.Writer) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("obs: WriteMetrics on empty trace")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "== spans ==\n")
	fmt.Fprintf(bw, "%-44s %12s %12s %7s %6s\n", "span", "wall", "busy", "workers", "imb")
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		indent := strings.Repeat("  ", depth)
		busy := s.Busy()
		var sum time.Duration
		for _, b := range busy {
			sum += b
		}
		imb := "-"
		if v := s.Imbalance(); v > 0 {
			imb = fmt.Sprintf("%.2f", v)
		}
		workers := "-"
		if len(busy) > 0 {
			workers = fmt.Sprintf("%d", len(busy))
		}
		fmt.Fprintf(bw, "%-44s %12s %12s %7s %6s\n",
			indent+s.name, fmtDur(s.Wall()), fmtDur(sum), workers, imb)
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)

	fmt.Fprintf(bw, "\n== counters (whole trace) ==\n")
	totals := t.Root.CounterTotals()
	for c := Counter(0); c < numCounters; c++ {
		fmt.Fprintf(bw, "%-28s %d\n", counterNames[c], totals[c])
	}

	// Kernel rollup: total busy and worst imbalance per kernel name, so a
	// skewed kernel is visible without scanning the tree.
	type roll struct {
		wall, busy time.Duration
		calls      int
		worstImb   float64
	}
	rollup := map[string]*roll{}
	var acc func(s *Span)
	acc = func(s *Span) {
		busy := s.Busy()
		if len(busy) > 0 {
			r := rollup[s.name]
			if r == nil {
				r = &roll{}
				rollup[s.name] = r
			}
			r.calls++
			r.wall += s.Wall()
			for _, b := range busy {
				r.busy += b
			}
			if imb := s.Imbalance(); imb > r.worstImb {
				r.worstImb = imb
			}
		}
		for _, c := range s.Children() {
			acc(c)
		}
	}
	acc(t.Root)
	if len(rollup) > 0 {
		names := make([]string, 0, len(rollup))
		for n := range rollup {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return rollup[names[i]].busy > rollup[names[j]].busy })
		fmt.Fprintf(bw, "\n== kernels (by total busy) ==\n")
		fmt.Fprintf(bw, "%-32s %6s %12s %12s %10s\n", "kernel", "calls", "wall", "busy", "worst-imb")
		for _, n := range names {
			r := rollup[n]
			fmt.Fprintf(bw, "%-32s %6d %12s %12s %10.2f\n", n, r.calls, fmtDur(r.wall), fmtDur(r.busy), r.worstImb)
		}
	}
	return bw.Flush()
}

// fmtDur renders a duration compactly with millisecond alignment.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
}
