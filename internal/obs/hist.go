package obs

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// Latency histograms.
//
// A Histogram is a fixed set of power-of-two duration buckets with
// per-worker shards, designed for the serving hot path: Observe is
// lock-free and allocation-free (one atomic add per field, shard picked
// via the runtime's per-thread RNG so concurrent recorders scatter across
// cache lines without coordination — goroutine-id lookup would allocate),
// and the disabled form follows the package's counter discipline — a nil
// *Histogram is the "off" histogram, and Observe on nil is a single nil
// check, so instrumented paths cost nothing when telemetry is not wanted.
//
// Buckets are fixed at compile time: upper bounds 2^i nanoseconds for
// i = histMinShift..histMinShift+histFinite-1 (1.024µs up to ~17.2s), plus
// a terminal overflow bucket exported as le="+Inf". Fixed power-of-two
// bounds keep the record path branch-free (one bits.Len64), make shard
// merging a flat array sum, and are exactly representable as floats, so
// the Prometheus `le` label values round-trip without drift.

const (
	// histMinShift is the exponent of the first bucket bound: durations up
	// to 2^histMinShift ns (1.024µs) land in bucket 0.
	histMinShift = 10
	// histFinite is the number of finite bucket bounds (2^10..2^34 ns).
	histFinite = 25
	// HistBuckets is the total bucket count including the +Inf bucket.
	HistBuckets = histFinite + 1
	// histShards is the number of independently updated count arrays.
	// Sixteen shards keep concurrent request goroutines off each other's
	// cache lines at any realistic handler parallelism.
	histShards = 16
)

// histShard is one worker-local slice of the histogram. The pad rounds the
// struct to a multiple of the cache line size so adjacent shards never
// share a line.
type histShard struct {
	counts [HistBuckets]int64 // atomic; non-cumulative per-bucket counts
	sum    int64              // atomic; total observed nanoseconds
	_      [64 - (HistBuckets+1)*8%64]byte
}

// Histogram is a lock-free fixed-bucket latency histogram. Create with
// NewHistogram; a nil *Histogram is valid and records nothing (the
// disabled path). All methods are safe for concurrent use.
type Histogram struct {
	name   string
	shards [histShards]histShard
}

// NewHistogram returns an empty histogram. The name is carried for
// exporters; it is not registered anywhere — the owner decides where and
// whether the histogram is exposed.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name}
}

// Name returns the histogram's name ("" on nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// histBucketIndex maps a non-negative duration in nanoseconds to its
// bucket: the smallest i with ns <= 2^(histMinShift+i), or the overflow
// bucket.
func histBucketIndex(ns int64) int {
	if ns <= 1<<histMinShift {
		return 0
	}
	idx := bits.Len64(uint64(ns-1)) - histMinShift
	if idx >= histFinite {
		return histFinite
	}
	return idx
}

// Observe records one duration. Nil-safe, lock-free, allocation-free:
// shard selection by goroutine id plus two atomic adds. Negative
// durations (clock steps) are clamped to zero rather than dropped, so
// Count always equals the number of Observe calls.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// rand/v2's global Uint64 reads per-M state (no lock, no alloc), so
	// concurrent observers spread over shards instead of serializing on
	// one bucket's cache line.
	sh := &h.shards[rand.Uint64()%histShards]
	atomic.AddInt64(&sh.counts[histBucketIndex(ns)], 1)
	atomic.AddInt64(&sh.sum, ns)
}

// HistSnapshot is a merged point-in-time view of a histogram: per-bucket
// (non-cumulative) counts, total count, and the sum of observed time.
// Exporters cumulate the buckets themselves (Prometheus _bucket series
// are cumulative).
type HistSnapshot struct {
	Count   int64
	Sum     time.Duration
	Buckets [HistBuckets]int64
}

// Snapshot merges the shards into one consistent-enough view (each field
// is read atomically; a concurrent Observe may straddle the merge, which
// is fine for telemetry). Nil-safe: returns the zero snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	var sum int64
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < HistBuckets; b++ {
			s.Buckets[b] += atomic.LoadInt64(&sh.counts[b])
		}
		sum += atomic.LoadInt64(&sh.sum)
	}
	for _, c := range s.Buckets {
		s.Count += c
	}
	s.Sum = time.Duration(sum)
	return s
}

// Merge adds o's buckets, count, and sum into s (for folding repetitions
// of a benchmark into one summary).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the bound of the first bucket whose cumulative count reaches q·Count.
// Observations in the overflow bucket report twice the last finite bound.
// Returns 0 on an empty snapshot.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(s.Count))
	if float64(target) < q*float64(s.Count) || target == 0 {
		target++
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			if i >= histFinite {
				return time.Duration(1) << (histMinShift + histFinite)
			}
			return time.Duration(1) << (histMinShift + i)
		}
	}
	return time.Duration(1) << (histMinShift + histFinite)
}

// HistUpperBounds returns the finite bucket upper bounds in seconds, in
// increasing order. The exporter appends the +Inf bucket itself.
func HistUpperBounds() []float64 {
	out := make([]float64, histFinite)
	for i := range out {
		out[i] = float64(int64(1)<<(histMinShift+i)) / 1e9
	}
	return out
}
