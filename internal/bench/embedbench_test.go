package bench

import "testing"

// TestMeasureEmbedRows pins the embed experiment's row contract: one
// gated steps/sec row plus the two informational rows per worker count,
// identical step counts and AUC across counts (the determinism claim the
// rows ride on), and a sane AUC on the easy geometric instance.
func TestMeasureEmbedRows(t *testing.T) {
	if testing.Short() {
		t.Skip("embedding training is slow for -short")
	}
	cfg := RunConfig{Runs: 1, Scale: 1, EmbedWorkers: []int{1, 2}}
	ms, err := measureEmbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Metric{}
	for _, m := range ms {
		byKey[m.Key()] = m
	}
	if len(byKey) != len(ms) {
		t.Fatalf("duplicate metric keys in %d rows", len(ms))
	}
	var steps, auc [2]float64
	for i, w := range []int{1, 2} {
		id := Metric{Experiment: "embed", Instance: "rgg4000", Mapper: "gosh", Builder: "sort", Workers: w}
		rate := id
		rate.Name = "steps_per_sec"
		m, ok := byKey[rate.Key()]
		if !ok {
			t.Fatalf("missing row %s", rate.Key())
		}
		if m.Direction != HigherIsBetter || m.Value <= 0 || len(m.Samples) != 1 {
			t.Errorf("steps_per_sec w=%d: dir=%v value=%v samples=%d", w, m.Direction, m.Value, len(m.Samples))
		}
		for _, name := range []string{"sgd_steps", "auc"} {
			info := id
			info.Name = name
			m, ok := byKey[info.Key()]
			if !ok {
				t.Fatalf("missing row %s", info.Key())
			}
			if m.Direction != Informational {
				t.Errorf("%s w=%d gates; want informational", name, w)
			}
			if name == "sgd_steps" {
				steps[i] = m.Value
			} else {
				auc[i] = m.Value
			}
		}
	}
	if steps[0] != steps[1] {
		t.Errorf("step counts differ across workers: %v vs %v", steps[0], steps[1])
	}
	if auc[0] != auc[1] {
		t.Errorf("AUC differs across workers: %v vs %v", auc[0], auc[1])
	}
	if auc[0] < 0.85 {
		t.Errorf("AUC %.4f suspiciously low for rgg", auc[0])
	}
}
