package bench

import (
	"fmt"
	"runtime"
	"sort"

	"mlcg/internal/coarsen"
	"mlcg/internal/embed"
	"mlcg/internal/gen"
)

// The embed experiment records the multilevel embedding pipeline's
// training throughput — positive SGD steps per second, the GOSH paper's
// headline rate — on a fixed RGG instance at each configured worker
// count, plus the link-prediction AUC of the trained embedding. Steps/sec
// gates like every kernel row; AUC is informational (it is a quality
// number with its own dedicated test gate in internal/embed, and small
// budget changes move it more than a rate tolerance should absorb).
//
// The hierarchy is built once and shared by every repetition: hierarchy
// construction cost is the coarsening experiments' number, and
// Result.TrainTime already excludes it. Because training is deterministic
// in (options, seed) regardless of worker count, every row trains the
// same embedding — the rows differ only in wall time.

// embedGraph builds the fixed measurement instance: a random geometric
// graph, the regular-degree regime embedding cares about (skew stresses
// the coarsening rows instead). Scale bumps it for -scale runs.
func embedGraph(scale int) (inst string, n int) {
	n = 4000
	if scale > 1 {
		n = 8000
	}
	return fmt.Sprintf("rgg%d", n), n
}

// measureEmbed produces the "embed" metric rows.
func measureEmbed(cfg RunConfig) ([]Metric, error) {
	runs := cfg.Runs
	if runs <= 0 {
		runs = 3
	}
	ws := cfg.EmbedWorkers
	if len(ws) == 0 {
		ws = []int{1}
	}
	sd := (Options{Seed: cfg.Seed}).seed()
	inst, n := embedGraph(cfg.Scale)
	g := gen.RGG(n, 0, sd)

	// Train on the split's training graph so the AUC row measures held-out
	// edges, exactly what mlcg-embed -eval reports.
	sp, err := embed.SplitForEval(g, 0.1, sd+1)
	if err != nil {
		return nil, fmt.Errorf("bench: embed split: %w", err)
	}
	mapper, err := coarsen.MapperByName("gosh")
	if err != nil {
		return nil, err
	}
	c := &coarsen.Coarsener{Mapper: mapper, Builder: coarsen.BuildSort{}, Cutoff: 50, Seed: sd}
	h, err := c.Run(sp.Train)
	if err != nil {
		return nil, fmt.Errorf("bench: embed coarsen: %w", err)
	}

	var out []Metric
	for _, w := range ws {
		opt := embed.Options{Dim: 32, Epochs: 16, Negatives: 5, Seed: sd, Workers: w}
		// Same hygiene as measureCombo: level the heap and pay first-touch
		// faults in an untimed warmup repetition.
		runtime.GC()
		if _, err := embed.TrainHierarchy(h, opt); err != nil {
			return nil, fmt.Errorf("bench: embed warmup w=%d: %w", w, err)
		}
		rates := make([]float64, runs)
		var last *embed.Result
		for i := range rates {
			res, err := embed.TrainHierarchy(h, opt)
			if err != nil {
				return nil, fmt.Errorf("bench: embed train w=%d: %w", w, err)
			}
			rates[i] = res.StepsPerSec()
			last = res
		}
		raw := append([]float64(nil), rates...)
		sort.Float64s(rates)
		mk := func(name, unit string, dir Direction, v float64, samples []float64) Metric {
			return Metric{
				Experiment: "embed", Instance: inst, Mapper: "gosh", Builder: "sort",
				Workers: w, Name: name, Unit: unit, Direction: dir, Value: v, Samples: samples,
			}
		}
		out = append(out,
			mk("steps_per_sec", "steps/s", HigherIsBetter, rates[len(rates)/2], raw),
			mk("sgd_steps", "count", Informational, float64(last.Steps), nil),
			mk("auc", "auc", Informational, embed.LinkAUC(last.Emb, sp), nil),
		)
	}
	return out, nil
}
