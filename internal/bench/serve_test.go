package bench

import "testing"

// TestMeasureServeSmoke runs a miniature serve experiment end to end: a
// real loopback server, real HTTP, tiny workload. It pins the metric
// identities the baseline comparator keys on — renaming build_qps or
// changing its direction silently un-gates the serving rows.
func TestMeasureServeSmoke(t *testing.T) {
	cfg := RunConfig{
		Serve:            true,
		ServeConcurrency: []int{2},
		ServeBuilds:      4,
		ServeQueries:     6,
	}
	ms, err := measureServe(cfg, Options{Runs: 1})
	if err != nil {
		t.Fatalf("measureServe: %v", err)
	}
	found := map[string]Metric{}
	for _, m := range ms {
		if m.Experiment != "serve" {
			t.Errorf("metric %s has experiment %q, want serve", m.Name, m.Experiment)
		}
		found[m.Name] = m
	}
	bq, ok := found["build_qps"]
	if !ok {
		t.Fatal("no build_qps metric")
	}
	if bq.Value <= 0 || bq.Direction != HigherIsBetter || bq.Workers != 2 {
		t.Errorf("build_qps implausible: %+v", bq)
	}
	qq, ok := found["query_qps"]
	if !ok {
		t.Fatal("no query_qps metric")
	}
	if qq.Value <= 0 || qq.Direction != HigherIsBetter {
		t.Errorf("query_qps implausible: %+v", qq)
	}
	if len(bq.Samples) != 1 {
		t.Errorf("build_qps has %d samples, want 1", len(bq.Samples))
	}
}
