package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"mlcg/internal/coarsen"
)

// fastOpt restricts the harness to three representative graphs (two
// regular, one skewed) with one run each, keeping the tests quick while
// still exercising every code path.
func fastOpt() Options {
	return Options{Runs: 1, Workers: 2, Seed: 99, Only: []string{"channel050", "delaunay24", "ppa"}}
}

func TestGeoMean(t *testing.T) {
	if got := geoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geoMean(2,8) = %v, want 4", got)
	}
	if got := geoMean([]float64{5}); got != 5 {
		t.Errorf("geoMean(5) = %v", got)
	}
	if got := geoMean(nil); got != 0 {
		t.Errorf("geoMean(nil) = %v, want 0", got)
	}
	// Non-positive entries (OOM analogs) are skipped.
	if got := geoMean([]float64{0, 4, 0}); got != 4 {
		t.Errorf("geoMean with zeros = %v, want 4", got)
	}
}

func TestMedianHelpers(t *testing.T) {
	if m := medianInt64([]int64{5, 1, 9}); m != 5 {
		t.Errorf("medianInt64 = %d, want 5", m)
	}
	if m := medianInt64([]int64{4}); m != 4 {
		t.Errorf("medianInt64 single = %d", m)
	}
	d := medianDuration(3, func() { time.Sleep(time.Microsecond) })
	if d <= 0 {
		t.Errorf("medianDuration = %v", d)
	}
}

func TestRatio64(t *testing.T) {
	if r := ratio64(10, 4); r != 2.5 {
		t.Errorf("ratio = %v", r)
	}
	if r := ratio64(0, 4); r != 0 {
		t.Errorf("zero numerator should yield 0, got %v", r)
	}
	if r := ratio64(4, 0); r != 0 {
		t.Errorf("zero denominator should yield 0, got %v", r)
	}
}

func TestOptionsDefaultsAndOnly(t *testing.T) {
	var o Options
	if o.runs() != 3 || o.workers() < 1 || o.seed() == 0 {
		t.Errorf("bad defaults: runs=%d workers=%d seed=%d", o.runs(), o.workers(), o.seed())
	}
	suite := fastOpt().Suite()
	if len(suite) != 3 {
		t.Fatalf("Only filter kept %d instances, want 3", len(suite))
	}
}

func TestTable1(t *testing.T) {
	rows := Table1(fastOpt())
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.M <= 0 || r.N <= 0 || r.Skew <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	var buf bytes.Buffer
	FormatTable1(&buf, rows)
	for _, want := range []string{"ppa", "regular", "skewed"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestTable23(t *testing.T) {
	rows := Table23(fastOpt(), 2)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Tc <= 0 {
			t.Errorf("%s: no time measured", r.Name)
		}
		if r.GrCoPct <= 0 || r.GrCoPct >= 100 {
			t.Errorf("%s: %%GrCo = %v out of range", r.Name, r.GrCoPct)
		}
		if r.HashRatio <= 0 || r.SpGEMMRatio <= 0 {
			t.Errorf("%s: non-positive construction ratios %+v", r.Name, r)
		}
	}
	var buf bytes.Buffer
	FormatTable23(&buf, rows, "GPU")
	if !strings.Contains(buf.String(), "GeoMean") {
		t.Error("missing geomean row")
	}
}

func TestHECVariants(t *testing.T) {
	rows := HECVariants(fastOpt())
	for _, r := range rows {
		if r.HEC2Ratio <= 0 || r.HEC3Ratio <= 0 {
			t.Errorf("%s: bad ratios %+v", r.Name, r)
		}
		if r.LevHEC <= 0 || r.LevHEC3 <= 0 {
			t.Errorf("%s: missing level counts", r.Name)
		}
		// HEC coarsens at least as aggressively as the root-heavy
		// variants on these workloads.
		if r.LevHEC > r.LevHEC2+2 || r.LevHEC > r.LevHEC3+2 {
			t.Errorf("%s: HEC needed more levels (%d) than variants (%d/%d)",
				r.Name, r.LevHEC, r.LevHEC2, r.LevHEC3)
		}
		if r.FirstTwoPassPct < 50 {
			t.Errorf("%s: only %.1f%% mapped in two passes", r.Name, r.FirstTwoPassPct)
		}
	}
	var buf bytes.Buffer
	FormatHECVariants(&buf, rows)
	if !strings.Contains(buf.String(), "GeoMean") {
		t.Error("missing geomean")
	}
}

func TestTable4(t *testing.T) {
	rows := Table4(fastOpt())
	for _, r := range rows {
		if r.HEMRatio <= 0 || r.MIS2Ratio <= 0 {
			t.Errorf("%s: bad ratios %+v", r.Name, r)
		}
		if r.CrHEC < r.CrMtMetis {
			t.Errorf("%s: HEC coarsening ratio %.2f below matching-based %.2f",
				r.Name, r.CrHEC, r.CrMtMetis)
		}
		if r.CrMtMetis > 2.01 {
			t.Errorf("%s: matching-based cr %.2f exceeds 2", r.Name, r.CrMtMetis)
		}
	}
	var buf bytes.Buffer
	FormatTable4(&buf, rows)
	if !strings.Contains(buf.String(), "mtMetis") {
		t.Error("bad header")
	}
}

func TestTable5(t *testing.T) {
	opt := fastOpt()
	opt.Only = []string{"channel050"} // one graph keeps spectral quick
	rows := Table5(opt)
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.Cut <= 0 || r.Time <= 0 {
		t.Errorf("degenerate spectral row %+v", r)
	}
	if r.CoaPct <= 0 || r.CoaPct >= 100 {
		t.Errorf("%%Coa = %v", r.CoaPct)
	}
	if r.HEMCutRatio <= 0 || r.MtMetisCutRatio <= 0 {
		t.Errorf("cut ratios %+v", r)
	}
	var buf bytes.Buffer
	FormatTable5(&buf, rows)
	if !strings.Contains(buf.String(), "channel050") {
		t.Error("row missing")
	}
}

func TestTable6(t *testing.T) {
	opt := fastOpt()
	opt.Only = []string{"channel050"}
	rows := Table6(opt)
	r := rows[0]
	if r.Cut <= 0 {
		t.Fatalf("no cut measured: %+v", r)
	}
	for name, v := range map[string]float64{
		"seq": r.SeqHECRatio, "spectral": r.SpectralRatio,
		"metis": r.MetisRatio, "mtmetis": r.MtMetisRatio,
	} {
		if v <= 0 {
			t.Errorf("ratio %s = %v", name, v)
		}
	}
	var buf bytes.Buffer
	FormatTable6(&buf, rows)
	if !strings.Contains(buf.String(), "FM+HEC") {
		t.Error("bad header")
	}
}

func TestFig1AndFig2(t *testing.T) {
	rows, err := Fig1(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(coarsen.MapperNames()) {
		t.Fatalf("Fig1 has %d methods, want %d", len(rows), len(coarsen.MapperNames()))
	}
	for _, r := range rows {
		if r.NC <= 0 || r.NC > 16 {
			t.Errorf("%s: nc=%d", r.Method, r.NC)
		}
	}
	res := Fig2(fastOpt())
	if res.Demo.NC <= 0 {
		t.Error("demo classification empty")
	}
	if len(res.SuiteRows) != 3 {
		t.Errorf("Fig2 suite rows = %d", len(res.SuiteRows))
	}
	var buf bytes.Buffer
	FormatFig1(&buf, rows)
	FormatFig2(&buf, res)
	if !strings.Contains(buf.String(), "create") {
		t.Error("Fig2 output missing classification")
	}
}

func TestFig3(t *testing.T) {
	opt := fastOpt()
	rates := Fig3Rate(opt)
	for _, r := range rates {
		if r.Rate <= 0 {
			t.Errorf("%s: rate %v", r.Name, r.Rate)
		}
	}
	speedups := Fig3Speedup(opt)
	for _, r := range speedups {
		if r.Speedup <= 0 {
			t.Errorf("%s: speedup %v", r.Name, r.Speedup)
		}
	}
	weak, err := Fig3WeakScaling(opt, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(weak) != 6 { // 3 families x 2 scales
		t.Fatalf("weak rows = %d", len(weak))
	}
	var buf bytes.Buffer
	FormatFig3(&buf, rates, speedups, weak)
	if !strings.Contains(buf.String(), "weak scaling") {
		t.Error("missing panel")
	}
}

func TestDedupAblation(t *testing.T) {
	opt := fastOpt() // only "ppa" is skewed in this subset
	rows := DedupAblation(opt)
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1 (only the skewed instance)", len(rows))
	}
	if rows[0].Speedup <= 0 {
		t.Errorf("ablation speedup %v", rows[0].Speedup)
	}
	var buf bytes.Buffer
	FormatDedupAblation(&buf, rows)
	if !strings.Contains(buf.String(), "ppa") {
		t.Error("row missing")
	}
}

func TestSkewSweep(t *testing.T) {
	opt := fastOpt()
	rows := SkewSweep(opt, []float64{5, 2.2})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Skew <= rows[0].Skew {
		t.Errorf("heavier tail should be more skewed: %v vs %v", rows[0].Skew, rows[1].Skew)
	}
	for _, r := range rows {
		if r.CrHEC <= 1 || r.GrCoPct <= 0 || r.HashRatio <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	var buf bytes.Buffer
	FormatSkewSweep(&buf, rows)
	if !strings.Contains(buf.String(), "gamma") {
		t.Error("header missing")
	}
}

func TestMultilevelPremise(t *testing.T) {
	opt := fastOpt()
	opt.Only = []string{"delaunay24"}
	rows := MultilevelPremise(opt)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.FlatCut <= 0 || r.MLCut <= 0 {
		t.Fatalf("degenerate cuts %+v", r)
	}
	// On a mesh, multilevel must not lose to flat FM.
	if r.CutRatio < 0.95 {
		t.Errorf("multilevel lost to flat FM: ratio %.2f", r.CutRatio)
	}
	var buf bytes.Buffer
	FormatPremise(&buf, rows)
	if !strings.Contains(buf.String(), "delaunay24") {
		t.Error("row missing")
	}
}

func TestGOSHHECStudy(t *testing.T) {
	opt := fastOpt()
	opt.Only = []string{"channel050"}
	rows := GOSHHECStudy(opt)
	if len(rows) != 1 || rows[0].TimeRatio <= 0 {
		t.Fatalf("bad rows %+v", rows)
	}
	var buf bytes.Buffer
	FormatGOSHHEC(&buf, rows)
	if !strings.Contains(buf.String(), "paper: 1.46x") {
		t.Error("missing paper reference")
	}
}

func TestBuilderShootout(t *testing.T) {
	opt := fastOpt()
	opt.Only = []string{"channel050", "ppa"}
	rows := BuilderShootout(opt)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TSort <= 0 {
			t.Errorf("%s: t_sort %v", r.Name, r.TSort)
		}
		if want := len(coarsen.BuilderNames()) - 1; len(r.Ratios) != want {
			t.Errorf("%s: %d ratios, want %d", r.Name, len(r.Ratios), want)
		}
		for name, v := range r.Ratios {
			if v <= 0 {
				t.Errorf("%s/%s: ratio %v", r.Name, name, v)
			}
		}
	}
	var buf bytes.Buffer
	FormatShootout(&buf, rows)
	for _, want := range []string{"segsort", "heap", "GeoMean"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestStrongScaling(t *testing.T) {
	opt := fastOpt()
	opt.Only = []string{"channel050"}
	rows := StrongScaling(opt, []int{1, 2})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Workers != 1 || rows[1].Workers != 2 {
		t.Errorf("worker counts %d,%d", rows[0].Workers, rows[1].Workers)
	}
	if rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %v, want 1", rows[0].Speedup)
	}
	if rows[1].Speedup <= 0 {
		t.Errorf("speedup = %v", rows[1].Speedup)
	}
	var buf bytes.Buffer
	FormatScaling(&buf, rows)
	if !strings.Contains(buf.String(), "channel050") {
		t.Error("row missing")
	}
	// Default sweep covers powers of two.
	rows = StrongScaling(opt, nil)
	if len(rows) == 0 {
		t.Error("default sweep empty")
	}
}

func TestInstanceByName(t *testing.T) {
	suite := fastOpt().Suite()
	if _, err := instanceByName(suite, "ppa"); err != nil {
		t.Error(err)
	}
	if _, err := instanceByName(suite, "nope"); err == nil {
		t.Error("unknown instance accepted")
	}
}

func TestGroupGeoMeans(t *testing.T) {
	rows := []Table2Row{
		{Skewed: false, HashRatio: 2},
		{Skewed: false, HashRatio: 8},
		{Skewed: true, HashRatio: 3},
	}
	reg, sk := GroupGeoMeans(rows, func(r Table2Row) bool { return r.Skewed },
		func(r Table2Row) float64 { return r.HashRatio })
	if math.Abs(reg-4) > 1e-12 || math.Abs(sk-3) > 1e-12 {
		t.Errorf("geomeans = %v/%v, want 4/3", reg, sk)
	}
}
