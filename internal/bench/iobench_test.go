package bench

import "testing"

func TestMeasureIOBandwidth(t *testing.T) {
	cfg := RunConfig{Runs: 1, Scale: 1, Workers: []int{1, 2}}
	ms, err := measureIOBandwidth(cfg)
	if err != nil {
		t.Fatalf("measureIOBandwidth: %v", err)
	}
	// Every ingest format and both container encodings must appear, with
	// positive bandwidth and recorded byte footprints.
	type key struct{ exp, format, name string }
	seen := map[key]int{}
	for _, m := range ms {
		if m.Experiment != "ingest" && m.Experiment != "hierio" {
			t.Errorf("unexpected experiment %q", m.Experiment)
		}
		if m.Name != "io_bytes" && m.Value <= 0 {
			t.Errorf("%s/%s %s = %v, want > 0", m.Experiment, m.Builder, m.Name, m.Value)
		}
		seen[key{m.Experiment, m.Builder, m.Name}]++
	}
	for _, want := range []key{
		{"ingest", "edgelist", "ingest_mbps"},
		{"ingest", "edgelist-stream", "ingest_mbps"},
		{"ingest", "binary", "ingest_mbps"},
		{"ingest", "mlcg", "ingest_mbps"},
		{"ingest", "mlcg", "io_bytes"},
		{"hierio", "raw", "save_mbps"},
		{"hierio", "raw", "load_mbps"},
		{"hierio", "varint", "save_mbps"},
		{"hierio", "varint", "load_mbps"},
		{"hierio", "varint", "io_bytes"},
	} {
		if seen[want] == 0 {
			t.Errorf("missing metric %v (have %v)", want, seen)
		}
	}
	// The worker sweep produced one streaming row per distinct count.
	if n := seen[key{"ingest", "edgelist-stream", "ingest_mbps"}]; n != 2 {
		t.Errorf("edgelist-stream rows = %d, want 2 (workers 1 and 2)", n)
	}
}
