package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
)

// SchemaVersion is the version stamped into every baseline file. Bump it
// when a field changes meaning; the comparator refuses to compare files
// with mismatched versions rather than silently mis-reading them.
const SchemaVersion = 1

// Direction says how a metric's value relates to "better". The comparator
// gates on lower/higher metrics and only reports info metrics.
type Direction string

const (
	// LowerIsBetter marks wall times and other costs.
	LowerIsBetter Direction = "lower"
	// HigherIsBetter marks throughput rates.
	HigherIsBetter Direction = "higher"
	// Informational marks structural observations (levels, coarsening
	// ratios, obs counters) that describe a run but never gate it.
	Informational Direction = "info"
)

// Environment is the machine fingerprint recorded with every baseline, so
// a delta report can say whether two files are comparable at all.
type Environment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
	GitSHA     string `json:"git_sha,omitempty"`
	Hostname   string `json:"hostname,omitempty"`
}

// CaptureEnvironment fingerprints the current process and host. The git
// SHA comes from the binary's embedded VCS info when present (builds from
// a clean checkout); callers with better information (the Makefile passes
// `git rev-parse`) can overwrite GitSHA afterwards.
func CaptureEnvironment() Environment {
	env := Environment{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
	if host, err := os.Hostname(); err == nil {
		env.Hostname = host
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				env.GitSHA = s.Value
			}
		}
	}
	return env
}

// cpuModel best-effort reads the CPU model name; empty where unavailable
// (non-Linux, sandboxed /proc).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "model name") {
			if _, val, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// Metric is one measured value. The identity fields (Experiment, Instance,
// Mapper, Builder, Workers, Name) form the comparison key; Value is the
// median over the run's repetitions and Samples optionally keeps the raw
// per-repetition values for offline noise analysis.
type Metric struct {
	Experiment string    `json:"experiment"`
	Instance   string    `json:"instance,omitempty"`
	Mapper     string    `json:"mapper,omitempty"`
	Builder    string    `json:"builder,omitempty"`
	Workers    int       `json:"workers,omitempty"`
	Name       string    `json:"name"`
	Unit       string    `json:"unit"`
	Direction  Direction `json:"direction"`
	Value      float64   `json:"value"`
	Samples    []float64 `json:"samples,omitempty"`
}

// Key returns the stable identity string used to pair metrics across two
// baselines.
func (m Metric) Key() string {
	parts := []string{m.Experiment}
	if m.Instance != "" {
		parts = append(parts, m.Instance)
	}
	if m.Mapper != "" {
		parts = append(parts, m.Mapper)
	}
	if m.Builder != "" {
		parts = append(parts, m.Builder)
	}
	if m.Workers != 0 {
		parts = append(parts, fmt.Sprintf("w=%d", m.Workers))
	}
	parts = append(parts, m.Name)
	return strings.Join(parts, "/")
}

// Baseline is one recorded benchmark run: the file format of
// BENCH_<sha>.json. Metrics are kept sorted by Key so the files diff
// cleanly under version control.
type Baseline struct {
	SchemaVersion int         `json:"schema_version"`
	CreatedAt     string      `json:"created_at,omitempty"`
	Env           Environment `json:"env"`
	Config        RunConfig   `json:"config"`
	Metrics       []Metric    `json:"metrics"`
}

// Sort orders the metrics by key (stable file layout).
func (b *Baseline) Sort() {
	sort.Slice(b.Metrics, func(i, j int) bool { return b.Metrics[i].Key() < b.Metrics[j].Key() })
}

// Validate checks the structural invariants of a baseline file: matching
// schema version, at least one metric, every metric named, every direction
// legal, and no duplicate keys.
func (b *Baseline) Validate() error {
	if b.SchemaVersion != SchemaVersion {
		return fmt.Errorf("bench: schema version %d, this tool reads %d", b.SchemaVersion, SchemaVersion)
	}
	if len(b.Metrics) == 0 {
		return fmt.Errorf("bench: baseline has no metrics")
	}
	seen := make(map[string]bool, len(b.Metrics))
	for i, m := range b.Metrics {
		if m.Name == "" || m.Experiment == "" {
			return fmt.Errorf("bench: metric %d has empty experiment/name", i)
		}
		switch m.Direction {
		case LowerIsBetter, HigherIsBetter, Informational:
		default:
			return fmt.Errorf("bench: metric %s has unknown direction %q", m.Key(), m.Direction)
		}
		if k := m.Key(); seen[k] {
			return fmt.Errorf("bench: duplicate metric key %s", k)
		} else {
			seen[k] = true
		}
	}
	return nil
}

// WriteJSON writes the baseline as indented JSON.
func (b *Baseline) WriteJSON(w io.Writer) error {
	b.Sort()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteFile writes the baseline to path.
func (b *Baseline) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBaseline parses and validates a baseline from r.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("bench: parsing baseline: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// ReadBaselineFile reads and validates the baseline at path.
func ReadBaselineFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := ReadBaseline(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}
