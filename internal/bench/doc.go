// Package bench is the evaluation harness: it regenerates every table and
// figure of the paper's Section IV on the synthetic Table I analog suite,
// and records machine-readable performance baselines so the numbers have a
// trajectory, not just a snapshot.
//
// # Harness
//
// Each Table*/Fig* function (tables.go, figures.go) returns structured
// rows; the Format* helpers (format.go) print them in the paper's layout.
// cmd/mlcg-tables and cmd/mlcg-figures are thin wrappers, and
// bench_test.go at the module root exposes each experiment as a testing.B
// benchmark. Options selects the suite slice, repetition count (medians
// are reported, as in the paper), worker count, seed, and scale.
//
// # Baseline schema (BENCH_*.json)
//
// A Baseline (baseline.go) is one recorded run: a schema version, an
// Environment fingerprint (Go version, GOOS/GOARCH, GOMAXPROCS, CPU
// model, git SHA, hostname), the RunConfig that was measured, and a flat
// list of Metrics. A Metric's identity is
//
//	experiment/instance/mapper/builder/w=N/name
//
// (Metric.Key); its payload is a value, a unit, a Direction — "lower"
// and "higher" metrics gate comparisons, "info" metrics (levels,
// coarsening ratios, obs counters) only describe the run — and optionally
// the raw per-repetition samples. RunBaseline (runner.go) measures an
// instance × mapper × builder × worker-count grid, recording median
// total/map/build wall times, the Fig 3 coarsening rate (2m+n)/s, and,
// with RunConfig.Counters, the internal/obs counter totals from one extra
// traced repetition (ctr_hash_probes, ctr_cas_retries, ...).
//
// Compare (compare.go) pairs two baselines by metric key and classifies
// every delta under per-metric noise thresholds: a relative tolerance
// (default 25%) and an absolute floor for wall times (default 5ms) below
// which deltas are scheduler noise. Metrics new in one file are reported,
// never gated, so a PR can grow the measured slice without failing its
// own gate. cmd/mlcg-bench is the CLI; `make bench-json` records a file
// and `make bench-check` gates against the committed BENCH_baseline.json.
package bench
