package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"mlcg/internal/coarsen"
	"mlcg/internal/graph"
	"mlcg/internal/obs"
)

// RunConfig selects the slice of the table/figure suite a baseline run
// measures. It is recorded verbatim in the baseline file so a comparison
// can verify both sides measured the same thing.
type RunConfig struct {
	// Suite names the slice ("fast", "full", or "custom" after overrides).
	Suite string `json:"suite"`
	// Runs is the repetitions per measurement; the median is recorded.
	Runs int `json:"runs"`
	// Scale multiplies suite sizes (bench.Options.Scale).
	Scale int `json:"scale"`
	// Seed drives every random choice (0 = the harness default).
	Seed uint64 `json:"seed,omitempty"`
	// Workers lists the worker counts to sweep; 0 means GOMAXPROCS and is
	// resolved (and de-duplicated) at run time.
	Workers []int `json:"workers"`
	// Instances restricts the Table I analog suite by name.
	Instances []string `json:"instances"`
	// Mappers and Builders select the measured combinations.
	Mappers  []string `json:"mappers"`
	Builders []string `json:"builders"`
	// Counters adds one traced repetition per combination and records the
	// obs counter totals (hash probes, CAS retries, ...) as info metrics.
	Counters bool `json:"counters"`

	// HeadToHead lists mappers measured against each other in an extra
	// "mapcompare" experiment: every configured instance is coarsened with
	// each listed mapper (sort construction) at every HeadToHeadWorkers
	// count, so the baseline records directly comparable map-phase rows.
	// Used for the mis2 vs mis2fast worklist-kernel claim (docs/CLAIMS.md).
	HeadToHead []string `json:"head_to_head,omitempty"`
	// HeadToHeadWorkers are the worker counts of the head-to-head rows
	// (unlike Workers, these are not defaulted from GOMAXPROCS — the
	// speedup claim is pinned at explicit counts).
	HeadToHeadWorkers []int `json:"head_to_head_workers,omitempty"`

	// Serve adds the mlcg-serve end-to-end experiment: build throughput
	// over real loopback HTTP at each ServeConcurrency client level
	// (ServeBuilds distinct small graphs per repetition, fresh server per
	// repetition so caching cannot flatter the numbers) and concurrent
	// partition-query throughput against one shared hierarchy
	// (ServeQueries requests). The serve rows' Workers field records the
	// client concurrency.
	Serve            bool  `json:"serve,omitempty"`
	ServeConcurrency []int `json:"serve_concurrency,omitempty"`
	ServeBuilds      int   `json:"serve_builds,omitempty"`
	ServeQueries     int   `json:"serve_queries,omitempty"`

	// ObsOverhead adds the "obs" experiment: the per-call cost of the
	// telemetry record path (obs.Histogram.Observe, enabled and disabled),
	// committed so the tax of instrumenting the serve hot path stays
	// visible in the baseline history.
	ObsOverhead bool `json:"obs_overhead,omitempty"`

	// Embed adds the "embed" experiment: multilevel SGD training
	// throughput (steps/sec, gated) on a fixed RGG instance at each
	// EmbedWorkers count, plus the link-prediction AUC of the trained
	// embedding as an informational row (see embedbench.go). Like
	// HeadToHeadWorkers, EmbedWorkers are explicit — the parallel-SGD
	// determinism claim is pinned at fixed counts, not GOMAXPROCS.
	Embed        bool  `json:"embed,omitempty"`
	EmbedWorkers []int `json:"embed_workers,omitempty"`

	// IOBandwidth adds the "ingest" and "hierio" experiments: MB/s of
	// text (sequential and streaming-parallel), legacy binary, and
	// container ingest on a fixed RMAT instance, plus hierarchy container
	// save/load bandwidth raw and delta-varint (see iobench.go and
	// EXPERIMENTS.md).
	IOBandwidth bool `json:"io_bandwidth,omitempty"`
}

// FastConfig is the CI slice: three small instances (one regular, two
// skewed), the two headline mappers, the sort/hash construction pair the
// paper's Tables II/III compare, and the adaptive auto policy so that
// regressions in the policy itself — not just in the fixed kernels — are
// gated. It finishes in seconds.
func FastConfig() RunConfig {
	return RunConfig{
		Suite:     "fast",
		Runs:      3,
		Scale:     1,
		Workers:   []int{1, 0},
		Instances: []string{"channel050", "mycielskian17", "ic04"},
		Mappers:   []string{"hec", "hem"},
		Builders:  []string{"sort", "hash", "auto"},
		Counters:  true,
		// The D2-MIS head-to-head: two of the three fast instances are
		// skewed (mycielskian17, ic04), the regime the worklist kernel
		// targets; p=8 pins the parallel claim, p=1 the sequential one.
		HeadToHead:        []string{"mis2", "mis2fast"},
		HeadToHeadWorkers: []int{1, 8},
		// The serving path: build QPS at 1 and 8 concurrent clients plus
		// shared-hierarchy query throughput, gated like every other row.
		Serve:            true,
		ServeConcurrency: []int{1, 8},
		ObsOverhead:      true,
		IOBandwidth:      true,
		// The embedding pipeline: training throughput at the same pinned
		// counts as the head-to-head rows.
		Embed:        true,
		EmbedWorkers: []int{1, 8},
	}
}

// FullConfig covers the whole 20-instance suite with the Table II-IV
// method set — the slice to record for a committed baseline refresh on a
// quiet machine.
func FullConfig() RunConfig {
	cfg := RunConfig{
		Suite:    "full",
		Runs:     5,
		Scale:    1,
		Workers:  []int{1, 0},
		Mappers:  []string{"hec", "hem", "twohop", "gosh"},
		Builders: []string{"sort", "hash", "spgemm", "auto"},
		Counters: true,
		Serve:    true,
		// Heavier serve slice for committed baselines.
		ServeConcurrency: []int{1, 4, 8},
		ServeBuilds:      48,
		ServeQueries:     96,
		ObsOverhead:      true,
		IOBandwidth:      true,
		Embed:            true,
		EmbedWorkers:     []int{1, 8},
	}
	for _, inst := range (Options{}).Suite() {
		cfg.Instances = append(cfg.Instances, inst.Name)
	}
	return cfg
}

// ConfigByName returns the named suite slice.
func ConfigByName(name string) (RunConfig, error) {
	switch name {
	case "fast":
		return FastConfig(), nil
	case "full":
		return FullConfig(), nil
	}
	return RunConfig{}, fmt.Errorf("bench: unknown suite slice %q (want fast or full)", name)
}

// resolvedWorkers maps 0 to GOMAXPROCS and drops duplicates, preserving
// order (on a single-core host {1, 0} collapses to {1}).
func resolvedWorkers(ws []int) []int {
	var out []int
	seen := map[int]bool{}
	for _, w := range ws {
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		out = []int{runtime.GOMAXPROCS(0)}
	}
	return out
}

// RunBaseline measures the configured slice and returns the baseline
// (environment fingerprint included, CreatedAt left to the caller). For
// every instance × mapper × builder × workers combination it records
// median total/map/build wall times with raw samples, the coarsening rate
// ((2m+n)/s, the paper's Fig 3 metric), levels, and the coarsening ratio;
// with Counters set, one extra traced repetition records the obs counter
// totals.
func RunBaseline(cfg RunConfig) (*Baseline, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 3
	}
	opt := Options{Runs: cfg.Runs, Scale: cfg.Scale, Seed: cfg.Seed, Only: cfg.Instances}
	insts := opt.Suite()
	if len(insts) == 0 {
		return nil, fmt.Errorf("bench: no suite instances match %v", cfg.Instances)
	}
	workers := resolvedWorkers(cfg.Workers)
	if len(cfg.Mappers) == 0 {
		cfg.Mappers = []string{"hec"}
	}
	if len(cfg.Builders) == 0 {
		cfg.Builders = []string{"sort"}
	}

	b := &Baseline{SchemaVersion: SchemaVersion, Env: CaptureEnvironment(), Config: cfg}
	for _, inst := range insts {
		for _, mname := range cfg.Mappers {
			mapper, err := coarsen.MapperByName(mname)
			if err != nil {
				return nil, err
			}
			for _, bname := range cfg.Builders {
				builder, err := coarsen.BuilderByName(bname)
				if err != nil {
					return nil, err
				}
				for _, w := range workers {
					ms, err := measureCombo("coarsen", inst.Name, inst.Graph, mapper, builder, w, opt, cfg.Counters, 0)
					if err != nil {
						return nil, fmt.Errorf("bench: %s/%s/%s/w=%d: %w", inst.Name, mname, bname, w, err)
					}
					b.Metrics = append(b.Metrics, ms...)
				}
			}
		}
	}
	// Head-to-head mapper rows ("mapcompare"): the same instances, a fixed
	// sort construction so map time dominates the comparison, explicit
	// worker counts.
	if len(cfg.HeadToHead) > 0 {
		hw := cfg.HeadToHeadWorkers
		if len(hw) == 0 {
			hw = []int{1}
		}
		for _, inst := range insts {
			for _, mname := range cfg.HeadToHead {
				mapper, err := coarsen.MapperByName(mname)
				if err != nil {
					return nil, err
				}
				for _, w := range hw {
					ms, err := measureCombo("mapcompare", inst.Name, inst.Graph, mapper, coarsen.BuildSort{}, w, opt, cfg.Counters, -1)
					if err != nil {
						return nil, fmt.Errorf("bench: mapcompare %s/%s/w=%d: %w", inst.Name, mname, w, err)
					}
					b.Metrics = append(b.Metrics, ms...)
				}
			}
		}
	}
	// The serving experiment: daemon throughput over loopback HTTP.
	if cfg.Serve {
		ms, err := measureServe(cfg, opt)
		if err != nil {
			return nil, err
		}
		b.Metrics = append(b.Metrics, ms...)
	}
	// The telemetry-tax experiment: histogram record path cost.
	if cfg.ObsOverhead {
		b.Metrics = append(b.Metrics, measureObsOverhead(cfg.Runs)...)
	}
	// The embedding experiment: multilevel SGD throughput and AUC.
	if cfg.Embed {
		ms, err := measureEmbed(cfg)
		if err != nil {
			return nil, err
		}
		b.Metrics = append(b.Metrics, ms...)
	}
	// The IO experiments: ingest and hierarchy persistence bandwidth.
	if cfg.IOBandwidth {
		ms, err := measureIOBandwidth(cfg)
		if err != nil {
			return nil, err
		}
		b.Metrics = append(b.Metrics, ms...)
	}
	b.Sort()
	return b, nil
}

// measureCombo times one instance × mapper × builder × workers cell under
// the given experiment name.
func measureCombo(experiment, inst string, g *graph.Graph, mapper coarsen.Mapper, builder coarsen.Builder, workers int, opt Options, counters bool, discard int) ([]Metric, error) {
	// Bench hygiene: level the heap across combos (testing.B does the same
	// before timing) and run one untimed warmup repetition so no builder
	// pays first-touch page faults for its scratch buffers inside the timed
	// samples. On small instances both effects exceed the builder
	// differences being measured.
	runtime.GC()
	if _, err := hierarchyForD(g, mapper, builder, workers, opt.seed(), discard); err != nil {
		return nil, err
	}
	type sample struct{ total, mapT, build time.Duration }
	samples := make([]sample, opt.runs())
	var levels int
	var cr float64
	for i := range samples {
		h, err := hierarchyForD(g, mapper, builder, workers, opt.seed(), discard)
		if err != nil {
			return nil, err
		}
		samples[i] = sample{h.TotalTime(), h.MapTime(), h.BuildTime()}
		levels = h.Levels()
		cr = h.CoarseningRatio()
	}
	// Report the run with the median total so map/build/total stay
	// internally consistent, but keep every raw total for noise analysis.
	bySample := append([]sample(nil), samples...)
	sort.Slice(bySample, func(a, c int) bool { return bySample[a].total < bySample[c].total })
	med := bySample[len(bySample)/2]
	raw := make([]float64, len(samples))
	for i, s := range samples {
		raw[i] = float64(s.total)
	}

	rate := 0.0 // guard: an empty hierarchy (all levels discarded) has zero total
	if med.total > 0 {
		rate = float64(g.Size()) / med.total.Seconds()
	}
	id := Metric{Experiment: experiment, Instance: inst, Mapper: mapper.Name(), Builder: builder.Name(), Workers: workers}
	mk := func(name, unit string, dir Direction, v float64) Metric {
		m := id
		m.Name, m.Unit, m.Direction, m.Value = name, unit, dir, v
		return m
	}
	total := mk("total_ns", "ns", LowerIsBetter, float64(med.total))
	total.Samples = raw
	out := []Metric{
		total,
		mk("map_ns", "ns", LowerIsBetter, float64(med.mapT)),
		mk("build_ns", "ns", LowerIsBetter, float64(med.build)),
		mk("rate", "size/s", HigherIsBetter, rate),
		mk("levels", "levels", Informational, float64(levels)),
		mk("coarsening_ratio", "ratio", Informational, cr),
	}
	if counters {
		if tr := obs.StartTrace("bench-counters"); tr != nil {
			_, err := hierarchyForD(g, mapper, builder, workers, opt.seed(), discard)
			tr.Stop()
			if err != nil {
				return nil, err
			}
			totals := tr.Root.Counters()
			names := make([]string, 0, len(totals))
			for n := range totals {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				out = append(out, mk("ctr_"+n, "count", Informational, float64(totals[n])))
			}
		}
	}
	return out, nil
}
