package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mlcg/internal/gen"
	"mlcg/internal/graph"
	"mlcg/internal/obs"
	"mlcg/internal/serve"
)

// The serve experiment measures the daemon end to end over real HTTP on a
// loopback listener: build throughput (ingest → hierarchy, the write path
// with its queue, workspace pool, and per-request traces) at two client
// concurrency levels, and query throughput against one shared hierarchy
// (the read path that must scale with readers). The Workers identity
// field carries the *client concurrency*, not the coarsening parallelism:
// that is the axis these rows sweep.

// serveBatchGraphs generates the distinct small graphs one build-QPS
// repetition ingests and builds (content addressing means they must
// actually differ).
func serveBatchGraphs(n, scale int) []*graph.Graph {
	if scale < 1 {
		scale = 1
	}
	out := make([]*graph.Graph, n)
	for i := range out {
		side := (24 + i) * scale
		out[i] = gen.Grid2D(side, 24*scale)
	}
	return out
}

func servePost(client *http.Client, url string, body []byte, out any) (int, error) {
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, fmt.Errorf("bad response %q: %w", raw, err)
		}
	}
	if resp.StatusCode >= 300 {
		return resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return resp.StatusCode, nil
}

// serveBuildQPS runs one repetition: a fresh server (so the hierarchy
// cache cannot carry answers across reps), all graphs pre-ingested, then
// `conc` client goroutines drain the build list with blocking requests.
// Returns completed builds per second plus the client-observed per-build
// latency histogram (wall time of the blocking request, queue wait
// included — the latency a caller of the service actually sees).
func serveBuildQPS(conc int, graphs []*graph.Graph) (float64, obs.HistSnapshot, error) {
	s := serve.New(serve.Config{
		BuildWorkers: conc,
		Workers:      1,
		QueueDepth:   len(graphs) + conc,
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	client := &http.Client{}

	ids := make([]string, len(graphs))
	for i, g := range graphs {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			return 0, obs.HistSnapshot{}, err
		}
		var info struct {
			ID string `json:"id"`
		}
		if _, err := servePost(client, ts.URL+"/v1/graphs?format=binary", buf.Bytes(), &info); err != nil {
			return 0, obs.HistSnapshot{}, fmt.Errorf("ingest %d: %w", i, err)
		}
		ids[i] = info.ID
	}

	lat := obs.NewHistogram("client_build_latency")
	var next atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, conc)
	t0 := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				body, _ := json.Marshal(map[string]any{"graph": ids[i]})
				var st struct {
					Status string `json:"status"`
					Error  string `json:"error"`
				}
				r0 := time.Now()
				if _, err := servePost(client, ts.URL+"/v1/hierarchies?wait=1", body, &st); err != nil {
					errCh <- fmt.Errorf("build %d: %w", i, err)
					return
				}
				lat.Observe(time.Since(r0))
				if st.Status != "done" {
					errCh <- fmt.Errorf("build %d: status %q (%s)", i, st.Status, st.Error)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errCh)
	for err := range errCh {
		return 0, obs.HistSnapshot{}, err
	}
	return float64(len(ids)) / elapsed.Seconds(), lat.Snapshot(), nil
}

// serveQueryQPS builds one larger hierarchy and then hammers it with
// concurrent partition queries. Returns queries per second plus the
// client-observed per-query latency histogram.
func serveQueryQPS(conc, queries, scale int) (float64, obs.HistSnapshot, error) {
	s := serve.New(serve.Config{
		BuildWorkers: 1,
		Workers:      0,
		QueueDepth:   4,
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	client := &http.Client{}

	sc := 0
	for v := scale; v > 1; v >>= 1 {
		sc++
	}
	g := gen.RMAT(12+sc, 8, 6)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		return 0, obs.HistSnapshot{}, err
	}
	var info struct {
		ID string `json:"id"`
	}
	if _, err := servePost(client, ts.URL+"/v1/graphs?format=binary", buf.Bytes(), &info); err != nil {
		return 0, obs.HistSnapshot{}, err
	}
	body, _ := json.Marshal(map[string]any{"graph": info.ID})
	var st struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if _, err := servePost(client, ts.URL+"/v1/hierarchies?wait=1", body, &st); err != nil {
		return 0, obs.HistSnapshot{}, err
	}
	if st.Status != "done" {
		return 0, obs.HistSnapshot{}, fmt.Errorf("hierarchy build did not finish: %q", st.Status)
	}

	lat := obs.NewHistogram("client_query_latency")
	var next atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, conc)
	t0 := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= queries {
					return
				}
				q, _ := json.Marshal(map[string]any{"hierarchy": st.ID, "k": 4, "seed": i})
				r0 := time.Now()
				if _, err := servePost(client, ts.URL+"/v1/partition", q, nil); err != nil {
					errCh <- fmt.Errorf("query %d: %w", i, err)
					return
				}
				lat.Observe(time.Since(r0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errCh)
	for err := range errCh {
		return 0, obs.HistSnapshot{}, err
	}
	return float64(queries) / elapsed.Seconds(), lat.Snapshot(), nil
}

// latencyRows folds a merged latency histogram into baseline rows: the
// mean (a continuous value, gated like any ns metric) plus p50/p99 bucket
// bounds. The quantiles are Informational — power-of-two buckets quantize
// them, so a one-bucket shift reads as a 2× change and would trip any
// sane relative gate on noise alone; the mean carries the regression
// signal instead.
func latencyRows(mk func(name, unit string, dir Direction, v float64, samples []float64) Metric, prefix string, snap obs.HistSnapshot, reps []float64) []Metric {
	if snap.Count == 0 {
		return nil
	}
	mean := float64(snap.Sum) / float64(snap.Count)
	return []Metric{
		mk(prefix+"_latency_mean_ns", "ns", LowerIsBetter, mean, reps),
		mk(prefix+"_latency_p50_ns", "ns", Informational, float64(snap.Quantile(0.50)), nil),
		mk(prefix+"_latency_p99_ns", "ns", Informational, float64(snap.Quantile(0.99)), nil),
	}
}

// measureServe produces the serve experiment's metrics: build_qps and
// client-observed build latency per configured client concurrency, and
// query_qps plus query latency at the highest concurrency.
func measureServe(cfg RunConfig, opt Options) ([]Metric, error) {
	concs := cfg.ServeConcurrency
	if len(concs) == 0 {
		concs = []int{1, 8}
	}
	builds := cfg.ServeBuilds
	if builds <= 0 {
		builds = 24
	}
	queries := cfg.ServeQueries
	if queries <= 0 {
		queries = 48
	}
	runs := opt.runs()
	scale := opt.Scale
	if scale < 1 {
		scale = 1
	}

	median := func(vals []float64) (float64, []float64) {
		raw := append([]float64(nil), vals...)
		sort.Float64s(vals)
		return vals[len(vals)/2], raw
	}
	mk := func(conc int, name, unit string, dir Direction, v float64, samples []float64) Metric {
		return Metric{
			Experiment: "serve", Instance: "grid-batch", Mapper: "hec", Builder: "sort",
			Workers: conc, Name: name, Unit: unit, Direction: dir, Value: v, Samples: samples,
		}
	}

	var out []Metric
	for _, conc := range concs {
		vals := make([]float64, runs)
		means := make([]float64, 0, runs)
		var merged obs.HistSnapshot
		for rep := range vals {
			qps, snap, err := serveBuildQPS(conc, serveBatchGraphs(builds, scale))
			if err != nil {
				return nil, fmt.Errorf("bench: serve build qps (conc=%d): %w", conc, err)
			}
			vals[rep] = qps
			if snap.Count > 0 {
				means = append(means, float64(snap.Sum)/float64(snap.Count))
			}
			merged.Merge(snap)
		}
		med, raw := median(vals)
		out = append(out, mk(conc, "build_qps", "builds/s", HigherIsBetter, med, raw))
		out = append(out, latencyRows(func(name, unit string, dir Direction, v float64, samples []float64) Metric {
			return mk(conc, name, unit, dir, v, samples)
		}, "build", merged, means)...)
	}

	qconc := concs[len(concs)-1]
	if qconc < 2 {
		qconc = 8
	}
	vals := make([]float64, runs)
	qmeans := make([]float64, 0, runs)
	var qmerged obs.HistSnapshot
	for rep := range vals {
		qps, snap, err := serveQueryQPS(qconc, queries, scale)
		if err != nil {
			return nil, fmt.Errorf("bench: serve query qps: %w", err)
		}
		vals[rep] = qps
		if snap.Count > 0 {
			qmeans = append(qmeans, float64(snap.Sum)/float64(snap.Count))
		}
		qmerged.Merge(snap)
	}
	med, raw := median(vals)
	m := mk(qconc, "query_qps", "queries/s", HigherIsBetter, med, raw)
	m.Instance = "rmat-shared"
	out = append(out, m)
	for _, lm := range latencyRows(func(name, unit string, dir Direction, v float64, samples []float64) Metric {
		return mk(qconc, name, unit, dir, v, samples)
	}, "query", qmerged, qmeans) {
		lm.Instance = "rmat-shared"
		out = append(out, lm)
	}
	return out, nil
}
