package bench

import (
	"fmt"
	"io"
	"strings"

	"mlcg/internal/coarsen"
)

// FormatTable1 prints the workload collection in Table I's layout.
func FormatTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table I analog: synthetic workload collection\n")
	fmt.Fprintf(w, "%-14s %-6s %10s %10s %10s  %s\n", "Graph", "Domain", "m", "n", "Δ/(2m/n)", "Generator")
	printGroup := func(skewed bool, label string) {
		fmt.Fprintf(w, "-- %s --\n", label)
		for _, r := range rows {
			if r.Skewed == skewed {
				fmt.Fprintf(w, "%-14s %-6s %10d %10d %10.1f  %s\n", r.Name, r.Domain, r.M, r.N, r.Skew, r.Generator)
			}
		}
	}
	printGroup(false, "regular")
	printGroup(true, "skewed-degree")
}

// FormatTable23 prints Tables II/III.
func FormatTable23(w io.Writer, rows []Table2Row, device string) {
	fmt.Fprintf(w, "HEC coarsening, %s role: total time, %%time in construction (sort), alt/sort construction ratios\n", device)
	fmt.Fprintf(w, "%-14s %9s %7s %9s %9s\n", "Graph", "t_c(s)", "%GrCo", "Hashing", "SpGEMM")
	emit := func(skewed bool, label string) {
		for _, r := range rows {
			if r.Skewed == skewed {
				mark := ""
				if r.Stalled {
					mark = "  [stalled]"
				}
				fmt.Fprintf(w, "%-14s %9.3f %7.0f %9.2f %9.2f%s\n",
					r.Name, r.Tc.Seconds(), r.GrCoPct, r.HashRatio, r.SpGEMMRatio, mark)
			}
		}
		sel := func(f func(Table2Row) float64) float64 {
			reg, sk := GroupGeoMeans(rows, func(r Table2Row) bool { return r.Skewed }, f)
			if skewed {
				return sk
			}
			return reg
		}
		fmt.Fprintf(w, "%-14s %9s %7.0f %9.2f %9.2f   <- geomean %s\n", "GeoMean",
			"", sel(func(r Table2Row) float64 { return r.GrCoPct }),
			sel(func(r Table2Row) float64 { return r.HashRatio }),
			sel(func(r Table2Row) float64 { return r.SpGEMMRatio }), label)
	}
	emit(false, "regular")
	emit(true, "skewed")
}

// FormatHECVariants prints the Section IV.A variant comparison.
func FormatHECVariants(w io.Writer, rows []HECVariantRow) {
	fmt.Fprintf(w, "HEC parallelization variants (t_variant/t_HEC, levels, %% mapped in 2 passes)\n")
	fmt.Fprintf(w, "%-14s %9s %7s %7s %5s %5s %5s %7s %7s\n",
		"Graph", "tHEC(s)", "HEC2/", "HEC3/", "lHEC", "lHEC2", "lHEC3", "2p-L1%", "2p-L2%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %9.3f %7.2f %7.2f %5d %5d %5d %7.1f %7.1f\n",
			r.Name, r.THEC.Seconds(), r.HEC2Ratio, r.HEC3Ratio,
			r.LevHEC, r.LevHEC2, r.LevHEC3, r.FirstTwoPassPct, r.SecondLevelTwoPassPct)
	}
	reg2, sk2 := GroupGeoMeans(rows, func(r HECVariantRow) bool { return r.Skewed },
		func(r HECVariantRow) float64 { return r.HEC2Ratio })
	reg3, sk3 := GroupGeoMeans(rows, func(r HECVariantRow) bool { return r.Skewed },
		func(r HECVariantRow) float64 { return r.HEC3Ratio })
	fmt.Fprintf(w, "GeoMean t ratios: HEC2 %.2f/%.2f  HEC3 %.2f/%.2f (regular/skewed)\n", reg2, sk2, reg3, sk3)
}

// FormatTable4 prints Table IV.
func FormatTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Coarsening method comparison (t_alt/t_HEC, levels l, coarsening ratio cr)\n")
	fmt.Fprintf(w, "%-14s | %6s %8s %6s %6s | %4s %4s %5s %5s %5s | %6s %6s\n",
		"Graph", "HEM", "mtMetis", "GOSH", "MIS2", "lHEC", "lHEM", "lMt", "lGOSH", "lMIS2", "crHEC", "crMt")
	emit := func(skewed bool, label string) {
		for _, r := range rows {
			if r.Skewed == skewed {
				mark := ""
				if len(r.Stalls) > 0 {
					mark = "  [stalled: " + strings.Join(r.Stalls, ",") + "]"
				}
				fmt.Fprintf(w, "%-14s | %6.2f %8.2f %6.2f %6.2f | %4d %4d %5d %5d %5d | %6.2f %6.2f%s\n",
					r.Name, r.HEMRatio, r.MtMetisRatio, r.GOSHRatio, r.MIS2Ratio,
					r.LevHEC, r.LevHEM, r.LevMtMetis, r.LevGOSH, r.LevMIS2,
					r.CrHEC, r.CrMtMetis, mark)
			}
		}
		sel := func(f func(Table4Row) float64) float64 {
			reg, sk := GroupGeoMeans(rows, func(r Table4Row) bool { return r.Skewed }, f)
			if skewed {
				return sk
			}
			return reg
		}
		fmt.Fprintf(w, "%-14s | %6.2f %8.2f %6.2f %6.2f |%31s| %6.2f %6.2f  <- geomean %s\n", "GeoMean",
			sel(func(r Table4Row) float64 { return r.HEMRatio }),
			sel(func(r Table4Row) float64 { return r.MtMetisRatio }),
			sel(func(r Table4Row) float64 { return r.GOSHRatio }),
			sel(func(r Table4Row) float64 { return r.MIS2Ratio }), "",
			sel(func(r Table4Row) float64 { return r.CrHEC }),
			sel(func(r Table4Row) float64 { return r.CrMtMetis }), label)
	}
	emit(false, "regular")
	emit(true, "skewed")
}

// FormatTable5 prints Table V.
func FormatTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintf(w, "Spectral bisection with different coarsening methods\n")
	fmt.Fprintf(w, "%-14s %9s %6s %12s %8s %8s\n", "Graph", "Time(s)", "%Coa", "EdgeCut", "HEM/", "mtMetis/")
	emit := func(skewed bool, label string) {
		for _, r := range rows {
			if r.Skewed == skewed {
				fmt.Fprintf(w, "%-14s %9.3f %6.0f %12d %8.2f %8.2f\n",
					r.Name, r.Time.Seconds(), r.CoaPct, r.Cut, r.HEMCutRatio, r.MtMetisCutRatio)
			}
		}
		sel := func(f func(Table5Row) float64) float64 {
			reg, sk := GroupGeoMeans(rows, func(r Table5Row) bool { return r.Skewed }, f)
			if skewed {
				return sk
			}
			return reg
		}
		fmt.Fprintf(w, "%-14s %9s %6.0f %12s %8.2f %8.2f  <- geomean %s\n", "GeoMean", "",
			sel(func(r Table5Row) float64 { return r.CoaPct }), "",
			sel(func(r Table5Row) float64 { return r.HEMCutRatio }),
			sel(func(r Table5Row) float64 { return r.MtMetisCutRatio }), label)
	}
	emit(false, "regular")
	emit(true, "skewed")
}

// FormatTable6 prints Table VI.
func FormatTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintf(w, "Multilevel bisection with FM refinement (cut ratios vs FM+parallel-HEC)\n")
	fmt.Fprintf(w, "%-14s %12s %8s %9s %7s %7s %9s\n",
		"Graph", "FM+HEC cut", "FM+seq/", "Spectral/", "Mts/", "mtMts/", "Sp/mtMts t")
	emit := func(skewed bool, label string) {
		for _, r := range rows {
			if r.Skewed == skewed {
				fmt.Fprintf(w, "%-14s %12d %8.2f %9.2f %7.2f %7.2f %9.2f\n",
					r.Name, r.Cut, r.SeqHECRatio, r.SpectralRatio, r.MetisRatio, r.MtMetisRatio,
					r.SpectralVsMtMetisTime)
			}
		}
		sel := func(f func(Table6Row) float64) float64 {
			reg, sk := GroupGeoMeans(rows, func(r Table6Row) bool { return r.Skewed }, f)
			if skewed {
				return sk
			}
			return reg
		}
		fmt.Fprintf(w, "%-14s %12s %8.2f %9.2f %7.2f %7.2f %9.2f  <- geomean %s\n", "GeoMean", "",
			sel(func(r Table6Row) float64 { return r.SeqHECRatio }),
			sel(func(r Table6Row) float64 { return r.SpectralRatio }),
			sel(func(r Table6Row) float64 { return r.MetisRatio }),
			sel(func(r Table6Row) float64 { return r.MtMetisRatio }),
			sel(func(r Table6Row) float64 { return r.SpectralVsMtMetisTime }), label)
	}
	emit(false, "regular")
	emit(true, "skewed")
}

// FormatFig1 prints the Fig 1 per-method one-level summary.
func FormatFig1(w io.Writer, rows []Fig1Row) {
	fmt.Fprintf(w, "Fig 1 analog: one level of coarsening on the 16-vertex demo graph\n")
	fmt.Fprintf(w, "%-10s %6s %9s %12s\n", "Method", "nc", "coarse m", "max agg size")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %9d %12d\n", r.Method, r.NC, r.CoarseM, r.MaxAggSize)
	}
}

// FormatFig2 prints the heavy-edge classification.
func FormatFig2(w io.Writer, res Fig2Result) {
	fmt.Fprintf(w, "Fig 2 analog: heavy-edge classification (create/inherit/skip)\n")
	fmt.Fprintf(w, "demo graph: create=%d inherit=%d skip=%d (nc=%d)\n",
		res.Demo.Counts[coarsen.CreateEdge], res.Demo.Counts[coarsen.InheritEdge],
		res.Demo.Counts[coarsen.SkipEdge], res.Demo.NC)
	fmt.Fprintf(w, "%-14s %10s %10s %10s\n", "Graph", "create", "inherit", "skip")
	for _, r := range res.SuiteRows {
		fmt.Fprintf(w, "%-14s %10d %10d %10d\n", r.Name, r.Create, r.Inherit, r.Skip)
	}
}

// FormatFig3 prints all three Fig 3 panels.
func FormatFig3(w io.Writer, rates []Fig3RateRow, speedups []Fig3SpeedupRow, weak []Fig3WeakRow) {
	fmt.Fprintf(w, "Fig 3 left: HEC coarsening performance rate ((2m+n)/s)\n")
	fmt.Fprintf(w, "%-14s %12s %14s\n", "Graph", "size", "rate")
	for _, r := range rates {
		fmt.Fprintf(w, "%-14s %12d %14.3e\n", r.Name, r.Size, r.Rate)
	}
	fmt.Fprintf(w, "\nFig 3 center: parallel over serial speedup (device-vs-host analog)\n")
	fmt.Fprintf(w, "%-14s %10s %10s %9s\n", "Graph", "t_serial", "t_par", "speedup")
	var all []float64
	for _, r := range speedups {
		fmt.Fprintf(w, "%-14s %10.3f %10.3f %9.2f\n",
			r.Name, r.TSerial.Seconds(), r.TDevice.Seconds(), r.Speedup)
		all = append(all, r.Speedup)
	}
	fmt.Fprintf(w, "geomean speedup: %.2f\n", geoMean(all))
	fmt.Fprintf(w, "\nFig 3 right: weak scaling (rate per family and scale)\n")
	fmt.Fprintf(w, "%-10s %6s %12s %14s\n", "Family", "scale", "size", "rate")
	for _, r := range weak {
		fmt.Fprintf(w, "%-10s %6d %12d %14.3e\n", r.Family, r.Scale, r.Size, r.Rate)
	}
}

// FormatGOSHHEC prints the GOSH vs GOSHHEC study.
func FormatGOSHHEC(w io.Writer, rows []GOSHHECRow) {
	fmt.Fprintf(w, "GOSH vs the paper's GOSH/HEC hybrid (t_GOSH/t_GOSHHEC, levels)\n")
	fmt.Fprintf(w, "%-14s %10s %7s %8s\n", "Graph", "t ratio", "lGOSH", "lHybrid")
	var ratios, levRatios []float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10.2f %7d %8d\n", r.Name, r.TimeRatio, r.LevGOSH, r.LevHybrid)
		ratios = append(ratios, r.TimeRatio)
		if r.LevHybrid > 0 {
			levRatios = append(levRatios, float64(r.LevGOSH)/float64(r.LevHybrid))
		}
	}
	fmt.Fprintf(w, "geomean: hybrid %.2fx faster, %.2fx fewer levels (paper: 1.46x, 1.18x)\n",
		geoMean(ratios), geoMean(levRatios))
}

// FormatShootout prints the all-builders comparison (construction-time
// ratios to the sort default; >1 means sort wins).
func FormatShootout(w io.Writer, rows []BuilderShootoutRow) {
	names := []string{"hash", "heap", "hybrid", "segsort", "globalsort", "spgemm"}
	fmt.Fprintf(w, "Construction strategy shootout (t_builder / t_sort)\n")
	fmt.Fprintf(w, "%-14s %9s", "Graph", "t_sort(s)")
	for _, n := range names {
		fmt.Fprintf(w, " %10s", n)
	}
	fmt.Fprintln(w)
	emit := func(skewed bool, label string) {
		for _, r := range rows {
			if r.Skewed != skewed {
				continue
			}
			fmt.Fprintf(w, "%-14s %9.3f", r.Name, r.TSort.Seconds())
			for _, n := range names {
				fmt.Fprintf(w, " %10.2f", r.Ratios[n])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-14s %9s", "GeoMean", "")
		for _, n := range names {
			reg, sk := GroupGeoMeans(rows, func(r BuilderShootoutRow) bool { return r.Skewed },
				func(r BuilderShootoutRow) float64 { return r.Ratios[n] })
			v := reg
			if skewed {
				v = sk
			}
			fmt.Fprintf(w, " %10.2f", v)
		}
		fmt.Fprintf(w, "   <- geomean %s\n", label)
	}
	emit(false, "regular")
	emit(true, "skewed")
}

// FormatConstructBench prints the isolated construction benchmark with the
// workspace-reuse ratio.
func FormatConstructBench(w io.Writer, rows []ConstructBenchRow) {
	fmt.Fprintf(w, "Isolated construction (one level, HEC mapping precomputed)\n")
	fmt.Fprintf(w, "%-14s %-12s %12s %12s %8s\n", "Graph", "Builder", "fresh(ms)", "reused(ms)", "reuse x")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-12s %12.3f %12.3f %8.2f\n",
			r.Graph, r.Builder,
			float64(r.TFresh.Microseconds())/1000,
			float64(r.TReused.Microseconds())/1000,
			r.Reuse)
	}
}

// FormatSkewSweep prints the degree-skew sweep.
func FormatSkewSweep(w io.Writer, rows []SkewRow) {
	fmt.Fprintf(w, "Degree-skew sweep (configuration model, equal n): coarsening vs tail exponent\n")
	fmt.Fprintf(w, "%8s %10s %8s %8s %10s\n", "gamma", "skew", "crHEC", "%GrCo", "hash/sort")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.2f %10.1f %8.2f %8.0f %10.2f\n",
			r.Gamma, r.Skew, r.CrHEC, r.GrCoPct, r.HashRatio)
	}
}

// FormatPremise prints the multilevel-vs-flat FM comparison.
func FormatPremise(w io.Writer, rows []PremiseRow) {
	fmt.Fprintf(w, "Multilevel premise: flat FM vs multilevel FM (ratios > 1 mean multilevel wins)\n")
	fmt.Fprintf(w, "%-14s %12s %12s %9s %9s\n", "Graph", "flat cut", "ML cut", "cut r", "time r")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12d %12d %9.2f %9.2f\n",
			r.Name, r.FlatCut, r.MLCut, r.CutRatio, r.TimeRatio)
	}
	reg, sk := GroupGeoMeans(rows, func(r PremiseRow) bool { return r.Skewed },
		func(r PremiseRow) float64 { return r.CutRatio })
	fmt.Fprintf(w, "geomean cut ratio: %.2f regular / %.2f skewed\n", reg, sk)
}

// FormatScaling prints the strong-scaling sweep.
func FormatScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintf(w, "Strong scaling: HEC coarsening time by worker count\n")
	fmt.Fprintf(w, "%-14s %8s %10s %9s\n", "Graph", "workers", "t_c(s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d %10.3f %9.2f\n", r.Name, r.Workers, r.Tc.Seconds(), r.Speedup)
	}
}

// FormatDedupAblation prints the one-sided dedup ablation.
func FormatDedupAblation(w io.Writer, rows []DedupAblationRow) {
	fmt.Fprintf(w, "Degree-based one-sided dedup ablation (construction time off/on)\n")
	fmt.Fprintf(w, "%-14s %10s %10s %9s\n", "Graph", "t_off(s)", "t_on(s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10.3f %10.3f %9.2f\n",
			r.Name, r.TOneOff.Seconds(), r.TOneOn.Seconds(), r.Speedup)
	}
}
