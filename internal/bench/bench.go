package bench

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"mlcg/internal/coarsen"
	"mlcg/internal/gen"
	"mlcg/internal/graph"
)

// Options configures a harness run.
type Options struct {
	// Runs is the number of repetitions per measurement; the median is
	// reported (the paper uses 10). Zero means 3.
	Runs int
	// Workers is the "device" parallelism (0 = GOMAXPROCS); the serial
	// baseline always uses 1.
	Workers int
	// Seed drives every random choice.
	Seed uint64
	// Scale multiplies suite sizes (1 = laptop default).
	Scale int
	// Only restricts the suite to the named instances (nil = all 20).
	Only []string
}

func (o Options) runs() int {
	if o.Runs <= 0 {
		return 3
	}
	return o.Runs
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 20210517
	}
	return o.Seed
}

// suiteCache memoizes generated suites: the harness functions each call
// Suite(), and regenerating 20 graphs per table would dominate small runs.
var suiteCache sync.Map // gen.SuiteOptions -> []gen.Instance

// Suite generates the workload collection for these options, restricted
// to Only when set. Suites are cached per (scale, seed); callers must not
// modify the returned graphs.
func (o Options) Suite() []gen.Instance {
	key := gen.SuiteOptions{Scale: o.Scale, Seed: o.seed()}
	var all []gen.Instance
	if v, ok := suiteCache.Load(key); ok {
		all = v.([]gen.Instance)
	} else {
		all = gen.Suite(key)
		suiteCache.Store(key, all)
	}
	if len(o.Only) == 0 {
		return all
	}
	want := make(map[string]bool, len(o.Only))
	for _, n := range o.Only {
		want[n] = true
	}
	var out []gen.Instance
	for _, inst := range all {
		if want[inst.Name] {
			out = append(out, inst)
		}
	}
	return out
}

// medianDuration returns the median of runs timings of f.
func medianDuration(runs int, f func()) time.Duration {
	ts := make([]time.Duration, runs)
	for i := range ts {
		t0 := time.Now()
		f()
		ts[i] = time.Since(t0)
	}
	sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
	return ts[len(ts)/2]
}

// geoMean returns the geometric mean of xs, ignoring non-positive entries
// (used for ratio columns where some rows are missing, the paper's OOM
// analog).
func geoMean(xs []float64) float64 {
	prod := 1.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			prod *= x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	// n-th root via repeated exponentiation-free approach.
	return pow(prod, 1/float64(n))
}

func pow(x, e float64) float64 { return math.Pow(x, e) }

// hierarchyFor runs the multilevel coarsener once and returns the result.
func hierarchyFor(g *graph.Graph, mapper coarsen.Mapper, builder coarsen.Builder, workers int, seed uint64) (*coarsen.Hierarchy, error) {
	return hierarchyForD(g, mapper, builder, workers, seed, 0)
}

// hierarchyForD is hierarchyFor with an explicit DiscardBelow: the
// mapcompare rows disable the discard rule (-1) so aggressive aggregators
// (the D2-MIS pair can collapse a skewed graph below 10 vertices in one
// level) still record the work they did instead of an empty hierarchy.
func hierarchyForD(g *graph.Graph, mapper coarsen.Mapper, builder coarsen.Builder, workers int, seed uint64, discard int) (*coarsen.Hierarchy, error) {
	c := &coarsen.Coarsener{Mapper: mapper, Builder: builder, Seed: seed, Workers: workers, DiscardBelow: discard}
	return c.Run(g)
}
