package bench

import (
	"sort"
	"time"

	"mlcg/internal/obs"
)

// The obs experiment records the telemetry tax itself: the per-call cost
// of obs.Histogram.Observe on the enabled and the disabled (nil receiver)
// path. It is the baseline twin of BenchmarkHistogramOverhead in
// internal/obs — the committed number that lets a review spot the record
// path growing a lock or an allocation. Both rows are nanoseconds per
// call, far under the comparator's noise floor, so they inform rather
// than gate.

// measureObsOverhead times iters Observe calls per repetition and reports
// the median per-call cost for the enabled and disabled paths.
func measureObsOverhead(runs int) []Metric {
	const iters = 1 << 20
	if runs <= 0 {
		runs = 3
	}
	perCall := func(h *obs.Histogram) float64 {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			h.Observe(time.Duration(i))
		}
		return float64(time.Since(t0)) / iters
	}
	med := func(f func() float64) (float64, []float64) {
		vals := make([]float64, runs)
		for i := range vals {
			vals[i] = f()
		}
		raw := append([]float64(nil), vals...)
		sort.Float64s(vals)
		return vals[len(vals)/2], raw
	}
	mk := func(name string, v float64, samples []float64) Metric {
		return Metric{
			Experiment: "obs", Instance: "hist", Mapper: "-", Builder: "-", Workers: 1,
			Name: name, Unit: "ns", Direction: LowerIsBetter, Value: v, Samples: samples,
		}
	}
	enabled, enRaw := med(func() float64 { return perCall(obs.NewHistogram("bench")) })
	disabled, disRaw := med(func() float64 { return perCall(nil) })
	return []Metric{
		mk("hist_record_ns", enabled, enRaw),
		mk("hist_record_disabled_ns", disabled, disRaw),
	}
}
