package bench

import (
	"fmt"
	"sort"
	"time"

	"mlcg/internal/coarsen"
	"mlcg/internal/gen"
	"mlcg/internal/partition"
)

// Table1Row is one row of the Table I analog: the workload collection.
type Table1Row struct {
	Name, Domain, Generator string
	Skewed                  bool
	M, N                    int64
	Skew                    float64
}

// Table1 summarizes the suite.
func Table1(opt Options) []Table1Row {
	var rows []Table1Row
	for _, inst := range opt.Suite() {
		s := inst.Graph.ComputeStats()
		rows = append(rows, Table1Row{
			Name: inst.Name, Domain: inst.Domain, Generator: inst.Comment,
			Skewed: inst.Skewed, M: s.M, N: s.N, Skew: s.Skew,
		})
	}
	return rows
}

// Table2Row is one row of Tables II/III: HEC coarsening with different
// construction strategies.
type Table2Row struct {
	Name   string
	Skewed bool
	// Tc is the total multilevel coarsening time with sort construction.
	Tc time.Duration
	// GrCoPct is the percentage of Tc spent in graph construction.
	GrCoPct float64
	// HashRatio and SpGEMMRatio are construction-time ratios
	// t_GrCo-alt / t_GrCo-sort (> 1 means sort wins).
	HashRatio, SpGEMMRatio float64
	// Stalled reports that at least one measured hierarchy ended in a
	// mapping stall (its partial times are still included in Tc via
	// Hierarchy.TotalTime, which counts StallStats).
	Stalled bool
}

// Table23 measures HEC-based coarsening with sort/hash/SpGEMM
// construction. workers selects the device role: the paper's Table II is
// the GPU (use full parallelism) and Table III the 32-core CPU (per the
// documented substitution, any second thread count; the shapes, not the
// absolute times, are the claim).
func Table23(opt Options, workers int) []Table2Row {
	runs := opt.runs()
	var rows []Table2Row
	for _, inst := range opt.Suite() {
		g := inst.Graph
		// Per run, record (construction, total) as a pair and report the
		// run with the median total, so %GrCo is internally consistent.
		stalled := false
		buildTime := func(b coarsen.Builder) (time.Duration, time.Duration) {
			type pair struct{ build, total time.Duration }
			ps := make([]pair, runs)
			for i := range ps {
				h, err := hierarchyFor(g, coarsen.HEC{}, b, workers, opt.seed())
				if err != nil {
					panic(err)
				}
				stalled = stalled || h.Stalled
				ps[i] = pair{h.BuildTime(), h.TotalTime()}
			}
			sort.Slice(ps, func(a, c int) bool { return ps[a].total < ps[c].total })
			med := ps[len(ps)/2]
			return med.build, med.total
		}
		sortBT, sortTotal := buildTime(coarsen.BuildSort{})
		hashBT, _ := buildTime(coarsen.BuildHash{})
		spgemmBT, _ := buildTime(coarsen.BuildSpGEMM{})
		rows = append(rows, Table2Row{
			Name:        inst.Name,
			Skewed:      inst.Skewed,
			Tc:          sortTotal,
			GrCoPct:     100 * float64(sortBT) / float64(sortTotal),
			HashRatio:   float64(hashBT) / float64(sortBT),
			SpGEMMRatio: float64(spgemmBT) / float64(sortBT),
			Stalled:     stalled,
		})
	}
	return rows
}

// HECVariantRow compares the three HEC parallelizations (Section IV.A).
type HECVariantRow struct {
	Name                  string
	Skewed                bool
	THEC                  time.Duration
	HEC2Ratio, HEC3Ratio  float64 // t_variant / t_HEC
	LevHEC, LevHEC2       int
	LevHEC3               int
	FirstTwoPassPct       float64 // % of level-1 vertices mapped in two passes
	SecondLevelTwoPassPct float64
}

// HECVariants measures HEC vs HEC2 vs HEC3 and the pass statistics the
// paper reports (99.4% / 96.7% of vertices mapped within two passes).
func HECVariants(opt Options) []HECVariantRow {
	runs := opt.runs()
	workers := opt.workers()
	var rows []HECVariantRow
	for _, inst := range opt.Suite() {
		g := inst.Graph
		timeOf := func(m coarsen.Mapper) (time.Duration, int, *coarsen.Hierarchy) {
			var h *coarsen.Hierarchy
			t := medianDuration(runs, func() {
				var err error
				h, err = hierarchyFor(g, m, coarsen.BuildSort{}, workers, opt.seed())
				if err != nil {
					panic(err)
				}
			})
			return t, h.Levels(), h
		}
		tHEC, lHEC, hHEC := timeOf(coarsen.HEC{})
		tHEC2, lHEC2, _ := timeOf(coarsen.HEC2{})
		tHEC3, lHEC3, _ := timeOf(coarsen.HEC3{})
		row := HECVariantRow{
			Name: inst.Name, Skewed: inst.Skewed,
			THEC:      tHEC,
			HEC2Ratio: float64(tHEC2) / float64(tHEC),
			HEC3Ratio: float64(tHEC3) / float64(tHEC),
			LevHEC:    lHEC, LevHEC2: lHEC2, LevHEC3: lHEC3,
		}
		pct := func(level int) float64 {
			if level >= len(hHEC.Stats) {
				return 0
			}
			st := hHEC.Stats[level]
			var firstTwo, total int64
			for i, c := range st.PassMapped {
				if i < 2 {
					firstTwo += c
				}
				total += c
			}
			if total == 0 {
				return 0
			}
			return 100 * float64(firstTwo) / float64(total)
		}
		row.FirstTwoPassPct = pct(0)
		row.SecondLevelTwoPassPct = pct(1)
		rows = append(rows, row)
	}
	return rows
}

// Table4Row compares coarse-mapping methods (Table IV).
type Table4Row struct {
	Name   string
	Skewed bool
	// Ratios t_alt / t_HEC; 0 marks a skipped/failed run (paper's OOM).
	HEMRatio, MtMetisRatio, GOSHRatio, MIS2Ratio float64
	// Levels per method.
	LevHEC, LevHEM, LevMtMetis, LevGOSH, LevMIS2 int
	// Average coarsening ratios for HEC and mt-Metis coarsening.
	CrHEC, CrMtMetis float64
	// Stalls names the methods whose hierarchy ended in a mapping stall,
	// instead of silently dropping Hierarchy.Stalled.
	Stalls []string
}

// Table4 measures the alternative mapping methods against HEC with
// sort-based construction.
func Table4(opt Options) []Table4Row {
	runs := opt.runs()
	workers := opt.workers()
	var rows []Table4Row
	for _, inst := range opt.Suite() {
		g := inst.Graph
		var stalls []string
		measure := func(m coarsen.Mapper) (time.Duration, int, float64) {
			var h *coarsen.Hierarchy
			t := medianDuration(runs, func() {
				var err error
				h, err = hierarchyFor(g, m, coarsen.BuildSort{}, workers, opt.seed())
				if err != nil {
					panic(err)
				}
			})
			if h.Stalled {
				stalls = append(stalls, m.Name())
			}
			return t, h.Levels(), h.CoarseningRatio()
		}
		tHEC, lHEC, crHEC := measure(coarsen.HEC{})
		tHEM, lHEM, _ := measure(coarsen.HEM{})
		tMt, lMt, crMt := measure(coarsen.TwoHop{})
		tGOSH, lGOSH, _ := measure(coarsen.GOSH{})
		tMIS2, lMIS2, _ := measure(coarsen.MIS2{})
		rows = append(rows, Table4Row{
			Name: inst.Name, Skewed: inst.Skewed,
			HEMRatio:     float64(tHEM) / float64(tHEC),
			MtMetisRatio: float64(tMt) / float64(tHEC),
			GOSHRatio:    float64(tGOSH) / float64(tHEC),
			MIS2Ratio:    float64(tMIS2) / float64(tHEC),
			LevHEC:       lHEC, LevHEM: lHEM, LevMtMetis: lMt, LevGOSH: lGOSH, LevMIS2: lMIS2,
			CrHEC: crHEC, CrMtMetis: crMt,
			Stalls: stalls,
		})
	}
	return rows
}

// GOSHHECRow compares the paper's new GOSH/HEC hybrid against plain GOSH
// (Section IV.B: "the algorithm based on GOSH and HEC is 1.46× faster
// than GOSH ... and also results in 1.18× lower levels").
type GOSHHECRow struct {
	Name      string
	Skewed    bool
	TimeRatio float64 // t_GOSH / t_GOSHHEC (> 1 means the hybrid is faster)
	LevGOSH   int
	LevHybrid int
}

// GOSHHECStudy measures GOSH vs GOSHHEC over the suite.
func GOSHHECStudy(opt Options) []GOSHHECRow {
	runs := opt.runs()
	workers := opt.workers()
	var rows []GOSHHECRow
	for _, inst := range opt.Suite() {
		g := inst.Graph
		measure := func(m coarsen.Mapper) (time.Duration, int) {
			var h *coarsen.Hierarchy
			t := medianDuration(runs, func() {
				var err error
				h, err = hierarchyFor(g, m, coarsen.BuildSort{}, workers, opt.seed())
				if err != nil {
					panic(err)
				}
			})
			return t, h.Levels()
		}
		tG, lG := measure(coarsen.GOSH{})
		tH, lH := measure(coarsen.GOSHHEC{})
		rows = append(rows, GOSHHECRow{
			Name: inst.Name, Skewed: inst.Skewed,
			TimeRatio: float64(tG) / float64(tH),
			LevGOSH:   lG, LevHybrid: lH,
		})
	}
	return rows
}

// Table5Row reports multilevel spectral bisection with different
// coarsening methods (Table V).
type Table5Row struct {
	Name   string
	Skewed bool
	Time   time.Duration // total partitioning time with HEC coarsening
	CoaPct float64       // % of time in coarsening
	Cut    int64         // edge cut with HEC coarsening (median)
	// Cut ratios cut_alt / cut_HEC for HEM and mt-Metis (two-hop)
	// coarsening under the same spectral refinement.
	HEMCutRatio, MtMetisCutRatio float64
}

// Table5 runs spectral bisection on every suite graph with HEC, HEM, and
// two-hop coarsening.
func Table5(opt Options) []Table5Row {
	runs := opt.runs()
	workers := opt.workers()
	var rows []Table5Row
	for _, inst := range opt.Suite() {
		g := inst.Graph
		spectral := func(m coarsen.Mapper) (int64, time.Duration, float64) {
			cuts := make([]int64, 0, runs)
			var elapsed, coa time.Duration
			for r := 0; r < runs; r++ {
				b := &partition.SpectralBisector{
					Coarsener: coarsen.Coarsener{Mapper: m, Builder: coarsen.BuildSort{}, Seed: opt.seed() + uint64(r), Workers: workers},
					Fiedler:   partition.FiedlerOptions{MaxIter: 300, Workers: workers},
					Seed:      opt.seed() + uint64(r),
				}
				res, err := b.Bisect(g)
				if err != nil {
					panic(err)
				}
				cuts = append(cuts, res.Cut)
				elapsed += res.TotalTime()
				coa += res.CoarsenTime
			}
			return medianInt64(cuts), elapsed / time.Duration(runs), 100 * float64(coa) / float64(elapsed)
		}
		cutHEC, tHEC, coaPct := spectral(coarsen.HEC{})
		cutHEM, _, _ := spectral(coarsen.HEM{})
		cutMt, _, _ := spectral(coarsen.TwoHop{})
		rows = append(rows, Table5Row{
			Name: inst.Name, Skewed: inst.Skewed,
			Time: tHEC, CoaPct: coaPct, Cut: cutHEC,
			HEMCutRatio:     ratio64(cutHEM, cutHEC),
			MtMetisCutRatio: ratio64(cutMt, cutHEC),
		})
	}
	return rows
}

// Table6Row compares FM-refined bisection against the alternatives
// (Table VI).
type Table6Row struct {
	Name   string
	Skewed bool
	// Cut is the edge cut of FM + parallel HEC coarsening (the paper's
	// FM+GPU-HEC column; full parallelism plays the GPU role).
	Cut int64
	// Ratios cut_alt / Cut.
	SeqHECRatio   float64 // FM + single-worker HEC (the paper's FM+CPU-HEC)
	SpectralRatio float64 // spectral + HEC (Table V pipeline)
	MetisRatio    float64 // Metis-style baseline (HEMSeq + GGG + FM)
	MtMetisRatio  float64 // mt-Metis-style baseline (TwoHop + GGG + FM)
	// SpectralVsMtMetisTime is t_spectral+HEC / t_mtMetis-style.
	SpectralVsMtMetisTime float64
}

// Table6 measures the FM pipelines and baselines.
func Table6(opt Options) []Table6Row {
	runs := opt.runs()
	workers := opt.workers()
	var rows []Table6Row
	for _, inst := range opt.Suite() {
		g := inst.Graph
		fmCut := func(b *partition.FMBisector) (int64, time.Duration) {
			cuts := make([]int64, 0, runs)
			var elapsed time.Duration
			for r := 0; r < runs; r++ {
				b.Seed = opt.seed() + uint64(r)
				b.Coarsener.Seed = b.Seed
				res, err := b.Bisect(g)
				if err != nil {
					panic(err)
				}
				cuts = append(cuts, res.Cut)
				elapsed += res.TotalTime()
			}
			return medianInt64(cuts), elapsed / time.Duration(runs)
		}
		cutPar, _ := fmCut(partition.NewHECFM(opt.seed(), workers))
		cutSeq, _ := fmCut(partition.NewHECFM(opt.seed(), 1))
		cutMetis, _ := fmCut(partition.NewMetisLike(opt.seed()))
		cutMt, tMt := fmCut(partition.NewMtMetisLike(opt.seed(), workers))

		// Spectral pipeline (cut + time) for the ratio columns.
		sp := &partition.SpectralBisector{
			Coarsener: coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: coarsen.BuildSort{}, Seed: opt.seed(), Workers: workers},
			Fiedler:   partition.FiedlerOptions{MaxIter: 300, Workers: workers},
			Seed:      opt.seed(),
		}
		var cutSp int64
		var tSp time.Duration
		{
			cuts := make([]int64, 0, runs)
			var elapsed time.Duration
			for r := 0; r < runs; r++ {
				sp.Seed = opt.seed() + uint64(r)
				sp.Coarsener.Seed = sp.Seed
				res, err := sp.Bisect(g)
				if err != nil {
					panic(err)
				}
				cuts = append(cuts, res.Cut)
				elapsed += res.TotalTime()
			}
			cutSp = medianInt64(cuts)
			tSp = elapsed / time.Duration(runs)
		}

		rows = append(rows, Table6Row{
			Name: inst.Name, Skewed: inst.Skewed,
			Cut:                   cutPar,
			SeqHECRatio:           ratio64(cutSeq, cutPar),
			SpectralRatio:         ratio64(cutSp, cutPar),
			MetisRatio:            ratio64(cutMetis, cutPar),
			MtMetisRatio:          ratio64(cutMt, cutPar),
			SpectralVsMtMetisTime: float64(tSp) / float64(tMt),
		})
	}
	return rows
}

// BuilderShootoutRow compares every registered construction strategy on
// one graph (construction-time ratios to the sort default).
type BuilderShootoutRow struct {
	Name   string
	Skewed bool
	TSort  time.Duration
	// Ratios[builder] = t_builder / t_sort for every non-sort builder.
	Ratios map[string]float64
}

// BuilderShootout measures all construction strategies — the paper's
// sort/hash/SpGEMM comparison extended to the heap, hybrid, segmented-sort
// and global-sort variants this module also implements.
func BuilderShootout(opt Options) []BuilderShootoutRow {
	runs := opt.runs()
	workers := opt.workers()
	var rows []BuilderShootoutRow
	for _, inst := range opt.Suite() {
		g := inst.Graph
		bt := func(b coarsen.Builder) time.Duration {
			ds := make([]time.Duration, runs)
			for i := range ds {
				h, err := hierarchyFor(g, coarsen.HEC{}, b, workers, opt.seed())
				if err != nil {
					panic(err)
				}
				ds[i] = h.BuildTime()
			}
			sort.Slice(ds, func(a, c int) bool { return ds[a] < ds[c] })
			return ds[len(ds)/2]
		}
		row := BuilderShootoutRow{Name: inst.Name, Skewed: inst.Skewed, Ratios: map[string]float64{}}
		var tSort time.Duration
		for _, name := range coarsen.BuilderNames() {
			b, err := coarsen.BuilderByName(name)
			if err != nil {
				panic(err)
			}
			t := bt(b)
			if name == "sort" {
				tSort = t
				row.TSort = t
				continue
			}
			row.Ratios[name] = float64(t) / float64(tSort)
		}
		rows = append(rows, row)
	}
	return rows
}

// ConstructBenchRow reports one builder on one graph: a single isolated
// construction level (HEC mapping precomputed and excluded) with a fresh
// workspace per run versus one workspace reused across runs. The reuse
// ratio is the steady-state payoff of the level arena in Coarsener.Run.
type ConstructBenchRow struct {
	Graph   string
	Skewed  bool
	Builder string
	// TFresh/TReused are median times for one Build with a fresh versus a
	// reused Workspace. For builders without workspace support both report
	// the plain Build path.
	TFresh  time.Duration
	TReused time.Duration
	// Reuse = TFresh / TReused.
	Reuse float64
}

// ConstructBench isolates coarse-graph construction per builder — the
// construction column of Tables II/III — and quantifies the two-phase
// scatter workspace reuse. Runs on the skewed representatives by default;
// restrict or extend with Options.Only.
func ConstructBench(opt Options) []ConstructBenchRow {
	runs := opt.runs()
	workers := opt.workers()
	sel := opt
	if len(sel.Only) == 0 {
		sel.Only = []string{"kron21", "ppa"}
	}
	var rows []ConstructBenchRow
	for _, inst := range sel.Suite() {
		g := inst.Graph
		g.MaterializeVWgt()
		m, err := coarsen.HEC{}.Map(g, sel.seed(), workers)
		if err != nil {
			panic(err)
		}
		for _, name := range coarsen.BuilderNames() {
			b, err := coarsen.BuilderByName(name)
			if err != nil {
				panic(err)
			}
			row := ConstructBenchRow{Graph: inst.Name, Skewed: inst.Skewed, Builder: name}
			row.TFresh = medianDuration(runs, func() {
				if _, err := b.Build(g, m, workers); err != nil {
					panic(err)
				}
			})
			if wb, ok := b.(coarsen.WorkspaceBuilder); ok {
				ws := coarsen.NewWorkspace()
				// Warm the arena outside the measurement.
				if _, err := wb.BuildWith(ws, g, m, workers); err != nil {
					panic(err)
				}
				row.TReused = medianDuration(runs, func() {
					if _, err := wb.BuildWith(ws, g, m, workers); err != nil {
						panic(err)
					}
				})
			} else {
				row.TReused = row.TFresh
			}
			if row.TReused > 0 {
				row.Reuse = float64(row.TFresh) / float64(row.TReused)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// ratio64 returns a/b as float, 0 when either input is non-positive
// (degenerate cuts are excluded from geometric means like the paper's OOM
// entries).
func ratio64(a, b int64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func medianInt64(xs []int64) int64 {
	s := append([]int64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort; runs are tiny
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	return s[len(s)/2]
}

// GroupGeoMeans computes geometric means of a selector over the regular
// and skewed halves of any row set.
func GroupGeoMeans[T any](rows []T, skewed func(T) bool, val func(T) float64) (regular, skewedMean float64) {
	var rs, ss []float64
	for _, r := range rows {
		if skewed(r) {
			ss = append(ss, val(r))
		} else {
			rs = append(rs, val(r))
		}
	}
	return geoMean(rs), geoMean(ss)
}

// instanceByName finds a suite instance (helper for focused benches).
func instanceByName(insts []gen.Instance, name string) (gen.Instance, error) {
	for _, inst := range insts {
		if inst.Name == name {
			return inst, nil
		}
	}
	return gen.Instance{}, fmt.Errorf("bench: no suite instance named %q", name)
}
