package bench

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"mlcg/internal/coarsen"
	"mlcg/internal/gen"
	"mlcg/internal/graph"
	"mlcg/internal/hierfmt"
)

// The io experiments record ingest and persistence bandwidth — the
// end-to-end tax of getting graphs into and hierarchies out of the
// process, measured in MB/s (10^6 bytes of on-the-wire format per second
// of wall time). Three ingest formats are compared on the same graph:
//
//   - "edgelist": the sequential text parser (graph.ReadEdgeList)
//   - "edgelist-stream": the sharded parallel text parser
//     (graph.StreamEdges) at each configured worker count
//   - "binary": the legacy length-prefixed CSR container (graph.ReadBinary)
//   - "mlcg": the versioned hierfmt container (docs/FORMAT.md)
//
// and the "hierio" experiment times hierfmt.Save/Load of a full coarsening
// hierarchy, raw and delta-varint. Bandwidth is computed against the bytes
// actually read or written, so the varint rows divide by a smaller byte
// count — compare them through io_bytes, which records the footprint.

// ioGraph builds the fixed measurement graph: an RMAT instance whose
// skewed degrees exercise both the text tokenizer's long rows and the
// varint coder's run-length spread. Scale bumps it for -scale runs.
func ioGraph(scale int) (*graph.Graph, string) {
	s := 15
	if scale > 1 {
		s = 16
	}
	return gen.RMAT(s, 8, 42), fmt.Sprintf("rmat%d", s)
}

// medianOf runs f runs times and returns (median seconds, raw samples in
// nanoseconds) — the same reporting convention as measureCombo.
func medianOf(runs int, f func() error) (float64, []float64, error) {
	vals := make([]float64, runs)
	for i := range vals {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, nil, err
		}
		vals[i] = float64(time.Since(t0))
	}
	raw := append([]float64(nil), vals...)
	sort.Float64s(vals)
	return vals[len(vals)/2] / float64(time.Second), raw, nil
}

// measureIOBandwidth produces the "ingest" and "hierio" metric rows.
func measureIOBandwidth(cfg RunConfig) ([]Metric, error) {
	runs := cfg.Runs
	if runs <= 0 {
		runs = 3
	}
	g, inst := ioGraph(cfg.Scale)

	var out []Metric
	mk := func(experiment, format string, workers int, name, unit string, dir Direction, v float64, samples []float64) {
		out = append(out, Metric{
			Experiment: experiment, Instance: inst, Mapper: "-", Builder: format,
			Workers: workers, Name: name, Unit: unit, Direction: dir,
			Value: v, Samples: samples,
		})
	}
	// ingestRow times one parse of data and records MB/s plus the byte
	// footprint of the on-the-wire format.
	ingestRow := func(format string, workers int, data []byte, parse func([]byte) (*graph.Graph, error)) error {
		sec, raw, err := medianOf(runs, func() error {
			g2, err := parse(data)
			if err != nil {
				return err
			}
			if g2.N() != g.N() || g2.M() != g.M() {
				return fmt.Errorf("bench: %s ingest changed the graph (n=%d m=%d, want n=%d m=%d)",
					format, g2.N(), g2.M(), g.N(), g.M())
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("bench: ingest %s: %w", format, err)
		}
		mk("ingest", format, workers, "ingest_mbps", "MB/s", HigherIsBetter, float64(len(data))/1e6/sec, raw)
		mk("ingest", format, workers, "io_bytes", "bytes", Informational, float64(len(data)), nil)
		return nil
	}

	var text bytes.Buffer
	if err := g.WriteEdgeList(&text); err != nil {
		return nil, err
	}
	if err := ingestRow("edgelist", 1, text.Bytes(), func(b []byte) (*graph.Graph, error) {
		return graph.ReadEdgeList(bytes.NewReader(b))
	}); err != nil {
		return nil, err
	}
	for _, w := range resolvedWorkers(cfg.Workers) {
		w := w
		if err := ingestRow("edgelist-stream", w, text.Bytes(), func(b []byte) (*graph.Graph, error) {
			return graph.StreamEdges(bytes.NewReader(b), w)
		}); err != nil {
			return nil, err
		}
	}
	var bin bytes.Buffer
	if err := g.WriteBinary(&bin); err != nil {
		return nil, err
	}
	if err := ingestRow("binary", 1, bin.Bytes(), func(b []byte) (*graph.Graph, error) {
		return graph.ReadBinary(bytes.NewReader(b))
	}); err != nil {
		return nil, err
	}
	var mlcg bytes.Buffer
	if err := hierfmt.SaveGraph(&mlcg, g, hierfmt.SaveOptions{}); err != nil {
		return nil, err
	}
	if err := ingestRow("mlcg", 1, mlcg.Bytes(), func(b []byte) (*graph.Graph, error) {
		g2, _, err := hierfmt.LoadGraph(b, hierfmt.LoadOptions{})
		return g2, err
	}); err != nil {
		return nil, err
	}

	// Hierarchy persistence: save and load a real coarsening hierarchy in
	// the container format, raw sections and delta-varint adjacency.
	c := &coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: &coarsen.AutoConstruct{}, Seed: 42, Workers: 1}
	h, err := c.Run(g)
	if err != nil {
		return nil, err
	}
	for _, enc := range []struct {
		format string
		opt    hierfmt.SaveOptions
	}{
		{"raw", hierfmt.SaveOptions{}},
		{"varint", hierfmt.SaveOptions{CompressAdj: true}},
	} {
		var buf bytes.Buffer
		if err := hierfmt.Save(&buf, h, enc.opt); err != nil {
			return nil, err
		}
		size := float64(buf.Len())
		sec, raw, err := medianOf(runs, func() error {
			var b bytes.Buffer
			b.Grow(buf.Len())
			return hierfmt.Save(&b, h, enc.opt)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: hierio save %s: %w", enc.format, err)
		}
		mk("hierio", enc.format, 1, "save_mbps", "MB/s", HigherIsBetter, size/1e6/sec, raw)
		data := buf.Bytes()
		sec, raw, err = medianOf(runs, func() error {
			h2, _, err := hierfmt.Load(data, hierfmt.LoadOptions{})
			if err != nil {
				return err
			}
			if h2.Levels() != h.Levels() {
				return fmt.Errorf("bench: hierio load changed level count")
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench: hierio load %s: %w", enc.format, err)
		}
		mk("hierio", enc.format, 1, "load_mbps", "MB/s", HigherIsBetter, size/1e6/sec, raw)
		mk("hierio", enc.format, 1, "io_bytes", "bytes", Informational, size, nil)
	}
	return out, nil
}
