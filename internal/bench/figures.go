package bench

import (
	"fmt"
	"sort"
	"time"

	"mlcg/internal/coarsen"
	"mlcg/internal/gen"
	"mlcg/internal/graph"
	"mlcg/internal/par"
	"mlcg/internal/partition"
)

// Fig1Row is one method's one-level coarsening summary on a demo graph
// (Fig. 1: "coarse graphs produced after one level of coarsening").
type Fig1Row struct {
	Method     string
	NC         int32
	CoarseM    int64
	MaxAggSize int
}

// Fig1Demo returns the 16-vertex demo graph used for the Fig 1/Fig 2
// illustrations: two communities with a weak bridge and varied weights.
func Fig1Demo() *graph.Graph {
	e := []graph.Edge{
		{U: 0, V: 1, W: 4}, {U: 0, V: 2, W: 1}, {U: 1, V: 2, W: 2},
		{U: 1, V: 3, W: 3}, {U: 2, V: 3, W: 5}, {U: 3, V: 4, W: 1},
		{U: 4, V: 5, W: 6}, {U: 4, V: 6, W: 2}, {U: 5, V: 6, W: 3},
		{U: 5, V: 7, W: 2}, {U: 6, V: 7, W: 4}, {U: 7, V: 8, W: 1},
		{U: 8, V: 9, W: 5}, {U: 8, V: 10, W: 2}, {U: 9, V: 10, W: 3},
		{U: 9, V: 11, W: 4}, {U: 10, V: 11, W: 1}, {U: 11, V: 12, W: 2},
		{U: 12, V: 13, W: 6}, {U: 12, V: 14, W: 1}, {U: 13, V: 14, W: 2},
		{U: 13, V: 15, W: 3}, {U: 14, V: 15, W: 5}, {U: 15, V: 0, W: 1},
	}
	return graph.MustFromEdges(16, e)
}

// Fig1 coarsens the demo graph one level with every mapping method.
func Fig1(opt Options) ([]Fig1Row, error) {
	g := Fig1Demo()
	var rows []Fig1Row
	for _, name := range coarsen.MapperNames() {
		mapper, err := coarsen.MapperByName(name)
		if err != nil {
			return nil, err
		}
		m, err := mapper.Map(g, opt.seed(), 1)
		if err != nil {
			return nil, err
		}
		cg, err := coarsen.BuildSort{}.Build(g, m, 1)
		if err != nil {
			return nil, err
		}
		sizes := make([]int, m.NC)
		maxSize := 0
		for _, a := range m.M {
			sizes[a]++
			if sizes[a] > maxSize {
				maxSize = sizes[a]
			}
		}
		rows = append(rows, Fig1Row{Method: name, NC: m.NC, CoarseM: cg.M(), MaxAggSize: maxSize})
	}
	return rows, nil
}

// Fig2Result carries the heavy-edge classification (Fig. 2) for the demo
// graph and aggregate statistics across the suite.
type Fig2Result struct {
	Demo      *coarsen.Classification
	SuiteRows []Fig2Row
}

// Fig2Row is the per-graph create/inherit/skip breakdown.
type Fig2Row struct {
	Name                  string
	Create, Inherit, Skip int64
}

// Fig2 classifies heavy edges on the demo graph and the suite.
func Fig2(opt Options) Fig2Result {
	res := Fig2Result{Demo: coarsen.ClassifyHeavyEdges(Fig1Demo(), opt.seed())}
	for _, inst := range opt.Suite() {
		c := coarsen.ClassifyHeavyEdges(inst.Graph, opt.seed())
		res.SuiteRows = append(res.SuiteRows, Fig2Row{
			Name:    inst.Name,
			Create:  c.Counts[coarsen.CreateEdge],
			Inherit: c.Counts[coarsen.InheritEdge],
			Skip:    c.Counts[coarsen.SkipEdge],
		})
	}
	return res
}

// Fig3RateRow is the performance-rate plot (Fig. 3 left): graph size
// (2m+n) processed per second of HEC coarsening.
type Fig3RateRow struct {
	Name   string
	Skewed bool
	Size   int64
	Rate   float64 // (2m+n) / seconds
}

// Fig3Rate measures the normalized coarsening rate at full parallelism.
func Fig3Rate(opt Options) []Fig3RateRow {
	runs := opt.runs()
	workers := opt.workers()
	var rows []Fig3RateRow
	for _, inst := range opt.Suite() {
		g := inst.Graph
		t := medianDuration(runs, func() {
			if _, err := hierarchyFor(g, coarsen.HEC{}, coarsen.BuildSort{}, workers, opt.seed()); err != nil {
				panic(err)
			}
		})
		rows = append(rows, Fig3RateRow{
			Name: inst.Name, Skewed: inst.Skewed, Size: g.Size(),
			Rate: float64(g.Size()) / t.Seconds(),
		})
	}
	return rows
}

// Fig3SpeedupRow is the parallel-over-serial speedup (Fig. 3 center; the
// GPU-over-CPU comparison under the documented substitution).
type Fig3SpeedupRow struct {
	Name    string
	Skewed  bool
	TSerial time.Duration
	TDevice time.Duration
	Speedup float64
}

// Fig3Speedup compares full parallelism against single-worker execution.
func Fig3Speedup(opt Options) []Fig3SpeedupRow {
	runs := opt.runs()
	workers := opt.workers()
	var rows []Fig3SpeedupRow
	for _, inst := range opt.Suite() {
		g := inst.Graph
		tPar := medianDuration(runs, func() {
			if _, err := hierarchyFor(g, coarsen.HEC{}, coarsen.BuildSort{}, workers, opt.seed()); err != nil {
				panic(err)
			}
		})
		tSer := medianDuration(runs, func() {
			if _, err := hierarchyFor(g, coarsen.HEC{}, coarsen.BuildSort{}, 1, opt.seed()); err != nil {
				panic(err)
			}
		})
		rows = append(rows, Fig3SpeedupRow{
			Name: inst.Name, Skewed: inst.Skewed,
			TSerial: tSer, TDevice: tPar,
			Speedup: float64(tSer) / float64(tPar),
		})
	}
	return rows
}

// Fig3WeakRow is one point of the weak-scaling study (Fig. 3 right).
type Fig3WeakRow struct {
	Family string
	Scale  int
	Size   int64
	Rate   float64
}

// Fig3WeakScaling measures the rgg/delaunay/kron generator families at
// increasing scales.
func Fig3WeakScaling(opt Options, scales []int) ([]Fig3WeakRow, error) {
	if len(scales) == 0 {
		scales = []int{1, 2, 4, 8}
	}
	runs := opt.runs()
	workers := opt.workers()
	var rows []Fig3WeakRow
	for _, family := range []string{"rgg", "delaunay", "kron"} {
		for _, s := range scales {
			g, err := gen.FamilyGraph(family, s, opt.seed())
			if err != nil {
				return nil, fmt.Errorf("bench: %w", err)
			}
			t := medianDuration(runs, func() {
				if _, err := hierarchyFor(g, coarsen.HEC{}, coarsen.BuildSort{}, workers, opt.seed()); err != nil {
					panic(err)
				}
			})
			rows = append(rows, Fig3WeakRow{
				Family: family, Scale: s, Size: g.Size(),
				Rate: float64(g.Size()) / t.Seconds(),
			})
		}
	}
	return rows, nil
}

// SkewRow is one point of the degree-skew sweep: coarsening behaviour on
// configuration-model graphs with a controlled power-law exponent.
type SkewRow struct {
	Gamma     float64
	Skew      float64 // measured Δ/(2m/n)
	CrHEC     float64 // HEC per-level coarsening ratio
	GrCoPct   float64 // %time in construction (sort)
	HashRatio float64 // hash/sort construction-time ratio
}

// SkewSweep isolates the paper's regular-vs-skewed axis: graphs of equal
// size whose only varying property is the degree-distribution tail. The
// paper's groups differ in many ways at once; this sweep shows the same
// trends (construction share and HEC aggressiveness grow with skew)
// emerging from skew alone.
func SkewSweep(opt Options, gammas []float64) []SkewRow {
	if len(gammas) == 0 {
		gammas = []float64{5, 3, 2.6, 2.3, 2.1}
	}
	runs := opt.runs()
	workers := opt.workers()
	var rows []SkewRow
	for _, gamma := range gammas {
		g := gen.PowerLaw(20000*maxInt(opt.Scale, 1), gamma, 2, 2000, opt.seed())
		var cr float64
		var buildT, totalT, hashT time.Duration
		medianDuration(runs, func() {
			h, err := hierarchyFor(g, coarsen.HEC{}, coarsen.BuildSort{}, workers, opt.seed())
			if err != nil {
				panic(err)
			}
			cr = h.CoarseningRatio()
			buildT = h.BuildTime()
			totalT = h.TotalTime()
		})
		medianDuration(runs, func() {
			h, err := hierarchyFor(g, coarsen.HEC{}, coarsen.BuildHash{}, workers, opt.seed())
			if err != nil {
				panic(err)
			}
			hashT = h.BuildTime()
		})
		rows = append(rows, SkewRow{
			Gamma:     gamma,
			Skew:      g.DegreeSkew(),
			CrHEC:     cr,
			GrCoPct:   100 * float64(buildT) / float64(totalT),
			HashRatio: float64(hashT) / float64(buildT),
		})
	}
	return rows
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PremiseRow quantifies the multilevel heuristic itself (the paper's
// opening premise): the same FM refinement run flat on the fine graph vs
// through the multilevel pipeline.
type PremiseRow struct {
	Name   string
	Skewed bool
	// FlatCut is FM from a random balanced start on the fine graph only.
	FlatCut int64
	// MLCut is the multilevel pipeline's cut (HEC + GGG + per-level FM).
	MLCut int64
	// CutRatio = FlatCut / MLCut (> 1 means multilevel wins).
	CutRatio float64
	// TimeRatio = t_flat / t_ml.
	TimeRatio float64
}

// MultilevelPremise measures flat FM against multilevel FM on the suite.
func MultilevelPremise(opt Options) []PremiseRow {
	runs := opt.runs()
	workers := opt.workers()
	var rows []PremiseRow
	for _, inst := range opt.Suite() {
		g := inst.Graph
		var flatCut, mlCut int64
		tFlat := medianDuration(runs, func() {
			part := make([]int32, g.N())
			rng := par.NewRNG(opt.seed())
			for i := range part {
				part[i] = int32(rng.Intn(2))
			}
			flatCut = partition.RefineFM(g, part, partition.FMOptions{})
		})
		tML := medianDuration(runs, func() {
			b := partition.NewHECFM(opt.seed(), workers)
			res, err := b.Bisect(g)
			if err != nil {
				panic(err)
			}
			mlCut = res.Cut
		})
		rows = append(rows, PremiseRow{
			Name: inst.Name, Skewed: inst.Skewed,
			FlatCut: flatCut, MLCut: mlCut,
			CutRatio:  ratio64(flatCut, mlCut),
			TimeRatio: float64(tFlat) / float64(tML),
		})
	}
	return rows
}

// ScalingRow is one point of a strong-scaling sweep: HEC coarsening time
// on one graph at a given worker count.
type ScalingRow struct {
	Name    string
	Workers int
	Tc      time.Duration
	Speedup float64 // t(1) / t(workers)
}

// StrongScaling sweeps worker counts over representative graphs —
// the multicore half of the paper's performance story (Fig 3 center on a
// real multicore host; on a single-core container it flat-lines at 1).
// threads == nil sweeps powers of two up to GOMAXPROCS.
func StrongScaling(opt Options, threads []int) []ScalingRow {
	if len(threads) == 0 {
		max := opt.workers()
		for t := 1; t <= max; t *= 2 {
			threads = append(threads, t)
		}
		if threads[len(threads)-1] != max {
			threads = append(threads, max)
		}
	}
	runs := opt.runs()
	var rows []ScalingRow
	for _, inst := range opt.Suite() {
		g := inst.Graph
		var t1 time.Duration
		for _, th := range threads {
			t := medianDuration(runs, func() {
				if _, err := hierarchyFor(g, coarsen.HEC{}, coarsen.BuildSort{}, th, opt.seed()); err != nil {
					panic(err)
				}
			})
			if th == threads[0] {
				t1 = t
			}
			rows = append(rows, ScalingRow{
				Name: inst.Name, Workers: th, Tc: t,
				Speedup: float64(t1) / float64(t),
			})
		}
	}
	return rows
}

// DedupAblationRow quantifies the degree-based one-sided deduplication
// optimization (the paper reports 25.7× slower construction on kron21
// without it).
type DedupAblationRow struct {
	Name    string
	Skewed  bool
	TOneOff time.Duration // construction time without the optimization
	TOneOn  time.Duration // construction time with it forced on
	Speedup float64
}

// DedupAblation measures construction time with the one-sided optimization
// disabled vs forced, on the skewed half of the suite.
func DedupAblation(opt Options) []DedupAblationRow {
	runs := opt.runs()
	workers := opt.workers()
	var rows []DedupAblationRow
	for _, inst := range opt.Suite() {
		if !inst.Skewed {
			continue
		}
		g := inst.Graph
		bt := func(b coarsen.Builder) time.Duration {
			ds := make([]time.Duration, runs)
			for i := range ds {
				h, err := hierarchyFor(g, coarsen.HEC{}, b, workers, opt.seed())
				if err != nil {
					panic(err)
				}
				ds[i] = h.BuildTime()
			}
			sort.Slice(ds, func(a, c int) bool { return ds[a] < ds[c] })
			return ds[len(ds)/2]
		}
		off := bt(coarsen.BuildSort{SkewThreshold: -1})
		on := bt(coarsen.BuildSort{ForceOneSided: true})
		rows = append(rows, DedupAblationRow{
			Name: inst.Name, Skewed: true,
			TOneOff: off, TOneOn: on,
			Speedup: float64(off) / float64(on),
		})
	}
	return rows
}
