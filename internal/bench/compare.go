package bench

import (
	"fmt"
	"io"
	"math"
	"time"
)

// CompareOptions tunes the regression gate. The defaults are deliberately
// loose: single-machine wall times at this suite's sizes jitter by 10-15%
// run to run, and a gate that cries wolf gets disabled.
type CompareOptions struct {
	// TimeTolerance is the relative slack for lower-is-better metrics: new
	// is a regression when new > old·(1+TimeTolerance). Zero means 0.25.
	TimeTolerance float64
	// RateTolerance is the slack for higher-is-better metrics: regression
	// when new < old·(1-RateTolerance). Zero means TimeTolerance.
	RateTolerance float64
	// MinTime is the noise floor for "ns" metrics: when both sides are
	// below it the delta is reported as OK regardless of ratio (a 3ms
	// kernel doubling to 6ms is scheduler noise, not a regression).
	// Zero means 5ms; negative disables the floor.
	MinTime time.Duration
	// FailOnMissing escalates metrics present in the old baseline but
	// absent from the new one to regressions (default: warn only).
	FailOnMissing bool
}

func (o CompareOptions) timeTol() float64 {
	if o.TimeTolerance == 0 {
		return 0.25
	}
	return o.TimeTolerance
}

func (o CompareOptions) rateTol() float64 {
	if o.RateTolerance == 0 {
		return o.timeTol()
	}
	return o.RateTolerance
}

func (o CompareOptions) minTime() float64 {
	if o.MinTime == 0 {
		return float64(5 * time.Millisecond)
	}
	if o.MinTime < 0 {
		return 0
	}
	return float64(o.MinTime)
}

// DeltaStatus classifies one metric pair.
type DeltaStatus string

const (
	// StatusOK: inside tolerance (including exact ties).
	StatusOK DeltaStatus = "ok"
	// StatusRegression: worse than tolerance allows. Gates the comparison.
	StatusRegression DeltaStatus = "regression"
	// StatusImprovement: better than tolerance requires (reported so a
	// baseline refresh can lock the win in).
	StatusImprovement DeltaStatus = "improvement"
	// StatusNew: present only in the new baseline (never a regression —
	// new coverage must not fail its introducing PR).
	StatusNew DeltaStatus = "new"
	// StatusMissing: present only in the old baseline.
	StatusMissing DeltaStatus = "missing"
	// StatusInfo: informational metric; reported, never gated.
	StatusInfo DeltaStatus = "info"
)

// Delta is one metric's comparison outcome.
type Delta struct {
	Key       string
	Unit      string
	Direction Direction
	Old, New  float64
	// Ratio is New/Old (NaN when either side is absent or old is 0).
	Ratio  float64
	Status DeltaStatus
}

// Report is the full outcome of comparing two baselines.
type Report struct {
	Deltas []Delta
	// EnvNotes lists environment differences that make absolute times
	// incomparable (different GOMAXPROCS, CPU, Go version).
	EnvNotes                                       []string
	Regressions, Improvements, NewMetrics, Missing int
}

// HasRegressions reports whether the gate should fail.
func (r *Report) HasRegressions() bool { return r.Regressions > 0 }

// Compare pairs the metrics of two baselines by key and classifies every
// delta. Both files must carry the current schema version (Read* already
// enforces it); the configs may differ — unmatched metrics come out as
// new/missing rather than errors, so a PR can grow the measured slice.
func Compare(oldB, newB *Baseline, opt CompareOptions) (*Report, error) {
	if err := oldB.Validate(); err != nil {
		return nil, fmt.Errorf("old baseline: %w", err)
	}
	if err := newB.Validate(); err != nil {
		return nil, fmt.Errorf("new baseline: %w", err)
	}
	r := &Report{EnvNotes: envNotes(oldB.Env, newB.Env)}

	oldByKey := make(map[string]Metric, len(oldB.Metrics))
	for _, m := range oldB.Metrics {
		oldByKey[m.Key()] = m
	}
	seen := make(map[string]bool, len(newB.Metrics))
	for _, m := range newB.Metrics {
		k := m.Key()
		seen[k] = true
		old, ok := oldByKey[k]
		d := Delta{Key: k, Unit: m.Unit, Direction: m.Direction, New: m.Value, Ratio: math.NaN()}
		if !ok {
			d.Status = StatusNew
			d.Old = math.NaN()
			r.NewMetrics++
			r.Deltas = append(r.Deltas, d)
			continue
		}
		d.Old = old.Value
		if old.Value != 0 {
			d.Ratio = m.Value / old.Value
		}
		d.Status = classify(old, m, opt)
		switch d.Status {
		case StatusRegression:
			r.Regressions++
		case StatusImprovement:
			r.Improvements++
		}
		r.Deltas = append(r.Deltas, d)
	}
	for _, m := range oldB.Metrics {
		if k := m.Key(); !seen[k] {
			d := Delta{Key: k, Unit: m.Unit, Direction: m.Direction, Old: m.Value, New: math.NaN(), Ratio: math.NaN(), Status: StatusMissing}
			r.Missing++
			if opt.FailOnMissing && m.Direction != Informational {
				d.Status = StatusRegression
				r.Regressions++
				r.Missing--
			}
			r.Deltas = append(r.Deltas, d)
		}
	}
	return r, nil
}

// classify applies the per-direction tolerance to one matched pair.
func classify(old, cur Metric, opt CompareOptions) DeltaStatus {
	if old.Direction == Informational || cur.Direction == Informational {
		return StatusInfo
	}
	switch cur.Direction {
	case LowerIsBetter:
		if old.Unit == "ns" && old.Value < opt.minTime() && cur.Value < opt.minTime() {
			return StatusOK
		}
		if cur.Value > old.Value*(1+opt.timeTol()) {
			return StatusRegression
		}
		if cur.Value < old.Value*(1-opt.timeTol()) {
			return StatusImprovement
		}
	case HigherIsBetter:
		if cur.Value < old.Value*(1-opt.rateTol()) {
			return StatusRegression
		}
		if cur.Value > old.Value*(1+opt.rateTol()) {
			return StatusImprovement
		}
	}
	return StatusOK
}

// envNotes reports fingerprint differences that void time comparisons.
func envNotes(a, b Environment) []string {
	var notes []string
	add := func(field, av, bv string) {
		if av != bv {
			notes = append(notes, fmt.Sprintf("%s differs: old=%q new=%q", field, av, bv))
		}
	}
	add("go_version", a.GoVersion, b.GoVersion)
	add("cpu_model", a.CPUModel, b.CPUModel)
	add("goos/goarch", a.GOOS+"/"+a.GOARCH, b.GOOS+"/"+b.GOARCH)
	if a.GOMAXPROCS != b.GOMAXPROCS {
		notes = append(notes, fmt.Sprintf("gomaxprocs differs: old=%d new=%d", a.GOMAXPROCS, b.GOMAXPROCS))
	}
	return notes
}

// Format writes the human-readable delta report. With verbose false, OK
// and info rows are summarized rather than listed.
func (r *Report) Format(w io.Writer, verbose bool) {
	for _, n := range r.EnvNotes {
		fmt.Fprintf(w, "note: %s (absolute times not comparable)\n", n)
	}
	var ok, info int
	for _, d := range r.Deltas {
		switch d.Status {
		case StatusOK:
			ok++
			if !verbose {
				continue
			}
		case StatusInfo:
			info++
			if !verbose {
				continue
			}
		}
		ratio := "     -"
		if !math.IsNaN(d.Ratio) {
			ratio = fmt.Sprintf("%6.2f", d.Ratio)
		}
		fmt.Fprintf(w, "%-12s %s  old=%s new=%s ratio=%s\n",
			d.Status, d.Key, fmtValue(d.Old, d.Unit), fmtValue(d.New, d.Unit), ratio)
	}
	fmt.Fprintf(w, "compared %d metrics: %d regressions, %d improvements, %d ok, %d info, %d new, %d missing\n",
		len(r.Deltas), r.Regressions, r.Improvements, ok, info, r.NewMetrics, r.Missing)
}

// fmtValue renders a metric value with its unit (ns as milliseconds).
func fmtValue(v float64, unit string) string {
	if math.IsNaN(v) {
		return "-"
	}
	if unit == "ns" {
		return fmt.Sprintf("%.3fms", v/float64(time.Millisecond))
	}
	return fmt.Sprintf("%.4g", v)
}
