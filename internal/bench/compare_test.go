package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// pair builds two one-metric baselines with the given old/new values for a
// lower-is-better "ns" metric well above the noise floor.
func pair(oldV, newV float64) (*Baseline, *Baseline) {
	mk := func(v float64) *Baseline {
		return &Baseline{
			SchemaVersion: SchemaVersion,
			Env:           Environment{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 1, NumCPU: 1},
			Metrics: []Metric{{
				Experiment: "coarsen", Instance: "g", Mapper: "hec", Builder: "sort", Workers: 1,
				Name: "total_ns", Unit: "ns", Direction: LowerIsBetter, Value: v,
			}},
		}
	}
	return mk(oldV), mk(newV)
}

func compareOne(t *testing.T, oldV, newV float64, opt CompareOptions) *Report {
	t.Helper()
	oldB, newB := pair(oldV, newV)
	r, err := Compare(oldB, newB, opt)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	return r
}

func TestCompareExactTie(t *testing.T) {
	r := compareOne(t, 1e8, 1e8, CompareOptions{})
	if r.HasRegressions() || r.Deltas[0].Status != StatusOK {
		t.Errorf("exact tie classified %s, want ok", r.Deltas[0].Status)
	}
	if r.Deltas[0].Ratio != 1 {
		t.Errorf("tie ratio = %v, want 1", r.Deltas[0].Ratio)
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	const old = 1e8
	// Exactly at old·(1+tol): not a regression (strict inequality).
	if r := compareOne(t, old, old*1.25, CompareOptions{TimeTolerance: 0.25}); r.HasRegressions() {
		t.Errorf("delta exactly at tolerance gated; boundary must be exclusive")
	}
	// Just over: a regression.
	r := compareOne(t, old, old*1.25+1e3, CompareOptions{TimeTolerance: 0.25})
	if !r.HasRegressions() {
		t.Errorf("delta just over tolerance not gated")
	}
	if r.Deltas[0].Status != StatusRegression {
		t.Errorf("status = %s, want regression", r.Deltas[0].Status)
	}
}

func TestCompareTwoXSlowdownRegresses(t *testing.T) {
	r := compareOne(t, 1e8, 2e8, CompareOptions{})
	if !r.HasRegressions() {
		t.Fatal("a 2x slowdown above the noise floor must regress under defaults")
	}
}

func TestCompareImprovement(t *testing.T) {
	r := compareOne(t, 2e8, 1e8, CompareOptions{})
	if r.HasRegressions() || r.Deltas[0].Status != StatusImprovement {
		t.Errorf("2x speedup classified %s, want improvement", r.Deltas[0].Status)
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	// Both sides under the 5ms default floor: a 2x delta is noise.
	r := compareOne(t, float64(2*time.Millisecond), float64(4*time.Millisecond), CompareOptions{})
	if r.HasRegressions() {
		t.Errorf("sub-floor 2x delta gated; MinTime floor not applied")
	}
	// Disabling the floor re-arms the gate.
	r = compareOne(t, float64(2*time.Millisecond), float64(4*time.Millisecond), CompareOptions{MinTime: -1})
	if !r.HasRegressions() {
		t.Errorf("MinTime<0 should disable the floor")
	}
}

func TestCompareHigherIsBetter(t *testing.T) {
	mk := func(v float64) *Baseline {
		return &Baseline{
			SchemaVersion: SchemaVersion,
			Metrics: []Metric{{Experiment: "coarsen", Instance: "g", Name: "rate",
				Unit: "size/s", Direction: HigherIsBetter, Value: v}},
		}
	}
	r, err := Compare(mk(1e7), mk(5e6), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasRegressions() {
		t.Errorf("halved rate not gated")
	}
	r, err = Compare(mk(1e7), mk(2e7), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Deltas[0].Status != StatusImprovement {
		t.Errorf("doubled rate classified %s, want improvement", r.Deltas[0].Status)
	}
}

func TestCompareMissingInOldIsNew(t *testing.T) {
	oldB, newB := pair(1e8, 1e8)
	extra := newB.Metrics[0]
	extra.Instance = "brand-new-graph"
	extra.Value = 9e9 // enormous, but a new metric must never gate
	newB.Metrics = append(newB.Metrics, extra)
	r, err := Compare(oldB, newB, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.HasRegressions() {
		t.Error("metric missing from the old baseline caused a regression")
	}
	if r.NewMetrics != 1 {
		t.Errorf("NewMetrics = %d, want 1", r.NewMetrics)
	}
}

func TestCompareMissingInNew(t *testing.T) {
	oldB, newB := pair(1e8, 1e8)
	extra := oldB.Metrics[0]
	extra.Instance = "dropped-graph"
	oldB.Metrics = append(oldB.Metrics, extra)

	r, err := Compare(oldB, newB, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.HasRegressions() || r.Missing != 1 {
		t.Errorf("default missing handling: regressions=%d missing=%d, want 0/1", r.Regressions, r.Missing)
	}
	r, err = Compare(oldB, newB, CompareOptions{FailOnMissing: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasRegressions() {
		t.Error("FailOnMissing did not gate a dropped metric")
	}
}

func TestCompareInfoNeverGates(t *testing.T) {
	mk := func(v float64) *Baseline {
		return &Baseline{
			SchemaVersion: SchemaVersion,
			Metrics: []Metric{{Experiment: "coarsen", Instance: "g", Name: "levels",
				Unit: "levels", Direction: Informational, Value: v}},
		}
	}
	r, err := Compare(mk(5), mk(50), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.HasRegressions() || r.Deltas[0].Status != StatusInfo {
		t.Errorf("info metric classified %s with %d regressions", r.Deltas[0].Status, r.Regressions)
	}
}

func TestCompareSchemaVersionMismatch(t *testing.T) {
	oldB, newB := pair(1e8, 1e8)
	oldB.SchemaVersion = SchemaVersion + 1
	if _, err := Compare(oldB, newB, CompareOptions{}); err == nil {
		t.Fatal("Compare accepted mismatched schema versions")
	}
}

func TestCompareEnvNotes(t *testing.T) {
	oldB, newB := pair(1e8, 1e8)
	newB.Env.GOMAXPROCS = 8
	newB.Env.GoVersion = "go1.25.0"
	r, err := Compare(oldB, newB, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.EnvNotes) < 2 {
		t.Errorf("EnvNotes = %v, want gomaxprocs and go_version notes", r.EnvNotes)
	}
	var buf bytes.Buffer
	r.Format(&buf, false)
	if !strings.Contains(buf.String(), "gomaxprocs differs") {
		t.Errorf("Format dropped the env notes:\n%s", buf.String())
	}
}

func TestReportFormat(t *testing.T) {
	r := compareOne(t, 1e8, 3e8, CompareOptions{})
	var buf bytes.Buffer
	r.Format(&buf, false)
	out := buf.String()
	if !strings.Contains(out, "regression") || !strings.Contains(out, "coarsen/g/hec/sort/w=1/total_ns") {
		t.Errorf("report missing the regression row:\n%s", out)
	}
	if !strings.Contains(out, "1 regressions") {
		t.Errorf("report missing the summary line:\n%s", out)
	}
}
