package bench

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sampleBaseline builds a small valid baseline for schema tests.
func sampleBaseline() *Baseline {
	return &Baseline{
		SchemaVersion: SchemaVersion,
		CreatedAt:     "2026-08-05T00:00:00Z",
		Env:           Environment{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4, NumCPU: 4, GitSHA: "abc123"},
		Config:        RunConfig{Suite: "fast", Runs: 3, Scale: 1, Workers: []int{1}, Instances: []string{"g"}, Mappers: []string{"hec"}, Builders: []string{"sort"}},
		Metrics: []Metric{
			{Experiment: "coarsen", Instance: "g", Mapper: "hec", Builder: "sort", Workers: 1,
				Name: "total_ns", Unit: "ns", Direction: LowerIsBetter, Value: 1e8, Samples: []float64{9e7, 1e8, 1.1e8}},
			{Experiment: "coarsen", Instance: "g", Mapper: "hec", Builder: "sort", Workers: 1,
				Name: "rate", Unit: "size/s", Direction: HigherIsBetter, Value: 5e6},
			{Experiment: "coarsen", Instance: "g", Mapper: "hec", Builder: "sort", Workers: 1,
				Name: "levels", Unit: "levels", Direction: Informational, Value: 5},
		},
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := sampleBaseline()
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Errorf("round trip changed the baseline:\nwrote %+v\nread  %+v", b, got)
	}
}

func TestBaselineFileRoundTrip(t *testing.T) {
	b := sampleBaseline()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadBaselineFile(path)
	if err != nil {
		t.Fatalf("ReadBaselineFile: %v", err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Errorf("file round trip changed the baseline")
	}
}

func TestBaselineValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Baseline)
		wantErr string
	}{
		{"valid", func(b *Baseline) {}, ""},
		{"wrong version", func(b *Baseline) { b.SchemaVersion = SchemaVersion + 1 }, "schema version"},
		{"no metrics", func(b *Baseline) { b.Metrics = nil }, "no metrics"},
		{"empty name", func(b *Baseline) { b.Metrics[0].Name = "" }, "empty experiment/name"},
		{"bad direction", func(b *Baseline) { b.Metrics[0].Direction = "sideways" }, "unknown direction"},
		{"duplicate key", func(b *Baseline) { b.Metrics[1] = b.Metrics[0] }, "duplicate metric key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := sampleBaseline()
			tc.mutate(b)
			err := b.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestMetricKey(t *testing.T) {
	m := Metric{Experiment: "coarsen", Instance: "kron21", Mapper: "hec", Builder: "sort", Workers: 4, Name: "total_ns"}
	if got, want := m.Key(), "coarsen/kron21/hec/sort/w=4/total_ns"; got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}
	// Optional identity fields drop out of the key rather than leaving
	// empty segments.
	m2 := Metric{Experiment: "suite", Name: "n"}
	if got, want := m2.Key(), "suite/n"; got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}
}

func TestCaptureEnvironment(t *testing.T) {
	env := CaptureEnvironment()
	if env.GoVersion == "" || env.GOOS == "" || env.GOARCH == "" {
		t.Errorf("fingerprint missing toolchain fields: %+v", env)
	}
	if env.GOMAXPROCS < 1 || env.NumCPU < 1 {
		t.Errorf("fingerprint has impossible CPU counts: %+v", env)
	}
}

func TestRunBaselineSmallSlice(t *testing.T) {
	cfg := RunConfig{
		Suite: "custom", Runs: 1, Scale: 1,
		Workers:   []int{1, 0}, // 0 resolves to GOMAXPROCS; deduped when that is 1
		Instances: []string{"mycielskian17"},
		Mappers:   []string{"hec"},
		Builders:  []string{"sort"},
		Counters:  true,
	}
	b, err := RunBaseline(cfg)
	if err != nil {
		t.Fatalf("RunBaseline: %v", err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("generated baseline invalid: %v", err)
	}
	byName := map[string]bool{}
	for _, m := range b.Metrics {
		byName[m.Name] = true
	}
	for _, want := range []string{"total_ns", "map_ns", "build_ns", "rate", "levels", "coarsening_ratio"} {
		if !byName[want] {
			t.Errorf("baseline missing metric %q (have %v)", want, byName)
		}
	}
	// The traced extra run must surface at least one obs counter (sort
	// construction always executes radix passes or hash probes).
	foundCtr := false
	for n := range byName {
		if strings.HasPrefix(n, "ctr_") {
			foundCtr = true
		}
	}
	if !foundCtr {
		t.Errorf("Counters=true produced no ctr_* metrics: %v", byName)
	}
}

func TestRunBaselineUnknownInstance(t *testing.T) {
	cfg := FastConfig()
	cfg.Instances = []string{"no-such-graph"}
	if _, err := RunBaseline(cfg); err == nil {
		t.Fatal("RunBaseline accepted an unknown instance")
	}
}

func TestConfigByName(t *testing.T) {
	fast, err := ConfigByName("fast")
	if err != nil || fast.Suite != "fast" || len(fast.Instances) == 0 {
		t.Fatalf("ConfigByName(fast) = %+v, %v", fast, err)
	}
	full, err := ConfigByName("full")
	if err != nil || len(full.Instances) != 20 {
		t.Fatalf("ConfigByName(full) = %d instances, %v; want 20", len(full.Instances), err)
	}
	if _, err := ConfigByName("medium"); err == nil {
		t.Fatal("ConfigByName accepted an unknown slice")
	}
}
