package hierfmt

import (
	"fmt"
	"os"
	"path/filepath"

	"mlcg/internal/coarsen"
)

// SaveFile writes the container atomically: a temp file in the target
// directory, fsync, then rename. Readers (a concurrently restarting
// server, a crashed writer's successor) therefore see either the old file,
// the new file, or no file — never a torn container. Torn writes that
// bypass the rename (power loss on a non-atomic filesystem) are caught by
// the per-section checksums on load.
func SaveFile(path string, h *coarsen.Hierarchy, opt SaveOptions) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := Save(f, h, opt); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFile reads a container into freshly allocated storage. For lazy
// page-in of large hierarchies use Open instead.
func LoadFile(path string, opt LoadOptions) (*coarsen.Hierarchy, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	opt.ZeroCopy = false // the backing buffer dies with this frame
	h, meta, err := Load(data, opt)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return h, meta, nil
}

// Mapped is a hierarchy backed by an open file mapping (or, on platforms
// without mmap support, a plain in-memory copy). Close releases the
// mapping; the hierarchy and metadata must not be used afterwards when
// ZeroCopy was in effect.
type Mapped struct {
	H    *coarsen.Hierarchy
	Meta []byte

	data  []byte
	unmap func([]byte) error
}

// Close releases the file mapping, if any.
func (m *Mapped) Close() error {
	if m.unmap == nil || m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return m.unmap(data)
}

// Open maps path and parses it with the given options. With ZeroCopy set
// (and a little-endian host) the hierarchy's arrays alias the mapping, so
// opening costs validation only — pages fault in as queries touch them,
// which is what makes a server's warm restart on a large hierarchy cheap.
// The checksum pass does touch every page once; integrity beats laziness
// here, and the pages are then warm for the queries that follow.
func Open(path string, opt LoadOptions) (*Mapped, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	if unmap == nil {
		// No mmap on this platform: the data is a private copy and aliasing
		// it is lifetime-safe, so ZeroCopy can stand.
		h, meta, err := Load(data, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &Mapped{H: h, Meta: meta}, nil
	}
	h, meta, err := Load(data, opt)
	if err != nil {
		unmap(data)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Mapped{H: h, Meta: meta, data: data, unmap: unmap}, nil
}
