package hierfmt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"
	"unsafe"

	"mlcg/internal/coarsen"
	"mlcg/internal/graph"
)

// LoadOptions tunes the reader. The zero value is the safe default:
// copied storage, structural validation.
type LoadOptions struct {
	// FullValidate additionally runs graph.Validate on every level — the
	// O(m·d) symmetry and duplicate check. The default structural check is
	// O(n+m): offsets monotone, neighbor ids and map targets in range,
	// edge weights positive. Checksums make silent corruption loud either
	// way; FullValidate is for distrusted writers, not distrusted media.
	FullValidate bool
	// ZeroCopy aliases fixed-width sections (Xadj/Adj/Wgt/VWgt/maps)
	// directly into data instead of copying, when host endianness and
	// alignment permit (a 64-byte-aligned mmap always does). The returned
	// hierarchy then shares data's lifetime: keep the mapping alive for as
	// long as the hierarchy is in use, and never mutate either.
	ZeroCopy bool
}

// Load parses a version-1 container from data (typically an mmap or a
// whole-file read) and returns the hierarchy plus the caller metadata
// stored at save time (nil if none).
//
// The reader is hardened against hostile input, extending the chunked
// length discipline of graph.ReadBinary to a whole container: every
// section's offset and length are bounds-checked against len(data) and
// against each other (64-byte alignment, strictly increasing, no overlap)
// before anything is allocated or touched, every payload must pass its
// CRC-32C, and element counts are cross-checked against section byte
// lengths and the CSR/map shapes they claim to describe. A lying table
// can therefore cost at most the bytes the attacker actually sent.
func Load(data []byte, opt LoadOptions) (*coarsen.Hierarchy, []byte, error) {
	hdr, err := decodeHeader(data)
	if err != nil {
		return nil, nil, err
	}
	if hdr.fileSize != uint64(len(data)) {
		return nil, nil, fmt.Errorf("hierfmt: header claims %d bytes, have %d", hdr.fileSize, len(data))
	}
	tableEnd := int64(HeaderSize) + int64(hdr.nsections)*SectionEntrySize
	if tableEnd > int64(len(data)) {
		return nil, nil, fmt.Errorf("hierfmt: section table (%d entries) exceeds file size %d", hdr.nsections, len(data))
	}

	// Pass 1: decode and bounds-check the whole table before interpreting
	// any payload. Padding gaps must be zero — the writer emits only zeros
	// there, and enforcing it keeps accepted containers canonical: anything
	// Load accepts re-saves to the identical bytes, so corruption in the
	// padding is as loud as corruption in a payload.
	zeroPad := func(lo, hi uint64) error {
		for _, b := range data[lo:hi] {
			if b != 0 {
				return fmt.Errorf("hierfmt: non-zero padding in [%d,%d)", lo, hi)
			}
		}
		return nil
	}
	secs := make([]section, hdr.nsections)
	rawEnd := uint64(tableEnd) // unaligned end of the previous structure
	for i := range secs {
		s := decodeSection(data[HeaderSize+i*SectionEntrySize:])
		if s.offset%SectionAlign != 0 {
			return nil, nil, fmt.Errorf("hierfmt: section %d (%s) offset %d not %d-byte aligned", i, kindName(s.kind), s.offset, SectionAlign)
		}
		// The canonical layout admits exactly one offset per section; an
		// offset below it overlaps the previous section, above it pads
		// non-canonically. Rejecting both keeps Load∘Save the identity.
		if s.offset != uint64(align64(int64(rawEnd))) {
			return nil, nil, fmt.Errorf("hierfmt: section %d (%s) at %d overlaps or strays from canonical offset %d", i, kindName(s.kind), s.offset, align64(int64(rawEnd)))
		}
		if s.length > uint64(len(data)) || s.offset+s.length > uint64(len(data)) {
			return nil, nil, fmt.Errorf("hierfmt: section %d (%s) [%d,+%d) exceeds file size %d", i, kindName(s.kind), s.offset, s.length, len(data))
		}
		if err := checkShape(s); err != nil {
			return nil, nil, fmt.Errorf("hierfmt: section %d: %w", i, err)
		}
		if got := Checksum(data[s.offset : s.offset+s.length]); got != s.crc {
			return nil, nil, fmt.Errorf("hierfmt: section %d (%s) checksum mismatch (table %#x, computed %#x)", i, kindName(s.kind), s.crc, got)
		}
		if err := zeroPad(rawEnd, s.offset); err != nil {
			return nil, nil, err
		}
		secs[i] = s
		rawEnd = s.offset + s.length
	}
	if uint64(align64(int64(rawEnd))) != hdr.fileSize {
		return nil, nil, fmt.Errorf("hierfmt: trailing bytes: sections end at %d, file size %d", rawEnd, hdr.fileSize)
	}
	if err := zeroPad(rawEnd, hdr.fileSize); err != nil {
		return nil, nil, err
	}

	// Pass 2: walk the normative section order, building each level.
	c := &cursor{data: data, secs: secs, opt: opt, varint: hdr.flags&FlagDeltaVarint != 0}
	h := &coarsen.Hierarchy{Stalled: hdr.flags&FlagStalled != 0}
	for lvl := uint32(0); lvl < hdr.nlevels; lvl++ {
		g, err := c.readGraph(lvl)
		if err != nil {
			return nil, nil, fmt.Errorf("hierfmt: level %d: %w", lvl, err)
		}
		h.Graphs = append(h.Graphs, g)
	}
	for lvl := uint32(0); lvl+1 < hdr.nlevels; lvl++ {
		m, err := c.readMap(lvl, h.Graphs[lvl], h.Graphs[lvl+1])
		if err != nil {
			return nil, nil, fmt.Errorf("hierfmt: map %d: %w", lvl, err)
		}
		h.Maps = append(h.Maps, m)
	}
	if hdr.nlevels > 1 {
		if err := c.readStats(h); err != nil {
			return nil, nil, err
		}
	}
	var meta []byte
	if s, ok := c.take(KindMeta, 0); ok {
		meta = append([]byte(nil), c.payload(s)...)
	}
	if c.pos != len(secs) {
		s := secs[c.pos]
		return nil, nil, fmt.Errorf("hierfmt: unexpected section %s (level %d) after container contents", kindName(s.kind), s.level)
	}
	if opt.FullValidate {
		for i, g := range h.Graphs {
			if err := g.Validate(); err != nil {
				return nil, nil, fmt.Errorf("hierfmt: level %d: %w", i, err)
			}
		}
	}
	return h, meta, nil
}

// checkShape cross-checks a section's element count against its byte
// length. Varint adjacency has a variable width but at least one byte per
// element, which still bounds allocations by the wire size.
func checkShape(s section) error {
	switch s.kind {
	case KindXadj, KindEwgt, KindVwgt:
		if uint64(s.count)*8 != s.length {
			return fmt.Errorf("%s claims %d elements in %d bytes", kindName(s.kind), s.count, s.length)
		}
	case KindAdjc:
		// Raw width is checked at read time (depends on the varint flag);
		// here enforce the universal lower bound.
		if uint64(s.count) > s.length && s.length != uint64(s.count)*4 {
			return fmt.Errorf("ADJC claims %d elements in %d bytes", s.count, s.length)
		}
	case KindCmap:
		if uint64(s.count)*4 != s.length {
			return fmt.Errorf("CMAP claims %d elements in %d bytes", s.count, s.length)
		}
	case KindLvst:
		if uint64(s.count)*LevelStatSize != s.length {
			return fmt.Errorf("LVST claims %d records in %d bytes", s.count, s.length)
		}
	case KindLvsb, KindMeta:
		if uint64(s.count) != s.length {
			return fmt.Errorf("%s count %d != length %d", kindName(s.kind), s.count, s.length)
		}
	default:
		return fmt.Errorf("unknown section kind %s", kindName(s.kind))
	}
	return nil
}

// cursor walks the section list in normative order.
type cursor struct {
	data   []byte
	secs   []section
	pos    int
	opt    LoadOptions
	varint bool
}

func (c *cursor) payload(s section) []byte {
	return c.data[s.offset : s.offset+s.length]
}

// take consumes the next section if it matches kind and level.
func (c *cursor) take(kind, level uint32) (section, bool) {
	if c.pos >= len(c.secs) {
		return section{}, false
	}
	s := c.secs[c.pos]
	if s.kind != kind || s.level != level {
		return section{}, false
	}
	c.pos++
	return s, true
}

func (c *cursor) need(kind, level uint32) (section, error) {
	s, ok := c.take(kind, level)
	if !ok {
		got := "end of table"
		if c.pos < len(c.secs) {
			got = fmt.Sprintf("%s (level %d)", kindName(c.secs[c.pos].kind), c.secs[c.pos].level)
		}
		return s, fmt.Errorf("want section %s, have %s", kindName(kind), got)
	}
	return s, nil
}

// i64View returns the section's int64 payload, aliasing the underlying
// data in zero-copy mode when the host representation matches.
func (c *cursor) i64View(s section) []int64 {
	b := c.payload(s)
	if c.opt.ZeroCopy && hostLittleEndian && s.count > 0 && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), s.count)
	}
	return bytesToI64(b, int(s.count))
}

func (c *cursor) i32View(s section) []int32 {
	b := c.payload(s)
	if c.opt.ZeroCopy && hostLittleEndian && s.count > 0 && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), s.count)
	}
	return bytesToI32(b, int(s.count))
}

// readGraph assembles one level's CSR and runs the structural check.
func (c *cursor) readGraph(lvl uint32) (*graph.Graph, error) {
	sx, err := c.need(KindXadj, lvl)
	if err != nil {
		return nil, err
	}
	if sx.count == 0 {
		return nil, fmt.Errorf("empty XADJ")
	}
	n := int(sx.count) - 1
	if n > graph.MaxParseVertices {
		return nil, fmt.Errorf("vertex count %d exceeds format cap %d", n, graph.MaxParseVertices)
	}
	xadj := c.i64View(sx)
	if xadj[0] != 0 {
		return nil, fmt.Errorf("Xadj[0] = %d, want 0", xadj[0])
	}
	for i := 0; i < n; i++ {
		if xadj[i+1] < xadj[i] {
			return nil, fmt.Errorf("Xadj decreasing at %d", i)
		}
	}
	nnz := xadj[n]

	sa, err := c.need(KindAdjc, lvl)
	if err != nil {
		return nil, err
	}
	if int64(sa.count) != nnz {
		return nil, fmt.Errorf("ADJC has %d elements, Xadj claims %d", sa.count, nnz)
	}
	var adj []int32
	if c.varint {
		adj, err = decodeAdjVarint(c.payload(sa), xadj, int32(n))
		if err != nil {
			return nil, err
		}
	} else {
		if uint64(sa.count)*4 != sa.length {
			return nil, fmt.Errorf("raw ADJC claims %d elements in %d bytes", sa.count, sa.length)
		}
		adj = c.i32View(sa)
		for _, v := range adj {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("neighbor id %d out of range [0,%d)", v, n)
			}
		}
	}

	sw, err := c.need(KindEwgt, lvl)
	if err != nil {
		return nil, err
	}
	if int64(sw.count) != nnz {
		return nil, fmt.Errorf("EWGT has %d elements, Xadj claims %d", sw.count, nnz)
	}
	wgt := c.i64View(sw)
	for _, w := range wgt {
		if w <= 0 {
			return nil, fmt.Errorf("non-positive edge weight %d", w)
		}
	}

	g := &graph.Graph{NumV: int32(n), Xadj: xadj, Adj: adj, Wgt: wgt}
	if sv, ok := c.take(KindVwgt, lvl); ok {
		if int(sv.count) != n {
			return nil, fmt.Errorf("VWGT covers %d of %d vertices", sv.count, n)
		}
		g.VWgt = c.i64View(sv)
	}
	return g, nil
}

// readMap reads one coarse map and range-checks it against its two levels.
func (c *cursor) readMap(lvl uint32, fine, coarse *graph.Graph) ([]int32, error) {
	s, err := c.need(KindCmap, lvl)
	if err != nil {
		return nil, err
	}
	if int(s.count) != fine.N() {
		return nil, fmt.Errorf("covers %d vertices, level has %d", s.count, fine.N())
	}
	m := c.i32View(s)
	nc := coarse.NumV
	for u, a := range m {
		if a < 0 || a >= nc {
			return nil, fmt.Errorf("vertex %d -> %d out of [0,%d)", u, a, nc)
		}
	}
	return m, nil
}

// readStats decodes LVST + LVSB into h.Stats, cross-checking each record's
// shape fields against the graphs they describe.
func (c *cursor) readStats(h *coarsen.Hierarchy) error {
	L := len(h.Graphs)
	st, err := c.need(KindLvst, 0)
	if err != nil {
		return fmt.Errorf("hierfmt: %w", err)
	}
	if int(st.count) != L-1 {
		return fmt.Errorf("hierfmt: LVST has %d records for %d levels", st.count, L-1)
	}
	sb, err := c.need(KindLvsb, 0)
	if err != nil {
		return fmt.Errorf("hierfmt: %w", err)
	}
	var builders []levelBuilder
	if err := json.Unmarshal(c.payload(sb), &builders); err != nil {
		return fmt.Errorf("hierfmt: LVSB: %w", err)
	}
	if len(builders) != L-1 {
		return fmt.Errorf("hierfmt: LVSB has %d entries for %d levels", len(builders), L-1)
	}
	buf := c.payload(st)
	h.Stats = make([]coarsen.LevelStats, L-1)
	for i := 0; i < L-1; i++ {
		b := buf[i*LevelStatSize:]
		rec := coarsen.LevelStats{
			N:           int32(binary.LittleEndian.Uint32(b[0:])),
			NC:          int32(binary.LittleEndian.Uint32(b[4:])),
			M:           int64(binary.LittleEndian.Uint64(b[8:])),
			MapTime:     time.Duration(binary.LittleEndian.Uint64(b[16:])),
			BuildTime:   time.Duration(binary.LittleEndian.Uint64(b[24:])),
			Passes:      int(int32(binary.LittleEndian.Uint32(b[32:]))),
			Builder:     builders[i].Builder,
			BuildReason: builders[i].Reason,
		}
		if rec.N != h.Graphs[i].NumV || rec.NC != h.Graphs[i+1].NumV || rec.M != h.Graphs[i].M() {
			return fmt.Errorf("hierfmt: LVST record %d (n=%d nc=%d m=%d) contradicts graphs (n=%d nc=%d m=%d)",
				i, rec.N, rec.NC, rec.M, h.Graphs[i].NumV, h.Graphs[i+1].NumV, h.Graphs[i].M())
		}
		if binary.LittleEndian.Uint32(b[36:]) != 0 {
			return fmt.Errorf("hierfmt: LVST record %d has non-zero reserved field", i)
		}
		h.Stats[i] = rec
	}
	return nil
}

// LoadGraph reads a one-level container written by SaveGraph.
func LoadGraph(data []byte, opt LoadOptions) (*graph.Graph, []byte, error) {
	h, meta, err := Load(data, opt)
	if err != nil {
		return nil, nil, err
	}
	if len(h.Graphs) != 1 {
		return nil, nil, fmt.Errorf("hierfmt: container holds a %d-level hierarchy, want a single graph", len(h.Graphs))
	}
	return h.Graphs[0], meta, nil
}
