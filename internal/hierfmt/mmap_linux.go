//go:build linux

package hierfmt

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile memory-maps path read-only. The returned unmap func releases the
// mapping; a nil unmap means the bytes are an ordinary heap copy (empty
// files, which mmap rejects with EINVAL).
func mapFile(path string) ([]byte, func([]byte) error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, fmt.Errorf("%s: empty file", path)
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("%s: file too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("mmap %s: %w", path, err)
	}
	return data, syscall.Munmap, nil
}
