//go:build !linux

package hierfmt

import "os"

// mapFile on platforms without a wired-up mmap path falls back to reading
// the whole file; the nil unmap tells Open the bytes are a private copy.
func mapFile(path string) ([]byte, func([]byte) error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
