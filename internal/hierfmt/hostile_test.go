package hierfmt

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"mlcg/internal/gen"
)

// mutate returns a copy of data with fn applied.
func mutate(data []byte, fn func(b []byte)) []byte {
	out := append([]byte(nil), data...)
	fn(out)
	return out
}

// fixHeaderCRC recomputes the header checksum so a mutation tests the
// field's own validation rather than tripping the CRC first.
func fixHeaderCRC(b []byte) {
	binary.LittleEndian.PutUint32(b[60:], Checksum(b[:60]))
}

// TestLoadRejectsHostileInput drives the reader through every hardening
// branch: each mutant must fail with a descriptive error, never a panic or
// a huge allocation (the fuzz target additionally hammers this with
// arbitrary bytes).
func TestLoadRejectsHostileInput(t *testing.T) {
	h := buildHier(t, gen.Grid2D(30, 30), 2)
	data := saveBytes(t, h, SaveOptions{Meta: []byte("m")})
	secOff := func(i int) int { return HeaderSize + i*SectionEntrySize }

	cases := []struct {
		name string
		in   []byte
		want string // substring of the expected error
	}{
		{"empty", nil, "too short"},
		{"short-header", data[:40], "too short"},
		{"bad-magic", mutate(data, func(b []byte) { b[0] ^= 0xff }), "bad magic"},
		{"bad-header-crc", mutate(data, func(b []byte) { b[61] ^= 0xff }), "header checksum"},
		{"future-version", mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:], 2)
			fixHeaderCRC(b)
		}), "unsupported version"},
		{"unknown-flags", mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint32(b[12:], 1<<7)
			fixHeaderCRC(b)
		}), "unknown flag"},
		{"reserved-nonzero", mutate(data, func(b []byte) {
			b[40] = 1
			fixHeaderCRC(b)
		}), "reserved"},
		{"zero-sections", mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint32(b[16:], 0)
			fixHeaderCRC(b)
		}), "section count"},
		// The classic lying header: claims 2^22 sections in a 10 KiB file.
		// Must fail on the table bound, not allocate 128 MiB of entries.
		{"lying-section-count", mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint32(b[16:], maxSections)
			fixHeaderCRC(b)
		}), "exceeds file size"},
		{"lying-level-count", mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint32(b[20:], maxLevels+1)
			fixHeaderCRC(b)
		}), "level count"},
		{"wrong-file-size", mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint64(b[24:], 1<<40)
			fixHeaderCRC(b)
		}), "claims"},
		{"truncated-payload", data[:len(data)-64], "claims"},
		{"misaligned-offset", mutate(data, func(b []byte) {
			off := binary.LittleEndian.Uint64(b[secOff(0)+8:])
			binary.LittleEndian.PutUint64(b[secOff(0)+8:], off+8)
		}), "aligned"},
		// Section 1 moved onto section 0's range.
		{"overlapping-sections", mutate(data, func(b []byte) {
			off0 := binary.LittleEndian.Uint64(b[secOff(0)+8:])
			binary.LittleEndian.PutUint64(b[secOff(1)+8:], off0)
		}), "overlaps"},
		// A section length pointing past EOF: bounded before allocation.
		{"lying-section-length", mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint64(b[secOff(0)+16:], 1<<42)
			binary.LittleEndian.PutUint32(b[secOff(0)+24:], 1<<29)
		}), "exceeds file size"},
		{"count-length-mismatch", mutate(data, func(b []byte) {
			c := binary.LittleEndian.Uint32(b[secOff(0)+24:])
			binary.LittleEndian.PutUint32(b[secOff(0)+24:], c+1)
		}), "elements"},
		{"corrupt-payload", mutate(data, func(b []byte) {
			off := binary.LittleEndian.Uint64(b[secOff(0)+8:])
			b[off] ^= 0xff
		}), "checksum mismatch"},
		{"unknown-kind", mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint32(b[secOff(0):], uint32('Z')|uint32('Z')<<8|uint32('Z')<<16|uint32('Z')<<24)
		}), "unknown section kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Load(tc.in, LoadOptions{})
			if err == nil {
				t.Fatal("hostile input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLoadRejectsStructuralLies covers payloads that pass every checksum
// but describe an impossible hierarchy. Each is built by re-saving a
// legitimately mutated in-memory hierarchy... which Save refuses, so these
// construct raw containers by patching payload bytes and re-checksumming.
func TestLoadRejectsStructuralLies(t *testing.T) {
	h := buildHier(t, gen.Grid2D(20, 20), 1)
	data := saveBytes(t, h, SaveOptions{})

	// Patch one payload byte range and fix that section's CRC.
	patch := func(sec int, fn func(payload []byte)) []byte {
		out := append([]byte(nil), data...)
		e := HeaderSize + sec*SectionEntrySize
		off := binary.LittleEndian.Uint64(out[e+8:])
		length := binary.LittleEndian.Uint64(out[e+16:])
		fn(out[off : off+length])
		binary.LittleEndian.PutUint32(out[e+28:], Checksum(out[off:off+length]))
		return out
	}
	// Section order: XADJ0 ADJC0 EWGT0 [VWGT0?] XADJ1 ... CMAP0 ... LVST LVSB.
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"xadj-decreasing", patch(0, func(p []byte) {
			binary.LittleEndian.PutUint64(p[8:], 1<<33)
		}), "decreasing"},
		{"xadj-nonzero-start", patch(0, func(p []byte) {
			binary.LittleEndian.PutUint64(p[0:], 1)
		}), "Xadj[0]"},
		{"adj-out-of-range", patch(1, func(p []byte) {
			binary.LittleEndian.PutUint32(p[0:], 1<<20)
		}), "out of range"},
		{"negative-weight", patch(2, func(p []byte) {
			binary.LittleEndian.PutUint64(p[0:], ^uint64(0))
		}), "edge weight"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Load(tc.in, LoadOptions{})
			if err == nil {
				t.Fatal("structural lie accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Map targeting a coarse id past NC: find the CMAP section index.
	nsec := int(binary.LittleEndian.Uint32(data[16:]))
	cmapIdx := -1
	for i := 0; i < nsec; i++ {
		if binary.LittleEndian.Uint32(data[HeaderSize+i*SectionEntrySize:]) == KindCmap {
			cmapIdx = i
			break
		}
	}
	if cmapIdx < 0 {
		t.Fatal("no CMAP section in test container")
	}
	bad := patch(cmapIdx, func(p []byte) {
		binary.LittleEndian.PutUint32(p[0:], uint32(h.Graphs[1].NumV))
	})
	if _, _, err := Load(bad, LoadOptions{}); err == nil || !strings.Contains(err.Error(), "out of") {
		t.Errorf("out-of-range map target: %v", err)
	}
}

// FuzzHierFmtLoad feeds the reader arbitrary bytes. The invariants: no
// panic, no unbounded allocation (enforced by the bounds discipline — every
// make is capped by a section length already checked against len(in)), and
// anything that parses must round-trip byte-identically through Save.
func FuzzHierFmtLoad(f *testing.F) {
	add := func(g func() []byte) { f.Add(g()) }
	add(func() []byte { return saveBytes(f, buildHier(f, gen.Grid2D(25, 25), 1), SaveOptions{}) })
	add(func() []byte {
		return saveBytes(f, buildHier(f, gen.RMAT(8, 8, 3), 2), SaveOptions{CompressAdj: true, Meta: []byte("x")})
	})
	seed := saveBytes(f, buildHier(f, gen.BA(300, 3, 5), 1), SaveOptions{CompressAdj: true})
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated mid-section
	f.Add(seed[:HeaderSize])  // header only
	corrupt := append([]byte(nil), seed...)
	corrupt[HeaderSize+8] ^= 0xff // damage a table offset
	f.Add(corrupt)
	f.Add([]byte("MLCGHF01 but not really a container"))

	f.Fuzz(func(t *testing.T, in []byte) {
		h, meta, err := Load(in, LoadOptions{})
		if err != nil {
			return
		}
		// Parsed: the hierarchy must be internally consistent enough to
		// re-save, and the save must reproduce the input bytes exactly
		// (the reader accepts only canonical containers).
		varint := binary.LittleEndian.Uint32(in[12:])&FlagDeltaVarint != 0
		var buf bytes.Buffer
		if err := Save(&buf, h, SaveOptions{CompressAdj: varint, Meta: meta}); err != nil {
			t.Fatalf("accepted container failed to re-save: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), in) {
			t.Fatalf("save(load(x)) != x: %d vs %d bytes", buf.Len(), len(in))
		}
	})
}
