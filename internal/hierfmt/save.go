package hierfmt

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"mlcg/internal/coarsen"
	"mlcg/internal/graph"
)

// SaveOptions tunes the writer. The zero value (raw int32 adjacency, no
// metadata) is the fastest to load and the default everywhere.
type SaveOptions struct {
	// CompressAdj stores adjacency sections as zigzag delta-varints
	// (FlagDeltaVarint): ~1–2 bytes per neighbor on canonical sorted rows
	// instead of 4, traded against a sequential decode on load.
	CompressAdj bool
	// Meta is an opaque caller payload stored verbatim in a META section
	// and returned byte-exactly by Load. mlcg-serve stores the normalized
	// build parameters here so a cache file is self-describing.
	Meta []byte
}

// levelBuilder is one LVSB entry: the construction strategy (and the
// adaptive policy's decision code) that built a level. JSON rather than
// fixed records because these are short free-form strings; the section is
// tiny either way.
type levelBuilder struct {
	Builder string `json:"builder,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

// payload is one section staged for writing.
type payload struct {
	sec  section
	data []byte
}

// Save writes h as a version-1 container. The output is deterministic:
// equal hierarchies (and equal options) produce equal bytes.
//
// Not persisted: per-level obs spans, pass-mapped histograms, and the
// StallStats of a stalled final attempt (the Stalled bit itself survives
// via FlagStalled). Everything a query path needs — graphs, maps, level
// shapes, timings, builder provenance — round-trips.
func Save(w io.Writer, h *coarsen.Hierarchy, opt SaveOptions) error {
	payloads, flags, err := stage(h, opt)
	if err != nil {
		return err
	}

	// Lay out: header, table, then 64-byte-aligned payloads.
	cur := align64(HeaderSize + int64(len(payloads))*SectionEntrySize)
	for i := range payloads {
		payloads[i].sec.offset = uint64(cur)
		payloads[i].sec.length = uint64(len(payloads[i].data))
		payloads[i].sec.crc = Checksum(payloads[i].data)
		cur = align64(cur + int64(len(payloads[i].data)))
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := encodeHeader(header{
		version:   Version,
		flags:     flags,
		nsections: uint32(len(payloads)),
		nlevels:   uint32(len(h.Graphs)),
		fileSize:  uint64(cur),
	})
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var entry [SectionEntrySize]byte
	for i := range payloads {
		encodeSection(entry[:], payloads[i].sec)
		if _, err := bw.Write(entry[:]); err != nil {
			return err
		}
	}
	written := int64(HeaderSize + len(payloads)*SectionEntrySize)
	var zeros [SectionAlign]byte
	pad := func(to int64) error {
		for written < to {
			k := min(int64(len(zeros)), to-written)
			if _, err := bw.Write(zeros[:k]); err != nil {
				return err
			}
			written += k
		}
		return nil
	}
	for i := range payloads {
		if err := pad(int64(payloads[i].sec.offset)); err != nil {
			return err
		}
		if _, err := bw.Write(payloads[i].data); err != nil {
			return err
		}
		written += int64(len(payloads[i].data))
	}
	if err := pad(cur); err != nil {
		return err
	}
	return bw.Flush()
}

// stage validates h's shape and assembles the section payloads in the
// normative order (docs/FORMAT.md): per level XADJ/ADJC/EWGT[/VWGT], then
// the coarse maps, then LVST+LVSB when the hierarchy has levels, then META.
func stage(h *coarsen.Hierarchy, opt SaveOptions) ([]payload, uint32, error) {
	L := len(h.Graphs)
	if L == 0 {
		return nil, 0, fmt.Errorf("hierfmt: empty hierarchy (no graphs)")
	}
	if len(h.Maps) != L-1 {
		return nil, 0, fmt.Errorf("hierfmt: %d graphs need %d maps, have %d", L, L-1, len(h.Maps))
	}
	if len(h.Stats) != 0 && len(h.Stats) != L-1 {
		return nil, 0, fmt.Errorf("hierfmt: %d stats records for %d levels", len(h.Stats), L-1)
	}
	flags := uint32(0)
	if opt.CompressAdj {
		flags |= FlagDeltaVarint
	}
	if h.Stalled {
		flags |= FlagStalled
	}

	var out []payload
	add := func(kind, level uint32, count int, data []byte) {
		out = append(out, payload{sec: section{kind: kind, level: level, count: uint32(count)}, data: data})
	}
	for i, g := range h.Graphs {
		n := g.N()
		if len(g.Xadj) != n+1 || int64(len(g.Adj)) != g.Xadj[n] || len(g.Wgt) != len(g.Adj) {
			return nil, 0, fmt.Errorf("hierfmt: level %d graph has inconsistent CSR shape", i)
		}
		if n > graph.MaxParseVertices {
			return nil, 0, fmt.Errorf("hierfmt: level %d has %d vertices, format caps at %d", i, n, graph.MaxParseVertices)
		}
		lvl := uint32(i)
		add(KindXadj, lvl, n+1, i64Bytes(g.Xadj))
		if opt.CompressAdj {
			add(KindAdjc, lvl, len(g.Adj), encodeAdjVarint(g.Xadj, g.Adj))
		} else {
			add(KindAdjc, lvl, len(g.Adj), i32Bytes(g.Adj))
		}
		add(KindEwgt, lvl, len(g.Wgt), i64Bytes(g.Wgt))
		if g.VWgt != nil {
			if len(g.VWgt) != n {
				return nil, 0, fmt.Errorf("hierfmt: level %d VWgt covers %d of %d vertices", i, len(g.VWgt), n)
			}
			add(KindVwgt, lvl, n, i64Bytes(g.VWgt))
		}
	}
	for i, m := range h.Maps {
		if len(m) != h.Graphs[i].N() {
			return nil, 0, fmt.Errorf("hierfmt: map %d covers %d vertices, level has %d", i, len(m), h.Graphs[i].N())
		}
		add(KindCmap, uint32(i), len(m), i32Bytes(m))
	}
	if L > 1 {
		stats, builders := statRecords(h)
		add(KindLvst, 0, L-1, stats)
		lvsb, err := json.Marshal(builders)
		if err != nil {
			return nil, 0, err
		}
		add(KindLvsb, 0, len(lvsb), lvsb)
	}
	if len(opt.Meta) > 0 {
		add(KindMeta, 0, len(opt.Meta), opt.Meta)
	}
	return out, flags, nil
}

// statRecords encodes the LVST section and the parallel LVSB string list.
// Hierarchies without recorded stats (hand-assembled, or read through the
// legacy shim) get synthesized records: correct shapes, zero timings.
func statRecords(h *coarsen.Hierarchy) ([]byte, []levelBuilder) {
	L := len(h.Graphs)
	buf := make([]byte, (L-1)*LevelStatSize)
	builders := make([]levelBuilder, L-1)
	for i := 0; i < L-1; i++ {
		st := coarsen.LevelStats{
			N:  h.Graphs[i].NumV,
			NC: h.Graphs[i+1].NumV,
			M:  h.Graphs[i].M(), // LevelStats.M is the level's input-graph edge count
		}
		if len(h.Stats) == L-1 {
			st = h.Stats[i]
		}
		b := buf[i*LevelStatSize:]
		binary.LittleEndian.PutUint32(b[0:], uint32(st.N))
		binary.LittleEndian.PutUint32(b[4:], uint32(st.NC))
		binary.LittleEndian.PutUint64(b[8:], uint64(st.M))
		binary.LittleEndian.PutUint64(b[16:], uint64(st.MapTime.Nanoseconds()))
		binary.LittleEndian.PutUint64(b[24:], uint64(st.BuildTime.Nanoseconds()))
		binary.LittleEndian.PutUint32(b[32:], uint32(st.Passes))
		binary.LittleEndian.PutUint32(b[36:], 0)
		builders[i] = levelBuilder{Builder: st.Builder, Reason: st.BuildReason}
	}
	return buf, builders
}

// SaveGraph writes a single graph as a one-level container — the binary
// ingest/export format. LoadGraph is its inverse.
func SaveGraph(w io.Writer, g *graph.Graph, opt SaveOptions) error {
	return Save(w, &coarsen.Hierarchy{Graphs: []*graph.Graph{g}}, opt)
}
