package hierfmt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mlcg/internal/coarsen"
	"mlcg/internal/gen"
	"mlcg/internal/graph"
)

// buildHier coarsens one generator instance with the given worker count.
func buildHier(t testing.TB, g *graph.Graph, workers int) *coarsen.Hierarchy {
	t.Helper()
	c := &coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: &coarsen.AutoConstruct{}, Seed: 11, Workers: workers}
	h, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func saveBytes(t testing.TB, h *coarsen.Hierarchy, opt SaveOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, h, opt); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// hierEqual compares everything the container claims to round-trip.
func hierEqual(t *testing.T, want, got *coarsen.Hierarchy) {
	t.Helper()
	if len(got.Graphs) != len(want.Graphs) || len(got.Maps) != len(want.Maps) {
		t.Fatalf("shape: %d/%d graphs, %d/%d maps",
			len(got.Graphs), len(want.Graphs), len(got.Maps), len(want.Maps))
	}
	for i := range want.Graphs {
		if !graph.Equal(want.Graphs[i], got.Graphs[i]) {
			t.Errorf("level %d graph differs", i)
		}
	}
	for i := range want.Maps {
		for u := range want.Maps[i] {
			if want.Maps[i][u] != got.Maps[i][u] {
				t.Fatalf("map %d differs at vertex %d", i, u)
			}
		}
	}
	if got.Stalled != want.Stalled {
		t.Errorf("Stalled: got %v, want %v", got.Stalled, want.Stalled)
	}
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("stats: %d records, want %d", len(got.Stats), len(want.Stats))
	}
	for i := range want.Stats {
		w, g := want.Stats[i], got.Stats[i]
		if g.N != w.N || g.NC != w.NC || g.M != w.M ||
			g.MapTime != w.MapTime || g.BuildTime != w.BuildTime ||
			g.Passes != w.Passes || g.Builder != w.Builder || g.BuildReason != w.BuildReason {
			t.Errorf("stats %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		opt  SaveOptions
	}{
		{"grid-raw", gen.Grid2D(40, 40), SaveOptions{}},
		{"grid-varint", gen.Grid2D(40, 40), SaveOptions{CompressAdj: true}},
		{"rmat-raw", gen.RMAT(10, 8, 3), SaveOptions{}},
		{"rmat-varint-meta", gen.RMAT(10, 8, 3), SaveOptions{CompressAdj: true, Meta: []byte(`{"who":"test"}`)}},
		{"ba", gen.BA(500, 3, 5), SaveOptions{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := buildHier(t, tc.g, 2)
			data := saveBytes(t, h, tc.opt)
			got, meta, err := Load(data, LoadOptions{FullValidate: true})
			if err != nil {
				t.Fatal(err)
			}
			hierEqual(t, h, got)
			if !bytes.Equal(meta, tc.opt.Meta) {
				t.Errorf("meta: got %q, want %q", meta, tc.opt.Meta)
			}
			// Save→load→save is byte-identical: the container is canonical.
			again := saveBytes(t, got, SaveOptions{CompressAdj: tc.opt.CompressAdj, Meta: meta})
			if !bytes.Equal(data, again) {
				t.Fatalf("save→load→save not byte-identical (%d vs %d bytes)", len(data), len(again))
			}
		})
	}
}

// TestRoundTripAcrossWorkers pins the byte-identity golden property: the
// coarsening pipeline guarantees identical hierarchies at every worker
// count, and Save is deterministic, so the container bytes must match too.
func TestRoundTripAcrossWorkers(t *testing.T) {
	for _, g := range []*graph.Graph{gen.Grid2D(30, 30), gen.RMAT(9, 8, 3)} {
		var want []byte
		for _, workers := range []int{1, 2, 4, 8} {
			// A fixed builder: the adaptive policy may legitimately pick
			// different (output-identical) builders per worker count, which
			// would change the LVSB provenance strings.
			c := &coarsen.Coarsener{Mapper: coarsen.HEC{}, Builder: coarsen.BuildSort{}, Seed: 11, Workers: workers}
			h, err := c.Run(g)
			if err != nil {
				t.Fatal(err)
			}
			// Wall-clock timings are the one run-dependent field; zero them
			// so the comparison pins the structural bytes.
			for i := range h.Stats {
				h.Stats[i].MapTime, h.Stats[i].BuildTime = 0, 0
			}
			data := saveBytes(t, h, SaveOptions{CompressAdj: true})
			if want == nil {
				want = data
			} else if !bytes.Equal(want, data) {
				t.Fatalf("workers=%d produced different container bytes", workers)
			}
		}
	}
}

func TestGraphOnlyContainer(t *testing.T) {
	g := gen.TriMesh(20, 20, 3)
	var buf bytes.Buffer
	if err := SaveGraph(&buf, g, SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadGraph(buf.Bytes(), LoadOptions{FullValidate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(g, got) {
		t.Error("graph container round trip differs")
	}
	// A multi-level container must be refused by the graph loader.
	h := buildHier(t, g, 1)
	if _, _, err := LoadGraph(saveBytes(t, h, SaveOptions{}), LoadOptions{}); err == nil {
		t.Error("LoadGraph accepted a multi-level hierarchy")
	}
}

func TestStalledFlagRoundTrip(t *testing.T) {
	h := buildHier(t, gen.Grid2D(20, 20), 1)
	h.Stalled = true
	h.StallStats = &coarsen.LevelStats{N: 5, NC: 5} // documented as not persisted
	got, _, err := Load(saveBytes(t, h, SaveOptions{}), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Stalled {
		t.Error("Stalled flag lost")
	}
	if got.StallStats != nil {
		t.Error("StallStats unexpectedly persisted")
	}
}

func TestSaveFileLoadFileOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.mlcg")
	h := buildHier(t, gen.RMAT(9, 8, 7), 4)
	if err := SaveFile(path, h, SaveOptions{Meta: []byte("m")}); err != nil {
		t.Fatal(err)
	}
	// No temp droppings after a successful save.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries after SaveFile, want 1", len(ents))
	}

	got, meta, err := LoadFile(path, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hierEqual(t, h, got)
	if string(meta) != "m" {
		t.Errorf("meta %q", meta)
	}

	m, err := Open(path, LoadOptions{ZeroCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	hierEqual(t, h, m.H)
	// The mapped view is usable for a real solve before Close.
	labels := make([]int32, m.H.Coarsest().N())
	for i := range labels {
		labels[i] = int32(i)
	}
	if fine := m.H.ProjectToFine(labels); len(fine) != h.Graphs[0].N() {
		t.Errorf("projection covers %d vertices", len(fine))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestVarintAdjacency(t *testing.T) {
	// Unsorted rows (negative deltas) must round-trip too: zigzag keeps
	// the encoding total.
	xadj := []int64{0, 3, 5}
	adj := []int32{4, 1, 3, 0, 2}
	enc := encodeAdjVarint(xadj, adj)
	dec, err := decodeAdjVarint(enc, xadj, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range adj {
		if dec[i] != adj[i] {
			t.Fatalf("element %d: got %d, want %d", i, dec[i], adj[i])
		}
	}
	// Compression on a real sorted-adjacency graph beats raw int32.
	g := gen.Grid2D(50, 50)
	h := &coarsen.Hierarchy{Graphs: []*graph.Graph{g}}
	raw := saveBytes(t, h, SaveOptions{})
	comp := saveBytes(t, h, SaveOptions{CompressAdj: true})
	if len(comp) >= len(raw) {
		t.Errorf("varint container (%d B) not smaller than raw (%d B)", len(comp), len(raw))
	}
}
