package hierfmt

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"mlcg/internal/graph"
)

// specGraph is the docs/FORMAT.md §8 worked example: the path graph
// 0—1—2 with unit edge weights.
func specGraph() *graph.Graph {
	return &graph.Graph{
		NumV: 3,
		Xadj: []int64{0, 1, 3, 4},
		Adj:  []int32{1, 0, 2, 1},
		Wgt:  []int64{1, 1, 1, 1},
	}
}

// hexdump renders b in the fixed-width layout the spec's fenced block
// uses (hexdump -C style, no repeated-line squeezing).
func hexdump(b []byte) string {
	var sb strings.Builder
	for off := 0; off < len(b); off += 16 {
		end := off + 16
		if end > len(b) {
			end = len(b)
		}
		fmt.Fprintf(&sb, "%08x  ", off)
		for i := off; i < off+16; i++ {
			if i == off+8 {
				sb.WriteByte(' ')
			}
			if i < end {
				fmt.Fprintf(&sb, "%02x ", b[i])
			} else {
				sb.WriteString("   ")
			}
		}
		sb.WriteString(" |")
		for i := off; i < end; i++ {
			c := b[i]
			if c < 0x20 || c > 0x7e {
				c = '.'
			}
			sb.WriteByte(c)
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// specFencedHexdump extracts the ```hexdump fenced block from
// docs/FORMAT.md.
func specFencedHexdump(t *testing.T) string {
	t.Helper()
	raw, err := os.ReadFile("../../docs/FORMAT.md")
	if err != nil {
		t.Fatalf("spec not readable: %v", err)
	}
	const open = "```hexdump\n"
	doc := string(raw)
	i := strings.Index(doc, open)
	if i < 0 {
		t.Fatal("docs/FORMAT.md has no ```hexdump fenced block")
	}
	rest := doc[i+len(open):]
	j := strings.Index(rest, "```")
	if j < 0 {
		t.Fatal("docs/FORMAT.md hexdump fence is unterminated")
	}
	return rest[:j]
}

// TestFormatSpecWorkedExample regenerates the spec's worked example with
// the real writer and diffs it line-by-line against the hexdump printed
// in docs/FORMAT.md — the `make fmt-spec-check` target. Any format
// change that shifts a byte fails here until the spec is updated too.
func TestFormatSpecWorkedExample(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveGraph(&buf, specGraph(), SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	got := hexdump(buf.Bytes())
	want := specFencedHexdump(t)
	if got == want {
		// The spec also narrates file_size = 384; pin it so prose and
		// fence cannot diverge on the headline number.
		if buf.Len() != 384 {
			t.Fatalf("worked example is %d bytes, spec prose says 384", buf.Len())
		}
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Fatalf("docs/FORMAT.md worked example diverges from the writer at line %d:\n  spec:   %q\n  writer: %q\nregenerate the fenced block from the real bytes", i+1, w, g)
		}
	}
	t.Fatal("hexdump mismatch (whitespace only?)")
}

// TestFormatSpecExampleLoads confirms the worked example is not just
// byte-stable but a valid, loadable container describing the graph the
// spec claims.
func TestFormatSpecExampleLoads(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveGraph(&buf, specGraph(), SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	g, meta, err := LoadGraph(buf.Bytes(), LoadOptions{FullValidate: true})
	if err != nil {
		t.Fatal(err)
	}
	if meta != nil {
		t.Errorf("unexpected META payload %q", meta)
	}
	if !graph.Equal(g, specGraph()) {
		t.Error("worked example did not round-trip the path graph")
	}
}
