// Package hierfmt implements the module's versioned, checksummed,
// mmap-friendly binary container for graphs and full coarsening
// hierarchies — the on-disk artifact that lets mlcg-serve restart without
// rebuilding and batch pipelines skip re-parsing text inputs. The
// normative byte-level specification lives in docs/FORMAT.md; this package
// is its reference implementation.
//
// Layout (all integers little-endian):
//
//	header (64 B) ‖ section table (32 B × nsections) ‖ payload sections
//
// Every payload section starts at a 64-byte-aligned file offset (one cache
// line, and a safe alignment for zero-copy int64 views over an mmap), is
// individually CRC-32C checksummed, and is bounded by the file size before
// a single byte is allocated — the chunked-length discipline the graph
// binary reader adopted for untrusted inputs, extended here to a whole
// container: a lying section table costs the attacker their own wire
// bytes, never a giant make().
//
// Save is deterministic: the same hierarchy (and the same options)
// produces the same bytes, so content hashes of saved files are stable and
// save→load→save round-trips are byte-identical. That property is tested
// across worker counts — the coarsening pipeline already guarantees
// byte-identical hierarchies at any parallelism, and the container
// preserves it on disk.
package hierfmt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Magic is the 8-byte file signature, "MLCGHF01" in ASCII. The trailing
// digits are cosmetic (humans running `head -c8`); the real version lives
// in the header's version field.
const Magic = uint64(0x3130464847434C4D) // "MLCGHF01" little-endian

// Version is the current container version. Readers reject files with a
// different version rather than guessing at field meanings; see
// docs/FORMAT.md for the compatibility policy.
const Version = uint32(1)

// FileExt is the conventional filename extension for container files.
const FileExt = ".mlcg"

// Header flags.
const (
	// FlagDeltaVarint marks ADJC sections as zigzag delta-varint streams
	// instead of raw int32 arrays (SaveOptions.CompressAdj).
	FlagDeltaVarint = uint32(1 << 0)
	// FlagStalled records Hierarchy.Stalled: coarsening stopped because a
	// mapping produced no reduction, not because the cutoff was reached.
	FlagStalled = uint32(1 << 1)
)

// flagsKnown masks every flag this version defines; readers reject files
// with unknown bits set (they would change payload meaning).
const flagsKnown = FlagDeltaVarint | FlagStalled

// Section kinds (FourCC codes, stored as little-endian uint32 so the
// ASCII reads forward in a hexdump).
const (
	KindXadj = uint32('X') | uint32('A')<<8 | uint32('D')<<16 | uint32('J')<<24 // CSR offsets, int64, count = n+1
	KindAdjc = uint32('A') | uint32('D')<<8 | uint32('J')<<16 | uint32('C')<<24 // adjacency, int32 (or varint), count = nnz
	KindEwgt = uint32('E') | uint32('W')<<8 | uint32('G')<<16 | uint32('T')<<24 // edge weights, int64, count = nnz
	KindVwgt = uint32('V') | uint32('W')<<8 | uint32('G')<<16 | uint32('T')<<24 // vertex weights, int64, count = n (optional)
	KindCmap = uint32('C') | uint32('M')<<8 | uint32('A')<<16 | uint32('P')<<24 // coarse map, int32, count = n of fine level
	KindLvst = uint32('L') | uint32('V')<<8 | uint32('S')<<16 | uint32('T')<<24 // LevelStats records, 40 B each
	KindLvsb = uint32('L') | uint32('V')<<8 | uint32('S')<<16 | uint32('B')<<24 // per-level builder/reason strings, JSON
	KindMeta = uint32('M') | uint32('E')<<8 | uint32('T')<<16 | uint32('A')<<24 // caller-provided opaque bytes (optional)
)

// Fixed sizes of the on-disk structures.
const (
	HeaderSize       = 64
	SectionEntrySize = 32
	// LevelStatSize is the size of one LVST record: n i32, nc i32, m i64,
	// map_ns i64, build_ns i64, passes i32, reserved u32.
	LevelStatSize = 40
	// SectionAlign is the payload alignment. 64 bytes keeps each section on
	// its own cache line and guarantees 8-byte alignment for int64 views.
	SectionAlign = 64
)

// Hard caps on header-claimed structure counts, mirroring the graph
// parsers' MaxParseVertices discipline: far above real workloads, small
// enough that a crafted header cannot demand absurd table allocations.
const (
	maxSections = 1 << 22
	maxLevels   = 1 << 20
)

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// amd64/arm64). All container checksums are CRC-32C.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the container's CRC-32C over b.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// align64 rounds up to the next SectionAlign boundary.
func align64(x int64) int64 {
	return (x + SectionAlign - 1) &^ (SectionAlign - 1)
}

// header is the parsed 64-byte file header.
type header struct {
	version   uint32
	flags     uint32
	nsections uint32
	nlevels   uint32
	fileSize  uint64
}

// encodeHeader writes the header into a 64-byte buffer, including the
// trailing CRC over bytes [0,60).
func encodeHeader(h header) [HeaderSize]byte {
	var b [HeaderSize]byte
	binary.LittleEndian.PutUint64(b[0:], Magic)
	binary.LittleEndian.PutUint32(b[8:], h.version)
	binary.LittleEndian.PutUint32(b[12:], h.flags)
	binary.LittleEndian.PutUint32(b[16:], h.nsections)
	binary.LittleEndian.PutUint32(b[20:], h.nlevels)
	binary.LittleEndian.PutUint64(b[24:], h.fileSize)
	// Bytes [32,56) and [56,60) are reserved (zero) in version 1.
	binary.LittleEndian.PutUint32(b[60:], Checksum(b[:60]))
	return b
}

// decodeHeader parses and verifies the fixed header. It checks only
// self-contained properties; size cross-checks against the actual data
// happen in Load where the real length is known.
func decodeHeader(b []byte) (header, error) {
	var h header
	if len(b) < HeaderSize {
		return h, fmt.Errorf("hierfmt: file too short for header: %d bytes", len(b))
	}
	if got := binary.LittleEndian.Uint64(b[0:]); got != Magic {
		return h, fmt.Errorf("hierfmt: bad magic %#x", got)
	}
	if got := Checksum(b[:60]); got != binary.LittleEndian.Uint32(b[60:]) {
		return h, fmt.Errorf("hierfmt: header checksum mismatch (file %#x, computed %#x)",
			binary.LittleEndian.Uint32(b[60:]), got)
	}
	h.version = binary.LittleEndian.Uint32(b[8:])
	if h.version != Version {
		return h, fmt.Errorf("hierfmt: unsupported version %d (reader supports %d)", h.version, Version)
	}
	h.flags = binary.LittleEndian.Uint32(b[12:])
	if h.flags&^flagsKnown != 0 {
		return h, fmt.Errorf("hierfmt: unknown flag bits %#x", h.flags&^flagsKnown)
	}
	h.nsections = binary.LittleEndian.Uint32(b[16:])
	h.nlevels = binary.LittleEndian.Uint32(b[20:])
	h.fileSize = binary.LittleEndian.Uint64(b[24:])
	for _, off := range []int{32, 40, 48} {
		if binary.LittleEndian.Uint64(b[off:]) != 0 {
			return h, fmt.Errorf("hierfmt: reserved header bytes at %d are non-zero", off)
		}
	}
	if binary.LittleEndian.Uint32(b[56:]) != 0 {
		return h, fmt.Errorf("hierfmt: reserved header bytes at 56 are non-zero")
	}
	if h.nsections == 0 || h.nsections > maxSections {
		return h, fmt.Errorf("hierfmt: implausible section count %d", h.nsections)
	}
	if h.nlevels == 0 || h.nlevels > maxLevels {
		return h, fmt.Errorf("hierfmt: implausible level count %d", h.nlevels)
	}
	return h, nil
}

// section is one parsed table entry.
type section struct {
	kind   uint32
	level  uint32
	offset uint64
	length uint64
	count  uint32
	crc    uint32
}

func encodeSection(b []byte, s section) {
	binary.LittleEndian.PutUint32(b[0:], s.kind)
	binary.LittleEndian.PutUint32(b[4:], s.level)
	binary.LittleEndian.PutUint64(b[8:], s.offset)
	binary.LittleEndian.PutUint64(b[16:], s.length)
	binary.LittleEndian.PutUint32(b[24:], s.count)
	binary.LittleEndian.PutUint32(b[28:], s.crc)
}

func decodeSection(b []byte) section {
	return section{
		kind:   binary.LittleEndian.Uint32(b[0:]),
		level:  binary.LittleEndian.Uint32(b[4:]),
		offset: binary.LittleEndian.Uint64(b[8:]),
		length: binary.LittleEndian.Uint64(b[16:]),
		count:  binary.LittleEndian.Uint32(b[24:]),
		crc:    binary.LittleEndian.Uint32(b[28:]),
	}
}

// kindName renders a FourCC for error messages.
func kindName(k uint32) string {
	b := []byte{byte(k), byte(k >> 8), byte(k >> 16), byte(k >> 24)}
	for _, c := range b {
		if c < 0x20 || c > 0x7e {
			return fmt.Sprintf("%#x", k)
		}
	}
	return string(b)
}
