package hierfmt

import (
	"encoding/binary"
	"unsafe"
)

// Raw-array views. The container stores int32/int64 arrays as their
// little-endian memory image, so on a little-endian host a section can be
// written straight from (and, for aligned mmap data, read straight into) a
// slice header with no per-element work. Big-endian or misaligned cases
// fall back to an explicit per-element loop; both paths produce identical
// bytes, the fast path just skips the copy.

// hostLittleEndian is probed once: the unsafe casts below are only valid
// when the in-memory representation already matches the file format.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// i64Bytes returns the little-endian byte image of s. On little-endian
// hosts this aliases s (callers must not retain it past s's lifetime).
func i64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

// i32Bytes is i64Bytes for int32 payloads.
func i32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

// bytesToI64 decodes count little-endian int64 values from b into a fresh
// slice (always copies: loaded hierarchies own their storage unless the
// caller explicitly opted into a zero-copy mapped view).
func bytesToI64(b []byte, count int) []int64 {
	out := make([]int64, count)
	if hostLittleEndian && count > 0 && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		copy(out, unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), count))
		return out
	}
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// bytesToI32 is bytesToI64 for int32 payloads.
func bytesToI32(b []byte, count int) []int32 {
	out := make([]int32, count)
	if hostLittleEndian && count > 0 && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		copy(out, unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), count))
		return out
	}
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}
