package hierfmt

import (
	"encoding/binary"
	"fmt"
)

// Delta-varint adjacency compression (FlagDeltaVarint). Each CSR row's
// neighbor ids are encoded in storage order as zigzag(cur - prev) unsigned
// varints, with prev resetting to 0 at every row boundary. Canonical
// (sorted) adjacency makes most deltas small and positive, so typical
// coarse graphs compress to 1–2 bytes per neighbor instead of 4; zigzag
// keeps the encoding total (any int32 sequence round-trips byte-exactly),
// so the format does not silently require sorted rows.

// zigzag maps a signed delta onto the unsigned varint domain.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodeAdjVarint compresses adj (row boundaries from xadj) into a fresh
// byte slice.
func encodeAdjVarint(xadj []int64, adj []int32) []byte {
	out := make([]byte, 0, len(adj)) // sorted rows usually beat 1 B/neighbor... reserve low
	var tmp [binary.MaxVarintLen64]byte
	for u := 0; u+1 < len(xadj); u++ {
		prev := int64(0)
		for _, v := range adj[xadj[u]:xadj[u+1]] {
			n := binary.PutUvarint(tmp[:], zigzag(int64(v)-prev))
			out = append(out, tmp[:n]...)
			prev = int64(v)
		}
	}
	return out
}

// decodeAdjVarint expands a varint ADJC payload back into int32 adjacency.
// The element count is fixed by xadj (already validated against the section
// table's count), and every decoded value is bounds-checked against n, so a
// hostile payload cannot produce out-of-range neighbor ids.
func decodeAdjVarint(data []byte, xadj []int64, n int32) ([]int32, error) {
	total := xadj[len(xadj)-1]
	out := make([]int32, 0, total)
	pos := 0
	for u := 0; u+1 < len(xadj); u++ {
		prev := int64(0)
		for k := xadj[u]; k < xadj[u+1]; k++ {
			uv, siz := binary.Uvarint(data[pos:])
			if siz <= 0 {
				return nil, fmt.Errorf("hierfmt: truncated or overlong varint in ADJC at byte %d", pos)
			}
			pos += siz
			v := prev + unzigzag(uv)
			if v < 0 || v >= int64(n) {
				return nil, fmt.Errorf("hierfmt: ADJC neighbor %d out of range [0,%d)", v, n)
			}
			out = append(out, int32(v))
			prev = v
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("hierfmt: ADJC has %d trailing bytes after %d elements", len(data)-pos, total)
	}
	return out, nil
}
