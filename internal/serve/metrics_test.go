package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mlcg/internal/gen"
	"mlcg/internal/obs"
)

// scrape fetches /metrics and returns the body and Content-Type.
func scrape(t testing.TB, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d: %s", resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// smokeLoad pushes one ingest, one finished build, and one query of each
// kind through the server, so every lifecycle histogram has observations.
func smokeLoad(t testing.TB, ts *httptest.Server) (graphInfo, buildStatus) {
	t.Helper()
	g := gen.Grid2D(20, 20)
	gi := ingest(t, ts, metisBytes(t, g), "")
	st := buildWait(t, ts, buildParams{Graph: gi.ID})
	code, raw := doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/partition",
		partitionRequest{Hierarchy: st.ID, K: 2}, nil)
	if code != http.StatusOK {
		t.Fatalf("partition: %d %s", code, raw)
	}
	code, raw = doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/cluster",
		clusterRequest{Hierarchy: st.ID}, nil)
	if code != http.StatusOK {
		t.Fatalf("cluster: %d %s", code, raw)
	}
	labels := make([]int32, st.CoarseN)
	code, raw = doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/project",
		projectRequest{Hierarchy: st.ID, Labels: labels}, nil)
	if code != http.StatusOK {
		t.Fatalf("project: %d %s", code, raw)
	}
	return gi, st
}

// TestMetricsPrometheusExposition is the strict gate on the /metrics
// rewrite: after a smoke load the whole document must pass the pure-Go
// exposition linter (HELP/TYPE pairing, name charset, histogram bucket
// monotonicity, +Inf terminal buckets, no duplicate series), and the
// lifecycle histograms must carry the observations the load generated.
func TestMetricsPrometheusExposition(t *testing.T) {
	_, ts := testServer(t, Config{})
	smokeLoad(t, ts)

	doc, ctype := scrape(t, ts.URL)
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition version", ctype)
	}
	stats, err := obs.LintMetrics(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("/metrics failed exposition lint: %v\n%s", err, doc)
	}
	for family, typ := range map[string]string{
		"mlcg_builds_completed_total":   "counter",
		"mlcg_build_queue_depth":        "gauge",
		"mlcg_ingest_seconds":           "histogram",
		"mlcg_build_queue_wait_seconds": "histogram",
		"mlcg_build_run_seconds":        "histogram",
		"mlcg_query_seconds":            "histogram",
		"mlcg_build_level_map_seconds":  "histogram",
		"go_goroutines":                 "gauge",
		"go_gc_pause_seconds_total":     "counter",
	} {
		if got := stats.Families[family]; got != typ {
			t.Errorf("family %s: type %q, want %q", family, got, typ)
		}
	}
	// The load produced exactly one of each lifecycle event; the counts
	// must say so (and the per-kind/per-band labels must be present).
	for _, want := range []string{
		"mlcg_ingest_seconds_count 1",
		"mlcg_build_queue_wait_seconds_count 1",
		"mlcg_build_run_seconds_count 1",
		`mlcg_query_seconds_count{kind="partition"} 1`,
		`mlcg_query_seconds_count{kind="cluster"} 1`,
		`mlcg_query_seconds_count{kind="project"} 1`,
		`mlcg_build_level_map_seconds_count{level="0"} 1`,
		`mlcg_build_level_build_seconds_count{level="0"} 1`,
		`mlcg_query_seconds_bucket{kind="partition",le="+Inf"} 1`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Folded kernel counters survive sanitization as counter families.
	if !strings.Contains(doc, "mlcg_ctr_") {
		t.Errorf("/metrics missing sanitized kernel counters\n%s", doc)
	}
	if stats.Samples == 0 {
		t.Fatal("lint saw no samples")
	}
}

// TestMetricsConcurrentScrape hammers /metrics while requests run; under
// -race this guards the snapshot-then-write discipline (no server lock may
// be held across ResponseWriter writes).
func TestMetricsConcurrentScrape(t *testing.T) {
	_, ts := testServer(t, Config{})
	g := gen.Grid2D(16, 16)
	gi := ingest(t, ts, metisBytes(t, g), "")
	st := buildWait(t, ts, buildParams{Graph: gi.ID})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			labels := make([]int32, st.CoarseN)
			for i := 0; i < 10; i++ {
				doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/project",
					projectRequest{Hierarchy: st.ID, Labels: labels}, nil)
			}
		}()
	}
	wg.Wait()
	doc, _ := scrape(t, ts.URL)
	if _, err := obs.LintMetrics(strings.NewReader(doc)); err != nil {
		t.Fatalf("post-hammer document invalid: %v", err)
	}
}

func TestRequestIDHeader(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get("X-Request-Id")
	if minted == "" {
		t.Fatal("no X-Request-Id minted")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-supplied-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-supplied-7" {
		t.Fatalf("inbound request id not honored: got %q", got)
	}
}

// lockedBuffer is a goroutine-safe sink for the test logger (build lines
// are emitted from worker goroutines).
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestStructuredRequestLogs asserts the one-line-per-request contract:
// after the smoke load there is exactly one JSON log line per ingest,
// build, and query, each carrying the request id, outcome, and duration.
func TestStructuredRequestLogs(t *testing.T) {
	var sink lockedBuffer
	logger := slog.New(slog.NewJSONHandler(&sink, nil))
	_, ts := testServer(t, Config{Logger: logger})
	smokeLoad(t, ts)

	perKind := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(sink.String()), "\n") {
		var entry struct {
			Msg     string  `json:"msg"`
			Req     string  `json:"req"`
			Outcome string  `json:"outcome"`
			MS      float64 `json:"ms"`
			Levels  int     `json:"levels"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		perKind[entry.Msg]++
		if entry.Req == "" {
			t.Errorf("%s line missing request id: %s", entry.Msg, line)
		}
		if entry.Outcome != "ok" {
			t.Errorf("%s line outcome %q, want ok: %s", entry.Msg, entry.Outcome, line)
		}
		if entry.Msg == "build" && entry.Levels < 1 {
			t.Errorf("build line missing levels: %s", line)
		}
	}
	for kind, want := range map[string]int{
		"ingest": 1, "build": 1, "partition": 1, "cluster": 1, "project": 1,
	} {
		if perKind[kind] != want {
			t.Errorf("%d %s log lines, want %d\n%s", perKind[kind], kind, want, sink.String())
		}
	}
}

// TestSanitizedCounterNamesValid double-checks the /metrics export edge:
// every exported family name must be a valid Prometheus name even though
// raw obs counter keys may contain colons (construction policies).
func TestSanitizedCounterNamesValid(t *testing.T) {
	s, ts := testServer(t, Config{})
	// Inject hostile raw keys directly into the fold.
	s.foldCounters(map[string]int64{
		"policy:sort:trivial": 3,
		"policy.sort.trivial": 4,
		"9starts_with_digit":  5,
	})
	doc, _ := scrape(t, ts.URL)
	if _, err := obs.LintMetrics(strings.NewReader(doc)); err != nil {
		t.Fatalf("hostile counter keys broke the exposition: %v\n%s", err, doc)
	}
	// Both colliding keys survive as distinct series.
	if !strings.Contains(doc, "mlcg_ctr_policy_sort_trivial_total 4") ||
		!strings.Contains(doc, "mlcg_ctr_policy_sort_trivial_2_total 3") {
		t.Errorf("sanitization dedup lost a counter:\n%s", doc)
	}
	if !strings.Contains(doc, "mlcg_ctr__9starts_with_digit_total 5") {
		t.Errorf("leading-digit key not sanitized:\n%s", doc)
	}
}
