package serve

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlcg/internal/gen"
	"mlcg/internal/hierfmt"
)

// TestWarmRestart is the persistence contract end to end: build on one
// server incarnation, kill it, start a fresh one on the same cache dir, and
// the same request is served from disk — no rebuild, no re-ingest.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	g := gen.Grid2D(40, 40)

	// Incarnation one: ingest, build, spill.
	s1, ts1 := testServer(t, Config{CacheDir: dir})
	info := ingest(t, ts1, metisBytes(t, g), "")
	st := buildWait(t, ts1, buildParams{Graph: info.ID})
	if got := s1.stats.hierSpills.Load(); got != 1 {
		t.Fatalf("spills after build: %d, want 1", got)
	}
	path := filepath.Join(dir, st.ID+hierfmt.FileExt)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("spill file: %v", err)
	}
	// The spilled container stands alone: loadable, parameters in META.
	if _, meta, err := hierfmt.LoadFile(path, hierfmt.LoadOptions{FullValidate: true}); err != nil {
		t.Fatalf("spilled container unreadable: %v", err)
	} else if !strings.Contains(string(meta), info.ID) {
		t.Fatalf("META %q does not reference the graph id", meta)
	}
	ts1.Close()
	s1.Close()

	// Incarnation two: empty caches, same dir. The build request must be
	// answered from disk — note the graph is NOT re-ingested first.
	s2, ts2 := testServer(t, Config{CacheDir: dir})
	st2 := buildWait(t, ts2, buildParams{Graph: info.ID})
	if st2.ID != st.ID {
		t.Fatalf("restart changed hierarchy id: %s vs %s", st2.ID, st.ID)
	}
	if !st2.Cached {
		t.Error("disk-served build not marked cached")
	}
	if st2.Levels != st.Levels || st2.CoarseN != st.CoarseN {
		t.Errorf("disk hierarchy shape %d/%d, want %d/%d", st2.Levels, st2.CoarseN, st.Levels, st.CoarseN)
	}
	if got := s2.stats.buildsCompleted.Load(); got != 0 {
		t.Errorf("restart recoarsened: builds_completed=%d, want 0", got)
	}
	if got := s2.stats.hierDiskHits.Load(); got != 1 {
		t.Errorf("disk hits: %d, want 1", got)
	}
	if got := s2.stats.hierSpills.Load(); got != 0 {
		t.Errorf("disk hit re-spilled: %d", got)
	}

	// Queries work against the disk-loaded hierarchy.
	var part struct {
		Parts int `json:"parts"`
	}
	code, raw := doJSON(t, http.DefaultClient, "POST", ts2.URL+"/v1/partition",
		map[string]any{"hierarchy": st.ID, "k": 4}, &part)
	if code != http.StatusOK {
		t.Fatalf("partition on warm hierarchy: %d %s", code, raw)
	}

	// Incarnation three: the query path alone (no build request first)
	// resolves the id from disk too.
	s3, ts3 := testServer(t, Config{CacheDir: dir})
	code, raw = doJSON(t, http.DefaultClient, "POST", ts3.URL+"/v1/partition",
		map[string]any{"hierarchy": st.ID, "k": 4}, &part)
	if code != http.StatusOK {
		t.Fatalf("query-first warm restart: %d %s", code, raw)
	}
	if got := s3.stats.hierDiskHits.Load(); got != 1 {
		t.Errorf("query-first disk hits: %d, want 1", got)
	}
	resp, err := http.Get(ts3.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw2, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw2)
	for _, want := range []string{
		"mlcg_hier_disk_hits_total 1",
		"mlcg_hier_spills_total 0",
		"mlcg_hier_load_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestNoCacheDirNoSpill pins the default: persistence fully off.
func TestNoCacheDirNoSpill(t *testing.T) {
	s, ts := testServer(t, Config{})
	info := ingest(t, ts, metisBytes(t, gen.Grid2D(20, 20)), "")
	buildWait(t, ts, buildParams{Graph: info.ID})
	if got := s.stats.hierSpills.Load(); got != 0 {
		t.Errorf("spills without CacheDir: %d", got)
	}
	if got := s.stats.hierDiskMisses.Load(); got != 0 {
		t.Errorf("disk probes without CacheDir: %d", got)
	}
}

// TestCorruptCacheFile: a damaged container is a counted load error and a
// normal rebuild, never a wrong answer or a crash.
func TestCorruptCacheFile(t *testing.T) {
	dir := t.TempDir()
	g := gen.Grid2D(25, 25)

	s1, ts1 := testServer(t, Config{CacheDir: dir})
	info := ingest(t, ts1, metisBytes(t, g), "")
	st := buildWait(t, ts1, buildParams{Graph: info.ID})
	ts1.Close()
	s1.Close()

	// Flip one payload byte: header parses, a section checksum won't.
	path := filepath.Join(dir, st.ID+hierfmt.FileExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := testServer(t, Config{CacheDir: dir})
	ingest(t, ts2, metisBytes(t, g), "")
	st2 := buildWait(t, ts2, buildParams{Graph: info.ID})
	if st2.Cached {
		t.Error("corrupt container served as a cache hit")
	}
	if got := s2.stats.hierLoadErrors.Load(); got != 1 {
		t.Errorf("load errors: %d, want 1", got)
	}
	if got := s2.stats.buildsCompleted.Load(); got != 1 {
		t.Errorf("rebuild after corruption: builds_completed=%d, want 1", got)
	}
	// The rebuild's spill replaced the corrupt file with a valid one.
	if _, _, err := hierfmt.LoadFile(path, hierfmt.LoadOptions{}); err != nil {
		t.Errorf("respilled container still unreadable: %v", err)
	}
}

// TestRenamedCacheFileRejected: content addressing holds on disk — a file
// renamed to another id fails the META integrity check.
func TestRenamedCacheFileRejected(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := testServer(t, Config{CacheDir: dir})
	info := ingest(t, ts1, metisBytes(t, gen.Grid2D(20, 20)), "")
	st := buildWait(t, ts1, buildParams{Graph: info.ID})
	ts1.Close()
	s1.Close()

	// Pose the spilled container as a different parameter set's cache slot.
	other := buildParams{Graph: info.ID, Seed: 999}.normalize()
	src := filepath.Join(dir, st.ID+hierfmt.FileExt)
	dst := filepath.Join(dir, other.id()+hierfmt.FileExt)
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := testServer(t, Config{CacheDir: dir})
	ingest(t, ts2, metisBytes(t, gen.Grid2D(20, 20)), "")
	st2 := buildWait(t, ts2, other)
	if st2.Cached {
		t.Error("renamed container accepted for the wrong parameters")
	}
	if got := s2.stats.hierLoadErrors.Load(); got != 1 {
		t.Errorf("load errors: %d, want 1", got)
	}
}
