package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"mlcg/internal/obs"
)

// Request telemetry: latency histograms for every lifecycle stage, request
// ids that tie a structured log line to the obs trace that produced it, and
// the outcome taxonomy shared by logs, the flight recorder, and /metrics.
//
// Histograms are obs.Histogram (lock-free, allocation-free Observe), so
// recording sits directly on the request path: the cost is one nil check
// plus two atomic adds, cheap enough to record every request rather than
// sampling.

// Query kinds index the per-kind query histogram and the "kind" label on
// mlcg_query_seconds.
const (
	qPartition = iota
	qCluster
	qProject
	numQueryKinds
)

var queryKindNames = [numQueryKinds]string{"partition", "cluster", "project"}

// Level bands bucket per-level map/build phase times by level index. Level
// 0 is the full-size fine graph and dominates; deeper levels shrink
// geometrically, so exponentially widening bands ("0", "1", "2-3", "4-7",
// "8+") keep the series count fixed while still separating the expensive
// shallow levels from the cheap deep tail.
const numLevelBands = 5

var levelBandNames = [numLevelBands]string{"0", "1", "2-3", "4-7", "8+"}

// levelBand maps a level index to its band.
func levelBand(level int) int {
	switch {
	case level <= 0:
		return 0
	case level == 1:
		return 1
	case level <= 3:
		return 2
	case level <= 7:
		return 3
	default:
		return 4
	}
}

// serverHists holds one histogram per instrumented lifecycle stage. All are
// created enabled — the daemon is the telemetry consumer; the nil-receiver
// disabled path exists for library users of obs, not for the server.
type serverHists struct {
	ingest     *obs.Histogram // full ingest handler: parse + hash + publish
	queueWait  *obs.Histogram // build admission → worker dequeue
	buildRun   *obs.Histogram // worker dequeue → terminal state (RunCtx)
	query      [numQueryKinds]*obs.Histogram
	levelMap   [numLevelBands]*obs.Histogram // per-level mapping phase, by band
	levelBuild [numLevelBands]*obs.Histogram // per-level construction phase, by band
	hierSpill  *obs.Histogram                // hierarchy spill to the cache dir
	hierLoad   *obs.Histogram                // hierarchy load from the cache dir
}

func newServerHists() *serverHists {
	h := &serverHists{
		ingest:    obs.NewHistogram("mlcg_ingest_seconds"),
		queueWait: obs.NewHistogram("mlcg_build_queue_wait_seconds"),
		buildRun:  obs.NewHistogram("mlcg_build_run_seconds"),
		hierSpill: obs.NewHistogram("mlcg_hier_spill_seconds"),
		hierLoad:  obs.NewHistogram("mlcg_hier_load_seconds"),
	}
	for k := 0; k < numQueryKinds; k++ {
		h.query[k] = obs.NewHistogram("mlcg_query_seconds/" + queryKindNames[k])
	}
	for b := 0; b < numLevelBands; b++ {
		h.levelMap[b] = obs.NewHistogram("mlcg_build_level_map_seconds/" + levelBandNames[b])
		h.levelBuild[b] = obs.NewHistogram("mlcg_build_level_build_seconds/" + levelBandNames[b])
	}
	return h
}

// outcomeFor classifies a request error for logs, flight records, and
// operators grepping either: ok, deadline (build timeout), canceled
// (client or shutdown), or error.
func outcomeFor(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled), errors.Is(err, errShuttingDown):
		return "canceled"
	default:
		return "error"
	}
}

// newIDBase draws the per-process request-id prefix. Ids look like
// "f3a91c-000042": the random base distinguishes server incarnations in
// aggregated logs, the sequence orders requests within one.
func newIDBase() string {
	var b [3]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "000000"
	}
	return hex.EncodeToString(b[:])
}

// nextRequestID mints a request id. Inbound X-Request-Id headers win over
// minted ids (see Handler), so callers that already have a correlation id
// keep it end to end.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", s.idBase, s.reqSeq.Add(1))
}

// discardHandler is the no-op slog handler behind the default logger.
// Enabled reports false, so a server constructed without Config.Logger
// skips attribute assembly entirely (go 1.22 has no slog.DiscardHandler).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// logCounterKeys are the kernel counters worth one log attribute each: the
// contention and reuse signals an operator correlates with latency spikes.
// The full counter map still rides the flight record and /metrics.
var logCounterKeys = []string{
	"cas_retries",
	"hash_probes",
	"hash_collisions",
	"workspace_bytes_reused",
}

// logRecord emits the one structured line a finished request gets. Errors
// log at Error level so a failed build's flight record is dumped (via the
// attached record attributes) without any operator action; everything else
// logs at Info.
func (s *Server) logRecord(ctx context.Context, rec FlightRecord) {
	level := slog.LevelInfo
	if rec.Outcome != "ok" {
		level = slog.LevelError
	}
	if !s.log.Enabled(ctx, level) {
		return
	}
	attrs := make([]slog.Attr, 0, 12)
	attrs = append(attrs,
		slog.String("req", rec.ID),
		slog.String("outcome", rec.Outcome),
		slog.Int("status", rec.Status),
		slog.Float64("ms", rec.DurationMS),
	)
	if rec.Target != "" {
		attrs = append(attrs, slog.String("target", rec.Target))
	}
	if rec.QueueMS > 0 {
		attrs = append(attrs, slog.Float64("queue_ms", rec.QueueMS))
	}
	if rec.Levels > 0 {
		attrs = append(attrs, slog.Int("levels", rec.Levels))
	}
	if rec.Error != "" {
		attrs = append(attrs, slog.String("error", rec.Error))
	}
	for _, k := range logCounterKeys {
		if v, ok := rec.Counters[k]; ok && v != 0 {
			attrs = append(attrs, slog.Int64(k, v))
		}
	}
	// The automatic dump: failures carry the whole counter set, not just
	// the headline keys, so the flight record is reconstructible from the
	// log alone.
	if level == slog.LevelError && len(rec.Counters) > 0 {
		attrs = append(attrs, slog.Any("counters", rec.Counters))
	}
	s.log.LogAttrs(ctx, level, rec.Kind, attrs...)
}

// observeLevels records each level's map/build phase time into its band
// histogram. Called once per finished build from the hierarchy's stats, so
// the coarsening hot path itself carries no histogram calls.
func (s *Server) observeLevels(stats []levelPhase) {
	for _, ls := range stats {
		b := levelBand(ls.level)
		s.hists.levelMap[b].Observe(ls.mapTime)
		s.hists.levelBuild[b].Observe(ls.buildTime)
	}
}

// levelPhase is the slice of a coarsen.LevelStats the histograms need.
type levelPhase struct {
	level     int
	mapTime   time.Duration
	buildTime time.Duration
}
