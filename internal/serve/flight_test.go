package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"mlcg/internal/gen"
)

func TestFlightRecorderKeepSlowest(t *testing.T) {
	f := newFlightRecorder(8) // slowCap 2, recent ring 6
	slow := FlightRecord{ID: "slow", Kind: "build", DurationMS: 500}
	f.record(slow)
	for i := 0; i < 50; i++ {
		f.record(FlightRecord{ID: fmt.Sprintf("fast-%d", i), Kind: "project", DurationMS: 0.1})
	}
	snap := f.snapshot()
	if len(snap.Recent) != 6 {
		t.Fatalf("recent ring holds %d, want 6", len(snap.Recent))
	}
	if snap.Recent[0].ID != "fast-49" {
		t.Fatalf("recent not newest-first: %v", snap.Recent[0].ID)
	}
	// The slow build was evicted from the recent ring long ago but must
	// survive in the reserved slowest set, at the top.
	if len(snap.Slowest) == 0 || snap.Slowest[0].ID != "slow" {
		t.Fatalf("slowest set lost the 500ms build: %+v", snap.Slowest)
	}
	for i := 1; i < len(snap.Slowest); i++ {
		if snap.Slowest[i].DurationMS > snap.Slowest[i-1].DurationMS {
			t.Fatalf("slowest not ordered by duration: %+v", snap.Slowest)
		}
	}

	// A new slower record displaces the current minimum of the reserve.
	f.record(FlightRecord{ID: "slower", Kind: "build", DurationMS: 900})
	snap = f.snapshot()
	if snap.Slowest[0].ID != "slower" {
		t.Fatalf("keep-slowest did not admit the 900ms record: %+v", snap.Slowest)
	}
	found := false
	for _, r := range snap.Slowest {
		if r.ID == "slow" {
			found = true
		}
	}
	if !found {
		t.Fatalf("admitting a slower record evicted the wrong entry: %+v", snap.Slowest)
	}
}

// TestDebugRequestsRetainsSlowestBuild runs the endpoint-level contract: a
// tiny recorder, one (slow) build, then enough fast queries to cycle the
// recent ring several times — /debug/requests must still show the build in
// its slowest set.
func TestDebugRequestsRetainsSlowestBuild(t *testing.T) {
	_, ts := testServer(t, Config{FlightRecorderSize: 8})
	g := gen.Grid2D(24, 24)
	gi := ingest(t, ts, metisBytes(t, g), "")
	st := buildWait(t, ts, buildParams{Graph: gi.ID})

	labels := make([]int32, st.CoarseN)
	for i := 0; i < 20; i++ {
		code, raw := doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/project",
			projectRequest{Hierarchy: st.ID, Labels: labels}, nil)
		if code != http.StatusOK {
			t.Fatalf("project %d: %d %s", i, code, raw)
		}
	}

	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests: status %d: %s", resp.StatusCode, body)
	}
	var snap flightSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad /debug/requests JSON: %v\n%s", err, body)
	}
	if len(snap.Recent) == 0 {
		t.Fatal("empty recent ring after load")
	}
	var build *FlightRecord
	for i := range snap.Slowest {
		if snap.Slowest[i].Kind == "build" {
			build = &snap.Slowest[i]
			break
		}
	}
	if build == nil {
		t.Fatalf("slowest set lost the build after 20 queries: %s", body)
	}
	if build.Target != st.ID || build.Outcome != "ok" || build.Levels < 1 {
		t.Fatalf("retained build record malformed: %+v", build)
	}
	if len(build.Counters) == 0 {
		t.Fatalf("build record carries no kernel counters: %+v", build)
	}
}

// TestBuildDeadlineOutcome drives a build into its timeout and checks the
// whole failure telemetry chain: failed status over HTTP, a flight record
// with outcome "deadline", and an Error-level log line carrying the dump.
func TestBuildDeadlineOutcome(t *testing.T) {
	var sink lockedBuffer
	logger := slog.New(slog.NewJSONHandler(&sink, nil))
	s, ts := testServer(t, Config{BuildTimeout: time.Nanosecond, Logger: logger})
	gi := ingest(t, ts, metisBytes(t, gen.Grid2D(24, 24)), "")

	var st buildStatus
	code, raw := doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/hierarchies?wait=1",
		buildParams{Graph: gi.ID}, &st)
	if code != http.StatusOK || st.Status != "failed" {
		t.Fatalf("expected failed build, got code %d status %+v (%s)", code, st, raw)
	}

	snap := s.flight.snapshot()
	var rec *FlightRecord
	for i := range snap.Recent {
		if snap.Recent[i].Kind == "build" {
			rec = &snap.Recent[i]
			break
		}
	}
	if rec == nil {
		t.Fatalf("no build flight record after deadline: %+v", snap)
	}
	if rec.Outcome != "deadline" {
		t.Fatalf("outcome %q, want deadline (error %q)", rec.Outcome, rec.Error)
	}

	var entry struct {
		Level   string `json:"level"`
		Msg     string `json:"msg"`
		Outcome string `json:"outcome"`
		Error   string `json:"error"`
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(sink.String()), "\n") {
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			continue
		}
		if entry.Msg == "build" && entry.Level == "ERROR" && entry.Outcome == "deadline" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Error-level deadline dump in the log:\n%s", sink.String())
	}
}
