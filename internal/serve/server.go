// Package serve implements mlcg-serve: an HTTP daemon that ingests graphs,
// builds coarsening hierarchies once, and answers many concurrent
// partition/cluster/projection queries against the shared read-only
// hierarchies. It is the concurrent deployment shape of the paper's
// "coarsen once, solve many" economics — the hierarchy is the expensive
// artifact, the downstream solves are cheap — and it is the component that
// forced the module-wide sweep of process-global state: goroutine-scoped
// obs traces (internal/obs), single-owner workspaces with a pool
// (coarsen.WorkspacePool), and chunked untrusted-input decoding
// (graph.ReadBinary).
//
// Concurrency model:
//
//   - Graphs and hierarchies are immutable once published into the caches;
//     queries take only a read lock to fetch the pointer and then operate
//     lock-free on shared read-only CSR data.
//   - Builds run on a fixed worker pool fed by a bounded queue. A full
//     queue load-sheds with 429 rather than accepting unbounded work; each
//     build runs under a deadline and the server's lifetime context, so
//     shutdown and per-request cancellation both stop a build at the next
//     level boundary (Coarsener.RunCtx).
//   - Every build and query carries its own obs trace, so concurrent
//     requests produce laminar, self-contained span trees; counter totals
//     are folded into the server-wide /metrics aggregate when the request
//     finishes.
//
// Caching is content-addressed: a graph's id is the hash of its canonical
// CSR serialization (so the same graph uploaded in METIS text and binary
// form dedupes), and a hierarchy's id hashes the graph id plus the
// coarsening parameters that affect the output. Worker count is
// deliberately excluded — the coarsening pipeline guarantees hierarchies
// are byte-identical across worker counts (see ROADMAP: determinism), so
// a hierarchy built at any parallelism serves queries for all.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mlcg/internal/coarsen"
	"mlcg/internal/graph"
	"mlcg/internal/obs"
)

// Config tunes the server's resource envelope. The zero value is usable:
// every field has a production-shaped default applied by New.
type Config struct {
	// BuildWorkers is the number of hierarchy builds run concurrently
	// (default 2). Each build additionally parallelizes internally with
	// Workers coarsening workers.
	BuildWorkers int
	// Workers is the parallelism degree inside one build/query
	// (0 = GOMAXPROCS). Hierarchy ids do not include it: results are
	// worker-count-invariant.
	Workers int
	// QueueDepth bounds the pending-build queue (default 16). A full
	// queue rejects new builds with 429 instead of queueing unboundedly.
	QueueDepth int
	// BuildTimeout caps one hierarchy build (default 5m). RunCtx stops at
	// the next level boundary when it expires.
	BuildTimeout time.Duration
	// MaxBodyBytes caps an ingest request body (default 1 GiB).
	MaxBodyBytes int64
	// MaxGraphs and MaxHierarchies cap the caches (default 256 each); at
	// the cap, new inserts are refused with 507 Insufficient Storage so
	// memory stays bounded. Content addressing means re-uploads of cached
	// objects still succeed.
	MaxGraphs      int
	MaxHierarchies int
	// Logger receives one structured line per completed ingest/build/query
	// (nil = discard). Failed builds log at Error level with their flight
	// record attached.
	Logger *slog.Logger
	// FlightRecorderSize bounds the /debug/requests ring (default 256).
	// A quarter of the capacity is reserved for the slowest requests seen,
	// which survive regardless of subsequent traffic.
	FlightRecorderSize int
	// CacheDir, when non-empty, persists every successfully built hierarchy
	// to <CacheDir>/<id>.mlcg (hierfmt container, atomic rename) and probes
	// that directory on cache misses, so a restarted server serves warm
	// hierarchies from disk instead of recoarsening. Empty disables
	// persistence (the default: a purely in-memory server).
	CacheDir string
}

func (c Config) withDefaults() Config {
	if c.BuildWorkers <= 0 {
		c.BuildWorkers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.BuildTimeout <= 0 {
		c.BuildTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 256
	}
	if c.MaxHierarchies <= 0 {
		c.MaxHierarchies = 256
	}
	if c.Logger == nil {
		c.Logger = slog.New(discardHandler{})
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 256
	}
	return c
}

// Server is the mlcg-serve state: content-addressed caches, the build
// queue, and the metrics aggregate. Create with New, expose via Handler,
// stop with Close.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu     sync.RWMutex
	graphs map[string]*graphEntry
	builds map[string]*build

	queue     chan *build
	closing   chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	wsPool    coarsen.WorkspacePool

	stats   serverStats
	hists   *serverHists
	flight  *flightRecorder
	log     *slog.Logger
	started time.Time
	idBase  string
	reqSeq  atomic.Uint64

	// obsMu guards the server-wide obs counter aggregate folded in from
	// finished per-request traces.
	obsMu       sync.Mutex
	obsCounters map[string]int64
}

// serverStats are the monotonic /metrics counters. All atomics: bumped
// from request goroutines without locks.
type serverStats struct {
	graphsIngested   atomic.Int64
	ingestBytes      atomic.Int64
	graphCacheHits   atomic.Int64
	buildsRequested  atomic.Int64
	buildCacheHits   atomic.Int64
	buildsCompleted  atomic.Int64
	buildsFailed     atomic.Int64
	buildsShed       atomic.Int64 // 429s from a full queue
	queriesPartition atomic.Int64
	queriesCluster   atomic.Int64
	queriesProject   atomic.Int64
	requestErrors    atomic.Int64

	// Hierarchy persistence (Config.CacheDir).
	hierSpills      atomic.Int64 // hierarchies written to the cache dir
	hierSpillErrors atomic.Int64 // failed spill attempts
	hierDiskHits    atomic.Int64 // cache misses resolved from disk
	hierDiskMisses  atomic.Int64 // disk probes that found nothing usable
	hierLoadErrors  atomic.Int64 // present-but-unreadable cache files
}

type graphEntry struct {
	id    string
	g     *graph.Graph
	added time.Time
}

// New constructs a Server and starts its build workers. A configured
// CacheDir is created eagerly so spills can't race the first build; a dir
// that cannot be created disables persistence with a logged error rather
// than failing startup (the server is fully functional without it).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.CacheDir != "" {
		if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
			cfg.Logger.Error("cache dir unusable, persistence disabled",
				"dir", cfg.CacheDir, "error", err)
			cfg.CacheDir = ""
		}
	}
	s := &Server{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		graphs:      map[string]*graphEntry{},
		builds:      map[string]*build{},
		queue:       make(chan *build, cfg.QueueDepth),
		closing:     make(chan struct{}),
		obsCounters: map[string]int64{},
		hists:       newServerHists(),
		flight:      newFlightRecorder(cfg.FlightRecorderSize),
		log:         cfg.Logger,
		started:     time.Now(),
		idBase:      newIDBase(),
	}
	s.routes()
	for i := 0; i < cfg.BuildWorkers; i++ {
		s.wg.Add(1)
		go s.buildWorker()
	}
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/graphs", s.handleIngest)
	s.mux.HandleFunc("GET /v1/graphs/{id}", s.handleGraphInfo)
	s.mux.HandleFunc("POST /v1/hierarchies", s.handleBuild)
	s.mux.HandleFunc("GET /v1/hierarchies/{id}", s.handleBuildStatus)
	s.mux.HandleFunc("POST /v1/partition", s.handlePartition)
	s.mux.HandleFunc("POST /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("POST /v1/project", s.handleProject)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns the server's HTTP handler. Every request gets a request
// id — the inbound X-Request-Id header if the caller sent one, a minted id
// otherwise — echoed in the response header and carried on the context so
// the structured log line, the flight record, and the obs trace for one
// request all share it.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = s.nextRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		s.mux.ServeHTTP(w, r.WithContext(obs.ContextWithRequestID(r.Context(), id)))
	})
}

// Close drains the build pipeline: no new builds are admitted, queued
// builds are failed as canceled, and in-flight builds stop at their next
// level boundary. Idempotent — extra calls are no-ops. Call from the
// shutdown path (normally after http.Server.Shutdown has stopped new
// requests; a racing enqueue is still safe — the queue channel is never
// closed, and stragglers are failed by the final drain).
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closing)
		s.wg.Wait()
		for {
			select {
			case b := <-s.queue:
				b.finish(nil, errShuttingDown, 0, nil)
				s.stats.buildsFailed.Add(1)
			default:
				return
			}
		}
	})
}

// contentID hashes a graph's canonical CSR serialization; equal graphs get
// equal ids regardless of upload format. The first 16 hex characters are
// plenty at cache scale.
func contentID(g *graph.Graph) (string, error) {
	h := sha256.New()
	if err := g.WriteBinary(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil))[:16], nil
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.stats.requestErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(apiError{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// getGraph fetches a cached graph by id.
func (s *Server) getGraph(id string) (*graphEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.graphs[id]
	return e, ok
}

// foldCounters merges one finished request's obs counter totals into the
// server-wide aggregate exported by /metrics.
func (s *Server) foldCounters(c map[string]int64) {
	if len(c) == 0 {
		return
	}
	s.obsMu.Lock()
	for k, v := range c {
		s.obsCounters[k] += v
	}
	s.obsMu.Unlock()
}
