package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io/fs"
	"log/slog"
	"path/filepath"
	"time"

	"mlcg/internal/coarsen"
	"mlcg/internal/hierfmt"
)

// Hierarchy persistence: when Config.CacheDir is set, every successfully
// built hierarchy is spilled to <dir>/<id>.mlcg as a hierfmt container
// whose META section carries the normalized build parameters. A restarted
// server probes that directory lazily — on the first build request or query
// that misses the in-memory cache — so a warm restart serves from disk
// instead of recoarsening, without any startup scan of the directory.
//
// The files are content-addressed by the same id the in-memory cache uses
// (graph content hash + normalized parameters), so a stale directory can
// never serve the wrong hierarchy: a file either matches its name's
// parameters or is rejected by the probe's integrity check.

// cachePath places one hierarchy's spill file.
func (s *Server) cachePath(id string) string {
	return filepath.Join(s.cfg.CacheDir, id+hierfmt.FileExt)
}

// spillHierarchy persists one finished build. Runs on the build worker —
// off every request path — after waiters have already been released, so
// disk bandwidth costs the requester nothing. Spill failures are counted
// and logged but never fail the build: the hierarchy is live in memory
// either way.
func (s *Server) spillHierarchy(b *build, h *coarsen.Hierarchy) {
	meta, err := json.Marshal(b.params)
	if err == nil {
		t0 := time.Now()
		err = hierfmt.SaveFile(s.cachePath(b.id), h, hierfmt.SaveOptions{Meta: meta})
		s.hists.hierSpill.Observe(time.Since(t0))
	}
	if err != nil {
		s.stats.hierSpillErrors.Add(1)
		s.log.LogAttrs(context.Background(), slog.LevelError, "spill",
			slog.String("target", b.id), slog.String("error", err.Error()))
		return
	}
	s.stats.hierSpills.Add(1)
}

// probeDisk resolves an in-memory cache miss against the spill directory.
// Returns a terminal "done" build on a hit (already published into the
// in-memory cache, capacity permitting), nil on a miss. The container's
// META parameters must hash back to the requested id — that check makes a
// renamed or tampered file a load error, not a wrong answer. Note the graph
// itself need not be ingested: the container is self-contained, which is
// what lets a restarted server answer queries before any client re-uploads.
func (s *Server) probeDisk(id string) *build {
	if s.cfg.CacheDir == "" {
		return nil
	}
	path := s.cachePath(id)
	t0 := time.Now()
	h, meta, err := hierfmt.LoadFile(path, hierfmt.LoadOptions{})
	var p buildParams
	if err == nil {
		if jerr := json.Unmarshal(meta, &p); jerr != nil {
			err = jerr
		} else if p.id() != id {
			err = errors.New("container parameters do not hash to the file's id")
		}
	}
	if err != nil {
		s.stats.hierDiskMisses.Add(1)
		if !errors.Is(err, fs.ErrNotExist) {
			// Present but unreadable: corruption or tampering, worth a line.
			s.stats.hierLoadErrors.Add(1)
			s.log.LogAttrs(context.Background(), slog.LevelError, "diskload",
				slog.String("target", id), slog.String("path", path), slog.String("error", err.Error()))
		}
		return nil
	}
	s.hists.hierLoad.Observe(time.Since(t0))
	s.stats.hierDiskHits.Add(1)

	b := newBuild(p, nil)
	b.finish(h, nil, 0, nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	if prior, ok := s.builds[id]; ok {
		// A concurrent request beat us to it (disk or build); theirs wins.
		return prior
	}
	if len(s.builds) < s.cfg.MaxHierarchies {
		s.builds[id] = b
	}
	return b
}
