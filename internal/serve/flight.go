package serve

import (
	"net/http"
	"sort"
	"sync"
	"time"
)

// Flight recorder: a fixed-size in-memory ring of completed build and query
// records, exposed at /debug/requests. It answers "what just happened" —
// the question histograms can't (they have no per-request identity) and
// logs answer slowly (grep, aggregation). A reserved fraction of the
// capacity always keeps the slowest requests seen, so a latency outlier
// from an hour ago survives any amount of fast traffic after it; the rest
// is strictly most-recent.

// FlightRecord is one completed request as the recorder and the structured
// log both see it.
type FlightRecord struct {
	ID         string           `json:"id"`
	Kind       string           `json:"kind"` // "build" | "partition" | "cluster" | "project" | "ingest"
	Target     string           `json:"target,omitempty"`
	Start      time.Time        `json:"start"`
	QueueMS    float64          `json:"queue_ms,omitempty"`
	DurationMS float64          `json:"duration_ms"`
	Outcome    string           `json:"outcome"` // "ok" | "error" | "canceled" | "deadline"
	Status     int              `json:"status,omitempty"`
	Error      string           `json:"error,omitempty"`
	Levels     int              `json:"levels,omitempty"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// flightRecorder splits its capacity into a recent ring and a slowest set.
// record is O(capacity/4) worst case on the slow scan — capacities are
// small (default 256) and the scan is a flat float compare, so this stays
// off any profile; the simplicity buys an always-correct keep-slowest
// policy with no heap bookkeeping.
type flightRecorder struct {
	mu      sync.Mutex
	recent  []FlightRecord // ring; next is the write cursor
	next    int
	filled  bool
	slow    []FlightRecord // unordered; at most slowCap entries
	slowCap int
}

func newFlightRecorder(capacity int) *flightRecorder {
	if capacity < 8 {
		capacity = 8
	}
	slowCap := capacity / 4
	return &flightRecorder{
		recent:  make([]FlightRecord, 0, capacity-slowCap),
		slow:    make([]FlightRecord, 0, slowCap),
		slowCap: slowCap,
	}
}

// record stores one completed request.
func (f *flightRecorder) record(rec FlightRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.recent) < cap(f.recent) {
		f.recent = append(f.recent, rec)
	} else {
		f.recent[f.next] = rec
		f.filled = true
	}
	f.next = (f.next + 1) % cap(f.recent)

	// Keep-slowest: fill the reserve, then displace the current minimum
	// only if this request was slower.
	if len(f.slow) < f.slowCap {
		f.slow = append(f.slow, rec)
		return
	}
	min := 0
	for i := 1; i < len(f.slow); i++ {
		if f.slow[i].DurationMS < f.slow[min].DurationMS {
			min = i
		}
	}
	if rec.DurationMS > f.slow[min].DurationMS {
		f.slow[min] = rec
	}
}

// flightSnapshot is the /debug/requests response body.
type flightSnapshot struct {
	Recent  []FlightRecord `json:"recent"`  // newest first
	Slowest []FlightRecord `json:"slowest"` // slowest first
}

// snapshot copies both sets out under the lock: recent newest-first,
// slowest ordered by descending duration.
func (f *flightRecorder) snapshot() flightSnapshot {
	f.mu.Lock()
	n := len(f.recent)
	recent := make([]FlightRecord, 0, n)
	for i := 1; i <= n; i++ {
		recent = append(recent, f.recent[(f.next-i+n)%n])
	}
	slow := make([]FlightRecord, len(f.slow))
	copy(slow, f.slow)
	f.mu.Unlock()

	sort.SliceStable(slow, func(i, j int) bool { return slow[i].DurationMS > slow[j].DurationMS })
	return flightSnapshot{Recent: recent, Slowest: slow}
}

// handleDebugRequests serves the flight-recorder contents as JSON.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.flight.snapshot())
}
