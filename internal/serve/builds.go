package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"mlcg/internal/coarsen"
	"mlcg/internal/graph"
	"mlcg/internal/obs"
)

// buildParams selects the hierarchy a client wants. The JSON zero values
// mean "the default": HEC mapping, sort construction, cutoff 50, the
// paper's level cap. Workers is deliberately not a parameter — hierarchies
// are byte-identical across worker counts, so parallelism is a server
// setting, not part of the result's identity.
type buildParams struct {
	Graph     string `json:"graph"`
	Mapper    string `json:"mapper,omitempty"`
	Builder   string `json:"builder,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	Cutoff    int    `json:"cutoff,omitempty"`
	MaxLevels int    `json:"max_levels,omitempty"`
}

// normalize resolves defaults so equivalent requests share one cache slot
// (cutoff 0 and cutoff 50 are the same hierarchy).
func (p buildParams) normalize() buildParams {
	if p.Mapper == "" {
		p.Mapper = "hec"
	}
	if p.Builder == "" {
		p.Builder = "sort"
	}
	if p.Cutoff <= 0 {
		p.Cutoff = 50
	}
	if p.MaxLevels <= 0 {
		p.MaxLevels = 201
	}
	return p
}

// id hashes the normalized parameters into the hierarchy's cache key.
func (p buildParams) id() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s|%d|%d|%d", p.Graph, p.Mapper, p.Builder, p.Seed, p.Cutoff, p.MaxLevels)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// build is one hierarchy build's lifecycle. Fields under mu are written by
// the build worker and read by status/query handlers; done is closed
// exactly once when the build reaches a terminal state.
type build struct {
	id     string
	params buildParams
	g      *graph.Graph

	// Telemetry identity: the admitting request's id and enqueue time.
	// enqueuedAt is written before the channel send and read by the worker
	// after the receive; queueWait is worker-local after dequeue.
	reqID      string
	enqueuedAt time.Time
	queueWait  time.Duration

	done chan struct{}

	// stateMu guards everything below: the transient status string while
	// queued/running, and the terminal fields once finish has run.
	stateMu  sync.Mutex
	status   string // "queued" | "running" | "done" | "failed"
	h        *coarsen.Hierarchy
	err      error
	elapsed  time.Duration
	counters map[string]int64
}

func newBuild(p buildParams, g *graph.Graph) *build {
	return &build{id: p.id(), params: p, g: g, done: make(chan struct{}), status: "queued"}
}

func (b *build) setStatus(st string) {
	b.stateMu.Lock()
	b.status = st
	b.stateMu.Unlock()
}

// finish publishes the terminal state and releases waiters.
func (b *build) finish(h *coarsen.Hierarchy, err error, elapsed time.Duration, counters map[string]int64) {
	b.stateMu.Lock()
	b.h, b.err, b.elapsed, b.counters = h, err, elapsed, counters
	if err != nil {
		b.status = "failed"
	} else {
		b.status = "done"
	}
	b.stateMu.Unlock()
	close(b.done)
}

// snapshot returns a consistent view for status reporting.
func (b *build) snapshot() (status string, h *coarsen.Hierarchy, err error, elapsed time.Duration, counters map[string]int64) {
	b.stateMu.Lock()
	defer b.stateMu.Unlock()
	return b.status, b.h, b.err, b.elapsed, b.counters
}

// errShuttingDown is the terminal error builds receive when the server
// drains before they run.
var errShuttingDown = fmt.Errorf("serve: server shutting down")

// buildWorker drains the queue until Close. Builds admitted before Close
// but not yet started are failed as canceled rather than silently dropped
// (here or by Close's final drain), so their waiters unblock with a
// definite answer.
func (s *Server) buildWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closing:
			return
		case b := <-s.queue:
			select {
			case <-s.closing:
				b.finish(nil, errShuttingDown, 0, nil)
				s.stats.buildsFailed.Add(1)
				continue
			default:
			}
			b.queueWait = time.Since(b.enqueuedAt)
			s.hists.queueWait.Observe(b.queueWait)
			s.runBuild(b)
		}
	}
}

// runBuild executes one hierarchy build: fresh mapper/builder instances
// (the adaptive builder is stateful per hierarchy), a pooled workspace, a
// per-build obs trace carried by context, and a deadline. The build also
// aborts at the next level boundary if the server starts draining.
func (s *Server) runBuild(b *build) {
	b.setStatus("running")
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.BuildTimeout)
	defer cancel()
	// Tie the build to server shutdown: watch closing only while running,
	// so draining stops an in-flight build at its next level boundary.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-s.closing:
			cancel()
		case <-watchDone:
		}
	}()

	mapper, err := coarsen.MapperByName(b.params.Mapper)
	if err == nil {
		var builder coarsen.Builder
		builder, err = coarsen.BuilderByName(b.params.Builder)
		if err == nil {
			tr := obs.NewTrace("build " + b.id)
			runCtx := obs.NewContext(ctx, tr)
			ws := s.wsPool.Get()
			c := coarsen.Coarsener{
				Mapper: mapper, Builder: builder,
				Cutoff: b.params.Cutoff, MaxLevels: b.params.MaxLevels,
				Seed: b.params.Seed, Workers: s.cfg.Workers,
				Workspace: ws,
			}
			t0 := time.Now()
			h, runErr := c.RunCtx(runCtx, b.g)
			elapsed := time.Since(t0)
			tr.Stop()
			s.wsPool.Put(ws)
			counters := tr.Root.Counters()
			s.foldCounters(counters)
			if runErr != nil {
				s.stats.buildsFailed.Add(1)
			} else {
				s.stats.buildsCompleted.Add(1)
			}
			b.finish(h, runErr, elapsed, counters)
			s.observeBuild(b, h, runErr, elapsed, counters)
			if runErr == nil && s.cfg.CacheDir != "" {
				// Waiters are already released; the spill only costs the
				// build worker, never a request.
				s.spillHierarchy(b, h)
			}
			return
		}
	}
	// Unreachable in practice: names are validated at admission.
	s.stats.buildsFailed.Add(1)
	b.finish(nil, err, 0, nil)
	s.observeBuild(b, nil, err, 0, nil)
}

// observeBuild records a finished build's telemetry: the run and per-level
// phase histograms, the flight record, and the structured log line. Failed
// and deadline-canceled builds log at Error level with their full counter
// set attached — the automatic flight-record dump.
func (s *Server) observeBuild(b *build, h *coarsen.Hierarchy, runErr error, elapsed time.Duration, counters map[string]int64) {
	s.hists.buildRun.Observe(elapsed)
	rec := FlightRecord{
		ID:         b.reqID,
		Kind:       "build",
		Target:     b.id,
		Start:      time.Now().Add(-elapsed - b.queueWait),
		QueueMS:    float64(b.queueWait) / float64(time.Millisecond),
		DurationMS: float64(elapsed) / float64(time.Millisecond),
		Outcome:    outcomeFor(runErr),
		Counters:   counters,
	}
	if runErr != nil {
		rec.Error = runErr.Error()
	}
	if h != nil {
		rec.Levels = h.Levels()
		phases := make([]levelPhase, 0, len(h.Stats))
		for i, ls := range h.Stats {
			phases = append(phases, levelPhase{level: i, mapTime: ls.MapTime, buildTime: ls.BuildTime})
		}
		s.observeLevels(phases)
	}
	s.flight.record(rec)
	s.logRecord(obs.ContextWithRequestID(context.Background(), b.reqID), rec)
}

// levelInfo is one hierarchy level's stats in the status response.
type levelInfo struct {
	N       int32   `json:"n"`
	NC      int32   `json:"nc"`
	M       int64   `json:"m"`
	MapMS   float64 `json:"map_ms"`
	BuildMS float64 `json:"build_ms"`
	Builder string  `json:"builder"`
	Reason  string  `json:"reason,omitempty"`
}

// buildStatus is the /v1/hierarchies response body.
type buildStatus struct {
	ID       string           `json:"id"`
	Status   string           `json:"status"`
	Cached   bool             `json:"cached,omitempty"`
	Error    string           `json:"error,omitempty"`
	Params   buildParams      `json:"params"`
	Levels   int              `json:"levels,omitempty"`
	CoarseN  int32            `json:"coarsest_n,omitempty"`
	Ratio    float64          `json:"coarsening_ratio,omitempty"`
	Stalled  bool             `json:"stalled,omitempty"`
	TotalMS  float64          `json:"total_ms,omitempty"`
	Detail   []levelInfo      `json:"level_detail,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

func (b *build) statusBody(detail bool) buildStatus {
	st, h, err, elapsed, counters := b.snapshot()
	out := buildStatus{ID: b.id, Status: st, Params: b.params}
	if err != nil {
		out.Error = err.Error()
	}
	if h != nil {
		out.Levels = h.Levels()
		out.CoarseN = h.Coarsest().NumV
		out.Ratio = h.CoarseningRatio()
		out.Stalled = h.Stalled
		out.TotalMS = float64(elapsed) / float64(time.Millisecond)
		if detail {
			out.Counters = counters
			for _, ls := range h.Stats {
				out.Detail = append(out.Detail, levelInfo{
					N: ls.N, NC: ls.NC, M: ls.M,
					MapMS:   float64(ls.MapTime) / float64(time.Millisecond),
					BuildMS: float64(ls.BuildTime) / float64(time.Millisecond),
					Builder: ls.Builder, Reason: ls.BuildReason,
				})
			}
		}
	}
	return out
}

// handleBuild admits a hierarchy build. Cached (including in-flight)
// builds are returned immediately; new builds go through the bounded
// queue, and a full queue sheds load with 429 so the server degrades by
// refusing work instead of accumulating it.
func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	s.stats.buildsRequested.Add(1)
	var p buildParams
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&p); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	p = p.normalize()
	if _, err := coarsen.MapperByName(p.Mapper); err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := coarsen.BuilderByName(p.Builder); err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := p.id()
	s.mu.Lock()
	if b, ok := s.builds[id]; ok {
		s.mu.Unlock()
		s.stats.buildCacheHits.Add(1)
		s.respondBuild(w, r, b, true)
		return
	}
	s.mu.Unlock()

	// In-memory miss: the spill directory may still have this hierarchy
	// from a previous incarnation. A disk hit is complete in itself — the
	// container carries the graphs — so the fine graph need not be
	// re-ingested for a warm restart to answer.
	if b := s.probeDisk(id); b != nil {
		s.stats.buildCacheHits.Add(1)
		s.respondBuild(w, r, b, true)
		return
	}

	// A genuine miss needs the ingested fine graph to coarsen.
	ge, ok := s.getGraph(p.Graph)
	if !ok {
		s.httpError(w, http.StatusNotFound, "no graph %q (ingest it first via POST /v1/graphs)", p.Graph)
		return
	}

	s.mu.Lock()
	if b, ok := s.builds[id]; ok {
		// Raced with a concurrent admit of the same params.
		s.mu.Unlock()
		s.stats.buildCacheHits.Add(1)
		s.respondBuild(w, r, b, true)
		return
	}
	if len(s.builds) >= s.cfg.MaxHierarchies {
		s.mu.Unlock()
		s.httpError(w, http.StatusInsufficientStorage, "hierarchy cache full (%d entries)", s.cfg.MaxHierarchies)
		return
	}
	b := newBuild(p, ge.g)
	b.reqID = obs.RequestIDFromContext(r.Context())
	b.enqueuedAt = time.Now()
	s.builds[id] = b
	s.mu.Unlock()

	select {
	case <-s.closing:
		s.mu.Lock()
		delete(s.builds, id)
		s.mu.Unlock()
		s.httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	case s.queue <- b:
	default:
		// Load shed: drop the entry we just created and refuse.
		s.mu.Lock()
		delete(s.builds, id)
		s.mu.Unlock()
		s.stats.buildsShed.Add(1)
		w.Header().Set("Retry-After", "1")
		s.httpError(w, http.StatusTooManyRequests, "build queue full (%d pending)", s.cfg.QueueDepth)
		return
	}
	s.respondBuild(w, r, b, false)
}

// respondBuild answers a build request, optionally blocking (?wait=1)
// until the build finishes or the client goes away.
func (s *Server) respondBuild(w http.ResponseWriter, r *http.Request, b *build, cached bool) {
	if q := r.URL.Query().Get("wait"); q == "1" || q == "true" {
		select {
		case <-b.done:
		case <-r.Context().Done():
			s.httpError(w, 499, "client canceled while waiting for build %s", b.id)
			return
		}
	}
	body := b.statusBody(false)
	body.Cached = cached
	code := http.StatusAccepted
	if body.Status == "done" || body.Status == "failed" {
		code = http.StatusOK
	}
	writeJSON(w, code, body)
}

func (s *Server) handleBuildStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.RLock()
	b, ok := s.builds[id]
	s.mu.RUnlock()
	if !ok {
		// Same warm-restart path as the query endpoints: a status poll by
		// id is answerable from the spill directory too.
		if b = s.probeDisk(id); b == nil {
			s.httpError(w, http.StatusNotFound, "no hierarchy %q", id)
			return
		}
	}
	writeJSON(w, http.StatusOK, b.statusBody(r.URL.Query().Get("detail") == "1"))
}

// getHierarchy resolves a finished hierarchy for the query endpoints. An
// in-memory miss falls through to the spill directory, so the first query
// after a warm restart loads from disk instead of demanding a rebuild.
func (s *Server) getHierarchy(id string) (*coarsen.Hierarchy, *build, error) {
	s.mu.RLock()
	b, ok := s.builds[id]
	s.mu.RUnlock()
	if !ok {
		if b = s.probeDisk(id); b == nil {
			return nil, nil, fmt.Errorf("no hierarchy %q", id)
		}
	}
	st, h, err, _, _ := b.snapshot()
	switch st {
	case "done":
		return h, b, nil
	case "failed":
		return nil, b, fmt.Errorf("hierarchy %s failed: %v", id, err)
	default:
		return nil, b, fmt.Errorf("hierarchy %s is %s; poll GET /v1/hierarchies/%s", id, st, id)
	}
}
