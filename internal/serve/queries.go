package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"mlcg/internal/cluster"
	"mlcg/internal/obs"
	"mlcg/internal/partition"
)

// Query endpoints operate on finished hierarchies without mutating them:
// they solve on the (small) coarsest graph and project the answer back to
// the fine graph through the mapping arrays — the paper's "coarsen once,
// solve many" split. Any number run concurrently against one hierarchy;
// the shared state is read-only CSR plus mapping slices, and each request
// carries its own obs trace so span trees never interleave.

// traced runs fn with a per-request trace attached to the handler's
// goroutine and folds the resulting counters into /metrics.
func (s *Server) traced(name string, fn func()) {
	tr := obs.NewTrace(name)
	detach := tr.Attach()
	fn()
	detach()
	tr.Stop()
	s.foldCounters(tr.Root.Counters())
}

type partitionRequest struct {
	Hierarchy  string `json:"hierarchy"`
	K          int    `json:"k"`
	Seed       uint64 `json:"seed,omitempty"`
	Assignment bool   `json:"assignment,omitempty"` // include the per-vertex part array
}

type partitionResponse struct {
	Hierarchy  string  `json:"hierarchy"`
	K          int     `json:"k"`
	Cut        int64   `json:"cut"`
	Imbalance  float64 `json:"imbalance"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Assignment []int32 `json:"assignment,omitempty"`
}

// handlePartition k-way partitions the coarsest graph and projects the
// parts to level 0; cut and imbalance are reported on the fine graph.
func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	s.stats.queriesPartition.Add(1)
	var req partitionRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.K < 2 {
		s.httpError(w, http.StatusBadRequest, "k must be >= 2 (got %d)", req.K)
		return
	}
	h, _, err := s.getHierarchy(req.Hierarchy)
	if err != nil {
		s.httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	var resp partitionResponse
	var solveErr error
	s.traced("partition "+req.Hierarchy, func() {
		t0 := time.Now()
		res, err := partition.KWayFM(h.Coarsest(), req.K, partition.KWayOptions{
			Seed: req.Seed, Workers: s.cfg.Workers,
		})
		if err != nil {
			solveErr = err
			return
		}
		fine := h.ProjectToFine(res.Part)
		g0 := h.Graphs[0]
		resp = partitionResponse{
			Hierarchy: req.Hierarchy,
			K:         req.K,
			Cut:       partition.KWayEdgeCut(g0, fine),
			Imbalance: partition.KWayImbalance(g0, fine, req.K),
			ElapsedMS: float64(time.Since(t0)) / float64(time.Millisecond),
		}
		if req.Assignment {
			resp.Assignment = fine
		}
	})
	if solveErr != nil {
		s.httpError(w, http.StatusUnprocessableEntity, "partition: %v", solveErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type clusterRequest struct {
	Hierarchy  string `json:"hierarchy"`
	Seed       uint64 `json:"seed,omitempty"`
	Assignment bool   `json:"assignment,omitempty"`
}

type clusterResponse struct {
	Hierarchy  string  `json:"hierarchy"`
	K          int32   `json:"k"`
	Modularity float64 `json:"modularity"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Assignment []int32 `json:"assignment,omitempty"`
}

// handleCluster runs Louvain on the coarsest graph, projects labels to the
// fine graph, and reports fine-graph modularity.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.stats.queriesCluster.Add(1)
	var req clusterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	h, _, err := s.getHierarchy(req.Hierarchy)
	if err != nil {
		s.httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	var resp clusterResponse
	var solveErr error
	s.traced("cluster "+req.Hierarchy, func() {
		t0 := time.Now()
		res, err := cluster.Louvain(h.Coarsest(), cluster.Options{
			Seed: req.Seed, Workers: s.cfg.Workers,
		})
		if err != nil {
			solveErr = err
			return
		}
		fine := h.ProjectToFine(res.Labels)
		resp = clusterResponse{
			Hierarchy:  req.Hierarchy,
			K:          res.K,
			Modularity: cluster.Modularity(h.Graphs[0], fine),
			ElapsedMS:  float64(time.Since(t0)) / float64(time.Millisecond),
		}
		if req.Assignment {
			resp.Assignment = fine
		}
	})
	if solveErr != nil {
		s.httpError(w, http.StatusUnprocessableEntity, "cluster: %v", solveErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type projectRequest struct {
	Hierarchy string  `json:"hierarchy"`
	Labels    []int32 `json:"labels"`
}

type projectResponse struct {
	Hierarchy  string  `json:"hierarchy"`
	Assignment []int32 `json:"assignment"`
}

// handleProject carries a caller-supplied per-vertex assignment on the
// coarsest graph back to level 0 — the building block for custom solvers
// that only need the hierarchy's mappings.
func (s *Server) handleProject(w http.ResponseWriter, r *http.Request) {
	s.stats.queriesProject.Add(1)
	var req projectRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	h, _, err := s.getHierarchy(req.Hierarchy)
	if err != nil {
		s.httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	if len(req.Labels) != int(h.Coarsest().NumV) {
		s.httpError(w, http.StatusBadRequest, "labels cover %d vertices, coarsest graph has %d",
			len(req.Labels), h.Coarsest().NumV)
		return
	}
	var fine []int32
	s.traced("project "+req.Hierarchy, func() {
		fine = h.ProjectToFine(req.Labels)
	})
	writeJSON(w, http.StatusOK, projectResponse{Hierarchy: req.Hierarchy, Assignment: fine})
}
