package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"mlcg/internal/cluster"
	"mlcg/internal/obs"
	"mlcg/internal/partition"
)

// Query endpoints operate on finished hierarchies without mutating them:
// they solve on the (small) coarsest graph and project the answer back to
// the fine graph through the mapping arrays — the paper's "coarsen once,
// solve many" split. Any number run concurrently against one hierarchy;
// the shared state is read-only CSR plus mapping slices, and each request
// carries its own obs trace so span trees never interleave.

// queryObs follows one query from entry to response: it runs the solve
// under a per-request trace and, at finish, records the kind's latency
// histogram, the flight record, and the structured log line.
type queryObs struct {
	s        *Server
	kind     int
	target   string
	reqID    string
	t0       time.Time
	counters map[string]int64
}

func (s *Server) startQuery(r *http.Request, kind int) *queryObs {
	return &queryObs{
		s:     s,
		kind:  kind,
		reqID: obs.RequestIDFromContext(r.Context()),
		t0:    time.Now(),
	}
}

// traced runs fn with a per-request trace attached to the handler's
// goroutine; the counters ride the flight record and are folded into the
// /metrics aggregate.
func (q *queryObs) traced(fn func()) {
	tr := obs.NewTrace(queryKindNames[q.kind] + " " + q.target)
	detach := tr.Attach()
	fn()
	detach()
	tr.Stop()
	q.counters = tr.Root.Counters()
	q.s.foldCounters(q.counters)
}

// finish closes out the query's telemetry. Deferred by every handler, so
// early error exits (bad body, unknown hierarchy) are recorded too.
func (q *queryObs) finish(ctx context.Context, status int, err error) {
	elapsed := time.Since(q.t0)
	q.s.hists.query[q.kind].Observe(elapsed)
	rec := FlightRecord{
		ID:         q.reqID,
		Kind:       queryKindNames[q.kind],
		Target:     q.target,
		Start:      q.t0,
		DurationMS: float64(elapsed) / float64(time.Millisecond),
		Outcome:    outcomeFor(err),
		Status:     status,
		Counters:   q.counters,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	q.s.flight.record(rec)
	q.s.logRecord(ctx, rec)
}

type partitionRequest struct {
	Hierarchy  string `json:"hierarchy"`
	K          int    `json:"k"`
	Seed       uint64 `json:"seed,omitempty"`
	Assignment bool   `json:"assignment,omitempty"` // include the per-vertex part array
}

type partitionResponse struct {
	Hierarchy  string  `json:"hierarchy"`
	K          int     `json:"k"`
	Cut        int64   `json:"cut"`
	Imbalance  float64 `json:"imbalance"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Assignment []int32 `json:"assignment,omitempty"`
}

// handlePartition k-way partitions the coarsest graph and projects the
// parts to level 0; cut and imbalance are reported on the fine graph.
func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	s.stats.queriesPartition.Add(1)
	q := s.startQuery(r, qPartition)
	status := http.StatusOK
	var reqErr error
	defer func() { q.finish(r.Context(), status, reqErr) }()

	var req partitionRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		status, reqErr = http.StatusBadRequest, err
		s.httpError(w, status, "bad request body: %v", err)
		return
	}
	q.target = req.Hierarchy
	if req.K < 2 {
		status = http.StatusBadRequest
		reqErr = fmt.Errorf("k must be >= 2 (got %d)", req.K)
		s.httpError(w, status, "%v", reqErr)
		return
	}
	h, _, err := s.getHierarchy(req.Hierarchy)
	if err != nil {
		status, reqErr = http.StatusNotFound, err
		s.httpError(w, status, "%v", err)
		return
	}
	var resp partitionResponse
	var solveErr error
	q.traced(func() {
		t0 := time.Now()
		res, err := partition.KWayFM(h.Coarsest(), req.K, partition.KWayOptions{
			Seed: req.Seed, Workers: s.cfg.Workers,
		})
		if err != nil {
			solveErr = err
			return
		}
		fine := h.ProjectToFine(res.Part)
		g0 := h.Graphs[0]
		resp = partitionResponse{
			Hierarchy: req.Hierarchy,
			K:         req.K,
			Cut:       partition.KWayEdgeCut(g0, fine),
			Imbalance: partition.KWayImbalance(g0, fine, req.K),
			ElapsedMS: float64(time.Since(t0)) / float64(time.Millisecond),
		}
		if req.Assignment {
			resp.Assignment = fine
		}
	})
	if solveErr != nil {
		status, reqErr = http.StatusUnprocessableEntity, solveErr
		s.httpError(w, status, "partition: %v", solveErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type clusterRequest struct {
	Hierarchy  string `json:"hierarchy"`
	Seed       uint64 `json:"seed,omitempty"`
	Assignment bool   `json:"assignment,omitempty"`
}

type clusterResponse struct {
	Hierarchy  string  `json:"hierarchy"`
	K          int32   `json:"k"`
	Modularity float64 `json:"modularity"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Assignment []int32 `json:"assignment,omitempty"`
}

// handleCluster runs Louvain on the coarsest graph, projects labels to the
// fine graph, and reports fine-graph modularity.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.stats.queriesCluster.Add(1)
	q := s.startQuery(r, qCluster)
	status := http.StatusOK
	var reqErr error
	defer func() { q.finish(r.Context(), status, reqErr) }()

	var req clusterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		status, reqErr = http.StatusBadRequest, err
		s.httpError(w, status, "bad request body: %v", err)
		return
	}
	q.target = req.Hierarchy
	h, _, err := s.getHierarchy(req.Hierarchy)
	if err != nil {
		status, reqErr = http.StatusNotFound, err
		s.httpError(w, status, "%v", err)
		return
	}
	var resp clusterResponse
	var solveErr error
	q.traced(func() {
		t0 := time.Now()
		res, err := cluster.Louvain(h.Coarsest(), cluster.Options{
			Seed: req.Seed, Workers: s.cfg.Workers,
		})
		if err != nil {
			solveErr = err
			return
		}
		fine := h.ProjectToFine(res.Labels)
		resp = clusterResponse{
			Hierarchy:  req.Hierarchy,
			K:          res.K,
			Modularity: cluster.Modularity(h.Graphs[0], fine),
			ElapsedMS:  float64(time.Since(t0)) / float64(time.Millisecond),
		}
		if req.Assignment {
			resp.Assignment = fine
		}
	})
	if solveErr != nil {
		status, reqErr = http.StatusUnprocessableEntity, solveErr
		s.httpError(w, status, "cluster: %v", solveErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type projectRequest struct {
	Hierarchy string  `json:"hierarchy"`
	Labels    []int32 `json:"labels"`
}

type projectResponse struct {
	Hierarchy  string  `json:"hierarchy"`
	Assignment []int32 `json:"assignment"`
}

// handleProject carries a caller-supplied per-vertex assignment on the
// coarsest graph back to level 0 — the building block for custom solvers
// that only need the hierarchy's mappings.
func (s *Server) handleProject(w http.ResponseWriter, r *http.Request) {
	s.stats.queriesProject.Add(1)
	q := s.startQuery(r, qProject)
	status := http.StatusOK
	var reqErr error
	defer func() { q.finish(r.Context(), status, reqErr) }()

	var req projectRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		status, reqErr = http.StatusBadRequest, err
		s.httpError(w, status, "bad request body: %v", err)
		return
	}
	q.target = req.Hierarchy
	h, _, err := s.getHierarchy(req.Hierarchy)
	if err != nil {
		status, reqErr = http.StatusNotFound, err
		s.httpError(w, status, "%v", err)
		return
	}
	if len(req.Labels) != int(h.Coarsest().NumV) {
		status = http.StatusBadRequest
		reqErr = fmt.Errorf("labels cover %d vertices, coarsest graph has %d",
			len(req.Labels), h.Coarsest().NumV)
		s.httpError(w, status, "%v", reqErr)
		return
	}
	var fine []int32
	q.traced(func() {
		fine = h.ProjectToFine(req.Labels)
	})
	writeJSON(w, http.StatusOK, projectResponse{Hierarchy: req.Hierarchy, Assignment: fine})
}
