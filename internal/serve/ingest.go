package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"mlcg/internal/graph"
	"mlcg/internal/hierfmt"
	"mlcg/internal/obs"
)

// graphInfo is the ingest/info response body.
type graphInfo struct {
	ID     string `json:"id"`
	N      int32  `json:"n"`
	M      int64  `json:"m"`
	Cached bool   `json:"cached,omitempty"`
}

// handleIngest parses an uploaded graph (format=metis|binary|edgelist,
// default metis) and publishes it under its content hash. The body is
// capped by MaxBodyBytes, and the binary decoder grows buffers in bounded
// chunks, so a hostile upload costs at most its own wire size — a lying
// length prefix fails fast instead of reserving GiBs. The wrapper records
// the ingest latency histogram and the one structured log line every
// request gets, on success and error paths alike.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	info, status, err := s.ingest(w, r)
	elapsed := time.Since(t0)
	s.hists.ingest.Observe(elapsed)

	rec := FlightRecord{
		ID:         obs.RequestIDFromContext(r.Context()),
		Kind:       "ingest",
		Start:      t0,
		DurationMS: float64(elapsed) / float64(time.Millisecond),
		Outcome:    outcomeFor(err),
		Status:     status,
	}
	if info != nil {
		rec.Target = info.ID
	}
	if err != nil {
		rec.Error = err.Error()
	}
	s.logRecord(r.Context(), rec)
}

// ingest does the parse/hash/publish work and writes the response; the
// returned status and error feed the telemetry wrapper.
func (s *Server) ingest(w http.ResponseWriter, r *http.Request) (*graphInfo, int, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()

	var (
		g   *graph.Graph
		err error
	)
	switch format := r.URL.Query().Get("format"); format {
	case "", "metis":
		g, err = graph.ReadMetis(body)
	case "binary":
		g, err = graph.ReadBinary(body)
	case "edgelist":
		// Text ingest is CPU-bound on field parsing; shard it across the
		// same worker budget a build gets.
		g, err = graph.StreamEdges(body, s.cfg.Workers)
	case "mlcg":
		var data []byte
		if data, err = io.ReadAll(body); err == nil {
			g, _, err = hierfmt.LoadGraph(data, hierfmt.LoadOptions{})
		}
	default:
		err = fmt.Errorf("unknown format %q (want metis, binary, edgelist, or mlcg)", format)
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return nil, http.StatusBadRequest, err
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return nil, http.StatusRequestEntityTooLarge, err
		}
		s.httpError(w, http.StatusBadRequest, "parse: %v", err)
		return nil, http.StatusBadRequest, err
	}
	id, err := contentID(g)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "hash: %v", err)
		return nil, http.StatusInternalServerError, err
	}

	s.mu.Lock()
	if _, ok := s.graphs[id]; ok {
		s.mu.Unlock()
		s.stats.graphCacheHits.Add(1)
		info := &graphInfo{ID: id, N: g.NumV, M: g.M(), Cached: true}
		writeJSON(w, http.StatusOK, info)
		return info, http.StatusOK, nil
	}
	if len(s.graphs) >= s.cfg.MaxGraphs {
		s.mu.Unlock()
		err := fmt.Errorf("graph cache full (%d entries)", s.cfg.MaxGraphs)
		s.httpError(w, http.StatusInsufficientStorage, "%v", err)
		return nil, http.StatusInsufficientStorage, err
	}
	s.graphs[id] = &graphEntry{id: id, g: g, added: time.Now()}
	s.mu.Unlock()

	s.stats.graphsIngested.Add(1)
	s.stats.ingestBytes.Add(r.ContentLength)
	info := &graphInfo{ID: id, N: g.NumV, M: g.M()}
	writeJSON(w, http.StatusCreated, info)
	return info, http.StatusCreated, nil
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.getGraph(id)
	if !ok {
		s.httpError(w, http.StatusNotFound, "no graph %q", id)
		return
	}
	writeJSON(w, http.StatusOK, graphInfo{ID: e.id, N: e.g.NumV, M: e.g.M(), Cached: true})
}
