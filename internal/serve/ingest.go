package serve

import (
	"errors"
	"net/http"
	"time"

	"mlcg/internal/graph"
)

// graphInfo is the ingest/info response body.
type graphInfo struct {
	ID     string `json:"id"`
	N      int32  `json:"n"`
	M      int64  `json:"m"`
	Cached bool   `json:"cached,omitempty"`
}

// handleIngest parses an uploaded graph (format=metis|binary|edgelist,
// default metis) and publishes it under its content hash. The body is
// capped by MaxBodyBytes, and the binary decoder grows buffers in bounded
// chunks, so a hostile upload costs at most its own wire size — a lying
// length prefix fails fast instead of reserving GiBs.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()

	var (
		g   *graph.Graph
		err error
	)
	switch format := r.URL.Query().Get("format"); format {
	case "", "metis":
		g, err = graph.ReadMetis(body)
	case "binary":
		g, err = graph.ReadBinary(body)
	case "edgelist":
		g, err = graph.ReadEdgeList(body)
	default:
		s.httpError(w, http.StatusBadRequest, "unknown format %q (want metis, binary, or edgelist)", format)
		return
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.httpError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	id, err := contentID(g)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "hash: %v", err)
		return
	}

	s.mu.Lock()
	if _, ok := s.graphs[id]; ok {
		s.mu.Unlock()
		s.stats.graphCacheHits.Add(1)
		writeJSON(w, http.StatusOK, graphInfo{ID: id, N: g.NumV, M: g.M(), Cached: true})
		return
	}
	if len(s.graphs) >= s.cfg.MaxGraphs {
		s.mu.Unlock()
		s.httpError(w, http.StatusInsufficientStorage, "graph cache full (%d entries)", s.cfg.MaxGraphs)
		return
	}
	s.graphs[id] = &graphEntry{id: id, g: g, added: time.Now()}
	s.mu.Unlock()

	s.stats.graphsIngested.Add(1)
	s.stats.ingestBytes.Add(r.ContentLength)
	writeJSON(w, http.StatusCreated, graphInfo{ID: id, N: g.NumV, M: g.M()})
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.getGraph(id)
	if !ok {
		s.httpError(w, http.StatusNotFound, "no graph %q", id)
		return
	}
	writeJSON(w, http.StatusOK, graphInfo{ID: e.id, N: e.g.NumV, M: e.g.M(), Cached: true})
}
