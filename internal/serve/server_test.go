package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mlcg/internal/gen"
	"mlcg/internal/graph"
)

func metisBytes(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteMetis(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func binaryBytes(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testServer wires a Server with test-friendly limits into an httptest
// listener and tears both down with the test.
func testServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doJSON(t testing.TB, client *http.Client, method, url string, body any, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

func ingest(t testing.TB, ts *httptest.Server, payload []byte, format string) graphInfo {
	t.Helper()
	url := ts.URL + "/v1/graphs"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d body %s", resp.StatusCode, raw)
	}
	var info graphInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

func buildWait(t testing.TB, ts *httptest.Server, p buildParams) buildStatus {
	t.Helper()
	var st buildStatus
	code, raw := doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/hierarchies?wait=1", p, &st)
	if code != http.StatusOK {
		t.Fatalf("build: status %d body %s", code, raw)
	}
	if st.Status != "done" {
		t.Fatalf("build: terminal status %q (%s)", st.Status, st.Error)
	}
	return st
}

func TestIngestFormatsDedupe(t *testing.T) {
	_, ts := testServer(t, Config{})
	g := gen.Grid2D(24, 24)

	a := ingest(t, ts, metisBytes(t, g), "")
	if a.N != g.NumV || a.M != g.M() {
		t.Fatalf("ingest reported n=%d m=%d, want %d/%d", a.N, a.M, g.NumV, g.M())
	}
	// The same graph in binary form must land on the same content id.
	b := ingest(t, ts, binaryBytes(t, g), "binary")
	if b.ID != a.ID {
		t.Fatalf("binary upload got id %s, metis got %s — content addressing broken", b.ID, a.ID)
	}
	if !b.Cached {
		t.Fatal("re-upload of identical content not reported as cached")
	}

	// Rejections: unknown format, garbage payload, lying binary header.
	for _, tc := range []struct {
		name, format string
		payload      []byte
		wantCode     int
	}{
		{"unknown format", "yaml", metisBytes(t, g), http.StatusBadRequest},
		{"garbage metis", "", []byte("not a graph\n"), http.StatusBadRequest},
		{"truncated binary", "binary", binaryBytes(t, g)[:20], http.StatusBadRequest},
	} {
		url := ts.URL + "/v1/graphs"
		if tc.format != "" {
			url += "?format=" + tc.format
		}
		resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(tc.payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantCode)
		}
	}

	// Info endpoint round trip and unknown id.
	var info graphInfo
	code, _ := doJSON(t, http.DefaultClient, "GET", ts.URL+"/v1/graphs/"+a.ID, nil, &info)
	if code != http.StatusOK || info.N != g.NumV {
		t.Fatalf("graph info: code %d info %+v", code, info)
	}
	code, _ = doJSON(t, http.DefaultClient, "GET", ts.URL+"/v1/graphs/deadbeef", nil, nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown graph id: status %d, want 404", code)
	}
}

func TestIngestBodyLimit(t *testing.T) {
	_, ts := testServer(t, Config{MaxBodyBytes: 128})
	g := gen.Grid2D(32, 32)
	resp, err := http.Post(ts.URL+"/v1/graphs?format=binary", "application/octet-stream",
		bytes.NewReader(binaryBytes(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

func TestBuildQueryLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})
	g := gen.RMAT(11, 8, 5)
	gi := ingest(t, ts, binaryBytes(t, g), "binary")

	st := buildWait(t, ts, buildParams{Graph: gi.ID, Builder: "auto", Seed: 7})
	if st.Levels < 1 || st.CoarseN <= 0 {
		t.Fatalf("suspicious hierarchy: %+v", st)
	}

	// Detail view carries per-level stats and kernel counters.
	var det buildStatus
	code, raw := doJSON(t, http.DefaultClient, "GET", ts.URL+"/v1/hierarchies/"+st.ID+"?detail=1", nil, &det)
	if code != http.StatusOK {
		t.Fatalf("status detail: %d %s", code, raw)
	}
	if len(det.Detail) != det.Levels {
		t.Fatalf("detail rows %d != levels %d", len(det.Detail), det.Levels)
	}
	if len(det.Counters) == 0 {
		t.Fatal("detail view missing obs counters")
	}

	// A second identical request is a cache hit and returns immediately.
	var st2 buildStatus
	code, raw = doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/hierarchies", buildParams{Graph: gi.ID, Builder: "auto", Seed: 7}, &st2)
	if code != http.StatusOK || !st2.Cached || st2.ID != st.ID {
		t.Fatalf("expected cached done build, got code %d %+v (%s)", code, st2, raw)
	}
	// Defaulted and explicit parameters share a cache slot.
	var st3 buildStatus
	code, _ = doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/hierarchies", buildParams{Graph: gi.ID, Builder: "auto", Seed: 7, Cutoff: 50, MaxLevels: 201, Mapper: "hec"}, &st3)
	if code != http.StatusOK || st3.ID != st.ID {
		t.Fatalf("normalized params missed cache: code %d id %s want %s", code, st3.ID, st.ID)
	}

	// Partition: sane cut and balance, assignment covers the fine graph.
	var pr partitionResponse
	code, raw = doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/partition",
		partitionRequest{Hierarchy: st.ID, K: 4, Seed: 3, Assignment: true}, &pr)
	if code != http.StatusOK {
		t.Fatalf("partition: %d %s", code, raw)
	}
	if pr.Cut <= 0 || pr.Imbalance < 0 || len(pr.Assignment) != g.N() {
		t.Fatalf("partition result implausible: cut=%d imb=%f len=%d", pr.Cut, pr.Imbalance, len(pr.Assignment))
	}
	seen := map[int32]bool{}
	for _, p := range pr.Assignment {
		if p < 0 || p >= 4 {
			t.Fatalf("part id %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d of 4 parts used", len(seen))
	}

	// Cluster: valid modularity and labels.
	var cr clusterResponse
	code, raw = doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/cluster",
		clusterRequest{Hierarchy: st.ID, Assignment: true}, &cr)
	if code != http.StatusOK {
		t.Fatalf("cluster: %d %s", code, raw)
	}
	if cr.K <= 0 || cr.Modularity <= 0 || len(cr.Assignment) != g.N() {
		t.Fatalf("cluster result implausible: k=%d q=%f len=%d", cr.K, cr.Modularity, len(cr.Assignment))
	}

	// Projection of a hand-made coarse labeling.
	labels := make([]int32, st.CoarseN)
	for i := range labels {
		labels[i] = int32(i % 3)
	}
	var prj projectResponse
	code, raw = doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/project",
		projectRequest{Hierarchy: st.ID, Labels: labels}, &prj)
	if code != http.StatusOK || len(prj.Assignment) != g.N() {
		t.Fatalf("project: %d %s", code, raw)
	}
	// Wrong label count is rejected.
	code, _ = doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/project",
		projectRequest{Hierarchy: st.ID, Labels: labels[:1]}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("short labels: status %d, want 400", code)
	}
}

func TestBuildRejections(t *testing.T) {
	_, ts := testServer(t, Config{})
	g := gen.Grid2D(16, 16)
	gi := ingest(t, ts, metisBytes(t, g), "")

	for _, tc := range []struct {
		name string
		p    buildParams
		want int
	}{
		{"unknown graph", buildParams{Graph: "deadbeef"}, http.StatusNotFound},
		{"unknown mapper", buildParams{Graph: gi.ID, Mapper: "bogus"}, http.StatusBadRequest},
		{"unknown builder", buildParams{Graph: gi.ID, Builder: "bogus"}, http.StatusBadRequest},
	} {
		code, raw := doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/hierarchies", tc.p, nil)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.want, raw)
		}
	}

	// Query endpoints refuse unknown or unfinished hierarchies.
	code, _ := doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/partition",
		partitionRequest{Hierarchy: "nope", K: 2}, nil)
	if code != http.StatusNotFound {
		t.Fatalf("partition on unknown hierarchy: %d, want 404", code)
	}
	code, _ = doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/partition",
		partitionRequest{Hierarchy: "nope", K: 1}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("k=1: status %d, want 400", code)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	_, ts := testServer(t, Config{})
	g := gen.Grid2D(20, 20)
	gi := ingest(t, ts, metisBytes(t, g), "")
	st := buildWait(t, ts, buildParams{Graph: gi.ID})
	doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/partition",
		partitionRequest{Hierarchy: st.ID, K: 2}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"mlcg_graphs_ingested_total 1",
		"mlcg_builds_completed_total 1",
		"mlcg_queries_partition_total 1",
		"mlcg_build_queue_depth 0",
		"mlcg_graphs_cached 1",
		"mlcg_hierarchies_cached 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
	// Kernel counters from the build trace must be folded in.
	if !strings.Contains(text, "mlcg_ctr_") {
		t.Errorf("/metrics has no aggregated obs counters\n%s", text)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof: %d", resp.StatusCode)
	}
}

func TestCloseFailsQueuedBuilds(t *testing.T) {
	// One worker, deep queue: stuff the queue, close the server, and the
	// queued-but-never-started builds must fail with a definite error
	// instead of hanging their waiters.
	s := New(Config{BuildWorkers: 1, QueueDepth: 8, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	gi := ingest(t, ts, metisBytes(t, gen.RMAT(13, 8, 6)), "")
	var ids []string
	for i := 0; i < 4; i++ {
		var st buildStatus
		code, raw := doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/hierarchies",
			buildParams{Graph: gi.ID, Seed: uint64(i + 1)}, &st)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("enqueue %d: %d %s", i, code, raw)
		}
		ids = append(ids, st.ID)
	}
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for _, id := range ids {
		for {
			var st buildStatus
			code, _ := doJSON(t, http.DefaultClient, "GET", ts.URL+"/v1/hierarchies/"+id, nil, &st)
			if code != http.StatusOK {
				t.Fatalf("status %s: %d", id, code)
			}
			if st.Status == "done" || st.Status == "failed" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("build %s still %q after Close", id, st.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestContentIDStability(t *testing.T) {
	g := gen.Grid2D(10, 10)
	a, err := contentID(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := contentID(gen.Grid2D(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same graph hashed differently: %s vs %s", a, b)
	}
	c, err := contentID(gen.Grid2D(10, 11))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different graphs collided")
	}
	if fmt.Sprintf("%x", a) == "" {
		t.Fatal("empty id")
	}
}
