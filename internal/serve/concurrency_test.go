package serve

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"mlcg/internal/gen"
)

// TestConcurrentSharedHierarchyQueries is the satellite regression test
// for the serving data path: N goroutines fire partition, cluster, and
// project queries against ONE shared hierarchy, and every concurrent
// answer must equal the single-goroutine answer for the same request.
// The solvers are deterministic per seed, so any divergence (or a -race
// report) means a query mutated shared hierarchy state.
func TestConcurrentSharedHierarchyQueries(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	g := gen.RMAT(12, 8, 6)
	gi := ingest(t, ts, binaryBytes(t, g), "binary")
	st := buildWait(t, ts, buildParams{Graph: gi.ID, Builder: "auto", Seed: 5})

	// Serial reference answers, one per request shape.
	type partKey struct {
		k    int
		seed uint64
	}
	partReqs := []partKey{{2, 1}, {4, 1}, {4, 9}, {8, 3}}
	wantPart := map[partKey]partitionResponse{}
	for _, pk := range partReqs {
		var pr partitionResponse
		code, raw := doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/partition",
			partitionRequest{Hierarchy: st.ID, K: pk.k, Seed: pk.seed, Assignment: true}, &pr)
		if code != http.StatusOK {
			t.Fatalf("serial partition %+v: %d %s", pk, code, raw)
		}
		wantPart[pk] = pr
	}
	var wantClust clusterResponse
	if code, raw := doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/cluster",
		clusterRequest{Hierarchy: st.ID, Seed: 2, Assignment: true}, &wantClust); code != http.StatusOK {
		t.Fatalf("serial cluster: %d %s", code, raw)
	}
	labels := make([]int32, st.CoarseN)
	for i := range labels {
		labels[i] = int32(i) % 5
	}
	var wantProj projectResponse
	if code, raw := doJSON(t, http.DefaultClient, "POST", ts.URL+"/v1/project",
		projectRequest{Hierarchy: st.ID, Labels: labels}, &wantProj); code != http.StatusOK {
		t.Fatalf("serial project: %d %s", code, raw)
	}

	eq := func(a, b []int32) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds*(len(partReqs)+2))
	for gid := 0; gid < goroutines; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			client := &http.Client{}
			for round := 0; round < rounds; round++ {
				for _, pk := range partReqs {
					var pr partitionResponse
					code, raw := doJSON(t, client, "POST", ts.URL+"/v1/partition",
						partitionRequest{Hierarchy: st.ID, K: pk.k, Seed: pk.seed, Assignment: true}, &pr)
					if code != http.StatusOK {
						errs <- fmt.Errorf("g%d partition %+v: %d %s", gid, pk, code, raw)
						continue
					}
					want := wantPart[pk]
					if pr.Cut != want.Cut || pr.Imbalance != want.Imbalance || !eq(pr.Assignment, want.Assignment) {
						errs <- fmt.Errorf("g%d partition %+v: cut=%d imb=%v differ from serial cut=%d imb=%v",
							gid, pk, pr.Cut, pr.Imbalance, want.Cut, want.Imbalance)
					}
				}
				var cr clusterResponse
				code, raw := doJSON(t, client, "POST", ts.URL+"/v1/cluster",
					clusterRequest{Hierarchy: st.ID, Seed: 2, Assignment: true}, &cr)
				if code != http.StatusOK {
					errs <- fmt.Errorf("g%d cluster: %d %s", gid, code, raw)
				} else if cr.K != wantClust.K || cr.Modularity != wantClust.Modularity || !eq(cr.Assignment, wantClust.Assignment) {
					errs <- fmt.Errorf("g%d cluster: k=%d q=%v differ from serial k=%d q=%v",
						gid, cr.K, cr.Modularity, wantClust.K, wantClust.Modularity)
				}
				var prj projectResponse
				code, raw = doJSON(t, client, "POST", ts.URL+"/v1/project",
					projectRequest{Hierarchy: st.ID, Labels: labels}, &prj)
				if code != http.StatusOK {
					errs <- fmt.Errorf("g%d project: %d %s", gid, code, raw)
				} else if !eq(prj.Assignment, wantProj.Assignment) {
					errs <- fmt.Errorf("g%d project: assignment differs from serial", gid)
				}
			}
		}(gid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentBuildsDistinctGraphs drives the build pipeline at its
// admission limits: distinct builds from many goroutines, a tiny queue,
// one worker. Every request must resolve to 202/200 (admitted or cached)
// or 429 (shed) — never a panic, a hang, or a corrupted response — and at
// least one build must complete.
func TestConcurrentBuildsDistinctGraphs(t *testing.T) {
	s, ts := testServer(t, Config{BuildWorkers: 1, QueueDepth: 2, Workers: 1})

	var ids []string
	for i := 0; i < 6; i++ {
		gi := ingest(t, ts, metisBytes(t, gen.Grid2D(40+i, 40)), "")
		ids = append(ids, gi.ID)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			code, _ := doJSON(t, &http.Client{}, "POST", ts.URL+"/v1/hierarchies",
				buildParams{Graph: id, Seed: uint64(i)}, nil)
			mu.Lock()
			counts[code]++
			mu.Unlock()
		}(i, id)
	}
	wg.Wait()

	admitted := counts[http.StatusAccepted] + counts[http.StatusOK]
	shed := counts[http.StatusTooManyRequests]
	if admitted+shed != len(ids) {
		t.Fatalf("unexpected status mix: %v", counts)
	}
	if admitted == 0 {
		t.Fatalf("everything shed: %v", counts)
	}
	if shed > 0 && s.stats.buildsShed.Load() != int64(shed) {
		t.Fatalf("shed counter %d, want %d", s.stats.buildsShed.Load(), shed)
	}
}

// TestConcurrentDuplicateBuildsDedupe fires the same build request from
// many goroutines at once: the content-addressed cache must coalesce them
// onto one build (admitted exactly once; everyone else is a cache hit on
// the queued/running/done entry) and all waiters must see the same result.
func TestConcurrentDuplicateBuildsDedupe(t *testing.T) {
	s, ts := testServer(t, Config{BuildWorkers: 2, QueueDepth: 8, Workers: 2})
	gi := ingest(t, ts, metisBytes(t, gen.Grid2D(48, 48)), "")

	const callers = 10
	var wg sync.WaitGroup
	idCh := make(chan string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var st buildStatus
			code, raw := doJSON(t, &http.Client{}, "POST", ts.URL+"/v1/hierarchies?wait=1",
				buildParams{Graph: gi.ID, Seed: 77}, &st)
			if code != http.StatusOK || st.Status != "done" {
				t.Errorf("dup build: %d %s", code, raw)
				return
			}
			idCh <- st.ID
		}()
	}
	wg.Wait()
	close(idCh)
	first := ""
	for id := range idCh {
		if first == "" {
			first = id
		} else if id != first {
			t.Fatalf("duplicate requests produced different hierarchy ids: %s vs %s", id, first)
		}
	}
	if got := s.stats.buildsCompleted.Load(); got != 1 {
		t.Fatalf("the build ran %d times, want exactly 1 (dedupe failed)", got)
	}
}
