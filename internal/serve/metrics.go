package serve

import (
	"bytes"
	"net/http"
	"runtime"
	"sort"
	"time"

	"mlcg/internal/obs"
)

// handleMetrics writes a Prometheus text-exposition (0.0.4) document: HELP
// and TYPE lines for every family, the server counters and gauges, latency
// histograms for each request lifecycle stage (cumulative _bucket/_sum/
// _count series), the obs kernel counters aggregated across every finished
// traced request, and a Go runtime sample — so hot-path behavior (CAS
// retries, hash probes, workspace reuse) and tail latency are observable
// per deployment, not only per offline run.
//
// Everything that needs a lock is snapshotted first; the document is
// assembled in a buffer and written only after every lock is released, so
// a slow or stalled scraper can never hold obsMu (or any server lock)
// across its read. Histogram snapshots are lock-free by construction.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Snapshot phase: everything guarded, copied out under short critical
	// sections.
	s.mu.RLock()
	graphs := len(s.graphs)
	hierarchies := len(s.builds)
	s.mu.RUnlock()

	s.obsMu.Lock()
	ctr := make(map[string]int64, len(s.obsCounters))
	ctrKeys := make([]string, 0, len(s.obsCounters))
	for k, v := range s.obsCounters {
		ctr[k] = v
		ctrKeys = append(ctrKeys, k)
	}
	s.obsMu.Unlock()

	// Assembly phase: no server locks held from here on.
	var buf bytes.Buffer
	p := obs.NewPromWriter(&buf)
	counter := func(name, help string, v int64) {
		p.Family(name, help, "counter")
		p.Sample(nil, float64(v))
	}
	gauge := func(name, help string, v float64) {
		p.Family(name, help, "gauge")
		p.Sample(nil, v)
	}

	counter("mlcg_graphs_ingested_total", "Graphs parsed and published into the cache.", s.stats.graphsIngested.Load())
	counter("mlcg_ingest_bytes_total", "Request body bytes of successfully ingested graphs.", s.stats.ingestBytes.Load())
	counter("mlcg_graph_cache_hits_total", "Ingests deduplicated by content hash.", s.stats.graphCacheHits.Load())
	counter("mlcg_builds_requested_total", "Hierarchy build requests received.", s.stats.buildsRequested.Load())
	counter("mlcg_build_cache_hits_total", "Build requests answered by a cached or in-flight hierarchy.", s.stats.buildCacheHits.Load())
	counter("mlcg_builds_completed_total", "Hierarchy builds finished successfully.", s.stats.buildsCompleted.Load())
	counter("mlcg_builds_failed_total", "Hierarchy builds that ended in error, cancellation, or timeout.", s.stats.buildsFailed.Load())
	counter("mlcg_builds_shed_total", "Build requests refused with 429 because the queue was full.", s.stats.buildsShed.Load())
	counter("mlcg_queries_partition_total", "Partition queries received.", s.stats.queriesPartition.Load())
	counter("mlcg_queries_cluster_total", "Cluster queries received.", s.stats.queriesCluster.Load())
	counter("mlcg_queries_project_total", "Projection queries received.", s.stats.queriesProject.Load())
	counter("mlcg_request_errors_total", "Requests answered with an error status.", s.stats.requestErrors.Load())
	counter("mlcg_hier_spills_total", "Hierarchies persisted to the cache directory.", s.stats.hierSpills.Load())
	counter("mlcg_hier_spill_errors_total", "Failed hierarchy spill attempts.", s.stats.hierSpillErrors.Load())
	counter("mlcg_hier_disk_hits_total", "Cache misses resolved from the cache directory.", s.stats.hierDiskHits.Load())
	counter("mlcg_hier_disk_misses_total", "Disk probes that found no usable container.", s.stats.hierDiskMisses.Load())
	counter("mlcg_hier_load_errors_total", "Cache files present but rejected by the hardened reader.", s.stats.hierLoadErrors.Load())
	gauge("mlcg_build_queue_depth", "Builds waiting in the queue right now.", float64(len(s.queue)))
	gauge("mlcg_build_queue_capacity", "Bound of the build queue.", float64(cap(s.queue)))
	gauge("mlcg_graphs_cached", "Graphs resident in the cache.", float64(graphs))
	gauge("mlcg_hierarchies_cached", "Hierarchies resident in the cache (any state).", float64(hierarchies))
	gauge("mlcg_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())

	// Lifecycle latency histograms.
	p.Family("mlcg_ingest_seconds", "Ingest handler latency (parse, hash, publish).", "histogram")
	p.Histogram(nil, s.hists.ingest.Snapshot())
	p.Family("mlcg_build_queue_wait_seconds", "Time from build admission to worker dequeue.", "histogram")
	p.Histogram(nil, s.hists.queueWait.Snapshot())
	p.Family("mlcg_build_run_seconds", "Hierarchy build execution time (dequeue to terminal state).", "histogram")
	p.Histogram(nil, s.hists.buildRun.Snapshot())
	p.Family("mlcg_hier_spill_seconds", "Hierarchy persistence time (serialize, fsync, rename).", "histogram")
	p.Histogram(nil, s.hists.hierSpill.Snapshot())
	p.Family("mlcg_hier_load_seconds", "Hierarchy load time from the cache directory (read, verify, decode).", "histogram")
	p.Histogram(nil, s.hists.hierLoad.Snapshot())
	p.Family("mlcg_query_seconds", "Query handler latency by kind.", "histogram")
	for k := 0; k < numQueryKinds; k++ {
		p.Histogram([]obs.Label{{Name: "kind", Value: queryKindNames[k]}}, s.hists.query[k].Snapshot())
	}
	p.Family("mlcg_build_level_map_seconds", "Per-level mapping phase time, by level index band.", "histogram")
	for b := 0; b < numLevelBands; b++ {
		p.Histogram([]obs.Label{{Name: "level", Value: levelBandNames[b]}}, s.hists.levelMap[b].Snapshot())
	}
	p.Family("mlcg_build_level_build_seconds", "Per-level construction phase time, by level index band.", "histogram")
	for b := 0; b < numLevelBands; b++ {
		p.Histogram([]obs.Label{{Name: "level", Value: levelBandNames[b]}}, s.hists.levelBuild[b].Snapshot())
	}

	// Kernel counters folded from finished traces. Raw keys may contain
	// characters Prometheus rejects (construction policies use colons), so
	// they are sanitized — with deterministic dedup — at the export edge.
	names := obs.SanitizeKeys(ctrKeys)
	sort.Strings(ctrKeys)
	for _, k := range ctrKeys {
		counter("mlcg_ctr_"+names[k]+"_total", "Kernel counter "+k+" aggregated over finished traced requests.", ctr[k])
	}

	// Runtime sample.
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	gauge("go_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	gauge("go_gomaxprocs", "GOMAXPROCS.", float64(runtime.GOMAXPROCS(0)))
	gauge("go_memstats_heap_alloc_bytes", "Heap bytes in use.", float64(mem.HeapAlloc))
	gauge("go_memstats_heap_sys_bytes", "Heap bytes obtained from the OS.", float64(mem.HeapSys))
	counter("go_memstats_alloc_bytes_total", "Cumulative heap bytes allocated.", int64(mem.TotalAlloc))
	counter("go_gc_cycles_total", "Completed GC cycles.", int64(mem.NumGC))
	p.Family("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", "counter")
	p.Sample(nil, float64(mem.PauseTotalNs)/1e9)

	if err := p.Err(); err != nil {
		s.httpError(w, http.StatusInternalServerError, "metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}
