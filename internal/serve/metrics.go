package serve

import (
	"fmt"
	"net/http"
	"sort"
)

// handleMetrics writes a flat text exposition (name value per line,
// Prometheus-style) of the server counters, the live queue/cache gauges,
// and the obs kernel counters aggregated across every finished traced
// request — so hot-path behavior (CAS retries, hash probes, workspace
// reuse) is observable per deployment, not only per offline run.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	graphs := len(s.graphs)
	hierarchies := len(s.builds)
	s.mu.RUnlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	put := func(name string, v int64) {
		fmt.Fprintf(w, "mlcg_%s %d\n", name, v)
	}
	put("graphs_ingested_total", s.stats.graphsIngested.Load())
	put("ingest_bytes_total", s.stats.ingestBytes.Load())
	put("graph_cache_hits_total", s.stats.graphCacheHits.Load())
	put("builds_requested_total", s.stats.buildsRequested.Load())
	put("build_cache_hits_total", s.stats.buildCacheHits.Load())
	put("builds_completed_total", s.stats.buildsCompleted.Load())
	put("builds_failed_total", s.stats.buildsFailed.Load())
	put("builds_shed_total", s.stats.buildsShed.Load())
	put("queries_partition_total", s.stats.queriesPartition.Load())
	put("queries_cluster_total", s.stats.queriesCluster.Load())
	put("queries_project_total", s.stats.queriesProject.Load())
	put("request_errors_total", s.stats.requestErrors.Load())
	put("build_queue_depth", int64(len(s.queue)))
	put("build_queue_capacity", int64(cap(s.queue)))
	put("graphs_cached", int64(graphs))
	put("hierarchies_cached", int64(hierarchies))

	s.obsMu.Lock()
	names := make([]string, 0, len(s.obsCounters))
	for k := range s.obsCounters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "mlcg_ctr_%s %d\n", k, s.obsCounters[k])
	}
	s.obsMu.Unlock()
}
