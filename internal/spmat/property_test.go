package spmat

import (
	"math"
	"testing"
	"testing/quick"

	"mlcg/internal/graph"
	"mlcg/internal/par"
)

func TestSpGEMMAssociativity(t *testing.T) {
	f := func(s1, s2, s3 uint64) bool {
		a := randCSR(8, 10, 3, s1)
		b := randCSR(10, 9, 3, s2)
		c := randCSR(9, 7, 3, s3)
		left := SpGEMM(SpGEMM(a, b, 2), c, 2)
		right := SpGEMM(a, SpGEMM(b, c, 2), 2)
		return denseEqual(dense(left), dense(right), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLaplacianPositiveSemidefinite(t *testing.T) {
	// x^T L x = Σ w(u,v)(x_u − x_v)² ≥ 0 for any x and any graph.
	f := func(seed uint64) bool {
		rng := par.NewRNG(seed)
		n := rng.Intn(25) + 2
		var e []graph.Edge
		for i := 0; i < n-1; i++ {
			e = append(e, graph.Edge{U: int32(i), V: int32(i + 1), W: int64(rng.Intn(6) + 1)})
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				e = append(e, graph.Edge{U: int32(u), V: int32(v), W: int64(rng.Intn(6) + 1)})
			}
		}
		g := graph.MustFromEdges(n, e)
		l := Laplacian(g)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*4 - 2
		}
		y := make([]float64, n)
		l.MulVec(y, x, 1)
		var quad float64
		for i := range x {
			quad += x[i] * y[i]
		}
		return quad >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTransposeOfSymmetricIsIdentity(t *testing.T) {
	// Adjacency matrices of our undirected graphs are symmetric: Aᵀ = A.
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}, {U: 2, V: 3, W: 1},
		{U: 3, V: 4, W: 5}, {U: 4, V: 5, W: 2}, {U: 5, V: 0, W: 7}, {U: 1, V: 4, W: 9},
	})
	a := FromGraph(g)
	at := a.Transpose(2)
	if !denseEqual(dense(a), dense(at), 0) {
		t.Error("adjacency transpose differs from itself")
	}
}

func TestSpGEMMWithIdentity(t *testing.T) {
	a := randCSR(12, 12, 4, 3)
	// Identity matrix.
	n := 12
	rowptr := make([]int64, n+1)
	col := make([]int32, n)
	val := make([]float64, n)
	for i := 0; i < n; i++ {
		rowptr[i+1] = int64(i + 1)
		col[i] = int32(i)
		val[i] = 1
	}
	id := &CSR{Rows: int32(n), Cols: int32(n), Rowptr: rowptr, Col: col, Val: val}
	if !denseEqual(dense(SpGEMM(a, id, 2)), dense(a), 1e-12) {
		t.Error("A·I != A")
	}
	if !denseEqual(dense(SpGEMM(id, a, 2)), dense(a), 1e-12) {
		t.Error("I·A != A")
	}
}

func TestMulVecLinearity(t *testing.T) {
	a := randCSR(20, 20, 4, 9)
	rng := par.NewRNG(4)
	x := make([]float64, 20)
	y := make([]float64, 20)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	ax := make([]float64, 20)
	ay := make([]float64, 20)
	axy := make([]float64, 20)
	a.MulVec(ax, x, 1)
	a.MulVec(ay, y, 1)
	xy := make([]float64, 20)
	for i := range xy {
		xy[i] = 2*x[i] + 3*y[i]
	}
	a.MulVec(axy, xy, 1)
	for i := range axy {
		want := 2*ax[i] + 3*ay[i]
		if math.Abs(axy[i]-want) > 1e-9 {
			t.Fatalf("linearity broken at %d: %v vs %v", i, axy[i], want)
		}
	}
}
