// Package spmat provides the sparse linear-algebra substrate: CSR
// matrices, parallel SpMV, a two-phase (symbolic + numeric) hash-based
// SpGEMM, and the P·A·Pᵀ triple product used by the SpGEMM-based coarse
// graph construction. It stands in for the Kokkos Kernels routines the
// paper calls.
package spmat

import (
	"fmt"

	"mlcg/internal/graph"
	"mlcg/internal/par"
)

// CSR is a sparse matrix in compressed sparse row format. Rows and Cols
// are the dimensions; Rowptr has Rows+1 entries; Col/Val hold the column
// indices and values of the nonzeros row by row. Columns within a row are
// not required to be sorted unless stated.
type CSR struct {
	Rows, Cols int32
	Rowptr     []int64
	Col        []int32
	Val        []float64
}

// NNZ returns the number of stored nonzeros.
func (a *CSR) NNZ() int64 { return a.Rowptr[a.Rows] }

// Row returns the column/value slices of row i, aliasing internal storage.
func (a *CSR) Row(i int32) ([]int32, []float64) {
	lo, hi := a.Rowptr[i], a.Rowptr[i+1]
	return a.Col[lo:hi], a.Val[lo:hi]
}

// Validate checks structural invariants.
func (a *CSR) Validate() error {
	if len(a.Rowptr) != int(a.Rows)+1 {
		return fmt.Errorf("spmat: len(Rowptr)=%d, want %d", len(a.Rowptr), a.Rows+1)
	}
	if a.Rowptr[0] != 0 {
		return fmt.Errorf("spmat: Rowptr[0] != 0")
	}
	for i := int32(0); i < a.Rows; i++ {
		if a.Rowptr[i+1] < a.Rowptr[i] {
			return fmt.Errorf("spmat: Rowptr decreasing at %d", i)
		}
	}
	if int64(len(a.Col)) != a.NNZ() || len(a.Val) != len(a.Col) {
		return fmt.Errorf("spmat: nnz arrays inconsistent")
	}
	for _, c := range a.Col {
		if c < 0 || c >= a.Cols {
			return fmt.Errorf("spmat: column %d out of range [0,%d)", c, a.Cols)
		}
	}
	return nil
}

// FromGraph returns the weighted adjacency matrix of g.
func FromGraph(g *graph.Graph) *CSR {
	val := make([]float64, len(g.Wgt))
	for i, w := range g.Wgt {
		val[i] = float64(w)
	}
	return &CSR{
		Rows:   g.NumV,
		Cols:   g.NumV,
		Rowptr: append([]int64(nil), g.Xadj...),
		Col:    append([]int32(nil), g.Adj...),
		Val:    val,
	}
}

// MulVec computes y = A·x in parallel over rows. len(x) must be Cols and
// len(y) must be Rows.
func (a *CSR) MulVec(y, x []float64, p int) {
	if len(x) != int(a.Cols) || len(y) != int(a.Rows) {
		panic("spmat: MulVec dimension mismatch")
	}
	par.ForChunked(int(a.Rows), p, 512, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum float64
			for k := a.Rowptr[i]; k < a.Rowptr[i+1]; k++ {
				sum += a.Val[k] * x[a.Col[k]]
			}
			y[i] = sum
		}
	})
}

// Transpose returns Aᵀ. The scatter uses per-worker column histograms with
// bucket-major offsets (the same stable pattern as an LSD radix-sort pass),
// so rows of the result come out with sorted columns and the whole
// operation is a single parallel pass over the nonzeros after counting.
func (a *CSR) Transpose(p int) *CSR {
	n, m := int(a.Rows), int(a.Cols)
	p = par.Workers(p, n)
	hist := make([]int64, p*m)
	par.For(n, p, func(w, lo, hi int) {
		h := hist[w*m : (w+1)*m]
		for k := a.Rowptr[lo]; k < a.Rowptr[hi]; k++ {
			h[a.Col[k]]++
		}
	})
	rowptr := make([]int64, m+1)
	var running int64
	for c := 0; c < m; c++ {
		rowptr[c] = running
		for w := 0; w < p; w++ {
			idx := w*m + c
			cnt := hist[idx]
			hist[idx] = running
			running += cnt
		}
	}
	rowptr[m] = running
	col := make([]int32, a.NNZ())
	val := make([]float64, a.NNZ())
	par.For(n, p, func(w, lo, hi int) {
		offs := hist[w*m : (w+1)*m]
		for i := lo; i < hi; i++ {
			for k := a.Rowptr[i]; k < a.Rowptr[i+1]; k++ {
				c := a.Col[k]
				pos := offs[c]
				offs[c] = pos + 1
				col[pos] = int32(i)
				val[pos] = a.Val[k]
			}
		}
	})
	return &CSR{Rows: a.Cols, Cols: a.Rows, Rowptr: rowptr, Col: col, Val: val}
}
